package msg

import (
	"encoding/binary"
	"math"

	"plum/internal/event"
)

// Collective operations.  Every rank in the world must call each
// collective in the same order; a per-rank sequence number synthesizes a
// private tag so that back-to-back collectives and user point-to-point
// traffic cannot interleave incorrectly.
//
// Broadcast and reduce use binomial trees (log P rounds, as a real MPI
// implementation would, which matters for the simulated timing model);
// gather/scatter are rooted linear exchanges, matching the paper's
// description of the similarity-matrix gather ("these gather and scatter
// operations require a minuscule amount of time since only one row of the
// matrix needs to be communicated to the host processor").

func (c *Comm) nextCollTag() int {
	t := collectiveTagBase + c.collSeq
	c.collSeq++
	return t
}

// Barrier blocks until every rank has entered it.  Implemented as a
// reduce-to-zero followed by a broadcast.
func (c *Comm) Barrier() {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	if c.rank == 0 {
		for src := 1; src < c.Size(); src++ {
			c.Release(c.Recv(src, tag))
		}
		for dst := 1; dst < c.Size(); dst++ {
			c.Send(dst, tag, nil)
		}
	} else {
		c.Send(0, tag, nil)
		c.Release(c.Recv(0, tag))
	}
	// A barrier synchronizes simulated clocks too: no rank may proceed
	// before the slowest participant under the machine model.
	// (Implemented by the message waits above; the root's replies carry
	// its post-gather clock.)
}

// bcastTree walks the binomial broadcast tree: recv fires once with the
// parent on every non-root rank, then send fires for each child in
// bit order.  It is the single definition of the tree shape — Bcast and
// the scalar bcastWord must keep byte-identical message patterns, so
// they share it.
func (c *Comm) bcastTree(root, tag int, recv func(parent int), send func(child int)) {
	size := c.Size()
	// Relative rank so any root works with the same tree shape.
	rel := (c.rank - root + size) % size
	if rel != 0 {
		// The parent clears the lowest set bit of rel.
		recv((rel&(rel-1) + root) % size)
	}
	// Forward to children: set successively higher bits.
	for bit := 1; bit < size; bit <<= 1 {
		if rel&bit != 0 {
			break // this rank is a leaf at and above this level
		}
		if child := rel | bit; child < size {
			send((child + root) % size)
		}
	}
}

// Bcast broadcasts data from root to all ranks using a binomial tree and
// returns the received (or original, on root) payload.
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	c.bcastTree(root, tag,
		func(parent int) {
			// The payload escapes to the caller, so only the message
			// shell goes back to the pool.
			m := c.Recv(parent, tag)
			data = m.Data
			c.world.release(m, false)
		},
		func(child int) { c.Send(child, tag, data) })
	return data
}

// Gather collects each rank's payload at root.  On root the returned slice
// has Size() entries indexed by rank; on other ranks it is nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	if c.rank != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		m := c.Recv(src, tag)
		out[src] = m.Data
		c.world.release(m, false) // payload escapes in out
	}
	return out
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part.  parts is only examined on root.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	if c.rank == root {
		for dst := 0; dst < c.Size(); dst++ {
			if dst == root {
				continue
			}
			c.Send(dst, tag, parts[dst])
		}
		return append([]byte(nil), parts[root]...)
	}
	m := c.Recv(root, tag)
	data := m.Data
	c.world.release(m, false) // payload escapes to the caller
	return data
}

// Allgather collects every rank's payload on every rank.
func (c *Comm) Allgather(data []byte) [][]byte {
	parts := c.Gather(0, data)
	if c.rank == 0 {
		flat, lens := flatten(parts)
		// Root already has parts; the broadcasts reconstruct them on the
		// other ranks.
		c.Bcast(0, flat)
		c.BcastInts(0, lens)
		return parts
	}
	flat := c.Bcast(0, nil)
	lens := c.BcastInts(0, nil)
	return unflatten(flat, lens)
}

// BcastInts broadcasts an int64 slice from root.
func (c *Comm) BcastInts(root int, vals []int64) []int64 {
	if c.rank == root {
		c.Bcast(root, PutInts(vals))
		return vals
	}
	return GetInts(c.Bcast(root, nil))
}

// BcastFloats broadcasts a float64 slice from root.
func (c *Comm) BcastFloats(root int, vals []float64) []float64 {
	if c.rank == root {
		c.Bcast(root, PutFloats(vals))
		return vals
	}
	return GetFloats(c.Bcast(root, nil))
}

func flatten(parts [][]byte) (flat []byte, lens []int64) {
	lens = make([]int64, len(parts))
	total := 0
	for i, p := range parts {
		lens[i] = int64(len(p))
		total += len(p)
	}
	flat = make([]byte, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return flat, lens
}

func unflatten(flat []byte, lens []int64) [][]byte {
	parts := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		parts[i] = flat[off : off+int(n)]
		off += int(n)
	}
	return parts
}

// ReduceInt64 combines each rank's value at root with op (applied in rank
// order, so non-commutative ops are still deterministic).  Only root's
// return value is meaningful.
func (c *Comm) ReduceInt64(root int, val int64, op func(a, b int64) int64) int64 {
	parts := c.Gather(root, PutInts([]int64{val}))
	if c.rank != root {
		return 0
	}
	acc := GetInts(parts[0])[0]
	for i := 1; i < len(parts); i++ {
		acc = op(acc, GetInts(parts[i])[0])
	}
	return acc
}

// allreduceWord is the shared scalar allreduce: a rooted gather of one
// 64-bit word, rank-ordered reduction at the root, and a broadcast of
// the result.  It moves the scalar through pooled 8-byte messages with
// the exact message pattern (tags, sources, sizes, order) of the
// Gather+Bcast composition it replaces, so simulated costs are
// unchanged while the hot reduction loops of the drivers stay off the
// allocator.
func (c *Comm) allreduceWord(w uint64, op func(acc, v uint64) uint64) uint64 {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	if c.rank == 0 {
		for src := 1; src < c.Size(); src++ {
			m := c.Recv(src, tag)
			w = op(w, binary.LittleEndian.Uint64(m.Data))
			c.Release(m)
		}
	} else {
		m := c.world.getMessage(8)
		binary.LittleEndian.PutUint64(m.Data, w)
		c.deliver(0, tag, m)
	}
	return c.bcastWord(0, w)
}

// AllreduceInt64 combines each rank's int64 on every rank (op applied
// in rank order, so non-commutative ops stay deterministic).
func (c *Comm) AllreduceInt64(val int64, op func(a, b int64) int64) int64 {
	return int64(c.allreduceWord(uint64(val), func(acc, v uint64) uint64 {
		return uint64(op(int64(acc), int64(v)))
	}))
}

// AllreduceFloat64 combines each rank's float64 on every rank.
func (c *Comm) AllreduceFloat64(val float64, op func(a, b float64) float64) float64 {
	return math.Float64frombits(c.allreduceWord(math.Float64bits(val), func(acc, v uint64) uint64 {
		return math.Float64bits(op(math.Float64frombits(acc), math.Float64frombits(v)))
	}))
}

// bcastWord broadcasts one 64-bit word from root with the exact message
// pattern of Bcast on an 8-byte payload (same tree via bcastTree).
func (c *Comm) bcastWord(root int, w uint64) uint64 {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	c.bcastTree(root, tag,
		func(parent int) {
			m := c.Recv(parent, tag)
			w = binary.LittleEndian.Uint64(m.Data)
			c.Release(m)
		},
		func(child int) {
			m := c.world.getMessage(8)
			binary.LittleEndian.PutUint64(m.Data, w)
			c.deliver(child, tag, m)
		})
	return w
}

// MaxInt64 and SumInt64 are common reduce operators.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SumInt64 returns a+b; provided for use with the reduce collectives.
func SumInt64(a, b int64) int64 { return a + b }

// MaxFloat64 returns the larger of a and b.
func MaxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SumFloat64 returns a+b; provided for use with the reduce collectives.
func SumFloat64(a, b float64) float64 { return a + b }

// ReduceIntsSum element-wise sums equal-length int64 vectors at root
// over a binomial tree (log P rounds — the host never touches more than
// log P messages, unlike a flat gather), then broadcasts the result.
// Every rank receives the summed vector.
func (c *Comm) ReduceIntsSum(vals []int64) []int64 {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	size := c.Size()
	acc := append([]int64(nil), vals...)
	// Binomial reduce to rank 0: at round k, ranks with bit k set send
	// to (rank - 2^k) and drop out.
	for bit := 1; bit < size; bit <<= 1 {
		if c.rank&bit != 0 {
			c.SendInts(c.rank-bit, tag, acc)
			break
		}
		if c.rank+bit < size {
			in := c.RecvInts(c.rank+bit, tag)
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return c.BcastInts(0, acc)
}

// Alltoall exchanges parts[i] from this rank to rank i; the result holds
// the payload received from each rank (result[i] came from rank i).
func (c *Comm) Alltoall(parts [][]byte) [][]byte {
	c.PushPhase(event.PhaseCollective)
	defer c.PopPhase()
	tag := c.nextCollTag()
	size := c.Size()
	if len(parts) != size {
		panic("msg: Alltoall requires exactly one part per rank")
	}
	out := make([][]byte, size)
	for dst := 0; dst < size; dst++ {
		if dst == c.rank {
			out[dst] = append([]byte(nil), parts[dst]...)
			continue
		}
		c.Send(dst, tag, parts[dst])
	}
	for src := 0; src < size; src++ {
		if src == c.rank {
			continue
		}
		m := c.Recv(src, tag)
		out[src] = m.Data
		c.world.release(m, false) // payload escapes in out
	}
	return out
}
