package msg

// Collective operations.  Every rank in the world must call each
// collective in the same order; a per-rank sequence number synthesizes a
// private tag so that back-to-back collectives and user point-to-point
// traffic cannot interleave incorrectly.
//
// Broadcast and reduce use binomial trees (log P rounds, as a real MPI
// implementation would, which matters for the simulated timing model);
// gather/scatter are rooted linear exchanges, matching the paper's
// description of the similarity-matrix gather ("these gather and scatter
// operations require a minuscule amount of time since only one row of the
// matrix needs to be communicated to the host processor").

func (c *Comm) nextCollTag() int {
	t := collectiveTagBase + c.collSeq
	c.collSeq++
	return t
}

// Barrier blocks until every rank has entered it.  Implemented as a
// reduce-to-zero followed by a broadcast.
func (c *Comm) Barrier() {
	tag := c.nextCollTag()
	if c.rank == 0 {
		for src := 1; src < c.Size(); src++ {
			c.Recv(src, tag)
		}
		for dst := 1; dst < c.Size(); dst++ {
			c.Send(dst, tag, nil)
		}
	} else {
		c.Send(0, tag, nil)
		c.Recv(0, tag)
	}
	// A barrier synchronizes simulated clocks too: no rank may proceed
	// before the slowest participant under the machine model.
	// (Implemented by the message waits above; the root's replies carry
	// its post-gather clock.)
}

// Bcast broadcasts data from root to all ranks using a binomial tree and
// returns the received (or original, on root) payload.
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.nextCollTag()
	size := c.Size()
	// Relative rank so any root works with the same tree shape.
	rel := (c.rank - root + size) % size
	if rel != 0 {
		// Receive from parent: clear the lowest set bit of rel.
		parent := (rel&(rel-1) + root) % size
		data = c.Recv(parent, tag).Data
	}
	// Forward to children: set successively higher bits.
	for bit := 1; bit < size; bit <<= 1 {
		if rel&bit != 0 {
			break // this rank is a leaf at and above this level
		}
		child := rel | bit
		if child < size {
			c.Send((child+root)%size, tag, data)
		}
	}
	return data
}

// Gather collects each rank's payload at root.  On root the returned slice
// has Size() entries indexed by rank; on other ranks it is nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	tag := c.nextCollTag()
	if c.rank != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		out[src] = c.Recv(src, tag).Data
	}
	return out
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part.  parts is only examined on root.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	tag := c.nextCollTag()
	if c.rank == root {
		for dst := 0; dst < c.Size(); dst++ {
			if dst == root {
				continue
			}
			c.Send(dst, tag, parts[dst])
		}
		return append([]byte(nil), parts[root]...)
	}
	return c.Recv(root, tag).Data
}

// Allgather collects every rank's payload on every rank.
func (c *Comm) Allgather(data []byte) [][]byte {
	parts := c.Gather(0, data)
	if c.rank == 0 {
		flat, lens := flatten(parts)
		// Root already has parts; the broadcasts reconstruct them on the
		// other ranks.
		c.Bcast(0, flat)
		c.BcastInts(0, lens)
		return parts
	}
	flat := c.Bcast(0, nil)
	lens := c.BcastInts(0, nil)
	return unflatten(flat, lens)
}

// BcastInts broadcasts an int64 slice from root.
func (c *Comm) BcastInts(root int, vals []int64) []int64 {
	if c.rank == root {
		c.Bcast(root, PutInts(vals))
		return vals
	}
	return GetInts(c.Bcast(root, nil))
}

// BcastFloats broadcasts a float64 slice from root.
func (c *Comm) BcastFloats(root int, vals []float64) []float64 {
	if c.rank == root {
		c.Bcast(root, PutFloats(vals))
		return vals
	}
	return GetFloats(c.Bcast(root, nil))
}

func flatten(parts [][]byte) (flat []byte, lens []int64) {
	lens = make([]int64, len(parts))
	total := 0
	for i, p := range parts {
		lens[i] = int64(len(p))
		total += len(p)
	}
	flat = make([]byte, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return flat, lens
}

func unflatten(flat []byte, lens []int64) [][]byte {
	parts := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		parts[i] = flat[off : off+int(n)]
		off += int(n)
	}
	return parts
}

// ReduceInt64 combines each rank's value at root with op (applied in rank
// order, so non-commutative ops are still deterministic).  Only root's
// return value is meaningful.
func (c *Comm) ReduceInt64(root int, val int64, op func(a, b int64) int64) int64 {
	parts := c.Gather(root, PutInts([]int64{val}))
	if c.rank != root {
		return 0
	}
	acc := GetInts(parts[0])[0]
	for i := 1; i < len(parts); i++ {
		acc = op(acc, GetInts(parts[i])[0])
	}
	return acc
}

// AllreduceInt64 is ReduceInt64 followed by a broadcast of the result.
func (c *Comm) AllreduceInt64(val int64, op func(a, b int64) int64) int64 {
	r := c.ReduceInt64(0, val, op)
	return c.BcastInts(0, []int64{r})[0]
}

// AllreduceFloat64 combines each rank's float64 on every rank.
func (c *Comm) AllreduceFloat64(val float64, op func(a, b float64) float64) float64 {
	parts := c.Gather(0, PutFloats([]float64{val}))
	var acc float64
	if c.rank == 0 {
		acc = GetFloats(parts[0])[0]
		for i := 1; i < len(parts); i++ {
			acc = op(acc, GetFloats(parts[i])[0])
		}
	}
	return c.BcastFloats(0, []float64{acc})[0]
}

// MaxInt64 and SumInt64 are common reduce operators.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SumInt64 returns a+b; provided for use with the reduce collectives.
func SumInt64(a, b int64) int64 { return a + b }

// MaxFloat64 returns the larger of a and b.
func MaxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SumFloat64 returns a+b; provided for use with the reduce collectives.
func SumFloat64(a, b float64) float64 { return a + b }

// ReduceIntsSum element-wise sums equal-length int64 vectors at root
// over a binomial tree (log P rounds — the host never touches more than
// log P messages, unlike a flat gather), then broadcasts the result.
// Every rank receives the summed vector.
func (c *Comm) ReduceIntsSum(vals []int64) []int64 {
	tag := c.nextCollTag()
	size := c.Size()
	acc := append([]int64(nil), vals...)
	// Binomial reduce to rank 0: at round k, ranks with bit k set send
	// to (rank - 2^k) and drop out.
	for bit := 1; bit < size; bit <<= 1 {
		if c.rank&bit != 0 {
			c.SendInts(c.rank-bit, tag, acc)
			break
		}
		if c.rank+bit < size {
			in := c.RecvInts(c.rank+bit, tag)
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return c.BcastInts(0, acc)
}

// Alltoall exchanges parts[i] from this rank to rank i; the result holds
// the payload received from each rank (result[i] came from rank i).
func (c *Comm) Alltoall(parts [][]byte) [][]byte {
	tag := c.nextCollTag()
	size := c.Size()
	if len(parts) != size {
		panic("msg: Alltoall requires exactly one part per rank")
	}
	out := make([][]byte, size)
	for dst := 0; dst < size; dst++ {
		if dst == c.rank {
			out[dst] = append([]byte(nil), parts[dst]...)
			continue
		}
		c.Send(dst, tag, parts[dst])
	}
	for src := 0; src < size; src++ {
		if src == c.rank {
			continue
		}
		out[src] = c.Recv(src, tag).Data
	}
	return out
}
