package msg

// CostModel parameterizes the simulated machine.  The values are abstract
// seconds; the defaults below are loosely calibrated to the IBM SP2 era
// hardware of the paper (Section 4.5 introduces Tlat, the per-word
// memory-to-memory copy time, and Tsetup, the per-message startup time).
//
// The simulated clock exists because the reproduction runs P logical ranks
// as goroutines on a host with far fewer physical cores: wall-clock scaling
// curves would reflect the host, not the algorithm.  Under the model each
// rank's clock advances by its own compute work and by communication
// costs, and the curves recover the *shape* of the paper's figures.
type CostModel struct {
	TSetup   float64 // per-message startup cost, paid by the sender
	TByte    float64 // per-byte injection/copy cost
	TLatency float64 // wire latency between send completion and arrival
	TWork    float64 // seconds per abstract compute work unit
}

// SP2Model returns cost parameters loosely calibrated to the paper's IBM
// SP2: ~40 microsecond message startup, ~35 MB/s sustained bandwidth,
// and a per-element compute unit chosen so that the ~61k-element mesh
// refinement matches the order of magnitude of the paper's Fig. 6 times.
func SP2Model() *CostModel {
	return &CostModel{
		TSetup:   40e-6,
		TByte:    1.0 / 35e6,
		TLatency: 40e-6,
		TWork:    1.8e-6,
	}
}

// Clock is one rank's simulated time.
type Clock struct {
	Now float64 // simulated seconds since Run started
}

// MaxTime returns the largest value in times (the parallel makespan), or 0
// for an empty slice.
func MaxTime(times []float64) float64 {
	var max float64
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return max
}
