package msg

import "plum/internal/machine"

// CostModel parameterizes the simulated machine.  The values are abstract
// seconds; the defaults below are loosely calibrated to the IBM SP2 era
// hardware of the paper (Section 4.5 introduces Tlat, the per-word
// memory-to-memory copy time, and Tsetup, the per-message startup time).
//
// The simulated clock exists because the reproduction runs P logical ranks
// as goroutines on a host with far fewer physical cores: wall-clock scaling
// curves would reflect the host, not the algorithm.  Under the model each
// rank's clock advances by its own compute work and by communication
// costs, and the curves recover the *shape* of the paper's figures.
//
// The scalar constants describe a flat machine (every pair equidistant,
// every rank equally fast).  Installing a machine.Model in Topo replaces
// the per-pair constants, scales compute by per-rank speed, and routes
// transfers through the topology's contention queues; a nil Topo — or a
// machine.Flat built from the same constants — charges bitwise-identical
// costs (pinned by the golden regression test in internal/core).
type CostModel struct {
	TSetup   float64 // per-message startup cost, paid by the sender
	TByte    float64 // per-byte injection/copy cost
	TLatency float64 // wire latency between send completion and arrival
	TWork    float64 // seconds per abstract compute work unit

	// Topo, when non-nil, supplies per-pair costs, per-rank speeds, and
	// link contention in place of the flat scalars above.
	Topo machine.Model
}

// SP2Model returns cost parameters loosely calibrated to the paper's IBM
// SP2: ~40 microsecond message startup, ~35 MB/s sustained bandwidth
// (the machine.SP2Link constants), and a per-element compute unit chosen
// so that the ~61k-element mesh refinement matches the order of
// magnitude of the paper's Fig. 6 times.
func SP2Model() *CostModel {
	l := machine.SP2Link()
	return &CostModel{
		TSetup:   l.Setup,
		TByte:    l.PerByte,
		TLatency: l.Latency,
		TWork:    1.8e-6,
	}
}

// WithTopo returns a copy of the model with the given topology
// installed; the receiver is not modified.
func (m *CostModel) WithTopo(t machine.Model) *CostModel {
	out := *m
	out.Topo = t
	return &out
}

// Clock is one rank's simulated time.
type Clock struct {
	Now float64 // simulated seconds since Run started
}

// MaxTime returns the largest value in times (the parallel makespan), or 0
// for an empty slice.
func MaxTime(times []float64) float64 {
	var max float64
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return max
}
