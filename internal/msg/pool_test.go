package msg

import (
	"testing"
)

// The runtime pool's contract: releasing a message hands its struct and
// payload buffer back to the world, the next send of a fitting size
// recycles both, and none of it is observable — envelopes, payloads,
// delivery order, and wildcard matching behave exactly as if every
// message were freshly allocated.

// TestReleaseRecyclesMessage: after Release, the next same-size send
// reuses the released struct and buffer (LIFO pool), and the recycled
// message carries the new envelope and payload only.
func TestReleaseRecyclesMessage(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			// Acks sequence the sends after the receiver's releases —
			// otherwise both allocate before anything returns to the pool.
			c.Send(1, 1, []byte{1, 2, 3})
			c.Release(c.Recv(1, 99)) // return the ack's shell to the pool too
			c.Send(1, 2, []byte{4, 5, 6})
			return
		}
		m1 := c.Recv(0, 1)
		buf1 := &m1.Data[0]
		c.Release(m1)
		c.Send(0, 99, nil)
		m2 := c.Recv(0, 2)
		if m1 != m2 {
			t.Error("released message struct was not recycled")
		}
		if &m2.Data[0] != buf1 {
			t.Error("released payload buffer was not recycled")
		}
		if m2.Src != 0 || m2.Tag != 2 || string(m2.Data) != "\x04\x05\x06" {
			t.Errorf("recycled message has wrong contents: %+v", m2)
		}
	})
}

// TestPoolSizeClasses: buffers recycle within their power-of-two class
// and a larger request does not receive a smaller buffer.
func TestPoolSizeClasses(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 9)) // class 16
			c.Release(c.Recv(1, 99))
			c.Send(1, 2, make([]byte, 33)) // class 64
			c.Release(c.Recv(1, 99))
			c.Send(1, 3, make([]byte, 12)) // fits class 16 again
			return
		}
		m1 := c.Recv(0, 1)
		if cap(m1.Data) != 16 {
			t.Errorf("9-byte payload got cap %d, want 16", cap(m1.Data))
		}
		buf1 := &m1.Data[0]
		c.Release(m1)
		c.Send(0, 99, nil)
		m2 := c.Recv(0, 2) // larger: must not reuse the 16-byte buffer
		if cap(m2.Data) != 64 {
			t.Errorf("33-byte payload got cap %d, want 64", cap(m2.Data))
		}
		c.Release(m2)
		c.Send(0, 99, nil)
		m3 := c.Recv(0, 3) // 12 bytes: recycles the 16-byte buffer
		if &m3.Data[0] != buf1 || len(m3.Data) != 12 {
			t.Errorf("12-byte payload did not recycle the class-16 buffer (len %d)", len(m3.Data))
		}
	})
}

// TestCollectivePayloadsSurviveRecycling: payloads returned by the
// collectives escape to the caller; the pool must never hand their
// buffers to later sends.  A broadcast result is compared against its
// value after many further collectives reused the pool.
func TestCollectivePayloadsSurviveRecycling(t *testing.T) {
	Run(4, func(c *Comm) {
		data := c.Bcast(0, []byte{9, 8, 7, 6})
		snapshot := string(data)
		for i := 0; i < 20; i++ {
			c.Bcast(i%4, make([]byte, 4))
			c.AllreduceInt64(int64(i), SumInt64)
		}
		if string(data) != snapshot {
			t.Errorf("escaped broadcast payload was overwritten: %q -> %q", snapshot, string(data))
		}
	})
}

// TestMailboxOrderAfterSelectiveTake: unlinking from the middle of the
// intrusive delivery list preserves order for later wildcard receives —
// the regression the old slice-based order scan handled O(n).
func TestMailboxOrderAfterSelectiveTake(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 10, []byte{0})
			c.Send(1, 20, []byte{1})
			c.Send(1, 10, []byte{2})
			c.Send(1, 20, []byte{3})
			c.Send(1, 10, []byte{4})
			return
		}
		c.Recv(1-1, 20) // take the middle-ish tag-20 message first
		var got []byte
		for i := 0; i < 4; i++ {
			m := c.Recv(AnySource, AnyTag)
			got = append(got, m.Data[0])
			c.Release(m)
		}
		want := "\x00\x02\x03\x04"
		if string(got) != want {
			t.Errorf("wildcard drain order %v, want %v", got, []byte(want))
		}
	})
}

// TestSendRecvAllocFree: the steady-state exchange loop (send, recv,
// release) allocates nothing once the pool is warm.
func TestSendRecvAllocFree(t *testing.T) {
	RunModel(2, SP2Model(), func(c *Comm) {
		peer := 1 - c.Rank()
		exchange := func() {
			if c.Rank() == 0 {
				c.Send(peer, 7, []byte{1, 2, 3, 4})
				m := c.Recv(peer, 7)
				c.Release(m)
			} else {
				m := c.Recv(peer, 7)
				c.Release(m)
				c.Send(peer, 7, []byte{1, 2, 3, 4})
			}
		}
		exchange() // warm the pool
		if c.Rank() == 0 {
			// AllocsPerRun can't wrap a collective program, so count a
			// rank-0-driven ping-pong via testing.AllocsPerRun's contract:
			// the exchange itself must not allocate on either side; the
			// engine's channel ops don't allocate either.
			allocs := testing.AllocsPerRun(50, exchange)
			if allocs > 0 {
				t.Errorf("steady-state exchange allocates %.1f/op, want 0", allocs)
			}
		} else {
			for i := 0; i < 51; i++ {
				exchange()
			}
		}
	})
}
