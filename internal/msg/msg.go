package msg

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"strconv"

	"plum/internal/event"
	"plum/internal/obs"
)

// AnySource may be passed to Recv to match a message from any rank.
const AnySource = -1

// AnyTag may be passed to Recv to match a message with any tag.
const AnyTag = -1

// Tags below collectiveTagBase are available to user code; the collectives
// synthesize their own tags above it from a per-rank sequence number.
const collectiveTagBase = 1 << 24

// IsCollectiveTag reports whether tag was synthesized by this package's
// collectives (barrier, broadcast, reductions, all-to-all) rather than
// chosen by user code.  The profile aggregator uses it to attribute
// traced receive waits to the collective bucket.
func IsCollectiveTag(tag int) bool { return tag >= collectiveTagBase }

// Message is a received message together with its envelope.
type Message struct {
	Src  int    // sending rank
	Tag  int    // user tag
	Data []byte // payload (owned by the receiver after Recv)

	// arrival is the simulated time at which the message is available at
	// the receiver.  Zero when no cost model is installed.
	arrival float64
	// id links the message to its trace records (0 when untraced).
	id int64
	// prev/next thread the message into its mailbox's delivery-order
	// list while buffered (nil once taken), and next alone threads the
	// world's free list once released.
	prev, next *Message
}

// mailbox is the per-rank receive buffer: an intrusive doubly-linked
// list in delivery order.  One list serves both match modes — a direct
// (src, tag) take returns the first matching message in delivery order,
// which is FIFO per pair, and a wildcard take is the same scan with a
// looser predicate — and unlinking is O(1), which is what removed the
// old O(n) removeFromOrder scan (and the popped-slot retention leak of
// the per-key queue slices).  The event engine grants the execution
// token to exactly one rank at a time, so mailboxes need no locking:
// a sender links while holding the token, the owning rank unlinks while
// holding it, and delivery order — and with it wildcard matching — is
// deterministic because the engine's schedule is.
type mailbox struct {
	head, tail *Message
	n          int // buffered messages (mailbox high-water accounting)
}

func (mb *mailbox) put(m *Message) {
	m.prev = mb.tail
	m.next = nil
	if mb.tail != nil {
		mb.tail.next = m
	} else {
		mb.head = m
	}
	mb.tail = m
	mb.n++
}

// tryTake removes and returns the first message matching (src, tag) in
// delivery order, or nil when none is buffered.  src may be AnySource
// and tag may be AnyTag.
func (mb *mailbox) tryTake(src, tag int) *Message {
	for m := mb.head; m != nil; m = m.next {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			if m.prev != nil {
				m.prev.next = m.next
			} else {
				mb.head = m.next
			}
			if m.next != nil {
				m.next.prev = m.prev
			} else {
				mb.tail = m.prev
			}
			m.prev, m.next = nil, nil
			mb.n--
			return m
		}
	}
	return nil
}

// waitState records what a blocked rank is waiting for, so deliveries
// wake it only when they match — a spurious wake would schedule the
// rank at the wrong simulated time and let a later-keyed resume emit
// earlier-timed events, breaking the engine's nondecreasing-key
// processing order (and with it the reservation pass's simulated-time
// ordering of contended transfers).
type waitState struct {
	active   bool
	src, tag int     // what the blocked Recv matches (may be wildcards)
	clock    float64 // the rank's clock when it blocked
}

// numSizeClasses bounds the payload free-list size classes: class c
// holds buffers of capacity exactly 1<<c, so class 47 (128 TiB) is
// unreachable in practice and indexing never needs a range check
// beyond the class computation.
const numSizeClasses = 48

// World holds the shared state of a group of ranks.
type World struct {
	size    int
	boxes   []mailbox
	model   *CostModel     // nil means no simulated timing
	eng     *event.Engine  // the execution substrate
	trace   *event.Trace   // nil unless the run is traced
	spans   *event.SpanLog // nil unless the run records phase spans
	msgSeq  int64          // message ids for trace edges
	waiting []waitState    // per-rank blocked-receive state

	// Runtime free lists.  All pool operations happen while the caller
	// holds the execution token, so — like the mailboxes — they need no
	// locking and recycle in a deterministic order.  freeShells chains
	// released Message structs through their next pointers; freeBufs[c]
	// stacks released payload buffers of capacity exactly 1<<c.
	freeShells *Message
	freeBufs   [numSizeClasses][][]byte

	// stats holds the world's host-plane counters.  Like the pools they
	// are token-serialized plain fields — a few integer increments on
	// the hot paths, no atomics — and are flushed into the process-wide
	// obs registry once, when the world finishes (flushStats).  Nothing
	// here ever reaches a simulated clock.
	stats worldStats
}

// worldStats is one world's host-plane accounting: pool recycling
// effectiveness per size class, how full mailboxes got, and traffic
// split by tag class (user protocols vs collective internals).
type worldStats struct {
	shellHits, shellMisses int64
	bufHits, bufMisses     [numSizeClasses]int64
	mailboxHighWater       int
	userMsgs, collMsgs     int64
	userBytes, collBytes   int64
}

// flushStats folds the world's counters — and its engine's scheduling
// counters — into the process-wide registry with a handful of atomic
// adds.  Called once per world, after the engine stops (including on
// panic paths, so deadlock aborts are visible).
func (w *World) flushStats() {
	r := obs.Default
	es := w.eng.Stats()
	r.Counter("plum_engine_yields_total", "path", "fast").Add(es.FastYields)
	r.Counter("plum_engine_yields_total", "path", "handoff").Add(es.HandoffYields)
	r.Counter("plum_engine_blocks_total").Add(es.Blocks)
	r.Counter("plum_engine_wakes_total").Add(es.Wakes)
	r.Counter("plum_engine_deadlock_aborts_total").Add(es.DeadlockAborts)
	r.Gauge("plum_engine_calendar_highwater").SetMax(int64(es.CalendarHighWater))

	st := &w.stats
	r.Counter("plum_msg_pool_shells_total", "result", "hit").Add(st.shellHits)
	r.Counter("plum_msg_pool_shells_total", "result", "miss").Add(st.shellMisses)
	for c := range st.bufHits {
		if st.bufHits[c] == 0 && st.bufMisses[c] == 0 {
			continue
		}
		cl := strconv.Itoa(c)
		r.Counter("plum_msg_pool_buffers_total", "result", "hit", "class", cl).Add(st.bufHits[c])
		r.Counter("plum_msg_pool_buffers_total", "result", "miss", "class", cl).Add(st.bufMisses[c])
	}
	r.Gauge("plum_msg_mailbox_highwater").SetMax(int64(st.mailboxHighWater))
	r.Counter("plum_msg_messages_total", "class", "user").Add(st.userMsgs)
	r.Counter("plum_msg_messages_total", "class", "collective").Add(st.collMsgs)
	r.Counter("plum_msg_bytes_total", "class", "user").Add(st.userBytes)
	r.Counter("plum_msg_bytes_total", "class", "collective").Add(st.collBytes)
}

// sizeClass returns the free-list class whose buffers hold n bytes:
// the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getMessage returns a message with a zeroed envelope and Data sized to
// n bytes (contents undefined), recycling a released struct and buffer
// when available.
func (w *World) getMessage(n int) *Message {
	m := w.freeShells
	if m != nil {
		w.freeShells = m.next
		m.next = nil
		w.stats.shellHits++
	} else {
		m = &Message{}
		w.stats.shellMisses++
	}
	if n > 0 {
		c := sizeClass(n)
		if bl := w.freeBufs[c]; len(bl) > 0 {
			m.Data = bl[len(bl)-1][:n]
			w.freeBufs[c] = bl[:len(bl)-1]
			w.stats.bufHits[c]++
		} else {
			m.Data = make([]byte, n, 1<<c)
			w.stats.bufMisses[c]++
		}
	}
	return m
}

// release returns a message struct — and, when withData is set, its
// payload buffer — to the world's free lists.  withData=false is for
// messages whose Data escaped to user code (Bcast, Gather, ... return
// payloads by reference); the shell is recycled, the buffer stays with
// its new owner.
func (w *World) release(m *Message, withData bool) {
	if withData {
		if c := cap(m.Data); c > 0 && c&(c-1) == 0 {
			cl := bits.Len(uint(c)) - 1
			w.freeBufs[cl] = append(w.freeBufs[cl], m.Data[:0])
		}
	}
	*m = Message{next: w.freeShells}
	w.freeShells = m
}

// Comm is one rank's handle to the world.  It is not safe for concurrent
// use by multiple goroutines; each rank owns exactly one Comm.
type Comm struct {
	rank    int
	world   *World
	clock   Clock
	collSeq int // collective sequence number, advances in lockstep

	// phases is the rank's open-phase stack; curPhase caches its top so
	// the record-stamping hot paths read one field.  Maintained on every
	// run (a few appends per cycle), consumed by traced ones.
	phases   []event.Phase
	curPhase event.Phase
}

// Rank returns this processor's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Clock returns the rank's simulated clock (zero-valued without a model).
func (c *Comm) Clock() *Clock { return &c.clock }

// Elapsed returns the rank's simulated elapsed time in seconds.
func (c *Comm) Elapsed() float64 { return c.clock.Now }

// Trace returns the world's event trace, or nil when the run is
// untraced (RunModel/Run).  The trace is shared by all ranks and grows
// as the run executes; reading it — including len(Records) as a phase
// boundary — is safe only while the caller's rank holds the execution
// token, i.e. from straight-line rank code.  Because the engine
// executes every run in one deterministic total order, the record count
// observed at any fixed point of a rank's program is itself
// deterministic, which is what lets the measured-cost feedback loop cut
// bitwise-reproducible profile windows out of a live trace.
func (c *Comm) Trace() *event.Trace { return c.world.trace }

// Spans returns the world's span log, or nil when the run does not
// record phase spans (everything but RunTracedSpans).  Like Trace, it
// is safe to use only from straight-line rank code.
func (c *Comm) Spans() *event.SpanLog { return c.world.spans }

// PushPhase opens a phase on this rank: subsequent trace records are
// stamped with it, and when the run records spans a span opens at the
// rank's current simulated time.  Phases nest; every PushPhase must be
// matched by a PopPhase on the same rank.  Pure observation — the
// simulated clock never moves.
func (c *Comm) PushPhase(ph event.Phase) {
	c.phases = append(c.phases, ph)
	c.curPhase = ph
	if sl := c.world.spans; sl != nil {
		sl.Begin(c.rank, ph, c.clock.Now)
	}
}

// PopPhase closes the innermost open phase on this rank.
func (c *Comm) PopPhase() {
	n := len(c.phases) - 1
	if n < 0 {
		panic("msg: PopPhase without matching PushPhase")
	}
	c.phases = c.phases[:n]
	if n > 0 {
		c.curPhase = c.phases[n-1]
	} else {
		c.curPhase = event.PhaseNone
	}
	if sl := c.world.spans; sl != nil {
		sl.End(c.rank, c.clock.Now)
	}
}

// Release returns a received message — struct and payload buffer — to
// the world's free pool, where the next Send will recycle them.  The
// caller must not touch m or m.Data afterwards.  Releasing is optional
// (an unreleased message is ordinary garbage) but keeps hot exchange
// loops allocation-free; the runtime's own decode-and-discard paths
// (RecvInts, RecvFloats, the collectives' internal receives) release
// automatically.
func (c *Comm) Release(m *Message) { c.world.release(m, true) }

// Compute advances this rank's simulated clock by the cost of `units`
// abstract work units under the installed cost model.  On a
// heterogeneous machine the charge is scaled by the rank's relative
// speed (half-speed processors take twice as long).
func (c *Comm) Compute(units float64) {
	if m := c.world.model; m != nil {
		t := units * m.TWork
		if m.Topo != nil {
			if s := m.Topo.Speed(c.rank); s != 1 {
				t /= s
			}
		}
		t0 := c.clock.Now
		c.clock.Now += t
		c.traceLocal(t0)
	}
}

// AdvanceTime adds raw simulated seconds to this rank's clock.
func (c *Comm) AdvanceTime(seconds float64) {
	t0 := c.clock.Now
	c.clock.Now += seconds
	c.traceLocal(t0)
}

func (c *Comm) traceLocal(t0 float64) {
	if tr := c.world.trace; tr != nil && c.clock.Now != t0 {
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindCompute,
			T0: t0, T1: c.clock.Now, Peer: -1, Phase: c.curPhase,
		})
	}
}

// Send delivers data to rank dst with the given tag.  It never blocks on
// the receiver.  The payload is copied, so the caller may reuse the
// slice.
func (c *Comm) Send(dst, tag int, data []byte) {
	m := c.world.getMessage(len(data))
	copy(m.Data, data)
	c.deliver(dst, tag, m)
}

// deliver injects a pooled message whose Data the caller has already
// filled: the charging, contention, tracing, and wake logic shared by
// Send and the encode-in-place senders (SendInts, SendFloats).
func (c *Comm) deliver(dst, tag int, m *Message) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("msg: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	m.Src, m.Tag = c.rank, tag
	w := c.world
	t0 := c.clock.Now
	depart := c.clock.Now
	if mod := w.model; mod != nil {
		// Sender pays the per-message setup plus per-byte injection cost;
		// the message arrives after the wire latency.  With a topology
		// installed the constants are per-pair and the transfer may queue
		// on shared links (fat-tree up-link contention) before injection.
		setup, perByte, latency := mod.TSetup, mod.TByte, mod.TLatency
		if mod.Topo != nil {
			lp := mod.Topo.Pair(c.rank, dst)
			setup, perByte, latency = lp.Setup, lp.PerByte, lp.Latency
		}
		c.clock.Now += setup + float64(len(m.Data))*perByte
		depart = c.clock.Now
		if mod.Topo != nil {
			if mod.Topo.Contended(c.rank, dst) {
				// Deterministic reservation pass: yield until this send is
				// the globally next event, so shared-link reservations
				// happen in (time, rank, seq) order — bitwise reproducible
				// — instead of goroutine-scheduling order.  Contention-free
				// topologies skip the yield, keeping delivery order — and
				// therefore wildcard matching — on the exact path of the
				// scalar model.
				w.eng.Yield(c.rank, depart)
			}
			depart = mod.Topo.Acquire(c.rank, dst, len(m.Data), depart)
		}
		m.arrival = depart + latency
	}
	if tr := w.trace; tr != nil {
		w.msgSeq++
		m.id = w.msgSeq
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindSend, T0: t0, T1: c.clock.Now,
			Peer: dst, Tag: tag, Bytes: len(m.Data), MsgID: m.id,
			Depart: depart, Phase: c.curPhase,
		})
	}
	if IsCollectiveTag(tag) {
		w.stats.collMsgs++
		w.stats.collBytes += int64(len(m.Data))
	} else {
		w.stats.userMsgs++
		w.stats.userBytes += int64(len(m.Data))
	}
	w.boxes[dst].put(m)
	if w.boxes[dst].n > w.stats.mailboxHighWater {
		w.stats.mailboxHighWater = w.boxes[dst].n
	}
	// Wake the receiver only when this message matches its blocked Recv,
	// keyed no earlier than the receiver's own clock: the resumed rank's
	// clock then catches up to at least its wake key before it emits any
	// further event, which keeps the engine's processed keys
	// nondecreasing — the property the deterministic reservation pass's
	// simulated-time ordering rests on.
	if ws := &w.waiting[dst]; ws.active &&
		(ws.src == AnySource || ws.src == m.Src) &&
		(ws.tag == AnyTag || ws.tag == m.Tag) {
		wake := m.arrival
		if ws.clock > wake {
			wake = ws.clock
		}
		w.eng.Wake(dst, wake)
	}
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource and tag may be AnyTag.
//
// Under the cost model the receiver waits for the arrival and then pays
// its own per-message and per-byte receive overhead (matching + copy-out),
// mirroring the sender's injection cost.  This is what makes a rooted
// gather cost the root ~P message receipts — the host-side bottleneck the
// paper's Section 4.2 warns about for serial partitioning.
func (c *Comm) Recv(src, tag int) *Message {
	mb := &c.world.boxes[c.rank]
	t0 := c.clock.Now
	m := mb.tryTake(src, tag)
	for m == nil {
		ws := &c.world.waiting[c.rank]
		*ws = waitState{active: true, src: src, tag: tag, clock: c.clock.Now}
		c.world.eng.Block(c.rank)
		ws.active = false
		m = mb.tryTake(src, tag)
	}
	if mod := c.world.model; mod != nil {
		if m.arrival > c.clock.Now {
			c.clock.Now = m.arrival
		}
		setup, perByte := mod.TSetup, mod.TByte
		if mod.Topo != nil {
			lp := mod.Topo.Pair(m.Src, c.rank)
			setup, perByte = lp.Setup, lp.PerByte
		}
		c.clock.Now += setup + float64(len(m.Data))*perByte
	}
	if tr := c.world.trace; tr != nil {
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindRecv, T0: t0, T1: c.clock.Now,
			Peer: m.Src, Tag: m.Tag, Bytes: len(m.Data), MsgID: m.id,
			Arrival: m.arrival, Phase: c.curPhase,
		})
	}
	return m
}

// RankPanic is the typed panic value runWorld raises when a rank's
// program panics: the rank, the phase it was executing (PhaseNone when
// no phase was open), the original panic value, and the goroutine stack
// captured at the point of the panic.  Serving layers recover it to
// turn a dying world into a structured per-request error instead of
// process death; the CLI paths let it unwind as before.
type RankPanic struct {
	Rank  int
	Phase event.Phase
	Value any
	Stack []byte
}

func (rp *RankPanic) Error() string {
	return fmt.Sprintf("msg: rank %d panicked: %v", rp.Rank, rp.Value)
}

// Unwrap exposes the original panic value when it was itself an error,
// so errors.Is/As see through the rank wrapper.
func (rp *RankPanic) Unwrap() error {
	if err, ok := rp.Value.(error); ok {
		return err
	}
	return nil
}

// DeadlockError is the typed panic value runWorld raises when the
// engine aborts blocked ranks with no matching send in flight — every
// listed rank was stuck in Recv when the calendar drained.
type DeadlockError struct {
	Ranks []int
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("msg: deadlock: ranks %v blocked in Recv with no matching send in flight", d.Ranks)
}

// Run executes fn on p ranks and blocks until all complete.  A panic on
// any rank is re-raised on the caller after all ranks stop.
func Run(p int, fn func(*Comm)) {
	RunModel(p, nil, fn)
}

// RunModel is Run with a simulated machine cost model installed; it returns
// the final simulated clock value of each rank.  A nil model disables
// timing (all clocks remain zero).
func RunModel(p int, model *CostModel, fn func(*Comm)) []float64 {
	times, _, _ := runWorld(p, model, false, nil, fn)
	return times
}

// RunTraced is RunModel with event tracing enabled: every clock-advancing
// operation of every rank is recorded, message sends are linked to the
// receives that consumed them, and the returned trace supports
// critical-path extraction (event.CriticalPath) and Chrome-tracing export
// (Trace.WriteChrome).
func RunTraced(p int, model *CostModel, fn func(*Comm)) ([]float64, *event.Trace) {
	times, tr, _ := runWorld(p, model, true, nil, fn)
	return times, tr
}

// RunTracedSpans is RunTraced with the causal span layer enabled: the
// world carries an event.SpanLog configured by opts, Comm.PushPhase /
// PopPhase record into it, and the log is closed (final flush + stream
// trailer) when the run completes.  Span recording is observation-only
// — simulated clocks, traces, and results are bitwise identical with
// spans on or off — and the stream is deterministic because every span
// mutation happens under the engine's execution token.
func RunTracedSpans(p int, model *CostModel, opts event.SpanOptions, fn func(*Comm)) ([]float64, *event.Trace, *event.SpanLog) {
	return runWorld(p, model, true, &opts, fn)
}

func runWorld(p int, model *CostModel, traced bool, spanOpts *event.SpanOptions, fn func(*Comm)) ([]float64, *event.Trace, *event.SpanLog) {
	if p <= 0 {
		panic("msg: world size must be positive")
	}
	if model != nil && model.Topo != nil {
		if model.Topo.Ranks() < p {
			panic(fmt.Sprintf("msg: topology models %d ranks, world needs %d", model.Topo.Ranks(), p))
		}
		// Fresh contention state per run so a model can be reused.
		model.Topo.Reset()
	}
	w := &World{size: p, boxes: make([]mailbox, p), model: model,
		eng: event.NewEngine(p), waiting: make([]waitState, p)}
	if traced {
		w.trace = &event.Trace{P: p}
		w.trace.Grow(64 * p)
	}
	if spanOpts != nil {
		w.spans = event.NewSpanLog(p, *spanOpts)
	}
	comms := make([]*Comm, p)
	for i := range comms {
		comms[i] = &Comm{rank: i, world: w}
	}
	panics := make([]any, p)
	stacks := make([][]byte, p)
	defer w.flushStats() // flush even when a rank panic unwinds runWorld
	w.eng.Run(func(r int) {
		defer func() {
			if e := recover(); e != nil {
				panics[r] = e
				stacks[r] = debug.Stack()
			}
		}()
		fn(comms[r])
	})
	// A real panic on one rank starves its partners, which then abort as
	// deadlocked; report the root cause, not the symptom.  Both faults
	// re-raise typed values (*RankPanic, *DeadlockError) so a recovering
	// caller — the serving layer — can attribute the failure to a rank
	// and phase instead of parsing a message string.
	var deadlocked []int
	for r, e := range panics {
		if e == nil {
			continue
		}
		if _, ok := e.(event.Deadlock); ok {
			deadlocked = append(deadlocked, r)
			continue
		}
		panic(&RankPanic{Rank: r, Phase: comms[r].curPhase, Value: e, Stack: stacks[r]})
	}
	if len(deadlocked) > 0 {
		panic(&DeadlockError{Ranks: deadlocked})
	}
	if w.spans != nil {
		if err := w.spans.Close(); err != nil {
			panic(fmt.Sprintf("msg: span sink: %v", err))
		}
	}
	times := make([]float64, p)
	for i, cm := range comms {
		times[i] = cm.clock.Now
	}
	return times, w.trace, w.spans
}
