package msg

import (
	"fmt"

	"plum/internal/event"
)

// AnySource may be passed to Recv to match a message from any rank.
const AnySource = -1

// AnyTag may be passed to Recv to match a message with any tag.
const AnyTag = -1

// Tags below collectiveTagBase are available to user code; the collectives
// synthesize their own tags above it from a per-rank sequence number.
const collectiveTagBase = 1 << 24

// IsCollectiveTag reports whether tag was synthesized by this package's
// collectives (barrier, broadcast, reductions, all-to-all) rather than
// chosen by user code.  The profile aggregator uses it to attribute
// traced receive waits to the collective bucket.
func IsCollectiveTag(tag int) bool { return tag >= collectiveTagBase }

// Message is a received message together with its envelope.
type Message struct {
	Src  int    // sending rank
	Tag  int    // user tag
	Data []byte // payload (owned by the receiver after Recv)

	// arrival is the simulated time at which the message is available at
	// the receiver.  Zero when no cost model is installed.
	arrival float64
	// id links the message to its trace records (0 when untraced).
	id int64
}

// matchKey identifies a queue within a mailbox.
type matchKey struct {
	src int
	tag int
}

// mailbox is the per-rank receive buffer.  The event engine grants the
// execution token to exactly one rank at a time, so mailboxes need no
// locking: a sender appends while holding the token, the owning rank
// removes while holding it.
type mailbox struct {
	queues map[matchKey][]*Message
	// order preserves delivery order for AnySource/AnyTag matching.
	// Deliveries happen in the engine's deterministic schedule, so
	// wildcard matching is deterministic too.
	order []*Message
}

func newMailbox() *mailbox {
	return &mailbox{queues: make(map[matchKey][]*Message)}
}

func (mb *mailbox) put(m *Message) {
	k := matchKey{m.Src, m.Tag}
	mb.queues[k] = append(mb.queues[k], m)
	mb.order = append(mb.order, m)
}

// tryTake removes and returns the first message matching (src, tag), or
// nil when none is buffered.
func (mb *mailbox) tryTake(src, tag int) *Message {
	if src != AnySource && tag != AnyTag {
		k := matchKey{src, tag}
		q := mb.queues[k]
		if len(q) == 0 {
			return nil
		}
		m := q[0]
		mb.queues[k] = q[1:]
		mb.removeFromOrder(m)
		return m
	}
	// Wildcard match: scan delivery order.
	for i, m := range mb.order {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			mb.order = append(mb.order[:i], mb.order[i+1:]...)
			k := matchKey{m.Src, m.Tag}
			q := mb.queues[k]
			for j, qm := range q {
				if qm == m {
					mb.queues[k] = append(q[:j], q[j+1:]...)
					break
				}
			}
			return m
		}
	}
	return nil
}

func (mb *mailbox) removeFromOrder(m *Message) {
	for i, om := range mb.order {
		if om == m {
			mb.order = append(mb.order[:i], mb.order[i+1:]...)
			return
		}
	}
}

// waitState records what a blocked rank is waiting for, so deliveries
// wake it only when they match — a spurious wake would schedule the
// rank at the wrong simulated time and let a later-keyed resume emit
// earlier-timed events, breaking the engine's nondecreasing-key
// processing order (and with it the reservation pass's simulated-time
// ordering of contended transfers).
type waitState struct {
	active   bool
	src, tag int     // what the blocked Recv matches (may be wildcards)
	clock    float64 // the rank's clock when it blocked
}

// World holds the shared state of a group of ranks.
type World struct {
	size    int
	boxes   []*mailbox
	model   *CostModel    // nil means no simulated timing
	eng     *event.Engine // the execution substrate
	trace   *event.Trace  // nil unless the run is traced
	msgSeq  int64         // message ids for trace edges
	waiting []waitState   // per-rank blocked-receive state
}

// Comm is one rank's handle to the world.  It is not safe for concurrent
// use by multiple goroutines; each rank owns exactly one Comm.
type Comm struct {
	rank    int
	world   *World
	clock   Clock
	collSeq int // collective sequence number, advances in lockstep
}

// Rank returns this processor's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Clock returns the rank's simulated clock (zero-valued without a model).
func (c *Comm) Clock() *Clock { return &c.clock }

// Elapsed returns the rank's simulated elapsed time in seconds.
func (c *Comm) Elapsed() float64 { return c.clock.Now }

// Trace returns the world's event trace, or nil when the run is
// untraced (RunModel/Run).  The trace is shared by all ranks and grows
// as the run executes; reading it — including len(Records) as a phase
// boundary — is safe only while the caller's rank holds the execution
// token, i.e. from straight-line rank code.  Because the engine
// executes every run in one deterministic total order, the record count
// observed at any fixed point of a rank's program is itself
// deterministic, which is what lets the measured-cost feedback loop cut
// bitwise-reproducible profile windows out of a live trace.
func (c *Comm) Trace() *event.Trace { return c.world.trace }

// Compute advances this rank's simulated clock by the cost of `units`
// abstract work units under the installed cost model.  On a
// heterogeneous machine the charge is scaled by the rank's relative
// speed (half-speed processors take twice as long).
func (c *Comm) Compute(units float64) {
	if m := c.world.model; m != nil {
		t := units * m.TWork
		if m.Topo != nil {
			if s := m.Topo.Speed(c.rank); s != 1 {
				t /= s
			}
		}
		t0 := c.clock.Now
		c.clock.Now += t
		c.traceLocal(t0)
	}
}

// AdvanceTime adds raw simulated seconds to this rank's clock.
func (c *Comm) AdvanceTime(seconds float64) {
	t0 := c.clock.Now
	c.clock.Now += seconds
	c.traceLocal(t0)
}

func (c *Comm) traceLocal(t0 float64) {
	if tr := c.world.trace; tr != nil && c.clock.Now != t0 {
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindCompute,
			T0: t0, T1: c.clock.Now, Peer: -1,
		})
	}
}

// Send delivers data to rank dst with the given tag.  It never blocks on
// the receiver.  The payload is copied, so the caller may reuse the
// slice.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("msg: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	m := &Message{Src: c.rank, Tag: tag, Data: buf}
	w := c.world
	t0 := c.clock.Now
	if mod := w.model; mod != nil {
		// Sender pays the per-message setup plus per-byte injection cost;
		// the message arrives after the wire latency.  With a topology
		// installed the constants are per-pair and the transfer may queue
		// on shared links (fat-tree up-link contention) before injection.
		setup, perByte, latency := mod.TSetup, mod.TByte, mod.TLatency
		if mod.Topo != nil {
			lp := mod.Topo.Pair(c.rank, dst)
			setup, perByte, latency = lp.Setup, lp.PerByte, lp.Latency
		}
		c.clock.Now += setup + float64(len(data))*perByte
		depart := c.clock.Now
		if mod.Topo != nil {
			if mod.Topo.Contended(c.rank, dst) {
				// Deterministic reservation pass: yield until this send is
				// the globally next event, so shared-link reservations
				// happen in (time, rank, seq) order — bitwise reproducible
				// — instead of goroutine-scheduling order.  Contention-free
				// topologies skip the yield, keeping delivery order — and
				// therefore wildcard matching — on the exact path of the
				// scalar model.
				w.eng.Yield(c.rank, depart)
			}
			depart = mod.Topo.Acquire(c.rank, dst, len(data), depart)
		}
		m.arrival = depart + latency
	}
	if tr := w.trace; tr != nil {
		w.msgSeq++
		m.id = w.msgSeq
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindSend, T0: t0, T1: c.clock.Now,
			Peer: dst, Tag: tag, Bytes: len(data), MsgID: m.id,
		})
	}
	w.boxes[dst].put(m)
	// Wake the receiver only when this message matches its blocked Recv,
	// keyed no earlier than the receiver's own clock: the resumed rank's
	// clock then catches up to at least its wake key before it emits any
	// further event, which keeps the engine's processed keys
	// nondecreasing — the property the deterministic reservation pass's
	// simulated-time ordering rests on.
	if ws := &w.waiting[dst]; ws.active &&
		(ws.src == AnySource || ws.src == m.Src) &&
		(ws.tag == AnyTag || ws.tag == m.Tag) {
		wake := m.arrival
		if ws.clock > wake {
			wake = ws.clock
		}
		w.eng.Wake(dst, wake)
	}
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource and tag may be AnyTag.
//
// Under the cost model the receiver waits for the arrival and then pays
// its own per-message and per-byte receive overhead (matching + copy-out),
// mirroring the sender's injection cost.  This is what makes a rooted
// gather cost the root ~P message receipts — the host-side bottleneck the
// paper's Section 4.2 warns about for serial partitioning.
func (c *Comm) Recv(src, tag int) *Message {
	mb := c.world.boxes[c.rank]
	t0 := c.clock.Now
	m := mb.tryTake(src, tag)
	for m == nil {
		ws := &c.world.waiting[c.rank]
		*ws = waitState{active: true, src: src, tag: tag, clock: c.clock.Now}
		c.world.eng.Block(c.rank)
		ws.active = false
		m = mb.tryTake(src, tag)
	}
	if mod := c.world.model; mod != nil {
		if m.arrival > c.clock.Now {
			c.clock.Now = m.arrival
		}
		setup, perByte := mod.TSetup, mod.TByte
		if mod.Topo != nil {
			lp := mod.Topo.Pair(m.Src, c.rank)
			setup, perByte = lp.Setup, lp.PerByte
		}
		c.clock.Now += setup + float64(len(m.Data))*perByte
	}
	if tr := c.world.trace; tr != nil {
		tr.Add(event.Record{
			Rank: c.rank, Kind: event.KindRecv, T0: t0, T1: c.clock.Now,
			Peer: m.Src, Tag: m.Tag, Bytes: len(m.Data), MsgID: m.id,
			Arrival: m.arrival,
		})
	}
	return m
}

// Run executes fn on p ranks and blocks until all complete.  A panic on
// any rank is re-raised on the caller after all ranks stop.
func Run(p int, fn func(*Comm)) {
	RunModel(p, nil, fn)
}

// RunModel is Run with a simulated machine cost model installed; it returns
// the final simulated clock value of each rank.  A nil model disables
// timing (all clocks remain zero).
func RunModel(p int, model *CostModel, fn func(*Comm)) []float64 {
	times, _ := runWorld(p, model, false, fn)
	return times
}

// RunTraced is RunModel with event tracing enabled: every clock-advancing
// operation of every rank is recorded, message sends are linked to the
// receives that consumed them, and the returned trace supports
// critical-path extraction (event.CriticalPath) and Chrome-tracing export
// (Trace.WriteChrome).
func RunTraced(p int, model *CostModel, fn func(*Comm)) ([]float64, *event.Trace) {
	return runWorld(p, model, true, fn)
}

func runWorld(p int, model *CostModel, traced bool, fn func(*Comm)) ([]float64, *event.Trace) {
	if p <= 0 {
		panic("msg: world size must be positive")
	}
	if model != nil && model.Topo != nil {
		if model.Topo.Ranks() < p {
			panic(fmt.Sprintf("msg: topology models %d ranks, world needs %d", model.Topo.Ranks(), p))
		}
		// Fresh contention state per run so a model can be reused.
		model.Topo.Reset()
	}
	w := &World{size: p, boxes: make([]*mailbox, p), model: model,
		eng: event.NewEngine(p), waiting: make([]waitState, p)}
	if traced {
		w.trace = &event.Trace{P: p}
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	comms := make([]*Comm, p)
	for i := range comms {
		comms[i] = &Comm{rank: i, world: w}
	}
	panics := make([]any, p)
	w.eng.Run(func(r int) {
		defer func() {
			if e := recover(); e != nil {
				panics[r] = e
			}
		}()
		fn(comms[r])
	})
	// A real panic on one rank starves its partners, which then abort as
	// deadlocked; report the root cause, not the symptom.
	var deadlocked []int
	for r, e := range panics {
		if e == nil {
			continue
		}
		if _, ok := e.(event.Deadlock); ok {
			deadlocked = append(deadlocked, r)
			continue
		}
		panic(fmt.Sprintf("msg: rank %d panicked: %v", r, e))
	}
	if len(deadlocked) > 0 {
		panic(fmt.Sprintf("msg: deadlock: ranks %v blocked in Recv with no matching send in flight", deadlocked))
	}
	times := make([]float64, p)
	for i, cm := range comms {
		times[i] = cm.clock.Now
	}
	return times, w.trace
}
