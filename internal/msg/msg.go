// Package msg provides an MPI-style message-passing runtime for a fixed
// group of logical processors (ranks) executing as goroutines within a
// single process.
//
// The paper this repository reproduces (Oliker & Biswas, SPAA 1997) was
// implemented in C/C++ with MPI on an IBM SP2.  Go has no MPI bindings, so
// this package supplies the substrate: tagged point-to-point sends and
// receives, the collectives the PLUM framework needs (barrier, broadcast,
// gather, scatter, allgather, reduce, allreduce, all-to-all), and a
// deterministic simulated machine-time model (see clock.go) used to produce
// shape-faithful scaling curves for processor counts far beyond the host's
// physical core count.
//
// Semantics follow MPI's eager mode: sends are asynchronous and buffered
// (they never block), receives block until a matching message (by source
// and tag) arrives.  Message order between a fixed (source, destination,
// tag) triple is FIFO, which makes every algorithm built on this package
// deterministic.  Simulated times are bitwise reproducible too, with one
// exception: topologies that model shared-link contention (the fat
// tree's up-link queues) reserve links in goroutine-scheduling order, so
// contended timings are approximately — not bitwise — reproducible.
package msg

import (
	"fmt"
	"sync"
)

// AnySource may be passed to Recv to match a message from any rank.
const AnySource = -1

// AnyTag may be passed to Recv to match a message with any tag.
const AnyTag = -1

// Tags below collectiveTagBase are available to user code; the collectives
// synthesize their own tags above it from a per-rank sequence number.
const collectiveTagBase = 1 << 24

// Message is a received message together with its envelope.
type Message struct {
	Src  int    // sending rank
	Tag  int    // user tag
	Data []byte // payload (owned by the receiver after Recv)

	// arrival is the simulated time at which the message is available at
	// the receiver.  Zero when no cost model is installed.
	arrival float64
}

// matchKey identifies a queue within a mailbox.
type matchKey struct {
	src int
	tag int
}

// mailbox is the per-rank receive buffer.  Senders append, the owning rank
// removes.  A single mutex + cond per rank suffices: contention is bounded
// by the number of ranks and messages are coarse-grained in this workload.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[matchKey][]*Message
	// order preserves global arrival order for AnySource/AnyTag matching.
	order []*Message
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: make(map[matchKey][]*Message)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m *Message) {
	mb.mu.Lock()
	k := matchKey{m.Src, m.Tag}
	mb.queues[k] = append(mb.queues[k], m)
	mb.order = append(mb.order, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// take removes and returns the first message matching (src, tag), blocking
// until one is available.
func (mb *mailbox) take(src, tag int) *Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m := mb.tryTakeLocked(src, tag); m != nil {
			return m
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) tryTakeLocked(src, tag int) *Message {
	if src != AnySource && tag != AnyTag {
		k := matchKey{src, tag}
		q := mb.queues[k]
		if len(q) == 0 {
			return nil
		}
		m := q[0]
		mb.queues[k] = q[1:]
		mb.removeFromOrder(m)
		return m
	}
	// Wildcard match: scan arrival order for determinism.
	for i, m := range mb.order {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			mb.order = append(mb.order[:i], mb.order[i+1:]...)
			k := matchKey{m.Src, m.Tag}
			q := mb.queues[k]
			for j, qm := range q {
				if qm == m {
					mb.queues[k] = append(q[:j], q[j+1:]...)
					break
				}
			}
			return m
		}
	}
	return nil
}

func (mb *mailbox) removeFromOrder(m *Message) {
	for i, om := range mb.order {
		if om == m {
			mb.order = append(mb.order[:i], mb.order[i+1:]...)
			return
		}
	}
}

// World holds the shared state of a group of ranks.
type World struct {
	size  int
	boxes []*mailbox
	model *CostModel // nil means no simulated timing
}

// Comm is one rank's handle to the world.  It is not safe for concurrent
// use by multiple goroutines; each rank owns exactly one Comm.
type Comm struct {
	rank    int
	world   *World
	clock   Clock
	collSeq int // collective sequence number, advances in lockstep
}

// Rank returns this processor's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Clock returns the rank's simulated clock (zero-valued without a model).
func (c *Comm) Clock() *Clock { return &c.clock }

// Elapsed returns the rank's simulated elapsed time in seconds.
func (c *Comm) Elapsed() float64 { return c.clock.Now }

// Compute advances this rank's simulated clock by the cost of `units`
// abstract work units under the installed cost model.  On a
// heterogeneous machine the charge is scaled by the rank's relative
// speed (half-speed processors take twice as long).
func (c *Comm) Compute(units float64) {
	if m := c.world.model; m != nil {
		t := units * m.TWork
		if m.Topo != nil {
			if s := m.Topo.Speed(c.rank); s != 1 {
				t /= s
			}
		}
		c.clock.Now += t
	}
}

// AdvanceTime adds raw simulated seconds to this rank's clock.
func (c *Comm) AdvanceTime(seconds float64) { c.clock.Now += seconds }

// Send delivers data to rank dst with the given tag.  It never blocks.
// The payload is copied, so the caller may reuse the slice.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("msg: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	m := &Message{Src: c.rank, Tag: tag, Data: buf}
	if mod := c.world.model; mod != nil {
		// Sender pays the per-message setup plus per-byte injection cost;
		// the message arrives after the wire latency.  With a topology
		// installed the constants are per-pair and the transfer may queue
		// on shared links (fat-tree up-link contention) before injection.
		setup, perByte, latency := mod.TSetup, mod.TByte, mod.TLatency
		if mod.Topo != nil {
			lp := mod.Topo.Pair(c.rank, dst)
			setup, perByte, latency = lp.Setup, lp.PerByte, lp.Latency
		}
		c.clock.Now += setup + float64(len(data))*perByte
		depart := c.clock.Now
		if mod.Topo != nil {
			depart = mod.Topo.Acquire(c.rank, dst, len(data), depart)
		}
		m.arrival = depart + latency
	}
	c.world.boxes[dst].put(m)
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource and tag may be AnyTag.
//
// Under the cost model the receiver waits for the arrival and then pays
// its own per-message and per-byte receive overhead (matching + copy-out),
// mirroring the sender's injection cost.  This is what makes a rooted
// gather cost the root ~P message receipts — the host-side bottleneck the
// paper's Section 4.2 warns about for serial partitioning.
func (c *Comm) Recv(src, tag int) *Message {
	m := c.world.boxes[c.rank].take(src, tag)
	if mod := c.world.model; mod != nil {
		if m.arrival > c.clock.Now {
			c.clock.Now = m.arrival
		}
		setup, perByte := mod.TSetup, mod.TByte
		if mod.Topo != nil {
			lp := mod.Topo.Pair(m.Src, c.rank)
			setup, perByte = lp.Setup, lp.PerByte
		}
		c.clock.Now += setup + float64(len(m.Data))*perByte
	}
	return m
}

// Run executes fn on p ranks (goroutines) and blocks until all complete.
// A panic on any rank is re-raised on the caller after all ranks stop.
func Run(p int, fn func(*Comm)) {
	RunModel(p, nil, fn)
}

// RunModel is Run with a simulated machine cost model installed; it returns
// the final simulated clock value of each rank.  A nil model disables
// timing (all clocks remain zero).
func RunModel(p int, model *CostModel, fn func(*Comm)) []float64 {
	if p <= 0 {
		panic("msg: world size must be positive")
	}
	if model != nil && model.Topo != nil {
		if model.Topo.Ranks() < p {
			panic(fmt.Sprintf("msg: topology models %d ranks, world needs %d", model.Topo.Ranks(), p))
		}
		// Fresh contention state per run so a model can be reused.
		model.Topo.Reset()
	}
	w := &World{size: p, boxes: make([]*mailbox, p), model: model}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	comms := make([]*Comm, p)
	for i := range comms {
		comms[i] = &Comm{rank: i, world: w}
	}
	var wg sync.WaitGroup
	panics := make([]any, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[r] = e
				}
			}()
			fn(comms[r])
		}(i)
	}
	wg.Wait()
	for r, e := range panics {
		if e != nil {
			panic(fmt.Sprintf("msg: rank %d panicked: %v", r, e))
		}
	}
	times := make([]float64, p)
	for i, cm := range comms {
		times[i] = cm.clock.Now
	}
	return times
}
