package msg

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			m := c.Recv(0, 7)
			if string(m.Data) != "hello" {
				t.Errorf("got %q, want hello", m.Data)
			}
			if m.Src != 0 || m.Tag != 7 {
				t.Errorf("envelope = (%d,%d), want (0,7)", m.Src, m.Tag)
			}
		}
	})
}

func TestSendRecvFIFOOrder(t *testing.T) {
	const n = 100
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			for i := 0; i < n; i++ {
				c.SendInts(1, 3, []int64{int64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got := c.RecvInts(0, 3)[0]
				if got != int64(i) {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestRecvTagSelectivity(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			c.SendInts(1, 1, []int64{11})
			c.SendInts(1, 2, []int64{22})
		} else {
			// Receive in the opposite order of sending: tag matching must
			// pick the right message, not the first arrival.
			if v := c.RecvInts(0, 2)[0]; v != 22 {
				t.Errorf("tag 2 delivered %d", v)
			}
			if v := c.RecvInts(0, 1)[0]; v != 11 {
				t.Errorf("tag 1 delivered %d", v)
			}
		}
	})
}

func TestRecvAnySource(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		if c.rank == 0 {
			seen := make(map[int]bool)
			for i := 1; i < p; i++ {
				m := c.Recv(AnySource, 9)
				seen[m.Src] = true
			}
			if len(seen) != p-1 {
				t.Errorf("received from %d distinct sources, want %d", len(seen), p-1)
			}
		} else {
			c.Send(0, 9, []byte{byte(c.rank)})
		}
	})
}

func TestRecvAnyTag(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			c.Send(1, 5, []byte("a"))
			c.Send(1, 6, []byte("b"))
		} else {
			m1 := c.Recv(0, AnyTag)
			m2 := c.Recv(0, AnyTag)
			// FIFO per pair: any-tag receives must respect arrival order.
			if m1.Tag != 5 || m2.Tag != 6 {
				t.Errorf("any-tag order = %d,%d; want 5,6", m1.Tag, m2.Tag)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			buf := []byte{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // mutate after send; receiver must see the original
		} else {
			m := c.Recv(0, 0)
			if m.Data[0] != 1 {
				t.Errorf("payload not copied: got %v", m.Data)
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	const p = 8
	var phase atomic.Int32
	Run(p, func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != p {
			t.Errorf("rank %d passed barrier with phase=%d, want %d", c.rank, got, p)
		}
	})
}

func TestBcastAllRoots(t *testing.T) {
	const p = 7
	for root := 0; root < p; root++ {
		Run(p, func(c *Comm) {
			var in []byte
			if c.rank == root {
				in = []byte{42, byte(root)}
			}
			out := c.Bcast(root, in)
			if len(out) != 2 || out[0] != 42 || out[1] != byte(root) {
				t.Errorf("root %d rank %d: got %v", root, c.rank, out)
			}
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const p = 5
	Run(p, func(c *Comm) {
		parts := c.Gather(0, PutInts([]int64{int64(c.rank * 10)}))
		if c.rank == 0 {
			for r := 0; r < p; r++ {
				if got := GetInts(parts[r])[0]; got != int64(r*10) {
					t.Errorf("gathered rank %d value %d", r, got)
				}
			}
		}
		// Scatter back doubled values.
		var out [][]byte
		if c.rank == 0 {
			out = make([][]byte, p)
			for r := 0; r < p; r++ {
				out[r] = PutInts([]int64{int64(r * 20)})
			}
		}
		mine := c.Scatter(0, out)
		if got := GetInts(mine)[0]; got != int64(c.rank*20) {
			t.Errorf("rank %d scattered value %d", c.rank, got)
		}
	})
}

func TestAllgather(t *testing.T) {
	const p = 6
	Run(p, func(c *Comm) {
		all := c.Allgather(PutInts([]int64{int64(c.rank + 1)}))
		if len(all) != p {
			t.Fatalf("rank %d: got %d parts", c.rank, len(all))
		}
		for r := 0; r < p; r++ {
			if got := GetInts(all[r])[0]; got != int64(r+1) {
				t.Errorf("rank %d: part %d = %d", c.rank, r, got)
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const p = 9
	Run(p, func(c *Comm) {
		sum := c.ReduceInt64(0, int64(c.rank), SumInt64)
		if c.rank == 0 && sum != p*(p-1)/2 {
			t.Errorf("reduce sum = %d", sum)
		}
		max := c.AllreduceInt64(int64(c.rank*c.rank), MaxInt64)
		if max != int64((p-1)*(p-1)) {
			t.Errorf("rank %d: allreduce max = %d", c.rank, max)
		}
		fs := c.AllreduceFloat64(float64(c.rank), SumFloat64)
		if fs != float64(p*(p-1)/2) {
			t.Errorf("rank %d: float allreduce = %v", c.rank, fs)
		}
	})
}

func TestAlltoall(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		parts := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			parts[dst] = PutInts([]int64{int64(c.rank*100 + dst)})
		}
		got := c.Alltoall(parts)
		for src := 0; src < p; src++ {
			want := int64(src*100 + c.rank)
			if v := GetInts(got[src])[0]; v != want {
				t.Errorf("rank %d from %d: got %d want %d", c.rank, src, v, want)
			}
		}
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Distinct sequence tags must keep consecutive collectives separate
	// even when payload shapes are identical.
	const p = 4
	Run(p, func(c *Comm) {
		a := c.BcastInts(0, []int64{1})
		b := c.BcastInts(0, []int64{2})
		if a[0] != 1 || b[0] != 2 {
			t.Errorf("rank %d: collectives interleaved: %v %v", c.rank, a, b)
		}
	})
}

func TestEncodeRoundTripProperty(t *testing.T) {
	intProp := func(vals []int64) bool {
		return reflect.DeepEqual(GetInts(PutInts(vals)), append([]int64{}, vals...))
	}
	if err := quick.Check(intProp, nil); err != nil {
		t.Error(err)
	}
	floatProp := func(vals []float64) bool {
		out := GetFloats(PutFloats(vals))
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(floatProp, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulatedClockSend(t *testing.T) {
	model := &CostModel{TSetup: 1, TByte: 0.5, TLatency: 2, TWork: 1}
	times := RunModel(2, model, func(c *Comm) {
		if c.rank == 0 {
			c.Send(1, 0, make([]byte, 4)) // injection cost 1 + 4*0.5 = 3
		} else {
			m := c.Recv(0, 0)
			_ = m
			// arrival = 3 + latency 2 = 5, plus the receiver's own
			// overhead 1 + 4*0.5 = 3 -> 8.
			if c.Elapsed() != 8 {
				t.Errorf("receiver clock %v, want 8", c.Elapsed())
			}
		}
	})
	if times[0] != 3 {
		t.Errorf("sender clock %v, want 3", times[0])
	}
	if times[1] != 8 {
		t.Errorf("receiver clock %v, want 8", times[1])
	}
}

func TestSimulatedClockCompute(t *testing.T) {
	model := &CostModel{TWork: 2}
	times := RunModel(3, model, func(c *Comm) {
		c.Compute(float64(c.rank + 1)) // ranks finish at 2, 4, 6
	})
	want := []float64{2, 4, 6}
	if !reflect.DeepEqual(times, want) {
		t.Errorf("times = %v, want %v", times, want)
	}
}

func TestSimulatedClockBarrierSynchronizes(t *testing.T) {
	model := &CostModel{TWork: 1, TSetup: 0, TByte: 0, TLatency: 0}
	times := RunModel(4, model, func(c *Comm) {
		c.Compute(float64(c.rank * 10)) // slowest rank reaches 30
		c.Barrier()
	})
	for r, tm := range times {
		if tm < 30 {
			t.Errorf("rank %d left barrier at %v, before slowest rank", r, tm)
		}
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate from rank")
		}
	}()
	Run(2, func(c *Comm) {
		if c.rank == 1 {
			panic("boom")
		}
	})
}

func TestMaxTime(t *testing.T) {
	if MaxTime(nil) != 0 {
		t.Error("MaxTime(nil) != 0")
	}
	if got := MaxTime([]float64{1, 5, 3}); got != 5 {
		t.Errorf("MaxTime = %v", got)
	}
}
