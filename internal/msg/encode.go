package msg

import (
	"encoding/binary"
	"math"
)

// The PLUM framework exchanges three kinds of payloads: integer id lists
// (shared-edge marking rounds, similarity-matrix rows), float vectors
// (solver ghost exchange), and opaque byte buffers (packed element
// migration).  These helpers provide allocation-explicit conversions on
// top of the raw byte transport; the Send/Recv pairs below additionally
// encode straight into (and release back to) the world's message pool,
// so the per-iteration exchange loops of the solvers allocate nothing.

// PutInts encodes a slice of int64 values as little-endian bytes.
func PutInts(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

// GetInts decodes a byte slice produced by PutInts.
func GetInts(data []byte) []int64 {
	n := len(data) / 8
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals
}

// PutFloats encodes a slice of float64 values as little-endian IEEE-754.
func PutFloats(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// GetFloats decodes a byte slice produced by PutFloats.
func GetFloats(data []byte) []float64 {
	n := len(data) / 8
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals
}

// SendInts sends an int64 slice to dst, encoding directly into a pooled
// message buffer (no intermediate byte slice).
func (c *Comm) SendInts(dst, tag int, vals []int64) {
	m := c.world.getMessage(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.Data[8*i:], uint64(v))
	}
	c.deliver(dst, tag, m)
}

// RecvInts receives an int64 slice from src; the transport message is
// released back to the pool.
func (c *Comm) RecvInts(src, tag int) []int64 {
	m := c.Recv(src, tag)
	vals := GetInts(m.Data)
	c.Release(m)
	return vals
}

// SendFloats sends a float64 slice to dst, encoding directly into a
// pooled message buffer.
func (c *Comm) SendFloats(dst, tag int, vals []float64) {
	m := c.world.getMessage(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.Data[8*i:], math.Float64bits(v))
	}
	c.deliver(dst, tag, m)
}

// RecvFloats receives a float64 slice from src; the transport message is
// released back to the pool.
func (c *Comm) RecvFloats(src, tag int) []float64 {
	m := c.Recv(src, tag)
	vals := GetFloats(m.Data)
	c.Release(m)
	return vals
}
