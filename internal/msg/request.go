package msg

// Nonblocking point-to-point primitives.  The runtime's sends are
// already asynchronous (MPI eager mode), so Isend exists for symmetry
// and completes immediately; the operative primitive is Irecv + Wait,
// which lets a rank post its receives, overlap local compute with the
// messages' wire time, and only then pay the completion wait — the
// split-SpMV halo overlap of internal/linalg is built on exactly this.

// Request is the handle to a nonblocking operation.  A Request is owned
// by the rank that created it and must be completed with Wait (or
// Waitall) on that rank.
type Request struct {
	c        *Comm
	isRecv   bool
	src, tag int
	done     bool
	msg      *Message
}

// Isend sends data to rank dst exactly as Send does and returns an
// already-completed request (eager buffered send: the injection cost is
// paid at the call, and the caller may reuse data immediately).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.Send(dst, tag, data)
	return &Request{c: c, done: true}
}

// Irecv posts a receive for (src, tag) without blocking.  Matching is
// deferred to Wait: relative to the rank's other receives on the same
// (src, tag) pair, messages match in completion order, so programs that
// complete requests in post order (Waitall) keep MPI's posted-receive
// FIFO semantics.  src may be AnySource and tag may be AnyTag.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, isRecv: true, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received
// message (nil for send requests).  Under the cost model a receive
// charges exactly like Recv at the time Wait is called: the clock jumps
// to the message arrival only if the arrival is still in the future —
// wire time that passed while the rank computed is hidden.  Wait is
// idempotent; repeated calls return the same message.
func (r *Request) Wait() *Message {
	if r.done {
		return r.msg
	}
	r.done = true
	r.msg = r.c.Recv(r.src, r.tag)
	return r.msg
}

// Waitall completes every request in order.
func Waitall(rs []*Request) {
	for _, r := range rs {
		r.Wait()
	}
}
