package msg

import (
	"testing"

	"plum/internal/obs"
)

// The msg runtime flushes each world's host-plane counters into
// obs.Default when the world finishes.  The registry is process-wide
// and other tests also feed it, so these tests assert on deltas.

func snapshotDelta(t *testing.T, run func()) map[string]float64 {
	t.Helper()
	before := obs.Default.Snapshot()
	run()
	after := obs.Default.Snapshot()
	d := make(map[string]float64, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

func TestWorldStatsFlushedToRegistry(t *testing.T) {
	const p = 4
	d := snapshotDelta(t, func() {
		RunModel(p, SP2Model(), func(c *Comm) {
			// Exchange twice so released buffers get recycled: the second
			// round must be pool hits.
			for round := 0; round < 2; round++ {
				for peer := 0; peer < p; peer++ {
					if peer != c.Rank() {
						c.SendInts(peer, 7, []int64{int64(round)})
					}
				}
				for peer := 0; peer < p; peer++ {
					if peer != c.Rank() {
						c.RecvInts(peer, 7)
					}
				}
				c.Barrier()
			}
		})
	})

	if got := d[`plum_msg_messages_total{class="user"}`]; got != 2*p*(p-1) {
		t.Errorf("user messages delta = %v, want %d", got, 2*p*(p-1))
	}
	if d[`plum_msg_messages_total{class="collective"}`] <= 0 {
		t.Error("barrier produced no collective-class messages")
	}
	if d[`plum_msg_bytes_total{class="user"}`] <= 0 {
		t.Error("no user-class bytes counted")
	}
	if d[`plum_msg_pool_shells_total{result="hit"}`] <= 0 {
		t.Error("second exchange round produced no pool shell hits")
	}
	if d[`plum_msg_pool_shells_total{result="miss"}`] <= 0 {
		t.Error("first exchange round produced no pool shell misses")
	}
	if d[`plum_engine_yields_total{path="fast"}`]+d[`plum_engine_yields_total{path="handoff"}`] < 0 {
		t.Error("engine yield counters went backwards")
	}
	if d["plum_engine_blocks_total"] <= 0 {
		t.Error("no engine blocks counted for a blocking exchange")
	}
}

func TestMailboxHighWaterGauge(t *testing.T) {
	const p = 8
	RunModel(p, SP2Model(), func(c *Comm) {
		// Every rank floods rank 0 before it receives anything: rank 0's
		// mailbox must buffer at least p-1 messages at once.
		if c.Rank() != 0 {
			c.SendInts(0, 3, []int64{int64(c.Rank())})
			return
		}
		c.Compute(1e6) // stay busy while the senders inject
		for peer := 1; peer < p; peer++ {
			c.RecvInts(peer, 3)
		}
	})
	if hw := obs.Default.Value("plum_msg_mailbox_highwater"); hw < p-1 {
		t.Errorf("mailbox high-water = %v, want >= %d", hw, p-1)
	}
}

// TestStatsDoNotPerturbSimulatedTime: the counters are host-plane only —
// a world's simulated clocks are identical whether or not anything ever
// reads the registry (they are always collected; this pins the clock
// values against a recorded pre-instrumentation expectation shape: both
// runs must agree bitwise with each other).
func TestStatsDoNotPerturbSimulatedTime(t *testing.T) {
	run := func() []float64 {
		return RunModel(4, SP2Model(), func(c *Comm) {
			for i := 0; i < 5; i++ {
				c.Compute(100)
				c.AllreduceFloat64(float64(c.Rank()), SumFloat64)
			}
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rank %d clock diverged: %x vs %x", i, a[i], b[i])
		}
	}
}
