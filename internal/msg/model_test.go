package msg

import (
	"math"
	"testing"
)

// TestBcastLogDepth: under the machine model a binomial-tree broadcast
// of a large payload should cost O(log P) hops, not O(P).
func TestBcastLogDepth(t *testing.T) {
	model := &CostModel{TSetup: 0, TByte: 1, TLatency: 0, TWork: 0}
	payload := make([]byte, 1000) // 1000 time units per hop
	cost := func(p int) float64 {
		times := RunModel(p, model, func(c *Comm) {
			c.Bcast(0, payload)
		})
		return MaxTime(times)
	}
	c2, c16 := cost(2), cost(16)
	// A binomial tree with sender-serialized transfers has makespan
	// ~(4+3+2+1) hops at P=16 vs 1 hop at P=2: ratio ~10 with the
	// receive-side copy included; a flat linear broadcast would be ~15.
	ratio := c16 / c2
	if ratio > 12 {
		t.Errorf("broadcast cost ratio P=16/P=2 is %.1f; tree broken (linear would be ~15)", ratio)
	}
	if c16 <= c2 {
		t.Errorf("larger world cannot be cheaper: %v vs %v", c2, c16)
	}
}

// TestGatherLinearAtRoot: a rooted gather costs the root ~P message
// receipts — the paper's reason the similarity-matrix gather stays cheap
// is that each message is tiny, not that the gather is sublinear.
func TestGatherLinearAtRoot(t *testing.T) {
	model := &CostModel{TSetup: 1, TByte: 0, TLatency: 0, TWork: 0}
	cost := func(p int) float64 {
		times := RunModel(p, model, func(c *Comm) {
			c.Gather(0, []byte{1})
		})
		return times[0]
	}
	c4, c16 := cost(4), cost(16)
	if c16 < 3*c4 {
		t.Errorf("gather at root should scale ~linearly: P=4 %.0f, P=16 %.0f", c4, c16)
	}
}

// TestAlltoallCost: every rank pays P-1 send setups plus P-1 receive
// setups.
func TestAlltoallCost(t *testing.T) {
	model := &CostModel{TSetup: 1, TByte: 0, TLatency: 0, TWork: 0}
	p := 8
	times := RunModel(p, model, func(c *Comm) {
		parts := make([][]byte, p)
		for i := range parts {
			parts[i] = []byte{byte(i)}
		}
		c.Alltoall(parts)
	})
	for r, tm := range times {
		if math.Abs(tm-float64(2*(p-1))) > 1e-9 {
			t.Errorf("rank %d alltoall cost %v, want %d setups", r, tm, 2*(p-1))
		}
	}
}

// TestSP2ModelSanity: the shipped constants must be positive and give a
// sensible bandwidth/latency relation (setup dominates tiny messages;
// bandwidth dominates megabyte transfers).
func TestSP2ModelSanity(t *testing.T) {
	m := SP2Model()
	if m.TSetup <= 0 || m.TByte <= 0 || m.TLatency <= 0 || m.TWork <= 0 {
		t.Fatal("non-positive model constants")
	}
	tiny := m.TSetup + 8*m.TByte
	if tiny > 10*m.TSetup {
		t.Error("8-byte message should be setup-dominated")
	}
	big := float64(1<<20) * m.TByte
	if big < 100*m.TSetup {
		t.Error("1 MiB message should be bandwidth-dominated")
	}
}

// TestComputeAccumulates: Compute adds work time under the model and is
// a no-op without one.
func TestComputeAccumulates(t *testing.T) {
	times := RunModel(1, &CostModel{TWork: 3}, func(c *Comm) {
		c.Compute(2)
		c.Compute(5)
	})
	if times[0] != 21 {
		t.Errorf("clock = %v, want 21", times[0])
	}
	times = RunModel(1, nil, func(c *Comm) {
		c.Compute(1000)
	})
	if times[0] != 0 {
		t.Errorf("model-less clock = %v, want 0", times[0])
	}
}

// TestAdvanceTime: raw clock advancement (used by phase barriers).
func TestAdvanceTime(t *testing.T) {
	times := RunModel(1, &CostModel{}, func(c *Comm) {
		c.AdvanceTime(1.5)
		if c.Elapsed() != 1.5 {
			t.Errorf("Elapsed = %v", c.Elapsed())
		}
	})
	if times[0] != 1.5 {
		t.Errorf("final clock = %v", times[0])
	}
}
