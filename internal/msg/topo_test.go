package msg

import (
	"testing"

	"plum/internal/machine"
)

// The collectives are built on Send/Recv, so installing a machine.Model
// must make their simulated cost topology-dependent: the same broadcast
// is cheaper on a machine whose links are faster, and an SMP cluster
// sits between its all-intra and all-inter bounds.  These tests are the
// satellite requirement that "broadcast/allreduce costs must depend on
// topology"; go test -race over this package exercises the engine's
// token handoff under the race detector.

// bcastCost runs a P-rank broadcast of n bytes under the model and
// returns the makespan.
func bcastCost(p int, model *CostModel, n int) float64 {
	payload := make([]byte, n)
	times := RunModel(p, model, func(c *Comm) {
		c.Bcast(0, payload)
	})
	return MaxTime(times)
}

func TestBcastCostDependsOnTopology(t *testing.T) {
	const p, n = 8, 4096
	intra, inter := machine.SMPIntraLink(), machine.SP2Link()
	base := &CostModel{}
	smp := base.WithTopo(machine.NewSMPCluster(p, 4, intra, inter))
	allIntra := base.WithTopo(machine.NewFlat(p, intra))
	allInter := base.WithTopo(machine.NewFlat(p, inter))

	cSMP, cIntra, cInter := bcastCost(p, smp, n), bcastCost(p, allIntra, n), bcastCost(p, allInter, n)
	if !(cIntra < cSMP && cSMP < cInter) {
		t.Errorf("broadcast costs not ordered: all-intra %.6g < smp %.6g < all-inter %.6g expected",
			cIntra, cSMP, cInter)
	}
}

func TestAllreduceCostDependsOnTopology(t *testing.T) {
	const p = 8
	intra, inter := machine.SMPIntraLink(), machine.SP2Link()
	base := &CostModel{}
	cost := func(m *CostModel) float64 {
		times := RunModel(p, m, func(c *Comm) {
			c.AllreduceFloat64(float64(c.Rank()), SumFloat64)
		})
		return MaxTime(times)
	}
	cSMP := cost(base.WithTopo(machine.NewSMPCluster(p, 4, intra, inter)))
	cIntra := cost(base.WithTopo(machine.NewFlat(p, intra)))
	cInter := cost(base.WithTopo(machine.NewFlat(p, inter)))
	if !(cIntra < cSMP && cSMP < cInter) {
		t.Errorf("allreduce costs not ordered: all-intra %.6g < smp %.6g < all-inter %.6g expected",
			cIntra, cSMP, cInter)
	}
}

// TestFlatTopoBitwiseNoOp: a machine.Flat built from the scalar
// constants charges exactly what the scalars charge — the machine layer
// is a behavioral no-op until a real topology is selected.
func TestFlatTopoBitwiseNoOp(t *testing.T) {
	const p = 8
	scalar := SP2Model()
	flat := scalar.WithTopo(machine.NewFlat(p, machine.SP2Link()))
	run := func(m *CostModel) []float64 {
		return RunModel(p, m, func(c *Comm) {
			c.Compute(137)
			parts := make([][]byte, p)
			for i := range parts {
				parts[i] = make([]byte, 64+8*i)
			}
			c.Alltoall(parts)
			c.AllreduceInt64(int64(c.Rank()), SumInt64)
			c.Bcast(0, make([]byte, 1000))
			c.Barrier()
		})
	}
	a, b := run(scalar), run(flat)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d: scalar %v != flat-topo %v (must be bitwise identical)", r, a[r], b[r])
		}
	}
}

// TestHeteroComputeSlowdown: compute charges scale with per-rank speed.
func TestHeteroComputeSlowdown(t *testing.T) {
	const p = 4
	model := &CostModel{TWork: 2e-6}
	topo := machine.NewHetero(machine.NewFlat(p, machine.SP2Link()),
		machine.TwoGenerationSpeeds(p, 0.5))
	times := RunModel(p, model.WithTopo(topo), func(c *Comm) {
		c.Compute(1000)
	})
	for r := 0; r < p; r++ {
		want := 1000 * model.TWork
		if r >= (p+1)/2 {
			want *= 2 // half-speed generation
		}
		if times[r] != want {
			t.Errorf("rank %d compute time %v, want %v", r, times[r], want)
		}
	}
}

// TestFatTreeUplinkContention: two co-located ranks bursting off-group
// traffic at the same simulated instant serialize on their shared
// up-link, so the slower of the two arrivals lands one full
// serialization later than on a contention-free tree.  (The engine's
// reservation pass orders the tie by rank — rank 0 injects first — so
// rank 5's receive is the delayed one, deterministically.)
func TestFatTreeUplinkContention(t *testing.T) {
	const p, n = 8, 10000
	link := machine.LinkParams{Setup: 0, PerByte: 1e-6, Latency: 0}
	contended := machine.NewFatTree(p, 4, link, 0, 1e-6)
	free := machine.NewFatTree(p, 4, link, 0, 0) // infinitely fast up-link
	model := &CostModel{}
	makespan := func(topo machine.Model) float64 {
		times := RunModel(p, model.WithTopo(topo), func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(4, 1, make([]byte, n))
			case 1:
				c.Send(5, 1, make([]byte, n))
			case 4:
				c.Recv(0, 1)
			case 5:
				c.Recv(1, 1)
			}
		})
		if times[4] > times[5] {
			return times[4]
		}
		return times[5]
	}
	tc, tf := makespan(contended), makespan(free)
	if tc <= tf {
		t.Fatalf("contended makespan %v not later than contention-free %v", tc, tf)
	}
	if extra := tc - tf; extra < float64(n)*1e-6*0.99 {
		t.Errorf("up-link serialization delay %v, want ~%v", extra, float64(n)*1e-6)
	}
}

// TestFatTreeLatencyGrowsWithHops: receiving from a distant leaf takes
// longer than from a same-group leaf.
func TestFatTreeLatencyGrowsWithHops(t *testing.T) {
	const p = 16
	topo := machine.NewFatTree(p, 4, machine.LinkParams{}, 100e-6, 0)
	model := &CostModel{}
	arrival := func(src int) float64 {
		times := RunModel(p, model.WithTopo(topo), func(c *Comm) {
			if c.Rank() == src {
				c.Send(0, 1, []byte{1})
			}
			if c.Rank() == 0 {
				c.Recv(src, 1)
			}
		})
		return times[0]
	}
	near, far := arrival(1), arrival(15)
	if near >= far {
		t.Errorf("near-leaf arrival %v >= far-leaf arrival %v", near, far)
	}
}
