package msg

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"plum/internal/event"
	"plum/internal/machine"
)

// spanWorkload is an imbalanced, contended epoch body: co-located ranks
// burst off-group traffic through a tapered fat-tree up-link (queueing)
// while the senders' compute lags stagger the arrivals (sender-compute
// blame), with a collective epoch barrier on top.
func spanWorkload(c *Comm) {
	p := c.Size()
	c.PushPhase(event.PhaseSolve)
	c.Compute(float64(1000 * (1 + c.Rank())))
	c.PushPhase(event.PhaseHalo)
	if c.Rank() < p/2 {
		c.Send(c.Rank()+p/2, 1, make([]byte, 20000))
	} else {
		c.Recv(c.Rank()-p/2, 1)
	}
	c.PopPhase()
	c.PopPhase()
	c.AllreduceInt64(int64(c.Rank()), SumInt64)
	c.Barrier()
}

func fatTreeModel(p int) *CostModel {
	topo, err := machine.ByName("fattree", p)
	if err != nil {
		panic(err)
	}
	return SP2Model().WithTopo(topo)
}

// TestSpanPhaseNesting: the phase stack produces properly nested spans
// and stamps every record with its innermost open phase.
func TestSpanPhaseNesting(t *testing.T) {
	const p = 8
	_, tr, sl := RunTracedSpans(p, fatTreeModel(p), event.SpanOptions{}, spanWorkload)
	spans := sl.All()
	byPhase := map[event.Phase]int{}
	for _, sp := range spans {
		byPhase[sp.Phase]++
		if sp.T1 < sp.T0 {
			t.Errorf("span %+v runs backwards", sp)
		}
		if sp.Phase == event.PhaseHalo && sp.Depth != 1 {
			t.Errorf("halo span depth = %d, want 1 (nested in solve)", sp.Depth)
		}
		if sp.Phase == event.PhaseSolve && sp.Depth != 0 {
			t.Errorf("solve span depth = %d, want 0", sp.Depth)
		}
	}
	if byPhase[event.PhaseSolve] != p || byPhase[event.PhaseHalo] != p {
		t.Errorf("span census = %v, want %d solve and %d halo", byPhase, p, p)
	}
	if byPhase[event.PhaseCollective] == 0 {
		t.Error("collectives produced no spans")
	}
	phased := 0
	for _, r := range tr.Records {
		if r.Phase != event.PhaseNone {
			phased++
		}
	}
	if phased == 0 {
		t.Error("no record carries a phase stamp")
	}
}

// TestSpanStreamDeterministicRepeat: two identical runs produce
// byte-identical span streams.
func TestSpanStreamDeterministicRepeat(t *testing.T) {
	const p = 8
	stream := func() string {
		var buf bytes.Buffer
		_, _, sl := RunTracedSpans(p, fatTreeModel(p),
			event.SpanOptions{Sink: &buf, Label: map[string]string{"exp": "t"}},
			func(c *Comm) {
				spanWorkload(c)
				if c.Rank() == 0 {
					tr := c.Trace()
					sub := &event.Trace{P: c.Size(), Records: tr.Records}
					cp := event.CriticalPath(sub)
					c.Spans().CutEpoch(&cp, event.WaitBlame(sub, &cp))
				}
			})
		if err := sl.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := stream(), stream()
	if a != b {
		t.Errorf("span streams differ across identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestSpanStreamRingByteIdentity: the ring bound changes only resident
// memory, never the stream — span/blame/end lines are byte-identical
// with the bound on or off (sampling disabled), and the bound holds.
func TestSpanStreamRingByteIdentity(t *testing.T) {
	const p = 8
	run := func(ring int) (string, *event.SpanLog) {
		var buf bytes.Buffer
		_, _, sl := RunTracedSpans(p, fatTreeModel(p),
			event.SpanOptions{Sink: &buf, RingCap: ring},
			func(c *Comm) {
				for i := 0; i < 6; i++ {
					spanWorkload(c)
				}
			})
		if err := sl.Err(); err != nil {
			t.Fatal(err)
		}
		s := buf.String()
		return s[strings.IndexByte(s, '\n')+1:], sl // header carries the ring setting
	}
	unbounded, ul := run(0)
	bounded, bl := run(2)
	if unbounded != bounded {
		t.Errorf("stream bytes differ between unbounded and ring=2:\n--- unbounded\n%s--- ring\n%s",
			unbounded, bounded)
	}
	if bl.Evicted() == 0 {
		t.Error("ring bound never evicted; workload too small to prove anything")
	}
	if ul.PeakResident() <= bl.PeakResident() {
		t.Errorf("ring peak %d not below unbounded peak %d", bl.PeakResident(), ul.PeakResident())
	}
}

// TestSpansDoNotPerturb: recording spans must not move a single
// simulated clock — rank times are bitwise identical across the plain,
// traced, and traced+spans runs.
func TestSpansDoNotPerturb(t *testing.T) {
	const p = 8
	plain := RunModel(p, fatTreeModel(p), spanWorkload)
	var buf bytes.Buffer
	spanned, _, _ := RunTracedSpans(p, fatTreeModel(p),
		event.SpanOptions{Sink: &buf, RingCap: 2}, spanWorkload)
	for r := range plain {
		if plain[r] != spanned[r] {
			t.Errorf("rank %d: plain %v != spanned %v (must be bitwise identical)",
				r, plain[r], spanned[r])
		}
	}
}

// TestBlameConservationContended: on a real contended fat-tree run the
// attributed seconds sum exactly (up to float accumulation) to the
// critical path's receiver-perspective wait, with every bucket the
// workload provokes non-empty.
func TestBlameConservationContended(t *testing.T) {
	const p = 8
	_, tr := RunTraced(p, fatTreeModel(p), func(c *Comm) {
		for i := 0; i < 3; i++ {
			spanWorkload(c)
		}
	})
	cp := event.CriticalPath(tr)
	b := event.WaitBlame(tr, &cp)

	var want float64
	for i, st := range cp.Steps {
		if st.Kind == event.KindRecv && st.Arrival > st.T0 {
			want += st.Arrival - st.T0
		} else if i > 0 && cp.Steps[i-1].Rank == st.Rank {
			if gap := st.T0 - cp.Steps[i-1].T1; gap > 0 {
				want += gap
			}
		}
	}
	if want == 0 {
		t.Fatal("critical path has no wait; workload does not exercise blame")
	}
	if diff := math.Abs(b.Wait - want); diff > 1e-9*(1+want) {
		t.Errorf("blame total %.17g != path wait %.17g (diff %g)", b.Wait, want, diff)
	}
	var sum float64
	for _, v := range b.ByKind {
		sum += v
	}
	if diff := math.Abs(sum - b.Wait); diff > 1e-9*(1+b.Wait) {
		t.Errorf("by-kind sum %.17g != total %.17g", sum, b.Wait)
	}
	if b.ByKind[event.BlameSenderCompute] == 0 {
		t.Error("imbalanced compute produced no sender-compute blame")
	}
	if b.ByKind[event.BlameWire] == 0 {
		t.Error("no wire blame on a latency-bearing topology")
	}
	if len(b.Edges) == 0 {
		t.Error("no causality edges recorded")
	}
}

// TestBlameConservationCollectives: conservation also holds when the
// path runs through collective trees (the common steady-state shape).
func TestBlameConservationCollectives(t *testing.T) {
	const p = 8
	topo, err := machine.ByName("smp", p)
	if err != nil {
		t.Fatal(err)
	}
	_, tr := RunTraced(p, SP2Model().WithTopo(topo), func(c *Comm) {
		for i := 0; i < 4; i++ {
			c.Compute(float64(100 * (1 + c.Rank()%3)))
			c.AllreduceFloat64(float64(c.Rank()), SumFloat64)
			c.Bcast(0, make([]byte, 4096))
		}
	})
	cp := event.CriticalPath(tr)
	b := event.WaitBlame(tr, &cp)
	var want float64
	for i, st := range cp.Steps {
		if st.Kind == event.KindRecv && st.Arrival > st.T0 {
			want += st.Arrival - st.T0
		} else if i > 0 && cp.Steps[i-1].Rank == st.Rank {
			if gap := st.T0 - cp.Steps[i-1].T1; gap > 0 {
				want += gap
			}
		}
	}
	if diff := math.Abs(b.Wait - want); diff > 1e-9*(1+want) {
		t.Errorf("blame total %.17g != path wait %.17g", b.Wait, want)
	}
}
