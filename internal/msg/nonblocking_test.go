package msg

import (
	"strings"
	"testing"

	"plum/internal/event"
	"plum/internal/machine"
)

// TestIsendIrecvRoundTrip: the nonblocking primitives move the same
// envelopes and payloads as Send/Recv.
func TestIsendIrecvRoundTrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Isend(1, 7, []byte("ping"))
			if got := r.Wait(); got != nil {
				t.Errorf("send request returned a message: %v", got)
			}
		} else {
			req := c.Irecv(0, 7)
			m := req.Wait()
			if string(m.Data) != "ping" || m.Src != 0 || m.Tag != 7 {
				t.Errorf("got %q from (%d,%d)", m.Data, m.Src, m.Tag)
			}
			if again := req.Wait(); again != m {
				t.Error("Wait is not idempotent")
			}
		}
	})
}

// TestWaitallCompletesInOrder: Waitall keeps per-pair FIFO semantics.
func TestWaitallCompletesInOrder(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Isend(1, 5, []byte{byte(i)})
			}
		} else {
			reqs := []*Request{c.Irecv(0, 5), c.Irecv(0, 5), c.Irecv(0, 5)}
			Waitall(reqs)
			for i, r := range reqs {
				if r.Wait().Data[0] != byte(i) {
					t.Errorf("request %d completed with message %d", i, r.Wait().Data[0])
				}
			}
		}
	})
}

// TestIrecvOverlapHidesWire: the reason the primitives exist.  A
// blocking receiver pays the wire latency and then computes; a receiver
// that posts the receive, computes, and then waits hides the wire behind
// the compute.  Identical work, strictly smaller simulated clock.
func TestIrecvOverlapHidesWire(t *testing.T) {
	model := &CostModel{TSetup: 0, TByte: 0, TLatency: 5, TWork: 1}
	elapsed := func(overlap bool) float64 {
		times := RunModel(2, model, func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, []byte{1})
				return
			}
			if overlap {
				req := c.Irecv(0, 1)
				c.Compute(10)
				req.Wait()
			} else {
				c.Recv(0, 1)
				c.Compute(10)
			}
		})
		return times[1]
	}
	blocking, overlapped := elapsed(false), elapsed(true)
	if blocking != 15 {
		t.Errorf("blocking receiver clock %v, want 15 (wait 5 + compute 10)", blocking)
	}
	if overlapped != 10 {
		t.Errorf("overlapped receiver clock %v, want 10 (wire hidden by compute)", overlapped)
	}
}

// TestDeadlockPanics: mutually waiting ranks are reported as a typed
// *DeadlockError naming the stuck ranks instead of hanging the test
// binary forever.
func TestDeadlockPanics(t *testing.T) {
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected deadlock panic")
		}
		d, ok := e.(*DeadlockError)
		if !ok || !strings.Contains(d.Error(), "deadlock") {
			t.Fatalf("panic %v (%T) is not a *DeadlockError naming the deadlock", e, e)
		}
		if len(d.Ranks) != 2 {
			t.Fatalf("deadlock ranks %v, want both ranks stuck", d.Ranks)
		}
	}()
	Run(2, func(c *Comm) {
		c.Recv(1-c.Rank(), 99) // both wait, nobody sends
	})
}

// TestRankPanicTyped: a panicking rank program re-raises as *RankPanic
// carrying the rank, the open phase, the original value, and a stack —
// the contract the serving layer's fault isolation recovers on.
func TestRankPanicTyped(t *testing.T) {
	defer func() {
		e := recover()
		rp, ok := e.(*RankPanic)
		if !ok {
			t.Fatalf("panic %v (%T), want *RankPanic", e, e)
		}
		if rp.Rank != 1 {
			t.Errorf("rank = %d, want 1", rp.Rank)
		}
		if rp.Phase != event.PhaseSolve {
			t.Errorf("phase = %v, want %v", rp.Phase, event.PhaseSolve)
		}
		if rp.Value != "boom" {
			t.Errorf("value = %v, want boom", rp.Value)
		}
		if len(rp.Stack) == 0 {
			t.Error("empty stack")
		}
		if !strings.Contains(rp.Error(), "rank 1 panicked: boom") {
			t.Errorf("error text %q", rp.Error())
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			c.PushPhase(event.PhaseSolve)
			panic("boom")
		}
		// Rank 0 blocks on a message that never comes once rank 1 dies;
		// the engine aborts it as deadlocked and runWorld reports the
		// panic as the root cause, not the starvation.
		c.Release(c.Recv(1, 7))
	})
}

// TestRunTracedRecordsMessageEdges: the trace links each send to the
// recv that consumed it and records arrival times.
func TestRunTracedRecordsMessageEdges(t *testing.T) {
	model := &CostModel{TSetup: 1, TByte: 0, TLatency: 2, TWork: 1}
	_, tr := RunTraced(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(3)
			c.Send(1, 1, []byte{1, 2})
		} else {
			c.Recv(0, 1)
		}
	})
	var send, recv *event.Record
	for i := range tr.Records {
		r := &tr.Records[i]
		switch r.Kind {
		case event.KindSend:
			send = r
		case event.KindRecv:
			recv = r
		}
	}
	if send == nil || recv == nil {
		t.Fatalf("trace missing send or recv: %+v", tr.Records)
	}
	if send.MsgID == 0 || send.MsgID != recv.MsgID {
		t.Errorf("message edge not linked: send id %d, recv id %d", send.MsgID, recv.MsgID)
	}
	if recv.Arrival != send.T1+2 {
		t.Errorf("recv arrival %v, want send completion %v + latency 2", recv.Arrival, send.T1)
	}
	p := event.CriticalPath(tr)
	// Path: rank 0 compute (3) + send (1) + wire (2) + recv overhead (1).
	if p.Makespan != 7 || p.Compute != 3 || p.Overhead != 2 || p.CommWait != 2 {
		t.Errorf("critical path makespan %v compute %v overhead %v wait %v, want 7/3/2/2",
			p.Makespan, p.Compute, p.Overhead, p.CommWait)
	}
}

// TestFatTreeContentionBitwiseReproducible: the deterministic
// reservation pass.  Many co-located ranks bursting over one up-link is
// exactly the schedule-sensitive case the old runtime documented as
// "approximately reproducible"; the event engine must make repeated
// runs agree bitwise, per rank.
func TestFatTreeContentionBitwiseReproducible(t *testing.T) {
	const p = 8
	model := &CostModel{}
	run := func() []float64 {
		topo := machine.NewFatTree(p, 4, machine.LinkParams{Setup: 1e-6, PerByte: 1e-8}, 1e-6, 4e-8)
		return RunModel(p, model.WithTopo(topo), func(c *Comm) {
			// Every rank sends to every off-group rank, then drains.
			for dst := 0; dst < p; dst++ {
				if dst/4 != c.Rank()/4 {
					c.Send(dst, 1, make([]byte, 1000+100*c.Rank()))
				}
			}
			for src := 0; src < p; src++ {
				if src/4 != c.Rank()/4 {
					c.Recv(src, 1)
				}
			}
		})
	}
	a, b := run(), run()
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("rank %d: %x vs %x (contended timings must be bitwise reproducible)", r, a[r], b[r])
		}
	}
}
