// Package msg provides an MPI-style message-passing runtime for a fixed
// group of logical processors (ranks) executing within a single process.
//
// The paper this repository reproduces (Oliker & Biswas, SPAA 1997) was
// implemented in C/C++ with MPI on an IBM SP2.  Go has no MPI bindings, so
// this package supplies the substrate: tagged point-to-point sends and
// receives, nonblocking Isend/Irecv/Wait, the collectives the PLUM
// framework needs (barrier, broadcast, gather, scatter, allgather, reduce,
// allreduce, all-to-all), and a deterministic simulated machine-time model
// (see clock.go) used to produce shape-faithful scaling curves for
// processor counts far beyond the host's physical core count.
//
// Ranks execute as coroutine-style processes on the discrete-event engine
// of internal/event: exactly one rank runs at any instant and the
// scheduler always resumes the rank with the smallest (time, rank, seq)
// key, so every run — including shared-link contention on topologies like
// the fat tree — is bitwise reproducible regardless of GOMAXPROCS.  Sends
// that cross a machine topology yield to the engine at their injection
// time, which serializes shared-link reservations in simulated-time order
// (the deterministic reservation pass that replaced the old
// goroutine-scheduling-order contention queues).
//
// Semantics follow MPI's eager mode: sends are asynchronous and buffered
// (they never block the sender's progress), receives block until a
// matching message (by source and tag) arrives.  Message order between a
// fixed (source, destination, tag) triple is FIFO, which makes every
// algorithm built on this package deterministic.
//
// Entry points.  Run executes a rank function untimed; RunModel installs
// a CostModel (simulated clocks); RunTraced additionally records every
// clock-advancing operation into an event.Trace, which Comm.Trace
// exposes to running ranks — the source of the measured-cost feedback
// loop's profiles.  IsCollectiveTag classifies this package's
// synthesized tags for the profile aggregator.
//
// Invariants.  Simulated time is a pure function of the program: clocks
// never observe goroutine scheduling, and the flat scalar model charges
// bitwise-identically to a machine.Flat built from the same constants
// (pinned by the golden tests in internal/core).  Tracing observes and
// never perturbs — a traced run's clocks equal the untraced run's.
//
// Performance.  The runtime recycles aggressively, which is invisible
// in simulated terms: mailboxes are intrusive doubly-linked delivery
// lists (O(1) unlink, no per-key queue slices retaining popped
// messages), and message structs plus size-classed payload buffers
// return to per-world free lists via Comm.Release — automatic on the
// decode-and-discard paths (RecvInts, RecvFloats, collective
// internals), opt-in for callers that receive raw Messages.  All pool
// traffic happens under the execution token: no locks, deterministic
// recycling order.  SendInts/SendFloats encode directly into pooled
// buffers, keeping steady-state exchange loops allocation-free
// (TestSendRecvAllocFree).  See docs/ARCHITECTURE.md, "Performance".
package msg
