package linalg

import (
	"sort"

	"plum/internal/adapt"
)

// CSR is a sparse matrix in compressed-sparse-row form.  Rows correspond
// to mesh vertices sorted by ascending global id; columns are indices
// into an NCols-sized vector space (equal to NRows for the serial
// operator, NRows+ghosts for the distributed one).
type CSR struct {
	NRows  int
	NCols  int
	RowPtr []int32
	Col    []int32
	Val    []float64

	// Diag holds each row's diagonal value (also present in Val), kept
	// separately for the Jacobi preconditioner and assembly checks.
	Diag []float64

	// GID is the global vertex id of each row, ascending.
	GID []uint64
}

// NNZ returns the number of stored entries.
func (A *CSR) NNZ() int { return len(A.Val) }

// RowOf returns the row index of a global id, or -1 when the id is not a
// row of this matrix.
func (A *CSR) RowOf(gid uint64) int {
	i := sort.Search(len(A.GID), func(i int) bool { return A.GID[i] >= gid })
	if i < len(A.GID) && A.GID[i] == gid {
		return i
	}
	return -1
}

// Row returns the column indices and values of row i.
func (A *CSR) Row(i int) ([]int32, []float64) {
	return A.Col[A.RowPtr[i]:A.RowPtr[i+1]], A.Val[A.RowPtr[i]:A.RowPtr[i+1]]
}

// entry is one off-diagonal contribution during assembly.
type entry struct {
	gid uint64  // neighbour (column) global id
	w   float64 // edge weight
}

// EdgeWeight returns the Laplacian weight of a mesh edge of the given
// length (inverse length, the standard graph-Laplacian weighting for
// geometric meshes).  Both the serial and the distributed assemblers
// must use this one definition: bitwise agreement of the operators
// depends on every rank computing the identical float for a shared edge.
func EdgeWeight(length float64) float64 { return 1 / length }

// finalizeRows converts per-row neighbour lists into a CSR matrix
// A = shift*I + scale*L where L is the weighted graph Laplacian
// (diagonal = sum of incident weights, off-diagonal = -weight).
//
// rows[i] lists the neighbour contributions of the row with global id
// gids[i] (gids ascending).  colIdx maps a neighbour gid to its column
// index.  The diagonal is accumulated in ascending neighbour-gid order
// starting from shift — the fixed summation order that makes serial and
// distributed assembly produce identical floats.
func finalizeRows(gids []uint64, rows [][]entry, colIdx func(uint64) int32, ncols int, shift, scale float64) *CSR {
	n := len(gids)
	A := &CSR{
		NRows:  n,
		NCols:  ncols,
		RowPtr: make([]int32, n+1),
		GID:    gids,
		Diag:   make([]float64, n),
	}
	nnz := 0
	for _, r := range rows {
		nnz += len(r) + 1
	}
	A.Col = make([]int32, 0, nnz)
	A.Val = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		r := rows[i]
		sort.Slice(r, func(a, b int) bool { return r[a].gid < r[b].gid })
		diag := shift
		for _, e := range r {
			diag += scale * e.w
		}
		A.Diag[i] = diag
		// Emit the row with the diagonal in its sorted position.
		di := sort.Search(len(r), func(a int) bool { return r[a].gid >= gids[i] })
		for k, e := range r {
			if k == di {
				A.Col = append(A.Col, colIdx(gids[i]))
				A.Val = append(A.Val, diag)
			}
			A.Col = append(A.Col, colIdx(e.gid))
			A.Val = append(A.Val, -scale*e.w)
		}
		if di == len(r) {
			A.Col = append(A.Col, colIdx(gids[i]))
			A.Val = append(A.Val, diag)
		}
		A.RowPtr[i+1] = int32(len(A.Col))
	}
	return A
}

// Assemble builds the serial operator A = shift*I + scale*L over the
// active vertices and edges of an adapted mesh: one row per alive
// vertex, one off-diagonal per active leaf edge incident to it, with
// weight EdgeWeight(length).  shift > 0 makes A symmetric positive
// definite.  Rows and columns are ordered by ascending vertex gid.
func Assemble(m *adapt.Mesh, shift, scale float64) *CSR {
	if m.EdgeElems == nil {
		m.BuildEdgeElems()
	}
	var gids []uint64
	vertOf := make(map[uint64]int32)
	for v := range m.Coords {
		if !m.VertAlive[v] {
			continue
		}
		gids = append(gids, m.VertGID[v])
		vertOf[m.VertGID[v]] = int32(v)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	rowOf := make(map[uint64]int32, len(gids))
	for i, g := range gids {
		rowOf[g] = int32(i)
	}
	rows := make([][]entry, len(gids))
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] || !m.EdgeLeaf(int32(id)) || len(m.EdgeElems[id]) == 0 {
			continue
		}
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		w := EdgeWeight(m.Coords[a].Sub(m.Coords[b]).Norm())
		ga, gb := m.VertGID[a], m.VertGID[b]
		ra, rb := rowOf[ga], rowOf[gb]
		rows[ra] = append(rows[ra], entry{gb, w})
		rows[rb] = append(rows[rb], entry{ga, w})
	}
	colIdx := func(g uint64) int32 { return rowOf[g] }
	return finalizeRows(gids, rows, colIdx, len(gids), shift, scale)
}

// GatherField extracts b[i] = sol[vert(row i)*ncomp + comp] for each row
// of a serially assembled matrix, mapping mesh-ordered solution storage
// into row (gid) order.
func GatherField(A *CSR, m *adapt.Mesh, ncomp, comp int) []float64 {
	b := make([]float64, A.NRows)
	for i, g := range A.GID {
		v := m.VertByGID(g)
		b[i] = m.Sol[int(v)*ncomp+comp]
	}
	return b
}

// ScatterField writes x (row order) back into the mesh solution field.
func ScatterField(A *CSR, m *adapt.Mesh, ncomp, comp int, x []float64) {
	for i, g := range A.GID {
		v := m.VertByGID(g)
		m.Sol[int(v)*ncomp+comp] = x[i]
	}
}
