package linalg

import (
	"bytes"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refAcc is the accumulator implementation this package used before the
// fixed-point superaccumulator: a 4096-bit big.Float.  The tests below
// pin the replacement to it — identical rounded sums (bitwise) and an
// identical serialized byte stream, which is what keeps every simulated
// message cost of the distributed dot products unchanged.
type refAcc struct {
	sum big.Float
}

func newRefAcc() *refAcc {
	a := &refAcc{}
	a.sum.SetPrec(accPrec)
	return a
}

func (a *refAcc) add(v float64) {
	var t big.Float
	t.SetPrec(accPrec)
	t.SetFloat64(v)
	a.sum.Add(&a.sum, &t)
}

func (a *refAcc) float64() float64 {
	f, _ := a.sum.Float64()
	return f
}

func (a *refAcc) bytes() []byte {
	b, err := a.sum.GobEncode()
	if err != nil {
		panic(err)
	}
	return b
}

// randTerms draws values spread over the full float64 range, including
// subnormals, exact cancellations, and huge/tiny mixtures — the regimes
// where a lazy fixed-point accumulator could disagree with the exact
// big.Float sum if its carry or rounding logic were wrong.
func randTerms(rng *rand.Rand, n int) []float64 {
	out := make([]float64, 0, n)
	for len(out) < n {
		switch rng.Intn(6) {
		case 0: // moderate magnitudes
			out = append(out, (rng.Float64()-0.5)*1e3)
		case 1: // huge
			out = append(out, math.Ldexp(rng.Float64()-0.5, 900+rng.Intn(120)))
		case 2: // tiny and subnormal
			out = append(out, math.Ldexp(rng.Float64()-0.5, -1000-rng.Intn(74)))
		case 3: // exact power of two
			out = append(out, math.Ldexp(1, rng.Intn(2000)-1000))
		case 4: // cancellation pair
			v := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(200)-100)
			out = append(out, v, -v)
		default: // integers (exact in both representations)
			out = append(out, float64(rng.Intn(1<<20)-1<<19))
		}
	}
	return out[:n]
}

// TestAccMatchesBigFloatReference: rounded sum and serialized bytes of
// the superaccumulator equal the big.Float accumulator's on adversarial
// inputs.
func TestAccMatchesBigFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		terms := randTerms(rng, 1+rng.Intn(64))
		acc, ref := NewAcc(), newRefAcc()
		for _, v := range terms {
			acc.Add(v)
			ref.add(v)
		}
		got, want := acc.Float64(), ref.float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: sum %x, reference %x (terms %v)", trial, got, want, terms)
		}
		if !bytes.Equal(acc.Bytes(), ref.bytes()) {
			t.Fatalf("trial %d: serialized bytes differ from the big.Float stream", trial)
		}
	}
}

// TestAccSpecialSums: exact zero, pure subnormal sums, overflow to
// infinity, and signed-zero behavior all round like the reference.
func TestAccSpecialSums(t *testing.T) {
	cases := [][]float64{
		{},
		{0, -0.0},
		{1e308, 1e308},           // overflow: +Inf
		{-1e308, -1e308, -1e308}, // overflow: -Inf
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64},
		{math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64},
		{1.5e-323, 2e-323, -2.5e-323}, // subnormal arithmetic at the ulp
		{math.MaxFloat64, -math.MaxFloat64, 1e-300},
		{1, math.Ldexp(1, -60), math.Ldexp(1, -61)}, // round-to-even at the boundary
		{1, math.Ldexp(3, -54)},
	}
	for i, terms := range cases {
		acc, ref := NewAcc(), newRefAcc()
		for _, v := range terms {
			acc.Add(v)
			ref.add(v)
		}
		got, want := acc.Float64(), ref.float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("case %d (%v): sum %x, reference %x", i, terms, got, want)
		}
		if !bytes.Equal(acc.Bytes(), ref.bytes()) {
			t.Errorf("case %d (%v): serialized bytes differ", i, terms)
		}
	}
}

// TestAccMergeTransport: merging transported accumulators (the
// distributed Dot's root-side path) agrees with accumulating every term
// in one place, and the wire format round-trips.
func TestAccMergeTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		terms := randTerms(rng, 40)
		whole := NewAcc()
		for _, v := range terms {
			whole.Add(v)
		}
		// Split across 4 "ranks", serialize, merge at the root.
		root := NewAcc()
		for r := 0; r < 4; r++ {
			part := NewAcc()
			for i := r * 10; i < (r+1)*10; i++ {
				part.Add(terms[i])
			}
			root.Merge(AccFromBytes(part.Bytes()))
		}
		if got, want := root.Float64(), whole.Float64(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: merged %x, direct %x", trial, got, want)
		}
	}
}

// TestAccRepeatedCarryPropagation: many same-signed terms landing on
// the same digits force carries to ripple repeatedly into the upper
// digits (the binary-counter amortization addAt relies on), and the
// result still rounds identically to the reference.
func TestAccRepeatedCarryPropagation(t *testing.T) {
	acc, ref := NewAcc(), newRefAcc()
	const n = 1 << 20
	for i := 0; i < n; i++ {
		acc.Add(1.25e10)
	}
	var t0 big.Float
	t0.SetPrec(accPrec)
	t0.SetFloat64(1.25e10)
	var nf big.Float
	nf.SetPrec(accPrec)
	nf.SetInt64(n)
	ref.sum.Mul(&t0, &nf)
	if got, want := acc.Float64(), ref.float64(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("repeated-add sum %x, reference %x", got, want)
	}
}
