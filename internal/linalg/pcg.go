package linalg

import "math"

// System abstracts the operator and reductions PCG needs, so one solver
// implementation runs unchanged over the serial backend (*CSR via
// Serial) and the distributed backend (*DistSystem).  Vectors passed to
// and returned from System methods are "owned length": the serial
// backend owns every row, a distributed rank owns its partition's rows.
type System interface {
	// Rows returns the local (owned) vector length.
	Rows() int
	// MulVec computes dst = A*x for the owned rows.  Distributed
	// implementations refresh ghost values of x internally (the halo
	// exchange of the implicit workload).
	MulVec(dst, x []float64)
	// Dot returns the global dot product of two owned vectors,
	// exactly rounded (see exact.go) so the value is independent of
	// the partition.
	Dot(x, y []float64) float64
}

// Preconditioner applies z = M*r on owned vectors.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// PrecondKind selects a preconditioner for the factory helpers.
type PrecondKind int

// The preconditioners the implicit workload compares.
const (
	PrecondNone PrecondKind = iota
	PrecondJacobi
	PrecondSPAI
)

func (k PrecondKind) String() string {
	switch k {
	case PrecondNone:
		return "none"
	case PrecondJacobi:
		return "jacobi"
	default:
		return "spai"
	}
}

// Options tunes a PCG solve.
type Options struct {
	Tol     float64 // relative residual target ||r||/||r0||; 0 means 1e-8
	MaxIter int     // iteration cap; 0 means 500
}

// DefaultOptions returns the solver tolerances used by the implicit
// workload.
func DefaultOptions() Options { return Options{Tol: 1e-8, MaxIter: 500} }

// Result reports a PCG solve.
type Result struct {
	Iterations int
	Converged  bool
	// Residuals[k] is ||r_k||_2; Residuals[0] is the initial residual.
	Residuals []float64
}

// RelResidual returns the final ||r||/||r0|| (1 when r0 was zero).
func (r Result) RelResidual() float64 {
	if len(r.Residuals) == 0 || r.Residuals[0] == 0 {
		return 1
	}
	return r.Residuals[len(r.Residuals)-1] / r.Residuals[0]
}

// identity is the trivial preconditioner (plain CG).
type identity struct{}

func (identity) Apply(dst, r []float64) { copy(dst, r) }

// Identity returns the no-op preconditioner.
func Identity() Preconditioner { return identity{} }

// PCG solves A*x = b by the preconditioned conjugate-gradient method,
// starting from the provided x (used as initial guess, overwritten with
// the solution).  Every rank of a distributed system must call it
// collectively with its owned slices of b and x; all scalar quantities
// (alpha, beta, residual norms) are identical on every rank because the
// reductions are exact, so the iterate sequence is globally consistent
// and bitwise-reproducible for any processor count.
func PCG(sys System, pre Preconditioner, b, x []float64, opt Options) Result {
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	if pre == nil {
		pre = Identity()
	}
	n := sys.Rows()
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	// r = b - A*x.
	sys.MulVec(q, x)
	for i := range r {
		r[i] = b[i] - q[i]
	}
	r0 := math.Sqrt(sys.Dot(r, r))
	res := Result{Residuals: []float64{r0}}
	if r0 == 0 {
		res.Converged = true
		return res
	}
	target := opt.Tol * r0

	pre.Apply(z, r)
	copy(p, z)
	rz := sys.Dot(r, z)

	for it := 1; it <= opt.MaxIter; it++ {
		sys.MulVec(q, p)
		pq := sys.Dot(p, q)
		if pq == 0 {
			break // breakdown: p is A-orthogonal to itself
		}
		alpha := rz / pq
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rn := math.Sqrt(sys.Dot(r, r))
		res.Iterations = it
		res.Residuals = append(res.Residuals, rn)
		if rn <= target {
			res.Converged = true
			break
		}
		pre.Apply(z, r)
		rzNew := sys.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res
}

// Serial wraps a serially assembled CSR matrix as a System.
type Serial struct {
	A *CSR
}

// NewSerial returns the serial backend for A (NCols must equal NRows).
func NewSerial(A *CSR) *Serial { return &Serial{A: A} }

// Rows returns the matrix dimension.
func (s *Serial) Rows() int { return s.A.NRows }

// MulVec computes dst = A*x.
func (s *Serial) MulVec(dst, x []float64) { s.A.MulVec(dst, x) }

// Dot returns the exactly rounded dot product.
func (s *Serial) Dot(x, y []float64) float64 { return ExactDot(x, y) }

// NewPrecond builds the requested preconditioner for the serial system.
func (s *Serial) NewPrecond(kind PrecondKind) Preconditioner {
	switch kind {
	case PrecondJacobi:
		return NewJacobi(s.A.Diag)
	case PrecondSPAI:
		return NewSerialSPAI(s.A)
	default:
		return Identity()
	}
}
