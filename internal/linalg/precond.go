package linalg

import (
	"math"
	"sort"
)

// Jacobi is diagonal scaling: z_i = r_i / A_ii.  Embarrassingly parallel
// and deterministic (the diagonal is assembled identically on every
// backend).
type Jacobi struct {
	inv []float64
}

// NewJacobi builds the Jacobi preconditioner from the assembled diagonal.
func NewJacobi(diag []float64) *Jacobi {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		inv[i] = 1 / d
	}
	return &Jacobi{inv: inv}
}

// Apply computes dst = D^-1 r.
func (j *Jacobi) Apply(dst, r []float64) {
	for i, v := range r {
		dst[i] = v * j.inv[i]
	}
}

// ---------------------------------------------------------------------
// Static-pattern sparse approximate inverse (SPAI).
//
// Following the SPAI line of Grote & Huckle (and the static-pattern
// variants studied for large irregular systems), row i of M minimizes
// ||A m_i - e_i||_2 with the unknowns of m_i restricted to the sparsity
// pattern of row i of A (the vertex and its mesh neighbours).  Because A
// is symmetric this "column" solution doubles as row i of a left
// approximate inverse.  Each row is an independent small dense
// least-squares problem — embarrassingly parallel, which is what makes
// SPAI attractive on distributed memory where incomplete factorizations
// serialize.
//
// PCG needs a symmetric preconditioner, and the row-wise least-squares
// solutions are not symmetric, so the final operator is
// M_sym = (M + M^T)/2 — pattern-preserving because A's pattern is
// symmetric.  Distributed construction only ever needs matrix rows of
// the vertex's 1-hop neighbourhood (2-hop *entries* all appear in 1-hop
// rows by symmetry), so the same ghost-row exchange that serves SpMV
// serves SPAI setup.

// RowFunc returns a matrix row by global id: column gids (ascending) and
// values.  Implementations must return identical floats for a given gid
// on every rank that can resolve it; nil slices mean the row is unknown.
type RowFunc func(gid uint64) ([]uint64, []float64)

// spaiRawRows computes the unsymmetrized SPAI rows for every row of A.
// colGID[c] is the global id of column index c (length A.NCols).  The
// returned slice is aligned with A.Val: entry k is M(row(k), col(k)).
func spaiRawRows(A *CSR, colGID []uint64, arow RowFunc) []float64 {
	out := make([]float64, len(A.Val))
	var (
		iGids []uint64
		ahat  []float64 // dense |I| x |J|, row-major
	)
	for i := 0; i < A.NRows; i++ {
		cols, _ := A.Row(i)
		nj := len(cols)
		jGids := make([]uint64, nj)
		for k, c := range cols {
			jGids[k] = colGID[c]
		}

		// I = union of the patterns of the rows in J, ascending gids.
		iGids = iGids[:0]
		for _, j := range jGids {
			cg, _ := arow(j)
			iGids = append(iGids, cg...)
		}
		sort.Slice(iGids, func(a, b int) bool { return iGids[a] < iGids[b] })
		iGids = dedupSorted(iGids)
		ni := len(iGids)

		// Dense A(I, J): column j of the submatrix is row j of A
		// scattered into I positions (A is symmetric).
		if cap(ahat) < ni*nj {
			ahat = make([]float64, ni*nj)
		}
		ahat = ahat[:ni*nj]
		for k := range ahat {
			ahat[k] = 0
		}
		for jj, j := range jGids {
			cg, cv := arow(j)
			for t, k := range cg {
				ri := searchGID(iGids, k)
				ahat[ri*nj+jj] = cv[t]
			}
		}

		// Normal equations G m = A(I,J)^T e_i; G = A(I,J)^T A(I,J).
		g := make([]float64, nj*nj)
		for p := 0; p < nj; p++ {
			for q := p; q < nj; q++ {
				var s float64
				for r := 0; r < ni; r++ {
					s += ahat[r*nj+p] * ahat[r*nj+q]
				}
				g[p*nj+q] = s
				g[q*nj+p] = s
			}
		}
		rowI := searchGID(iGids, A.GID[i])
		rhs := make([]float64, nj)
		for p := 0; p < nj; p++ {
			rhs[p] = ahat[rowI*nj+p]
		}
		m, ok := cholSolve(g, rhs, nj)
		if !ok {
			// Deterministic fallback: the Jacobi row.
			m = make([]float64, nj)
			m[searchGID(jGids, A.GID[i])] = 1 / A.Diag[i]
		}
		copy(out[A.RowPtr[i]:A.RowPtr[i+1]], m)
	}
	return out
}

// symmetrizeRows returns sym(k) = (raw(k) + M(colGid, rowGid))/2, where
// the transposed entries come from mrow (local raw rows plus, in the
// distributed case, exchanged ghost raw rows).
func symmetrizeRows(A *CSR, colGID []uint64, raw []float64, mrow RowFunc) []float64 {
	out := make([]float64, len(raw))
	for i := 0; i < A.NRows; i++ {
		gi := A.GID[i]
		lo, hi := int(A.RowPtr[i]), int(A.RowPtr[i+1])
		for k := lo; k < hi; k++ {
			gj := colGID[A.Col[k]]
			var t float64
			if cg, cv := mrow(gj); cg != nil {
				if p := searchGID(cg, gi); p >= 0 && p < len(cg) && cg[p] == gi {
					t = cv[p]
				}
			}
			out[k] = 0.5*raw[k] + 0.5*t
		}
	}
	return out
}

// NewSerialSPAI builds the symmetrized static-pattern SPAI for a
// serially assembled matrix.
func NewSerialSPAI(A *CSR) Preconditioner {
	arow := func(gid uint64) ([]uint64, []float64) {
		i := A.RowOf(gid)
		if i < 0 {
			return nil, nil
		}
		return rowGids(A, i), A.Val[A.RowPtr[i]:A.RowPtr[i+1]]
	}
	raw := spaiRawRows(A, A.GID, arow)
	mrow := func(gid uint64) ([]uint64, []float64) {
		i := A.RowOf(gid)
		if i < 0 {
			return nil, nil
		}
		return rowGids(A, i), raw[A.RowPtr[i]:A.RowPtr[i+1]]
	}
	sym := symmetrizeRows(A, A.GID, raw, mrow)
	M := &CSR{NRows: A.NRows, NCols: A.NCols, RowPtr: A.RowPtr, Col: A.Col, Val: sym, GID: A.GID}
	return &matPrecond{M: M}
}

// matPrecond applies a sparse matrix as a preconditioner.
type matPrecond struct {
	M *CSR
}

func (p *matPrecond) Apply(dst, r []float64) { p.M.MulVec(dst, r) }

// rowGids materializes the column gids of row i (rows are short; the
// closures above call it transiently).
func rowGids(A *CSR, i int) []uint64 {
	cols, _ := A.Row(i)
	g := make([]uint64, len(cols))
	for k, c := range cols {
		g[k] = A.GID[c]
	}
	return g
}

func dedupSorted(g []uint64) []uint64 {
	out := g[:0]
	for i, v := range g {
		if i == 0 || v != g[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// searchGID returns the index of gid in the ascending slice g (or the
// insertion point when absent; callers that may miss must re-check).
func searchGID(g []uint64, gid uint64) int {
	return sort.Search(len(g), func(i int) bool { return g[i] >= gid })
}

// cholSolve solves the SPD system G m = rhs (n x n, row-major) by
// Cholesky factorization.  Returns ok=false when a pivot is not strictly
// positive (G numerically rank-deficient).
func cholSolve(g, rhs []float64, n int) ([]float64, bool) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := g[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, false
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	// Forward then backward substitution.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := rhs[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	m := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * m[k]
		}
		m[i] = s / l[i*n+i]
	}
	return m, true
}
