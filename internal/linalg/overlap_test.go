package linalg

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
)

// The overlapped halo exchange is a pure scheduling change: every owned
// row is computed by the identical kernel over identically ordered
// entries, so dst — and therefore every PCG iterate — must be bitwise
// the same as the blocking path, while the simulated clock may only
// improve.

func overlapSolve(t *testing.T, p int, overlap bool) (Result, []float64) {
	t.Helper()
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	ind := adapt.SphericalIndicator(mesh.Vec3{1.5, 1.5, 1}, 0.8, 0.5)
	g := dual.FromMesh(global)
	part := partition.Partition(g, p, partition.Default())
	var res Result
	times := msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, part, 0)
		le := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()

		sys := NewDistSystem(d, testShift, testScale)
		sys.Overlap = overlap
		b := make([]float64, sys.Rows())
		for i, v := range sys.rowVert {
			b[i] = rhsField(d.M.Coords[v])
		}
		x := make([]float64, sys.Rows())
		r := PCG(sys, sys.NewPrecond(PrecondSPAI), b, x, DefaultOptions())
		if c.Rank() == 0 {
			res = r
		}
	})
	return res, times
}

// TestOverlapBitwiseIdenticalIterates: residual histories agree bit for
// bit between blocking and overlapped execution.
func TestOverlapBitwiseIdenticalIterates(t *testing.T) {
	for _, p := range []int{2, 4} {
		blocking, _ := overlapSolve(t, p, false)
		overlapped, _ := overlapSolve(t, p, true)
		if blocking.Iterations != overlapped.Iterations {
			t.Fatalf("P=%d: iteration counts diverged: %d vs %d",
				p, blocking.Iterations, overlapped.Iterations)
		}
		for i := range blocking.Residuals {
			if math.Float64bits(blocking.Residuals[i]) != math.Float64bits(overlapped.Residuals[i]) {
				t.Fatalf("P=%d: residual %d diverged: %x vs %x",
					p, i, blocking.Residuals[i], overlapped.Residuals[i])
			}
		}
	}
}

// TestSplitRowsPartitionsAll: every owned row is exactly one of
// interior or boundary, and the nnz counts tile the matrix.
func TestSplitRowsPartitionsAll(t *testing.T) {
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 4, partition.Default())
	msg.Run(4, func(c *msg.Comm) {
		d := pmesh.New(c, global, part, 0)
		sys := NewDistSystem(d, testShift, testScale)
		if len(sys.interior)+len(sys.boundary) != sys.A.NRows {
			t.Errorf("rank %d: split covers %d+%d of %d rows",
				c.Rank(), len(sys.interior), len(sys.boundary), sys.A.NRows)
		}
		if sys.nnzInterior+sys.nnzBoundary != sys.A.NNZ() {
			t.Errorf("rank %d: split nnz %d+%d != %d",
				c.Rank(), sys.nnzInterior, sys.nnzBoundary, sys.A.NNZ())
		}
		n := int32(sys.A.NRows)
		for _, i := range sys.interior {
			cols, _ := sys.A.Row(int(i))
			for _, cc := range cols {
				if cc >= n {
					t.Fatalf("rank %d: interior row %d touches ghost column", c.Rank(), i)
				}
			}
		}
	})
}

// TestMulVecRowsMatchesMulVec: the row-subset kernel is bitwise the
// full kernel on its rows.
func TestMulVecRowsMatchesMulVec(t *testing.T) {
	global := mesh.Box(3, 2, 2, 3, 2, 2)
	a := adapt.FromMesh(global, 0)
	A := Assemble(a, testShift, testScale)
	x := make([]float64, A.NCols)
	for i := range x {
		x[i] = 0.25*float64(i%13) - 1
	}
	want := make([]float64, A.NRows)
	A.MulVec(want, x)
	got := make([]float64, A.NRows)
	var odd, even []int32
	for i := 0; i < A.NRows; i++ {
		if i%2 == 0 {
			even = append(even, int32(i))
		} else {
			odd = append(odd, int32(i))
		}
	}
	A.MulVecRows(got, x, odd)
	A.MulVecRows(got, x, even)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: %x vs %x", i, want[i], got[i])
		}
	}
}
