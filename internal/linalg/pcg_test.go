package linalg

import (
	"math"
	"testing"
)

// solveKnown builds b = A*xTrue and solves from x0 = 0.
func solveKnown(t *testing.T, A *CSR, kind PrecondKind) (Result, []float64, []float64) {
	t.Helper()
	sys := NewSerial(A)
	xTrue := make([]float64, A.NRows)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i)) + 0.5
	}
	b := make([]float64, A.NRows)
	A.MulVec(b, xTrue)
	x := make([]float64, A.NRows)
	res := PCG(sys, sys.NewPrecond(kind), b, x, DefaultOptions())
	return res, x, xTrue
}

func TestPCGConvergesAllPreconditioners(t *testing.T) {
	a := refinedMesh(3, 2, 2)
	A := Assemble(a, 1.0, 1.0)
	for _, kind := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondSPAI} {
		res, x, xTrue := solveKnown(t, A, kind)
		if !res.Converged {
			t.Fatalf("%v: did not converge in %d iterations (rel %v)",
				kind, res.Iterations, res.RelResidual())
		}
		if rel := res.RelResidual(); rel > 1e-8 {
			t.Fatalf("%v: relative residual %v > 1e-8", kind, rel)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				t.Fatalf("%v: x[%d]=%v, want %v", kind, i, x[i], xTrue[i])
			}
		}
		if len(res.Residuals) != res.Iterations+1 {
			t.Fatalf("%v: history length %d for %d iterations",
				kind, len(res.Residuals), res.Iterations)
		}
	}
}

func TestPreconditionersReduceIterations(t *testing.T) {
	a := refinedMesh(3, 3, 2)
	// Small shift relative to the Laplacian scale: a stiffer system
	// where preconditioning visibly pays.
	A := Assemble(a, 0.05, 1.0)
	iters := map[PrecondKind]int{}
	for _, kind := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondSPAI} {
		res, _, _ := solveKnown(t, A, kind)
		if !res.Converged {
			t.Fatalf("%v: did not converge", kind)
		}
		iters[kind] = res.Iterations
	}
	if iters[PrecondJacobi] > iters[PrecondNone] {
		t.Errorf("jacobi (%d iters) worse than unpreconditioned (%d)",
			iters[PrecondJacobi], iters[PrecondNone])
	}
	if iters[PrecondSPAI] > iters[PrecondJacobi] {
		t.Errorf("spai (%d iters) worse than jacobi (%d)",
			iters[PrecondSPAI], iters[PrecondJacobi])
	}
	t.Logf("iterations: none=%d jacobi=%d spai=%d",
		iters[PrecondNone], iters[PrecondJacobi], iters[PrecondSPAI])
}

func TestPCGZeroRHS(t *testing.T) {
	a := refinedMesh(2, 2, 1)
	A := Assemble(a, 1, 1)
	sys := NewSerial(A)
	b := make([]float64, A.NRows)
	x := make([]float64, A.NRows)
	res := PCG(sys, nil, b, x, DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs produced nonzero solution")
		}
	}
}

func TestSPAISymmetric(t *testing.T) {
	a := refinedMesh(2, 2, 2)
	A := Assemble(a, 0.5, 1.0)
	p := NewSerialSPAI(A).(*matPrecond)
	M := p.M
	for i := 0; i < M.NRows; i++ {
		cols, vals := M.Row(i)
		for k, c := range cols {
			bcols, bvals := M.Row(int(c))
			found := false
			for k2, c2 := range bcols {
				if int(c2) == i {
					if bvals[k2] != vals[k] {
						t.Fatalf("M(%d,%d)=%v != M(%d,%d)=%v", i, c, vals[k], c, i, bvals[k2])
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("pattern not symmetric at (%d,%d)", i, c)
			}
		}
	}
}
