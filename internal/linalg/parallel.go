package linalg

import (
	"encoding/binary"
	"math"
	"sort"

	"plum/internal/event"
	"plum/internal/msg"
	"plum/internal/pmesh"
)

// Distributed backend: each rank owns the matrix rows of the vertices it
// owns (lowest actual holder, exactly as the explicit solver resolves
// flux ownership), assembled from the edges it owns so every global edge
// contributes exactly once.  Off-rank columns become ghost entries
// refreshed by a halo exchange before every SpMV — the per-iteration
// communication the implicit workload exists to generate — and dot
// products reduce exact per-rank accumulators at the host, so every
// scalar the solver computes is bitwise independent of the partition.

// Point-to-point tags for the linalg protocols (pmesh uses 1001-1005;
// the collectives synthesize tags above 1<<24).
const (
	tagAssemble = 3001
	tagNeeds    = 3002
	tagHalo     = 3003
	tagRows     = 3004
	tagScatter  = 3005
)

// IsHaloTag reports whether tag belongs to the per-iteration halo
// exchange (ghost-value refresh before every SpMV) as opposed to the
// one-time setup protocols.  The profile aggregator uses it to
// attribute traced receive waits to the halo bucket.
func IsHaloTag(tag int) bool { return tag == tagHalo }

// Simulated-machine work charges (abstract units per entry; the explicit
// solver charges 1.0 per ~40-flop edge flux, so per-nonzero SpMV work is
// proportionally smaller).
const (
	workPerNNZ = 0.05
	workPerDot = 0.02
)

// DistSystem is one rank's share of a distributed sparse SPD operator.
type DistSystem struct {
	D *pmesh.DistMesh
	C *msg.Comm

	// A holds the owned rows; columns index the full local vector
	// [owned rows | ghosts], both gid-ascending within their block.
	A *CSR

	// Overlap selects the split execution of every operator application:
	// the halo exchange is posted nonblocking (Isend/Irecv), the interior
	// rows — those touching no ghost column — are computed while the
	// messages are in flight, and only the boundary rows wait for the
	// ghost values.  The result vector is bitwise identical to the
	// blocking path (same per-row kernel); only the simulated critical
	// path shortens, because interior compute hides the wire time.
	Overlap bool

	// GhostGID/ghostOwner describe the ghost block, ascending gid.
	GhostGID   []uint64
	ghostOwner []int32

	// rowVert maps each owned row to its local mesh vertex.
	rowVert []int32

	// own is the exact sharing state used for assembly and scatter.
	own *pmesh.EdgeOwnership

	// Halo exchange lists.  sendRows[r] lists owned row indices whose
	// values rank r needs; recvGhost[r] lists ghost indices (into the
	// ghost block) filled from rank r.  Both are gid-ascending, so the
	// payloads pair up positionally.
	sendRows  map[int32][]int32
	recvGhost map[int32][]int32
	// haloRanks is the sorted set of ranks this one exchanges with.
	haloRanks []int32

	// Interior/boundary row split: boundary rows have at least one ghost
	// column and cannot start before the halo completes; interior rows
	// can.  The nnz counts drive the split compute charges.
	interior, boundary       []int32
	nnzInterior, nnzBoundary int

	full []float64 // scratch: owned values followed by ghosts

	// Per-exchange scratch reused across halo exchanges (one per operator
	// application): the outgoing value gather and the receive requests.
	sendScratch []float64
	reqScratch  []*msg.Request
}

// vertOwner returns the owning rank of local vertex v under the exact
// sharing state (lowest actual holder).
func vertOwner(own *pmesh.EdgeOwnership, me, v int32) int32 {
	if sh := own.VertSharers[v]; len(sh) > 0 && sh[0] < me {
		return sh[0]
	}
	return me
}

// NewDistSystem assembles A = shift*I + scale*L over the distributed
// mesh's active vertices and edges.  Collective.  The resulting global
// operator is entry-for-entry bitwise identical to Assemble on the
// equivalent serial mesh.
func NewDistSystem(d *pmesh.DistMesh, shift, scale float64) *DistSystem {
	s := &DistSystem{D: d, C: d.C}
	s.own = d.ResolveOwnership()
	m := d.M
	me := int32(d.C.Rank())

	// Owned rows, ascending gid.
	var gids []uint64
	vertOf := make(map[uint64]int32)
	for v := range m.Coords {
		if !m.VertAlive[v] || vertOwner(s.own, me, int32(v)) != me {
			continue
		}
		gids = append(gids, m.VertGID[v])
		vertOf[m.VertGID[v]] = int32(v)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	rowOf := make(map[uint64]int32, len(gids))
	s.rowVert = make([]int32, len(gids))
	for i, g := range gids {
		rowOf[g] = int32(i)
		s.rowVert[i] = vertOf[g]
	}

	// Contributions of the edges this rank owns.  Each edge (a,b)
	// contributes to rows a and b; contributions to rows owned
	// elsewhere are forwarded to the owning rank together with the
	// column's owner, which the receiver needs to build its halo.
	type contrib struct {
		col      uint64
		colOwner int32
		w        float64
	}
	rows := make(map[uint64][]contrib)
	sendBuf := make(map[int32][]int64)
	add := func(rowGID, colGID uint64, rowOwner, colOwner int32, w float64) {
		if rowOwner == me {
			rows[rowGID] = append(rows[rowGID], contrib{colGID, colOwner, w})
			return
		}
		sendBuf[rowOwner] = append(sendBuf[rowOwner],
			int64(rowGID), int64(colGID), int64(colOwner), int64(math.Float64bits(w)))
	}
	if m.EdgeElems == nil {
		m.BuildEdgeElems()
	}
	for id := range m.EdgeV {
		if !s.own.Owned[id] {
			continue
		}
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		w := EdgeWeight(m.Coords[a].Sub(m.Coords[b]).Norm())
		oa, ob := vertOwner(s.own, me, a), vertOwner(s.own, me, b)
		ga, gb := m.VertGID[a], m.VertGID[b]
		add(ga, gb, oa, ob, w)
		add(gb, ga, ob, oa, w)
	}

	// Forward remote contributions.  Destinations are ranks that share
	// a vertex with this one, a subset of the SPL neighbour set, which
	// is symmetric — every rank posts to each neighbour (possibly an
	// empty message) and drains each neighbour, so the exchange cannot
	// deadlock and receives stay deterministic.
	neighbors := d.NeighborRanks()
	for _, r := range neighbors {
		d.C.SendInts(int(r), tagAssemble, sendBuf[r])
	}
	for _, r := range neighbors {
		vals := d.C.RecvInts(int(r), tagAssemble)
		for i := 0; i+3 < len(vals); i += 4 {
			rows[uint64(vals[i])] = append(rows[uint64(vals[i])], contrib{
				col:      uint64(vals[i+1]),
				colOwner: int32(vals[i+2]),
				w:        math.Float64frombits(uint64(vals[i+3])),
			})
		}
	}

	// Ghost discovery: any column gid not owned here.
	ghostOwnerOf := make(map[uint64]int32)
	for _, cs := range rows {
		for _, c := range cs {
			if c.colOwner != me {
				ghostOwnerOf[c.col] = c.colOwner
			}
		}
	}
	s.GhostGID = make([]uint64, 0, len(ghostOwnerOf))
	for g := range ghostOwnerOf {
		s.GhostGID = append(s.GhostGID, g)
	}
	sort.Slice(s.GhostGID, func(i, j int) bool { return s.GhostGID[i] < s.GhostGID[j] })
	s.ghostOwner = make([]int32, len(s.GhostGID))
	ghostIdx := make(map[uint64]int32, len(s.GhostGID))
	for i, g := range s.GhostGID {
		s.ghostOwner[i] = ghostOwnerOf[g]
		ghostIdx[g] = int32(i)
	}

	// Build the CSR over [owned | ghost] columns.
	n := len(gids)
	colIdx := func(g uint64) int32 {
		if r, ok := rowOf[g]; ok {
			return r
		}
		return int32(n) + ghostIdx[g]
	}
	entRows := make([][]entry, n)
	for g, cs := range rows {
		i := rowOf[g]
		for _, c := range cs {
			entRows[i] = append(entRows[i], entry{c.col, c.w})
		}
	}
	s.A = finalizeRows(gids, entRows, colIdx, n+len(s.GhostGID), shift, scale)
	s.full = make([]float64, s.A.NCols)
	s.splitRows()

	s.buildHalo()
	return s
}

// splitRows classifies each owned row as interior (no ghost column) or
// boundary.  The SPAI preconditioner shares A's sparsity pattern, so one
// split serves every operator applied through this system.
func (s *DistSystem) splitRows() {
	n := s.A.NRows
	for i := 0; i < n; i++ {
		lo, hi := s.A.RowPtr[i], s.A.RowPtr[i+1]
		ghosted := false
		for k := lo; k < hi; k++ {
			if int(s.A.Col[k]) >= n {
				ghosted = true
				break
			}
		}
		if ghosted {
			s.boundary = append(s.boundary, int32(i))
			s.nnzBoundary += int(hi - lo)
		} else {
			s.interior = append(s.interior, int32(i))
			s.nnzInterior += int(hi - lo)
		}
	}
}

// buildHalo exchanges need-lists so each rank knows which owned rows to
// ship before every SpMV.  The needs relation is symmetric (the operator
// pattern is symmetric and vertex ownership is globally consistent): the
// ranks this one requests from are exactly the ranks that request from
// it, so pairwise eager sends followed by receives are deadlock-free.
func (s *DistSystem) buildHalo() {
	me := int32(s.C.Rank())
	s.recvGhost = make(map[int32][]int32)
	for i, r := range s.ghostOwner {
		s.recvGhost[r] = append(s.recvGhost[r], int32(i)) // gid-ascending
	}
	s.haloRanks = s.haloRanks[:0]
	for r := range s.recvGhost {
		if r == me {
			panic("linalg: ghost owned by self")
		}
		s.haloRanks = append(s.haloRanks, r)
	}
	sort.Slice(s.haloRanks, func(i, j int) bool { return s.haloRanks[i] < s.haloRanks[j] })

	for _, r := range s.haloRanks {
		need := make([]int64, 0, len(s.recvGhost[r]))
		for _, gi := range s.recvGhost[r] {
			need = append(need, int64(s.GhostGID[gi]))
		}
		s.C.SendInts(int(r), tagNeeds, need)
	}
	s.sendRows = make(map[int32][]int32)
	for _, r := range s.haloRanks {
		req := s.C.RecvInts(int(r), tagNeeds)
		list := make([]int32, len(req))
		for i, g := range req {
			row := s.A.RowOf(uint64(g))
			if row < 0 {
				panic("linalg: halo request for a row not owned here")
			}
			list[i] = int32(row)
		}
		s.sendRows[r] = list
	}
}

// postHalo ships the owned boundary values to every halo neighbour and
// posts the matching receives without waiting for them.  s.full[:NRows]
// must already hold the owned values.  The gather scratch and request
// slice are reused across calls — one halo exchange runs per operator
// application per PCG iteration, so this path must not allocate.
func (s *DistSystem) postHalo() []*msg.Request {
	s.C.PushPhase(event.PhaseHalo)
	defer s.C.PopPhase()
	for _, r := range s.haloRanks {
		list := s.sendRows[r]
		if cap(s.sendScratch) < len(list) {
			s.sendScratch = make([]float64, len(list))
		}
		vals := s.sendScratch[:len(list)]
		for i, row := range list {
			vals[i] = s.full[row]
		}
		s.C.SendFloats(int(r), tagHalo, vals)
	}
	if s.reqScratch == nil {
		s.reqScratch = make([]*msg.Request, len(s.haloRanks))
	}
	reqs := s.reqScratch
	for i, r := range s.haloRanks {
		reqs[i] = s.C.Irecv(int(r), tagHalo)
	}
	return reqs
}

// finishHalo completes the posted receives and installs the ghost
// values, in halo-rank order (the order the blocking exchange uses).
// Ghost values decode straight out of the message payload, which then
// returns to the world's pool.
func (s *DistSystem) finishHalo(reqs []*msg.Request) {
	s.C.PushPhase(event.PhaseHalo)
	defer s.C.PopPhase()
	n := s.A.NRows
	for i, r := range s.haloRanks {
		m := reqs[i].Wait()
		for j, gi := range s.recvGhost[r] {
			s.full[n+int(gi)] = math.Float64frombits(
				binary.LittleEndian.Uint64(m.Data[8*j:]))
		}
		s.C.Release(m)
		reqs[i] = nil
	}
}

// exchangeHalo refreshes s.full's ghost block from the owners of the
// ghost vertices: the blocking exchange, post immediately followed by
// finish (Isend is Send and Wait is Recv, so the message operations —
// and the simulated clock charges — are exactly the pre-overlap ones).
func (s *DistSystem) exchangeHalo() {
	s.finishHalo(s.postHalo())
}

// Rows returns the number of owned rows.
func (s *DistSystem) Rows() int { return s.A.NRows }

// applyOp computes dst = M*s.full for an operator sharing A's sparsity
// pattern (A itself, or the SPAI preconditioner), refreshing the ghost
// block on the way.  s.full[:NRows] must already hold the owned values.
// With Overlap set, interior rows are computed while the halo messages
// are in flight — the comm/compute overlap that shortens the simulated
// critical path; the floats in dst are bitwise identical either way.
func (s *DistSystem) applyOp(M *CSR, dst []float64) {
	if !s.Overlap {
		s.exchangeHalo()
		M.MulVec(dst, s.full)
		s.C.Compute(workPerNNZ * float64(M.NNZ()))
		return
	}
	reqs := s.postHalo()
	M.MulVecRows(dst, s.full, s.interior)
	s.C.Compute(workPerNNZ * float64(s.nnzInterior))
	s.finishHalo(reqs)
	M.MulVecRows(dst, s.full, s.boundary)
	s.C.Compute(workPerNNZ * float64(s.nnzBoundary))
}

// MulVec computes dst = A*x on the owned rows after refreshing the halo.
// Collective.
func (s *DistSystem) MulVec(dst, x []float64) {
	copy(s.full[:s.A.NRows], x)
	s.applyOp(s.A, dst)
}

// Dot returns the global dot product, exactly rounded.  Per-rank exact
// partial sums are gathered at the host and merged there — merging exact
// accumulators is associative and commutative, so the result does not
// depend on rank count or order — then the rounded float64 is broadcast.
// Collective.
func (s *DistSystem) Dot(x, y []float64) float64 {
	acc := NewAcc()
	acc.AddProducts(x, y)
	s.C.Compute(workPerDot * float64(len(x)))
	parts := s.C.Gather(0, acc.Bytes())
	var v float64
	if s.C.Rank() == 0 {
		total := NewAcc()
		for _, p := range parts {
			total.Merge(AccFromBytes(p))
		}
		v = total.Float64()
	}
	return s.C.BcastFloats(0, []float64{v})[0]
}

// NewPrecond builds the requested preconditioner for the distributed
// system.  Collective for PrecondSPAI (ghost rows of A and of the raw
// SPAI rows are exchanged over the halo lists).
func (s *DistSystem) NewPrecond(kind PrecondKind) Preconditioner {
	switch kind {
	case PrecondJacobi:
		return NewJacobi(s.A.Diag)
	case PrecondSPAI:
		return s.newSPAI()
	default:
		return Identity()
	}
}

// colGIDs returns the gid of every local column: owned rows then ghosts.
func (s *DistSystem) colGIDs() []uint64 {
	out := make([]uint64, 0, s.A.NCols)
	out = append(out, s.A.GID...)
	return append(out, s.GhostGID...)
}

func (s *DistSystem) newSPAI() Preconditioner {
	s.C.PushPhase(event.PhaseSPAI)
	defer s.C.PopPhase()
	colGID := s.colGIDs()

	type row struct {
		gids []uint64
		vals []float64
	}
	// Ship rows of A for the vertices each halo neighbour ghosts, and
	// receive the rows of this rank's ghosts.  Payload per row:
	// gid, ncols, col gids..., value bits...
	packRows := func(source []float64) map[uint64]row {
		for _, r := range s.haloRanks {
			var buf []int64
			for _, ri := range s.sendRows[r] {
				lo, hi := s.A.RowPtr[ri], s.A.RowPtr[ri+1]
				buf = append(buf, int64(s.A.GID[ri]), int64(hi-lo))
				for k := lo; k < hi; k++ {
					buf = append(buf, int64(colGID[s.A.Col[k]]))
				}
				for k := lo; k < hi; k++ {
					buf = append(buf, int64(math.Float64bits(source[k])))
				}
			}
			s.C.SendInts(int(r), tagRows, buf)
		}
		ghost := make(map[uint64]row)
		for _, r := range s.haloRanks {
			vals := s.C.RecvInts(int(r), tagRows)
			for i := 0; i < len(vals); {
				g := uint64(vals[i])
				nc := int(vals[i+1])
				i += 2
				rw := row{gids: make([]uint64, nc), vals: make([]float64, nc)}
				for k := 0; k < nc; k++ {
					rw.gids[k] = uint64(vals[i+k])
				}
				i += nc
				for k := 0; k < nc; k++ {
					rw.vals[k] = math.Float64frombits(uint64(vals[i+k]))
				}
				i += nc
				ghost[g] = rw
			}
		}
		return ghost
	}

	ghostA := packRows(s.A.Val)
	arow := func(gid uint64) ([]uint64, []float64) {
		if i := s.A.RowOf(gid); i >= 0 {
			return rowGids2(s.A, colGID, i), s.A.Val[s.A.RowPtr[i]:s.A.RowPtr[i+1]]
		}
		if rw, ok := ghostA[gid]; ok {
			return rw.gids, rw.vals
		}
		return nil, nil
	}
	raw := spaiRawRows(s.A, colGID, arow)

	ghostM := packRows(raw)
	mrow := func(gid uint64) ([]uint64, []float64) {
		if i := s.A.RowOf(gid); i >= 0 {
			return rowGids2(s.A, colGID, i), raw[s.A.RowPtr[i]:s.A.RowPtr[i+1]]
		}
		if rw, ok := ghostM[gid]; ok {
			return rw.gids, rw.vals
		}
		return nil, nil
	}
	sym := symmetrizeRows(s.A, colGID, raw, mrow)

	M := &CSR{NRows: s.A.NRows, NCols: s.A.NCols, RowPtr: s.A.RowPtr, Col: s.A.Col, Val: sym, GID: s.A.GID}
	return &distMatPrecond{sys: s, M: M}
}

// distMatPrecond applies a halo-refreshing sparse preconditioner: the
// SPAI pattern equals A's pattern, so its ghost needs are A's halo.
type distMatPrecond struct {
	sys *DistSystem
	M   *CSR
}

func (p *distMatPrecond) Apply(dst, r []float64) {
	s := p.sys
	copy(s.full[:s.A.NRows], r)
	s.applyOp(p.M, dst)
}

// rowGids2 is rowGids with an explicit column-gid table (the distributed
// column space includes ghosts).
func rowGids2(A *CSR, colGID []uint64, i int) []uint64 {
	cols, _ := A.Row(i)
	g := make([]uint64, len(cols))
	for k, c := range cols {
		g[k] = colGID[c]
	}
	return g
}

// GatherField extracts b[row] = sol[vert*ncomp+comp] from the local mesh
// for every owned row.
func (s *DistSystem) GatherField(ncomp, comp int) []float64 {
	b := make([]float64, s.A.NRows)
	for i, v := range s.rowVert {
		b[i] = s.D.M.Sol[int(v)*ncomp+comp]
	}
	return b
}

// ScatterField writes owned solution values into the local mesh and
// forwards boundary values to the other actual holders of each shared
// vertex, so every copy of the solution field stays bitwise consistent.
// Collective.
func (s *DistSystem) ScatterField(ncomp, comp int, x []float64) {
	m := s.D.M
	send := make(map[int32][]int64)
	for i, v := range s.rowVert {
		m.Sol[int(v)*ncomp+comp] = x[i]
		for _, r := range s.own.VertSharers[v] {
			send[r] = append(send[r], int64(m.VertGID[v]), int64(math.Float64bits(x[i])))
		}
	}
	neighbors := s.D.NeighborRanks()
	for _, r := range neighbors {
		s.C.SendInts(int(r), tagScatter, send[r])
	}
	for _, r := range neighbors {
		vals := s.C.RecvInts(int(r), tagScatter)
		for i := 0; i+1 < len(vals); i += 2 {
			v := m.VertByGID(uint64(vals[i]))
			if v < 0 {
				continue
			}
			m.Sol[int(v)*ncomp+comp] = math.Float64frombits(uint64(vals[i+1]))
		}
	}
}
