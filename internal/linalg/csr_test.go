package linalg

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/mesh"
)

// refinedMesh builds a small adapted mesh with one refinement pass so the
// operator mixes initial vertices and hashed-gid midpoints.
func refinedMesh(nx, ny, nz int) *adapt.Mesh {
	m := mesh.Box(nx, ny, nz, float64(nx), float64(ny), float64(nz))
	a := adapt.FromMesh(m, 0)
	a.BuildEdgeElems()
	ind := adapt.SphericalIndicator(mesh.Vec3{float64(nx) / 2, float64(ny) / 2, float64(nz) / 2}, 0.8, 0.5)
	errv := a.EdgeErrorGeometric(ind)
	a.TargetEdges(errv, 0.5)
	a.Propagate()
	a.Refine()
	return a
}

func TestAssembleLaplacianProperties(t *testing.T) {
	a := refinedMesh(2, 2, 2)
	A := Assemble(a, 1.0, 1.0)
	if A.NRows != a.ActiveCounts().Verts {
		t.Fatalf("rows %d != active verts %d", A.NRows, a.ActiveCounts().Verts)
	}
	// Rows are gid-ascending; columns within each row too.
	for i := 1; i < A.NRows; i++ {
		if A.GID[i-1] >= A.GID[i] {
			t.Fatal("row gids not ascending")
		}
	}
	// Symmetry (bitwise: both entries come from the same edge weight)
	// and the Laplacian row-sum identity sum_j A_ij = shift.
	find := func(i int, j int32) (float64, bool) {
		cols, vals := A.Row(i)
		for k, c := range cols {
			if c == j {
				return vals[k], true
			}
		}
		return 0, false
	}
	for i := 0; i < A.NRows; i++ {
		cols, vals := A.Row(i)
		sum := 0.0
		for k, c := range cols {
			if k > 0 && A.GID[cols[k-1]] >= A.GID[c] {
				t.Fatal("columns not gid-ascending")
			}
			sum += vals[k]
			back, ok := find(int(c), int32(i))
			if !ok || back != vals[k] {
				t.Fatalf("A(%d,%d)=%v but A(%d,%d)=%v,%v", i, c, vals[k], c, i, back, ok)
			}
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("row %d sums to %v, want shift=1", i, sum)
		}
		if A.Diag[i] <= 0 {
			t.Fatalf("diag %d = %v not positive", i, A.Diag[i])
		}
	}
}

func TestSpMVMatchesNaive(t *testing.T) {
	a := refinedMesh(2, 2, 1)
	A := Assemble(a, 1.0, 0.5)
	x := make([]float64, A.NRows)
	for i := range x {
		x[i] = math.Sin(float64(i) + 1)
	}
	got := make([]float64, A.NRows)
	A.MulVec(got, x)
	for i := 0; i < A.NRows; i++ {
		cols, vals := A.Row(i)
		var want float64
		for k := range cols {
			want += vals[k] * x[cols[k]]
		}
		if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("row %d: %v != naive %v", i, got[i], want)
		}
	}
}

func TestExactDotOrderIndependent(t *testing.T) {
	// Values spanning ~90 orders of magnitude: a naive float64 sum
	// depends strongly on order here; the exact accumulator must not.
	x := []float64{1e30, 1, -1e30, 1e-40, 3.5, -7.25e10, 1e-300, 42}
	y := []float64{2, 1e-30, 2, 1e40, 1, 1, 1e300, 1}
	want := ExactDot(x, y)
	// Reversed order.
	n := len(x)
	rx := make([]float64, n)
	ry := make([]float64, n)
	for i := range x {
		rx[n-1-i] = x[i]
		ry[n-1-i] = y[i]
	}
	if got := ExactDot(rx, ry); got != want {
		t.Fatalf("reversed order changed exact dot: %v != %v", got, want)
	}
	// Split into two accumulators and merge (the distributed path).
	a, b := NewAcc(), NewAcc()
	a.AddProducts(x[:3], y[:3])
	b.AddProducts(x[3:], y[3:])
	b.Merge(a)
	if got := b.Float64(); got != want {
		t.Fatalf("merged accumulators: %v != %v", got, want)
	}
}

func TestExactAccRoundTrip(t *testing.T) {
	a := NewAcc()
	a.AddProducts([]float64{1e-30, 7, -2.5e20}, []float64{3, 1, 1})
	if got := AccFromBytes(a.Bytes()).Float64(); got != a.Float64() {
		t.Fatalf("serialization round trip: %v != %v", got, a.Float64())
	}
}

func TestGatherScatterField(t *testing.T) {
	m := mesh.Box(2, 2, 2, 2, 2, 2)
	a := adapt.FromMesh(m, 3)
	for v := range a.Coords {
		for k := 0; k < 3; k++ {
			a.Sol[v*3+k] = float64(v*10 + k)
		}
	}
	A := Assemble(a, 1, 1)
	b := GatherField(A, a, 3, 1)
	for i := range b {
		b[i] += 100
	}
	ScatterField(A, a, 3, 1, b)
	for v := range a.Coords {
		if a.Sol[v*3+1] != float64(v*10+1)+100 {
			t.Fatalf("vertex %d component 1 not round-tripped", v)
		}
		if a.Sol[v*3] != float64(v*10) {
			t.Fatal("component 0 disturbed")
		}
	}
}
