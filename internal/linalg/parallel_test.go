package linalg

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
)

const (
	testShift = 1.0
	testScale = 0.35
)

// rhsField is the deterministic right-hand side used by the agreement
// tests: a function of position only, so every rank computes bitwise the
// same value for a given vertex.
func rhsField(p mesh.Vec3) float64 {
	return 1 + 0.25*p[0]*p[1] - 0.5*p[2] + 0.125*p[0]
}

// serialReference refines the global mesh with the given indicator
// threshold and solves the assembled system, returning the residual
// history and the solution keyed by vertex gid.
func serialReference(global *mesh.Mesh, ind func(mesh.Vec3) float64, kind PrecondKind) (Result, map[uint64]float64) {
	a := adapt.FromMesh(global, 0)
	a.BuildEdgeElems()
	errv := a.EdgeErrorGeometric(ind)
	a.TargetEdges(errv, 0.5)
	a.Propagate()
	a.Refine()

	A := Assemble(a, testShift, testScale)
	sys := NewSerial(A)
	b := make([]float64, A.NRows)
	for i, g := range A.GID {
		b[i] = rhsField(a.Coords[a.VertByGID(g)])
	}
	x := make([]float64, A.NRows)
	res := PCG(sys, sys.NewPrecond(kind), b, x, DefaultOptions())
	sol := make(map[uint64]float64, len(x))
	for i, g := range A.GID {
		sol[g] = x[i]
	}
	return res, sol
}

// TestDistributedMatchesSerialBitwise is the core guarantee of the
// subsystem: PCG on the distributed operator produces bitwise-identical
// iterates and residual histories for P in {1,2,4,8}, for every
// preconditioner, against the serial reference.
func TestDistributedMatchesSerialBitwise(t *testing.T) {
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	ind := adapt.SphericalIndicator(mesh.Vec3{1.5, 1.5, 1}, 0.8, 0.5)
	g := dual.FromMesh(global)

	for _, kind := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondSPAI} {
		want, wantSol := serialReference(global, ind, kind)
		if !want.Converged {
			t.Fatalf("%v: serial reference did not converge", kind)
		}
		for _, p := range []int{1, 2, 4, 8} {
			part := partition.Partition(g, p, partition.Default())
			msg.Run(p, func(c *msg.Comm) {
				d := pmesh.New(c, global, part, 0)
				le := d.M.EdgeErrorGeometric(ind)
				d.M.TargetEdges(le, 0.5)
				d.PropagateParallel()
				d.Refine()

				sys := NewDistSystem(d, testShift, testScale)
				b := make([]float64, sys.Rows())
				for i, v := range sys.rowVert {
					b[i] = rhsField(d.M.Coords[v])
				}
				x := make([]float64, sys.Rows())
				res := PCG(sys, sys.NewPrecond(kind), b, x, DefaultOptions())

				if res.Iterations != want.Iterations || res.Converged != want.Converged {
					t.Errorf("%v P=%d rank %d: %d iterations (converged=%v), serial %d (%v)",
						kind, p, c.Rank(), res.Iterations, res.Converged,
						want.Iterations, want.Converged)
					return
				}
				for k, r := range res.Residuals {
					if r != want.Residuals[k] {
						t.Errorf("%v P=%d rank %d: residual[%d] = %x, serial %x",
							kind, p, c.Rank(), k, r, want.Residuals[k])
						return
					}
				}
				for i, gid := range sys.A.GID {
					if x[i] != wantSol[gid] {
						t.Errorf("%v P=%d rank %d: x[gid %d] = %x, serial %x",
							kind, p, c.Rank(), gid, x[i], wantSol[gid])
						return
					}
				}
			})
		}
	}
}

// TestDistributedOperatorMatchesSerial checks the assembled operator
// itself: every owned row of every rank is entry-for-entry identical to
// the serial assembly.
func TestDistributedOperatorMatchesSerial(t *testing.T) {
	global := mesh.Box(3, 2, 2, 3, 2, 2)
	ind := adapt.SphericalIndicator(mesh.Vec3{1.5, 1, 1}, 0.7, 0.5)

	a := adapt.FromMesh(global, 0)
	a.BuildEdgeElems()
	errv := a.EdgeErrorGeometric(ind)
	a.TargetEdges(errv, 0.5)
	a.Propagate()
	a.Refine()
	ref := Assemble(a, testShift, testScale)

	g := dual.FromMesh(global)
	for _, p := range []int{2, 4, 8} {
		part := partition.Partition(g, p, partition.Default())
		rowsSeen := make([]int64, p)
		msg.Run(p, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, 0)
			le := d.M.EdgeErrorGeometric(ind)
			d.M.TargetEdges(le, 0.5)
			d.PropagateParallel()
			d.Refine()
			sys := NewDistSystem(d, testShift, testScale)
			colGID := sys.colGIDs()
			for i, gid := range sys.A.GID {
				ri := ref.RowOf(gid)
				if ri < 0 {
					t.Errorf("P=%d rank %d: row gid %d not in serial operator", p, c.Rank(), gid)
					return
				}
				rcols, rvals := ref.Row(ri)
				cols, vals := sys.A.Row(i)
				if len(cols) != len(rcols) {
					t.Errorf("P=%d rank %d gid %d: %d entries, serial %d",
						p, c.Rank(), gid, len(cols), len(rcols))
					return
				}
				for k := range cols {
					if colGID[cols[k]] != ref.GID[rcols[k]] || vals[k] != rvals[k] {
						t.Errorf("P=%d rank %d gid %d entry %d: (%d,%x) != serial (%d,%x)",
							p, c.Rank(), gid, k, colGID[cols[k]], vals[k],
							ref.GID[rcols[k]], rvals[k])
						return
					}
				}
			}
			rowsSeen[c.Rank()] = int64(sys.Rows())
		})
		total := 0
		for _, n := range rowsSeen {
			total += int(n)
		}
		if total != ref.NRows {
			t.Errorf("P=%d: ranks own %d rows in total, serial has %d", p, total, ref.NRows)
		}
	}
}

// TestDistributedDeterministic reruns an identical distributed solve and
// demands bitwise-identical output (the repo-wide determinism property).
func TestDistributedDeterministic(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 3, partition.Default())
	run := func() []float64 {
		var hist []float64
		msg.Run(3, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, 0)
			sys := NewDistSystem(d, 1, 1)
			b := make([]float64, sys.Rows())
			for i, v := range sys.rowVert {
				b[i] = rhsField(d.M.Coords[v])
			}
			x := make([]float64, sys.Rows())
			res := PCG(sys, sys.NewPrecond(PrecondSPAI), b, x, DefaultOptions())
			if c.Rank() == 0 {
				hist = res.Residuals
			}
		})
		return hist
	}
	h1, h2 := run(), run()
	if len(h1) != len(h2) {
		t.Fatalf("history lengths differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("residual %d differs between reruns: %x vs %x", i, h1[i], h2[i])
		}
	}
}

// TestScatterFieldConsistent verifies that after a distributed solve and
// scatter, every copy of a shared vertex holds the owner's value.
func TestScatterFieldConsistent(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 4, partition.Default())
	msg.Run(4, func(c *msg.Comm) {
		d := pmesh.New(c, global, part, 1)
		sys := NewDistSystem(d, 1, 1)
		x := make([]float64, sys.Rows())
		for i, gid := range sys.A.GID {
			x[i] = float64(gid) * 1.5
		}
		sys.ScatterField(1, 0, x)
		// Every alive local vertex must hold gid*1.5, whether owned
		// here or received from the owner.
		for v := range d.M.Coords {
			if !d.M.VertAlive[v] {
				continue
			}
			want := float64(d.M.VertGID[v]) * 1.5
			if d.M.Sol[v] != want {
				t.Errorf("rank %d vertex gid %d: %v != %v", c.Rank(), d.M.VertGID[v], d.M.Sol[v], want)
			}
		}
	})
}
