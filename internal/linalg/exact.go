package linalg

import "math/big"

// Exact (order-independent) summation for the global reductions of the
// PCG solver.  A dot product reduced across ranks in floating point
// depends on the partition: rank partial sums round differently than the
// serial sum, so "serial matches distributed" could only hold to a
// tolerance.  Instead every dot product is defined as the *exactly*
// rounded sum of the per-element products fl(x_i*y_i): each product is
// rounded to float64 once (identically on any rank holding the element)
// and the sum is carried in a wide binary accumulator that commits no
// rounding until the final conversion back to float64.  The result is
// independent of both the summation order and the processor count, which
// is what makes the distributed solver bitwise-reproducible against the
// serial reference for any P.
//
// The accumulator is a big.Float with enough precision to hold any sum
// of float64 terms exactly: the span from the smallest subnormal ulp
// (2^-1074) to the largest exponent (2^1023) is under 2100 bits, plus
// ~32 carry bits for element counts up to 2^32.  4096 bits clears that
// with margin and keeps the implementation a handful of lines on top of
// the standard library.
const accPrec = 4096

// Acc is an exact accumulator of float64 values.
type Acc struct {
	sum big.Float
}

// NewAcc returns an empty exact accumulator.
func NewAcc() *Acc {
	a := &Acc{}
	a.sum.SetPrec(accPrec)
	return a
}

// AddProducts accumulates fl(x_i*y_i) for all i.  The products are
// rounded to float64 before accumulation (see the package note); the
// accumulation itself is exact.
func (a *Acc) AddProducts(x, y []float64) {
	var t big.Float
	t.SetPrec(accPrec)
	for i := range x {
		t.SetFloat64(x[i] * y[i])
		a.sum.Add(&a.sum, &t)
	}
}

// Add accumulates a single float64 term exactly.
func (a *Acc) Add(v float64) {
	var t big.Float
	t.SetPrec(accPrec)
	t.SetFloat64(v)
	a.sum.Add(&a.sum, &t)
}

// Merge adds another accumulator's exact sum into this one.
func (a *Acc) Merge(b *Acc) { a.sum.Add(&a.sum, &b.sum) }

// Float64 rounds the exact sum to the nearest float64 — the single
// rounding step of the whole reduction.
func (a *Acc) Float64() float64 {
	f, _ := a.sum.Float64()
	return f
}

// Bytes serializes the accumulator for transport between ranks.
func (a *Acc) Bytes() []byte {
	b, err := a.sum.GobEncode()
	if err != nil {
		panic("linalg: exact accumulator encode: " + err.Error())
	}
	return b
}

// AccFromBytes reconstructs an accumulator serialized with Bytes.
func AccFromBytes(data []byte) *Acc {
	a := NewAcc()
	if err := a.sum.GobDecode(data); err != nil {
		panic("linalg: exact accumulator decode: " + err.Error())
	}
	return a
}

// ExactDot returns the exactly rounded dot product of x and y (the
// serial backend's reduction).
func ExactDot(x, y []float64) float64 {
	a := NewAcc()
	a.AddProducts(x, y)
	return a.Float64()
}
