package linalg

import (
	"math"
	"math/bits"
)

// Exact (order-independent) summation for the global reductions of the
// PCG solver.  A dot product reduced across ranks in floating point
// depends on the partition: rank partial sums round differently than the
// serial sum, so "serial matches distributed" could only hold to a
// tolerance.  Instead every dot product is defined as the *exactly*
// rounded sum of the per-element products fl(x_i*y_i): each product is
// rounded to float64 once (identically on any rank holding the element)
// and the sum is carried in a wide fixed-point accumulator that commits
// no rounding until the final conversion back to float64.  The result is
// independent of both the summation order and the processor count, which
// is what makes the distributed solver bitwise-reproducible against the
// serial reference for any P.
//
// The accumulator is a Kulisch-style superaccumulator: an array of
// 32-bit digits spanning every bit position a float64 sum can touch,
// from below the smallest subnormal ulp (2^-1074) up past the largest
// exponent (2^1023) plus carry headroom.  Adding a float64 is three
// shifted integer adds plus a (amortized-constant) carry ripple — no
// allocation, no wide multiply.  It replaces a 4096-bit big.Float
// accumulator that dominated the implicit workload's host profile
// (about half its CPU time and two thirds of its allocations); the sum
// is the same mathematically exact value, so Float64 rounds to
// identical bits, and Bytes emits the exact byte stream the big.Float
// gob encoding produced — so every simulated message cost of the
// distributed reductions is unchanged.  Both equivalences are pinned
// against a live big.Float reference by TestAccMatchesBigFloatReference.
const (
	accDigitBits = 32
	accDigitMask = 1<<accDigitBits - 1

	// accExpMin is the weight of accumulator bit 0: digits cover
	// [2^accExpMin, 2^(accExpMin+accDigits*32)).  -1088 leaves 14 bits
	// of slack below the smallest subnormal ulp and keeps the offset a
	// multiple of 32.
	accExpMin = -1088

	// accDigits spans 2240 bits: positions up to 2^1152, far above the
	// ~2^1056 a sum of 2^32 maximal float64 terms can reach.
	accDigits = 70
)

// accPrec is the precision field of the wire format: the width of the
// big.Float this accumulator's serialization stays bit-compatible with
// (see Bytes).
const accPrec = 4096

// Acc is an exact accumulator of float64 values.
//
// The digits are kept canonical (each in [0, 2^32)) with an ext word
// extending the two's complement above the top digit: ext == -1 means
// the accumulated value is negative.  Canonical form makes the running
// sum's exact binary exponent cheap to read, which the wire-format
// model below needs after every add.
//
// mLsb/mHas/mOK mirror the one piece of big.Float state the gob wire
// format exposes beyond the value: the stored mantissa width.  big.Float
// addition aligns operands at the lower stored lsb and keeps the
// trailing zero words, so the width is a function of the whole add
// history, not of the final value; Bytes must reproduce it exactly or
// the serialized length — and with it the simulated cost of every
// transported accumulator — would drift.  The evolution rule is
// compact: a fresh term t occupies one 64-bit word (stored lsb =
// exp(t) - 64); an add realigns at min of the stored lsbs and re-tops
// the window at the new exponent, capped at prec/64 words (the round
// step trims only alignment zeros — the true bit span of any float64
// sum fits in 2100 bits, so the value stays exact).
type Acc struct {
	dig [accDigits]uint64 // canonical digits in [0, 2^32)
	ext int64             // two's-complement extension: 0 or -1
	top int               // scan hint: no nonzero digit above this index

	pos, neg bool // a +Inf / -Inf was accumulated

	mHas bool // wire model: sum is in finite nonzero form
	mLsb int  // wire model: stored lsb bit position (absolute exponent)
}

// NewAcc returns an empty exact accumulator.
func NewAcc() *Acc { return &Acc{} }

// addAt adds the signed 32-bit chunks d0..d2 at digit index i (a
// float64 term's mantissa split; i+2 < accDigits by the exponent
// range), rippling the carry while keeping digits canonical.
// Amortized constant: a long ripple clears carry potential the way a
// binary counter does.
func (a *Acc) addAt(i int, d0, d1, d2 int64) {
	s := int64(a.dig[i]) + d0
	a.dig[i] = uint64(s) & accDigitMask
	c := s >> accDigitBits
	s = int64(a.dig[i+1]) + d1 + c
	a.dig[i+1] = uint64(s) & accDigitMask
	c = s >> accDigitBits
	s = int64(a.dig[i+2]) + d2 + c
	a.dig[i+2] = uint64(s) & accDigitMask
	c = s >> accDigitBits
	j := i + 3
	for c != 0 && j < accDigits {
		s = int64(a.dig[j]) + c
		a.dig[j] = uint64(s) & accDigitMask
		c = s >> accDigitBits
		j++
	}
	a.ext += c
	if a.ext != 0 && a.ext != -1 {
		panic("linalg: exact accumulator overflow") // unreachable by sizing
	}
	if j > a.top+1 {
		a.top = j - 1
	}
}

// addDig adds one signed value at digit index i with carry ripple; safe
// at any index (Merge and decode land on the topmost digits, where the
// three-chunk fast path would run off the array).  ext is allowed to
// leave {0,-1} transiently — a merge adds a negative operand's
// two's-complement digits before its ext compensates — so the range
// check belongs to the caller's final state, not here.
func (a *Acc) addDig(i int, v int64) {
	j := i
	for v != 0 && j < accDigits {
		s := int64(a.dig[j]) + v
		a.dig[j] = uint64(s) & accDigitMask
		v = s >> accDigitBits
		j++
	}
	a.ext += v
	if j > a.top+1 {
		a.top = j - 1
	}
}

// msb returns the absolute bit position of the magnitude's most
// significant bit, or ok=false for an exact zero.
func (a *Acc) msb() (int, bool) {
	if a.ext == 0 {
		t := a.top
		for t >= 0 && a.dig[t] == 0 {
			t--
		}
		a.top = t
		if t < 0 {
			a.top = 0
			return 0, false
		}
		return accDigitBits*t + bits.Len64(a.dig[t]) - 1 + accExpMin, true
	}
	// Negative: magnitude = 2^(32*accDigits) - D.  Above D's lowest set
	// bit the magnitude is ~D, below it is ..0001<zeros>; the msb is the
	// highest zero bit of D unless D is of the form 1...10...0, where
	// the magnitude collapses to that lowest set bit.
	h := accDigits - 1
	for h >= 0 && a.dig[h] == accDigitMask {
		h--
	}
	if h < 0 {
		return accExpMin, true // D = 2^N - 1: the value is -1 ulp
	}
	cand := accDigitBits*h + bits.Len64(^a.dig[h]&accDigitMask) - 1
	l := 0
	for l < accDigits && a.dig[l] == 0 {
		l++
	}
	if l == accDigits {
		panic("linalg: exact accumulator: negative with zero digits") // value -2^N is out of range
	}
	if fs := accDigitBits*l + bits.TrailingZeros64(a.dig[l]); fs > cand {
		cand = fs
	}
	return cand + accExpMin, true
}

// add accumulates one float64 term and advances the wire-format model.
func (a *Acc) add(v float64) {
	b := math.Float64bits(v)
	exp := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	if exp == 0x7ff {
		if mant != 0 {
			panic("linalg: exact accumulator: NaN term")
		}
		if b>>63 != 0 {
			a.neg = true
		} else {
			a.pos = true
		}
		if a.pos && a.neg {
			// The big.Float accumulator panicked (ErrNaN) at this add.
			panic("linalg: exact accumulator: addition of infinities with opposite signs")
		}
		return
	}
	if exp == 0 {
		if mant == 0 {
			return // ±0 leaves the sum (and its stored form) untouched
		}
		exp = 1 // subnormal: same 2^-1074 ulp, no hidden bit
	} else {
		mant |= 1 << 52
	}
	// v = ±mant * 2^(exp-1075); bit 0 of mant lands at accumulator bit:
	p := exp - 1075 - accExpMin
	i, off := p>>5, uint(p&31)
	lo := mant << off
	var hi uint64
	if off != 0 {
		hi = mant >> (64 - off)
	}
	d0, d1, d2 := int64(lo&accDigitMask), int64(lo>>accDigitBits), int64(hi)
	if b>>63 != 0 {
		d0, d1, d2 = -d0, -d1, -d2
	}
	a.addAt(i, d0, d1, d2)

	// Wire model: the term's stored lsb is one word below its exponent.
	texp := exp - 1075 + bits.Len64(mant) // binary exponent of v (msb+1)
	m, nz := a.msb()
	if !nz {
		a.mHas = false // exact cancellation: big.Float resets to zero form
		return
	}
	a.model(texp-64, m+1)
}

// model realigns the stored-width model after an operation whose second
// operand has stored lsb oLsb, with the sum's new binary exponent e.
func (a *Acc) model(oLsb, e int) {
	if !a.mHas {
		// Adding to a zero-form big.Float copies the operand's storage.
		a.mHas = true
		a.mLsb = oLsb
		return
	}
	align := a.mLsb
	if oLsb < align {
		align = oLsb
	}
	words := (e - align + 63) / 64
	if words > accPrec/64 {
		words = accPrec / 64 // round trims alignment zeros beyond prec
	}
	a.mLsb = e - 64*words
}

// Add accumulates a single float64 term exactly.
func (a *Acc) Add(v float64) { a.add(v) }

// AddProducts accumulates fl(x_i*y_i) for all i.  The products are
// rounded to float64 before accumulation (see the package note); the
// accumulation itself is exact.
func (a *Acc) AddProducts(x, y []float64) {
	for i := range x {
		a.add(x[i] * y[i])
	}
}

// Merge adds another accumulator's exact sum into this one.
func (a *Acc) Merge(b *Acc) {
	if b.pos || b.neg {
		a.pos = a.pos || b.pos
		a.neg = a.neg || b.neg
		if a.pos && a.neg {
			panic("linalg: exact accumulator: addition of infinities with opposite signs")
		}
		return
	}
	if _, bnz := b.msb(); !bnz {
		return // merging an exact zero leaves value and stored form untouched
	}
	// b's value is digits + ext*2^N (two's complement); a negative b has
	// its borrow rippled to the top, so iterating to b.top covers every
	// nonzero digit in either sign.
	for i := 0; i <= b.top; i++ {
		if d := b.dig[i]; d != 0 {
			a.addDig(i, int64(d))
		}
	}
	a.ext += b.ext
	if a.ext != 0 && a.ext != -1 {
		panic("linalg: exact accumulator overflow")
	}
	m, nz := a.msb()
	if !nz {
		a.mHas = false // exact cancellation: zero form
		return
	}
	if !b.mHas {
		panic("linalg: exact accumulator: merge of accumulator without stored form")
	}
	a.model(b.mLsb, m+1)
}

// bitsAt returns the 64 bits of the digit array starting at absolute
// bit position p (relative to 2^0; positions outside the array read 0).
func bitsAt(mag *[accDigits]uint64, p int) uint64 {
	p -= accExpMin
	if p <= -64 || p >= accDigits*accDigitBits {
		return 0
	}
	if p < 0 {
		return bitsAtIdx(mag, 0) << uint(-p)
	}
	return bitsAtIdx(mag, p)
}

func bitsAtIdx(mag *[accDigits]uint64, p int) uint64 {
	i, off := p>>5, uint(p&31)
	w := mag[i] >> off
	if i+1 < accDigits {
		w |= mag[i+1] << (accDigitBits - off)
	}
	if i+2 < accDigits {
		w |= mag[i+2] << (2*accDigitBits - off) // shifts >= 64 read as 0
	}
	return w
}

// magnitude returns the sign and non-negative digit array of the value.
func (a *Acc) magnitude() (negative bool, mag [accDigits]uint64) {
	if a.ext == 0 {
		return false, a.dig
	}
	borrow := uint64(1)
	for i, d := range a.dig {
		v := (^d & accDigitMask) + borrow
		mag[i] = v & accDigitMask
		borrow = v >> accDigitBits
	}
	return true, mag
}

// Float64 rounds the exact sum to the nearest float64 (ties to even) —
// the single rounding step of the whole reduction.
func (a *Acc) Float64() float64 {
	if a.pos {
		return math.Inf(1)
	}
	if a.neg {
		return math.Inf(-1)
	}
	m, nz := a.msb()
	if !nz {
		return 0
	}
	negative, mag := a.magnitude()
	msb := m - accExpMin // index into the digit array's bit space
	// Round at the float64 ulp: 52 bits below the msb for normal
	// results, or the fixed subnormal ulp position when the value is
	// too small for a normal mantissa.  Both are >= 14 by accExpMin's
	// slack, so guard/sticky positions never underflow the array.
	r := msb - 52
	if u := -1074 - accExpMin; r < u {
		r = u
	}
	mant := bitsAtIdx(&mag, r) & (1<<uint(msb-r+1) - 1)
	if mag[(r-1)>>5]>>uint((r-1)&31)&1 != 0 { // guard bit set
		sticky := false
		low := r - 1
		if mag[low>>5]&(1<<uint(low&31)-1) != 0 {
			sticky = true
		} else {
			for i := low>>5 - 1; i >= 0; i-- {
				if mag[i] != 0 {
					sticky = true
					break
				}
			}
		}
		if sticky || mant&1 == 1 {
			mant++
			if mant == 1<<53 {
				mant >>= 1
				r++
			}
		}
	}
	v := math.Ldexp(float64(mant), r+accExpMin) // overflow rounds to ±Inf, like big.Float
	if negative {
		v = -v
	}
	return v
}

// The serialized form is bit-for-bit the gob encoding of the 4096-bit
// big.Float accumulator this implementation replaced (layout: version,
// mode/accuracy/form/sign byte, precision, exponent, mantissa window),
// so the transport byte stream — and with it the simulated cost of
// every distributed reduction message — is unchanged.
const (
	gobVersion   = 1
	gobAccExact  = 1 << 3 // (accuracy Exact + 1) << 3; mode ToNearestEven is 0
	gobFinite    = 1 << 1
	gobInf       = 2 << 1
	gobNegBit    = 1
	gobHeaderLen = 10 // version + flags + prec (4) + exp (4)
)

// Bytes serializes the accumulator for transport between ranks.
func (a *Acc) Bytes() []byte {
	if a.pos || a.neg {
		b := []byte{gobVersion, gobAccExact | gobInf, 0, 0, accPrec >> 8, accPrec & 0xff}
		if a.neg {
			b[1] |= gobNegBit
		}
		return b
	}
	m, nz := a.msb()
	if !nz {
		return []byte{gobVersion, gobAccExact, 0, 0, accPrec >> 8, accPrec & 0xff}
	}
	negative, mag := a.magnitude()
	exp := m + 1
	if !a.mHas {
		panic("linalg: exact accumulator: nonzero sum without stored form")
	}
	if (exp-a.mLsb)%64 != 0 {
		panic("linalg: exact accumulator: misaligned stored form")
	}
	words := (exp - a.mLsb) / 64
	buf := make([]byte, gobHeaderLen+8*words)
	buf[0] = gobVersion
	buf[1] = gobAccExact | gobFinite
	if negative {
		buf[1] |= gobNegBit
	}
	buf[4], buf[5] = accPrec>>8, accPrec&0xff // prec, big-endian uint32
	be32 := uint32(int32(exp))
	buf[6], buf[7], buf[8], buf[9] = byte(be32>>24), byte(be32>>16), byte(be32>>8), byte(be32)
	for w := 0; w < words; w++ {
		chunk := bitsAt(&mag, exp-64*(w+1))
		off := gobHeaderLen + 8*w
		for k := 0; k < 8; k++ {
			buf[off+k] = byte(chunk >> uint(56-8*k))
		}
	}
	return buf
}

// AccFromBytes reconstructs an accumulator serialized with Bytes.
func AccFromBytes(data []byte) *Acc {
	a := NewAcc()
	if len(data) < 6 || data[0] != gobVersion {
		panic("linalg: exact accumulator decode: bad header")
	}
	negative := data[1]&gobNegBit != 0
	switch (data[1] >> 1) & 3 {
	case 0: // zero form
		return a
	case 2: // infinity
		a.pos, a.neg = !negative, negative
		return a
	case 3:
		panic("linalg: exact accumulator decode: NaN form")
	}
	if len(data) < gobHeaderLen || (len(data)-gobHeaderLen)%8 != 0 {
		panic("linalg: exact accumulator decode: truncated mantissa")
	}
	exp := int(int32(uint32(data[6])<<24 | uint32(data[7])<<16 | uint32(data[8])<<8 | uint32(data[9])))
	mant := data[gobHeaderLen:]
	lsb := exp - 8*len(mant) // stored lsb bit position
	for k := 0; k < len(mant); k++ {
		b := mant[len(mant)-1-k]
		if b == 0 {
			continue
		}
		p := lsb + 8*k - accExpMin
		if p < 0 {
			panic("linalg: exact accumulator decode: value below accumulator range")
		}
		w := uint64(b) << uint(p&31)
		d0, d1 := int64(w&accDigitMask), int64(w>>accDigitBits)
		if negative {
			d0, d1 = -d0, -d1
		}
		a.addDig(p>>5, d0)
		if d1 != 0 {
			a.addDig(p>>5+1, d1)
		}
	}
	if _, nz := a.msb(); nz {
		a.mHas, a.mLsb = true, lsb
	}
	return a
}

// ExactDot returns the exactly rounded dot product of x and y (the
// serial backend's reduction).
func ExactDot(x, y []float64) float64 {
	a := NewAcc()
	a.AddProducts(x, y)
	return a.Float64()
}
