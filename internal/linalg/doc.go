// Package linalg provides the distributed sparse linear-algebra
// subsystem of the reproduction: a CSR sparse-matrix type assembled from
// the adapted mesh, a cache-friendly sparse matrix-vector product, a
// preconditioned conjugate-gradient solver, and two preconditioners
// (Jacobi and a static-pattern sparse-approximate-inverse in the SPAI
// family of Grote & Huckle).
//
// The paper couples PLUM to an explicit edge-based flow solver, whose
// communication happens once per time step.  An implicit Krylov workload
// communicates every *solver iteration* — a halo exchange per SpMV and a
// global reduction per dot product — which is exactly the traffic class
// the load balancer's CommVolume/edge-cut metrics are a proxy for.  This
// package supplies that workload: package solver builds an implicit time
// stepper on it, and core exposes it through the workload selector.
//
// Entry points.  NewDistSystem assembles the distributed operator from
// a pmesh.DistMesh; PCG drives the solve; DistSystem.Overlap selects
// the split-SpMV mode that hides the halo exchange behind interior
// rows (bitwise-identical iterates, shorter critical path on contended
// topologies).  IsHaloTag classifies the per-iteration halo tag for the
// profile aggregator.
//
// Invariants (determinism discipline).  Every row is stored with its
// columns in ascending global-id order and every reduction uses an
// exact (order-independent) accumulator, so the distributed solver
// produces bitwise-identical iterates and residual histories for any
// processor count, including the serial reference — and identical again
// with overlap on or off, which is what lets the overlap experiment
// attribute every simulated-time difference to scheduling rather than
// arithmetic.
package linalg
