package linalg

// MulVec computes dst = A*x.  This is the hot path of the implicit
// workload: one call per PCG iteration per rank.  The kernel streams
// RowPtr/Col/Val sequentially (the assembly orders columns ascending, so
// accesses into x are monotone within a row) and unrolls the inner
// product by four to keep the floating-point pipeline busy.  Serial and
// distributed backends run this one kernel over identically ordered rows,
// so the floating-point summation order — and therefore every bit of the
// result — is the same everywhere by construction.
//
// len(x) must be A.NCols; len(dst) must be at least A.NRows.
func (A *CSR) MulVec(dst, x []float64) {
	col := A.Col
	val := A.Val
	for i := 0; i < A.NRows; i++ {
		lo, hi := int(A.RowPtr[i]), int(A.RowPtr[i+1])
		var s float64
		k := lo
		for ; k+4 <= hi; k += 4 {
			s += val[k]*x[col[k]] + val[k+1]*x[col[k+1]] +
				val[k+2]*x[col[k+2]] + val[k+3]*x[col[k+3]]
		}
		for ; k < hi; k++ {
			s += val[k] * x[col[k]]
		}
		dst[i] = s
	}
}

// MulVecRows computes dst[i] = (A*x)[i] for the listed rows only,
// leaving other entries of dst untouched.  The per-row inner product is
// the identical kernel (same entry order, same unroll), so splitting a
// product into row subsets — the interior/boundary split of the
// overlapped halo exchange — produces bitwise the same dst as one
// MulVec over all rows.
func (A *CSR) MulVecRows(dst, x []float64, rows []int32) {
	col := A.Col
	val := A.Val
	for _, i := range rows {
		lo, hi := int(A.RowPtr[i]), int(A.RowPtr[i+1])
		var s float64
		k := lo
		for ; k+4 <= hi; k += 4 {
			s += val[k]*x[col[k]] + val[k+1]*x[col[k+1]] +
				val[k+2]*x[col[k+2]] + val[k+3]*x[col[k+3]]
		}
		for ; k < hi; k++ {
			s += val[k] * x[col[k]]
		}
		dst[i] = s
	}
}
