package adapt

import (
	"fmt"
	"math"

	"plum/internal/mesh"
)

// CheckInvariants validates the structural invariants of the adapted
// mesh.  It is used heavily by the test suite and is cheap enough to run
// after every adaption step in debugging builds.
//
// Invariants checked:
//  1. Every active element references alive vertices and alive *leaf*
//     edges consistent with its vertex pairs.
//  2. The edge pair map is a bijection onto alive edges.
//  3. Vertex gid map consistency, and midpoint vertices sit at the
//     geometric midpoint of their parent edge.
//  4. Conformity: every face of the active mesh is shared by at most two
//     active elements, and children fill their parent's volume.
//  5. Every active boundary face is a face of exactly one active element.
//  6. Refinement forest consistency (children point back to parents,
//     roots are initial elements).
func (m *Mesh) CheckInvariants() error {
	// 1. Active element structure.
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		for _, v := range m.ElemVerts[e] {
			if v < 0 || int(v) >= len(m.Coords) || !m.VertAlive[v] {
				return fmt.Errorf("adapt: active element %d references dead vertex %d", e, v)
			}
		}
		for le, id := range m.ElemEdges[e] {
			if !m.EdgeAlive[id] {
				return fmt.Errorf("adapt: active element %d references dead edge %d", e, id)
			}
			if !m.EdgeLeaf(id) {
				return fmt.Errorf("adapt: active element %d references bisected edge %d", e, id)
			}
			a := m.ElemVerts[e][mesh.TetEdgeVerts[le][0]]
			b := m.ElemVerts[e][mesh.TetEdgeVerts[le][1]]
			if m.EdgeV[id] != canonPair(a, b) {
				return fmt.Errorf("adapt: element %d local edge %d endpoints mismatch", e, le)
			}
		}
	}

	// 2. Pair map.
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] {
			continue
		}
		got, ok := m.edgeByPair[m.EdgeV[id]]
		if !ok || got != int32(id) {
			return fmt.Errorf("adapt: alive edge %d missing or duplicated in pair map (got %d, ok=%v)", id, got, ok)
		}
	}
	for k, id := range m.edgeByPair {
		if !m.EdgeAlive[id] {
			return fmt.Errorf("adapt: pair map entry %v points at dead edge %d", k, id)
		}
	}

	// 3. Vertices.
	for v := range m.Coords {
		if !m.VertAlive[v] {
			continue
		}
		if got, ok := m.gidVert[m.VertGID[v]]; !ok || got != int32(v) {
			return fmt.Errorf("adapt: vertex %d gid map inconsistent", v)
		}
	}
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] || m.EdgeLeaf(int32(id)) {
			continue
		}
		mid := m.EdgeMid[id]
		if mid < 0 || !m.VertAlive[mid] {
			return fmt.Errorf("adapt: bisected edge %d has dead midpoint", id)
		}
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		want := mesh.Mid(m.Coords[a], m.Coords[b])
		if m.Coords[mid].Sub(want).Norm() > 1e-9 {
			return fmt.Errorf("adapt: edge %d midpoint not at geometric midpoint", id)
		}
		for _, c := range m.EdgeChild[id] {
			if !m.EdgeAlive[c] {
				return fmt.Errorf("adapt: bisected edge %d has dead child %d", id, c)
			}
			if m.EdgeParent[c] != int32(id) {
				return fmt.Errorf("adapt: edge %d child %d has wrong parent %d", id, c, m.EdgeParent[c])
			}
		}
	}

	// 4. Conformity over active elements.
	faces := make(map[[3]int32]int)
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		ev := m.ElemVerts[e]
		for _, tri := range mesh.TetFaces {
			faces[canonTri(ev[tri[0]], ev[tri[1]], ev[tri[2]])]++
		}
	}
	for k, n := range faces {
		if n > 2 {
			return fmt.Errorf("adapt: face %v shared by %d active elements", k, n)
		}
	}
	// Children fill the parent volume.
	for e := range m.ElemVerts {
		if !m.ElemAlive[e] || m.ElemChild[e] == nil {
			continue
		}
		pv := m.elemVolume(int32(e))
		var cv float64
		for _, c := range m.ElemChild[e] {
			if !m.ElemAlive[c] {
				return fmt.Errorf("adapt: subdivided element %d has dead child %d", e, c)
			}
			if m.ElemParent[c] != int32(e) {
				return fmt.Errorf("adapt: element %d child %d has wrong parent", e, c)
			}
			cv += m.elemVolume(c)
		}
		if math.Abs(pv-cv) > 1e-9*math.Max(1, pv) {
			return fmt.Errorf("adapt: element %d children volume %v != parent %v", e, cv, pv)
		}
	}

	// 5. Boundary faces.
	for f := range m.BFaceVerts {
		if !m.BFaceActive(int32(f)) {
			continue
		}
		k := canonTri(m.BFaceVerts[f][0], m.BFaceVerts[f][1], m.BFaceVerts[f][2])
		if faces[k] != 1 {
			return fmt.Errorf("adapt: active boundary face %d is a face of %d active elements, want 1", f, faces[k])
		}
		for _, id := range m.BFaceEdges[f] {
			if !m.EdgeAlive[id] || !m.EdgeLeaf(id) {
				return fmt.Errorf("adapt: active boundary face %d has non-leaf or dead edge %d", f, id)
			}
		}
	}

	// 6. Forest roots: every alive element's root must be an alive
	// parentless element that is its own root, and elements below
	// NRootElems (FromMesh-constructed initial elements) are their own
	// roots.
	for e := range m.ElemVerts {
		if !m.ElemAlive[e] {
			continue
		}
		r := m.ElemRoot[e]
		if r < 0 || int(r) >= len(m.ElemVerts) {
			return fmt.Errorf("adapt: element %d has invalid root %d", e, r)
		}
		if !m.ElemAlive[r] || m.ElemParent[r] != -1 || m.ElemRoot[r] != r {
			return fmt.Errorf("adapt: element %d has non-root root %d", e, r)
		}
		if e < m.NRootElems && r != int32(e) {
			return fmt.Errorf("adapt: initial element %d has root %d", e, r)
		}
	}
	return nil
}

func canonTri(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

func (m *Mesh) elemVolume(e int32) float64 {
	ev := m.ElemVerts[e]
	return mesh.TetVolume(m.Coords[ev[0]], m.Coords[ev[1]], m.Coords[ev[2]], m.Coords[ev[3]])
}

// TotalActiveVolume returns the summed volume of all active elements
// (conserved across adaption).
func (m *Mesh) TotalActiveVolume() float64 {
	var v float64
	for e := range m.ElemVerts {
		if m.ElemActive(int32(e)) {
			v += m.elemVolume(int32(e))
		}
	}
	return v
}
