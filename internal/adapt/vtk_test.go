package adapt

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"plum/internal/mesh"
)

func TestWriteVTK(t *testing.T) {
	a := FromMesh(mesh.Box(2, 2, 1, 1, 1, 1), 1)
	for v := range a.Coords {
		a.Sol[v] = a.Coords[v][2]
	}
	a.BuildEdgeElems()
	for _, id := range a.ElemEdges[0] {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()

	var buf bytes.Buffer
	if err := a.WriteVTK(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	c := a.ActiveCounts()
	if !strings.Contains(out, fmt.Sprintf("POINTS %d double", c.Verts)) {
		t.Error("POINTS header wrong")
	}
	if !strings.Contains(out, fmt.Sprintf("CELLS %d %d", c.Elems, 5*c.Elems)) {
		t.Error("CELLS header wrong")
	}
	if !strings.Contains(out, "SCALARS sol0 double 1") {
		t.Error("solution data missing")
	}
	if !strings.Contains(out, "SCALARS root int 1") {
		t.Error("root cell data missing")
	}
	// Every cell line indexes valid points.
	sc := bufio.NewScanner(strings.NewReader(out))
	inCells := false
	cells := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CELLS") {
			inCells = true
			continue
		}
		if strings.HasPrefix(line, "CELL_TYPES") {
			inCells = false
		}
		if inCells {
			var n, v0, v1, v2, v3 int
			if _, err := fmt.Sscanf(line, "%d %d %d %d %d", &n, &v0, &v1, &v2, &v3); err != nil {
				t.Fatalf("bad cell line %q: %v", line, err)
			}
			for _, v := range []int{v0, v1, v2, v3} {
				if v < 0 || v >= c.Verts {
					t.Fatalf("cell references point %d of %d", v, c.Verts)
				}
			}
			cells++
		}
	}
	if cells != c.Elems {
		t.Errorf("wrote %d cells, want %d", cells, c.Elems)
	}
}

func TestWriteVTKGeometryOnly(t *testing.T) {
	a := FromMesh(mesh.Box(1, 1, 1, 1, 1, 1), 0)
	var buf bytes.Buffer
	if err := a.WriteVTK(&buf, -1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "POINT_DATA") {
		t.Error("geometry-only export should omit point data")
	}
}
