package adapt

import (
	"bufio"
	"fmt"
	"io"
)

// WriteVTK writes the active computational mesh in legacy VTK
// (UNSTRUCTURED_GRID) format for visualization — the post-processing
// use-case the paper's finalization phase exists for ("some post
// processing tasks, such as visualization, need to process the whole
// grid simultaneously").  Solution component comp is attached as point
// data when 0 <= comp < NComp; pass -1 for geometry only.  Cell data
// always includes the root-element id (so partition assignments can be
// painted onto the mesh by the caller's lookup).
func (m *Mesh) WriteVTK(w io.Writer, comp int) error {
	bw := bufio.NewWriter(w)

	// Dense vertex numbering over alive vertices.
	vid := make([]int32, len(m.Coords))
	nv := int32(0)
	for v := range m.Coords {
		if m.VertAlive[v] {
			vid[v] = nv
			nv++
		} else {
			vid[v] = -1
		}
	}
	var actives []int32
	for e := range m.ElemVerts {
		if m.ElemActive(int32(e)) {
			actives = append(actives, int32(e))
		}
	}

	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "PLUM adapted tetrahedral mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")

	fmt.Fprintf(bw, "POINTS %d double\n", nv)
	for v := range m.Coords {
		if m.VertAlive[v] {
			c := m.Coords[v]
			fmt.Fprintf(bw, "%g %g %g\n", c[0], c[1], c[2])
		}
	}

	fmt.Fprintf(bw, "CELLS %d %d\n", len(actives), 5*len(actives))
	for _, e := range actives {
		ev := m.ElemVerts[e]
		fmt.Fprintf(bw, "4 %d %d %d %d\n", vid[ev[0]], vid[ev[1]], vid[ev[2]], vid[ev[3]])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(actives))
	for range actives {
		fmt.Fprintln(bw, 10) // VTK_TETRA
	}

	fmt.Fprintf(bw, "CELL_DATA %d\n", len(actives))
	fmt.Fprintln(bw, "SCALARS root int 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, e := range actives {
		fmt.Fprintln(bw, m.ElemRoot[e])
	}

	if comp >= 0 && comp < m.NComp {
		fmt.Fprintf(bw, "POINT_DATA %d\n", nv)
		fmt.Fprintf(bw, "SCALARS sol%d double 1\n", comp)
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for v := range m.Coords {
			if m.VertAlive[v] {
				fmt.Fprintf(bw, "%g\n", m.Sol[v*m.NComp+comp])
			}
		}
	}
	return bw.Flush()
}
