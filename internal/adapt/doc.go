// Package adapt reimplements 3D_TAG, the edge-based tetrahedral mesh
// adaption scheme of Biswas & Strawn used by the paper (Section 3): error
// indicators target edges for refinement or coarsening; element edge
// markings are upgraded to one of the three allowed subdivision patterns
// (1:2, 1:4, 1:8) with fixpoint propagation; marked elements are
// subdivided; and coarsening removes child elements, reinstates parents,
// and re-invokes refinement to restore a valid mesh.
//
// The package maintains the complete refinement history ("parent edges and
// elements are retained at each refinement step so they do not have to be
// reconstructed"): elements, edges, and boundary faces form forests rooted
// at the objects of the initial mesh.  Per-root subtree sizes provide the
// two dual-graph weights of the PLUM load balancer: Wcomp (leaf elements,
// the flow-solver workload) and Wremap (total elements, the migration
// cost).
//
// Entry points.  FromMesh wraps a mesh.Mesh in an Adaptor;
// MarkTopFraction + Propagate + Refine is the serial adaption cycle;
// PredictRefine supplies the predicted post-refinement weights the
// remap-before ordering balances on; ShockCylinderIndicator is the
// moving-feature error indicator the experiments drive.
//
// Invariants.  Every vertex carries a stable 64-bit global id: initial
// vertices use their initial index, and a bisection midpoint's id is a
// hash of its parent edge's endpoint ids.  Edges are globally identified
// by their endpoint id pair.  This naming is what lets the distributed
// implementation (package pmesh) agree on the identity of objects created
// independently on different processors, including new edges on shared
// partition faces.  Marking propagation is a monotone fixpoint, so the
// final subdivision pattern is independent of traversal order.
package adapt
