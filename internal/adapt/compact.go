package adapt

import "plum/internal/mesh"

// Compaction (paper Section 3): "objects are renumbered due to
// compaction and all internal and shared data are updated accordingly."
// Coarsening and migration leave dead slots in the object tables; this
// pass rebuilds every table densely and rewrites all cross-references.
// Objects of the initial mesh (ids below NInit*) are alive by invariant
// in serial meshes, so their ids are preserved; in distributed submeshes
// whole families leave, and the caller must re-derive any external
// id-based state afterwards (pmesh rebuilds its maps from gids).

// CompactMaps reports the old-to-new id mappings of a compaction (-1
// for removed slots).
type CompactMaps struct {
	Vert  []int32
	Edge  []int32
	Elem  []int32
	BFace []int32
}

// Compact removes all dead vertices, edges, elements, and boundary
// faces, renumbering the survivors in order.  Returns the id maps.
func (m *Mesh) Compact() CompactMaps {
	cm := CompactMaps{
		Vert:  make([]int32, len(m.Coords)),
		Edge:  make([]int32, len(m.EdgeV)),
		Elem:  make([]int32, len(m.ElemVerts)),
		BFace: make([]int32, len(m.BFaceVerts)),
	}

	// Vertices.
	nv := int32(0)
	for v := range m.Coords {
		if m.VertAlive[v] {
			cm.Vert[v] = nv
			nv++
		} else {
			cm.Vert[v] = -1
		}
	}
	m.compactVerts(cm.Vert, int(nv))

	// Edges.
	ne := int32(0)
	for id := range m.EdgeV {
		if m.EdgeAlive[id] {
			cm.Edge[id] = ne
			ne++
		} else {
			cm.Edge[id] = -1
		}
	}
	m.compactEdges(cm.Vert, cm.Edge, int(ne))

	// Elements.
	nel := int32(0)
	for e := range m.ElemVerts {
		if m.ElemAlive[e] {
			cm.Elem[e] = nel
			nel++
		} else {
			cm.Elem[e] = -1
		}
	}
	m.compactElems(cm.Vert, cm.Edge, cm.Elem, int(nel))

	// Boundary faces.
	nf := int32(0)
	for f := range m.BFaceVerts {
		if m.BFaceAlive[f] {
			cm.BFace[f] = nf
			nf++
		} else {
			cm.BFace[f] = -1
		}
	}
	m.compactBFaces(cm.Vert, cm.Edge, cm.Elem, cm.BFace, int(nf))

	m.EdgeElems = nil
	m.bfaceParentCache = nil
	return cm
}

func (m *Mesh) compactVerts(vmap []int32, nv int) {
	newCoords := make([]mesh.Vec3, nv)
	newGID := make([]uint64, nv)
	newSol := make([]float64, nv*m.NComp)
	for v, nvid := range vmap {
		if nvid < 0 {
			continue
		}
		newCoords[nvid] = m.Coords[v]
		newGID[nvid] = m.VertGID[v]
		copy(newSol[int(nvid)*m.NComp:], m.Sol[v*m.NComp:(v+1)*m.NComp])
	}
	m.Coords = newCoords
	m.VertGID = newGID
	m.VertAlive = make([]bool, nv)
	for i := range m.VertAlive {
		m.VertAlive[i] = true
	}
	m.Sol = newSol
	m.gidVert = make(map[uint64]int32, nv)
	for v, g := range newGID {
		m.gidVert[g] = int32(v)
	}
}

func (m *Mesh) compactEdges(vmap, emap []int32, ne int) {
	newV := make([][2]int32, ne)
	newChild := make([][2]int32, ne)
	newParent := make([]int32, ne)
	newMid := make([]int32, ne)
	newMark := make([]bool, ne)
	for id, nid := range emap {
		if nid < 0 {
			continue
		}
		a, b := vmap[m.EdgeV[id][0]], vmap[m.EdgeV[id][1]]
		newV[nid] = canonPair(a, b)
		c0, c1 := m.EdgeChild[id][0], m.EdgeChild[id][1]
		if c0 >= 0 {
			newChild[nid] = [2]int32{emap[c0], emap[c1]}
		} else {
			newChild[nid] = [2]int32{-1, -1}
		}
		if p := m.EdgeParent[id]; p >= 0 {
			newParent[nid] = emap[p]
		} else {
			newParent[nid] = -1
		}
		if mid := m.EdgeMid[id]; mid >= 0 {
			newMid[nid] = vmap[mid]
		} else {
			newMid[nid] = -1
		}
		newMark[nid] = m.EdgeMark[id]
	}
	m.EdgeV = newV
	m.EdgeChild = newChild
	m.EdgeParent = newParent
	m.EdgeMid = newMid
	m.EdgeMark = newMark
	m.EdgeAlive = make([]bool, ne)
	for i := range m.EdgeAlive {
		m.EdgeAlive[i] = true
	}
	m.edgeByPair = make(map[[2]int32]int32, ne)
	for id, pair := range newV {
		m.edgeByPair[pair] = int32(id)
	}
}

func (m *Mesh) compactElems(vmap, emap, elmap []int32, nel int) {
	newVerts := make([][4]int32, nel)
	newEdges := make([][6]int32, nel)
	newParent := make([]int32, nel)
	newChild := make([][]int32, nel)
	newRoot := make([]int32, nel)
	for e, nid := range elmap {
		if nid < 0 {
			continue
		}
		for k, v := range m.ElemVerts[e] {
			newVerts[nid][k] = vmap[v]
		}
		for k, id := range m.ElemEdges[e] {
			newEdges[nid][k] = emap[id]
		}
		if p := m.ElemParent[e]; p >= 0 {
			newParent[nid] = elmap[p]
		} else {
			newParent[nid] = -1
		}
		if ch := m.ElemChild[e]; ch != nil {
			nch := make([]int32, len(ch))
			for k, c := range ch {
				nch[k] = elmap[c]
			}
			newChild[nid] = nch
		}
		newRoot[nid] = elmap[m.ElemRoot[e]]
	}
	m.ElemVerts = newVerts
	m.ElemEdges = newEdges
	m.ElemParent = newParent
	m.ElemChild = newChild
	m.ElemRoot = newRoot
	m.ElemAlive = make([]bool, nel)
	for i := range m.ElemAlive {
		m.ElemAlive[i] = true
	}
}

func (m *Mesh) compactBFaces(vmap, emap, elmap, fmap []int32, nf int) {
	newVerts := make([][3]int32, nf)
	newEdges := make([][3]int32, nf)
	newChild := make([][]int32, nf)
	newRoot := make([]int32, nf)
	for f, nid := range fmap {
		if nid < 0 {
			continue
		}
		for k, v := range m.BFaceVerts[f] {
			newVerts[nid][k] = vmap[v]
		}
		for k, id := range m.BFaceEdges[f] {
			newEdges[nid][k] = emap[id]
		}
		if ch := m.BFaceChild[f]; ch != nil {
			nch := make([]int32, len(ch))
			for k, c := range ch {
				nch[k] = fmap[c]
			}
			newChild[nid] = nch
		}
		newRoot[nid] = elmap[m.BFaceRoot[f]]
	}
	m.BFaceVerts = newVerts
	m.BFaceEdges = newEdges
	m.BFaceChild = newChild
	m.BFaceRoot = newRoot
	m.BFaceAlive = make([]bool, nf)
	for i := range m.BFaceAlive {
		m.BFaceAlive[i] = true
	}
}

// StorageSlots reports the raw table sizes (including dead slots), for
// measuring what compaction reclaims.
func (m *Mesh) StorageSlots() (verts, edges, elems, bfaces int) {
	return len(m.Coords), len(m.EdgeV), len(m.ElemVerts), len(m.BFaceVerts)
}
