package adapt

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"plum/internal/mesh"
)

func newBoxAdapt(t *testing.T, nx, ny, nz int) *Mesh {
	t.Helper()
	m := mesh.Box(nx, ny, nz, float64(nx), float64(ny), float64(nz))
	a := FromMesh(m, 1)
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("initial mesh invalid: %v", err)
	}
	return a
}

func TestFromMeshCounts(t *testing.T) {
	m := mesh.Box(2, 2, 2, 1, 1, 1)
	a := FromMesh(m, 0)
	c := a.ActiveCounts()
	if c.Verts != m.NumVerts() || c.Elems != m.NumElems() ||
		c.Edges != m.NumEdges() || c.BFaces != m.NumBFaces() {
		t.Errorf("counts %+v do not match source mesh (%d,%d,%d,%d)",
			c, m.NumVerts(), m.NumElems(), m.NumEdges(), m.NumBFaces())
	}
}

func TestUpgradePatternTable(t *testing.T) {
	for p := 0; p < 64; p++ {
		up := UpgradePattern(uint8(p))
		if up&uint8(p) != uint8(p) {
			t.Errorf("pattern %06b upgraded to %06b loses marks", p, up)
		}
		if !ValidPattern(up) {
			t.Errorf("upgrade of %06b gives invalid %06b", p, up)
		}
		n := bits.OnesCount8(up)
		if n != 0 && n != 1 && n != 3 && n != 6 {
			t.Errorf("upgrade of %06b has %d bits", p, n)
		}
		if n == 3 {
			found := false
			for _, fm := range faceMasks {
				if up == fm {
					found = true
				}
			}
			if !found {
				t.Errorf("3-bit upgrade %06b is not a face", up)
			}
		}
	}
}

func TestUpgradePatternSpecificCases(t *testing.T) {
	// Two edges sharing a vertex lie on one face: edges 0 (v0v1) and
	// 1 (v0v2) share v0, common face (0,1,2) = edges {0,1,3}.
	if got := UpgradePattern(1<<0 | 1<<1); got != faceMasks[0] {
		t.Errorf("edges {0,1} upgraded to %06b, want face mask %06b", got, faceMasks[0])
	}
	// Opposite edges (0: v0v1 and 5: v2v3) share no vertex -> 1:8.
	if got := UpgradePattern(1<<0 | 1<<5); got != FullPattern {
		t.Errorf("opposite edges upgraded to %06b, want full", got)
	}
	// Three edges not forming a face -> 1:8.
	if got := UpgradePattern(1<<0 | 1<<1 | 1<<2); got != FullPattern {
		t.Errorf("vertex-star edges upgraded to %06b, want full", got)
	}
	// A face triple stays.
	for f, fm := range faceMasks {
		if got := UpgradePattern(fm); got != fm {
			t.Errorf("face %d mask changed: %06b -> %06b", f, fm, got)
		}
	}
}

func TestSubdivisionArity(t *testing.T) {
	if SubdivisionArity(0) != 0 {
		t.Error("empty pattern arity != 0")
	}
	if SubdivisionArity(1<<2) != 2 {
		t.Error("single-edge arity != 2")
	}
	if SubdivisionArity(faceMasks[1]) != 4 {
		t.Error("face arity != 4")
	}
	if SubdivisionArity(FullPattern) != 8 {
		t.Error("full arity != 8")
	}
}

func TestRefineIsotropicSingleElement(t *testing.T) {
	a := newBoxAdapt(t, 1, 1, 1)
	before := a.ActiveCounts()
	// Mark all edges of element 0.
	a.BuildEdgeElems()
	for _, id := range a.ElemEdges[0] {
		a.MarkEdge(id)
	}
	a.Propagate()
	st := a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := a.ActiveCounts()
	if after.Elems <= before.Elems {
		t.Errorf("no growth: %d -> %d", before.Elems, after.Elems)
	}
	if st.ElemsSubdivided == 0 || st.EdgesBisected == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestRefineVolumeConserved(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	want := a.TotalActiveVolume()
	a.BuildEdgeElems()
	for _, id := range a.ElemEdges[3] {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	got := a.TotalActiveVolume()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("volume %v -> %v", want, got)
	}
}

func TestRefineSingleEdge12(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	a.BuildEdgeElems()
	// Mark one edge; propagation keeps 1:2 patterns on its sharers (a
	// single marked edge is a valid pattern).
	id := a.ElemEdges[0][0]
	nshare := len(a.EdgeElems[id])
	before := a.ActiveCounts()
	a.MarkEdge(id)
	newly := a.Propagate()
	if len(newly) != 0 {
		t.Errorf("single-edge mark propagated %d extra edges", len(newly))
	}
	st := a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.ElemsSubdivided != nshare {
		t.Errorf("subdivided %d elements, want %d (sharers of edge)", st.ElemsSubdivided, nshare)
	}
	after := a.ActiveCounts()
	// Each sharer becomes 2 children: net +nshare elements; one new vertex.
	if after.Elems != before.Elems+nshare {
		t.Errorf("elems %d -> %d, want +%d", before.Elems, after.Elems, nshare)
	}
	if after.Verts != before.Verts+1 {
		t.Errorf("verts %d -> %d, want +1", before.Verts, after.Verts)
	}
}

func TestRefineFullMeshOneLevel(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	before := a.ActiveCounts()
	a.BuildEdgeElems()
	for _, id := range a.activeLeafEdges() {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := a.ActiveCounts()
	if after.Elems != 8*before.Elems {
		t.Errorf("full refinement: %d -> %d elems, want 8x", before.Elems, after.Elems)
	}
	if after.BFaces != 4*before.BFaces {
		t.Errorf("full refinement: %d -> %d bfaces, want 4x", before.BFaces, after.BFaces)
	}
}

func TestPropagationProducesValidPatterns(t *testing.T) {
	a := newBoxAdapt(t, 3, 3, 3)
	a.BuildEdgeElems()
	// Mark an adversarial scatter of edges.
	for id := 0; id < len(a.EdgeV); id += 7 {
		a.MarkEdge(int32(id))
	}
	a.Propagate()
	for e := range a.ElemVerts {
		if !a.ElemActive(int32(e)) {
			continue
		}
		if p := a.ElemPattern(int32(e)); !ValidPattern(p) {
			t.Fatalf("element %d pattern %06b invalid after propagation", e, p)
		}
	}
	a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictRefineExact(t *testing.T) {
	a := newBoxAdapt(t, 3, 2, 2)
	a.BuildEdgeElems()
	for id := 0; id < len(a.EdgeV); id += 5 {
		a.MarkEdge(int32(id))
	}
	a.Propagate()
	pred := a.PredictRefine()
	a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := a.ActiveCounts()
	if int64(got.Elems) != pred.TotalActive {
		t.Errorf("prediction %d != actual %d active elements", pred.TotalActive, got.Elems)
	}
	wcomp, _ := a.RootWeights()
	for r, w := range wcomp {
		if w != pred.LeavesPerRoot[r] {
			t.Errorf("root %d predicted %d leaves, got %d", r, pred.LeavesPerRoot[r], w)
		}
	}
}

func TestRootWeights(t *testing.T) {
	a := newBoxAdapt(t, 1, 1, 1)
	wc, wr := a.RootWeights()
	for r := range wc {
		if wc[r] != 1 || wr[r] != 1 {
			t.Fatalf("initial weights root %d = (%d,%d), want (1,1)", r, wc[r], wr[r])
		}
	}
	// Isotropically refine element 0 only.
	a.BuildEdgeElems()
	for _, id := range a.ElemEdges[0] {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	wc, wr = a.RootWeights()
	if wc[0] != 8 || wr[0] != 9 {
		t.Errorf("refined root 0 weights (%d,%d), want (8,9)", wc[0], wr[0])
	}
	var totalLeaves int64
	for _, w := range wc {
		totalLeaves += w
	}
	if int(totalLeaves) != a.ActiveCounts().Elems {
		t.Errorf("sum of wcomp %d != active elems %d", totalLeaves, a.ActiveCounts().Elems)
	}
}

func TestTwoLevelRefinement(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	for level := 0; level < 2; level++ {
		a.BuildEdgeElems()
		ind := SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.8, 0.4)
		err := a.EdgeErrorGeometric(ind)
		a.MarkTopFraction(err, 0.2)
		a.Propagate()
		a.Refine()
		if e := a.CheckInvariants(); e != nil {
			t.Fatalf("level %d: %v", level, e)
		}
	}
	if a.ActiveCounts().Elems <= 48 {
		t.Error("two-level refinement did not grow the mesh")
	}
}

func TestSolutionInterpolation(t *testing.T) {
	m := mesh.Box(1, 1, 1, 1, 1, 1)
	a := FromMesh(m, 1)
	// Linear field u = x + 2y + 3z is reproduced exactly by midpoint
	// interpolation.
	for v := range a.Coords {
		c := a.Coords[v]
		a.Sol[v] = c[0] + 2*c[1] + 3*c[2]
	}
	a.BuildEdgeElems()
	for _, id := range a.activeLeafEdges() {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	for v := range a.Coords {
		if !a.VertAlive[v] {
			continue
		}
		c := a.Coords[v]
		want := c[0] + 2*c[1] + 3*c[2]
		if math.Abs(a.Sol[v]-want) > 1e-12 {
			t.Fatalf("vertex %d sol %v, want %v", v, a.Sol[v], want)
		}
	}
}

func TestCoarsenRoundTrip(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	before := a.ActiveCounts()
	// Refine everything one level.
	a.BuildEdgeElems()
	for _, id := range a.activeLeafEdges() {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	mid := a.ActiveCounts()
	if mid.Elems != 8*before.Elems {
		t.Fatalf("refine: %d elems, want %d", mid.Elems, 8*before.Elems)
	}
	// Coarsen everything: target every leaf edge.
	coarsen := make([]bool, len(a.EdgeV))
	for _, id := range a.activeLeafEdges() {
		coarsen[id] = true
	}
	st := a.Coarsen(coarsen)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := a.ActiveCounts()
	if after != before {
		t.Errorf("coarsen did not restore initial mesh: %+v -> %+v -> %+v (stats %+v)",
			before, mid, after, st)
	}
}

func TestCoarsenRespectsInitialMesh(t *testing.T) {
	a := newBoxAdapt(t, 1, 1, 1)
	before := a.ActiveCounts()
	// Coarsening an unrefined mesh must be a no-op: edges cannot be
	// coarsened beyond the initial mesh.
	coarsen := make([]bool, len(a.EdgeV))
	for i := range coarsen {
		coarsen[i] = true
	}
	st := a.Coarsen(coarsen)
	if st.FamiliesCollapsed != 0 || st.ElemsRemoved != 0 {
		t.Errorf("coarsening initial mesh did something: %+v", st)
	}
	if a.ActiveCounts() != before {
		t.Errorf("counts changed: %+v", a.ActiveCounts())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenSiblingConstraint(t *testing.T) {
	a := newBoxAdapt(t, 1, 1, 1)
	a.BuildEdgeElems()
	for _, id := range a.activeLeafEdges() {
		a.MarkEdge(id)
	}
	a.Propagate()
	a.Refine()
	mid := a.ActiveCounts()
	// Target exactly one child half of one bisected edge: the sibling
	// constraint must block all coarsening.
	var half int32 = -1
	for id := range a.EdgeV {
		if a.EdgeAlive[id] && !a.EdgeLeaf(int32(id)) {
			half = a.EdgeChild[id][0]
			break
		}
	}
	if half < 0 {
		t.Fatal("no bisected edge found")
	}
	coarsen := make([]bool, len(a.EdgeV))
	coarsen[half] = true
	st := a.Coarsen(coarsen)
	if st.FamiliesCollapsed != 0 {
		t.Errorf("sibling constraint violated: %+v", st)
	}
	if a.ActiveCounts() != mid {
		t.Errorf("mesh changed: %+v -> %+v", mid, a.ActiveCounts())
	}
}

func TestCoarsenPartial(t *testing.T) {
	// Refine a localized region two levels, then coarsen the finest
	// level; the mesh must stay valid and shrink.
	a := newBoxAdapt(t, 2, 2, 2)
	ind := SphericalIndicator(mesh.Vec3{0.5, 0.5, 0.5}, 0.5, 0.5)
	for level := 0; level < 2; level++ {
		a.BuildEdgeElems()
		err := a.EdgeErrorGeometric(ind)
		a.MarkTopFraction(err, 0.3)
		a.Propagate()
		a.Refine()
		if e := a.CheckInvariants(); e != nil {
			t.Fatalf("refine level %d: %v", level, e)
		}
	}
	peak := a.ActiveCounts()
	// The shock moves away: error at the previously refined region drops,
	// so it is targeted for coarsening (the unsteady-flow scenario the
	// paper's framework is built for).
	moved := SphericalIndicator(mesh.Vec3{1.7, 1.7, 1.7}, 0.2, 0.2)
	errv := a.EdgeErrorGeometric(moved)
	coarsen := a.TargetCoarsenEdges(errv, 0.5)
	a.Coarsen(coarsen)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := a.ActiveCounts()
	if after.Elems >= peak.Elems {
		t.Errorf("coarsening did not shrink: %d -> %d", peak.Elems, after.Elems)
	}
	if math.Abs(a.TotalActiveVolume()-8.0) > 1e-9 {
		t.Errorf("volume not conserved: %v", a.TotalActiveVolume())
	}
}

func TestMarkTopFraction(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	errv := make([]float64, len(a.EdgeV))
	for i := range errv {
		errv[i] = float64(i)
	}
	n := a.MarkTopFraction(errv, 0.25)
	wantN := int(0.25*float64(len(a.activeLeafEdges())) + 0.5)
	if n != wantN {
		t.Errorf("marked %d, want %d", n, wantN)
	}
	marked := a.MarkedEdges()
	if len(marked) != n {
		t.Errorf("MarkedEdges returned %d, want %d", len(marked), n)
	}
	// The marked edges must be the top-n by error (here: largest ids).
	min := int32(len(a.EdgeV) - n)
	for _, id := range marked {
		if id < min {
			t.Errorf("edge %d marked but not in top fraction", id)
		}
	}
}

func TestMidpointGIDDeterministic(t *testing.T) {
	prop := func(a, b uint64) bool {
		return MidpointGID(a, b) == MidpointGID(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if MidpointGID(1, 2) == MidpointGID(1, 3) {
		t.Error("distinct edges hash equal")
	}
}

func TestChildTetsVolumeProperty(t *testing.T) {
	// For every valid pattern, the child tets partition the parent.
	m := mesh.Box(1, 1, 1, 1, 1, 1)
	for _, pat := range []uint8{1 << 0, 1 << 3, 1 << 5, faceMasks[0], faceMasks[2], FullPattern} {
		a := FromMesh(m, 0)
		a.BuildEdgeElems()
		for le := 0; le < 6; le++ {
			if pat&(1<<uint(le)) != 0 {
				a.MarkEdge(a.ElemEdges[2][le])
			}
		}
		a.Propagate()
		a.Refine()
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("pattern %06b: %v", pat, err)
		}
		if math.Abs(a.TotalActiveVolume()-1.0) > 1e-9 {
			t.Errorf("pattern %06b: volume %v", pat, a.TotalActiveVolume())
		}
	}
}

func TestRefineQuickCheckRandomMarks(t *testing.T) {
	// Property: any random set of marked edges, after propagation and
	// refinement, yields a valid conforming mesh with conserved volume.
	prop := func(seeds []uint16) bool {
		a := FromMesh(mesh.Box(2, 2, 1, 2, 2, 1), 0)
		a.BuildEdgeElems()
		leaf := a.activeLeafEdges()
		for _, s := range seeds {
			a.MarkEdge(leaf[int(s)%len(leaf)])
		}
		a.Propagate()
		a.Refine()
		if err := a.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		return math.Abs(a.TotalActiveVolume()-4.0) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestActiveLeafEdgesSorted(t *testing.T) {
	a := newBoxAdapt(t, 2, 2, 2)
	edges := a.activeLeafEdges()
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatal("activeLeafEdges not strictly ascending")
		}
	}
}
