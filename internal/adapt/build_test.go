package adapt

import (
	"testing"

	"plum/internal/mesh"
)

func TestNewEmptyAndManualConstruction(t *testing.T) {
	m := NewEmpty(1)
	// Build a single tetrahedron by hand.
	v := [4]int32{}
	coords := []mesh.Vec3{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i, c := range coords {
		v[i] = m.AddVertex(uint64(i), c, []float64{float64(i)})
	}
	root := m.AddRootElem(v)
	if !m.ElemActive(root) {
		t.Fatal("root not active")
	}
	c := m.ActiveCounts()
	if c.Verts != 4 || c.Elems != 1 || c.Edges != 6 {
		t.Fatalf("counts %+v", c)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Refine it isotropically via the public marking API.
	m.BuildEdgeElems()
	for _, id := range m.ElemEdges[root] {
		m.MarkEdge(id)
	}
	m.Propagate()
	m.Refine()
	if got := m.ActiveCounts().Elems; got != 8 {
		t.Errorf("children = %d, want 8", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVertexRefreshesExisting(t *testing.T) {
	m := NewEmpty(2)
	v1 := m.AddVertex(7, mesh.Vec3{1, 2, 3}, []float64{4, 5})
	v2 := m.AddVertex(7, mesh.Vec3{1, 2, 3}, []float64{6, 7})
	if v1 != v2 {
		t.Fatal("same gid created two vertices")
	}
	if m.Sol[int(v1)*2] != 6 || m.Sol[int(v1)*2+1] != 7 {
		t.Error("solution not refreshed")
	}
	// nil solution keeps existing values.
	m.AddVertex(7, mesh.Vec3{1, 2, 3}, nil)
	if m.Sol[int(v1)*2] != 6 {
		t.Error("nil solution overwrote values")
	}
}

func TestEnsureBisectedIdempotent(t *testing.T) {
	m := FromMesh(mesh.Box(1, 1, 1, 1, 1, 1), 0)
	id := int32(0)
	m.EnsureBisected(id)
	mid := m.EdgeMid[id]
	m.EnsureBisected(id)
	if m.EdgeMid[id] != mid {
		t.Error("second bisection changed the midpoint")
	}
	nEdges := len(m.EdgeV)
	m.EnsureBisected(id)
	if len(m.EdgeV) != nEdges {
		t.Error("repeated bisection grew the edge table")
	}
}

func TestFamilyElemsBFS(t *testing.T) {
	m := FromMesh(mesh.Box(1, 1, 1, 1, 1, 1), 0)
	m.BuildEdgeElems()
	for _, id := range m.ElemEdges[0] {
		m.MarkEdge(id)
	}
	m.Propagate()
	m.Refine()
	fam := m.FamilyElems(0)
	if fam[0] != 0 {
		t.Fatal("family must start at the root")
	}
	// Parent precedes children in BFS order.
	pos := make(map[int32]int)
	for i, e := range fam {
		pos[e] = i
	}
	for _, e := range fam {
		if p := m.ElemParent[e]; p >= 0 {
			if pos[p] >= pos[e] {
				t.Fatalf("child %d precedes parent %d", e, p)
			}
		}
	}
	wc, wr := m.FamilyWeights()
	if wc[0] != 8 || wr[0] != 9 {
		t.Errorf("family weights (%d,%d), want (8,9)", wc[0], wr[0])
	}
}

func TestRemoveFamily(t *testing.T) {
	m := FromMesh(mesh.Box(2, 1, 1, 2, 1, 1), 0)
	m.BuildEdgeElems()
	for _, id := range m.ElemEdges[0] {
		m.MarkEdge(id)
	}
	m.Propagate()
	m.Refine()
	before := m.ActiveCounts()
	m.RemoveFamily(0)
	after := m.ActiveCounts()
	if after.Elems >= before.Elems {
		t.Fatal("family not removed")
	}
	// The rest of the mesh must stay structurally valid (conformity is
	// intentionally broken at the hole's surface, so only check the
	// remaining elements' internal consistency).
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		for _, id := range m.ElemEdges[e] {
			if !m.EdgeAlive[id] {
				t.Fatalf("active element %d references dead edge after RemoveFamily", e)
			}
		}
	}
	// Removing a non-root must panic.
	defer func() {
		if recover() == nil {
			t.Error("RemoveFamily accepted a non-root element")
		}
	}()
	var child int32 = -1
	for e := m.NRootElems; e < len(m.ElemVerts); e++ {
		if m.ElemAlive[e] {
			child = int32(e)
			break
		}
	}
	if child < 0 {
		t.Skip("no child element to test with")
	}
	m.RemoveFamily(child)
}

func TestEdgeErrorFromSolution(t *testing.T) {
	m := FromMesh(mesh.Box(1, 1, 1, 1, 1, 1), 1)
	for v := range m.Coords {
		m.Sol[v] = 3 * m.Coords[v][0]
	}
	err := m.EdgeErrorFromSolution(0)
	for _, id := range m.activeLeafEdges() {
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		want := 3 * abs(m.Coords[a][0]-m.Coords[b][0])
		if d := err[id] - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("edge %d error %v, want %v", id, err[id], want)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMidpointGIDNoCollisionsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("collision scan in -short mode")
	}
	// One full refinement of a moderately large mesh: every midpoint
	// gid must be unique and distinct from the initial ids.
	m := FromMesh(mesh.Box(6, 6, 6, 1, 1, 1), 0)
	m.BuildEdgeElems()
	for _, id := range m.activeLeafEdges() {
		m.MarkEdge(id)
	}
	m.Propagate()
	m.Refine()
	seen := make(map[uint64]int32)
	for v := range m.Coords {
		if !m.VertAlive[v] {
			continue
		}
		if prev, ok := seen[m.VertGID[v]]; ok {
			t.Fatalf("gid collision between vertices %d and %d", prev, v)
		}
		seen[m.VertGID[v]] = int32(v)
	}
}
