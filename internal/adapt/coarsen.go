package adapt

// Mesh coarsening (paper Section 3):
//
// "If a child element has any edge marked for coarsening, this element
// and its siblings are removed and their parent is reinstated. ...
// Reinstated parent elements have their edge-marking patterns adjusted to
// reflect that some edges have been coarsened.  The parents are then
// subdivided based on their new patterns by invoking the mesh refinement
// procedure."
//
// Constraints honoured here: edges cannot be coarsened beyond the initial
// mesh; edges are coarsened in reverse refinement order (only leaf
// families collapse in one pass); and an edge coarsens only if its
// sibling half is also targeted.

// CoarsenStats reports what a Coarsen pass did.
type CoarsenStats struct {
	FamiliesCollapsed int // element families whose children were removed
	ElemsRemoved      int
	EdgesUnbisected   int
	VertsRemoved      int
	BFacesRemoved     int
	Refine            RefineStats // the re-refinement that restores validity
}

// Coarsen removes refinement according to the per-edge coarsen flags
// (indexed by edge id; only alive leaf edges are considered), then
// re-invokes the refinement procedure so the result is again a valid
// conforming mesh.  One tree level is coarsened per call, matching the
// paper's one-level-per-adaption usage.
func (m *Mesh) Coarsen(coarsen []bool) CoarsenStats {
	st := m.CollapsePhase(coarsen)
	m.ForceMarkBisected()
	m.Propagate()
	st.Refine = m.Refine()
	return st
}

// CollapsePhase performs the destructive half of coarsening — family
// collapse, edge/vertex purge, boundary-face collapse — without the
// re-refinement that restores validity.  The distributed implementation
// (pmesh.ParallelCoarsen) interleaves a shared-edge status exchange
// between this phase and the re-refinement; serial callers should use
// Coarsen.
func (m *Mesh) CollapsePhase(coarsen []bool) CoarsenStats {
	var st CoarsenStats

	// Sibling constraint: a bisected edge qualifies for un-bisection only
	// if both of its leaf children are targeted.  qualChild marks the
	// child halves of qualifying edges.
	qualChild := make([]bool, len(m.EdgeV))
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] || m.EdgeLeaf(int32(id)) {
			continue
		}
		c0, c1 := m.EdgeChild[id][0], m.EdgeChild[id][1]
		if m.EdgeAlive[c0] && m.EdgeAlive[c1] &&
			m.EdgeLeaf(c0) && m.EdgeLeaf(c1) &&
			int(c0) < len(coarsen) && int(c1) < len(coarsen) &&
			coarsen[c0] && coarsen[c1] {
			qualChild[c0] = true
			qualChild[c1] = true
		}
	}

	// Collapse leaf element families containing a targeted edge.
	for p := range m.ElemVerts {
		if !m.ElemAlive[p] || m.ElemChild[p] == nil {
			continue
		}
		leafFamily := true
		for _, c := range m.ElemChild[p] {
			if !m.ElemActive(c) {
				leafFamily = false
				break
			}
		}
		if !leafFamily {
			continue
		}
		hit := false
		for _, c := range m.ElemChild[p] {
			for _, id := range m.ElemEdges[c] {
				if qualChild[id] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if !hit {
			continue
		}
		for _, c := range m.ElemChild[p] {
			m.ElemAlive[c] = false
			st.ElemsRemoved++
		}
		m.ElemChild[p] = nil
		st.FamiliesCollapsed++
	}

	eRemoved, vRemoved := m.purge()
	st.EdgesUnbisected = eRemoved
	st.VertsRemoved = vRemoved
	st.BFacesRemoved = m.collapseBFaces()
	return st
}

// ForceMarkBisected marks every still-bisected edge of an active
// element for refinement: reinstated parents re-subdivide along the
// edges that could not coarsen, "invoking the mesh refinement
// procedure" as the paper describes.  Call Propagate and Refine after.
func (m *Mesh) ForceMarkBisected() {
	m.BuildEdgeElems()
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		for _, id := range m.ElemEdges[e] {
			if !m.EdgeLeaf(id) {
				m.EdgeMark[id] = true
			}
		}
	}
}

// purge removes edges no longer referenced by active elements,
// un-bisects parents whose children died, and removes orphaned midpoint
// vertices.  It iterates because un-bisecting one level can orphan the
// next.  Returns (#edges un-bisected, #vertices removed).
func (m *Mesh) purge() (unbisected, vertsRemoved int) {
	for {
		changed := false
		// Usage of each edge by active elements.
		used := make([]bool, len(m.EdgeV))
		for e := range m.ElemVerts {
			if !m.ElemActive(int32(e)) {
				continue
			}
			for _, id := range m.ElemEdges[e] {
				used[id] = true
			}
		}
		// Kill unused, non-initial leaf edges.
		for id := range m.EdgeV {
			if !m.EdgeAlive[id] || !m.EdgeLeaf(int32(id)) || used[id] || id < m.NInitEdges {
				continue
			}
			m.EdgeAlive[id] = false
			delete(m.edgeByPair, m.EdgeV[id])
			changed = true
		}
		// Un-bisect parents whose children are both dead.
		for id := range m.EdgeV {
			if !m.EdgeAlive[id] || m.EdgeLeaf(int32(id)) {
				continue
			}
			c0, c1 := m.EdgeChild[id][0], m.EdgeChild[id][1]
			if m.EdgeAlive[c0] || m.EdgeAlive[c1] {
				continue
			}
			m.EdgeChild[id] = [2]int32{-1, -1}
			m.EdgeMid[id] = -1
			unbisected++
			changed = true
		}
		if !changed {
			break
		}
	}
	// Remove vertices no longer referenced by any alive edge (initial
	// vertices are permanent).
	usedV := make([]bool, len(m.Coords))
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] {
			continue
		}
		usedV[m.EdgeV[id][0]] = true
		usedV[m.EdgeV[id][1]] = true
		if mid := m.EdgeMid[id]; mid >= 0 {
			usedV[mid] = true
		}
	}
	for v := m.NInitVerts; v < len(m.Coords); v++ {
		if m.VertAlive[v] && !usedV[v] {
			m.VertAlive[v] = false
			delete(m.gidVert, m.VertGID[v])
			vertsRemoved++
		}
	}
	m.EdgeElems = nil
	return unbisected, vertsRemoved
}

// collapseBFaces removes boundary-face children that reference dead edges
// or vertices (which happens exactly when their element family
// collapsed), iterating for multi-level trees.  Returns the number of
// face children removed.
func (m *Mesh) collapseBFaces() int {
	removed := 0
	for {
		changed := false
		for f := range m.BFaceVerts {
			if !m.BFaceAlive[f] || m.BFaceChild[f] == nil {
				continue
			}
			leafFamily := true
			for _, c := range m.BFaceChild[f] {
				if !m.BFaceActive(c) {
					leafFamily = false
					break
				}
			}
			if !leafFamily {
				continue
			}
			dead := false
			for _, c := range m.BFaceChild[f] {
				for _, id := range m.BFaceEdges[c] {
					if !m.EdgeAlive[id] {
						dead = true
						break
					}
				}
				for _, v := range m.BFaceVerts[c] {
					if !m.VertAlive[v] {
						dead = true
						break
					}
				}
				if dead {
					break
				}
			}
			if !dead {
				continue
			}
			for _, c := range m.BFaceChild[f] {
				m.BFaceAlive[c] = false
				removed++
			}
			m.BFaceChild[f] = nil
			changed = true
		}
		if !changed {
			break
		}
	}
	if removed > 0 {
		m.bfaceParentCache = nil
	}
	return removed
}

// TargetCoarsenEdges returns coarsen flags for every alive leaf edge
// whose error value is below lo.  err is indexed by edge id; edges beyond
// len(err) (created after err was computed) are not targeted.
func (m *Mesh) TargetCoarsenEdges(err []float64, lo float64) []bool {
	flags := make([]bool, len(m.EdgeV))
	for _, id := range m.activeLeafEdges() {
		if int(id) < len(err) && err[id] < lo {
			flags[id] = true
		}
	}
	return flags
}
