package adapt

import (
	"fmt"

	"plum/internal/mesh"
)

// Construction API used by the distributed mesh (package pmesh) to build
// per-processor submeshes and to rebuild refinement forests when element
// families migrate between processors.  The global-id discipline (initial
// vertices keep their initial ids; midpoints hash their parent edge's
// endpoint ids) guarantees that independently constructed copies of
// shared objects agree across processors.

// NewEmpty returns a mesh with no objects and ncomp solution components.
func NewEmpty(ncomp int) *Mesh {
	return &Mesh{
		NComp:      ncomp,
		gidVert:    make(map[uint64]int32),
		edgeByPair: make(map[[2]int32]int32),
	}
}

// FromMeshGIDs is FromMesh with explicit global ids for the initial
// vertices (used when the mesh is a sub-mesh of a larger global mesh).
func FromMeshGIDs(m *mesh.Mesh, ncomp int, gids []uint64) *Mesh {
	a := FromMesh(m, ncomp)
	if gids == nil {
		return a
	}
	if len(gids) != len(m.Coords) {
		panic(fmt.Sprintf("adapt: %d gids for %d vertices", len(gids), len(m.Coords)))
	}
	for v := range gids {
		delete(a.gidVert, a.VertGID[v])
	}
	for v, g := range gids {
		a.VertGID[v] = g
		a.gidVert[g] = int32(v)
	}
	return a
}

// AddVertex inserts (or refreshes) a vertex with the given global id,
// coordinates, and solution values (sol may be nil to keep zeros or the
// existing values).  Returns the local id.
func (m *Mesh) AddVertex(gid uint64, c mesh.Vec3, sol []float64) int32 {
	v := m.newVertex(c, gid)
	m.Coords[v] = c
	if sol != nil {
		if len(sol) != m.NComp {
			panic(fmt.Sprintf("adapt: %d solution values, want %d", len(sol), m.NComp))
		}
		copy(m.Sol[int(v)*m.NComp:], sol)
	}
	return v
}

// EnsureEdge returns the edge between local vertices a and b, creating it
// if necessary.
func (m *Mesh) EnsureEdge(a, b int32) int32 { return m.getOrCreateEdge(a, b) }

// EnsureBisected bisects edge id if it is a leaf (reusing or creating the
// midpoint vertex by its global id).
func (m *Mesh) EnsureBisected(id int32) {
	m.bisect(id)
}

// AddRootElem appends a root element (its own family root).  The caller
// provides local vertex ids; edges are derived.
func (m *Mesh) AddRootElem(verts [4]int32) int32 {
	var edges [6]int32
	for le, pr := range mesh.TetEdgeVerts {
		edges[le] = m.getOrCreateEdge(verts[pr[0]], verts[pr[1]])
	}
	id := int32(len(m.ElemVerts))
	m.ElemVerts = append(m.ElemVerts, verts)
	m.ElemEdges = append(m.ElemEdges, edges)
	m.ElemParent = append(m.ElemParent, -1)
	m.ElemChild = append(m.ElemChild, nil)
	m.ElemRoot = append(m.ElemRoot, id)
	m.ElemAlive = append(m.ElemAlive, true)
	m.EdgeElems = nil
	return id
}

// AddChildElem appends a child of parent (updating the parent's child
// list) and returns its local id.
func (m *Mesh) AddChildElem(parent int32, verts [4]int32) int32 {
	id := m.newElem(verts, parent)
	m.ElemChild[parent] = append(m.ElemChild[parent], id)
	m.EdgeElems = nil
	return id
}

// AddRootBFace appends a root boundary face owned by root element root.
func (m *Mesh) AddRootBFace(verts [3]int32, root int32) int32 {
	return m.newBFace(verts, root)
}

// AddChildBFace appends a child of boundary face parent.
func (m *Mesh) AddChildBFace(parent int32, verts [3]int32) int32 {
	id := m.newBFace(verts, m.BFaceRoot[parent])
	m.BFaceChild[parent] = append(m.BFaceChild[parent], id)
	return id
}

// FamilyElems returns the local ids of all alive elements in root's
// refinement tree, in BFS order starting at the root itself.
func (m *Mesh) FamilyElems(root int32) []int32 {
	out := []int32{root}
	for qi := 0; qi < len(out); qi++ {
		for _, c := range m.ElemChild[out[qi]] {
			if m.ElemAlive[c] {
				out = append(out, c)
			}
		}
	}
	return out
}

// FamilyBFaces returns the local ids of all alive boundary faces rooted
// at element root, in BFS order per face tree.
func (m *Mesh) FamilyBFaces(root int32) []int32 {
	var out []int32
	for f := range m.BFaceVerts {
		if m.BFaceAlive[f] && m.BFaceRoot[f] == root && isBFaceTreeRoot(m, int32(f)) {
			out = append(out, int32(f))
		}
	}
	for qi := 0; qi < len(out); qi++ {
		for _, c := range m.BFaceChild[out[qi]] {
			if m.BFaceAlive[c] {
				out = append(out, c)
			}
		}
	}
	return out
}

// isBFaceTreeRoot reports whether f has no alive parent (bface parents
// are implicit: a face is a child if some other face lists it).
func isBFaceTreeRoot(m *Mesh, f int32) bool {
	return m.bfaceParent(f) < 0
}

// BFaceParent returns the parent of boundary face f, or -1 for roots of
// face trees.  (Face parents are implicit in BFaceChild; an inverted
// index is cached and rebuilt when the face count changes.)
func (m *Mesh) BFaceParent(f int32) int32 { return m.bfaceParent(f) }

// bfaceParent implements BFaceParent.
func (m *Mesh) bfaceParent(f int32) int32 {
	if m.bfaceParentCache == nil || len(m.bfaceParentCache) != len(m.BFaceVerts) {
		m.bfaceParentCache = make([]int32, len(m.BFaceVerts))
		for i := range m.bfaceParentCache {
			m.bfaceParentCache[i] = -1
		}
		for p := range m.BFaceVerts {
			for _, c := range m.BFaceChild[p] {
				m.bfaceParentCache[c] = int32(p)
			}
		}
	}
	return m.bfaceParentCache[f]
}

// RemoveFamily deletes root's entire element family (and its boundary
// faces), purging edges and vertices that become unreferenced.  Used when
// the family migrates to another processor.
func (m *Mesh) RemoveFamily(root int32) {
	if m.ElemParent[root] != -1 {
		panic(fmt.Sprintf("adapt: RemoveFamily(%d): not a root element", root))
	}
	for _, e := range m.FamilyElems(root) {
		m.ElemAlive[e] = false
	}
	m.ElemChild[root] = nil
	for f := range m.BFaceVerts {
		if m.BFaceAlive[f] && m.BFaceRoot[f] == root {
			m.BFaceAlive[f] = false
			m.BFaceChild[f] = nil
		}
	}
	m.bfaceParentCache = nil
	m.purgeAll()
}

// purgeAll is purge without the initial-mesh edge/vertex protection:
// in a distributed submesh any object can become unreferenced when its
// family leaves.
func (m *Mesh) purgeAll() {
	saveE, saveV := m.NInitEdges, m.NInitVerts
	m.NInitEdges, m.NInitVerts = 0, 0
	m.purge()
	m.NInitEdges, m.NInitVerts = saveE, saveV
}

// FamilyWeights returns the two dual-graph weights of every root element
// present in this mesh, keyed by local root id: the active (leaf) element
// count Wcomp and the total alive element count Wremap.
func (m *Mesh) FamilyWeights() (wcomp, wremap map[int32]int64) {
	wcomp = make(map[int32]int64)
	wremap = make(map[int32]int64)
	for e := range m.ElemVerts {
		if !m.ElemAlive[e] {
			continue
		}
		r := m.ElemRoot[e]
		wremap[r]++
		if m.ElemChild[e] == nil {
			wcomp[r]++
		}
	}
	return wcomp, wremap
}

// PredictLeavesByRoot returns, per local root id, the number of leaf
// elements the family will have after refinement with the current
// (upgraded) marks.
func (m *Mesh) PredictLeavesByRoot() map[int32]int64 {
	out := make(map[int32]int64)
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		n := SubdivisionArity(m.ElemPattern(int32(e)))
		if n == 0 {
			n = 1
		}
		out[m.ElemRoot[e]] += int64(n)
	}
	return out
}
