package adapt

import (
	"math"
	"testing"

	"plum/internal/mesh"
)

// refineThenCoarsen produces a mesh with dead slots.
func refineThenCoarsen(t *testing.T) *Mesh {
	t.Helper()
	a := FromMesh(mesh.Box(2, 2, 2, 2, 2, 2), 1)
	for v := range a.Coords {
		a.Sol[v] = a.Coords[v][0] + a.Coords[v][1]
	}
	ind := SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.6, 0.4)
	a.BuildEdgeElems()
	errv := a.EdgeErrorGeometric(ind)
	a.MarkTopFraction(errv, 0.3)
	a.Propagate()
	a.Refine()
	moved := SphericalIndicator(mesh.Vec3{3, 3, 3}, 0.2, 0.2)
	errv = a.EdgeErrorGeometric(moved)
	a.Coarsen(a.TargetCoarsenEdges(errv, 0.5))
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCompactRemovesDeadSlots(t *testing.T) {
	a := refineThenCoarsen(t)
	before := a.ActiveCounts()
	vSlots, eSlots, elSlots, fSlots := a.StorageSlots()

	deadEdges := 0
	for id := range a.EdgeV {
		if !a.EdgeAlive[id] {
			deadEdges++
		}
	}
	if deadEdges == 0 {
		t.Fatal("test setup produced no dead edges; compaction untested")
	}

	cm := a.Compact()
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("after compact: %v", err)
	}
	after := a.ActiveCounts()
	if after != before {
		t.Errorf("active counts changed: %+v -> %+v", before, after)
	}
	v2, e2, el2, f2 := a.StorageSlots()
	if v2 > vSlots || e2 >= eSlots || el2 > elSlots || f2 > fSlots {
		t.Errorf("slots not reclaimed: (%d,%d,%d,%d) -> (%d,%d,%d,%d)",
			vSlots, eSlots, elSlots, fSlots, v2, e2, el2, f2)
	}
	// Every surviving slot must be alive.
	for v := range a.VertAlive {
		if !a.VertAlive[v] {
			t.Fatal("dead vertex slot survived compaction")
		}
	}
	for id := range a.EdgeAlive {
		if !a.EdgeAlive[id] {
			t.Fatal("dead edge slot survived compaction")
		}
	}
	// Maps have the right shape.
	if len(cm.Vert) != vSlots || len(cm.Edge) != eSlots {
		t.Error("compact maps sized wrongly")
	}
}

func TestCompactPreservesGeometryAndSolution(t *testing.T) {
	a := refineThenCoarsen(t)
	// Record gid -> (coords, sol) before compaction.
	type rec struct {
		c mesh.Vec3
		s float64
	}
	want := make(map[uint64]rec)
	for v := range a.Coords {
		if a.VertAlive[v] {
			want[a.VertGID[v]] = rec{a.Coords[v], a.Sol[v]}
		}
	}
	vol := a.TotalActiveVolume()
	a.Compact()
	if len(want) != len(a.Coords) {
		t.Fatalf("vertex count %d != alive count %d", len(a.Coords), len(want))
	}
	for v := range a.Coords {
		w, ok := want[a.VertGID[v]]
		if !ok {
			t.Fatalf("vertex gid %d appeared from nowhere", a.VertGID[v])
		}
		if w.c != a.Coords[v] || w.s != a.Sol[v] {
			t.Fatalf("vertex gid %d data corrupted", a.VertGID[v])
		}
	}
	if math.Abs(a.TotalActiveVolume()-vol) > 1e-9 {
		t.Errorf("volume changed: %v -> %v", vol, a.TotalActiveVolume())
	}
}

func TestCompactThenAdaptAgain(t *testing.T) {
	// The compacted mesh must support further adaption cycles.
	a := refineThenCoarsen(t)
	a.Compact()
	ind := SphericalIndicator(mesh.Vec3{0.5, 0.5, 0.5}, 0.4, 0.3)
	a.BuildEdgeElems()
	errv := a.EdgeErrorGeometric(ind)
	a.MarkTopFraction(errv, 0.25)
	a.Propagate()
	a.Refine()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And coarsen once more.
	moved := SphericalIndicator(mesh.Vec3{3, 3, 3}, 0.2, 0.2)
	errv = a.EdgeErrorGeometric(moved)
	a.Coarsen(a.TargetCoarsenEdges(errv, 0.5))
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactIdempotentOnCleanMesh(t *testing.T) {
	a := FromMesh(mesh.Box(2, 2, 1, 1, 1, 1), 0)
	before := a.ActiveCounts()
	cm := a.Compact()
	if a.ActiveCounts() != before {
		t.Error("compacting a clean mesh changed it")
	}
	for v, nv := range cm.Vert {
		if nv != int32(v) {
			t.Fatal("clean compaction renumbered vertices")
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
