package adapt

import (
	"fmt"

	"plum/internal/mesh"
)

// Mesh is an adapted tetrahedral mesh with full refinement history.
type Mesh struct {
	// Vertices.
	Coords    []mesh.Vec3
	VertGID   []uint64
	VertAlive []bool
	gidVert   map[uint64]int32

	// Solution field: NComp float64 values per vertex, linearly
	// interpolated onto bisection midpoints.  May be empty (NComp == 0).
	NComp int
	Sol   []float64

	// Edges.  EdgeV pairs are canonical (lo < hi by local vertex id).
	EdgeV      [][2]int32
	EdgeChild  [][2]int32 // child halves, {-1,-1} if leaf
	EdgeParent []int32    // -1 for initial and element-interior edges
	EdgeMid    []int32    // bisection midpoint vertex, -1 if leaf
	EdgeAlive  []bool
	EdgeMark   []bool // refinement marks for the current pass
	edgeByPair map[[2]int32]int32

	// Elements.
	ElemVerts  [][4]int32
	ElemEdges  [][6]int32
	ElemParent []int32
	ElemChild  [][]int32 // nil if leaf
	ElemRoot   []int32   // initial-mesh element this descends from
	ElemAlive  []bool

	// Boundary faces (forest mirroring element refinement, but driven
	// purely by edge bisection state).
	BFaceVerts [][3]int32
	BFaceEdges [][3]int32
	BFaceChild [][]int32
	BFaceAlive []bool
	BFaceRoot  []int32 // initial-mesh element owning the initial face

	// Edge -> active elements incidence; valid after BuildEdgeElems.
	EdgeElems [][]int32

	// bfaceParentCache inverts BFaceChild; rebuilt on demand.
	bfaceParentCache []int32

	// Immutable initial-mesh sizes (objects below these indices are
	// permanent: "edges cannot be coarsened beyond the initial mesh").
	NRootElems int
	NInitEdges int
	NInitVerts int
}

// hashGID mixes two sorted vertex gids into the gid of their midpoint
// (splitmix64-style finalizer over the combined words).
func hashGID(a, b uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	x := a*0x9E3779B97F4A7C15 ^ (b + 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	// Avoid colliding with initial vertex ids (< 2^32 in practice).
	return x | (1 << 63)
}

// MidpointGID returns the global id a bisection midpoint of the edge with
// endpoint gids a and b receives, on any processor.
func MidpointGID(a, b uint64) uint64 { return hashGID(a, b) }

// FromMesh builds an adapted mesh (level 0, nothing refined) from an
// initial mesh, with ncomp solution components per vertex (all zero).
func FromMesh(m *mesh.Mesh, ncomp int) *Mesh {
	if m.ElemEdges == nil {
		m.BuildDerived()
	}
	a := &Mesh{
		NComp:      ncomp,
		gidVert:    make(map[uint64]int32, len(m.Coords)*2),
		edgeByPair: make(map[[2]int32]int32, len(m.Edges)*2),
		NRootElems: len(m.Elems),
		NInitEdges: len(m.Edges),
		NInitVerts: len(m.Coords),
	}
	a.Coords = append(a.Coords, m.Coords...)
	a.VertGID = make([]uint64, len(m.Coords))
	a.VertAlive = make([]bool, len(m.Coords))
	for v := range m.Coords {
		a.VertGID[v] = uint64(v)
		a.VertAlive[v] = true
		a.gidVert[uint64(v)] = int32(v)
	}
	a.Sol = make([]float64, ncomp*len(m.Coords))

	a.EdgeV = append(a.EdgeV, m.Edges...)
	n := len(m.Edges)
	a.EdgeChild = make([][2]int32, n)
	a.EdgeParent = make([]int32, n)
	a.EdgeMid = make([]int32, n)
	a.EdgeAlive = make([]bool, n)
	a.EdgeMark = make([]bool, n)
	for e := 0; e < n; e++ {
		a.EdgeChild[e] = [2]int32{-1, -1}
		a.EdgeParent[e] = -1
		a.EdgeMid[e] = -1
		a.EdgeAlive[e] = true
		a.edgeByPair[m.Edges[e]] = int32(e)
	}

	a.ElemVerts = append(a.ElemVerts, m.Elems...)
	a.ElemEdges = append(a.ElemEdges, m.ElemEdges...)
	ne := len(m.Elems)
	a.ElemParent = make([]int32, ne)
	a.ElemChild = make([][]int32, ne)
	a.ElemRoot = make([]int32, ne)
	a.ElemAlive = make([]bool, ne)
	for e := 0; e < ne; e++ {
		a.ElemParent[e] = -1
		a.ElemRoot[e] = int32(e)
		a.ElemAlive[e] = true
	}

	for i, bf := range m.BFaces {
		var edges [3]int32
		pairs := [3][2]int32{{bf[0], bf[1]}, {bf[0], bf[2]}, {bf[1], bf[2]}}
		for j, p := range pairs {
			id, ok := a.edgeByPair[canonPair(p[0], p[1])]
			if !ok {
				panic("adapt: boundary face edge missing from edge table")
			}
			edges[j] = id
		}
		a.BFaceVerts = append(a.BFaceVerts, bf)
		a.BFaceEdges = append(a.BFaceEdges, edges)
		a.BFaceChild = append(a.BFaceChild, nil)
		a.BFaceAlive = append(a.BFaceAlive, true)
		a.BFaceRoot = append(a.BFaceRoot, m.BFaceElem[i])
	}
	return a
}

func canonPair(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// ElemActive reports whether element e is a leaf of the refinement forest
// (i.e. part of the current computational mesh).
func (m *Mesh) ElemActive(e int32) bool {
	return m.ElemAlive[e] && m.ElemChild[e] == nil
}

// EdgeLeaf reports whether edge id is unbisected.
func (m *Mesh) EdgeLeaf(id int32) bool { return m.EdgeChild[id][0] < 0 }

// BFaceActive reports whether boundary face f is a leaf.
func (m *Mesh) BFaceActive(f int32) bool {
	return m.BFaceAlive[f] && m.BFaceChild[f] == nil
}

// ActiveElems returns the ids of all active elements in ascending order.
func (m *Mesh) ActiveElems() []int32 {
	var out []int32
	for e := range m.ElemVerts {
		if m.ElemActive(int32(e)) {
			out = append(out, int32(e))
		}
	}
	return out
}

// Counts summarizes the current computational mesh (the quantities of the
// paper's Table 1).
type Counts struct {
	Verts, Elems, Edges, BFaces int
}

// ActiveCounts returns the sizes of the current computational mesh:
// alive vertices, active elements, alive leaf edges, active boundary
// faces.
func (m *Mesh) ActiveCounts() Counts {
	var c Counts
	for v := range m.VertAlive {
		if m.VertAlive[v] {
			c.Verts++
		}
	}
	for e := range m.ElemVerts {
		if m.ElemActive(int32(e)) {
			c.Elems++
		}
	}
	for id := range m.EdgeV {
		if m.EdgeAlive[id] && m.EdgeLeaf(int32(id)) {
			c.Edges++
		}
	}
	for f := range m.BFaceVerts {
		if m.BFaceActive(int32(f)) {
			c.BFaces++
		}
	}
	return c
}

// BuildEdgeElems rebuilds the edge -> active elements incidence used by
// marking propagation and coarsening.
func (m *Mesh) BuildEdgeElems() {
	m.EdgeElems = make([][]int32, len(m.EdgeV))
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		for _, id := range m.ElemEdges[e] {
			m.EdgeElems[id] = append(m.EdgeElems[id], int32(e))
		}
	}
}

// RootWeights returns the two dual-graph vertex weights per initial
// element (paper Section 4.1): wcomp[r] is the number of active (leaf)
// elements in root r's refinement tree — only those participate in the
// flow computation — and wremap[r] is the total number of alive elements
// in the tree, since all descendants move with the root during remapping.
func (m *Mesh) RootWeights() (wcomp, wremap []int64) {
	wcomp = make([]int64, m.NRootElems)
	wremap = make([]int64, m.NRootElems)
	for e := range m.ElemVerts {
		if !m.ElemAlive[e] {
			continue
		}
		r := m.ElemRoot[e]
		wremap[r]++
		if m.ElemChild[e] == nil {
			wcomp[r]++
		}
	}
	return wcomp, wremap
}

// getOrCreateEdge returns the id of the edge (a,b), creating it (as an
// element-interior or face edge, parent -1) if it does not exist.
func (m *Mesh) getOrCreateEdge(a, b int32) int32 {
	k := canonPair(a, b)
	if id, ok := m.edgeByPair[k]; ok {
		if !m.EdgeAlive[id] {
			// Revive a purged slot rather than growing the tables.
			m.EdgeAlive[id] = true
			m.EdgeChild[id] = [2]int32{-1, -1}
			m.EdgeMid[id] = -1
			m.EdgeParent[id] = -1
			m.EdgeMark[id] = false
		}
		return id
	}
	id := int32(len(m.EdgeV))
	m.EdgeV = append(m.EdgeV, k)
	m.EdgeChild = append(m.EdgeChild, [2]int32{-1, -1})
	m.EdgeParent = append(m.EdgeParent, -1)
	m.EdgeMid = append(m.EdgeMid, -1)
	m.EdgeAlive = append(m.EdgeAlive, true)
	m.EdgeMark = append(m.EdgeMark, false)
	m.edgeByPair[k] = id
	return id
}

// EdgeByPair returns the id of the alive edge with the given endpoint
// vertices, or -1.
func (m *Mesh) EdgeByPair(a, b int32) int32 {
	if id, ok := m.edgeByPair[canonPair(a, b)]; ok && m.EdgeAlive[id] {
		return id
	}
	return -1
}

// VertByGID returns the local vertex with global id gid, or -1.
func (m *Mesh) VertByGID(gid uint64) int32 {
	if v, ok := m.gidVert[gid]; ok && m.VertAlive[v] {
		return v
	}
	return -1
}

// String summarizes the mesh for debugging.
func (m *Mesh) String() string {
	c := m.ActiveCounts()
	return fmt.Sprintf("adapt.Mesh{verts=%d elems=%d edges=%d bfaces=%d (storage %d/%d/%d)}",
		c.Verts, c.Elems, c.Edges, c.BFaces, len(m.Coords), len(m.ElemVerts), len(m.EdgeV))
}
