package adapt

import (
	"math"
	"testing"

	"plum/internal/mesh"
)

// TestThreeLevelLocalizedRefinement drives three successive refinements
// concentrated at a corner, producing steep level gradients (1:2/1:4
// "green" elements buffering the isotropic region at every level).
func TestThreeLevelLocalizedRefinement(t *testing.T) {
	a := FromMesh(mesh.Box(2, 2, 2, 1, 1, 1), 0)
	ind := SphericalIndicator(mesh.Vec3{0, 0, 0}, 0.3, 0.25)
	prev := a.ActiveCounts().Elems
	for level := 0; level < 3; level++ {
		a.BuildEdgeElems()
		errv := a.EdgeErrorGeometric(ind)
		a.MarkTopFraction(errv, 0.15)
		a.Propagate()
		a.Refine()
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		cur := a.ActiveCounts().Elems
		if cur <= prev {
			t.Fatalf("level %d: no growth (%d)", level, cur)
		}
		prev = cur
	}
	if math.Abs(a.TotalActiveVolume()-1.0) > 1e-9 {
		t.Errorf("volume %v after 3 levels", a.TotalActiveVolume())
	}
	// Subdivision arity distribution: deep local refinement must have
	// produced green (1:2 or 1:4) elements as buffers, not only 1:8.
	counts := map[int]int{}
	for e := range a.ElemVerts {
		if m := a.ElemChild[e]; a.ElemAlive[e] && m != nil {
			counts[len(m)]++
		}
	}
	if counts[8] == 0 {
		t.Error("no isotropic subdivisions at all")
	}
	if counts[2] == 0 && counts[4] == 0 {
		t.Error("no green (1:2/1:4) buffer elements — propagation suspicious")
	}
}

// TestAnisotropicChain: repeatedly bisecting the same single edge family
// exercises 1:2 children of 1:2 children (the anisotropic capability the
// edge data structure exists for).
func TestAnisotropicChain(t *testing.T) {
	a := FromMesh(mesh.Box(1, 1, 1, 1, 1, 1), 0)
	for level := 0; level < 3; level++ {
		a.BuildEdgeElems()
		// Find the longest active leaf edge and bisect only it.
		best, bl := int32(-1), -1.0
		for _, id := range a.activeLeafEdges() {
			v := a.EdgeV[id]
			l := a.Coords[v[0]].Sub(a.Coords[v[1]]).Norm()
			if l > bl {
				best, bl = id, l
			}
		}
		a.MarkEdge(best)
		a.Propagate()
		a.Refine()
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
	if math.Abs(a.TotalActiveVolume()-1.0) > 1e-9 {
		t.Errorf("volume %v", a.TotalActiveVolume())
	}
}

// TestRefineCoarsenOscillation alternates refinement and full coarsening
// several times: storage may grow (dead slots) but the active mesh must
// return to the initial one every time, and compaction must keep the
// tables bounded.
func TestRefineCoarsenOscillation(t *testing.T) {
	a := FromMesh(mesh.Box(2, 2, 1, 2, 2, 1), 0)
	initial := a.ActiveCounts()
	var slotsAfterFirst int
	for round := 0; round < 3; round++ {
		a.BuildEdgeElems()
		for _, id := range a.activeLeafEdges() {
			a.MarkEdge(id)
		}
		a.Propagate()
		a.Refine()
		coarsen := make([]bool, len(a.EdgeV))
		for _, id := range a.activeLeafEdges() {
			coarsen[id] = true
		}
		a.Coarsen(coarsen)
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := a.ActiveCounts(); got != initial {
			t.Fatalf("round %d: counts %+v != initial %+v", round, got, initial)
		}
		a.Compact()
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("round %d post-compact: %v", round, err)
		}
		_, e, _, _ := a.StorageSlots()
		if round == 0 {
			slotsAfterFirst = e
		} else if e > slotsAfterFirst {
			t.Fatalf("round %d: edge slots grew %d -> %d despite compaction", round, slotsAfterFirst, e)
		}
	}
}
