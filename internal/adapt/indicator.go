package adapt

import (
	"math"

	"plum/internal/mesh"
)

// Error indicators.  The paper targets edges using an error indicator
// computed from the flow solution (Section 3, [23]).  The reproduction
// provides both a solution-difference indicator and geometric indicators
// that mimic shock/vortex surfaces (DESIGN.md documents the
// substitution).

// EdgeErrorFromSolution returns per-edge error values |u(a) - u(b)| of
// solution component comp, indexed by edge id.  Only alive leaf edges get
// meaningful values; other slots are zero.
func (m *Mesh) EdgeErrorFromSolution(comp int) []float64 {
	err := make([]float64, len(m.EdgeV))
	for _, id := range m.activeLeafEdges() {
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		err[id] = math.Abs(m.Sol[int(a)*m.NComp+comp] - m.Sol[int(b)*m.NComp+comp])
	}
	return err
}

// EdgeErrorGeometric returns per-edge error values f(midpoint of edge),
// indexed by edge id.  Larger means more in need of refinement.
func (m *Mesh) EdgeErrorGeometric(f func(mesh.Vec3) float64) []float64 {
	err := make([]float64, len(m.EdgeV))
	for _, id := range m.activeLeafEdges() {
		a, b := m.EdgeV[id][0], m.EdgeV[id][1]
		err[id] = f(mesh.Mid(m.Coords[a], m.Coords[b]))
	}
	return err
}

// ShockCylinderIndicator returns an error function peaking on the surface
// of a cylinder (axis through axisPoint along axisDir with the given
// radius), decaying with distance over the length scale width.  This
// mimics the paper's rotor-blade shock surfaces: edges crossing the shock
// get the largest errors.
func ShockCylinderIndicator(axisPoint, axisDir mesh.Vec3, radius, width float64) func(mesh.Vec3) float64 {
	n := axisDir.Scale(1 / axisDir.Norm())
	return func(p mesh.Vec3) float64 {
		d := mesh.CylinderDistance(p, axisPoint, n, radius)
		return math.Exp(-d * d / (width * width))
	}
}

// ShockPlaneIndicator returns an error function peaking on a plane.
func ShockPlaneIndicator(origin, normal mesh.Vec3, width float64) func(mesh.Vec3) float64 {
	n := normal.Scale(1 / normal.Norm())
	return func(p mesh.Vec3) float64 {
		d := mesh.PlaneDistance(p, origin, n)
		return math.Exp(-d * d / (width * width))
	}
}

// SphericalIndicator returns an error function peaking on a sphere
// surface centred at c with the given radius.
func SphericalIndicator(c mesh.Vec3, radius, width float64) func(mesh.Vec3) float64 {
	return func(p mesh.Vec3) float64 {
		d := math.Abs(p.Sub(c).Norm() - radius)
		return math.Exp(-d * d / (width * width))
	}
}
