package adapt

import "math/bits"

// Edge marking and pattern upgrade (paper Section 3):
//
// "Mesh refinement is performed by first setting a bit flag to one for
// each edge that is targeted for subdivision.  The edge markings for each
// element are then combined to form a 6-bit pattern.  Elements are
// continuously upgraded to valid patterns corresponding to the three
// allowed subdivision types until none of the patterns show any change."
//
// The three allowed patterns are: one marked edge (1:2 subdivision), the
// three edges of one face (1:4), and all six edges (1:8).

// faceMasks[f] is the 6-bit mask of the local edges of local face f.
var faceMasks = [4]uint8{
	1<<0 | 1<<1 | 1<<3, // face (0,1,2): edges 01, 02, 12
	1<<0 | 1<<2 | 1<<4, // face (0,1,3): edges 01, 03, 13
	1<<1 | 1<<2 | 1<<5, // face (0,2,3): edges 02, 03, 23
	1<<3 | 1<<4 | 1<<5, // face (1,2,3): edges 12, 13, 23
}

// FullPattern is the 1:8 isotropic subdivision pattern (all six edges).
const FullPattern uint8 = 0x3F

// UpgradePattern returns the smallest valid pattern containing p:
//
//	0 or 1 bits            -> unchanged (no change / 1:2)
//	2 bits sharing a face  -> that face's 3 edges (1:4)
//	3 bits forming a face  -> unchanged (1:4)
//	anything else          -> all six edges (1:8)
//
// Two distinct edges of a tetrahedron share a face exactly when they share
// a vertex; opposite edge pairs force isotropic subdivision.
func UpgradePattern(p uint8) uint8 {
	switch bits.OnesCount8(p) {
	case 0, 1:
		return p
	case 2:
		for _, fm := range faceMasks {
			if p&fm == p {
				return fm
			}
		}
		return FullPattern
	case 3:
		for _, fm := range faceMasks {
			if p == fm {
				return p
			}
		}
		return FullPattern
	default:
		return FullPattern
	}
}

// ValidPattern reports whether p is one of the allowed subdivision
// patterns (including the empty pattern).
func ValidPattern(p uint8) bool { return UpgradePattern(p) == p }

// SubdivisionArity returns the number of children the pattern produces:
// 0 (no change), 2, 4, or 8.
func SubdivisionArity(p uint8) int {
	switch bits.OnesCount8(p) {
	case 0:
		return 0
	case 1:
		return 2
	case 3:
		return 4
	default:
		return 8
	}
}

// ElemPattern returns the current 6-bit marked-edge pattern of element e.
func (m *Mesh) ElemPattern(e int32) uint8 {
	var p uint8
	for le, id := range m.ElemEdges[e] {
		if m.EdgeMark[id] {
			p |= 1 << uint(le)
		}
	}
	return p
}

// ClearMarks resets all edge refinement marks.
func (m *Mesh) ClearMarks() {
	for i := range m.EdgeMark {
		m.EdgeMark[i] = false
	}
}

// MarkEdge sets the refinement mark on an edge.  Only alive leaf edges
// may be marked.
func (m *Mesh) MarkEdge(id int32) {
	m.EdgeMark[id] = true
}

// TargetEdges marks every alive leaf edge of an active element whose
// error value exceeds hi, and returns the number of edges marked.  err is
// indexed by edge id; entries for inactive edges are ignored.
func (m *Mesh) TargetEdges(err []float64, hi float64) int {
	active := m.activeLeafEdges()
	n := 0
	for _, id := range active {
		if err[id] > hi {
			m.EdgeMark[id] = true
			n++
		}
	}
	return n
}

// MarkTopFraction marks the frac fraction of active leaf edges with the
// largest error values (ties broken by edge id) and returns the number
// marked.  This is how the experiment harness reproduces the paper's
// Real_1/2/3 strategies, which subdivided 5%, 33%, and 60% of the initial
// mesh's edges.
func (m *Mesh) MarkTopFraction(err []float64, frac float64) int {
	active := m.activeLeafEdges()
	k := int(frac*float64(len(active)) + 0.5)
	if k <= 0 {
		return 0
	}
	if k > len(active) {
		k = len(active)
	}
	// Selection by sorting indices on (err desc, id asc).
	idx := append([]int32(nil), active...)
	quickSelectByErr(idx, err, k)
	for i := 0; i < k; i++ {
		m.EdgeMark[idx[i]] = true
	}
	return k
}

// quickSelectByErr partially sorts idx so that the k entries with the
// largest err (ties by smaller id) occupy idx[:k].
func quickSelectByErr(idx []int32, err []float64, k int) {
	less := func(a, b int32) bool { // "a ranks before b"
		if err[a] != err[b] {
			return err[a] > err[b]
		}
		return a < b
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := idx[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for less(idx[i], p) {
				i++
			}
			for less(p, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}

// activeLeafEdges returns the ids of alive leaf edges referenced by
// active elements, in ascending order.
func (m *Mesh) activeLeafEdges() []int32 {
	used := make([]bool, len(m.EdgeV))
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		for _, id := range m.ElemEdges[e] {
			used[id] = true
		}
	}
	var out []int32
	for id, u := range used {
		if u {
			out = append(out, int32(id))
		}
	}
	return out
}

// Propagate upgrades all element patterns to valid subdivision patterns,
// propagating new edge marks to neighbouring elements until a fixpoint is
// reached.  It returns the ids of edges newly marked during the process
// (used by the distributed implementation to exchange shared-edge marks).
// BuildEdgeElems must have been called since the last topology change.
func (m *Mesh) Propagate() []int32 {
	if m.EdgeElems == nil {
		m.BuildEdgeElems()
	}
	var newly []int32
	// Worklist of elements whose pattern may be invalid.
	var work []int32
	inWork := make([]bool, len(m.ElemVerts))
	for e := range m.ElemVerts {
		if m.ElemActive(int32(e)) {
			work = append(work, int32(e))
			inWork[e] = true
		}
	}
	for len(work) > 0 {
		e := work[0]
		work = work[1:]
		inWork[e] = false
		p := m.ElemPattern(e)
		up := UpgradePattern(p)
		if up == p {
			continue
		}
		for le := 0; le < 6; le++ {
			if up&(1<<uint(le)) == 0 || p&(1<<uint(le)) != 0 {
				continue
			}
			id := m.ElemEdges[e][le]
			if m.EdgeMark[id] {
				continue
			}
			m.EdgeMark[id] = true
			newly = append(newly, id)
			for _, nb := range m.EdgeElems[id] {
				if nb != e && !inWork[nb] && m.ElemActive(nb) {
					work = append(work, nb)
					inWork[nb] = true
				}
			}
		}
	}
	return newly
}

// MarkedEdges returns the ids of all currently marked edges.
func (m *Mesh) MarkedEdges() []int32 {
	var out []int32
	for id, mk := range m.EdgeMark {
		if mk {
			out = append(out, int32(id))
		}
	}
	return out
}

// Prediction describes the mesh that Refine would produce, computed
// before any subdivision takes place.  The paper exploits this ("since
// edges have already been marked for refinement, it is possible to
// exactly predict the new mesh before actually performing the refinement
// step") to let the load balancer run on the pre-refinement mesh.
type Prediction struct {
	// LeavesPerRoot[r] is the number of active elements root r's tree
	// will have after refinement (the new Wcomp).
	LeavesPerRoot []int64
	// TotalActive is the predicted number of active elements.
	TotalActive int64
	// GrowthFactor is TotalActive divided by the current active count
	// (the paper's G).
	GrowthFactor float64
}

// PredictRefine computes the post-refinement element counts from the
// current (upgraded) edge marks.  Call after Propagate.
func (m *Mesh) PredictRefine() Prediction {
	pred := Prediction{LeavesPerRoot: make([]int64, m.NRootElems)}
	var current int64
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		current++
		n := SubdivisionArity(m.ElemPattern(int32(e)))
		if n == 0 {
			n = 1
		}
		pred.LeavesPerRoot[m.ElemRoot[e]] += int64(n)
		pred.TotalActive += int64(n)
	}
	if current > 0 {
		pred.GrowthFactor = float64(pred.TotalActive) / float64(current)
	}
	return pred
}
