package adapt

import (
	"fmt"
	"math/bits"

	"plum/internal/mesh"
)

// localEdgeIdx[i][j] is the local edge between local vertices i and j.
var localEdgeIdx = func() [4][4]int {
	var t [4][4]int
	for i := range t {
		for j := range t[i] {
			t[i][j] = -1
		}
	}
	for le, pr := range mesh.TetEdgeVerts {
		t[pr[0]][pr[1]] = le
		t[pr[1]][pr[0]] = le
	}
	return t
}()

// RefineStats reports what a Refine pass did.
type RefineStats struct {
	ElemsSubdivided int // parents subdivided this pass
	ElemsCreated    int // child elements created
	EdgesBisected   int // leaf edges bisected (midpoints created)
	VertsCreated    int
	BFacesSplit     int
	BFacesCreated   int
}

// Refine subdivides every active element whose marked-edge pattern is
// non-empty.  Marks must form valid patterns: callers run Propagate
// first.  Marked leaf edges are bisected (already-bisected marked edges —
// which occur during post-coarsening re-refinement — are reused).
// Boundary faces split consistently with their elements.  All marks are
// cleared on return.
func (m *Mesh) Refine() RefineStats {
	var st RefineStats

	// Snapshot jobs before mutating topology.
	type ejob struct {
		e   int32
		pat uint8
	}
	var ejobs []ejob
	for e := range m.ElemVerts {
		if !m.ElemActive(int32(e)) {
			continue
		}
		pat := m.ElemPattern(int32(e))
		if pat == 0 {
			continue
		}
		if !ValidPattern(pat) {
			panic(fmt.Sprintf("adapt: element %d has invalid pattern %06b at Refine; call Propagate first", e, pat))
		}
		ejobs = append(ejobs, ejob{int32(e), pat})
	}
	type fjob struct {
		f   int32
		pat uint8 // 3-bit pattern over BFaceEdges
	}
	var fjobs []fjob
	for f := range m.BFaceVerts {
		if !m.BFaceActive(int32(f)) {
			continue
		}
		var pat uint8
		for i, id := range m.BFaceEdges[f] {
			if m.EdgeMark[id] {
				pat |= 1 << uint(i)
			}
		}
		if pat == 0 {
			continue
		}
		if bits.OnesCount8(pat) == 2 {
			panic(fmt.Sprintf("adapt: boundary face %d has 2 marked edges; element patterns invalid", f))
		}
		fjobs = append(fjobs, fjob{int32(f), pat})
	}

	// Bisect all marked leaf edges.
	for id := range m.EdgeMark {
		if m.EdgeMark[id] && m.EdgeAlive[id] && m.EdgeLeaf(int32(id)) {
			m.bisect(int32(id))
			st.EdgesBisected++
			st.VertsCreated++
		}
	}

	// Subdivide elements, then boundary faces (which reuse the interior
	// face edges the element subdivision creates).
	for _, j := range ejobs {
		st.ElemsCreated += m.subdivideElem(j.e, j.pat)
		st.ElemsSubdivided++
	}
	for _, j := range fjobs {
		st.BFacesCreated += m.subdivideBFace(j.f, j.pat)
		st.BFacesSplit++
	}

	m.ClearMarks()
	m.EdgeElems = nil // incidence is stale after topology changes
	return st
}

// bisect splits a leaf edge at its midpoint, creating the midpoint vertex
// (with solution interpolated linearly from the endpoints, paper Section
// 3) and the two child edges.  Idempotent on already-bisected edges.
func (m *Mesh) bisect(id int32) {
	if !m.EdgeLeaf(id) {
		return
	}
	a, b := m.EdgeV[id][0], m.EdgeV[id][1]
	gid := hashGID(m.VertGID[a], m.VertGID[b])
	_, existed := m.gidVert[gid]
	mid := m.newVertex(mesh.Mid(m.Coords[a], m.Coords[b]), gid)
	if !existed {
		// Fresh midpoint: interpolate the solution.  A pre-existing
		// vertex (merged via global id during migration unpacking)
		// keeps its transferred solution values.
		for c := 0; c < m.NComp; c++ {
			m.Sol[int(mid)*m.NComp+c] = 0.5 * (m.Sol[int(a)*m.NComp+c] + m.Sol[int(b)*m.NComp+c])
		}
	}
	c0 := m.newChildEdge(a, mid, id)
	c1 := m.newChildEdge(mid, b, id)
	m.EdgeChild[id] = [2]int32{c0, c1}
	m.EdgeMid[id] = mid
}

// newVertex appends a vertex (or returns an existing alive vertex with
// the same global id, which the distributed implementation relies on when
// unpacking migrated elements).
func (m *Mesh) newVertex(c mesh.Vec3, gid uint64) int32 {
	if v, ok := m.gidVert[gid]; ok {
		if !m.VertAlive[v] {
			m.VertAlive[v] = true
			m.Coords[v] = c
		}
		return v
	}
	v := int32(len(m.Coords))
	m.Coords = append(m.Coords, c)
	m.VertGID = append(m.VertGID, gid)
	m.VertAlive = append(m.VertAlive, true)
	m.gidVert[gid] = v
	for c := 0; c < m.NComp; c++ {
		m.Sol = append(m.Sol, 0)
	}
	return v
}

// newChildEdge creates the half-edge (a,b) of parent edge p.
func (m *Mesh) newChildEdge(a, b, p int32) int32 {
	id := m.getOrCreateEdge(a, b)
	m.EdgeParent[id] = p
	return id
}

// subdivideElem creates the children of element e for pattern pat and
// returns the number created.
func (m *Mesh) subdivideElem(e int32, pat uint8) int {
	ev := m.ElemVerts[e]
	var mid [6]int32
	for le := 0; le < 6; le++ {
		if pat&(1<<uint(le)) != 0 {
			id := m.ElemEdges[e][le]
			mid[le] = m.EdgeMid[id]
			if mid[le] < 0 {
				panic(fmt.Sprintf("adapt: element %d marked edge %d has no midpoint", e, id))
			}
		} else {
			mid[le] = -1
		}
	}
	tets := childTets(ev, pat, mid)
	ids := make([]int32, len(tets))
	for i, t := range tets {
		ids[i] = m.newElem(t, e)
	}
	m.ElemChild[e] = ids
	return len(tets)
}

// newElem appends a child element with parent p, deriving its six edges.
func (m *Mesh) newElem(t [4]int32, p int32) int32 {
	var edges [6]int32
	for le, pr := range mesh.TetEdgeVerts {
		edges[le] = m.getOrCreateEdge(t[pr[0]], t[pr[1]])
	}
	id := int32(len(m.ElemVerts))
	m.ElemVerts = append(m.ElemVerts, t)
	m.ElemEdges = append(m.ElemEdges, edges)
	m.ElemParent = append(m.ElemParent, p)
	m.ElemChild = append(m.ElemChild, nil)
	m.ElemRoot = append(m.ElemRoot, m.ElemRoot[p])
	m.ElemAlive = append(m.ElemAlive, true)
	return id
}

// childTets returns the child tetrahedra (as local vertex 4-tuples of the
// adapted mesh) for the parent corners ev, pattern pat, and per-local-edge
// midpoints mid.
//
// The templates are the classical red/green tetrahedron subdivisions the
// paper's Section 3 describes: 1:2 bisection, 1:4 face quadrisection, and
// 1:8 isotropic with the interior octahedron split by the fixed diagonal
// joining the midpoints of local edges 0 (v0,v1) and 5 (v2,v3).
func childTets(ev [4]int32, pat uint8, mid [6]int32) [][4]int32 {
	switch SubdivisionArity(pat) {
	case 2:
		le := bits.TrailingZeros8(pat)
		la, lb := mesh.TetEdgeVerts[le][0], mesh.TetEdgeVerts[le][1]
		m := mid[le]
		c0, c1 := ev, ev
		c0[lb] = m
		c1[la] = m
		return [][4]int32{c0, c1}
	case 4:
		var f int
		for f = 0; f < 4; f++ {
			if faceMasks[f] == pat {
				break
			}
		}
		la, lb, lc := mesh.TetFaces[f][0], mesh.TetFaces[f][1], mesh.TetFaces[f][2]
		ld := mesh.OppositeVertex[f]
		a, b, c, d := ev[la], ev[lb], ev[lc], ev[ld]
		mab := mid[localEdgeIdx[la][lb]]
		mac := mid[localEdgeIdx[la][lc]]
		mbc := mid[localEdgeIdx[lb][lc]]
		return [][4]int32{
			{a, mab, mac, d},
			{mab, b, mbc, d},
			{mac, mbc, c, d},
			{mab, mbc, mac, d},
		}
	case 8:
		m01, m02, m03 := mid[0], mid[1], mid[2]
		m12, m13, m23 := mid[3], mid[4], mid[5]
		return [][4]int32{
			// Four corner tetrahedra.
			{ev[0], m01, m02, m03},
			{m01, ev[1], m12, m13},
			{m02, m12, ev[2], m23},
			{m03, m13, m23, ev[3]},
			// Interior octahedron split along the (m01, m23) diagonal;
			// the equatorial cycle m02-m12-m13-m03 closes it.
			{m01, m23, m02, m12},
			{m01, m23, m12, m13},
			{m01, m23, m13, m03},
			{m01, m23, m03, m02},
		}
	default:
		return nil
	}
}

// subdivideBFace splits a boundary face according to its 3-bit marked
// pattern (1 bit: two children; 3 bits: four children) and returns the
// number of children.  Two marked edges cannot occur on a face of an
// element with a valid pattern.
func (m *Mesh) subdivideBFace(f int32, pat uint8) int {
	bv := m.BFaceVerts[f]
	a, b, c := bv[0], bv[1], bv[2]
	var tris [][3]int32
	switch pat {
	case 1: // edge (a,b)
		mab := m.EdgeMid[m.BFaceEdges[f][0]]
		tris = [][3]int32{{a, mab, c}, {mab, b, c}}
	case 2: // edge (a,c)
		mac := m.EdgeMid[m.BFaceEdges[f][1]]
		tris = [][3]int32{{a, b, mac}, {mac, b, c}}
	case 4: // edge (b,c)
		mbc := m.EdgeMid[m.BFaceEdges[f][2]]
		tris = [][3]int32{{a, b, mbc}, {a, mbc, c}}
	case 7: // all three
		mab := m.EdgeMid[m.BFaceEdges[f][0]]
		mac := m.EdgeMid[m.BFaceEdges[f][1]]
		mbc := m.EdgeMid[m.BFaceEdges[f][2]]
		tris = [][3]int32{{a, mab, mac}, {mab, b, mbc}, {mac, mbc, c}, {mab, mbc, mac}}
	default:
		panic(fmt.Sprintf("adapt: boundary face %d has invalid pattern %03b", f, pat))
	}
	ids := make([]int32, len(tris))
	for i, t := range tris {
		ids[i] = m.newBFace(t, m.BFaceRoot[f])
	}
	m.BFaceChild[f] = ids
	return len(tris)
}

// newBFace appends a boundary face with the given vertices and root.
func (m *Mesh) newBFace(t [3]int32, root int32) int32 {
	edges := [3]int32{
		m.getOrCreateEdge(t[0], t[1]),
		m.getOrCreateEdge(t[0], t[2]),
		m.getOrCreateEdge(t[1], t[2]),
	}
	id := int32(len(m.BFaceVerts))
	m.BFaceVerts = append(m.BFaceVerts, t)
	m.BFaceEdges = append(m.BFaceEdges, edges)
	m.BFaceChild = append(m.BFaceChild, nil)
	m.BFaceAlive = append(m.BFaceAlive, true)
	m.BFaceRoot = append(m.BFaceRoot, root)
	return id
}
