package solver

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
)

func newSerial(nx, ny, nz int) *adapt.Mesh {
	m := mesh.Box(nx, ny, nz, float64(nx), float64(ny), float64(nz))
	a := adapt.FromMesh(m, NComp)
	InitField(a, GaussianPulse(mesh.Vec3{float64(nx) / 2, float64(ny) / 2, float64(nz) / 2}, 0.8))
	return a
}

func TestStepRunsAndChangesSolution(t *testing.T) {
	a := newSerial(3, 3, 3)
	before := append([]float64(nil), a.Sol...)
	work := Step(a, 0.01)
	if work != a.ActiveCounts().Edges {
		t.Errorf("work %d != active edges %d", work, a.ActiveCounts().Edges)
	}
	changed := false
	for i := range a.Sol {
		if a.Sol[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("solution did not change")
	}
	for _, u := range a.Sol {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatal("solution blew up")
		}
	}
}

func TestStepStableManyIterations(t *testing.T) {
	a := newSerial(3, 3, 3)
	for it := 0; it < 50; it++ {
		Step(a, 0.005)
	}
	for _, u := range a.Sol {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatal("solution unstable after 50 iterations")
		}
	}
}

func TestStepOnRefinedMesh(t *testing.T) {
	a := newSerial(2, 2, 2)
	a.BuildEdgeElems()
	ind := adapt.SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.5, 0.5)
	errv := a.EdgeErrorGeometric(ind)
	a.MarkTopFraction(errv, 0.3)
	a.Propagate()
	a.Refine()
	work := Step(a, 0.01)
	if work != a.ActiveCounts().Edges {
		t.Errorf("refined mesh: work %d != active edges %d", work, a.ActiveCounts().Edges)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	nx, ny, nz := 3, 3, 2
	global := mesh.Box(nx, ny, nz, float64(nx), float64(ny), float64(nz))
	init := GaussianPulse(mesh.Vec3{1.5, 1.5, 1.0}, 0.8)

	serial := adapt.FromMesh(global, NComp)
	InitField(serial, init)
	for it := 0; it < 5; it++ {
		Step(serial, 0.01)
	}
	// Reference solution keyed by gid (= initial vertex id here).
	ref := make(map[uint64][NComp]float64)
	for v := range serial.Coords {
		var u [NComp]float64
		copy(u[:], serial.Sol[v*NComp:])
		ref[serial.VertGID[v]] = u
	}

	for _, p := range []int{2, 4} {
		g := dual.FromMesh(global)
		part := partition.Partition(g, p, partition.Default())
		msg.Run(p, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, NComp)
			ps := NewParallel(d)
			ps.InitParallel(init)
			for it := 0; it < 5; it++ {
				ps.Step(0.01)
			}
			for v := range d.M.Coords {
				if !d.M.VertAlive[v] {
					continue
				}
				want := ref[d.M.VertGID[v]]
				for k := 0; k < NComp; k++ {
					got := d.M.Sol[v*NComp+k]
					if math.Abs(got-want[k]) > 1e-10*(1+math.Abs(want[k])) {
						t.Fatalf("p=%d rank %d vertex gid %d comp %d: %v != serial %v",
							p, c.Rank(), d.M.VertGID[v], k, got, want[k])
					}
				}
			}
		})
	}
}

func TestParallelDeterministic(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 3, partition.Default())
	run := func() float64 {
		var mass float64
		msg.Run(3, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, NComp)
			ps := NewParallel(d)
			ps.InitParallel(GaussianPulse(mesh.Vec3{1, 1, 1}, 0.5))
			for it := 0; it < 3; it++ {
				ps.Step(0.01)
			}
			m := ps.GlobalMass()
			if c.Rank() == 0 {
				mass = m
			}
		})
		return mass
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("parallel solver not deterministic: %v != %v", a, b)
	}
}

func TestParallelAfterRefinement(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 2, partition.Default())
	ind := adapt.SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.6, 0.4)
	msg.Run(2, func(c *msg.Comm) {
		d := pmesh.New(c, global, part, NComp)
		ps := NewParallel(d)
		ps.InitParallel(GaussianPulse(mesh.Vec3{1, 1, 1}, 0.5))
		errv := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(errv, 0.4)
		d.PropagateParallel()
		d.Refine()
		ps.Rebuild()
		for it := 0; it < 3; it++ {
			ps.Step(0.005)
		}
		for _, u := range d.M.Sol {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Fatal("parallel solution unstable on refined mesh")
			}
		}
	})
}

func TestWorkPartitioning(t *testing.T) {
	// Sum of per-rank owned-edge work equals the serial edge count.
	global := mesh.Box(3, 2, 2, 3, 2, 2)
	serialEdges := adapt.FromMesh(global, NComp).ActiveCounts().Edges
	g := dual.FromMesh(global)
	part := partition.Partition(g, 4, partition.Default())
	msg.Run(4, func(c *msg.Comm) {
		d := pmesh.New(c, global, part, NComp)
		ps := NewParallel(d)
		ps.InitParallel(GaussianPulse(mesh.Vec3{1, 1, 1}, 0.5))
		w := ps.Step(0.01)
		total := c.AllreduceInt64(int64(w), msg.SumInt64)
		if int(total) != serialEdges {
			t.Errorf("owned-edge work sums to %d, want %d", total, serialEdges)
		}
	})
}

func TestGaussianPulseShape(t *testing.T) {
	f := GaussianPulse(mesh.Vec3{0, 0, 0}, 1)
	at0 := f(mesh.Vec3{0, 0, 0})
	far := f(mesh.Vec3{10, 0, 0})
	if at0[0] <= far[0] {
		t.Error("pulse not peaked at centre")
	}
	if math.Abs(far[0]-1) > 1e-6 {
		t.Errorf("far-field density %v, want ~1", far[0])
	}
}
