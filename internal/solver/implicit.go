package solver

import (
	"plum/internal/adapt"
	"plum/internal/linalg"
	"plum/internal/pmesh"
)

// Implicit time stepping: where the explicit kernel (solver.go)
// communicates once per time step, a backward-Euler diffusion update
//
//	(I + dt*L) u^{n+1} = u^n
//
// solved by preconditioned conjugate gradients communicates every PCG
// iteration — a halo exchange per SpMV plus a global reduction per dot
// product.  This is the second workload class of the reproduction: under
// it, the partition-quality metrics the load balancer optimizes (edge
// cut, CommVolume) stop being proxies and become directly observable as
// simulated communication time.  L is the edge-weighted vertex
// Laplacian of linalg.Assemble, so the operator tracks the adapted mesh
// exactly as the explicit flux loop does.

// ImplicitOptions tunes the implicit workload.
type ImplicitOptions struct {
	DT      float64            // pseudo-time step (Laplacian scale)
	Precond linalg.PrecondKind // preconditioner for the PCG solves
	Tol     float64            // PCG relative residual target
	MaxIter int                // PCG iteration cap
	// Overlap enables the split-SpMV halo overlap: interior rows compute
	// while the ghost exchange is in flight.  The iterates are bitwise
	// unchanged; only the simulated communication wait shrinks.
	Overlap bool
}

// DefaultImplicitOptions returns the settings the experiments use: a
// step large enough that preconditioning visibly pays, SPAI, and the
// acceptance tolerance of the subsystem (1e-8).
func DefaultImplicitOptions() ImplicitOptions {
	return ImplicitOptions{DT: 0.5, Precond: linalg.PrecondSPAI, Tol: 1e-8, MaxIter: 500}
}

// ImplicitResult reports one implicit step (all NComp component solves).
type ImplicitResult struct {
	Iterations int  // total PCG iterations across components
	Converged  bool // every component solve converged
	Work       int  // local work measure: iterations x owned nonzeros
	// Residuals is the residual history of the last component solve
	// (all components share the operator, so histories are alike).
	Residuals []float64
}

// Implicit is the distributed implicit solver bound to a DistMesh.
type Implicit struct {
	D   *pmesh.DistMesh
	Sys *linalg.DistSystem
	Pre linalg.Preconditioner
	Opt ImplicitOptions
}

// NewImplicit assembles the operator for the current mesh topology.
// Call Rebuild after any adaption or migration.  Collective.
func NewImplicit(d *pmesh.DistMesh, opt ImplicitOptions) *Implicit {
	im := &Implicit{D: d, Opt: opt}
	im.Rebuild()
	return im
}

// Rebuild reassembles the operator and preconditioner.  Collective.
func (im *Implicit) Rebuild() {
	im.Sys = linalg.NewDistSystem(im.D, 1, im.Opt.DT)
	im.Sys.Overlap = im.Opt.Overlap
	im.Pre = im.Sys.NewPrecond(im.Opt.Precond)
}

// Step advances every solution component one implicit iteration and
// writes the result back into the mesh (all copies of shared vertices,
// bitwise consistent).  Collective.
func (im *Implicit) Step() ImplicitResult {
	ncomp := im.D.M.NComp
	res := ImplicitResult{Converged: true}
	opt := linalg.Options{Tol: im.Opt.Tol, MaxIter: im.Opt.MaxIter}
	for comp := 0; comp < ncomp; comp++ {
		b := im.Sys.GatherField(ncomp, comp)
		x := append([]float64(nil), b...) // u^n is the natural initial guess
		r := linalg.PCG(im.Sys, im.Pre, b, x, opt)
		im.Sys.ScatterField(ncomp, comp, x)
		res.Iterations += r.Iterations
		res.Converged = res.Converged && r.Converged
		res.Residuals = r.Residuals
	}
	res.Work = res.Iterations * im.Sys.A.NNZ()
	return res
}

// RelResidual returns the final relative residual of the last component
// solve.
func (r ImplicitResult) RelResidual() float64 {
	return linalg.Result{Residuals: r.Residuals}.RelResidual()
}

// GlobalMass sums the density component over all owned rows with the
// subsystem's exact reduction, so the diagnostic is bitwise independent
// of the partition (unlike PSolver.GlobalMass, which reduces rank by
// rank).  Collective.
func (im *Implicit) GlobalMass() float64 {
	if im.D.M.NComp == 0 {
		return 0
	}
	b := im.Sys.GatherField(im.D.M.NComp, 0)
	ones := make([]float64, len(b))
	for i := range ones {
		ones[i] = 1
	}
	return im.Sys.Dot(b, ones)
}

// ImplicitStepSerial advances a serial adapted mesh one implicit
// iteration with the same operator and solver as the distributed path
// (the single-processor reference of the workload).
func ImplicitStepSerial(m *adapt.Mesh, opt ImplicitOptions) ImplicitResult {
	A := linalg.Assemble(m, 1, opt.DT)
	sys := linalg.NewSerial(A)
	pre := sys.NewPrecond(opt.Precond)
	ncomp := m.NComp
	res := ImplicitResult{Converged: true}
	popt := linalg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter}
	for comp := 0; comp < ncomp; comp++ {
		b := linalg.GatherField(A, m, ncomp, comp)
		x := append([]float64(nil), b...)
		r := linalg.PCG(sys, pre, b, x, popt)
		linalg.ScatterField(A, m, ncomp, comp, x)
		res.Iterations += r.Iterations
		res.Converged = res.Converged && r.Converged
		res.Residuals = r.Residuals
	}
	res.Work = res.Iterations * A.NNZ()
	return res
}
