// Package solver provides the flow-solver substrate of the reproduction
// — the workload whose balance the load balancer optimizes.
//
// The paper's framework (Section 2) couples the load balancer to a
// finite-volume upwind Euler solver for helicopter rotor flows: unknowns
// live at mesh vertices, fluxes are accumulated over edges ("cell-vertex
// edge schemes are inherently more efficient than cell-centered element
// methods"), and the solution advances with explicit time stepping.
// PLUM needs the solver as (a) the dominant per-element workload whose
// balance the framework optimizes, and (b) the source of the per-edge
// error indicator driving adaption.  This package implements an
// edge-based explicit kernel with the same structure and data access
// pattern — a 5-component state vector, per-edge upwind-flavoured flux,
// per-vertex accumulate/update, ghost accumulation across partition
// boundaries — without claiming aerodynamic fidelity.  It also hosts
// the implicit (backward-Euler) workload built on internal/linalg,
// whose per-iteration halo exchanges and reductions make partition
// quality directly observable as simulated time.
//
// Entry points.  NewParallel / PSolver.Step drive the explicit
// workload; NewImplicit / Implicit.Step the implicit one
// (ImplicitOptions selects preconditioner and the halo/compute overlap
// mode); InitField and GaussianPulse set initial conditions; both
// solvers expose GlobalMass as a conservation-style diagnostic.
//
// Invariants.  Shared-vertex partials are combined in ascending rank
// order and edge ownership is exact (pmesh.ResolveOwnership), so every
// update is bitwise independent of the partition and of GOMAXPROCS.
// The implicit solver inherits linalg's exact-reduction discipline:
// iteration counts and residual histories are identical for every
// processor count.
package solver
