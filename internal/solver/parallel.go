package solver

import (
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/pmesh"
)

// Parallel solver: each rank computes fluxes for the edges it owns
// (exact ownership from pmesh.ResolveOwnership), partial vertex
// accumulators for shared vertices are exchanged with the actual
// sharers, combined in rank order for bitwise determinism, and every
// holder applies the identical update.

// PSolver is the distributed solver state bound to a DistMesh.
type PSolver struct {
	D   *pmesh.DistMesh
	own *pmesh.EdgeOwnership
	// sendTo[r] lists local shared vertices whose partials go to rank r.
	sendTo map[int32][]int32
}

// NewParallel builds the solver for the current mesh topology.  Call
// Rebuild after any adaption or migration.  Collective.
func NewParallel(d *pmesh.DistMesh) *PSolver {
	s := &PSolver{D: d}
	s.Rebuild()
	return s
}

// Rebuild refreshes ownership and exchange lists.  Collective.
func (s *PSolver) Rebuild() {
	s.own = s.D.ResolveOwnership()
	s.sendTo = make(map[int32][]int32)
	for v, sharers := range s.own.VertSharers {
		for _, r := range sharers {
			s.sendTo[r] = append(s.sendTo[r], v)
		}
	}
	// Deterministic order: ascending gid per destination.
	m := s.D.M
	for r := range s.sendTo {
		vs := s.sendTo[r]
		sortByGID(vs, m.VertGID)
	}
}

func sortByGID(vs []int32, gid []uint64) {
	// Insertion sort: lists are short (partition surface).
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for j >= 0 && gid[vs[j]] > gid[v] {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

// Step advances the distributed solution one explicit iteration and
// returns the local number of owned-edge flux evaluations.  Collective.
func (s *PSolver) Step(dt float64) int {
	d := s.D
	m := d.M
	if m.EdgeElems == nil {
		m.BuildEdgeElems()
	}
	acc := make([]float64, len(m.Coords)*NComp)
	deg := make([]float64, len(m.Coords))
	work := 0
	var ua, ub, flux [NComp]float64
	for id := range m.EdgeV {
		if !s.own.Owned[id] {
			continue
		}
		a, b := OrientEdge(m, int32(id))
		length := m.Coords[a].Sub(m.Coords[b]).Norm()
		copy(ua[:], m.Sol[int(a)*NComp:])
		copy(ub[:], m.Sol[int(b)*NComp:])
		edgeFlux(&ua, &ub, length, &flux)
		for k := 0; k < NComp; k++ {
			acc[int(a)*NComp+k] -= flux[k]
			acc[int(b)*NComp+k] += flux[k]
		}
		deg[a] += length
		deg[b] += length
		work++
	}
	d.C.Compute(float64(work))

	// Ghost accumulation: exchange partial (acc, deg) of shared
	// vertices with their actual sharers; combine in rank order.
	p := d.C.Size()
	me := int32(d.C.Rank())
	parts := make([][]byte, p)
	for r := 0; r < p; r++ {
		vs := s.sendTo[int32(r)]
		if len(vs) == 0 {
			parts[r] = nil
			continue
		}
		vals := make([]float64, 0, len(vs)*(NComp+2))
		for _, v := range vs {
			vals = append(vals, float64(int64(m.VertGID[v]>>32)), float64(uint32(m.VertGID[v])))
			vals = append(vals, acc[int(v)*NComp:int(v)*NComp+NComp]...)
			vals = append(vals, deg[v])
		}
		parts[r] = msg.PutFloats(vals)
	}
	recv := d.C.Alltoall(parts)

	// Deterministic combination: process contributions rank by rank in
	// ascending order, inserting our own partial at rank "me".  Shared
	// accumulators start at zero and sum all partials.
	type partial struct {
		acc [NComp]float64
		deg float64
	}
	combined := make(map[int32]*partial)
	addPartial := func(v int32, a []float64, dg float64) {
		c, ok := combined[v]
		if !ok {
			c = &partial{}
			combined[v] = c
		}
		for k := 0; k < NComp; k++ {
			c.acc[k] += a[k]
		}
		c.deg += dg
	}
	processRank := func(r int32) {
		if r == me {
			for v := range s.own.VertSharers {
				addPartial(v, acc[int(v)*NComp:int(v)*NComp+NComp], deg[v])
			}
			return
		}
		vals := msg.GetFloats(recv[r])
		stride := NComp + 3
		for i := 0; i+stride <= len(vals); i += stride {
			gid := uint64(int64(vals[i]))<<32 | uint64(uint32(int64(vals[i+1])))
			v := m.VertByGID(gid)
			if v < 0 {
				continue // conservative SPL over-approximation
			}
			addPartial(v, vals[i+2:i+2+NComp], vals[i+2+NComp])
		}
	}
	for r := int32(0); r < int32(p); r++ {
		processRank(r)
	}

	// processRank(me) iterates a map: to keep determinism, overwrite
	// shared entries directly rather than relying on map order —
	// addition is per-vertex independent, so map iteration order does
	// not affect the result.
	for v, c := range combined {
		copy(acc[int(v)*NComp:], c.acc[:])
		deg[v] = c.deg
	}
	applyUpdate(m, acc, deg, dt)
	return work
}

// InitParallel sets the initial condition on the local mesh.
func (s *PSolver) InitParallel(f func(mesh.Vec3) [NComp]float64) {
	InitField(s.D.M, f)
}

// GlobalMass sums the density diagnostic across ranks, counting shared
// vertices once (lowest actual holder).  Collective.
func (s *PSolver) GlobalMass() float64 {
	m := s.D.M
	me := int32(s.D.C.Rank())
	var local float64
	for v := range m.Coords {
		if !m.VertAlive[v] {
			continue
		}
		if sh := s.own.VertSharers[int32(v)]; len(sh) > 0 && sh[0] < me {
			continue
		}
		local += m.Sol[v*NComp]
	}
	return s.D.C.AllreduceFloat64(local, msg.SumFloat64)
}
