package solver

import (
	"math"

	"plum/internal/adapt"
	"plum/internal/mesh"
)

// NComp is the number of state components per vertex (density, momentum
// x3, energy).
const NComp = 5

// InitField sets the solution at every alive vertex from a function of
// position returning NComp values.
func InitField(m *adapt.Mesh, f func(mesh.Vec3) [NComp]float64) {
	if m.NComp != NComp {
		panic("solver: mesh was not built with solver.NComp components")
	}
	for v := range m.Coords {
		if !m.VertAlive[v] {
			continue
		}
		u := f(m.Coords[v])
		copy(m.Sol[v*NComp:], u[:])
	}
}

// GaussianPulse returns an initial condition with uniform flow plus a
// density/energy pulse at c — a stand-in for the impulsive near-blade
// flow states of the paper's test problem.
func GaussianPulse(c mesh.Vec3, width float64) func(mesh.Vec3) [NComp]float64 {
	return func(p mesh.Vec3) [NComp]float64 {
		d := p.Sub(c).Norm()
		amp := math.Exp(-d * d / (width * width))
		return [NComp]float64{1 + amp, 0.5, 0, 0, 2 + 2*amp}
	}
}

// edgeFlux computes the pseudo-Euler upwind flux across one edge: an
// average-state convective part plus a scalar-dissipation part, about 40
// floating-point operations per edge, matching the arithmetic intensity
// class of a real first-order upwind scheme.
func edgeFlux(ua, ub *[NComp]float64, length float64, flux *[NComp]float64) {
	// "Velocity" along the edge from the momentum components.
	rhoA := ua[0]
	rhoB := ub[0]
	if rhoA < 1e-12 {
		rhoA = 1e-12
	}
	if rhoB < 1e-12 {
		rhoB = 1e-12
	}
	va := (ua[1] + ua[2] + ua[3]) / (3 * rhoA)
	vb := (ub[1] + ub[2] + ub[3]) / (3 * rhoB)
	vn := 0.5 * (va + vb)
	// Spectral radius proxy for the upwind dissipation.
	lam := math.Abs(vn) + math.Sqrt(math.Abs(ua[4]+ub[4])/(rhoA+rhoB))
	for k := 0; k < NComp; k++ {
		avg := 0.5 * (ua[k] + ub[k])
		diff := ub[k] - ua[k]
		flux[k] = length * (vn*avg - 0.5*lam*diff)
	}
}

// Step advances the serial mesh one explicit iteration with CFL-like
// factor dt and returns the number of edge flux evaluations (the
// workload measure; the paper's Titer is per element, and edges ~ 1.28x
// elements on tetrahedral meshes).
func Step(m *adapt.Mesh, dt float64) int {
	if m.EdgeElems == nil {
		m.BuildEdgeElems()
	}
	acc := make([]float64, len(m.Coords)*NComp)
	deg := make([]float64, len(m.Coords))
	work := 0
	var ua, ub, flux [NComp]float64
	for id := range m.EdgeV {
		if !m.EdgeAlive[id] || !m.EdgeLeaf(int32(id)) || len(m.EdgeElems[id]) == 0 {
			continue
		}
		a, b := OrientEdge(m, int32(id))
		length := m.Coords[a].Sub(m.Coords[b]).Norm()
		copy(ua[:], m.Sol[int(a)*NComp:])
		copy(ub[:], m.Sol[int(b)*NComp:])
		edgeFlux(&ua, &ub, length, &flux)
		for k := 0; k < NComp; k++ {
			acc[int(a)*NComp+k] -= flux[k]
			acc[int(b)*NComp+k] += flux[k]
		}
		deg[a] += length
		deg[b] += length
		work++
	}
	applyUpdate(m, acc, deg, dt)
	return work
}

// OrientEdge returns the endpoints of an edge ordered by global vertex
// id.  The flux function is not symmetric under endpoint swap (the
// convective part has a direction), so every processor holding a copy of
// a shared edge must orient it identically; global ids provide the
// processor-independent orientation.
func OrientEdge(m *adapt.Mesh, id int32) (int32, int32) {
	a, b := m.EdgeV[id][0], m.EdgeV[id][1]
	if m.VertGID[a] > m.VertGID[b] {
		a, b = b, a
	}
	return a, b
}

// applyUpdate performs the explicit vertex update u += dt*acc/deg.
func applyUpdate(m *adapt.Mesh, acc, deg []float64, dt float64) {
	for v := range m.Coords {
		if !m.VertAlive[v] || deg[v] == 0 {
			continue
		}
		inv := dt / deg[v]
		for k := 0; k < NComp; k++ {
			m.Sol[v*NComp+k] += inv * acc[v*NComp+k]
		}
	}
}

// TotalMass returns the sum of the density component over alive vertices
// weighted by nothing (a cheap conservation-style diagnostic used in
// tests: the edge scheme's accumulator is antisymmetric, so the
// unweighted update conserves the sum when all vertex degrees are equal;
// tests use meshes where it is conserved to first order).
func TotalMass(m *adapt.Mesh) float64 {
	var t float64
	for v := range m.Coords {
		if m.VertAlive[v] {
			t += m.Sol[v*NComp]
		}
	}
	return t
}
