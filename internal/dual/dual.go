package dual

import (
	"fmt"

	"plum/internal/mesh"
)

// Graph is an undirected vertex- and edge-weighted graph in CSR form.
type Graph struct {
	Xadj   []int32 // offsets into Adjncy, len n+1
	Adjncy []int32 // concatenated neighbour lists
	AdjWgt []int64 // edge weights, parallel to Adjncy
	WComp  []int64 // computational weight per vertex
	WRemap []int64 // remapping weight per vertex
}

// NumVerts returns the number of graph vertices.
func (g *Graph) NumVerts() int { return len(g.Xadj) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adjncy) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency slice of vertex v (do not modify).
func (g *Graph) Neighbors(v int32) []int32 { return g.Adjncy[g.Xadj[v]:g.Xadj[v+1]] }

// EdgeWeights returns the edge-weight slice of vertex v, parallel to
// Neighbors(v).
func (g *Graph) EdgeWeights(v int32) []int64 { return g.AdjWgt[g.Xadj[v]:g.Xadj[v+1]] }

// TotalWComp returns the sum of computational weights.
func (g *Graph) TotalWComp() int64 {
	var t int64
	for _, w := range g.WComp {
		t += w
	}
	return t
}

// FromMesh builds the dual graph of a mesh via its face adjacency, with
// unit vertex and edge weights.
func FromMesh(m *mesh.Mesh) *Graph {
	adj := m.FaceAdjacency()
	n := len(adj)
	g := &Graph{
		Xadj:   make([]int32, n+1),
		WComp:  make([]int64, n),
		WRemap: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		for _, nb := range adj[v] {
			if nb >= 0 {
				g.Xadj[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] += g.Xadj[v]
	}
	g.Adjncy = make([]int32, g.Xadj[n])
	g.AdjWgt = make([]int64, g.Xadj[n])
	pos := make([]int32, n)
	copy(pos, g.Xadj[:n])
	for v := 0; v < n; v++ {
		g.WComp[v] = 1
		g.WRemap[v] = 1
		for _, nb := range adj[v] {
			if nb >= 0 {
				g.Adjncy[pos[v]] = nb
				g.AdjWgt[pos[v]] = 1
				pos[v]++
			}
		}
	}
	return g
}

// SetWeights installs new per-root weights (from adapt.Mesh.RootWeights
// or a refinement prediction).  Slices must have NumVerts entries.
func (g *Graph) SetWeights(wcomp, wremap []int64) {
	if len(wcomp) != g.NumVerts() || len(wremap) != g.NumVerts() {
		panic(fmt.Sprintf("dual: weight lengths (%d,%d) != vertices %d", len(wcomp), len(wremap), g.NumVerts()))
	}
	copy(g.WComp, wcomp)
	copy(g.WRemap, wremap)
}

// WithWeights returns a view of g sharing its (immutable) topology but
// carrying its own weight arrays.  The PLUM drivers replicate one dual
// graph across ranks; per-rank weight views keep SetWeights race-free.
func (g *Graph) WithWeights(wcomp, wremap []int64) *Graph {
	ng := &Graph{Xadj: g.Xadj, Adjncy: g.Adjncy, AdjWgt: g.AdjWgt,
		WComp: make([]int64, g.NumVerts()), WRemap: make([]int64, g.NumVerts())}
	ng.SetWeights(wcomp, wremap)
	return ng
}

// Check validates CSR structure: symmetric adjacency with matching
// weights and no self-loops.
func (g *Graph) Check() error {
	n := g.NumVerts()
	if len(g.Adjncy) != len(g.AdjWgt) {
		return fmt.Errorf("dual: adjncy/adjwgt length mismatch")
	}
	for v := int32(0); v < int32(n); v++ {
		nbs := g.Neighbors(v)
		wts := g.EdgeWeights(v)
		for i, u := range nbs {
			if u == v {
				return fmt.Errorf("dual: self loop at %d", v)
			}
			if u < 0 || int(u) >= n {
				return fmt.Errorf("dual: vertex %d has out-of-range neighbour %d", v, u)
			}
			// find reverse edge
			found := false
			back := g.Neighbors(u)
			bwts := g.EdgeWeights(u)
			for j, w := range back {
				if w == v {
					if bwts[j] != wts[i] {
						return fmt.Errorf("dual: asymmetric edge weight %d-%d", v, u)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dual: edge %d->%d has no reverse", v, u)
			}
		}
	}
	return nil
}

// Agglomerate groups vertices into clusters of roughly the given size
// (breadth-first, contiguous) and returns the coarse graph together with
// the fine-to-coarse map.  The paper suggests this for "extremely large
// initial meshes [where] the partitioning time will be excessive":
// superelements keep the dual graph tractable.
func Agglomerate(g *Graph, size int) (*Graph, []int32) {
	if size <= 1 {
		cmap := make([]int32, g.NumVerts())
		for i := range cmap {
			cmap[i] = int32(i)
		}
		return g, cmap
	}
	n := g.NumVerts()
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var nc int32
	queue := make([]int32, 0, size)
	for start := int32(0); start < int32(n); start++ {
		if cmap[start] >= 0 {
			continue
		}
		// Grow a cluster by BFS from start.
		queue = queue[:0]
		queue = append(queue, start)
		cmap[start] = nc
		count := 1
		for qi := 0; qi < len(queue) && count < size; qi++ {
			for _, nb := range g.Neighbors(queue[qi]) {
				if cmap[nb] < 0 {
					cmap[nb] = nc
					queue = append(queue, nb)
					count++
					if count >= size {
						break
					}
				}
			}
		}
		nc++
	}
	return contract(g, cmap, int(nc)), cmap
}

// Contract builds the coarse graph induced by cmap (nc coarse vertices),
// summing vertex weights and parallel edge weights and dropping
// self-loops.  Used both by Agglomerate and by the multilevel
// partitioner's coarsening phase.
func Contract(g *Graph, cmap []int32, nc int) *Graph { return contract(g, cmap, nc) }

// contract implements Contract.
func contract(g *Graph, cmap []int32, nc int) *Graph {
	cg := &Graph{
		Xadj:   make([]int32, nc+1),
		WComp:  make([]int64, nc),
		WRemap: make([]int64, nc),
	}
	type edge struct {
		u, v int32
	}
	wmap := make(map[edge]int64)
	for v := int32(0); v < int32(len(cmap)); v++ {
		cv := cmap[v]
		cg.WComp[cv] += g.WComp[v]
		cg.WRemap[cv] += g.WRemap[v]
		nbs := g.Neighbors(v)
		wts := g.EdgeWeights(v)
		for i, u := range nbs {
			cu := cmap[u]
			if cu == cv {
				continue
			}
			wmap[edge{cv, cu}] += wts[i]
		}
	}
	// Build CSR from the map deterministically.
	deg := make([]int32, nc)
	for e := range wmap {
		deg[e.u]++
	}
	for c := 0; c < nc; c++ {
		cg.Xadj[c+1] = cg.Xadj[c] + deg[c]
	}
	cg.Adjncy = make([]int32, cg.Xadj[nc])
	cg.AdjWgt = make([]int64, cg.Xadj[nc])
	pos := make([]int32, nc)
	copy(pos, cg.Xadj[:nc])
	// Deterministic: iterate fine vertices in order, insert first
	// occurrence of each coarse edge.
	seen := make(map[edge]bool, len(wmap))
	for v := int32(0); v < int32(len(cmap)); v++ {
		cv := cmap[v]
		for _, u := range g.Neighbors(v) {
			cu := cmap[u]
			if cu == cv {
				continue
			}
			e := edge{cv, cu}
			if seen[e] {
				continue
			}
			seen[e] = true
			cg.Adjncy[pos[cv]] = cu
			cg.AdjWgt[pos[cv]] = wmap[e]
			pos[cv]++
		}
	}
	return cg
}

// ProjectPartition maps a coarse partition back to fine vertices through
// cmap.
func ProjectPartition(cpart []int32, cmap []int32) []int32 {
	part := make([]int32, len(cmap))
	for v, cv := range cmap {
		part[v] = cpart[cv]
	}
	return part
}
