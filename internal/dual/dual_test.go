package dual

import (
	"math/rand"
	"testing"
	"testing/quick"

	"plum/internal/mesh"
)

func boxGraph(nx, ny, nz int) *Graph {
	return FromMesh(mesh.Box(nx, ny, nz, 1, 1, 1))
}

func TestFromMeshStructure(t *testing.T) {
	m := mesh.Box(2, 2, 2, 1, 1, 1)
	g := FromMesh(m)
	if g.NumVerts() != m.NumElems() {
		t.Fatalf("dual has %d vertices, want %d", g.NumVerts(), m.NumElems())
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// Every tet has at most 4 face neighbours.
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		if g.Degree(v) > 4 {
			t.Fatalf("vertex %d has degree %d > 4", v, g.Degree(v))
		}
	}
	// Face accounting: 2*dualEdges + boundaryFaces = 4*elems.
	if 2*g.NumEdges()+m.NumBFaces() != 4*m.NumElems() {
		t.Errorf("face accounting: 2*%d + %d != 4*%d", g.NumEdges(), m.NumBFaces(), m.NumElems())
	}
}

func TestUnitWeights(t *testing.T) {
	g := boxGraph(2, 1, 1)
	if g.TotalWComp() != int64(g.NumVerts()) {
		t.Errorf("initial total wcomp %d, want %d", g.TotalWComp(), g.NumVerts())
	}
}

func TestSetWeights(t *testing.T) {
	g := boxGraph(1, 1, 1)
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for i := range wc {
		wc[i] = int64(i + 1)
		wr[i] = int64(2 * (i + 1))
	}
	g.SetWeights(wc, wr)
	if g.WComp[3] != 4 || g.WRemap[3] != 8 {
		t.Errorf("weights not installed: %v %v", g.WComp[3], g.WRemap[3])
	}
	defer func() {
		if recover() == nil {
			t.Error("SetWeights accepted wrong length")
		}
	}()
	g.SetWeights(wc[:2], wr[:2])
}

func TestAgglomerate(t *testing.T) {
	g := boxGraph(3, 3, 3)
	for _, size := range []int{2, 4, 8} {
		cg, cmap := Agglomerate(g, size)
		if err := cg.Check(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		// Weight conservation.
		var cw int64
		for _, w := range cg.WComp {
			cw += w
		}
		if cw != g.TotalWComp() {
			t.Errorf("size %d: weight %d != %d", size, cw, g.TotalWComp())
		}
		// cmap covers all coarse ids.
		seen := make(map[int32]bool)
		for _, c := range cmap {
			if c < 0 || int(c) >= cg.NumVerts() {
				t.Fatalf("cmap entry %d out of range", c)
			}
			seen[c] = true
		}
		if len(seen) != cg.NumVerts() {
			t.Errorf("size %d: %d coarse ids used of %d", size, len(seen), cg.NumVerts())
		}
		// Compression actually happened.
		if cg.NumVerts() >= g.NumVerts() {
			t.Errorf("size %d: no compression (%d -> %d)", size, g.NumVerts(), cg.NumVerts())
		}
	}
}

func TestAgglomerateSizeOneIsIdentity(t *testing.T) {
	g := boxGraph(2, 2, 1)
	cg, cmap := Agglomerate(g, 1)
	if cg != g {
		t.Error("size-1 agglomeration should return the same graph")
	}
	for i, c := range cmap {
		if c != int32(i) {
			t.Fatal("size-1 cmap not identity")
		}
	}
}

func TestProjectPartition(t *testing.T) {
	g := boxGraph(2, 2, 2)
	cg, cmap := Agglomerate(g, 6)
	cpart := make([]int32, cg.NumVerts())
	for i := range cpart {
		cpart[i] = int32(i % 3)
	}
	part := ProjectPartition(cpart, cmap)
	for v := range part {
		if part[v] != cpart[cmap[v]] {
			t.Fatalf("vertex %d projected wrongly", v)
		}
	}
}

func TestContractPreservesCutProperty(t *testing.T) {
	// Property: contracting and summing edge weights preserves the total
	// weight of edges crossing any cluster boundary.
	prop := func(seed uint8) bool {
		g := boxGraph(2, 2, 2)
		size := 2 + int(seed%6)
		cg, cmap := Agglomerate(g, size)
		// Total cross-cluster fine edge weight.
		var fine int64
		for v := int32(0); v < int32(g.NumVerts()); v++ {
			wts := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if cmap[v] != cmap[u] {
					fine += wts[i]
				}
			}
		}
		var coarse int64
		for _, w := range cg.AdjWgt {
			coarse += w
		}
		return fine == coarse
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestCheckCatchesAsymmetry(t *testing.T) {
	g := boxGraph(1, 1, 1)
	if len(g.AdjWgt) > 0 {
		g.AdjWgt[0] = 42 // breaks symmetry with the reverse edge
		if err := g.Check(); err == nil {
			t.Error("Check accepted asymmetric weights")
		}
	}
}
