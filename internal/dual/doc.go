// Package dual builds and manipulates the dual graph of the initial
// computational mesh, the key representation of the PLUM load balancer
// (paper Section 4.1): the tetrahedral elements of the initial mesh are
// the graph vertices, and an edge connects two graph vertices when the
// corresponding elements share a face.
//
// Each dual vertex carries two weights.  Wcomp — the number of leaf
// elements in the corresponding refinement tree — is the flow-solver
// workload and drives partitioning balance.  Wremap — the total number of
// elements in the tree — is the cost of migrating the element, since all
// descendants move with their root.  Because partitioning always operates
// on this fixed graph, "the repartitioning time depends only on the
// initial problem size and the number of partitions, but not on the size
// of the adapted mesh."
//
// Entry points.  FromMesh derives the graph from an initial mesh;
// WithWeights produces a per-rank weight view sharing the replicated
// topology; SetWeights installs freshly gathered weights before a
// repartition.
//
// Invariants.  The graph topology never changes after construction —
// adaption only updates weights — and vertex order equals initial-mesh
// element order, so a partition vector indexes directly by root element
// id everywhere in the framework.
package dual
