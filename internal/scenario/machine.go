package scenario

import "plum/internal/machine"

// The two scenario machine wrappers.  Both obey the machine.Model
// purity contract — every method except Acquire is a pure function of
// its arguments and the installed cycle number, and Acquire's extra
// delay is a pure function of the injection time — so scenario runs
// inherit the engine's bitwise reproducibility unchanged.

// CycleSpeed applies the spec's per-cycle straggler speed vector on top
// of a base machine: Speed(r) is the base speed times SpeedsAt(cycle)[r].
// The driver calls SetCycle at each epoch boundary (after a barrier, so
// no rank still computes under the previous cycle's speeds); outside
// any call the wrapper behaves as cycle -1 — no slowdown — which is
// what the partitioner's pre-run target derivation sees, keeping the
// balancer blind to the transient exactly as a real system's static
// machine description would be.
type CycleSpeed struct {
	base  machine.Model
	spec  *Spec
	cycle int
}

// SetCycle installs the cycle whose speed vector subsequent Speed calls
// apply.  Idempotent for equal cycles; every rank of the world calls it
// at the epoch boundary (single-token execution serializes the writes).
func (c *CycleSpeed) SetCycle(i int) { c.cycle = i }

// Name implements machine.Model.
func (c *CycleSpeed) Name() string { return c.base.Name() }

// Ranks implements machine.Model.
func (c *CycleSpeed) Ranks() int { return c.base.Ranks() }

// Pair implements machine.Model by delegation.
func (c *CycleSpeed) Pair(src, dst int) machine.LinkParams { return c.base.Pair(src, dst) }

// Speed implements machine.Model: the base speed scaled by the current
// cycle's straggler factor (1 outside the declared window).
func (c *CycleSpeed) Speed(r int) float64 {
	s := c.base.Speed(r)
	st := c.spec.Straggler
	if st == nil || c.cycle < 0 {
		return s
	}
	to := st.To
	if to == 0 {
		to = c.spec.Cycles
	}
	if c.cycle < st.From || c.cycle >= to {
		return s
	}
	for _, sr := range st.Ranks {
		if sr == r {
			return s * st.Slowdown
		}
	}
	return s
}

// Hops implements machine.Model by delegation.
func (c *CycleSpeed) Hops(src, dst int) int { return c.base.Hops(src, dst) }

// Acquire implements machine.Model by delegation.
func (c *CycleSpeed) Acquire(src, dst, nbytes int, depart float64) float64 {
	return c.base.Acquire(src, dst, nbytes, depart)
}

// Contended implements machine.Model by delegation.
func (c *CycleSpeed) Contended(src, dst int) bool { return c.base.Contended(src, dst) }

// Reset implements machine.Model: clears base contention state and
// returns to the pre-run cycle.
func (c *CycleSpeed) Reset() {
	c.base.Reset()
	c.cycle = -1
}

// Background models a co-scheduled job's up-link traffic on a shared
// fat tree: transfers that the base machine reports contended (they
// cross a leaf group, reserving its up-link) pay extra per-byte delay
// whenever their injection lands in the peer job's busy window —
// Duty of every Period seconds, offset by Phase.  The delay is a pure
// function of the base machine's injection time, so the engine's
// deterministic reservation pass makes multi-job contention bitwise
// reproducible, exactly like the fat tree's own queueing.
type Background struct {
	base   machine.Model
	period float64 // peer cycle length, simulated seconds
	busy   float64 // busy seconds per period (duty * period)
	phase  float64 // window offset, simulated seconds
	extra  float64 // extra per-byte delay during busy windows, s/B
}

// Name implements machine.Model.
func (b *Background) Name() string { return b.base.Name() + "+job" }

// Ranks implements machine.Model.
func (b *Background) Ranks() int { return b.base.Ranks() }

// Pair implements machine.Model by delegation: the peer's load is
// transient, so the per-pair constants (what the analytic pricing sees)
// stay the unloaded machine's.
func (b *Background) Pair(src, dst int) machine.LinkParams { return b.base.Pair(src, dst) }

// Speed implements machine.Model by delegation.
func (b *Background) Speed(r int) float64 { return b.base.Speed(r) }

// Hops implements machine.Model by delegation.
func (b *Background) Hops(src, dst int) int { return b.base.Hops(src, dst) }

// busyAt reports whether simulated time t falls in a peer busy window.
func (b *Background) busyAt(t float64) bool {
	if b.busy <= 0 || b.extra <= 0 {
		return false
	}
	x := t + b.phase
	x -= float64(int64(x/b.period)) * b.period
	if x < 0 {
		x += b.period
	}
	return x < b.busy
}

// Acquire implements machine.Model: the base reservation first (the
// job's own up-link queueing), then the peer's residual-bandwidth toll
// when the resulting injection time lands in a busy window.
func (b *Background) Acquire(src, dst, nbytes int, depart float64) float64 {
	t := b.base.Acquire(src, dst, nbytes, depart)
	if b.base.Contended(src, dst) && b.busyAt(t) {
		t += float64(nbytes) * b.extra
	}
	return t
}

// Contended implements machine.Model by delegation: the peer only
// loads links the base machine already serializes.
func (b *Background) Contended(src, dst int) bool { return b.base.Contended(src, dst) }

// Reset implements machine.Model by delegation.
func (b *Background) Reset() { b.base.Reset() }
