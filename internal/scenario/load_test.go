package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// wantFieldError asserts the loader failed with a *FieldError blaming
// the given field.
func wantFieldError(t *testing.T, err error, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want a *FieldError for field %q, got nil", field)
	}
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not a *FieldError: %v", err, err)
	}
	if fe.Field != field {
		t.Errorf("blamed field %q, want %q (%v)", fe.Field, field, err)
	}
}

// TestLoadErrorContract: every class of hostile input returns a
// *FieldError naming the offending field — unknown fields, type
// mismatches, truncation, garbage, trailing data, and constraint
// violations.
func TestLoadErrorContract(t *testing.T) {
	cases := []struct {
		name, in, field string
	}{
		{"unknown field", `{"name":"a","kind":"front","model":"flat","frac":0.1,"warp":9}`, "warp"},
		{"type mismatch", `{"name":"a","kind":"front","model":"flat","frac":"lots"}`, "frac"},
		{"nested type mismatch", `{"name":"a","kind":"front","model":"flat","frac":0.1,
			"front":{"x0":"left"}}`, "front.x0"},
		{"document not object", `[1,2,3]`, "(document)"},
		{"truncated", `{"name":"a","kind":"fr`, "(syntax)"},
		{"garbage", `}{!!`, "(syntax)"},
		{"empty", ``, "(syntax)"},
		{"trailing data", `{"name":"a","kind":"front","model":"flat","frac":0.1,
			"front":{"x0":0.2,"x1":0.8,"width":0.2}} {"second":true}`, "(document)"},
		{"constraint", `{"name":"a","kind":"front","model":"flat","frac":2,
			"front":{"x0":0.2,"x1":0.8,"width":0.2}}`, "frac"},
	}
	for _, tc := range cases {
		_, err := LoadBytes([]byte(tc.in))
		t.Run(tc.name, func(t *testing.T) { wantFieldError(t, err, tc.field) })
	}
}

// TestLoadDirCorpus: the committed corpus loads cleanly, sorted by
// name, with unique names matching their file base names.
func TestLoadDirCorpus(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Errorf("corpus not sorted: %q before %q", specs[i-1].Name, specs[i].Name)
		}
	}
}

// TestLoadDirRejectsDuplicates and empty directories.
func TestLoadDirRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir accepted an empty corpus")
	}
	spec := `{"name":"dup","kind":"front","model":"flat","frac":0.1,
		"front":{"x0":0.2,"x1":0.8,"width":0.2}}`
	writeFile(t, filepath.Join(dir, "dup.json"), spec)
	if _, err := LoadDir(dir); err != nil {
		t.Fatalf("single spec: %v", err)
	}
	// A second file with the same embedded name fails the base-name check
	// first; a byte-identical copy under another name fails either way.
	writeFile(t, filepath.Join(dir, "dup2.json"), spec)
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir accepted two specs named dup")
	}
}

// FuzzLoad: arbitrary bytes must never panic the loader, and every
// failure must be a *FieldError with a non-empty field name.  Inputs
// that load successfully must re-validate (Load never returns a spec
// that Validate rejects).
func FuzzLoad(f *testing.F) {
	seeds := []string{
		`{"name":"front-sweep","kind":"front","model":"smp","frac":0.12,"coarsen_below":0.05,
		  "cycles":3,"front":{"x0":0.25,"x1":0.75,"width":0.17,"radius":0.35}}`,
		`{"name":"burst","kind":"burst","model":"smp","frac":0.1,
		  "burst":{"arrival":1,"peak":0.3,"decay":0.5,"floor":0.03}}`,
		`{"name":"strag","kind":"straggler","model":"flat","frac":0.1,
		  "straggler":{"ranks":[1],"slowdown":0.5,"from":1,"to":3}}`,
		`{"name":"mj","kind":"multijob","model":"fattree","frac":0.1,
		  "multijob":{"period":0.3,"duty":0.5,"load":4}}`,
		`{"name":"a","kind":"front","model":"flat","frac":"lots"}`,
		`{"name":"a","kind":"fr`,
		`}{!!`,
		``,
		`null`,
		`[1,2,3]`,
		`{"name":"a","kind":"front","model":"flat","frac":1e999}`,
		`{"unknown":"field"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadBytes(data)
		if err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("non-FieldError failure %T: %v", err, err)
			}
			if strings.TrimSpace(fe.Field) == "" {
				t.Fatalf("FieldError with empty field: %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil spec with nil error")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Load returned a spec Validate rejects: %v", err)
		}
	})
}
