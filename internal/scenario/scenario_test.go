package scenario

import (
	"math"
	"path/filepath"
	"testing"

	"plum/internal/machine"
	"plum/internal/mesh"
)

// corpusDir is the committed corpus, relative to this package.
const corpusDir = "../../ci/scenarios"

func loadCorpus(t *testing.T) []*Spec {
	t.Helper()
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", corpusDir, err)
	}
	if len(specs) < 8 {
		t.Fatalf("corpus has %d scenarios, want >= 8", len(specs))
	}
	return specs
}

// TestCorpusCoversKinds: the committed corpus exercises every scenario
// family at least once — the ISSUE's coverage floor.
func TestCorpusCoversKinds(t *testing.T) {
	seen := map[string]int{}
	for _, sp := range loadCorpus(t) {
		seen[sp.Kind]++
	}
	for _, kind := range Kinds() {
		if seen[kind] == 0 {
			t.Errorf("corpus has no %q scenario", kind)
		}
	}
}

// TestFrontMonotonic: the front position advances monotonically with
// the cycle number (never backwards), stays inside the domain, and hits
// its declared endpoints — for every committed spec and a synthetic
// adversarial one.
func TestFrontMonotonic(t *testing.T) {
	dom := Domain{LX: 4.7, LY: 1.8}
	specs := loadCorpus(t)
	specs = append(specs, &Spec{
		Name: "degenerate", Kind: KindFront, Model: "flat", P: 4, Cycles: 1, Frac: 0.1,
		Front: &FrontSpec{X0: 0.4, X1: 0.9, Width: 0.2},
	})
	for _, sp := range specs {
		prev := math.Inf(-1)
		for i := 0; i < sp.Cycles; i++ {
			x := sp.FrontX(i, dom)
			if x < prev {
				t.Errorf("%s: FrontX(%d)=%v < FrontX(%d)=%v — front moved backwards",
					sp.Name, i, x, i-1, prev)
			}
			if x < 0 || x > dom.LX {
				t.Errorf("%s: FrontX(%d)=%v outside [0, %v]", sp.Name, i, x, dom.LX)
			}
			prev = x
		}
		if f := sp.Front; f != nil {
			if got, want := sp.FrontX(0, dom), f.X0*dom.LX; math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: FrontX(0)=%v, want x0 %v", sp.Name, got, want)
			}
			last := sp.FrontX(sp.Cycles-1, dom)
			if want := f.X1 * dom.LX; sp.Cycles > 1 && math.Abs(last-want) > 1e-12 {
				t.Errorf("%s: FrontX(last)=%v, want x1 %v", sp.Name, last, want)
			}
		}
	}
}

// TestFracBounds: the marked-edge fraction stays within the spec's
// declared [lo, hi] envelope at every cycle, for every committed spec.
func TestFracBounds(t *testing.T) {
	for _, sp := range loadCorpus(t) {
		lo, hi := sp.FracBounds()
		if lo > hi {
			t.Fatalf("%s: FracBounds lo=%v > hi=%v", sp.Name, lo, hi)
		}
		for i := 0; i < sp.Cycles; i++ {
			f := sp.FracAt(i)
			if f < lo || f > hi {
				t.Errorf("%s: FracAt(%d)=%v outside declared [%v, %v]", sp.Name, i, f, lo, hi)
			}
		}
		if b := sp.Burst; b != nil {
			if got := sp.FracAt(b.Arrival); got != b.Peak {
				t.Errorf("%s: FracAt(arrival)=%v, want peak %v", sp.Name, got, b.Peak)
			}
			if b.Arrival > 0 {
				if got := sp.FracAt(b.Arrival - 1); got != b.Floor {
					t.Errorf("%s: FracAt(arrival-1)=%v, want floor %v", sp.Name, got, b.Floor)
				}
			}
		}
	}
}

// TestStragglerRoundTrip: the per-cycle speed vector round-trips
// through machine.Hetero unchanged — building a Hetero from SpeedsAt
// and reading Speed(r) back reproduces exactly the factors the spec
// declared, for every committed spec and cycle.
func TestStragglerRoundTrip(t *testing.T) {
	for _, sp := range loadCorpus(t) {
		base, err := machine.ByName(sp.Model, sp.P)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		for i := 0; i < sp.Cycles; i++ {
			speeds := sp.SpeedsAt(i)
			if len(speeds) != sp.P {
				t.Fatalf("%s: SpeedsAt(%d) has %d entries, want %d", sp.Name, i, len(speeds), sp.P)
			}
			h := machine.NewHetero(base, speeds)
			for r := 0; r < sp.P; r++ {
				if got, want := h.Speed(r), base.Speed(r)*speeds[r]; got != want {
					t.Errorf("%s: cycle %d rank %d: Hetero speed %v, want %v",
						sp.Name, i, r, got, want)
				}
			}
		}
	}
}

// TestCycleSpeedWindow: the CycleSpeed wrapper applies the slowdown
// only inside the declared window and reports full speed at the pre-run
// cycle (-1) — the blindness that makes the partitioner's targets
// transient-oblivious.
func TestCycleSpeedWindow(t *testing.T) {
	sp := &Spec{
		Name: "w", Kind: KindStraggler, Model: "flat", P: 4, Cycles: 4, Frac: 0.1,
		Straggler: &StragglerSpec{Ranks: []int{2}, Slowdown: 0.5, From: 1, To: 3},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	m, dyn, err := sp.BuildMachine()
	if err != nil {
		t.Fatal(err)
	}
	if dyn == nil {
		t.Fatal("straggler spec built no CycleSpeed wrapper")
	}
	base, _ := machine.ByName("flat", 4)
	// Pre-run (cycle -1): no slowdown anywhere.
	for r := 0; r < 4; r++ {
		if m.Speed(r) != base.Speed(r) {
			t.Errorf("pre-run Speed(%d)=%v, want base %v", r, m.Speed(r), base.Speed(r))
		}
	}
	want := map[int]float64{0: 1, 1: 0.5, 2: 0.5, 3: 1}
	for cycle, factor := range want {
		dyn.SetCycle(cycle)
		if got := m.Speed(2); got != base.Speed(2)*factor {
			t.Errorf("cycle %d: Speed(2)=%v, want %v", cycle, got, base.Speed(2)*factor)
		}
		if got := m.Speed(0); got != base.Speed(0) {
			t.Errorf("cycle %d: non-straggler Speed(0)=%v changed", cycle, got)
		}
	}
	// Reset returns to the pre-run cycle.
	m.Reset()
	if got := m.Speed(2); got != base.Speed(2) {
		t.Errorf("post-Reset Speed(2)=%v, want base", got)
	}
}

// TestBackgroundWindows: the multi-job wrapper tolls only contended
// (inter-group) transfers whose injection lands in a busy window, and
// the analytic plane (Pair) never sees the peer.
func TestBackgroundWindows(t *testing.T) {
	sp := &Spec{
		Name: "mj", Kind: KindMultiJob, Model: "fattree", P: 8, Cycles: 2, Frac: 0.1,
		MultiJob: &MultiJobSpec{Period: 1.0, Duty: 0.5, Load: 4},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	m, _, err := sp.BuildMachine()
	if err != nil {
		t.Fatal(err)
	}
	bg, ok := m.(*Background)
	if !ok {
		t.Fatalf("BuildMachine returned %T, want *Background", m)
	}
	base, _ := machine.ByName("fattree", 8)
	if got, want := m.Pair(0, 7), base.Pair(0, 7); got != want {
		t.Errorf("Pair(0,7)=%v, want unloaded %v — the peer leaked into the analytic plane", got, want)
	}
	if !bg.busyAt(0.1) || bg.busyAt(0.6) {
		t.Errorf("busyAt: got busy(0.1)=%v busy(0.6)=%v, want true/false (duty 0.5, phase 0)",
			bg.busyAt(0.1), bg.busyAt(0.6))
	}
	if bg.busyAt(1.6) || !bg.busyAt(2.1) {
		t.Errorf("busyAt not periodic: busy(1.6)=%v busy(2.1)=%v", bg.busyAt(1.6), bg.busyAt(2.1))
	}
	m.Reset()
	nbytes := 1 << 20
	// Intra-group (uncontended) transfers never pay the toll.
	intra := m.Acquire(0, 1, nbytes, 0.1)
	m.Reset()
	if baseT := base.Acquire(0, 1, nbytes, 0.1); intra != baseT {
		t.Errorf("intra-group Acquire %v, want base %v", intra, baseT)
	}
	base.Reset()
	// An inter-group transfer injected in the busy window pays extra.
	m.Reset()
	busy := m.Acquire(0, 7, nbytes, 0.1)
	base.Reset()
	if baseT := base.Acquire(0, 7, nbytes, 0.1); busy <= baseT {
		t.Errorf("busy-window inter-group Acquire %v not slower than base %v", busy, baseT)
	}
}

// TestSpecValidation: table-driven constraint checks, each naming its
// offending field.
func TestSpecValidation(t *testing.T) {
	valid := func() *Spec {
		return &Spec{Name: "ok", Kind: KindFront, Model: "flat", P: 8, Cycles: 4, Frac: 0.1,
			Front: &FrontSpec{X0: 0.2, X1: 0.8, Width: 0.2}}
	}
	cases := []struct {
		name  string
		mut   func(*Spec)
		field string
	}{
		{"bad name", func(s *Spec) { s.Name = "Bad Name" }, "name"},
		{"empty name", func(s *Spec) { s.Name = "" }, "name"},
		{"unknown kind", func(s *Spec) { s.Kind = "wavefront" }, "kind"},
		{"p too small", func(s *Spec) { s.P = 1 }, "p"},
		{"p too big", func(s *Spec) { s.P = 4096 }, "p"},
		{"cycles zero", func(s *Spec) { s.Cycles = 0 }, "cycles"},
		{"unknown model", func(s *Spec) { s.Model = "dragonfly" }, "model"},
		{"unknown mapper", func(s *Spec) { s.Mapper = "magic" }, "mapper"},
		{"frac zero", func(s *Spec) { s.Frac = 0 }, "frac"},
		{"frac NaN", func(s *Spec) { s.Frac = math.NaN() }, "frac"},
		{"coarsen high", func(s *Spec) { s.CoarsenBelow = 1 }, "coarsen_below"},
		{"front backwards", func(s *Spec) { s.Front.X1 = 0.1 }, "front.x1"},
		{"front width", func(s *Spec) { s.Front.Width = 0 }, "front.width"},
		{"front shape", func(s *Spec) { s.Front.Shape = "sphere" }, "front.shape"},
		{"kind section missing", func(s *Spec) { s.Front = nil }, "front"},
		{"burst arrival", func(s *Spec) {
			s.Burst = &BurstSpec{Arrival: 9, Peak: 0.3, Decay: 0.5}
		}, "burst.arrival"},
		{"burst floor above peak", func(s *Spec) {
			s.Burst = &BurstSpec{Arrival: 1, Peak: 0.2, Decay: 0.5, Floor: 0.3}
		}, "burst.floor"},
		{"straggler rank range", func(s *Spec) {
			s.Straggler = &StragglerSpec{Ranks: []int{8}, Slowdown: 0.5}
		}, "straggler.ranks"},
		{"straggler window", func(s *Spec) {
			s.Straggler = &StragglerSpec{Ranks: []int{0}, Slowdown: 0.5, From: 3, To: 2}
		}, "straggler.from"},
		{"multijob needs fattree", func(s *Spec) {
			s.MultiJob = &MultiJobSpec{Period: 1, Duty: 0.5, Load: 1}
		}, "multijob"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		fe, ok := err.(*FieldError)
		if !ok {
			t.Errorf("%s: error %T is not *FieldError: %v", tc.name, err, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: blamed field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestIndicatorMovesRefinement: the composed indicator actually peaks
// at the front position — the value at the front's current x dominates
// the value at its eventual destination, and the relation flips as the
// front arrives there.
func TestIndicatorMovesRefinement(t *testing.T) {
	dom := Domain{LX: 4.7, LY: 1.8}
	sp := &Spec{
		Name: "m", Kind: KindFront, Model: "flat", P: 4, Cycles: 4, Frac: 0.1,
		Front: &FrontSpec{X0: 0.2, X1: 0.8, Width: 0.15, Radius: 0.3},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	ind := sp.Indicator(dom)
	start := mesh.Vec3{0.2 * dom.LX, dom.LY / 2, 0}
	end := mesh.Vec3{0.8 * dom.LX, dom.LY / 2, 0}
	if f := ind(0); f(start) <= f(end) {
		t.Errorf("cycle 0: indicator at start %v <= at end %v", f(start), f(end))
	}
	if f := ind(sp.Cycles - 1); f(end) <= f(start) {
		t.Errorf("last cycle: indicator at end %v <= at start %v", f(end), f(start))
	}
}

// TestLoadFileNameMismatch: a spec whose name disagrees with its file
// base name is rejected — the corpus/golden pairing invariant.
func TestLoadFileNameMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "other-name.json")
	writeFile(t, path, `{"name":"front-x","kind":"front","model":"flat","frac":0.1,
		"front":{"x0":0.2,"x1":0.8,"width":0.2}}`)
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a name/file mismatch")
	}
}

// TestLoadDefaults: p, cycles, and mapper default as documented.
func TestLoadDefaults(t *testing.T) {
	s, err := LoadBytes([]byte(`{"name":"d","kind":"front","model":"flat","frac":0.1,
		"front":{"x0":0.2,"x1":0.8,"width":0.2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.P != 8 || s.Cycles != 4 || s.Mapper != "heu" {
		t.Errorf("defaults: p=%d cycles=%d mapper=%q, want 8/4/heu", s.P, s.Cycles, s.Mapper)
	}
}
