// Package scenario is the declarative layer that turns a config file
// into a family of unsteady adaption workloads.  The paper evaluates
// load balancing on exactly three refinement strategies (Real_1/2/3)
// over one rotor mesh; a scenario generalizes that to time-varying
// dynamics composed from the adapt package's indicator primitives and
// the machine package's topology models:
//
//   - front: a moving refinement front (the rotor-wake tracking of the
//     paper's target application) — a cylinder or plane indicator whose
//     position advances monotonically with the cycle number.
//   - burst: bursty adaption (shock arrival) — the marked-edge fraction
//     idles at a floor, spikes to a peak at the arrival cycle, and
//     decays geometrically back toward the floor.
//   - straggler: rank stragglers and transient slowdowns — per-rank
//     speed factors applied through a machine.Hetero-style wrapper for
//     a declared window of cycles, invisible to the analytic gain/cost
//     pricing (the partitioner's targets are derived before the run).
//   - multijob: two unsteady cycles sharing a fat tree — the co-
//     scheduled job's up-link traffic is modeled as a deterministic
//     periodic background load that inflates inter-group injection
//     times during its busy windows.
//
// A Spec is loaded from strict JSON (Load/LoadFile/LoadDir): unknown
// fields, type mismatches, and constraint violations all return a
// *FieldError naming the offending field — never a panic — so a hostile
// or truncated config file fails loudly and precisely.
//
// Every world built from a Spec is a pure function of it: the indicator
// sequence, the per-cycle marked fraction, and the machine wrappers are
// all deterministic, so a scenario's ledger is byte-reproducible and a
// committed corpus of (spec, golden ledger) pairs doubles as the
// balancer's regression suite (ci/scenarios, gated by plumdiff -gate).
//
// Entry points.  Load parses and validates one spec; LoadDir loads a
// corpus in name order.  Spec.Indicator composes the per-cycle error
// indicator for a Domain; Spec.FracAt/FracBounds give the marked-edge
// fraction schedule and its declared envelope; Spec.BuildMachine
// instantiates the topology with the straggler/multijob wrappers
// applied; Spec.SpeedsAt exposes the per-cycle speed vector (the
// factors round-trip through machine.Hetero unchanged).
package scenario
