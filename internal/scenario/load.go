package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Strict config loading.  The loader is the trust boundary between a
// config file and the simulator, so it is deliberately unforgiving:
// unknown fields, type mismatches, trailing garbage, truncation, and
// every constraint violation return a *FieldError naming the offending
// field.  Hostile input must never panic — the fuzz harness drives this
// entry point with arbitrary bytes.

// Load parses and validates one scenario spec from JSON, applying the
// defaults (p=8, cycles=4, mapper=heu) before validation.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, asFieldError(err)
	}
	// Trailing non-whitespace after the spec object is a malformed file,
	// not a second document.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fieldErr("(document)", "trailing data after the spec object")
	}
	s.applyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadBytes is Load over a byte slice.
func LoadBytes(data []byte) (*Spec, error) { return Load(bytes.NewReader(data)) }

// LoadFile loads the spec at path and additionally requires the file's
// base name (sans .json) to equal the spec's name — the invariant that
// lets the corpus gate pair scenario files with golden ledgers.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := LoadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base := strings.TrimSuffix(filepath.Base(path), ".json"); base != s.Name {
		return nil, fmt.Errorf("%s: %w", path,
			fieldErr("name", "spec name %q must match the file base name %q", s.Name, base))
	}
	return s, nil
}

// LoadDir loads every *.json spec in dir, sorted by scenario name, and
// rejects duplicate names.  Golden ledgers (*.jsonl) and other files
// are ignored.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	sort.Strings(paths)
	seen := make(map[string]bool)
	specs := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		s, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("%s: %w", p, fieldErr("name", "duplicate scenario name %q", s.Name))
		}
		seen[s.Name] = true
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// applyDefaults fills the optional knobs Load promises.
func (s *Spec) applyDefaults() {
	if s.P == 0 {
		s.P = 8
	}
	if s.Cycles == 0 {
		s.Cycles = 4
	}
	if s.Mapper == "" {
		s.Mapper = "heu"
	}
}

// asFieldError converts an encoding/json decode failure into the named
// *FieldError contract.  Type mismatches carry the field; syntax-level
// failures (truncation, garbage) are named "(syntax)".
func asFieldError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		field := typeErr.Field
		if field == "" {
			field = "(document)"
		}
		return fieldErr(field, "cannot decode %s into %s", typeErr.Value, typeErr.Type)
	}
	// DisallowUnknownFields reports `json: unknown field "xyz"`; surface
	// the quoted name as the offending field.
	msg := err.Error()
	if i := strings.Index(msg, `unknown field "`); i >= 0 {
		rest := msg[i+len(`unknown field "`):]
		if j := strings.IndexByte(rest, '"'); j > 0 {
			return fieldErr(rest[:j], "unknown field")
		}
		// JSON allows "" as a key; keep the field name non-empty.
		return fieldErr("(unknown)", "unknown field %q", "")
	}
	return fieldErr("(syntax)", "%v", err)
}
