package scenario

import (
	"fmt"
	"math"

	"plum/internal/adapt"
	"plum/internal/machine"
	"plum/internal/mesh"
)

// Kind names a scenario family.  The kind picks the league-table
// grouping and requires its matching section; the other sections remain
// composable (a front scenario may also declare a burst, a straggler
// scenario a moving front, ...).
const (
	KindFront     = "front"
	KindBurst     = "burst"
	KindStraggler = "straggler"
	KindMultiJob  = "multijob"
)

// Kinds lists the scenario families in presentation order.
func Kinds() []string {
	return []string{KindFront, KindBurst, KindStraggler, KindMultiJob}
}

// Spec is one declarative scenario: a complete description of an
// unsteady adaption workload.  Every field is data — no hooks — so a
// spec round-trips through JSON and two equal specs generate bitwise
// identical worlds.
type Spec struct {
	// Name identifies the scenario (corpus file base name, ledger run
	// key, league-table row).  Lowercase letters, digits, and dashes.
	Name string `json:"name"`
	// Kind is the scenario family: front, burst, straggler, multijob.
	Kind string `json:"kind"`
	// P is the simulated processor count (default 8).
	P int `json:"p,omitempty"`
	// Cycles is the number of adapt-balance-solve epochs (default 4).
	Cycles int `json:"cycles,omitempty"`
	// Model names the base machine topology (machine.ByName).
	Model string `json:"model"`
	// Mapper selects the processor reassignment algorithm: "heu"
	// (default), "opt", "bmcm", or "topo".
	Mapper string `json:"mapper,omitempty"`
	// Frac is the base marked-edge fraction per cycle; a burst section
	// overrides it with its floor/peak schedule.
	Frac float64 `json:"frac"`
	// CoarsenBelow releases resolution behind the feature: edges whose
	// indicator value falls below it are coarsened before refining.
	CoarsenBelow float64 `json:"coarsen_below,omitempty"`

	Front     *FrontSpec     `json:"front,omitempty"`
	Burst     *BurstSpec     `json:"burst,omitempty"`
	Straggler *StragglerSpec `json:"straggler,omitempty"`
	MultiJob  *MultiJobSpec  `json:"multijob,omitempty"`
}

// FrontSpec moves a shock-surface indicator across the domain: the
// front's x position advances linearly from X0 to X1 (fractions of the
// domain length) over the run's cycles.
type FrontSpec struct {
	// Shape is the indicator surface: "cylinder" (default) or "plane".
	Shape string `json:"shape,omitempty"`
	// X0 and X1 are the start and end positions as fractions of the
	// domain's x extent; X1 >= X0 keeps the advance monotone.
	X0 float64 `json:"x0"`
	X1 float64 `json:"x1"`
	// Radius and Width size the surface and its decay length, as
	// fractions of the domain's y extent.  Radius is ignored by planes.
	Radius float64 `json:"radius,omitempty"`
	Width  float64 `json:"width"`
}

// BurstSpec schedules a shock arrival: the marked fraction sits at
// Floor until the Arrival cycle, spikes to Peak, then decays
// geometrically by Decay per cycle (never below Floor).
type BurstSpec struct {
	Arrival int     `json:"arrival"`
	Peak    float64 `json:"peak"`
	Decay   float64 `json:"decay"`
	Floor   float64 `json:"floor"`
}

// StragglerSpec slows a set of ranks by a constant factor for a window
// of cycles: From <= cycle < To.  A zero To means the whole run.  The
// slowdown is applied through the same per-rank speed mechanism as
// machine.Hetero, but only inside the window — the balancer's
// partitioner targets, derived before the run, never see it.
type StragglerSpec struct {
	Ranks    []int   `json:"ranks"`
	Slowdown float64 `json:"slowdown"`
	From     int     `json:"from,omitempty"`
	To       int     `json:"to,omitempty"`
}

// MultiJobSpec models a co-scheduled unsteady job contending for the
// fat tree's up-links: during the peer's busy windows — Duty of every
// Period simulated seconds, offset by Phase periods — each inter-group
// transfer pays Load extra per-byte times the leaf link's, as if the
// up-link's residual bandwidth were split with the peer's burst.
type MultiJobSpec struct {
	Period float64 `json:"period"`
	Duty   float64 `json:"duty"`
	Load   float64 `json:"load"`
	Phase  float64 `json:"phase,omitempty"`
}

// Domain carries the indicator geometry of the global mesh: the box
// extents the fractional spec coordinates scale against.
type Domain struct {
	LX, LY float64
}

// FrontX returns the front's absolute x position at the given cycle:
// linear interpolation from X0 to X1 over the run, monotone
// nondecreasing in the cycle number whenever X1 >= X0 (pinned by the
// generator property tests).  Scenarios without a front section keep
// the static mid-domain position.
func (s *Spec) FrontX(cycle int, dom Domain) float64 {
	if s.Front == nil {
		return 0.5 * dom.LX
	}
	den := s.Cycles - 1
	if den < 1 {
		den = 1
	}
	t := float64(cycle) / float64(den)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return (s.Front.X0 + (s.Front.X1-s.Front.X0)*t) * dom.LX
}

// Indicator composes the per-cycle error-indicator function of the
// scenario over the given domain: a moving cylinder or plane front when
// a front section is declared, else the static mid-domain cylinder of
// the paper's experiments.
func (s *Spec) Indicator(dom Domain) func(cycle int) func(mesh.Vec3) float64 {
	radius, width := 0.35, 0.17
	shape := "cylinder"
	if f := s.Front; f != nil {
		if f.Radius > 0 {
			radius = f.Radius
		}
		width = f.Width
		if f.Shape != "" {
			shape = f.Shape
		}
	}
	r, w := radius*dom.LY, width*dom.LY
	return func(cycle int) func(mesh.Vec3) float64 {
		x := s.FrontX(cycle, dom)
		if shape == "plane" {
			return adapt.ShockPlaneIndicator(
				mesh.Vec3{x, 0, 0}, mesh.Vec3{1, 0, 0}, w)
		}
		return adapt.ShockCylinderIndicator(
			mesh.Vec3{x, dom.LY / 2, 0}, mesh.Vec3{0, 0, 1}, r, w)
	}
}

// FracAt returns the marked-edge fraction for the given cycle: the
// burst schedule when declared, else the constant base fraction.
func (s *Spec) FracAt(cycle int) float64 {
	b := s.Burst
	if b == nil {
		return s.Frac
	}
	if cycle < b.Arrival {
		return b.Floor
	}
	f := b.Peak * math.Pow(b.Decay, float64(cycle-b.Arrival))
	if f < b.Floor {
		return b.Floor
	}
	return f
}

// FracBounds returns the declared envelope of the marked-edge fraction:
// every FracAt value over the run's cycles lies in [lo, hi] (pinned by
// the generator property tests).
func (s *Spec) FracBounds() (lo, hi float64) {
	if b := s.Burst; b != nil {
		return b.Floor, b.Peak
	}
	return s.Frac, s.Frac
}

// SpeedsAt returns the per-rank speed vector of the given cycle: all
// ones outside a straggler window, the slowdown factors inside it.  The
// vector is exactly what the machine wrapper multiplies into the base
// speeds, so it round-trips through machine.Hetero unchanged — the
// contract the generator property tests pin.
func (s *Spec) SpeedsAt(cycle int) []float64 {
	speeds := make([]float64, s.P)
	for i := range speeds {
		speeds[i] = 1
	}
	st := s.Straggler
	if st == nil {
		return speeds
	}
	to := st.To
	if to == 0 {
		to = s.Cycles
	}
	if cycle < st.From || cycle >= to {
		return speeds
	}
	for _, r := range st.Ranks {
		speeds[r] = st.Slowdown
	}
	return speeds
}

// BuildMachine instantiates the scenario's topology: the named base
// machine, wrapped with the multi-job background load and/or the
// per-cycle straggler speeds when declared.  The returned *CycleSpeed
// is nil when no straggler section exists; otherwise the driver must
// call SetCycle at each epoch boundary.  Each call returns fresh
// contention state.
func (s *Spec) BuildMachine() (machine.Model, *CycleSpeed, error) {
	m, err := machine.ByName(s.Model, s.P)
	if err != nil {
		return nil, nil, err
	}
	if mj := s.MultiJob; mj != nil {
		m = &Background{
			base:   m,
			period: mj.Period,
			busy:   mj.Duty * mj.Period,
			phase:  mj.Phase * mj.Period,
			extra:  mj.Load * machine.SP2Link().PerByte,
		}
	}
	if s.Straggler == nil {
		return m, nil, nil
	}
	cs := &CycleSpeed{base: m, spec: s, cycle: -1}
	return cs, cs, nil
}

// Validate checks every cross-field constraint of the spec, returning a
// *FieldError naming the first offending field.  Load calls it; direct
// constructors should too.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fieldErr("name", "required")
	}
	for _, c := range s.Name {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return fieldErr("name", "must be lowercase letters, digits, and dashes, got %q", s.Name)
		}
	}
	switch s.Kind {
	case KindFront, KindBurst, KindStraggler, KindMultiJob:
	case "":
		return fieldErr("kind", "required (one of %v)", Kinds())
	default:
		return fieldErr("kind", "unknown kind %q (one of %v)", s.Kind, Kinds())
	}
	if s.P < 2 || s.P > 1024 {
		return fieldErr("p", "must be in [2, 1024], got %d", s.P)
	}
	if s.Cycles < 1 || s.Cycles > 64 {
		return fieldErr("cycles", "must be in [1, 64], got %d", s.Cycles)
	}
	if _, err := machine.ByName(s.Model, s.P); err != nil {
		return fieldErr("model", "unknown model %q (one of %v)", s.Model, machine.Names())
	}
	switch s.Mapper {
	case "", "heu", "opt", "bmcm", "topo":
	default:
		return fieldErr("mapper", "unknown mapper %q (one of heu, opt, bmcm, topo)", s.Mapper)
	}
	if !inUnit(s.Frac) || s.Frac == 0 {
		return fieldErr("frac", "must be in (0, 1], got %v", s.Frac)
	}
	if s.CoarsenBelow < 0 || s.CoarsenBelow >= 1 || math.IsNaN(s.CoarsenBelow) {
		return fieldErr("coarsen_below", "must be in [0, 1), got %v", s.CoarsenBelow)
	}
	if err := s.validateSections(); err != nil {
		return err
	}
	// The kind promises its own dynamics are present.
	switch {
	case s.Kind == KindFront && s.Front == nil:
		return fieldErr("front", "required for kind %q", KindFront)
	case s.Kind == KindBurst && s.Burst == nil:
		return fieldErr("burst", "required for kind %q", KindBurst)
	case s.Kind == KindStraggler && s.Straggler == nil:
		return fieldErr("straggler", "required for kind %q", KindStraggler)
	case s.Kind == KindMultiJob && s.MultiJob == nil:
		return fieldErr("multijob", "required for kind %q", KindMultiJob)
	}
	return nil
}

func (s *Spec) validateSections() error {
	if f := s.Front; f != nil {
		switch f.Shape {
		case "", "cylinder", "plane":
		default:
			return fieldErr("front.shape", "must be cylinder or plane, got %q", f.Shape)
		}
		if !inUnit(f.X0) || !inUnit(f.X1) {
			return fieldErr("front.x0", "positions must be in [0, 1], got x0=%v x1=%v", f.X0, f.X1)
		}
		if f.X1 < f.X0 {
			return fieldErr("front.x1", "must be >= x0 (monotone advance), got x0=%v x1=%v", f.X0, f.X1)
		}
		if f.Radius < 0 || f.Radius > 1 || math.IsNaN(f.Radius) {
			return fieldErr("front.radius", "must be in [0, 1] (fraction of LY), got %v", f.Radius)
		}
		if f.Width <= 0 || f.Width > 1 || math.IsNaN(f.Width) {
			return fieldErr("front.width", "must be in (0, 1] (fraction of LY), got %v", f.Width)
		}
	}
	if b := s.Burst; b != nil {
		if b.Arrival < 0 || b.Arrival >= s.Cycles {
			return fieldErr("burst.arrival", "must be in [0, cycles), got %d with cycles=%d", b.Arrival, s.Cycles)
		}
		if !inUnit(b.Peak) || b.Peak == 0 {
			return fieldErr("burst.peak", "must be in (0, 1], got %v", b.Peak)
		}
		if b.Decay <= 0 || b.Decay >= 1 || math.IsNaN(b.Decay) {
			return fieldErr("burst.decay", "must be in (0, 1), got %v", b.Decay)
		}
		if b.Floor < 0 || b.Floor > b.Peak || math.IsNaN(b.Floor) {
			return fieldErr("burst.floor", "must be in [0, peak], got floor=%v peak=%v", b.Floor, b.Peak)
		}
	}
	if st := s.Straggler; st != nil {
		if len(st.Ranks) == 0 {
			return fieldErr("straggler.ranks", "at least one rank required")
		}
		for _, r := range st.Ranks {
			if r < 0 || r >= s.P {
				return fieldErr("straggler.ranks", "rank %d out of range [0, %d)", r, s.P)
			}
		}
		if st.Slowdown <= 0 || st.Slowdown > 1 || math.IsNaN(st.Slowdown) {
			return fieldErr("straggler.slowdown", "must be in (0, 1], got %v", st.Slowdown)
		}
		to := st.To
		if to == 0 {
			to = s.Cycles
		}
		if st.From < 0 || st.From >= to || to > s.Cycles {
			return fieldErr("straggler.from", "window must satisfy 0 <= from < to <= cycles,"+
				" got from=%d to=%d cycles=%d", st.From, st.To, s.Cycles)
		}
	}
	if mj := s.MultiJob; mj != nil {
		if s.Model != "fattree" {
			return fieldErr("multijob", "requires model \"fattree\" (shared up-links), got %q", s.Model)
		}
		if mj.Period <= 0 || math.IsInf(mj.Period, 0) || math.IsNaN(mj.Period) {
			return fieldErr("multijob.period", "must be a positive duration in simulated seconds, got %v", mj.Period)
		}
		if !inUnit(mj.Duty) {
			return fieldErr("multijob.duty", "must be in [0, 1], got %v", mj.Duty)
		}
		if mj.Load < 0 || mj.Load > 1e6 || math.IsNaN(mj.Load) {
			return fieldErr("multijob.load", "must be in [0, 1e6] (per-byte multiples of the leaf link), got %v", mj.Load)
		}
		if mj.Phase < 0 || mj.Phase >= 1 || math.IsNaN(mj.Phase) {
			return fieldErr("multijob.phase", "must be in [0, 1) (fraction of a period), got %v", mj.Phase)
		}
	}
	return nil
}

// inUnit reports x in [0, 1] and finite.
func inUnit(x float64) bool { return x >= 0 && x <= 1 && !math.IsNaN(x) }

// FieldError is every loader and validation failure: the JSON field
// that offends and why.  Hostile input never panics and never produces
// an anonymous error — the fuzz harness pins both.
type FieldError struct {
	Field  string
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("scenario: field %q: %s", e.Field, e.Reason)
}

func fieldErr(field, format string, args ...any) error {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
