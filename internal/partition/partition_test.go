package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
)

func boxGraph(nx, ny, nz int) *dual.Graph {
	return dual.FromMesh(mesh.Box(nx, ny, nz, float64(nx), float64(ny), float64(nz)))
}

func checkPartition(t *testing.T, g *dual.Graph, part []int32, k int, tol float64) {
	t.Helper()
	if len(part) != g.NumVerts() {
		t.Fatalf("partition length %d != %d", len(part), g.NumVerts())
	}
	for v, p := range part {
		if p < 0 || int(p) >= k {
			t.Fatalf("vertex %d assigned to invalid part %d", v, p)
		}
	}
	if imb := Imbalance(g, part, k); imb > tol {
		t.Errorf("imbalance %.3f exceeds tolerance %.3f", imb, tol)
	}
}

func TestPartitionBalanced(t *testing.T) {
	g := boxGraph(6, 6, 6) // 1296 vertices
	for _, k := range []int{2, 4, 8, 16} {
		part := Partition(g, k, Default())
		checkPartition(t, g, part, k, 1.10)
	}
}

func TestPartitionCutBeatsRandom(t *testing.T) {
	g := boxGraph(6, 6, 6)
	k := 8
	part := Partition(g, k, Default())
	cut := EdgeCut(g, part)
	// Striped assignment as a baseline.
	striped := make([]int32, g.NumVerts())
	for v := range striped {
		striped[v] = int32(v % k)
	}
	stripedCut := EdgeCut(g, striped)
	if cut >= stripedCut {
		t.Errorf("multilevel cut %d not better than striped %d", cut, stripedCut)
	}
}

func TestPartitionK1(t *testing.T) {
	g := boxGraph(2, 2, 2)
	part := Partition(g, 1, Default())
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
}

func TestPartitionWeighted(t *testing.T) {
	g := boxGraph(4, 4, 4)
	// Heavily skewed weights: one corner region 10x heavier.
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		if v < g.NumVerts()/8 {
			wc[v] = 10
		} else {
			wc[v] = 1
		}
		wr[v] = wc[v]
	}
	g.SetWeights(wc, wr)
	part := Partition(g, 4, Default())
	checkPartition(t, g, part, 4, 1.15)
}

func TestRepartitionStaysClose(t *testing.T) {
	g := boxGraph(5, 5, 5)
	k := 8
	part := Partition(g, k, Default())
	// Perturb the weights moderately (simulating adaption).
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		wc[v] = 1
		if part[v] == 0 {
			wc[v] = 3 // part 0's region became heavier
		}
		wr[v] = wc[v]
	}
	g.SetWeights(wc, wr)
	reseeded := Repartition(g, k, part, Default())
	checkPartition(t, g, reseeded, k, 1.12)
	scratch := Partition(g, k, Default())
	checkPartition(t, g, scratch, k, 1.12)
	// The repartition must keep more vertices in place than a scratch
	// partition does (the parallel-MeTiS remapping-cost advantage).
	same := func(a []int32) int {
		n := 0
		for v := range a {
			if a[v] == part[v] {
				n++
			}
		}
		return n
	}
	if same(reseeded) <= same(scratch) {
		t.Errorf("repartition kept %d vertices, scratch kept %d — seeding gives no benefit",
			same(reseeded), same(scratch))
	}
	if same(reseeded) < g.NumVerts()/2 {
		t.Errorf("repartition moved more than half the mesh (%d/%d kept)", same(reseeded), g.NumVerts())
	}
}

func TestRepartitionFixesImbalance(t *testing.T) {
	g := boxGraph(5, 5, 5)
	k := 4
	part := Partition(g, k, Default())
	// Make part 2's region extremely heavy.
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		wc[v] = 1
		if part[v] == 2 {
			wc[v] = 8
		}
		wr[v] = 1
	}
	g.SetWeights(wc, wr)
	if Imbalance(g, part, k) < 1.5 {
		t.Skip("perturbation did not create imbalance")
	}
	newPart := Repartition(g, k, part, Default())
	checkPartition(t, g, newPart, k, 1.12)
}

func TestEdgeCutSymmetricAndExact(t *testing.T) {
	g := boxGraph(2, 2, 2)
	part := make([]int32, g.NumVerts())
	for v := range part {
		part[v] = int32(v % 2)
	}
	cut := EdgeCut(g, part)
	// Brute-force count.
	var want int64
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		wts := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u > v && part[u] != part[v] {
				want += wts[i]
			}
		}
	}
	if cut != want {
		t.Errorf("EdgeCut = %d, want %d", cut, want)
	}
}

func TestImbalancePerfect(t *testing.T) {
	g := boxGraph(2, 2, 1) // 24 elements
	part := make([]int32, g.NumVerts())
	for v := range part {
		part[v] = int32(v / 6) // 4 parts of 6
	}
	if imb := Imbalance(g, part, 4); imb != 1.0 {
		t.Errorf("perfect split imbalance = %v", imb)
	}
}

func TestHeavyEdgeMatchingValid(t *testing.T) {
	g := boxGraph(3, 3, 3)
	cmap, nc := heavyEdgeMatching(g)
	if nc >= g.NumVerts() {
		t.Fatalf("matching made no progress: %d -> %d", g.NumVerts(), nc)
	}
	// Each coarse vertex has 1 or 2 fine constituents, and pairs are
	// adjacent.
	groups := make(map[int32][]int32)
	for v, cv := range cmap {
		groups[cv] = append(groups[cv], int32(v))
	}
	if len(groups) != nc {
		t.Fatalf("cmap uses %d ids, nc=%d", len(groups), nc)
	}
	for cv, vs := range groups {
		if len(vs) > 2 {
			t.Fatalf("coarse vertex %d has %d constituents", cv, len(vs))
		}
		if len(vs) == 2 {
			adjacent := false
			for _, u := range g.Neighbors(vs[0]) {
				if u == vs[1] {
					adjacent = true
				}
			}
			if !adjacent {
				t.Fatalf("matched pair %v not adjacent", vs)
			}
		}
	}
}

func TestGreedyGrowCoversAllParts(t *testing.T) {
	g := boxGraph(4, 4, 4)
	for _, k := range []int{2, 3, 7} {
		part := greedyGrow(g, k, nil)
		seen := make(map[int32]bool)
		for _, p := range part {
			seen[p] = true
		}
		if len(seen) != k {
			t.Errorf("k=%d: only %d parts used", k, len(seen))
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := boxGraph(4, 4, 4)
	a := Partition(g, 8, Default())
	b := Partition(g, 8, Default())
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("Partition is not deterministic")
		}
	}
}

func TestPartitionPropertyRandomWeights(t *testing.T) {
	prop := func(seeds []uint8) bool {
		g := boxGraph(3, 3, 3)
		wc := make([]int64, g.NumVerts())
		wr := make([]int64, g.NumVerts())
		for v := range wc {
			wc[v] = 1
			wr[v] = 1
		}
		for i, s := range seeds {
			if i >= len(wc) {
				break
			}
			wc[i] = int64(s%16) + 1
		}
		g.SetWeights(wc, wr)
		part := Partition(g, 6, Default())
		for _, p := range part {
			if p < 0 || p >= 6 {
				return false
			}
		}
		return Imbalance(g, part, 6) < 1.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestParallelRepartitionMatchesConstraints(t *testing.T) {
	g := boxGraph(4, 4, 4)
	for _, p := range []int{1, 2, 4, 8} {
		var result []int32
		msg.Run(p, func(c *msg.Comm) {
			res := ParallelRepartition(c, g, 8, nil, Default())
			if c.Rank() == 0 {
				result = res.Part
			}
			// All ranks must agree.
			h := int64(0)
			for _, x := range res.Part {
				h = h*31 + int64(x)
			}
			if c.AllreduceInt64(h, msg.MaxInt64) != c.AllreduceInt64(h, func(a, b int64) int64 {
				if a < b {
					return a
				}
				return b
			}) {
				t.Errorf("p=%d: ranks disagree on the partition", p)
			}
		})
		checkPartition(t, g, result, 8, 1.15)
	}
}

func TestParallelRepartitionSeeded(t *testing.T) {
	g := boxGraph(4, 4, 4)
	prev := Partition(g, 4, Default())
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		wc[v] = 1
		if prev[v] == 1 {
			wc[v] = 4
		}
		wr[v] = 1
	}
	g.SetWeights(wc, wr)
	var part []int32
	msg.Run(4, func(c *msg.Comm) {
		res := ParallelRepartition(c, g, 4, prev, Default())
		if c.Rank() == 0 {
			part = res.Part
		}
	})
	checkPartition(t, g, part, 4, 1.2)
	kept := 0
	for v := range part {
		if part[v] == prev[v] {
			kept++
		}
	}
	if kept < g.NumVerts()/3 {
		t.Errorf("seeded parallel repartition kept only %d/%d vertices", kept, g.NumVerts())
	}
}

func TestBlockRange(t *testing.T) {
	n, p := 103, 8
	covered := 0
	for r := 0; r < p; r++ {
		lo, hi := blockRange(n, p, r)
		covered += hi - lo
		if lo > hi {
			t.Fatalf("rank %d: lo %d > hi %d", r, lo, hi)
		}
	}
	if covered != n {
		t.Errorf("blocks cover %d vertices, want %d", covered, n)
	}
}
