package partition

import "plum/internal/dual"

// Additional partition-quality metrics.  The paper's requirement for the
// repartitioner (Section 4.2) is that it "minimize the total execution
// time by balancing the computational loads and reducing the
// interprocessor communication time"; edge cut approximates the latter,
// and the metrics here expose the rest of the standard picture.

// CommVolume returns the total communication volume of a partition: for
// each vertex, the number of *distinct* other parts its neighbourhood
// touches (the number of ghost copies the owner must update each solver
// iteration).  A better proxy for runtime communication than raw edge
// cut when several cut edges lead to the same neighbour part — and,
// since the implicit workload landed, directly realized as per-iteration
// halo traffic rather than a proxy.
//
// Distinct neighbour parts are counted with a per-part stamp array
// versioned by vertex, so the cost is O(E + K) with O(K) memory instead
// of the O(deg * parts-per-vertex) scan of a seen-list — the difference
// matters at large part counts (P*F partitions), where the balancer
// evaluates this metric on every adaption step.
func CommVolume(g *dual.Graph, part []int32) int64 {
	k := int32(0)
	for _, p := range part {
		if p >= k {
			k = p + 1
		}
	}
	stamp := make([]int32, k)
	for i := range stamp {
		stamp[i] = -1
	}
	var vol int64
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		pv := part[v]
		for _, u := range g.Neighbors(v) {
			p := part[u]
			if p != pv && stamp[p] != v {
				stamp[p] = v
				vol++
			}
		}
	}
	return vol
}

// BoundaryVerts returns the number of vertices with at least one
// neighbour in another part (the partition surface).
func BoundaryVerts(g *dual.Graph, part []int32) int {
	n := 0
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		for _, u := range g.Neighbors(v) {
			if part[u] != part[v] {
				n++
				break
			}
		}
	}
	return n
}

// NeighborParts returns, for each part, how many other parts it shares a
// boundary with (the message fan-out of a halo exchange).
func NeighborParts(g *dual.Graph, part []int32, k int) []int {
	adj := make([]map[int32]bool, k)
	for i := range adj {
		adj[i] = make(map[int32]bool)
	}
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		for _, u := range g.Neighbors(v) {
			if part[u] != part[v] {
				adj[part[v]][part[u]] = true
			}
		}
	}
	out := make([]int, k)
	for i := range adj {
		out[i] = len(adj[i])
	}
	return out
}

// Quality bundles the standard partition metrics for reporting.
type Quality struct {
	EdgeCut       int64
	CommVolume    int64
	BoundaryVerts int
	Imbalance     float64
	MaxNeighbors  int
}

// Evaluate computes all metrics for a partition.
func Evaluate(g *dual.Graph, part []int32, k int) Quality {
	q := Quality{
		EdgeCut:       EdgeCut(g, part),
		CommVolume:    CommVolume(g, part),
		BoundaryVerts: BoundaryVerts(g, part),
		Imbalance:     Imbalance(g, part, k),
	}
	for _, n := range NeighborParts(g, part, k) {
		if n > q.MaxNeighbors {
			q.MaxNeighbors = n
		}
	}
	return q
}
