package partition

import (
	"fmt"
	"math"

	"plum/internal/dual"
)

// Options tunes the partitioner.  The zero value is usable; Default fills
// in the standard tuning.
type Options struct {
	// ImbalanceTol is the allowed ratio of the heaviest part to the
	// average part weight (MeTiS default 1.03; we use 1.05).
	ImbalanceTol float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (scaled by k); 0 means max(128, 16*k).
	CoarsenTo int
	// MaxRefinePasses bounds boundary refinement sweeps per level.
	MaxRefinePasses int
	// TargetShares, when non-nil, holds one relative target weight per
	// part (length k): part j's target load is total*TargetShares[j]/sum.
	// Heterogeneous machines set shares proportional to processor speed
	// (machine.SpeedShares) so slow ranks receive proportionally less
	// work.  Nil means equal shares — the paper's uniform machine.
	TargetShares []float64
}

// Default returns the standard options.
func Default() Options {
	return Options{ImbalanceTol: 1.05, MaxRefinePasses: 8}
}

// withDefaults fills the zero-valued tuning fields from Default while
// keeping every explicitly set field (TargetShares included) — the one
// place the "zero value is usable" promise is implemented, so a future
// Options field cannot be silently dropped by a caller's local copy of
// this fallback.
func (o Options) withDefaults() Options {
	if o.ImbalanceTol == 0 {
		o.ImbalanceTol = Default().ImbalanceTol
	}
	if o.MaxRefinePasses == 0 {
		o.MaxRefinePasses = Default().MaxRefinePasses
	}
	return o
}

func (o Options) coarsenTarget(k int) int {
	if o.CoarsenTo > 0 {
		return o.CoarsenTo
	}
	t := 16 * k
	if t < 128 {
		t = 128
	}
	return t
}

// Partition divides g into k parts balanced by WComp, minimizing edge
// cut.  The result maps each vertex to a part in [0,k).
func Partition(g *dual.Graph, k int, opt Options) []int32 {
	return multilevel(g, k, nil, opt)
}

// Repartition divides g into k parts using prev (the current assignment)
// as the initial guess, so the new partition stays close to the old one
// and the eventual remapping cost is small.
func Repartition(g *dual.Graph, k int, prev []int32, opt Options) []int32 {
	if len(prev) != g.NumVerts() {
		panic(fmt.Sprintf("partition: prev length %d != vertices %d", len(prev), g.NumVerts()))
	}
	return multilevel(g, k, prev, opt)
}

// level is one rung of the multilevel hierarchy.
type level struct {
	g    *dual.Graph
	cmap []int32 // fine vertex -> coarse vertex of the next level
}

// multilevel runs coarsen / initial-partition / uncoarsen+refine.
func multilevel(g *dual.Graph, k int, prev []int32, opt Options) []int32 {
	opt = opt.withDefaults()
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if opt.TargetShares != nil && len(opt.TargetShares) != k {
		panic(fmt.Sprintf("partition: %d target shares for %d parts", len(opt.TargetShares), k))
	}
	if k == 1 {
		return make([]int32, g.NumVerts())
	}
	if k >= g.NumVerts() {
		// Degenerate: one vertex per part.
		part := make([]int32, g.NumVerts())
		for i := range part {
			part[i] = int32(i)
		}
		return part
	}

	target := opt.coarsenTarget(k)
	var levels []level
	cur := g
	curPrev := prev
	prevByLevel := [][]int32{curPrev}
	for cur.NumVerts() > target {
		cmap, nc := heavyEdgeMatching(cur)
		if nc >= cur.NumVerts() { // matching stalled
			break
		}
		coarse := dual.Contract(cur, cmap, nc)
		levels = append(levels, level{g: cur, cmap: cmap})
		if curPrev != nil {
			cp := make([]int32, nc)
			for i := range cp {
				cp[i] = -1
			}
			for v, cv := range cmap {
				if cp[cv] < 0 {
					cp[cv] = curPrev[v]
				}
			}
			curPrev = cp
		}
		prevByLevel = append(prevByLevel, curPrev)
		cur = coarse
	}

	// Initial partition on the coarsest graph.
	var part []int32
	if curPrev != nil {
		part = append([]int32(nil), curPrev...)
		rebalance(cur, part, k, opt)
	} else {
		part = greedyGrow(cur, k, opt.TargetShares)
		rebalance(cur, part, k, opt)
	}
	refine(cur, part, k, opt)

	// Uncoarsen: project and refine each finer level.
	for li := len(levels) - 1; li >= 0; li-- {
		part = dual.ProjectPartition(part, levels[li].cmap)
		rebalance(levels[li].g, part, k, opt)
		refine(levels[li].g, part, k, opt)
	}
	return part
}

// heavyEdgeMatching computes a matching preferring heavy edges
// (deterministic: vertices visited in index order, ties to the smaller
// neighbour index) and returns the fine-to-coarse map and the coarse
// vertex count.
func heavyEdgeMatching(g *dual.Graph) (cmap []int32, nc int) {
	n := g.NumVerts()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	for v := int32(0); v < int32(n); v++ {
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		nbs := g.Neighbors(v)
		wts := g.EdgeWeights(v)
		for i, u := range nbs {
			if match[u] >= 0 {
				continue
			}
			if wts[i] > bestW || (wts[i] == bestW && u < best) {
				best, bestW = u, wts[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // matched with itself
		}
	}
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var c int32
	for v := int32(0); v < int32(n); v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = c
		if match[v] != v {
			cmap[match[v]] = c
		}
		c++
	}
	return cmap, int(c)
}

// greedyGrow produces an initial k-way partition by greedy graph growing:
// regions are grown one at a time from an unassigned seed, preferring
// frontier vertices most connected to the region, until each reaches the
// target weight — uniform, or proportional to shares when given.
func greedyGrow(g *dual.Graph, k int, shares []float64) []int32 {
	n := g.NumVerts()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	var shareSuffix []float64 // shareSuffix[p] = sum(shares[p:])
	if shares != nil {
		shareSuffix = make([]float64, k+1)
		for p := k - 1; p >= 0; p-- {
			shareSuffix[p] = shareSuffix[p+1] + shares[p]
		}
	}
	total := g.TotalWComp()
	assignedW := int64(0)
	assignedN := 0
	for p := int32(0); p < int32(k-1); p++ {
		var targetW int64
		if shares == nil {
			remainingParts := int64(k) - int64(p)
			targetW = (total - assignedW + remainingParts - 1) / remainingParts
		} else {
			targetW = int64(math.Ceil(float64(total-assignedW) * shares[p] / shareSuffix[p]))
		}
		// Seed: first unassigned vertex (deterministic).
		seed := int32(-1)
		for v := int32(0); v < int32(n); v++ {
			if part[v] < 0 {
				seed = v
				break
			}
		}
		if seed < 0 {
			break
		}
		// Grow by repeatedly taking the frontier vertex with the largest
		// connection to the region.
		conn := make(map[int32]int64) // unassigned frontier vertex -> connectivity
		take := func(v int32) {
			part[v] = p
			assignedW += g.WComp[v]
			assignedN++
			delete(conn, v)
			wts := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if part[u] < 0 {
					conn[u] += wts[i]
				}
			}
		}
		take(seed)
		regionW := g.WComp[seed]
		for regionW < targetW && len(conn) > 0 {
			best := int32(-1)
			var bestC int64 = -1
			for u, c := range conn {
				if c > bestC || (c == bestC && (best < 0 || u < best)) {
					best, bestC = u, c
				}
			}
			take(best)
			regionW += g.WComp[best]
		}
		// Region became disconnected from the unassigned remainder; the
		// next seed scan handles it.
	}
	for v := int32(0); v < int32(n); v++ {
		if part[v] < 0 {
			part[v] = int32(k - 1)
		}
	}
	return part
}
