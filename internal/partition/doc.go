// Package partition implements a multilevel k-way graph partitioner in
// the style of (parallel) MeTiS, which the paper uses for mesh
// repartitioning (Section 4.2): the graph is coarsened by heavy-edge
// matching, the coarsest graph is partitioned by greedy graph growing,
// and the partition is projected back through the levels with boundary
// greedy refinement ("a combination of boundary greedy and Kernighan-Lin
// refinement").
//
// Entry points.  Partition partitions from scratch (the initial mapping
// of Fig. 1); Repartition uses the previous assignment as the initial
// guess — the parallel-MeTiS behaviour the paper highlights: "an
// additional benefit ... is the potential reduction in remapping cost
// since parallel MeTiS, unlike the serial version, uses the previous
// partition as the initial guess."  ParallelRepartition runs the
// machinery under the message-passing runtime with per-rank simulated
// cost accounting (parallel.go).  EdgeCut, CommVolume, and Evaluate
// score partition quality; PartWeights sums per-part loads.
//
// Invariants.  Options.TargetShares carries per-part target loads for
// heterogeneous machines (machine.SpeedShares /
// machine.SpeedSharesAssigned); nil shares reproduce the paper's equal
// targets exactly.  Partitioning is deterministic: matching, growing,
// and refinement all break ties by vertex order, so the same graph,
// weights, and options always yield the identical partition — a
// precondition for every bitwise-pinned experiment downstream.
package partition
