package partition

import (
	"testing"

	"plum/internal/dual"
	"plum/internal/mesh"
)

// commVolumeRef is the obviously correct O(deg^2) reference the stamped
// implementation must match: per vertex, count distinct foreign parts
// with a linear seen-scan.
func commVolumeRef(g *dual.Graph, part []int32) int64 {
	var vol int64
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		var seen []int32
		for _, u := range g.Neighbors(v) {
			p := part[u]
			if p == part[v] {
				continue
			}
			dup := false
			for _, q := range seen {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, p)
			}
		}
		vol += int64(len(seen))
	}
	return vol
}

func TestCommVolumeMatchesReference(t *testing.T) {
	g := dual.FromMesh(mesh.Box(5, 4, 3, 5, 4, 3))
	// A real partition and two adversarial ones: all-one-part (zero
	// volume) and a scattered pseudo-random spread over many parts.
	parts := [][]int32{
		Partition(g, 7, Default()),
		make([]int32, g.NumVerts()),
		make([]int32, g.NumVerts()),
	}
	x := uint64(99)
	for v := range parts[2] {
		x = x*6364136223846793005 + 1442695040888963407
		parts[2][v] = int32(x % 23)
	}
	for i, part := range parts {
		want := commVolumeRef(g, part)
		if got := CommVolume(g, part); got != want {
			t.Errorf("case %d: CommVolume %d, reference %d", i, got, want)
		}
	}
	if CommVolume(g, parts[1]) != 0 {
		t.Error("single-part partition must have zero communication volume")
	}
}
