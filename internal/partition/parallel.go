package partition

import (
	"plum/internal/dual"
	"plum/internal/msg"
)

// Distributed repartitioning driver (the parallel-MeTiS stand-in).
//
// The paper's Section 4.2 argues that "serial partitioners are inherently
// inefficient since they do not scale in either time or space with the
// number of processors" and runs an alpha version of parallel MeTiS.  The
// scheme implemented here follows the coarse-grained parallel multilevel
// pattern:
//
//  1. Every rank owns a contiguous block of dual-graph vertices and
//     coarsens it *recursively* with local heavy-edge matching (several
//     levels, no communication) — work shrinks roughly as 1/P.
//  2. The host gathers each rank's fine-to-coarse map and the coarse
//     subgraph sizes, assembles the global coarse graph (resolving
//     cross-block edges), and partitions it with the serial multilevel
//     code, seeded by the previous assignment.
//  3. Coarse assignments return to their ranks, are projected through
//     the local coarsening hierarchy, and the fine assignment is
//     replicated with one gather + broadcast.
//  4. One distributed boundary-refinement sweep polishes the result.
//
// Under the simulated machine model this reproduces the paper's Fig. 6
// shape: with few processors the per-rank local coarsening dominates
// (compute bound, ~1/P); with many processors the host's coarse graph
// grows (cross-block edges cannot be matched locally) and the gather/
// broadcast latency terms grow, so the curve turns back up — a shallow
// minimum at intermediate P, "not unexpected" per the paper.

// ParallelRepartitionResult carries the new assignment plus accounting.
type ParallelRepartitionResult struct {
	Part        []int32 // new part per dual vertex (replicated on all ranks)
	CoarseVerts int     // size of the assembled coarse graph
}

// blockRange returns rank r's contiguous vertex block [lo,hi).
func blockRange(n, p, r int) (lo, hi int) {
	lo = r * n / p
	hi = (r + 1) * n / p
	return lo, hi
}

// ParallelRepartition runs the distributed repartitioning protocol on the
// calling rank.  Every rank must pass the same replicated graph and
// previous assignment (PLUM replicates the initial-mesh dual graph, whose
// size is fixed for the whole computation).  prev may be nil for an
// initial partition.  Per-rank compute costs are charged to the simulated
// clock through c.Compute.
func ParallelRepartition(c *msg.Comm, g *dual.Graph, k int, prev []int32, opt Options) ParallelRepartitionResult {
	opt = opt.withDefaults()
	n := g.NumVerts()
	p := c.Size()
	lo, hi := blockRange(n, p, c.Rank())

	// Phase 1: recursive local coarsening of the owned block down to a
	// small target (but never below a handful of vertices per part).
	target := 4 * k / p
	if target < 32 {
		target = 32
	}
	cmap, matchWork := localMultilevelCoarsen(g, lo, hi, target)
	c.Compute(matchWork)

	// Phase 2: host assembles the global coarse graph.  Each rank sends
	// its coarse vertex count, its fine->coarse block map, its coarse
	// vertex weights, and nothing else — the host derives coarse edges
	// (including cross-block ones) from the replicated fine graph.
	payload := make([]int64, 0, (hi-lo)+1)
	nlocal := int64(0)
	for _, cv := range cmap {
		if int64(cv)+1 > nlocal {
			nlocal = int64(cv) + 1
		}
	}
	if hi == lo {
		nlocal = 0
	}
	payload = append(payload, nlocal)
	for _, cv := range cmap {
		payload = append(payload, int64(cv))
	}
	blocks := c.Gather(0, msg.PutInts(payload))

	var part []int32
	if c.Rank() == 0 {
		// Build the global fine->coarse map with per-rank offsets.
		gcmap := make([]int32, n)
		offset := int32(0)
		for r := 0; r < p; r++ {
			vals := msg.GetInts(blocks[r])
			rlo, rhi := blockRange(n, p, r)
			for i := 0; i < rhi-rlo; i++ {
				gcmap[rlo+i] = offset + int32(vals[1+i])
			}
			offset += int32(vals[0])
		}
		nc := int(offset)
		coarse := dual.Contract(g, gcmap, nc)
		var cprev []int32
		if prev != nil {
			cprev = make([]int32, nc)
			for i := range cprev {
				cprev[i] = -1
			}
			for v, cv := range gcmap {
				if cprev[cv] < 0 {
					cprev[cv] = prev[v]
				}
			}
		}
		var cpart []int32
		if cprev != nil {
			cpart = Repartition(coarse, k, cprev, opt)
		} else {
			cpart = Partition(coarse, k, opt)
		}
		part = dual.ProjectPartition(cpart, gcmap)
		// Host compute charge: contraction over the fine adjacency plus
		// multilevel partitioning of the coarse graph.
		c.Compute(0.3*float64(len(g.Adjncy)) + 2.0*float64(len(coarse.Adjncy)))
		// Stash the coarse size for the result (broadcast below).
		part = append(part, int32(nc))
	}

	// Phase 3: replicate the fine assignment (one broadcast of n words).
	flat := make([]int64, 0, n+1)
	if c.Rank() == 0 {
		for _, x := range part {
			flat = append(flat, int64(x))
		}
	}
	flat = c.BcastInts(0, flat)
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(flat[i])
	}
	coarseVerts := int(flat[n])

	// Phase 4: one distributed boundary-refinement sweep over the owned
	// block (each rank refines its block against the replicated
	// assignment; moves are combined by allgather).  This mirrors the
	// graph-coloring-parallelized refinement of parallel MeTiS at a
	// coarse grain.
	var blockEdges int64
	for v := lo; v < hi; v++ {
		blockEdges += int64(g.Degree(int32(v)))
	}
	moves := refineBlock(g, out, k, lo, hi, opt)
	c.Compute(0.3 * float64(blockEdges))
	moveWords := make([]int64, 0, 2*len(moves))
	for _, mv := range moves {
		moveWords = append(moveWords, int64(mv[0]), int64(mv[1]))
	}
	allMoves := c.Allgather(msg.PutInts(moveWords))
	for r := 0; r < p; r++ {
		words := msg.GetInts(allMoves[r])
		for i := 0; i+1 < len(words); i += 2 {
			out[words[i]] = int32(words[i+1])
		}
	}
	return ParallelRepartitionResult{Part: out, CoarseVerts: coarseVerts}
}

// localMultilevelCoarsen recursively applies heavy-edge matching to the
// subgraph induced on [lo,hi) until at most target coarse vertices
// remain or matching stalls.  Returns the block-relative fine-to-coarse
// map and the abstract work performed (edges visited).
func localMultilevelCoarsen(g *dual.Graph, lo, hi, target int) (cmap []int32, work float64) {
	nloc := hi - lo
	cmap = make([]int32, nloc)
	for i := range cmap {
		cmap[i] = int32(i)
	}
	if nloc == 0 {
		return cmap, 0
	}
	// Level-0 adjacency restricted to the block, in block-relative ids.
	type adj struct {
		nbr []int32
		wgt []int64
	}
	cur := make([]adj, nloc)
	for v := lo; v < hi; v++ {
		nbs := g.Neighbors(int32(v))
		wts := g.EdgeWeights(int32(v))
		for i, u := range nbs {
			if int(u) >= lo && int(u) < hi {
				cur[v-lo].nbr = append(cur[v-lo].nbr, u-int32(lo))
				cur[v-lo].wgt = append(cur[v-lo].wgt, wts[i])
			}
		}
	}
	ncur := nloc
	for ncur > target {
		// Heavy-edge matching on the current level.
		match := make([]int32, ncur)
		for i := range match {
			match[i] = -1
		}
		for v := 0; v < ncur; v++ {
			work += float64(len(cur[v].nbr))
			if match[v] >= 0 {
				continue
			}
			best := int32(-1)
			var bestW int64 = -1
			for i, u := range cur[v].nbr {
				if match[u] >= 0 || u == int32(v) {
					continue
				}
				if cur[v].wgt[i] > bestW || (cur[v].wgt[i] == bestW && u < best) {
					best, bestW = u, cur[v].wgt[i]
				}
			}
			if best >= 0 {
				match[v] = best
				match[best] = int32(v)
			} else {
				match[v] = int32(v)
			}
		}
		lmap := make([]int32, ncur)
		for i := range lmap {
			lmap[i] = -1
		}
		var nc int32
		for v := 0; v < ncur; v++ {
			if lmap[v] >= 0 {
				continue
			}
			lmap[v] = nc
			if match[v] != int32(v) {
				lmap[match[v]] = nc
			}
			nc++
		}
		// Stop when the reduction rate stalls (contracted slab graphs can
		// develop star structures where strict matching absorbs only one
		// leaf per level); the host absorbs the larger coarse graph, as
		// real multilevel partitioners do.
		if float64(nc) > 0.85*float64(ncur) {
			break
		}
		// Contract the level.
		next := make([]adj, nc)
		type ce struct{ a, b int32 }
		seen := make(map[ce]int, ncur)
		for v := 0; v < ncur; v++ {
			cv := lmap[v]
			for i, u := range cur[v].nbr {
				cu := lmap[u]
				if cu == cv {
					continue
				}
				key := ce{cv, cu}
				if idx, ok := seen[key]; ok {
					next[cv].wgt[idx] += cur[v].wgt[i]
				} else {
					seen[key] = len(next[cv].nbr)
					next[cv].nbr = append(next[cv].nbr, cu)
					next[cv].wgt = append(next[cv].wgt, cur[v].wgt[i])
				}
				work += 0.5
			}
		}
		// Compose into cmap.
		for i := range cmap {
			cmap[i] = lmap[cmap[i]]
		}
		cur = next
		ncur = int(nc)
	}
	return cmap, work
}

// refineBlock computes greedy boundary moves for vertices in [lo,hi)
// against the full assignment, respecting the balance bound with global
// weights.  It mutates part for local decisions and returns the (vertex,
// newPart) moves made.
func refineBlock(g *dual.Graph, part []int32, k, lo, hi int, opt Options) [][2]int32 {
	w := PartWeights(g, part, k)
	caps := partCaps(g.TotalWComp(), k, opt.ImbalanceTol, opt.TargetShares)
	var moves [][2]int32
	for v := int32(lo); v < int32(hi); v++ {
		p := part[v]
		parts, conn := connectivity(g, part, v)
		var internal int64
		external := false
		for j, q := range parts {
			if q == p {
				internal = conn[j]
			} else {
				external = true
			}
		}
		if !external {
			continue
		}
		bestPart := int32(-1)
		var bestGain int64 = 0
		for j, q := range parts {
			if q == p || w[q]+g.WComp[v] > caps[q] {
				continue
			}
			gain := conn[j] - internal
			if gain > bestGain {
				bestGain = gain
				bestPart = q
			}
		}
		if bestPart >= 0 && bestGain > 0 {
			w[p] -= g.WComp[v]
			w[bestPart] += g.WComp[v]
			part[v] = bestPart
			moves = append(moves, [2]int32{v, bestPart})
		}
	}
	return moves
}
