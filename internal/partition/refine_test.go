package partition

import (
	"testing"

	"plum/internal/dual"
)

// pathGraph builds a weighted path 0-1-2-...-(n-1).
func pathGraph(n int, vw []int64) *dual.Graph {
	g := &dual.Graph{
		Xadj:   make([]int32, n+1),
		WComp:  make([]int64, n),
		WRemap: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		deg := 2
		if v == 0 || v == n-1 {
			deg = 1
		}
		g.Xadj[v+1] = g.Xadj[v] + int32(deg)
	}
	g.Adjncy = make([]int32, g.Xadj[n])
	g.AdjWgt = make([]int64, g.Xadj[n])
	pos := 0
	for v := 0; v < n; v++ {
		if v > 0 {
			g.Adjncy[pos] = int32(v - 1)
			g.AdjWgt[pos] = 1
			pos++
		}
		if v < n-1 {
			g.Adjncy[pos] = int32(v + 1)
			g.AdjWgt[pos] = 1
			pos++
		}
		g.WComp[v] = 1
		g.WRemap[v] = 1
	}
	if vw != nil {
		copy(g.WComp, vw)
	}
	return g
}

func TestRebalanceFixesGrossImbalance(t *testing.T) {
	g := pathGraph(16, nil)
	// Everything on part 0.
	part := make([]int32, 16)
	if Imbalance(g, part, 4) < 3.9 {
		t.Fatal("setup not imbalanced")
	}
	rebalance(g, part, 4, Default())
	if imb := Imbalance(g, part, 4); imb > 1.3 {
		t.Errorf("rebalance left imbalance %.2f", imb)
	}
}

func TestRefineImprovesCutOnPath(t *testing.T) {
	g := pathGraph(16, nil)
	// Interleaved assignment: worst possible cut (15).
	part := make([]int32, 16)
	for v := range part {
		part[v] = int32(v % 2)
	}
	before := EdgeCut(g, part)
	refine(g, part, 2, Default())
	after := EdgeCut(g, part)
	if after >= before {
		t.Errorf("refinement did not improve cut: %d -> %d", before, after)
	}
	if imb := Imbalance(g, part, 2); imb > 1.2 {
		t.Errorf("refinement broke balance: %.2f", imb)
	}
}

func TestRefineRespectsBalanceBound(t *testing.T) {
	// A path where all the cut gain is in making one part huge; the
	// balance constraint must prevent it.
	g := pathGraph(8, nil)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	refine(g, part, 2, Default())
	if imb := Imbalance(g, part, 2); imb > 1.3 {
		t.Errorf("refine produced imbalance %.2f", imb)
	}
}

func TestConnectivity(t *testing.T) {
	g := pathGraph(4, nil)
	part := []int32{0, 0, 1, 1}
	parts, conn := connectivity(g, part, 1)
	// Vertex 1 neighbours: 0 (part 0), 2 (part 1).
	sum := map[int32]int64{}
	for i, p := range parts {
		sum[p] += conn[i]
	}
	if sum[0] != 1 || sum[1] != 1 {
		t.Errorf("connectivity = %v %v", parts, conn)
	}
}

func TestPartWeightsAndMax(t *testing.T) {
	g := pathGraph(6, []int64{5, 1, 1, 1, 1, 7})
	part := []int32{0, 0, 0, 1, 1, 1}
	w := PartWeights(g, part, 2)
	if w[0] != 7 || w[1] != 9 {
		t.Errorf("weights = %v", w)
	}
	if MaxPartWeight(g, part, 2) != 9 {
		t.Error("max weight wrong")
	}
}
