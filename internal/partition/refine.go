package partition

import "plum/internal/dual"

// Boundary greedy refinement and explicit rebalancing.  MeTiS applies
// "a combination of boundary greedy and Kernighan-Lin refinement" during
// uncoarsening; the greedy variant implemented here moves boundary
// vertices to the neighbouring part with the largest cut gain whenever
// the balance constraint allows it, sweeping until no improvement.

// PartWeights returns the WComp load of each part.
func PartWeights(g *dual.Graph, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v, p := range part {
		w[p] += g.WComp[v]
	}
	return w
}

// MaxPartWeight returns the heaviest part load (the paper's Wmax, which
// determines solver time).
func MaxPartWeight(g *dual.Graph, part []int32, k int) int64 {
	var max int64
	for _, w := range PartWeights(g, part, k) {
		if w > max {
			max = w
		}
	}
	return max
}

// EdgeCut returns the total weight of edges crossing between parts.
func EdgeCut(g *dual.Graph, part []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		wts := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if part[v] != part[u] {
				cut += wts[i]
			}
		}
	}
	return cut / 2
}

// Imbalance returns max part load divided by the ideal (average) load.
func Imbalance(g *dual.Graph, part []int32, k int) float64 {
	w := PartWeights(g, part, k)
	var max, total int64
	for _, x := range w {
		total += x
		if x > max {
			max = x
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(k)
	return float64(max) / avg
}

// partCaps returns each part's balance bound.  With nil shares every
// part gets the paper's uniform bound — bit-for-bit the scalar formula
// the refinement always used; with shares (hetero-aware balancing) the
// bound scales with each part's target share, so a half-speed rank's
// part fills to half the load.
func partCaps(total int64, k int, tol float64, shares []float64) []int64 {
	caps := make([]int64, k)
	if shares == nil {
		m := int64(tol * float64(total) / float64(k))
		if m < total/int64(k)+1 {
			m = total/int64(k) + 1
		}
		for i := range caps {
			caps[i] = m
		}
		return caps
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	for i := range caps {
		ideal := float64(total) * shares[i] / sum
		m := int64(tol * ideal)
		if m < int64(ideal)+1 {
			m = int64(ideal) + 1
		}
		caps[i] = m
	}
	return caps
}

// connectivity computes, for vertex v, the total edge weight from v to
// each part present in its neighbourhood (returned as parallel slices).
func connectivity(g *dual.Graph, part []int32, v int32) (parts []int32, conn []int64) {
	nbs := g.Neighbors(v)
	wts := g.EdgeWeights(v)
	for i, u := range nbs {
		p := part[u]
		found := false
		for j, q := range parts {
			if q == p {
				conn[j] += wts[i]
				found = true
				break
			}
		}
		if !found {
			parts = append(parts, p)
			conn = append(conn, wts[i])
		}
	}
	return parts, conn
}

// refine performs boundary greedy sweeps: each boundary vertex moves to
// the neighbouring part with the largest positive cut gain, provided the
// destination stays under the balance bound.  Deterministic (index
// order, smallest destination part on ties).
func refine(g *dual.Graph, part []int32, k int, opt Options) {
	n := g.NumVerts()
	w := PartWeights(g, part, k)
	caps := partCaps(g.TotalWComp(), k, opt.ImbalanceTol, opt.TargetShares)
	passes := opt.MaxRefinePasses
	if passes <= 0 {
		passes = 8
	}
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := int32(0); v < int32(n); v++ {
			p := part[v]
			parts, conn := connectivity(g, part, v)
			var internal int64
			external := false
			for j, q := range parts {
				if q == p {
					internal = conn[j]
				} else {
					external = true
				}
			}
			if !external {
				continue // not a boundary vertex
			}
			bestPart := int32(-1)
			var bestGain int64 = 0
			for j, q := range parts {
				if q == p {
					continue
				}
				if w[q]+g.WComp[v] > caps[q] {
					continue
				}
				gain := conn[j] - internal
				if gain > bestGain || (gain == bestGain && gain > 0 && (bestPart < 0 || q < bestPart)) {
					bestGain = gain
					bestPart = q
				}
			}
			if bestPart >= 0 && bestGain > 0 {
				w[p] -= g.WComp[v]
				w[bestPart] += g.WComp[v]
				part[v] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// rebalance moves boundary vertices out of overweight parts into the
// part with the most headroom (preferring moves with the least cut
// damage) until every part is within its balance bound or no progress
// can be made.  Needed when the previous partition seeds repartitioning:
// the new weights may make the old assignment arbitrarily imbalanced.
func rebalance(g *dual.Graph, part []int32, k int, opt Options) {
	n := g.NumVerts()
	w := PartWeights(g, part, k)
	total := g.TotalWComp()
	caps := partCaps(total, k, opt.ImbalanceTol, opt.TargetShares)
	for iter := 0; iter < 64; iter++ {
		// Most overloaded part (largest excess over its own bound).
		hp := int32(-1)
		var hx int64
		for p, x := range w {
			if x > caps[p] && x-caps[p] > hx {
				hp, hx = int32(p), x-caps[p]
			}
		}
		if hp < 0 {
			return
		}
		// Move boundary vertices of hp to their best underweight
		// neighbouring part, best cut gain first (single sweep).
		progress := false
		for v := int32(0); v < int32(n); v++ {
			if part[v] != hp || w[hp] <= caps[hp] {
				continue
			}
			parts, conn := connectivity(g, part, v)
			var internal int64
			for j, q := range parts {
				if q == hp {
					internal = conn[j]
				}
			}
			bestPart := int32(-1)
			var bestScore int64 = -1 << 62
			for j, q := range parts {
				if q == hp || w[q]+g.WComp[v] > caps[q] {
					continue
				}
				score := conn[j] - internal - (w[q]*int64(k))/(total+1) // prefer gain, then lighter parts
				if score > bestScore {
					bestScore = score
					bestPart = q
				}
			}
			if bestPart >= 0 {
				w[hp] -= g.WComp[v]
				w[bestPart] += g.WComp[v]
				part[v] = bestPart
				progress = true
			}
		}
		if !progress {
			// Boundary moves exhausted: move any vertex of hp (graph may
			// be locally trapped); pick the part with the most headroom.
			lp := int32(0)
			for p := 1; p < k; p++ {
				if caps[p]-w[p] > caps[lp]-w[lp] {
					lp = int32(p)
				}
			}
			movedAny := false
			for v := int32(0); v < int32(n) && w[hp] > caps[hp]; v++ {
				if part[v] != hp {
					continue
				}
				if w[lp]+g.WComp[v] > caps[lp] {
					continue
				}
				w[hp] -= g.WComp[v]
				w[lp] += g.WComp[v]
				part[v] = lp
				movedAny = true
			}
			if !movedAny {
				return
			}
		}
	}
}
