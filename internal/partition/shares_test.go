package partition

import (
	"testing"

	"plum/internal/dual"
	"plum/internal/msg"
)

// Hetero-aware balancing: with TargetShares installed, part loads must
// track the shares — a half-speed rank's part carries about half the
// work — while nil shares keep the uniform behaviour bit for bit.

func shareLoads(g *dual.Graph, part []int32, k int) []int64 {
	return PartWeights(g, part, k)
}

func TestPartitionTargetShares(t *testing.T) {
	g := boxGraph(6, 6, 6)
	const k = 4
	opt := Default()
	opt.TargetShares = []float64{1, 1, 0.5, 0.5}
	part := Partition(g, k, opt)
	w := shareLoads(g, part, k)
	total := g.TotalWComp()
	// Ideal: fast parts get total/3 each, slow parts total/6 each.
	for p, share := range opt.TargetShares {
		ideal := float64(total) * share / 3.0
		if ratio := float64(w[p]) / ideal; ratio < 0.75 || ratio > 1.15 {
			t.Errorf("part %d load %d is %.2fx its share-scaled ideal %.0f",
				p, w[p], ratio, ideal)
		}
	}
	// The slow parts must be genuinely lighter than the fast ones.
	if w[2] >= w[0] || w[3] >= w[1] {
		t.Errorf("half-share parts not lighter: loads %v", w)
	}
}

func TestRepartitionTargetShares(t *testing.T) {
	g := boxGraph(6, 6, 6)
	const k = 4
	prev := Partition(g, k, Default())
	opt := Default()
	opt.TargetShares = []float64{1, 1, 1, 0.25}
	part := Repartition(g, k, prev, opt)
	w := shareLoads(g, part, k)
	for p := 0; p < 3; p++ {
		if w[3] >= w[p] {
			t.Errorf("quarter-share part 3 (%d) not lighter than part %d (%d): %v",
				w[3], p, w[p], w)
		}
	}
}

func TestParallelRepartitionTargetShares(t *testing.T) {
	g := boxGraph(6, 6, 4)
	const p = 4
	prev := Partition(g, p, Default())
	opt := Default()
	opt.TargetShares = []float64{1, 1, 0.5, 0.5}
	msg.Run(p, func(c *msg.Comm) {
		res := ParallelRepartition(c, g, p, prev, opt)
		w := shareLoads(g, res.Part, p)
		if c.Rank() == 0 {
			if w[2] >= w[0] || w[3] >= w[1] {
				t.Errorf("half-share parts not lighter after parallel repartition: %v", w)
			}
		}
	})
}

func TestTargetSharesLengthValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched TargetShares length")
		}
	}()
	g := boxGraph(3, 3, 3)
	opt := Default()
	opt.TargetShares = []float64{1, 1}
	Partition(g, 4, opt)
}
