package profile

import (
	"testing"

	"plum/internal/event"
	"plum/internal/machine"
)

// fixedTrace is a hand-built two-rank trace exercising every
// aggregation path: compute spans, sends, a receive that idled on the
// wire (classified halo), a receive that found its message buffered
// (no wait), and a collective-tagged receive wait.
//
//	rank 0: compute [0, 0.10], send 64B to 1 [0.10, 0.12] (msg 1,
//	        arrival 0.15, tag 3003), compute [0.12, 0.30],
//	        send 128B to 1 [0.30, 0.33] (msg 2, arrival 0.40,
//	        tag 1<<24), recv msg 3 [0.33, 0.35] (already arrived)
//	rank 1: send 32B to 0 [0, 0.01] (msg 3, arrival 0.02),
//	        recv msg 1 [0.01, 0.16] (arrival 0.15: 0.14 halo wait),
//	        compute [0.16, 0.20],
//	        recv msg 2 [0.20, 0.41] (arrival 0.40: 0.20 collective wait)
func fixedTrace() *event.Trace {
	return &event.Trace{P: 2, Records: []event.Record{
		{Rank: 0, Kind: event.KindCompute, T0: 0, T1: 0.10, Peer: -1},
		{Rank: 1, Kind: event.KindSend, T0: 0, T1: 0.01, Peer: 0, Tag: 7, Bytes: 32, MsgID: 3},
		{Rank: 0, Kind: event.KindSend, T0: 0.10, T1: 0.12, Peer: 1, Tag: 3003, Bytes: 64, MsgID: 1},
		{Rank: 1, Kind: event.KindRecv, T0: 0.01, T1: 0.16, Peer: 0, Tag: 3003, Bytes: 64, MsgID: 1, Arrival: 0.15},
		{Rank: 0, Kind: event.KindCompute, T0: 0.12, T1: 0.30, Peer: -1},
		{Rank: 1, Kind: event.KindCompute, T0: 0.16, T1: 0.20, Peer: -1},
		{Rank: 0, Kind: event.KindSend, T0: 0.30, T1: 0.33, Peer: 1, Tag: 1 << 24, Bytes: 128, MsgID: 2},
		{Rank: 0, Kind: event.KindRecv, T0: 0.33, T1: 0.35, Peer: 1, Tag: 7, Bytes: 32, MsgID: 3, Arrival: 0.02},
		{Rank: 1, Kind: event.KindRecv, T0: 0.20, T1: 0.41, Peer: 0, Tag: 1 << 24, Bytes: 128, MsgID: 2, Arrival: 0.40},
	}}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestGoldenProfile pins the aggregation of the fixed trace: every
// bucket is a plain sum of the record spans above, so the expected
// values are exact by construction.
func TestGoldenProfile(t *testing.T) {
	p := FromTrace(fixedTrace(), 0, 9, nil)
	if p.P != 2 || len(p.Ranks) != 2 {
		t.Fatalf("profile shape: P=%d ranks=%d", p.P, len(p.Ranks))
	}
	r0, r1 := p.Ranks[0], p.Ranks[1]

	approx(t, "rank0.Compute", r0.Compute, 0.28)
	// sends 0.02+0.03 plus the waitless recv span 0.02.
	approx(t, "rank0.Overhead", r0.Overhead, 0.07)
	approx(t, "rank0.TotalWait", r0.TotalWait(), 0)
	if r0.SendMsgs != 2 || r0.SendBytes != 192 {
		t.Errorf("rank0 sends = %d msgs / %d bytes, want 2 / 192", r0.SendMsgs, r0.SendBytes)
	}

	approx(t, "rank1.Compute", r1.Compute, 0.04)
	// send 0.01 plus post-arrival copy-out 0.01 (halo) + 0.01 (collective).
	approx(t, "rank1.Overhead", r1.Overhead, 0.03)
	approx(t, "rank1.Wait[halo]", r1.Wait[ClassHalo], 0.14)
	approx(t, "rank1.Wait[collective]", r1.Wait[ClassCollective], 0.20)
	approx(t, "rank1.Wait[migration]", r1.Wait[ClassMigration], 0)
	approx(t, "rank1.Wait[other]", r1.Wait[ClassOther], 0)

	// Critical path: rank1's final recv idled until 0.40, so the path
	// crosses to rank 0's send chain.  Makespan 0.41; on the path:
	// compute 0.28, overhead 0.03 (send) + 0.01 (copy-out), wait 0.07
	// (wire 0.33 -> 0.40) + 0.02 (recv without idle... ).
	approx(t, "Makespan", p.Makespan, 0.41)
	approx(t, "path total", p.PathCompute+p.PathOverhead+p.PathWait, 0.41)
	if p.PathWait <= 0 {
		t.Errorf("path wait = %v, want > 0 (the 0.33->0.40 wire span)", p.PathWait)
	}

	// Rank path attribution: waiting receives contribute only their
	// copy-out, so no rank's path seconds exceed the path total.
	if r0.PathSeconds+r1.PathSeconds > 0.41+1e-12 {
		t.Errorf("path attribution overruns makespan: %v + %v", r0.PathSeconds, r1.PathSeconds)
	}
	if s := p.PathShare(0) + p.PathShare(1); s <= 0 || s > 1+1e-12 {
		t.Errorf("path shares sum %v, want in (0, 1]", s)
	}
}

// TestGoldenCalibration pins the rate calibration on the fixed trace
// over a flat 2-rank machine (single hop class): OLS through
// (64B, 0.02s) and (128B, 0.03s) from rank 0 plus (32B, 0.01s) from
// rank 1, and the mean arrival delay of the three matched messages.
func TestGoldenCalibration(t *testing.T) {
	tr := fixedTrace()
	rt := machine.CalibrateRates(tr.Records, machine.NewFlat(2, machine.SP2Link()))
	if !rt.Observed() {
		t.Fatal("no classes calibrated")
	}
	obs, ok := rt.ByHops[1]
	if !ok {
		t.Fatalf("hop class 1 missing: %+v", rt.ByHops)
	}
	if obs.Messages != 3 || obs.Bytes != 224 {
		t.Errorf("observations = %d msgs / %d bytes, want 3 / 224", obs.Messages, obs.Bytes)
	}
	// Exact OLS over {(32,0.01), (64,0.02), (128,0.03)}:
	// n=3 sumB=224 sumT=0.06 sumBB=21504 sumBT=5.44
	// var = 3*21504 - 224^2 = 14336; cov = 3*5.44 - 224*0.06 = 2.88
	// perByte = 2.88/14336 = 9/44800; setup = (0.06 - perByte*224)/3 = 5e-3
	approx(t, "PerByte", obs.PerByte, 9.0/44800)
	approx(t, "Setup", obs.Setup, 5e-3)
	// Latencies: msg1 0.15-0.12=0.03, msg3 0.02-0.01=0.01, msg2
	// 0.40-0.33=0.07; mean = 0.11/3.
	approx(t, "Latency", obs.Latency, 0.11/3)
}

// TestRateTableFallback: unobserved hop classes borrow the nearest
// observed class (ties to the larger hop count); an empty table returns
// the fallback unchanged.
func TestRateTableFallback(t *testing.T) {
	fb := machine.LinkParams{Setup: 1, PerByte: 2, Latency: 3}
	var empty machine.RateTable
	if got := empty.For(2, fb); got != fb {
		t.Errorf("empty table: got %+v, want fallback", got)
	}
	rt := machine.RateTable{ByHops: map[int]machine.RateObs{
		1: {LinkParams: machine.LinkParams{Setup: 10}},
		5: {LinkParams: machine.LinkParams{Setup: 50}},
	}}
	if got := rt.For(5, fb).Setup; got != 50 {
		t.Errorf("exact class: Setup = %v, want 50", got)
	}
	if got := rt.For(2, fb).Setup; got != 10 {
		t.Errorf("nearest class below: Setup = %v, want 10", got)
	}
	if got := rt.For(3, fb).Setup; got != 50 {
		t.Errorf("two-sided tie must prefer the larger class: Setup = %v, want 50", got)
	}
	if got := rt.For(9, fb).Setup; got != 50 {
		t.Errorf("nearest class above: Setup = %v, want 50", got)
	}
}

// TestWindowing: a window that excludes the prefix only aggregates the
// remaining records, and degenerate bounds clamp instead of panicking.
func TestWindowing(t *testing.T) {
	tr := fixedTrace()
	p := FromTrace(tr, 4, 6, nil) // two compute records only
	approx(t, "rank0.Compute", p.Ranks[0].Compute, 0.18)
	approx(t, "rank1.Compute", p.Ranks[1].Compute, 0.04)
	if p.Ranks[0].SendMsgs != 0 || p.Ranks[1].TotalWait() != 0 {
		t.Errorf("window leaked records: %+v", p.Ranks)
	}
	if got := FromTrace(tr, 100, 200, nil); got.Makespan != 0 {
		t.Errorf("out-of-range window: makespan %v", got.Makespan)
	}
	if got := FromTrace(tr, -5, 3, nil); got.Ranks[0].Compute == 0 {
		t.Errorf("negative start should clamp to 0")
	}
}

// TestPerIteration: the gain side's measured per-iteration time.
func TestPerIteration(t *testing.T) {
	p := &Profile{SolveSeconds: 0.6, SolveSteps: 3}
	approx(t, "PerIteration", p.PerIteration(), 0.2)
	p.SolveSteps = 0
	approx(t, "PerIteration no steps", p.PerIteration(), 0)
}
