// Package profile turns event traces into measured cost profiles — the
// feedback half of the measured-cost rebalancing loop.
//
// Paper concept.  PLUM's gain/cost decision (Oliker & Biswas, SPAA
// 1997, Sections 4.5-4.6) prices a candidate remapping against machine
// constants calibrated once, by hand: Titer seconds of solver time per
// element-iteration on the gain side, Tlat/Tsetup per word and message
// on the cost side.  The discrete-event engine (internal/event) makes
// those quantities observable instead: every epoch's trace records what
// each rank actually computed, sent, and waited for.  This package
// aggregates one epoch's trace window into a Profile — per-rank compute
// / overhead / comm-wait decomposition with waits attributed to the
// protocol that caused them (halo exchange, collectives, migration),
// the window's critical path and each rank's share of it, the solve
// phase's per-iteration time, and link rates calibrated from the
// observed sends (machine.CalibrateRates) — which the next epoch's
// decision prices with (remap.MeasuredGain,
// remap.RedistributionCostMeasured).
//
// Entry points.  FromTrace aggregates a half-open record window of an
// event.Trace; DefaultClass classifies message tags by the predicates
// the protocol-owning packages export (msg.IsCollectiveTag,
// linalg.IsHaloTag, pmesh.IsMigrationTag); Profile.PerIteration and
// Profile.Rates are the two quantities the decision consumes;
// Profile.PathShare supports the per-rank profile table plumviz
// renders.
//
// Invariants.  Records are aggregated in trace order — the engine's
// deterministic (time, rank, seq) total order — so identical runs
// produce bitwise-identical profiles regardless of GOMAXPROCS or
// repetition (pinned by the golden test here and the measured-decision
// determinism tests in internal/core).  A nil profile means "price
// analytically": consumers fall back to the paper's formulas bitwise,
// so untraced and unmeasured runs are unchanged.
package profile
