package profile

import (
	"plum/internal/event"
	"plum/internal/linalg"
	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/pmesh"
)

// Class buckets a traced communication record by the protocol that
// produced it, so comm-wait seconds can be attributed to the phase the
// balancer can actually do something about: halo waits respond to a
// better partition, migration waits to a cheaper remapping, collective
// waits to neither.
type Class int

// The wait classes, in presentation order.
const (
	ClassHalo       Class = iota // linalg's per-iteration ghost refresh
	ClassCollective              // barrier/broadcast/reduction/all-to-all internals
	ClassMigration               // pmesh data remapping payloads
	ClassOther                   // setup protocols (marking, ownership, assembly, ...)
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassHalo:
		return "halo"
	case ClassCollective:
		return "collective"
	case ClassMigration:
		return "migration"
	default:
		return "other"
	}
}

// DefaultClass classifies a message tag using the repository's tag
// allocation, each range owned (and exported as a predicate) by the
// package that speaks the protocol.
func DefaultClass(tag int) Class {
	switch {
	case msg.IsCollectiveTag(tag):
		return ClassCollective
	case linalg.IsHaloTag(tag):
		return ClassHalo
	case pmesh.IsMigrationTag(tag):
		return ClassMigration
	default:
		return ClassOther
	}
}

// RankProfile is one rank's cost decomposition over a trace window.
type RankProfile struct {
	Compute   float64             // local work (Compute charges, raw advances)
	Overhead  float64             // send injection + receive matching/copy-out
	Wait      [NumClasses]float64 // idle time before arrivals, by protocol class
	SendMsgs  int                 // messages injected
	SendBytes int64               // payload bytes injected
	// PhaseCompute splits Compute by the phase span the work ran under
	// (event.Phase as stamped on the records; index PhaseNone collects
	// unphased work).  This is the per-rank face of the blame pass's
	// league table: a rank whose solve-phase compute dominates here is
	// the rank WaitBlame will name when its neighbours stall.
	PhaseCompute [event.NumPhases]float64
	// PathSeconds is the time this rank's operations occupy on the
	// window's critical path: full spans for compute and sends, only the
	// post-arrival copy-out for receives that idled (the pre-arrival
	// span overlaps the producing send and the wire, which belong to the
	// sender and the network).  Summed over ranks it therefore falls
	// short of the path duration by exactly the wire/idle seconds no
	// rank is responsible for.
	PathSeconds float64
}

// TotalWait sums the rank's wait buckets.
func (r RankProfile) TotalWait() float64 {
	var t float64
	for _, w := range r.Wait {
		t += w
	}
	return t
}

// Profile is the measured per-rank, per-phase cost profile of one
// adaption epoch, extracted from the event trace the epoch executed
// under.  It is the quantity the paper's Section 4.5 machine constants
// estimate — produced by measurement instead, and fed back into the
// next epoch's gain/cost decision.
type Profile struct {
	P     int
	Ranks []RankProfile

	// The critical path of the window: what actually bounded the epoch.
	Makespan     float64 // completion time of the window's last operation
	PathCompute  float64 // compute seconds on the path
	PathOverhead float64 // messaging software overhead on the path
	PathWait     float64 // wire/contention/idle seconds on the path

	// Solve-phase accounting, set by the driver from its phase timer:
	// the gain term's measured per-iteration solver time under the
	// current mapping.
	SolveSeconds float64 // simulated solve-phase seconds, max over ranks
	SolveSteps   int     // solver iterations the phase ran (NAdapt)

	// Rates are the link constants calibrated from the window's observed
	// sends (machine.CalibrateRates): the cost term's measured
	// per-message/per-byte/latency pricing, keyed by hop class.
	Rates machine.RateTable
}

// PerIteration returns the measured solver seconds per iteration under
// the profiled mapping, or 0 when no solve phase was recorded.
func (p *Profile) PerIteration() float64 {
	if p.SolveSteps <= 0 {
		return 0
	}
	return p.SolveSeconds / float64(p.SolveSteps)
}

// TopPhase returns the phase holding the largest share of the rank's
// compute, with that share of the total (0 when the rank did no work).
func (r RankProfile) TopPhase() (event.Phase, float64) {
	best := event.PhaseNone
	for ph := event.Phase(0); ph < event.NumPhases; ph++ {
		if r.PhaseCompute[ph] > r.PhaseCompute[best] {
			best = ph
		}
	}
	if r.Compute <= 0 {
		return best, 0
	}
	return best, r.PhaseCompute[best] / r.Compute
}

// PathShare returns rank r's share of the critical path in [0, 1].
func (p *Profile) PathShare(r int) float64 {
	span := p.PathCompute + p.PathOverhead + p.PathWait
	if span <= 0 || r < 0 || r >= len(p.Ranks) {
		return 0
	}
	return p.Ranks[r].PathSeconds / span
}

// FromTrace aggregates the half-open record window [start, end) of tr
// into a profile: per-rank compute/overhead/wait decomposition with
// waits classified by classify (nil means DefaultClass), plus the
// window's critical path.  Records are visited in trace order — the
// engine's deterministic total order — so identical runs produce
// bitwise-identical profiles regardless of GOMAXPROCS.
func FromTrace(tr *event.Trace, start, end int, classify func(tag int) Class) *Profile {
	if classify == nil {
		classify = DefaultClass
	}
	if start < 0 {
		start = 0
	}
	if start > len(tr.Records) {
		start = len(tr.Records)
	}
	if end > len(tr.Records) {
		end = len(tr.Records)
	}
	if end < start {
		end = start
	}
	p := &Profile{P: tr.P, Ranks: make([]RankProfile, tr.P)}
	window := tr.Records[start:end]
	for _, r := range window {
		rp := &p.Ranks[r.Rank]
		switch r.Kind {
		case event.KindCompute:
			rp.Compute += r.T1 - r.T0
			rp.PhaseCompute[r.Phase] += r.T1 - r.T0
		case event.KindSend:
			rp.Overhead += r.T1 - r.T0
			rp.SendMsgs++
			rp.SendBytes += int64(r.Bytes)
		case event.KindRecv:
			if r.Arrival > r.T0 {
				// The rank idled until the wire delivered; the span after
				// the arrival is matching/copy-out overhead.
				rp.Wait[classify(r.Tag)] += r.Arrival - r.T0
				rp.Overhead += r.T1 - r.Arrival
			} else {
				rp.Overhead += r.T1 - r.T0
			}
		}
	}

	// Critical path of the window.  The walk only follows message edges
	// whose producing send lies inside the window (CriticalPath charges
	// an out-of-window producer locally), so a window is self-contained.
	sub := &event.Trace{P: tr.P, Records: window}
	cp := event.CriticalPath(sub)
	p.Makespan = cp.Makespan
	p.PathCompute, p.PathOverhead, p.PathWait = cp.Compute, cp.Overhead, cp.CommWait
	for _, s := range cp.Steps {
		span := s.T1 - s.T0
		if s.Kind == event.KindRecv && s.Arrival > s.T0 {
			span = s.T1 - s.Arrival
		}
		p.Ranks[s.Rank].PathSeconds += span
	}
	return p
}
