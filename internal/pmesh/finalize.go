package pmesh

import (
	"sort"

	"plum/internal/adapt"
	"plum/internal/msg"
)

// Finalization (paper Section 3): "it is sometimes necessary to create a
// single global mesh after one or more adaption steps.  Some post
// processing tasks, such as visualization, need to process the whole
// grid simultaneously...  The finalization phase accomplishes this task
// by connecting individual subgrids into one global mesh...  a gather
// operation is performed by a host processor to concatenate the local
// data structures into a global mesh."

// Finalize gathers every rank's element families at the host and
// returns the connected global adapted mesh on rank 0 (nil elsewhere).
// The distributed mesh is left untouched; global ids splice the shared
// objects back together exactly as migration unpacking does.
// Collective.
func (d *DistMesh) Finalize() *adapt.Mesh {
	// Pack all local families (in ascending global root order for
	// determinism), preserving the local mesh.
	var buf []int64
	roots := d.LocalRootIDs()
	elems := 0
	for _, g := range roots {
		elems += d.packFamily(&buf, g)
	}
	d.C.Compute(workPackPerElem * float64(elems))
	parts := d.C.Gather(0, msg.PutInts(buf))
	if d.C.Rank() != 0 {
		return nil
	}

	// The host unpacks every family into a fresh mesh.  Receiving its
	// own payload through the same path keeps the code identical for
	// all ranks' data.
	out := adapt.NewEmpty(d.M.NComp)
	type entry struct {
		g     int32
		words []int64
		pos   int
	}
	var all []entry
	for r := 0; r < d.C.Size(); r++ {
		words := msg.GetInts(parts[r])
		for pos := 0; pos < len(words); {
			g := int32(words[pos])
			start := pos
			pos = skipFamily(words, pos, d.M.NComp)
			all = append(all, entry{g: g, words: words, pos: start})
		}
	}
	// Deterministic global order by root id.
	sort.Slice(all, func(i, j int) bool { return all[i].g < all[j].g })
	for _, e := range all {
		unpackFamilyInto(out, e.words, e.pos)
	}
	return out
}

// skipFamily advances past one serialized family without unpacking it.
func skipFamily(words []int64, pos, ncomp int) int {
	pos++ // root id
	nverts := int(words[pos])
	pos += 1 + nverts*(4+ncomp)
	nelems := int(words[pos])
	pos += 1 + nelems*5
	nedges := int(words[pos])
	pos += 1 + nedges*3
	nbf := int(words[pos])
	pos += 1 + nbf*4
	return pos
}
