package pmesh

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/mesh"
	"plum/internal/msg"
)

func TestFinalizeMatchesSerial(t *testing.T) {
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	ind := adapt.SphericalIndicator(mesh.Vec3{1.5, 1.5, 1.0}, 0.8, 0.5)

	serial := adapt.FromMesh(global, 1)
	serial.BuildEdgeElems()
	errv := serial.EdgeErrorGeometric(ind)
	serial.TargetEdges(errv, 0.5)
	serial.Propagate()
	serial.Refine()
	want := serial.ActiveCounts()

	part := testPartition(global, 4)
	msg.Run(4, func(c *msg.Comm) {
		d := New(c, global, part, 1)
		le := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()
		before := d.GlobalCounts()

		gm := d.Finalize()
		if c.Rank() != 0 {
			if gm != nil {
				t.Errorf("rank %d received a global mesh", c.Rank())
			}
			return
		}
		if err := gm.CheckInvariants(); err != nil {
			t.Fatalf("finalized mesh invalid: %v", err)
		}
		got := gm.ActiveCounts()
		if got != want || got != before {
			t.Errorf("finalized counts %+v, serial %+v, distributed %+v", got, want, before)
		}
		// Volume must match the box.
		if math.Abs(gm.TotalActiveVolume()-18.0) > 1e-9 {
			t.Errorf("finalized volume %v, want 18", gm.TotalActiveVolume())
		}
	})
}

func TestFinalizeLeavesDistributedMeshIntact(t *testing.T) {
	global := mesh.Box(2, 2, 2, 1, 1, 1)
	part := testPartition(global, 2)
	msg.Run(2, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		before := d.M.ActiveCounts()
		d.Finalize()
		if d.M.ActiveCounts() != before {
			t.Errorf("rank %d: finalize mutated the local mesh", c.Rank())
		}
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
}

func TestParallelCoarsenRoundTrip(t *testing.T) {
	// Refine around a shock, move the shock away, coarsen: the
	// distributed mesh must shrink, stay conforming, and agree with the
	// serial implementation.
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	shock := adapt.SphericalIndicator(mesh.Vec3{1.0, 1.0, 1.0}, 0.6, 0.4)
	moved := adapt.SphericalIndicator(mesh.Vec3{2.5, 2.5, 1.5}, 0.3, 0.2)

	// Serial reference.
	serial := adapt.FromMesh(global, 0)
	serial.BuildEdgeElems()
	errv := serial.EdgeErrorGeometric(shock)
	serial.TargetEdges(errv, 0.5)
	serial.Propagate()
	serial.Refine()
	peak := serial.ActiveCounts()
	errv = serial.EdgeErrorGeometric(moved)
	serial.Coarsen(serial.TargetCoarsenEdges(errv, 0.5))
	want := serial.ActiveCounts()
	if want.Elems >= peak.Elems {
		t.Fatalf("serial coarsening did not shrink: %d -> %d", peak.Elems, want.Elems)
	}

	for _, p := range []int{2, 4} {
		part := testPartition(global, p)
		msg.Run(p, func(c *msg.Comm) {
			d := New(c, global, part, 0)
			le := d.M.EdgeErrorGeometric(shock)
			d.M.TargetEdges(le, 0.5)
			d.PropagateParallel()
			d.Refine()
			if got := d.GlobalCounts(); got != peak {
				t.Fatalf("p=%d: refined counts %+v != serial %+v", p, got, peak)
			}
			d.ParallelCoarsen(moved, 0.5)
			if err := d.M.CheckInvariants(); err != nil {
				t.Errorf("p=%d rank %d: %v", p, c.Rank(), err)
			}
			got := d.GlobalCounts()
			if got != want {
				t.Errorf("p=%d: coarsened counts %+v != serial %+v", p, got, want)
			}
		})
	}
}

func TestParallelCoarsenAfterMigration(t *testing.T) {
	// Coarsening must still work when families have moved between
	// processors since refinement.
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	shock := adapt.SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.5, 0.4)
	far := adapt.SphericalIndicator(mesh.Vec3{5, 5, 5}, 0.1, 0.1)
	part := testPartition(global, 3)
	msg.Run(3, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		le := d.M.EdgeErrorGeometric(shock)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()
		peak := d.GlobalCounts()
		// Rotate all ownership by one rank.
		newOwner := make([]int32, global.NumElems())
		for g := range newOwner {
			newOwner[g] = (d.RootOwner[g] + 1) % 3
		}
		d.Migrate(newOwner)
		// Error is far away everywhere: coarsen everything.
		d.ParallelCoarsen(far, 0.5)
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		got := d.GlobalCounts()
		if got.Elems >= peak.Elems {
			t.Errorf("coarsening after migration did not shrink: %d -> %d", peak.Elems, got.Elems)
		}
		// Full coarsening restores the initial mesh size.
		if got.Elems != global.NumElems() {
			t.Errorf("expected full coarsening to %d elements, got %d", global.NumElems(), got.Elems)
		}
	})
}
