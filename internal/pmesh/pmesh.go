package pmesh

import (
	"fmt"
	"sort"

	"plum/internal/adapt"
	"plum/internal/mesh"
	"plum/internal/msg"
)

// Work-unit cost constants (charged to the simulated clock; one unit is
// roughly one element-sized operation).
const (
	workMarkPerEdge     = 0.2
	workRefinePerElem   = 1.0
	workPackPerElem     = 0.6
	workUnpackPerElem   = 0.9
	workSolvePerElem    = 1.0
	workPartitionFactor = 0.5
)

// DistMesh is one rank's view of the distributed adaptive mesh.
type DistMesh struct {
	C      *msg.Comm
	Global *mesh.Mesh  // replicated initial mesh (fixed for the run)
	M      *adapt.Mesh // local adapted submesh

	// RootOwner is replicated: the current owner rank of every global
	// initial element (dual-graph vertex).
	RootOwner []int32

	// localRoot maps a global root id to the local root element id;
	// globalRoot is the inverse (local root element id -> global id).
	localRoot  map[int32]int32
	globalRoot map[int32]int32

	// VertSPL maps a local vertex to the sorted list of *other* ranks
	// that (potentially) share it.  Absent means interior.
	VertSPL map[int32][]int32

	// neighbors is the sorted union of all SPL entries: the ranks this
	// one exchanges shared-object traffic with.  On a well-partitioned
	// mesh it is O(1) in size regardless of P, which is what keeps the
	// marking propagation and ownership protocols scalable.
	neighbors []int32
}

// New distributes the global initial mesh according to part (global root
// element -> rank) and returns each rank's DistMesh.  Collective: every
// rank calls it with identical arguments.
func New(c *msg.Comm, global *mesh.Mesh, part []int32, ncomp int) *DistMesh {
	if len(part) != global.NumElems() {
		panic(fmt.Sprintf("pmesh: partition has %d entries for %d elements", len(part), global.NumElems()))
	}
	d := &DistMesh{
		C:          c,
		Global:     global,
		RootOwner:  append([]int32(nil), part...),
		localRoot:  make(map[int32]int32),
		globalRoot: make(map[int32]int32),
	}
	me := int32(c.Rank())

	// Collect local roots in global order.
	var roots []int32
	for g, p := range part {
		if p == me {
			roots = append(roots, int32(g))
		}
	}

	// Build the local sub-mesh with renumbered vertices.
	vmap := make(map[int32]int32) // global vertex -> local vertex
	local := &mesh.Mesh{}
	var gids []uint64
	for _, g := range roots {
		var ev [4]int32
		for i, gv := range global.Elems[g] {
			lv, ok := vmap[gv]
			if !ok {
				lv = int32(len(local.Coords))
				vmap[gv] = lv
				local.Coords = append(local.Coords, global.Coords[gv])
				gids = append(gids, uint64(gv))
			}
			ev[i] = lv
		}
		local.Elems = append(local.Elems, ev)
	}
	local.BuildDerived()
	// BuildDerived marks partition-boundary faces as boundary; replace
	// with the true external boundary faces owned by local elements.
	local.BFaces = nil
	local.BFaceElem = nil
	localElemOf := make(map[int32]int32, len(roots))
	for li, g := range roots {
		localElemOf[g] = int32(li)
	}
	for i, bf := range global.BFaces {
		owner := global.BFaceElem[i]
		if part[owner] != me {
			continue
		}
		local.BFaces = append(local.BFaces, [3]int32{vmap[bf[0]], vmap[bf[1]], vmap[bf[2]]})
		local.BFaceElem = append(local.BFaceElem, localElemOf[owner])
	}

	d.M = adapt.FromMeshGIDs(local, ncomp, gids)
	for li, g := range roots {
		d.localRoot[g] = int32(li)
		d.globalRoot[int32(li)] = g
	}
	d.UpdateSPLs()
	return d
}

// LocalRootIDs returns the global ids of the roots owned by this rank,
// sorted ascending.
func (d *DistMesh) LocalRootIDs() []int32 {
	out := make([]int32, 0, len(d.localRoot))
	for g := range d.localRoot {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalRootElem returns the local root element id for global root g, or
// -1 if not owned here.
func (d *DistMesh) LocalRootElem(g int32) int32 {
	if l, ok := d.localRoot[g]; ok {
		return l
	}
	return -1
}

// GlobalRootID returns the global id of a local root element.
func (d *DistMesh) GlobalRootID(local int32) int32 { return d.globalRoot[local] }

// UpdateSPLs recomputes the shared-processor lists: initial vertices are
// shared by the ranks owning any element incident to them (derived from
// the replicated initial mesh and RootOwner); a bisection midpoint's SPL
// is the intersection of its parent edge endpoints' SPLs (conservative —
// a receiver that does not actually hold a shared object simply ignores
// messages about it).
func (d *DistMesh) UpdateSPLs() {
	me := int32(d.C.Rank())
	// Ranks per global initial vertex.
	ranks := make([][]int32, d.Global.NumVerts())
	for g, ev := range d.Global.Elems {
		o := d.RootOwner[g]
		for _, gv := range ev {
			ranks[gv] = addRank(ranks[gv], o)
		}
	}
	d.VertSPL = make(map[int32][]int32)
	nInitVerts := uint64(d.Global.NumVerts())
	// Initial vertices present locally.
	for v := range d.M.Coords {
		if !d.M.VertAlive[v] {
			continue
		}
		gid := d.M.VertGID[v]
		if gid < nInitVerts {
			spl := removeRank(ranks[gid], me)
			if len(spl) > 0 {
				d.VertSPL[int32(v)] = spl
			}
		}
	}
	// Midpoints, in edge id order (parents precede derived midpoints).
	for id := range d.M.EdgeV {
		if !d.M.EdgeAlive[id] || d.M.EdgeLeaf(int32(id)) {
			continue
		}
		a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
		spl := intersectRanks(d.VertSPL[a], d.VertSPL[b])
		if len(spl) > 0 {
			d.VertSPL[d.M.EdgeMid[id]] = spl
		}
	}
	d.neighbors = nil
	for _, spl := range d.VertSPL {
		for _, r := range spl {
			d.neighbors = addRank(d.neighbors, r)
		}
	}
}

// NeighborRanks returns the sorted ranks this one shares mesh objects
// with.  The neighbour relation is symmetric (SPLs on both sides derive
// from the same replicated ownership data), so pairwise exchanges using
// this set are deadlock-free.
func (d *DistMesh) NeighborRanks() []int32 { return d.neighbors }

// exchangeWithNeighbors sends words[r] to each neighbour rank r and
// returns the vectors received from them (keyed by rank).  Non-neighbour
// entries of words are ignored.  Collective among neighbours.
func (d *DistMesh) exchangeWithNeighbors(tag int, words map[int32][]int64) map[int32][]int64 {
	for _, r := range d.neighbors {
		d.C.SendInts(int(r), tag, words[r])
	}
	out := make(map[int32][]int64, len(d.neighbors))
	for _, r := range d.neighbors {
		out[r] = d.C.RecvInts(int(r), tag)
	}
	return out
}

// Dedicated point-to-point tags for the neighbour protocols.
const (
	tagMarkExchange    = 1001
	tagOwnership       = 1002
	tagCoarsenStatus   = 1003
	tagMigrationCounts = 1004
	tagMigrationData   = 1005
)

// IsMigrationTag reports whether tag belongs to the data-remapping
// protocol (Migrate's count and payload messages).  The profile
// aggregator uses it to attribute traced receive waits to the migration
// bucket.
func IsMigrationTag(tag int) bool {
	return tag == tagMigrationCounts || tag == tagMigrationData
}

// EdgeSPL returns the ranks that potentially share edge id (the
// intersection of its endpoints' SPLs).
func (d *DistMesh) EdgeSPL(id int32) []int32 {
	a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
	return intersectRanks(d.VertSPL[a], d.VertSPL[b])
}

func addRank(list []int32, r int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= r })
	if i < len(list) && list[i] == r {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = r
	return list
}

func removeRank(list []int32, r int32) []int32 {
	out := make([]int32, 0, len(list))
	for _, x := range list {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

func intersectRanks(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// GatherWeights assembles the replicated per-global-root dual-graph
// weights from each rank's local families (collective).
func (d *DistMesh) GatherWeights() (wcomp, wremap []int64) {
	lc, lr := d.M.FamilyWeights()
	return d.gatherRootValues(lc, lr)
}

// GatherPredictedWeights assembles per-global-root (predicted Wcomp,
// current Wremap) — the weight pair the load balancer uses when
// remapping *before* subdivision: the computational weight reflects the
// mesh as it will be after refinement, while the remapping weight
// reflects the data that actually moves now (paper Section 4.6).
// Call after marks have been propagated.
func (d *DistMesh) GatherPredictedWeights() (wcomp, wremap []int64) {
	pred := d.M.PredictLeavesByRoot()
	_, lr := d.M.FamilyWeights()
	return d.gatherRootValues(pred, lr)
}

// gatherRootValues allgathers two per-local-root maps into replicated
// per-global-root arrays.
func (d *DistMesh) gatherRootValues(a, b map[int32]int64) ([]int64, []int64) {
	words := make([]int64, 0, 3*len(a))
	for lroot, av := range a {
		g := d.globalRoot[lroot]
		words = append(words, int64(g), av, b[lroot])
	}
	// Deterministic order within the rank's contribution.
	sortTriples(words)
	parts := d.C.Allgather(msg.PutInts(words))
	wa := make([]int64, d.Global.NumElems())
	wb := make([]int64, d.Global.NumElems())
	for _, p := range parts {
		vals := msg.GetInts(p)
		for i := 0; i+2 < len(vals); i += 3 {
			wa[vals[i]] = vals[i+1]
			wb[vals[i]] = vals[i+2]
		}
	}
	return wa, wb
}

func sortTriples(words []int64) {
	n := len(words) / 3
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return words[3*idx[i]] < words[3*idx[j]] })
	out := make([]int64, len(words))
	for k, i := range idx {
		copy(out[3*k:3*k+3], words[3*i:3*i+3])
	}
	copy(words, out)
}

// GlobalCounts returns the sizes of the distributed computational mesh,
// counting each shared vertex/edge exactly once.  Because SPLs are
// conservative (they may list ranks that do not actually hold an
// object), ownership for counting is resolved exactly: ranks exchange
// the ids of their potentially shared objects and the lowest rank that
// actually holds an object counts it.  Collective.
func (d *DistMesh) GlobalCounts() adapt.Counts {
	me := int32(d.C.Rank())
	var c adapt.Counts

	// Interior objects count locally; potentially-shared ones are
	// resolved below.  A vertex is encoded by its gid, an edge by its
	// two endpoint gids.
	var sharedWords []int64
	for v := range d.M.Coords {
		if !d.M.VertAlive[v] {
			continue
		}
		if len(d.VertSPL[int32(v)]) == 0 {
			c.Verts++
		} else {
			sharedWords = append(sharedWords, 1, int64(d.M.VertGID[v]), 0)
		}
	}
	for id := range d.M.EdgeV {
		if !d.M.EdgeAlive[id] || !d.M.EdgeLeaf(int32(id)) {
			continue
		}
		if !d.edgeUsedByActive(int32(id)) {
			continue
		}
		if len(d.EdgeSPL(int32(id))) == 0 {
			c.Edges++
		} else {
			a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
			ga, gb := d.M.VertGID[a], d.M.VertGID[b]
			if ga > gb {
				ga, gb = gb, ga
			}
			sharedWords = append(sharedWords, 2, int64(ga), int64(gb))
		}
	}
	parts := d.C.Allgather(msg.PutInts(sharedWords))
	type key struct {
		kind   int64
		ga, gb int64
	}
	minHolder := make(map[key]int32)
	for r := 0; r < d.C.Size(); r++ {
		vals := msg.GetInts(parts[r])
		for i := 0; i+2 < len(vals); i += 3 {
			k := key{vals[i], vals[i+1], vals[i+2]}
			if _, ok := minHolder[k]; !ok {
				minHolder[k] = int32(r)
			}
		}
	}
	for i := 0; i+2 < len(sharedWords); i += 3 {
		k := key{sharedWords[i], sharedWords[i+1], sharedWords[i+2]}
		if minHolder[k] == me {
			if k.kind == 1 {
				c.Verts++
			} else {
				c.Edges++
			}
		}
	}

	for e := range d.M.ElemVerts {
		if d.M.ElemActive(int32(e)) {
			c.Elems++
		}
	}
	for f := range d.M.BFaceVerts {
		if d.M.BFaceActive(int32(f)) {
			c.BFaces++
		}
	}
	sum := func(x int) int {
		return int(d.C.AllreduceInt64(int64(x), msg.SumInt64))
	}
	return adapt.Counts{Verts: sum(c.Verts), Elems: sum(c.Elems), Edges: sum(c.Edges), BFaces: sum(c.BFaces)}
}

func (d *DistMesh) edgeUsedByActive(id int32) bool {
	if d.M.EdgeElems == nil {
		d.M.BuildEdgeElems()
	}
	return len(d.M.EdgeElems[id]) > 0
}

// Refine subdivides the local mesh (marks must already be globally
// propagated via PropagateParallel), charges the simulated clock, and
// refreshes the SPLs.  Collective only in that all ranks should call it.
func (d *DistMesh) Refine() adapt.RefineStats {
	st := d.M.Refine()
	d.C.Compute(workRefinePerElem * float64(st.ElemsCreated+st.EdgesBisected))
	d.UpdateSPLs()
	return st
}
