package pmesh

import (
	"plum/internal/adapt"
	"plum/internal/mesh"
)

// Parallel mesh coarsening (paper Section 3): "the coarsening phase
// purges the data structures of all edges that are removed, as well as
// their associated vertices, elements, and boundary faces...  The
// refinement routine is then invoked to generate a valid mesh from the
// vertices left after the coarsening."
//
// Element families never span processors, so the collapse itself is
// local.  Cross-partition consistency has exactly one failure mode: a
// shared edge un-bisects on the rank whose families all collapsed while
// a neighbouring rank keeps it bisected (its families survived).  One
// status exchange repairs it — every rank announces its still-bisected
// shared edges; a rank holding such an edge as a leaf re-marks it for
// refinement — and the usual globally-propagated re-refinement then
// restores a conforming distributed mesh.

// ParallelCoarsen coarsens edges whose indicator value falls below lo,
// then re-refines to validity.  Collective.
func (d *DistMesh) ParallelCoarsen(f func(mesh.Vec3) float64, lo float64) adapt.CoarsenStats {
	errv := d.M.EdgeErrorGeometric(f)
	flags := d.M.TargetCoarsenEdges(errv, lo)
	return d.ParallelCoarsenFlags(flags)
}

// ParallelCoarsenFlags is ParallelCoarsen with explicit per-edge flags
// (indexed by local edge id).  Collective.
func (d *DistMesh) ParallelCoarsenFlags(flags []bool) adapt.CoarsenStats {
	st := d.M.CollapsePhase(flags)
	d.C.Compute(workRefinePerElem * float64(st.ElemsRemoved+1))
	d.UpdateSPLs() // midpoints may have been purged

	// Status exchange with the neighbour ranks: announce still-bisected
	// shared edges.
	send := make(map[int32][]int64)
	for id := range d.M.EdgeV {
		if !d.M.EdgeAlive[id] || d.M.EdgeLeaf(int32(id)) {
			continue
		}
		spl := d.EdgeSPL(int32(id))
		if len(spl) == 0 {
			continue
		}
		a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
		ga, gb := d.M.VertGID[a], d.M.VertGID[b]
		for _, r := range spl {
			send[r] = append(send[r], int64(ga), int64(gb))
		}
	}
	recv := d.exchangeWithNeighbors(tagCoarsenStatus, send)
	for _, r := range d.neighbors {
		vals := recv[r]
		for i := 0; i+1 < len(vals); i += 2 {
			va := d.M.VertByGID(uint64(vals[i]))
			vb := d.M.VertByGID(uint64(vals[i+1]))
			if va < 0 || vb < 0 {
				continue
			}
			id := d.M.EdgeByPair(va, vb)
			if id >= 0 && d.M.EdgeLeaf(id) {
				// The neighbour kept this edge bisected: our coarsening
				// of it is overruled; re-refine.
				d.M.MarkEdge(id)
			}
		}
	}

	// Globally consistent re-refinement.
	d.M.ForceMarkBisected()
	d.PropagateParallel()
	st.Refine = d.Refine()
	return st
}
