package pmesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"plum/internal/adapt"
	"plum/internal/mesh"
	"plum/internal/msg"
)

// TestPropertyDistributedEqualsSerial: for random partitions (not just
// the partitioner's output) and random spherical indicators, distributed
// marking + propagation + refinement produces exactly the serial mesh.
func TestPropertyDistributedEqualsSerial(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	prop := func(seeds [8]uint8, cx, cy, cz uint8) bool {
		// Random but valid partition over 3 ranks.
		part := make([]int32, global.NumElems())
		for i := range part {
			part[i] = int32(seeds[i%8]+uint8(i)) % 3
		}
		centre := mesh.Vec3{
			2 * float64(cx%100) / 100,
			2 * float64(cy%100) / 100,
			2 * float64(cz%100) / 100,
		}
		ind := adapt.SphericalIndicator(centre, 0.5, 0.4)

		serial := adapt.FromMesh(global, 0)
		serial.BuildEdgeElems()
		errv := serial.EdgeErrorGeometric(ind)
		serial.TargetEdges(errv, 0.5)
		serial.Propagate()
		serial.Refine()
		want := serial.ActiveCounts()

		ok := true
		msg.Run(3, func(c *msg.Comm) {
			d := New(c, global, part, 0)
			le := d.M.EdgeErrorGeometric(ind)
			d.M.TargetEdges(le, 0.5)
			d.PropagateParallel()
			d.Refine()
			if err := d.M.CheckInvariants(); err != nil {
				t.Logf("rank %d: %v", c.Rank(), err)
				ok = false
			}
			if got := d.GlobalCounts(); got != want {
				if c.Rank() == 0 {
					t.Logf("counts %+v != serial %+v (partition %v)", got, want, part)
				}
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestMultiLevelDistributedRefinement: two successive refinement levels
// distributed must match two serial levels, exercising refinement of
// already-refined families and SPLs on level-2 midpoints.
func TestMultiLevelDistributedRefinement(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	inds := []func(mesh.Vec3) float64{
		adapt.SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.7, 0.5),
		adapt.SphericalIndicator(mesh.Vec3{0.6, 0.6, 0.6}, 0.4, 0.3),
	}

	serial := adapt.FromMesh(global, 0)
	for _, ind := range inds {
		serial.BuildEdgeElems()
		errv := serial.EdgeErrorGeometric(ind)
		serial.TargetEdges(errv, 0.5)
		serial.Propagate()
		serial.Refine()
	}
	want := serial.ActiveCounts()

	part := testPartition(global, 4)
	msg.Run(4, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		for li, ind := range inds {
			le := d.M.EdgeErrorGeometric(ind)
			d.M.TargetEdges(le, 0.5)
			d.PropagateParallel()
			d.Refine()
			if err := d.M.CheckInvariants(); err != nil {
				t.Fatalf("level %d rank %d: %v", li, c.Rank(), err)
			}
		}
		if got := d.GlobalCounts(); got != want {
			t.Errorf("two-level distributed counts %+v != serial %+v", got, want)
		}
	})
}

// TestMigrationBetweenRefinementLevels: refine, migrate, refine again —
// families with multi-level trees must survive the move and keep
// refining consistently.
func TestMigrationBetweenRefinementLevels(t *testing.T) {
	global := mesh.Box(2, 2, 2, 2, 2, 2)
	ind1 := adapt.SphericalIndicator(mesh.Vec3{1, 1, 1}, 0.7, 0.5)
	ind2 := adapt.SphericalIndicator(mesh.Vec3{1.2, 1.2, 1.2}, 0.4, 0.3)

	serial := adapt.FromMesh(global, 0)
	for _, ind := range []func(mesh.Vec3) float64{ind1, ind2} {
		serial.BuildEdgeElems()
		errv := serial.EdgeErrorGeometric(ind)
		serial.TargetEdges(errv, 0.5)
		serial.Propagate()
		serial.Refine()
	}
	want := serial.ActiveCounts()

	part := testPartition(global, 3)
	msg.Run(3, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		le := d.M.EdgeErrorGeometric(ind1)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()
		// Rotate ownership: every multi-level family moves.
		newOwner := make([]int32, global.NumElems())
		for g := range newOwner {
			newOwner[g] = (d.RootOwner[g] + 1) % 3
		}
		d.Migrate(newOwner)
		if err := d.M.CheckInvariants(); err != nil {
			t.Fatalf("rank %d post-migrate: %v", c.Rank(), err)
		}
		le = d.M.EdgeErrorGeometric(ind2)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()
		if err := d.M.CheckInvariants(); err != nil {
			t.Fatalf("rank %d post-refine: %v", c.Rank(), err)
		}
		if got := d.GlobalCounts(); got != want {
			t.Errorf("counts %+v != serial %+v", got, want)
		}
	})
}
