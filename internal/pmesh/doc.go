// Package pmesh implements the distributed-memory mesh layer of the
// reproduction (paper Section 3, "parallel mesh adaption", and Section
// 4.6, data remapping): each processor owns the refinement families of a
// subset of the initial mesh's elements, shared vertices and edges carry
// shared-processor lists (SPLs), edge marking is propagated across
// partition boundaries with messaging rounds, and whole element families
// migrate between processors when the load balancer adopts a new
// partitioning ("all descendants of the root element must move with it").
//
// Entry points.  New builds a DistMesh from the replicated initial mesh
// and an initial partition; MarkGeometricFraction + PropagateParallel +
// Refine is the parallel adaption cycle; GatherPredictedWeights /
// GatherWeights supply the balancer's inputs; Migrate executes an
// adopted reassignment; Finalize reassembles the global mesh for
// output; ResolveOwnership computes exact edge/vertex ownership for the
// solvers.  IsMigrationTag classifies this package's message tags for
// the profile aggregator.
//
// Invariants.  Identity across processors follows the global-id
// discipline of package adapt: initial vertices keep their global
// initial ids and bisection midpoints hash their parent edge's
// endpoints, so two processors that independently refine copies of a
// shared edge agree on every derived object, including new edges
// created across faces of the original mesh.  The replicated RootOwner
// vector is identical on every rank after each collective operation,
// and all neighbour exchanges use deterministic rank order, so the
// distributed mesh evolves bitwise identically for any GOMAXPROCS.
package pmesh
