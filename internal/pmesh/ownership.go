package pmesh

// Exact shared-object resolution.  SPLs are conservative (complete but
// possibly over-approximate), which is fine for marking propagation —
// receivers ignore unknown objects — but the flow solver needs exact
// ownership so each edge's flux is computed exactly once and shared
// vertex accumulators are combined exactly.  One collective resolves
// them: every rank announces the potentially shared edges it actually
// holds; a rank owns an edge when it is the lowest-numbered actual
// holder.

// EdgeOwnership describes the exact sharing state of the local edges.
type EdgeOwnership struct {
	// Owned[id] is true when this rank computes edge id (interior edges
	// and shared edges where this rank is the lowest actual holder).
	Owned []bool
	// Sharers[id] lists the other ranks that actually hold edge id (nil
	// for interior edges).
	Sharers map[int32][]int32
	// VertSharers[v] lists the other ranks that actually hold vertex v.
	VertSharers map[int32][]int32
}

// ResolveOwnership exchanges shared-object ids with the neighbour ranks
// and returns the exact ownership tables for the current topology.
// Collective.
func (d *DistMesh) ResolveOwnership() *EdgeOwnership {
	me := d.C.Rank()
	if d.M.EdgeElems == nil {
		d.M.BuildEdgeElems()
	}

	// Announce potentially shared edges (by endpoint gids) and vertices
	// (by gid) to their SPL ranks.
	send := make(map[int32][]int64)
	for id := range d.M.EdgeV {
		if !d.M.EdgeAlive[id] || !d.M.EdgeLeaf(int32(id)) || len(d.M.EdgeElems[id]) == 0 {
			continue
		}
		spl := d.EdgeSPL(int32(id))
		if len(spl) == 0 {
			continue
		}
		a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
		ga, gb := d.M.VertGID[a], d.M.VertGID[b]
		for _, r := range spl {
			send[r] = append(send[r], 2, int64(ga), int64(gb))
		}
	}
	for v, spl := range d.VertSPL {
		if !d.M.VertAlive[v] {
			continue
		}
		for _, r := range spl {
			send[r] = append(send[r], 1, int64(d.M.VertGID[v]), 0)
		}
	}
	recv := d.exchangeWithNeighbors(tagOwnership, send)

	own := &EdgeOwnership{
		Owned:       make([]bool, len(d.M.EdgeV)),
		Sharers:     make(map[int32][]int32),
		VertSharers: make(map[int32][]int32),
	}
	for _, r := range d.neighbors {
		vals := recv[r]
		for i := 0; i+2 < len(vals); i += 3 {
			switch vals[i] {
			case 2:
				va := d.M.VertByGID(uint64(vals[i+1]))
				vb := d.M.VertByGID(uint64(vals[i+2]))
				if va < 0 || vb < 0 {
					continue
				}
				id := d.M.EdgeByPair(va, vb)
				if id < 0 || !d.M.EdgeLeaf(id) {
					continue
				}
				own.Sharers[id] = addRank(own.Sharers[id], int32(r))
			case 1:
				v := d.M.VertByGID(uint64(vals[i+1]))
				if v < 0 {
					continue
				}
				own.VertSharers[v] = addRank(own.VertSharers[v], int32(r))
			}
		}
	}
	for id := range d.M.EdgeV {
		if !d.M.EdgeAlive[id] || !d.M.EdgeLeaf(int32(id)) || len(d.M.EdgeElems[id]) == 0 {
			continue
		}
		sh := own.Sharers[int32(id)]
		own.Owned[id] = len(sh) == 0 || int32(me) < sh[0]
	}
	return own
}
