package pmesh

import (
	"plum/internal/mesh"
	"plum/internal/msg"
)

// Parallel edge marking (paper Section 3): each processor targets and
// upgrades its local edges; newly marked local copies of shared edges are
// sent to the processors in their SPLs after each propagation round,
// "and edge markings could propagate back and forth across partitions"
// until no processor applies a new mark.

// MarkGeometricFraction targets approximately the given fraction of the
// distributed mesh's active edges using a geometric error indicator: a
// global error threshold is agreed on via histogram reduction, then every
// rank marks its local edges above the threshold.  Because shared edges
// have identical geometry on all sharers, the marking is symmetric across
// partitions, exactly as the paper observes for its flow-based indicator.
// Returns the local number of edges marked and the threshold (which can
// be reused by MarkGeometricThreshold to re-derive the same marks after
// a migration without another histogram reduction).  Collective.
func (d *DistMesh) MarkGeometricFraction(f func(mesh.Vec3) float64, frac float64) (int, float64) {
	errv := d.M.EdgeErrorGeometric(f)
	d.C.Compute(workMarkPerEdge * float64(len(errv)))
	thresh := d.globalThreshold(errv, frac)
	return d.M.TargetEdges(errv, thresh), thresh
}

// MarkGeometricThreshold marks local edges whose indicator value exceeds
// a known threshold (no communication).  Returns the number marked.
func (d *DistMesh) MarkGeometricThreshold(f func(mesh.Vec3) float64, thresh float64) int {
	errv := d.M.EdgeErrorGeometric(f)
	d.C.Compute(workMarkPerEdge * float64(len(errv)))
	return d.M.TargetEdges(errv, thresh)
}

// globalThreshold computes an error threshold such that roughly frac of
// all active edges exceed it, using a 4096-bin histogram reduced at the
// host.  Each shared edge is counted exactly once (by its owning rank),
// so the threshold — and therefore the refined mesh — is independent of
// how the mesh happens to be partitioned.
func (d *DistMesh) globalThreshold(errv []float64, frac float64) float64 {
	const bins = 4096
	// Global max error for scaling.
	localMax := 0.0
	active := d.activeLeafEdgeErrors(errv)
	for _, e := range active {
		if e > localMax {
			localMax = e
		}
	}
	globalMax := d.C.AllreduceFloat64(localMax, msg.MaxFloat64)
	if globalMax <= 0 {
		return 0
	}
	hist := make([]int64, bins)
	for _, e := range active {
		b := int(e / globalMax * (bins - 1))
		hist[b]++
	}
	// Tree-summed histogram: the host handles log P messages, not P.
	total := d.C.ReduceIntsSum(hist)
	var sum int64
	for _, v := range total {
		sum += v
	}
	want := int64(frac * float64(sum))
	var acc int64
	b := bins - 1
	for ; b >= 0; b-- {
		acc += total[b]
		if acc >= want {
			break
		}
	}
	if b < 0 {
		b = 0
	}
	return float64(b) / float64(bins-1) * globalMax
}

func (d *DistMesh) activeLeafEdgeErrors(errv []float64) []float64 {
	own := d.ResolveOwnership()
	var out []float64
	for id := range d.M.EdgeV {
		if own.Owned[id] {
			out = append(out, errv[id])
		}
	}
	return out
}

// PropagateParallel runs marking propagation to a global fixpoint:
// rounds of local propagation followed by exchange of newly marked
// shared edges (as endpoint gid pairs) with the *neighbour* ranks only —
// "every processor sends a list of all the newly-marked local copies of
// shared edges to all the other processors in their SPLs."  Returns the
// number of communication rounds.  Collective.
func (d *DistMesh) PropagateParallel() int {
	rounds := 0
	first := true
	for {
		newly := d.M.Propagate()
		d.C.Compute(workMarkPerEdge * float64(len(newly)+1))
		// On the first round also announce the initially marked shared
		// edges (belt-and-braces: symmetric indicators should already
		// agree, but forced marks from callers may not be symmetric).
		announce := newly
		if first {
			announce = d.M.MarkedEdges()
			first = false
		}
		send := make(map[int32][]int64)
		for _, id := range announce {
			spl := d.EdgeSPL(id)
			if len(spl) == 0 {
				continue
			}
			a, b := d.M.EdgeV[id][0], d.M.EdgeV[id][1]
			ga, gb := d.M.VertGID[a], d.M.VertGID[b]
			for _, r := range spl {
				send[r] = append(send[r], int64(ga), int64(gb))
			}
		}
		recv := d.exchangeWithNeighbors(tagMarkExchange, send)
		applied := 0
		for _, r := range d.neighbors {
			vals := recv[r]
			for i := 0; i+1 < len(vals); i += 2 {
				va := d.M.VertByGID(uint64(vals[i]))
				vb := d.M.VertByGID(uint64(vals[i+1]))
				if va < 0 || vb < 0 {
					continue // conservative SPL: we do not hold this edge
				}
				id := d.M.EdgeByPair(va, vb)
				if id < 0 || d.M.EdgeMark[id] {
					continue
				}
				if !d.M.EdgeLeaf(id) {
					continue
				}
				d.M.MarkEdge(id)
				applied++
			}
		}
		rounds++
		if d.C.AllreduceInt64(int64(applied), msg.SumInt64) == 0 {
			return rounds
		}
	}
}
