package pmesh

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/remap"
)

// testPartition builds a deterministic partition of the global mesh.
func testPartition(global *mesh.Mesh, p int) []int32 {
	g := dual.FromMesh(global)
	return partition.Partition(g, p, partition.Default())
}

func TestNewDistMeshCountsMatchSerial(t *testing.T) {
	global := mesh.Box(3, 3, 3, 1, 1, 1)
	serial := adapt.FromMesh(global, 0).ActiveCounts()
	for _, p := range []int{1, 2, 4} {
		part := testPartition(global, p)
		msg.Run(p, func(c *msg.Comm) {
			d := New(c, global, part, 0)
			if err := d.M.CheckInvariants(); err != nil {
				t.Errorf("p=%d rank %d: %v", p, c.Rank(), err)
			}
			got := d.GlobalCounts()
			if got != serial {
				t.Errorf("p=%d: distributed counts %+v != serial %+v", p, got, serial)
			}
		})
	}
}

func TestSPLSymmetry(t *testing.T) {
	// If rank A lists rank B in a shared vertex's SPL and B holds that
	// vertex, then B lists A for the same gid.
	global := mesh.Box(2, 2, 2, 1, 1, 1)
	part := testPartition(global, 3)
	msg.Run(3, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		// Collect (gid, rank-in-spl) pairs and send to the named rank;
		// the receiver verifies it lists the sender.
		send := make([][]int64, 3)
		for v, spl := range d.VertSPL {
			for _, r := range spl {
				send[r] = append(send[r], int64(d.M.VertGID[v]))
			}
		}
		parts := make([][]byte, 3)
		for r := range parts {
			parts[r] = msg.PutInts(send[r])
		}
		recv := c.Alltoall(parts)
		for src := 0; src < 3; src++ {
			if src == c.Rank() {
				continue
			}
			for _, gid := range msg.GetInts(recv[src]) {
				v := d.M.VertByGID(uint64(gid))
				if v < 0 {
					continue // conservative SPL: sender over-approximated
				}
				found := false
				for _, r := range d.VertSPL[v] {
					if int(r) == src {
						found = true
					}
				}
				if !found {
					t.Errorf("rank %d: vertex gid %d shared with %d but SPL %v misses it",
						c.Rank(), gid, src, d.VertSPL[v])
				}
			}
		}
	})
}

func TestParallelRefinementMatchesSerial(t *testing.T) {
	// The headline conformity test: distributed marking + propagation +
	// refinement must produce exactly the mesh the serial code produces.
	global := mesh.Box(3, 3, 2, 3, 3, 2)
	ind := adapt.SphericalIndicator(mesh.Vec3{1.5, 1.5, 1.0}, 0.9, 0.5)

	serial := adapt.FromMesh(global, 0)
	serial.BuildEdgeElems()
	errv := serial.EdgeErrorGeometric(ind)
	serial.TargetEdges(errv, 0.5)
	serial.Propagate()
	serial.Refine()
	want := serial.ActiveCounts()

	for _, p := range []int{2, 4, 7} {
		part := testPartition(global, p)
		msg.Run(p, func(c *msg.Comm) {
			d := New(c, global, part, 0)
			le := d.M.EdgeErrorGeometric(ind)
			d.M.TargetEdges(le, 0.5)
			d.PropagateParallel()
			d.Refine()
			if err := d.M.CheckInvariants(); err != nil {
				t.Errorf("p=%d rank %d: %v", p, c.Rank(), err)
			}
			got := d.GlobalCounts()
			if got != want {
				t.Errorf("p=%d: distributed refined counts %+v != serial %+v", p, got, want)
			}
		})
	}
}

func TestMarkGeometricFractionDistributed(t *testing.T) {
	global := mesh.Box(3, 3, 3, 1, 1, 1)
	ind := adapt.SphericalIndicator(mesh.Vec3{0.5, 0.5, 0.5}, 0.3, 0.3)
	part := testPartition(global, 4)
	msg.Run(4, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		n, _ := d.MarkGeometricFraction(ind, 0.10)
		total := c.AllreduceInt64(int64(n), msg.SumInt64)
		// Shared edges are counted on each sharer, so the global marked
		// count is approximate; it must be within a factor ~2 of the
		// target 10% of ~1400 edges.
		want := int64(float64(mesh.Box(3, 3, 3, 1, 1, 1).NumEdges()) * 0.10)
		if total < want/2 || total > want*3 {
			t.Errorf("marked %d edges globally, want about %d", total, want)
		}
	})
}

func TestMigrationRoundTrip(t *testing.T) {
	// Refine, migrate every family to rank 0, then scatter back; the
	// mesh must survive both moves with identical global counts.
	global := mesh.Box(2, 2, 2, 1, 1, 1)
	ind := adapt.SphericalIndicator(mesh.Vec3{0.5, 0.5, 0.5}, 0.4, 0.4)
	part := testPartition(global, 3)
	msg.Run(3, func(c *msg.Comm) {
		d := New(c, global, part, 1)
		le := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.4)
		d.PropagateParallel()
		d.Refine()
		before := d.GlobalCounts()

		allToZero := make([]int32, global.NumElems())
		st := d.Migrate(allToZero)
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d after gather-migration: %v", c.Rank(), err)
		}
		mid := d.GlobalCounts()
		if mid != before {
			t.Errorf("counts changed after migration to rank 0: %+v -> %+v", before, mid)
		}
		if c.Rank() == 0 && st.FamiliesRecv == 0 {
			t.Error("rank 0 received nothing")
		}
		serialLocal := d.M.ActiveCounts()
		if c.Rank() == 0 && serialLocal != before {
			t.Errorf("rank 0 local counts %+v != global %+v", serialLocal, before)
		}

		// Scatter back to the original partition.
		d.Migrate(part)
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d after scatter-back: %v", c.Rank(), err)
		}
		after := d.GlobalCounts()
		if after != before {
			t.Errorf("counts changed after round trip: %+v -> %+v", before, after)
		}
	})
}

func TestMigrationPreservesSolution(t *testing.T) {
	global := mesh.Box(2, 2, 1, 2, 2, 1)
	part := testPartition(global, 2)
	msg.Run(2, func(c *msg.Comm) {
		d := New(c, global, part, 1)
		// Solution = x coordinate (distinguishes interpolation from
		// transfer after we perturb it post-refinement).
		for v := range d.M.Coords {
			d.M.Sol[v] = d.M.Coords[v][0]
		}
		ind := adapt.SphericalIndicator(mesh.Vec3{1, 1, 0.5}, 0.5, 0.5)
		le := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.3)
		d.PropagateParallel()
		d.Refine()
		// Perturb the solution away from pure interpolation: sol = 2x.
		for v := range d.M.Coords {
			if d.M.VertAlive[v] {
				d.M.Sol[v] = 2 * d.M.Coords[v][0]
			}
		}
		// Swap ownership of everything.
		newOwner := make([]int32, global.NumElems())
		for g := range newOwner {
			newOwner[g] = 1 - d.RootOwner[g]
		}
		d.Migrate(newOwner)
		for v := range d.M.Coords {
			if !d.M.VertAlive[v] {
				continue
			}
			want := 2 * d.M.Coords[v][0]
			if diff := d.M.Sol[v] - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("rank %d vertex %d sol %v, want %v", c.Rank(), v, d.M.Sol[v], want)
			}
		}
	})
}

func TestMigrateThenRefineConforming(t *testing.T) {
	// Remap-before-subdivision ordering: mark, migrate with marks
	// discarded, re-mark, refine — the distributed mesh must stay
	// conforming and match the serial result.
	global := mesh.Box(3, 2, 2, 3, 2, 2)
	ind := adapt.ShockPlaneIndicator(mesh.Vec3{1.5, 0, 0}, mesh.Vec3{1, 0, 0}, 0.4)

	serial := adapt.FromMesh(global, 0)
	serial.BuildEdgeElems()
	errv := serial.EdgeErrorGeometric(ind)
	serial.TargetEdges(errv, 0.5)
	serial.Propagate()
	serial.Refine()
	want := serial.ActiveCounts()

	p := 4
	part := testPartition(global, p)
	msg.Run(p, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		// Mark + propagate, compute predicted weights, repartition,
		// migrate, re-mark, refine: the full remap-before-refinement
		// pipeline at the mesh level.
		le := d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		wc, wr := d.GatherPredictedWeights()
		g := dual.FromMesh(global)
		g.SetWeights(wc, wr)
		newPart := partition.Repartition(g, p, d.RootOwner, partition.Default())
		// Map partitions to processors minimizing movement.
		s := remap.BuildSimilarity(wr, d.RootOwner, newPart, p, 1)
		assign := remap.HeuristicMWBG(s)
		newOwner := make([]int32, len(newPart))
		for r, np := range newPart {
			newOwner[r] = assign[np]
		}
		d.M.ClearMarks()
		d.Migrate(newOwner)
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d post-migrate: %v", c.Rank(), err)
		}
		// Re-mark on the migrated mesh and refine.
		le = d.M.EdgeErrorGeometric(ind)
		d.M.TargetEdges(le, 0.5)
		d.PropagateParallel()
		d.Refine()
		if err := d.M.CheckInvariants(); err != nil {
			t.Errorf("rank %d post-refine: %v", c.Rank(), err)
		}
		got := d.GlobalCounts()
		if got != want {
			t.Errorf("remap-before-refine counts %+v != serial %+v", got, want)
		}
	})
}

func TestGatherWeights(t *testing.T) {
	global := mesh.Box(2, 2, 2, 1, 1, 1)
	part := testPartition(global, 2)
	msg.Run(2, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		wc, wr := d.GatherWeights()
		for g := range wc {
			if wc[g] != 1 || wr[g] != 1 {
				t.Errorf("unrefined root %d weights (%d,%d)", g, wc[g], wr[g])
			}
		}
	})
}

func TestLocalRootBookkeeping(t *testing.T) {
	global := mesh.Box(2, 2, 1, 1, 1, 1)
	part := testPartition(global, 2)
	msg.Run(2, func(c *msg.Comm) {
		d := New(c, global, part, 0)
		ids := d.LocalRootIDs()
		for _, g := range ids {
			l := d.LocalRootElem(g)
			if l < 0 {
				t.Fatalf("rank %d: root %d not local", c.Rank(), g)
			}
			if d.GlobalRootID(l) != g {
				t.Fatalf("rank %d: root map not inverse", c.Rank())
			}
			if part[g] != int32(c.Rank()) {
				t.Fatalf("rank %d owns root %d assigned to %d", c.Rank(), g, part[g])
			}
		}
		total := c.AllreduceInt64(int64(len(ids)), msg.SumInt64)
		if int(total) != global.NumElems() {
			t.Errorf("roots partitioned into %d, want %d", total, global.NumElems())
		}
	})
}

func TestIntersectRanks(t *testing.T) {
	got := intersectRanks([]int32{1, 3, 5, 7}, []int32{2, 3, 5, 8})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("intersect = %v", got)
	}
	if intersectRanks(nil, []int32{1}) != nil {
		t.Error("empty intersection should be nil")
	}
}

func TestAddRemoveRank(t *testing.T) {
	var l []int32
	l = addRank(l, 5)
	l = addRank(l, 2)
	l = addRank(l, 5)
	l = addRank(l, 9)
	if len(l) != 3 || l[0] != 2 || l[1] != 5 || l[2] != 9 {
		t.Errorf("addRank = %v", l)
	}
	l = removeRank(l, 5)
	if len(l) != 2 || l[0] != 2 || l[1] != 9 {
		t.Errorf("removeRank = %v", l)
	}
}
