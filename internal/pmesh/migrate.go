package pmesh

import (
	"fmt"
	"math"
	"sort"

	"plum/internal/adapt"
	"plum/internal/msg"
)

// Data remapping (paper Section 4.6): when the load balancer adopts a new
// partition-to-processor assignment, every element family whose dual
// vertex moved is packed — the complete refinement tree, because "all
// descendants of the root element must move with it" — shipped to its new
// owner, and unpacked there, merging with the receiver's existing shared
// objects via global ids.

// MigrateStats reports one remapping step.
type MigrateStats struct {
	FamiliesSent int
	ElemsSent    int   // alive elements packed (the Wremap volume)
	BytesSent    int64 // payload bytes leaving this rank
	MsgsSent     int   // destinations receiving a non-empty message
	FamiliesRecv int
	ElemsRecv    int
}

// Migrate moves local families to their new owners according to newOwner
// (global root id -> rank) and installs newOwner as the replicated
// ownership.  Collective.
func (d *DistMesh) Migrate(newOwner []int32) MigrateStats {
	if len(newOwner) != d.Global.NumElems() {
		panic(fmt.Sprintf("pmesh: newOwner has %d entries for %d roots", len(newOwner), d.Global.NumElems()))
	}
	me := int32(d.C.Rank())
	p := d.C.Size()
	var st MigrateStats

	// Pack departing families per destination.
	bufs := make([][]int64, p)
	var departing []int32 // global ids
	for _, g := range d.LocalRootIDs() {
		dst := newOwner[g]
		if dst == me {
			continue
		}
		n := d.packFamily(&bufs[dst], g)
		st.FamiliesSent++
		st.ElemsSent += n
		departing = append(departing, g)
	}
	d.C.Compute(workPackPerElem * float64(st.ElemsSent))

	// Remove departing families before unpacking arrivals (so purged
	// shared objects can be revived cleanly by the unpacker).
	for _, g := range departing {
		d.M.RemoveFamily(d.localRoot[g])
		delete(d.globalRoot, d.localRoot[g])
		delete(d.localRoot, g)
	}

	// Exchange: migration destinations are arbitrary ranks, so the
	// incoming message count per rank is agreed via a tree-summed
	// indicator vector, then only the real transfers travel ("each set
	// of elements that is moved from one processor to another" is one
	// message — the N of the cost model).
	indicator := make([]int64, p)
	for r := 0; r < p; r++ {
		if len(bufs[r]) > 0 && r != int(me) {
			indicator[r] = 1
		}
	}
	incoming := d.C.ReduceIntsSum(indicator)[me]
	for r := 0; r < p; r++ {
		if len(bufs[r]) == 0 || r == int(me) {
			continue
		}
		payload := msg.PutInts(bufs[r])
		d.C.Send(r, tagMigrationData, payload)
		st.MsgsSent++
		st.BytesSent += int64(len(payload))
	}

	// Unpack arrivals in sender-rank order for determinism.
	arrivals := make([]*msg.Message, 0, incoming)
	for i := int64(0); i < incoming; i++ {
		arrivals = append(arrivals, d.C.Recv(msg.AnySource, tagMigrationData))
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Src < arrivals[j].Src })
	for _, m := range arrivals {
		words := msg.GetInts(m.Data)
		for pos := 0; pos < len(words); {
			var g int32
			var n int
			g, n, pos = d.unpackFamily(words, pos)
			st.FamiliesRecv++
			st.ElemsRecv += n
			_ = g
		}
	}
	d.C.Compute(workUnpackPerElem * float64(st.ElemsRecv))

	d.RootOwner = append(d.RootOwner[:0], newOwner...)
	d.UpdateSPLs()
	return st
}

// packFamily serializes global root g's family into buf.  Layout (int64
// words; floats as IEEE bits):
//
//	globalRoot
//	nverts, then per vertex: gid, x, y, z, sol[NComp]
//	nelems, then per element (BFS order): parentPos (-1 root), 4 vertex positions
//	nedges, then per edge: posA, posB, bisected(0/1)
//	nbfaces, then per face (tree order): parentPos (-1 root), 3 vertex positions
//
// Returns the number of elements packed.
func (d *DistMesh) packFamily(buf *[]int64, g int32) int {
	m := d.M
	root := d.localRoot[g]
	elems := m.FamilyElems(root)

	// Vertex closure: corners of every family element (midpoints of
	// bisected family edges are corners of child elements, so they are
	// covered).
	vpos := make(map[int32]int32)
	var verts []int32
	addV := func(v int32) int32 {
		if p, ok := vpos[v]; ok {
			return p
		}
		p := int32(len(verts))
		vpos[v] = p
		verts = append(verts, v)
		return p
	}
	epos := make(map[int32]bool)
	var edges []int32
	for _, e := range elems {
		for _, v := range m.ElemVerts[e] {
			addV(v)
		}
		for _, id := range m.ElemEdges[e] {
			if !epos[id] {
				epos[id] = true
				edges = append(edges, id)
			}
		}
	}
	bfaces := m.FamilyBFaces(root)

	out := *buf
	out = append(out, int64(g))
	out = append(out, int64(len(verts)))
	for _, v := range verts {
		out = append(out, int64(m.VertGID[v]))
		c := m.Coords[v]
		out = append(out, int64(math.Float64bits(c[0])), int64(math.Float64bits(c[1])), int64(math.Float64bits(c[2])))
		for k := 0; k < m.NComp; k++ {
			out = append(out, int64(math.Float64bits(m.Sol[int(v)*m.NComp+k])))
		}
	}
	out = append(out, int64(len(elems)))
	eIdx := make(map[int32]int32, len(elems))
	for i, e := range elems {
		eIdx[e] = int32(i)
	}
	for _, e := range elems {
		pp := int64(-1)
		if par := m.ElemParent[e]; par >= 0 {
			pp = int64(eIdx[par])
		}
		out = append(out, pp)
		for _, v := range m.ElemVerts[e] {
			out = append(out, int64(vpos[v]))
		}
	}
	out = append(out, int64(len(edges)))
	for _, id := range edges {
		var flags int64
		if !m.EdgeLeaf(id) {
			flags |= 1
		}
		if m.EdgeMark[id] {
			flags |= 2 // refinement marks travel with the mesh, so the
			// remap-before-subdivision ordering needs no re-marking
		}
		out = append(out, int64(vpos[m.EdgeV[id][0]]), int64(vpos[m.EdgeV[id][1]]), flags)
	}
	out = append(out, int64(len(bfaces)))
	fIdx := make(map[int32]int32, len(bfaces))
	for i, f := range bfaces {
		fIdx[f] = int32(i)
	}
	for _, f := range bfaces {
		pp := int64(-1)
		if par := d.bfaceParentOf(f); par >= 0 {
			pp = int64(fIdx[par])
		}
		out = append(out, pp)
		for _, v := range m.BFaceVerts[f] {
			out = append(out, int64(vpos[v]))
		}
	}
	*buf = out
	return len(elems)
}

// bfaceParentOf returns the parent of boundary face f, or -1.
func (d *DistMesh) bfaceParentOf(f int32) int32 { return d.M.BFaceParent(f) }

// unpackFamily reconstructs one family from words starting at pos,
// merging shared objects with the existing local mesh and updating the
// root bookkeeping.  Returns the global root id, the element count, and
// the next read position.
func (d *DistMesh) unpackFamily(words []int64, pos int) (int32, int, int) {
	g, rootLocal, n, next := unpackFamilyInto(d.M, words, pos)
	d.localRoot[g] = rootLocal
	d.globalRoot[rootLocal] = g
	return g, n, next
}

// unpackFamilyInto reconstructs one serialized family into an arbitrary
// adapted mesh (the migration target or the finalization host mesh).
func unpackFamilyInto(m *adapt.Mesh, words []int64, pos int) (g, rootLocal int32, nelems, next int) {
	g = int32(words[pos])
	pos++

	nverts := int(words[pos])
	pos++
	lverts := make([]int32, nverts)
	sol := make([]float64, m.NComp)
	for i := 0; i < nverts; i++ {
		gid := uint64(words[pos])
		x := math.Float64frombits(uint64(words[pos+1]))
		y := math.Float64frombits(uint64(words[pos+2]))
		z := math.Float64frombits(uint64(words[pos+3]))
		pos += 4
		for k := 0; k < m.NComp; k++ {
			sol[k] = math.Float64frombits(uint64(words[pos]))
			pos++
		}
		lverts[i] = m.AddVertex(gid, [3]float64{x, y, z}, sol)
	}

	nelems = int(words[pos])
	pos++
	lelems := make([]int32, nelems)
	rootLocal = -1
	for i := 0; i < nelems; i++ {
		pp := words[pos]
		var ev [4]int32
		for k := 0; k < 4; k++ {
			ev[k] = lverts[words[pos+1+k]]
		}
		pos += 5
		if pp < 0 {
			rootLocal = m.AddRootElem(ev)
			lelems[i] = rootLocal
		} else {
			lelems[i] = m.AddChildElem(lelems[pp], ev)
		}
	}

	nedges := int(words[pos])
	pos++
	for i := 0; i < nedges; i++ {
		va := lverts[words[pos]]
		vb := lverts[words[pos+1]]
		flags := words[pos+2]
		pos += 3
		id := m.EnsureEdge(va, vb)
		if flags&1 != 0 {
			m.EnsureBisected(id)
		}
		if flags&2 != 0 {
			m.MarkEdge(id)
		}
	}

	nbf := int(words[pos])
	pos++
	lfaces := make([]int32, nbf)
	for i := 0; i < nbf; i++ {
		pp := words[pos]
		var fv [3]int32
		for k := 0; k < 3; k++ {
			fv[k] = lverts[words[pos+1+k]]
		}
		pos += 4
		if pp < 0 {
			lfaces[i] = m.AddRootBFace(fv, rootLocal)
		} else {
			lfaces[i] = m.AddChildBFace(lfaces[pp], fv)
		}
	}
	return g, rootLocal, nelems, pos
}
