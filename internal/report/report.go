package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %g
// unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", totalWidth(widths)))
	for _, row := range t.rows {
		sb.Reset()
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	fmt.Fprintln(w)
}

func totalWidth(widths []int) int {
	t := 0
	for _, w := range widths {
		t += w + 2
	}
	if t >= 2 {
		t -= 2
	}
	return t
}

// Series is one named curve of a plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot renders curves as a crude ASCII chart (log-x aware callers should
// pre-transform X).  Each series gets a distinct marker.
func Plot(w io.Writer, title, xlabel, ylabel string, series []Series, height int) {
	if height <= 0 {
		height = 14
	}
	const width = 64
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first || xmax == xmin {
		fmt.Fprintf(w, "%s: no data\n", title)
		return
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'o', '#', '+', 'x', '*', '@'}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mk
			}
		}
	}
	fmt.Fprintf(w, "%s  (y: %s in [%.3g, %.3g]; x: %s in [%.3g, %.3g])\n",
		title, ylabel, ymin, ymax, xlabel, xmin, xmax)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	var legend strings.Builder
	for si, s := range series {
		fmt.Fprintf(&legend, "  %c=%s", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintln(w, legend.String())
	fmt.Fprintln(w)
}
