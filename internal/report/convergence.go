package report

import "math"

// ResidualSeries converts a PCG residual history into a plottable
// series: x is the iteration number, y is log10(||r_k||/||r_0||), the
// standard convergence-plot axes for Krylov solvers.  A zero or missing
// initial residual yields an empty series.
func ResidualSeries(name string, residuals []float64) Series {
	s := Series{Name: name}
	if len(residuals) == 0 || residuals[0] <= 0 {
		return s
	}
	r0 := residuals[0]
	for k, r := range residuals {
		if r <= 0 {
			break
		}
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, math.Log10(r/r0))
	}
	return s
}
