// Package report renders aligned text tables and simple ASCII series
// plots for the experiment harness, so cmd/plumbench, cmd/plumviz, and
// the examples present the reproduced tables and figures in a form
// directly comparable to the paper's.
//
// Entry points.  NewTable + AddRow + Render produce an aligned table
// with a title rule; Plot renders one or more Series as an ASCII
// scatter over a labelled grid; ResidualSeries adapts a residual
// history into a log10 convergence curve.
//
// Invariants.  Rendering is purely a function of the supplied values —
// no timestamps, no environment — so experiment output can be diffed
// bitwise across runs, which both CI's determinism job (double-run
// diff) and the README's regenerated results tables rely on.
package report
