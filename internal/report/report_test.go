package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "A", "Blong", "C")
	tb.AddRow(1, "x", 2.5)
	tb.AddRow(1000, "yyyy", 0.00012)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Blong") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "yyyy") {
		t.Error("missing cell")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Column alignment: the second column starts at the same offset in
	// both data rows.
	h := strings.Index(lines[3], "x")
	g := strings.Index(lines[4], "yyyy")
	if h != g {
		t.Errorf("columns misaligned: %d vs %d", h, g)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234:    "1234",
		2.5:     "2.50",
		0.0123:  "0.0123",
		1.2e-06: "1.20e-06",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPlotBasic(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", []Series{
		{Name: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
	}, 10)
	out := buf.String()
	if !strings.Contains(out, "o=up") || !strings.Contains(out, "#=down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if strings.Count(out, "o") < 4 {
		t.Error("markers missing")
	}
}

func TestPlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", nil, 5)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestPlotDegenerateY(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{3, 3}}}, 5)
	if len(buf.String()) == 0 {
		t.Error("flat series should still render")
	}
}
