package mesh

import (
	"fmt"
	"math"
	"sort"
)

// Vec3 is a point or vector in R^3.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Mid returns the midpoint of v and w.
func Mid(v, w Vec3) Vec3 { return v.Add(w).Scale(0.5) }

// Canonical local numbering of a tetrahedron (v0,v1,v2,v3):
//
// TetEdgeVerts[le] gives the two local vertices of local edge le.  The
// paper's 3D_TAG code defines elements by their six edges; this table is
// the bridge between the vertex and edge views.
var TetEdgeVerts = [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

// TetFaces[lf] gives the three local vertices of local face lf.
var TetFaces = [4][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}

// TetFaceEdges[lf] gives the three local edges of local face lf, consistent
// with TetEdgeVerts and TetFaces.
var TetFaceEdges = [4][3]int{{0, 1, 3}, {0, 2, 4}, {1, 2, 5}, {3, 4, 5}}

// OppositeVertex[lf] is the local vertex not on local face lf.
var OppositeVertex = [4]int{3, 2, 1, 0}

// Mesh is a conforming tetrahedral mesh.  Elems is authoritative; the edge
// and boundary-face tables are derived by BuildDerived.
type Mesh struct {
	Coords []Vec3     // vertex coordinates
	Elems  [][4]int32 // element -> 4 vertex ids

	// Derived connectivity (valid after BuildDerived):
	Edges     [][2]int32 // edge -> endpoint vertex ids, lo < hi
	ElemEdges [][6]int32 // element -> 6 edge ids in TetEdgeVerts order
	BFaces    [][3]int32 // boundary face -> 3 vertex ids (sorted)
	BFaceElem []int32    // boundary face -> owning element id
}

// NumVerts returns the number of vertices.
func (m *Mesh) NumVerts() int { return len(m.Coords) }

// NumElems returns the number of tetrahedra.
func (m *Mesh) NumElems() int { return len(m.Elems) }

// NumEdges returns the number of edges (after BuildDerived).
func (m *Mesh) NumEdges() int { return len(m.Edges) }

// NumBFaces returns the number of boundary faces (after BuildDerived).
func (m *Mesh) NumBFaces() int { return len(m.BFaces) }

// edgeKey returns the canonical (lo, hi) pair for vertices a and b.
func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// faceKey returns the canonical sorted triple for vertices a, b, c.
func faceKey(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

// BuildDerived computes the edge table, per-element edge lists, and the
// external boundary faces (faces referenced by exactly one element).
func (m *Mesh) BuildDerived() {
	edgeID := make(map[[2]int32]int32, 2*len(m.Elems))
	m.Edges = m.Edges[:0]
	m.ElemEdges = make([][6]int32, len(m.Elems))
	for e, ev := range m.Elems {
		for le, pair := range TetEdgeVerts {
			k := edgeKey(ev[pair[0]], ev[pair[1]])
			id, ok := edgeID[k]
			if !ok {
				id = int32(len(m.Edges))
				m.Edges = append(m.Edges, k)
				edgeID[k] = id
			}
			m.ElemEdges[e][le] = id
		}
	}

	// A face interior to the mesh is shared by exactly two tets; a face
	// seen once is on the external boundary.
	type faceUse struct {
		count int
		elem  int32
	}
	faces := make(map[[3]int32]*faceUse, 2*len(m.Elems))
	for e, ev := range m.Elems {
		for _, lf := range TetFaces {
			k := faceKey(ev[lf[0]], ev[lf[1]], ev[lf[2]])
			if fu, ok := faces[k]; ok {
				fu.count++
			} else {
				faces[k] = &faceUse{count: 1, elem: int32(e)}
			}
		}
	}
	m.BFaces = m.BFaces[:0]
	m.BFaceElem = m.BFaceElem[:0]
	type bf struct {
		key  [3]int32
		elem int32
	}
	var bfs []bf
	for k, fu := range faces {
		if fu.count == 1 {
			bfs = append(bfs, bf{k, fu.elem})
		}
	}
	// Deterministic order regardless of map iteration.
	sort.Slice(bfs, func(i, j int) bool {
		a, b := bfs[i].key, bfs[j].key
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, f := range bfs {
		m.BFaces = append(m.BFaces, f.key)
		m.BFaceElem = append(m.BFaceElem, f.elem)
	}
}

// VertexEdges builds the vertex -> incident edges lists.
func (m *Mesh) VertexEdges() [][]int32 {
	ve := make([][]int32, len(m.Coords))
	for e, pair := range m.Edges {
		ve[pair[0]] = append(ve[pair[0]], int32(e))
		ve[pair[1]] = append(ve[pair[1]], int32(e))
	}
	return ve
}

// EdgeElems builds the edge -> sharing elements lists.
func (m *Mesh) EdgeElems() [][]int32 {
	ee := make([][]int32, len(m.Edges))
	for e, edges := range m.ElemEdges {
		for _, id := range edges {
			ee[id] = append(ee[id], int32(e))
		}
	}
	return ee
}

// FaceAdjacency returns, for each element, the ids of the up-to-four
// elements sharing a face with it (-1 where the face is on the boundary).
// Entry [e][lf] corresponds to local face lf of element e.  This is the
// relation that defines the dual graph (paper Section 4.1).
func (m *Mesh) FaceAdjacency() [][4]int32 {
	type pairUse struct {
		e0, e1 int32 // elements using the face; e1 == -1 until the second
		f0, f1 int8  // local face index within each
	}
	faces := make(map[[3]int32]*pairUse, 2*len(m.Elems))
	for e, ev := range m.Elems {
		for lf, tri := range TetFaces {
			k := faceKey(ev[tri[0]], ev[tri[1]], ev[tri[2]])
			if pu, ok := faces[k]; ok {
				pu.e1 = int32(e)
				pu.f1 = int8(lf)
			} else {
				faces[k] = &pairUse{e0: int32(e), e1: -1, f0: int8(lf)}
			}
		}
	}
	adj := make([][4]int32, len(m.Elems))
	for e := range adj {
		adj[e] = [4]int32{-1, -1, -1, -1}
	}
	for _, pu := range faces {
		if pu.e1 >= 0 {
			adj[pu.e0][pu.f0] = pu.e1
			adj[pu.e1][pu.f1] = pu.e0
		}
	}
	return adj
}

// TetVolume returns the (unsigned) volume of the tetrahedron with the
// given corner coordinates.
func TetVolume(a, b, c, d Vec3) float64 {
	return math.Abs(b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a))) / 6
}

// ElemVolume returns the volume of element e.
func (m *Mesh) ElemVolume(e int) float64 {
	ev := m.Elems[e]
	return TetVolume(m.Coords[ev[0]], m.Coords[ev[1]], m.Coords[ev[2]], m.Coords[ev[3]])
}

// Check validates structural invariants of the mesh: index ranges, element
// non-degeneracy, edge table consistency, and that every interior face is
// shared by exactly two elements.  It returns the first violation found.
func (m *Mesh) Check() error {
	nv := int32(len(m.Coords))
	for e, ev := range m.Elems {
		seen := map[int32]bool{}
		for _, v := range ev {
			if v < 0 || v >= nv {
				return fmt.Errorf("mesh: element %d references vertex %d out of range [0,%d)", e, v, nv)
			}
			if seen[v] {
				return fmt.Errorf("mesh: element %d has repeated vertex %d", e, v)
			}
			seen[v] = true
		}
	}
	if m.ElemEdges != nil {
		if len(m.ElemEdges) != len(m.Elems) {
			return fmt.Errorf("mesh: ElemEdges length %d != Elems length %d", len(m.ElemEdges), len(m.Elems))
		}
		for e, edges := range m.ElemEdges {
			for le, id := range edges {
				if id < 0 || int(id) >= len(m.Edges) {
					return fmt.Errorf("mesh: element %d edge slot %d out of range", e, le)
				}
				want := edgeKey(m.Elems[e][TetEdgeVerts[le][0]], m.Elems[e][TetEdgeVerts[le][1]])
				if m.Edges[id] != want {
					return fmt.Errorf("mesh: element %d local edge %d mismatch: edge %d is %v, want %v",
						e, le, id, m.Edges[id], want)
				}
			}
		}
	}
	// Face conformity: every face must appear at most twice.
	faces := make(map[[3]int32]int, 2*len(m.Elems))
	for _, ev := range m.Elems {
		for _, tri := range TetFaces {
			faces[faceKey(ev[tri[0]], ev[tri[1]], ev[tri[2]])]++
		}
	}
	boundary := 0
	for k, n := range faces {
		if n > 2 {
			return fmt.Errorf("mesh: face %v shared by %d elements", k, n)
		}
		if n == 1 {
			boundary++
		}
	}
	if m.BFaces != nil && boundary != len(m.BFaces) {
		return fmt.Errorf("mesh: %d boundary faces found, table has %d", boundary, len(m.BFaces))
	}
	return nil
}
