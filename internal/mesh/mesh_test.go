package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxCounts(t *testing.T) {
	cases := []struct {
		nx, ny, nz int
	}{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}}
	for _, c := range cases {
		m := Box(c.nx, c.ny, c.nz, 1, 1, 1)
		wantV := (c.nx + 1) * (c.ny + 1) * (c.nz + 1)
		wantE := 6 * c.nx * c.ny * c.nz
		if m.NumVerts() != wantV {
			t.Errorf("Box(%d,%d,%d): %d verts, want %d", c.nx, c.ny, c.nz, m.NumVerts(), wantV)
		}
		if m.NumElems() != wantE {
			t.Errorf("Box(%d,%d,%d): %d elems, want %d", c.nx, c.ny, c.nz, m.NumElems(), wantE)
		}
		if err := m.Check(); err != nil {
			t.Errorf("Box(%d,%d,%d): %v", c.nx, c.ny, c.nz, err)
		}
	}
}

func TestBoxUnitCubeKnownCounts(t *testing.T) {
	// A single cube split into 6 Kuhn tets: 8 verts, 19 edges (12 cube
	// edges + 6 face diagonals + 1 main diagonal), 12 boundary faces.
	m := Box(1, 1, 1, 1, 1, 1)
	if m.NumEdges() != 19 {
		t.Errorf("unit cube edges = %d, want 19", m.NumEdges())
	}
	if m.NumBFaces() != 12 {
		t.Errorf("unit cube boundary faces = %d, want 12", m.NumBFaces())
	}
}

func TestBoxVolumeConservation(t *testing.T) {
	m := Box(3, 4, 5, 2.0, 1.5, 1.0)
	var total float64
	for e := range m.Elems {
		total += m.ElemVolume(e)
	}
	want := 2.0 * 1.5 * 1.0
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total volume %v, want %v", total, want)
	}
}

func TestBoxNoDegenerateElements(t *testing.T) {
	m := Box(4, 3, 2, 1, 1, 1)
	for e := range m.Elems {
		if m.ElemVolume(e) <= 0 {
			t.Fatalf("element %d has non-positive volume", e)
		}
	}
}

func TestEulerCharacteristic(t *testing.T) {
	// For a triangulated 3-ball: V - E + F - C = 1, where F counts all
	// distinct triangular faces.
	m := Box(3, 3, 3, 1, 1, 1)
	faces := make(map[[3]int32]bool)
	for _, ev := range m.Elems {
		for _, tri := range TetFaces {
			faces[faceKey(ev[tri[0]], ev[tri[1]], ev[tri[2]])] = true
		}
	}
	chi := m.NumVerts() - m.NumEdges() + len(faces) - m.NumElems()
	if chi != 1 {
		t.Errorf("Euler characteristic = %d, want 1", chi)
	}
}

func TestFaceAdjacency(t *testing.T) {
	m := Box(2, 2, 2, 1, 1, 1)
	adj := m.FaceAdjacency()
	// Symmetry: if b is a face-neighbour of a, then a is one of b.
	for e := range adj {
		for _, nb := range adj[e] {
			if nb < 0 {
				continue
			}
			found := false
			for _, back := range adj[nb] {
				if back == int32(e) {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric between %d and %d", e, nb)
			}
		}
	}
	// Total interior face references must be even and consistent with the
	// boundary count: 4*C = 2*interior + boundary.
	interior := 0
	for e := range adj {
		for _, nb := range adj[e] {
			if nb >= 0 {
				interior++
			}
		}
	}
	if interior%2 != 0 {
		t.Fatalf("odd interior face reference count %d", interior)
	}
	if 4*m.NumElems() != interior+m.NumBFaces() {
		t.Errorf("face accounting: 4C=%d, 2*int+bdy=%d", 4*m.NumElems(), interior+m.NumBFaces())
	}
}

func TestBFaceElemOwnership(t *testing.T) {
	m := Box(2, 3, 1, 1, 1, 1)
	for i, bf := range m.BFaces {
		ev := m.Elems[m.BFaceElem[i]]
		// Every vertex of the boundary face must belong to the owner.
		for _, v := range bf {
			found := false
			for _, w := range ev {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("bface %d vertex %d not in owner element", i, v)
			}
		}
	}
}

func TestTetTablesConsistent(t *testing.T) {
	// TetFaceEdges must match TetEdgeVerts and TetFaces.
	for lf, tri := range TetFaces {
		onFace := map[int]bool{tri[0]: true, tri[1]: true, tri[2]: true}
		for _, le := range TetFaceEdges[lf] {
			pair := TetEdgeVerts[le]
			if !onFace[pair[0]] || !onFace[pair[1]] {
				t.Errorf("face %d edge %d endpoints %v not on face %v", lf, le, pair, tri)
			}
		}
		if onFace[OppositeVertex[lf]] {
			t.Errorf("OppositeVertex[%d]=%d lies on the face", lf, OppositeVertex[lf])
		}
	}
}

func TestPaperScaleBox(t *testing.T) {
	if testing.Short() {
		t.Skip("large mesh in -short mode")
	}
	m := PaperScaleBox()
	if m.NumElems() != 60912 {
		t.Errorf("paper-scale mesh has %d elements, want 60912", m.NumElems())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := Mid(v, w); got != (Vec3{2.5, 3.5, 4.5}) {
		t.Errorf("Mid = %v", got)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	prop := func(a, b [3]float64) bool {
		v, w := Vec3(a), Vec3(b)
		c := v.Cross(w)
		// Cross product orthogonal to both inputs (within fp tolerance
		// scaled by the magnitudes involved).
		scale := v.Norm() * w.Norm()
		if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		return math.Abs(c.Dot(v)) <= 1e-9*scale*v.Norm() &&
			math.Abs(c.Dot(w)) <= 1e-9*scale*w.Norm()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTetVolumeUnit(t *testing.T) {
	v := TetVolume(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1})
	if math.Abs(v-1.0/6.0) > 1e-12 {
		t.Errorf("unit tet volume = %v, want 1/6", v)
	}
}

func TestVertexEdgesAndEdgeElems(t *testing.T) {
	m := Box(2, 2, 2, 1, 1, 1)
	ve := m.VertexEdges()
	count := 0
	for _, edges := range ve {
		count += len(edges)
	}
	if count != 2*m.NumEdges() {
		t.Errorf("vertex-edge incidence total %d, want %d", count, 2*m.NumEdges())
	}
	ee := m.EdgeElems()
	count = 0
	for _, elems := range ee {
		count += len(elems)
	}
	if count != 6*m.NumElems() {
		t.Errorf("edge-elem incidence total %d, want %d", count, 6*m.NumElems())
	}
}

func TestCylinderDistance(t *testing.T) {
	// Point at radius 2 from the z-axis, cylinder radius 1 -> distance 1.
	d := CylinderDistance(Vec3{2, 0, 5}, Vec3{0, 0, 0}, Vec3{0, 0, 1}, 1)
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("cylinder distance = %v, want 1", d)
	}
	// On the surface -> 0.
	d = CylinderDistance(Vec3{0, 1, -3}, Vec3{0, 0, 0}, Vec3{0, 0, 1}, 1)
	if math.Abs(d) > 1e-12 {
		t.Errorf("on-surface distance = %v, want 0", d)
	}
}

func TestCheckDetectsBadElement(t *testing.T) {
	m := Box(1, 1, 1, 1, 1, 1)
	m.Elems[0][0] = 99 // out of range
	if err := m.Check(); err == nil {
		t.Error("Check accepted out-of-range vertex")
	}
	m = Box(1, 1, 1, 1, 1, 1)
	m.Elems[0][1] = m.Elems[0][0] // repeated vertex
	if err := m.Check(); err == nil {
		t.Error("Check accepted degenerate element")
	}
}
