// Package mesh provides the unstructured tetrahedral mesh representation
// used throughout the PLUM reproduction: vertices, edges, tetrahedral
// elements, and external boundary faces, together with the incidence lists
// the paper's mesh adaption scheme relies on ("each vertex has a list of
// all the edges that are incident upon it... each edge has a list of all
// the elements that share it").
//
// The paper's experiments use a 60,968-element tetrahedral mesh around a
// UH-1H helicopter rotor blade.  That mesh is not available, so gen.go
// provides a synthetic box mesh generator (six tetrahedra per hexahedral
// cell, the Kuhn subdivision) that produces conforming meshes of the same
// scale.
//
// Entry points.  Box builds the reduced-scale synthetic mesh;
// PaperScaleBox matches the paper's element count; Mesh carries the
// incidence structure every other package consumes.
//
// Invariants.  Object identity is positional and stable: a vertex,
// edge, or element never changes index once created, which is what the
// global-id discipline of internal/adapt and the replicated structures
// of internal/pmesh build on.  Generation is deterministic — the same
// dimensions always produce the identical mesh, the anchor of every
// bitwise-pinned golden test downstream.
package mesh
