package mesh

import "math"

// Box generates a conforming tetrahedral mesh of the axis-aligned box
// [0,lx]x[0,ly]x[0,lz] with nx*ny*nz hexahedral cells, each split into six
// tetrahedra along the cell's main diagonal (the Kuhn / Freudenthal
// subdivision).  Because every cell uses the same diagonal directions the
// mesh is conforming: neighbouring cells agree on the diagonals of their
// shared faces.
//
// The result has (nx+1)(ny+1)(nz+1) vertices and 6*nx*ny*nz elements; the
// paper-scale substitute for the 60,968-element rotor mesh is
// Box(47, 18, 12, ...) with 60,912 elements.
func Box(nx, ny, nz int, lx, ly, lz float64) *Mesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("mesh: Box requires at least one cell per axis")
	}
	m := &Mesh{}
	vid := func(i, j, k int) int32 {
		return int32((k*(ny+1)+j)*(nx+1) + i)
	}
	m.Coords = make([]Vec3, (nx+1)*(ny+1)*(nz+1))
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				m.Coords[vid(i, j, k)] = Vec3{
					lx * float64(i) / float64(nx),
					ly * float64(j) / float64(ny),
					lz * float64(k) / float64(nz),
				}
			}
		}
	}

	// The six Kuhn tetrahedra of the unit cube, as corner offsets.  Every
	// tet contains the main diagonal (0,0,0)-(1,1,1).
	kuhn := [6][4][3]int{
		{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		{{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {1, 1, 1}},
		{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 1, 1}},
		{{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}},
		{{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1}},
		{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}},
	}
	m.Elems = make([][4]int32, 0, 6*nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				for _, tet := range kuhn {
					var ev [4]int32
					for c, off := range tet {
						ev[c] = vid(i+off[0], j+off[1], k+off[2])
					}
					m.Elems = append(m.Elems, ev)
				}
			}
		}
	}
	m.BuildDerived()
	return m
}

// PaperScaleBox returns the default mesh used by the experiment harness: a
// box mesh whose element count (60,912) matches the paper's initial rotor
// mesh (60,968 elements) to within 0.1%.
func PaperScaleBox() *Mesh {
	return Box(47, 18, 12, 4.7, 1.8, 1.2)
}

// Centroid returns the centroid of element e.
func (m *Mesh) Centroid(e int) Vec3 {
	ev := m.Elems[e]
	c := m.Coords[ev[0]].Add(m.Coords[ev[1]]).Add(m.Coords[ev[2]]).Add(m.Coords[ev[3]])
	return c.Scale(0.25)
}

// EdgeMid returns the midpoint of edge id (after BuildDerived).
func (m *Mesh) EdgeMid(id int) Vec3 {
	pair := m.Edges[id]
	return Mid(m.Coords[pair[0]], m.Coords[pair[1]])
}

// CylinderDistance returns the distance of point p from the surface of an
// infinite cylinder with the given axis point, axis direction (unit), and
// radius.  Error indicators built on this mimic the paper's shock surfaces
// around a rotor blade: edges crossing or near the cylinder surface get
// large error values.
func CylinderDistance(p, axisPoint, axisDir Vec3, radius float64) float64 {
	d := p.Sub(axisPoint)
	along := d.Dot(axisDir)
	radial := d.Sub(axisDir.Scale(along)).Norm()
	return math.Abs(radial - radius)
}

// PlaneDistance returns the distance of point p from the plane through
// origin with unit normal n.
func PlaneDistance(p, origin, n Vec3) float64 {
	return math.Abs(p.Sub(origin).Dot(n))
}
