package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("plum_test_total", "path", "fast")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("plum_test_total", "path", "fast") != c {
		t.Error("counter not interned by (name, labels)")
	}
	if r.Counter("plum_test_total", "path", "slow") == c {
		t.Error("distinct labels returned the same counter")
	}

	g := r.Gauge("plum_test_highwater")
	g.SetMax(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax gauge = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Errorf("Set gauge = %d, want 2", got)
	}

	if v := r.Value("plum_test_total", "path", "fast"); v != 5 {
		t.Errorf("Value(counter) = %v, want 5", v)
	}
	if v := r.Value("plum_test_missing"); v != 0 {
		t.Errorf("Value(missing) = %v, want 0", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plum_test_seconds", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 3.05 {
		t.Errorf("sum = %v, want 3.05", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE plum_test_seconds histogram",
		`plum_test_seconds_bucket{le="0.1"} 1`,
		`plum_test_seconds_bucket{le="1"} 3`,
		`plum_test_seconds_bucket{le="+Inf"} 4`,
		"plum_test_seconds_sum 3.05",
		"plum_test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("plum_a_total", "class", "user").Add(3)
	r.Counter("plum_a_total", "class", "coll").Add(1)
	r.Gauge("plum_b").Set(9)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE plum_a_total counter\n" +
		"plum_a_total{class=\"coll\"} 1\n" +
		"plum_a_total{class=\"user\"} 3\n" +
		"# TYPE plum_b gauge\n" +
		"plum_b 9\n"
	if b.String() != want {
		t.Errorf("prometheus text:\n%s\nwant:\n%s", b.String(), want)
	}
	// Stable output: a second render must byte-compare equal.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("prometheus output not stable across renders")
	}
}

func TestSnapshotFlattens(t *testing.T) {
	r := NewRegistry()
	r.Counter("plum_c_total").Add(2)
	r.Gauge("plum_g").Set(5)
	r.Histogram("plum_h_seconds", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s["plum_c_total"] != 2 || s["plum_g"] != 5 ||
		s["plum_h_seconds_count"] != 1 || s["plum_h_seconds_sum"] != 0.5 {
		t.Errorf("snapshot = %v", s)
	}
}

// TestRegistryConcurrent exercises the registry from many goroutines —
// the live-scrape-during-a-sweep pattern — under the race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("plum_conc_total").Inc()
				r.Gauge("plum_conc_hw").SetMax(int64(j))
				r.Histogram("plum_conc_seconds", TimeBuckets).Observe(0.01)
			}
		}()
	}
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	scrape.Wait()
	if got := r.Counter("plum_conc_total").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("plum_conc_seconds", TimeBuckets).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}
