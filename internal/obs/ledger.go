package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The simulated-plane run ledger: a deterministic, ordered JSONL stream
// of structured records cut at epoch boundaries of the unsteady
// solve->adapt->balance cycle, framed by a manifest (line 1) and a
// metrics snapshot + end record (last lines).  Epoch records are a pure
// function of the simulated program, so two ledgers of the same
// configuration byte-compare equal line for line — across repetitions,
// GOMAXPROCS values, and machines — which is what makes a ledger both a
// diffable experiment artifact and a determinism check.

// SchemaVersion is the ledger JSONL schema this package writes.
// Readers accept [MinSchemaVersion, SchemaVersion] and reject anything
// else loudly, naming both the file's version and the supported range
// rather than guessing.  v2 added nothing structural over v1 — it marks
// the point where schema acceptance became a range, so future additive
// changes can bump the writer without orphaning committed baselines.
const (
	SchemaVersion    = 2
	MinSchemaVersion = 1
)

// Manifest is the first record of a ledger: everything needed to name
// the run and decide whether two ledgers are comparable.  Host fields
// (Go version, CPU count, ...) describe the machine that produced the
// file; they do not influence any epoch record.
type Manifest struct {
	Kind         string `json:"kind"` // always "manifest"
	Schema       int    `json:"schema"`
	Tool         string `json:"tool"`          // producing command
	ConfigDigest string `json:"config_digest"` // hash of the run configuration
	Seed         int64  `json:"seed"`          // workload seed (0: the deterministic default)
	Git          string `json:"git"`           // VCS revision of the producing build
	GoVersion    string `json:"go_version"`
	GoOS         string `json:"goos"`
	GoArch       string `json:"goarch"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Start        string `json:"start"` // RFC3339 UTC
}

// RankShare is one rank's cost decomposition over an epoch, in
// simulated seconds (the internal/profile aggregation, flattened so the
// ledger schema has no cross-package types).
type RankShare struct {
	Compute   float64 `json:"compute"`
	Overhead  float64 `json:"overhead"`
	WaitHalo  float64 `json:"wait_halo"`
	WaitColl  float64 `json:"wait_coll"`
	WaitMig   float64 `json:"wait_mig"`
	WaitOther float64 `json:"wait_other"`
	PathShare float64 `json:"path_share"` // share of the epoch's critical path, [0, 1]
}

// EpochRecord is one adaption epoch of one simulated run: the
// quantities of the paper's Tables 1-2 and Figs. 4-6 as the run
// actually produced them, plus the gain/cost decision as it was priced
// and the measured cost decomposition when the run was traced.
type EpochRecord struct {
	Kind    string `json:"kind"`    // always "epoch"
	Exp     string `json:"exp"`     // experiment family ("implicit", "feedback")
	Model   string `json:"model"`   // machine topology; "" is the uniform SP2
	Run     string `json:"run"`     // the run's pricing mode: "analytic" | "measured"
	P       int    `json:"p"`       // world size
	Cycle   int    `json:"cycle"`   // epoch number within the run
	Pricing string `json:"pricing"` // how THIS decision priced: "analytic" | "measured"

	Balanced bool `json:"balanced"` // evaluation step skipped the repartition
	Accepted bool `json:"accepted"` // new mapping adopted

	Imbalance float64 `json:"imbalance"` // predicted Wmax/Wavg before balancing
	WOldMax   int64   `json:"w_old_max"` // heaviest-rank load, old owners
	WNewMax   int64   `json:"w_new_max"` // heaviest-rank load, candidate owners
	Gain      float64 `json:"gain"`      // gain side as the decision priced it
	Cost      float64 `json:"cost"`      // cost side as the decision priced it
	TotalV    int64   `json:"total_v"`   // moved weight of the candidate assignment
	MaxV      int64   `json:"max_v"`     // bottleneck moved weight
	EdgeCut   int64   `json:"edge_cut"`  // dual-graph edge cut after the epoch
	Elems     int     `json:"elems"`     // global mesh size after the epoch

	SolveSeconds float64 `json:"solve_seconds"` // simulated solve-phase seconds, max over ranks
	PCGIters     int     `json:"pcg_iters,omitempty"`

	// Critical path of the epoch window (zero on untraced runs).
	CPMakespan float64 `json:"cp_makespan"`
	CPCompute  float64 `json:"cp_compute"`
	CPOverhead float64 `json:"cp_overhead"`
	CPWait     float64 `json:"cp_wait"`

	// Ranks is the per-rank decomposition (len P); empty on untraced runs.
	Ranks []RankShare `json:"ranks,omitempty"`

	// Blame is the wait-blame summary of the epoch's critical path
	// (event.WaitBlame, flattened); nil on untraced runs.  Additive and
	// optional, so schema 1 readers are unaffected.
	Blame *BlameRecord `json:"blame,omitempty"`
}

// BlameRecord attributes an epoch's critical-path wait time by culprit:
// whose compute the path waited on, how much of the wait was queueing
// on contended links vs irreducible wire latency, and the heaviest
// culprit and edges.  Seconds are simulated.
type BlameRecord struct {
	Wait           float64 `json:"wait"` // total attributed wait (receiver perspective)
	SenderCompute  float64 `json:"sender_compute"`
	SenderOverhead float64 `json:"sender_overhead"`
	Contention     float64 `json:"contention"`
	Wire           float64 `json:"wire"`
	Idle           float64 `json:"idle"`

	// TopRank/TopPhase name the largest sender-lag cell of the epoch's
	// league table; TopRank is -1 when no sender lag was attributed.
	TopRank  int     `json:"top_rank"`
	TopPhase string  `json:"top_phase,omitempty"`
	TopLag   float64 `json:"top_lag,omitempty"`

	// TopEdges are the most-delaying causality edges (bounded).
	TopEdges []BlameEdge `json:"top_edges,omitempty"`
}

// BlameEdge is one directed rank pair's share of the blamed delay.
type BlameEdge struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Seconds float64 `json:"s"` // queue + wire seconds charged to the edge
}

// MetricsRecord embeds a host-plane registry snapshot in the ledger.
// Unlike epoch records it is host data: wall-clock histograms and world
// scheduling counters legitimately differ between machines, so ledger
// diffing compares epochs, not metrics.
type MetricsRecord struct {
	Kind     string             `json:"kind"` // always "metrics"
	Counters map[string]float64 `json:"counters"`
}

// End is the final record: the epoch count (a truncation check) and a
// checksum of the run's rendered stdout, which ties the ledger to the
// human-readable tables the same run printed.
type End struct {
	Kind         string `json:"kind"` // always "end"
	Epochs       int    `json:"epochs"`
	OutputSHA256 string `json:"output_sha256,omitempty"`
}

// Ledger is an open, append-only run ledger.  Add is safe for
// concurrent use, but deterministic ledgers require callers to append
// in a deterministic order — the experiment harness collects per-world
// records into index-addressed slots and flushes them after the world
// barrier, in loop order.
type Ledger struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	enc    *json.Encoder
	epochs int
	err    error
	path   string
}

// Create opens path, writes the manifest, and returns the ledger.
func Create(path string, m Manifest) (*Ledger, error) {
	m.Kind = "manifest"
	m.Schema = SchemaVersion
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	l := &Ledger{f: f, w: w, enc: json.NewEncoder(w), path: path}
	if err := l.enc.Encode(m); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Path returns the file path the ledger writes to.
func (l *Ledger) Path() string { return l.path }

// Add appends epoch records.  The first write error is latched and
// returned by Close (a truncated ledger must not look like success).
func (l *Ledger) Add(recs ...EpochRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range recs {
		r.Kind = "epoch"
		if l.err == nil {
			l.err = l.enc.Encode(r)
		}
		l.epochs++
	}
}

// Epochs returns the number of epoch records appended so far.
func (l *Ledger) Epochs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epochs
}

// Close writes the metrics snapshot (when non-nil) and the end record,
// flushes, and closes the file, returning the first error of the
// ledger's lifetime.
func (l *Ledger) Close(metrics map[string]float64, outputSHA256 string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if metrics != nil && l.err == nil {
		l.err = l.enc.Encode(MetricsRecord{Kind: "metrics", Counters: metrics})
	}
	if l.err == nil {
		l.err = l.enc.Encode(End{Kind: "end", Epochs: l.epochs, OutputSHA256: outputSHA256})
	}
	if ferr := l.w.Flush(); l.err == nil {
		l.err = ferr
	}
	if cerr := l.f.Close(); l.err == nil {
		l.err = cerr
	}
	return l.err
}

// LedgerFile is a fully read and schema-validated ledger.
type LedgerFile struct {
	Manifest Manifest
	Epochs   []EpochRecord
	Metrics  map[string]float64 // nil when no metrics record was written
	End      End
}

// ReadLedger parses and validates a ledger stream: manifest first, a
// consistent epoch stream, and an end record whose count matches.  Any
// schema violation is an error — the CI smoke job validates ledgers by
// reading them.
func ReadLedger(r io.Reader) (*LedgerFile, error) {
	lf, _, err := readLedger(r, false)
	return lf, err
}

// ReadLedgerLenient is ReadLedger for ledgers whose producing run may
// have been killed mid-stream: a missing end record, or a torn final
// line, parses as truncated=true with every complete record retained.
// Structural violations before the cut (a mid-file parse error, an
// epoch/end count mismatch, a missing manifest) still fail — a
// truncated ledger is salvageable, a corrupt one is not.
func ReadLedgerLenient(r io.Reader) (lf *LedgerFile, truncated bool, err error) {
	return readLedger(r, true)
}

func readLedger(r io.Reader, lenient bool) (*LedgerFile, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lf := &LedgerFile{}
	line := 0
	sawEnd := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if sawEnd {
			return nil, false, fmt.Errorf("obs: line %d: records after the end record", line)
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			if lenient && !scannerHasMore(sc) {
				// A torn final line is the signature of a killed writer:
				// everything before it is intact.
				return lf, true, nil
			}
			return nil, false, fmt.Errorf("obs: line %d: %v", line, err)
		}
		switch probe.Kind {
		case "manifest":
			if line != 1 {
				return nil, false, fmt.Errorf("obs: line %d: manifest must be the first record", line)
			}
			if err := json.Unmarshal(raw, &lf.Manifest); err != nil {
				return nil, false, fmt.Errorf("obs: line %d: %v", line, err)
			}
			if lf.Manifest.Schema < MinSchemaVersion || lf.Manifest.Schema > SchemaVersion {
				return nil, false, fmt.Errorf("obs: ledger schema v%d unsupported by this reader"+
					" (supports v%d..v%d) — regenerate the ledger or upgrade the tool",
					lf.Manifest.Schema, MinSchemaVersion, SchemaVersion)
			}
		case "epoch":
			if line == 1 {
				return nil, false, fmt.Errorf("obs: line 1: ledger does not start with a manifest")
			}
			var e EpochRecord
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, false, fmt.Errorf("obs: line %d: %v", line, err)
			}
			if e.P <= 0 {
				return nil, false, fmt.Errorf("obs: line %d: epoch record with p=%d", line, e.P)
			}
			if len(e.Ranks) != 0 && len(e.Ranks) != e.P {
				return nil, false, fmt.Errorf("obs: line %d: %d rank shares for p=%d", line, len(e.Ranks), e.P)
			}
			lf.Epochs = append(lf.Epochs, e)
		case "metrics":
			var m MetricsRecord
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, false, fmt.Errorf("obs: line %d: %v", line, err)
			}
			lf.Metrics = m.Counters
		case "end":
			if err := json.Unmarshal(raw, &lf.End); err != nil {
				return nil, false, fmt.Errorf("obs: line %d: %v", line, err)
			}
			if lf.End.Epochs != len(lf.Epochs) {
				return nil, false, fmt.Errorf("obs: end record counts %d epochs, ledger has %d",
					lf.End.Epochs, len(lf.Epochs))
			}
			sawEnd = true
		default:
			return nil, false, fmt.Errorf("obs: line %d: unknown record kind %q", line, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, err
	}
	if line == 0 {
		return nil, false, fmt.Errorf("obs: empty ledger")
	}
	if !sawEnd {
		if lenient {
			return lf, true, nil
		}
		return nil, false, fmt.Errorf("obs: truncated ledger: no end record")
	}
	return lf, false, nil
}

// scannerHasMore reports whether another non-blank line follows
// (consuming input).
func scannerHasMore(sc *bufio.Scanner) bool {
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			return true
		}
	}
	return false
}

// ReadLedgerFile reads and validates the ledger at path.
func ReadLedgerFile(path string) (*LedgerFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lf, err := ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lf, nil
}

// ReadLedgerFileLenient reads the ledger at path, tolerating
// truncation (see ReadLedgerLenient).
func ReadLedgerFileLenient(path string) (*LedgerFile, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	lf, truncated, err := ReadLedgerLenient(f)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return lf, truncated, nil
}
