// Package obs is the two-plane observability layer over the
// solve->adapt->balance cycle: a simulated-plane run ledger and a
// host-plane metric registry.
//
// Paper concept.  PLUM's argument is quantitative — the paper's Tables
// 1-2 and Figs. 4-6 are per-epoch observations of imbalance, TotalV /
// MaxV, and remapping cost.  The ledger makes every run produce those
// observations as data rather than prose: one JSONL record per epoch of
// the unsteady cycle (predicted imbalance, the gain/cost decision as it
// was actually priced, moved weight, edge cut, solve time, the epoch's
// critical path, and per-rank compute/overhead/wait shares from
// internal/profile), framed by a manifest (config digest, seed, VCS
// revision, output checksum) and an end record.  Epoch records are a
// pure function of the simulated program, so two ledgers of the same
// configuration byte-compare equal across machines — a ledger is
// simultaneously an experiment artifact and a determinism check.
//
// The two planes.  The simulated plane (Ledger) records simulated
// quantities in deterministic order and may be diffed.  The host plane
// (Registry) counts what the simulator's own machinery did — engine
// fast-path vs handoff yields, calendar and mailbox high-waters, pool
// hit rates, worlds scheduled and their wall-clock — and is exported as
// Prometheus text (plumbench -serve) and embedded in the ledger as a
// clearly host-only metrics record.
//
// Entry points.  Create / Ledger.Add / Ledger.Close write a ledger;
// ReadLedgerFile validates and loads one (plumviz -ledger renders it).
// Default is the process-wide registry the msg runtime and the
// experiment harness feed; Registry.WritePrometheus serves it,
// Registry.Snapshot embeds it.
//
// Invariants.  Nothing in this package reads or writes a simulated
// clock: instrumentation must never perturb a simulated time, and the
// byte-compare tests in internal/core pin that a run with the ledger
// enabled produces bitwise-identical simulated output to one without.
// The package depends only on the standard library, so every layer of
// the runtime (event, msg, core) may feed it without import cycles.
package obs
