package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Host-plane metric registry: counters, gauges, and histograms with no
// external dependencies, cheap enough for the simulation runtime to
// feed and exportable as Prometheus text.  Values are atomics so the
// registry can be scraped live (plumbench -serve) while worlds run
// concurrently; instruments are interned by (name, labels), so hot
// paths should hold the returned pointer rather than re-looking it up.

// A Counter is a monotonically increasing metric value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a point-in-time metric value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water update (calendar depth, mailbox population).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into cumulative buckets with fixed
// upper bounds, plus a running sum — the Prometheus histogram model.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// TimeBuckets is the default bucket layout for wall-clock durations in
// seconds (world execution times span microseconds to minutes).
var TimeBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120}

// Registry interns metric instruments by name + label set.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry the runtime packages feed and
// the serve mode exports.  Only additive host-plane data lands here;
// nothing in the registry ever reaches a simulated clock.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// key renders the interning key: name alone, or name{k="v",...} with
// labels given as alternating key, value pairs in caller order (callers
// use one fixed order per metric, so no sorting is needed).
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for name and labels, creating it on first
// use.  Labels are alternating key, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for name and labels with the given
// bucket bounds, creating it on first use; the bounds of an existing
// histogram are kept.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[k] = h
	}
	return h
}

// Value returns the current value of the named counter or gauge, or 0
// when it was never created — so presentation code can read metrics it
// cannot be sure the run exercised.
func (r *Registry) Value(name string, labels ...string) float64 {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return float64(c.Value())
	}
	if g, ok := r.gauges[k]; ok {
		return float64(g.Value())
	}
	return 0
}

// family returns the metric name without its label set.
func family(k string) string {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i]
	}
	return k
}

// withLabel splices one more label into an interning key (used to
// render histogram buckets' le label).
func withLabel(k, label string) string {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:len(k)-1] + "," + label + "}"
	}
	return k + "{" + label + "}"
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format, sorted by name so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type entry struct {
		key  string
		line string
	}
	var counters, gauges []entry
	for k, c := range r.counters {
		counters = append(counters, entry{k, fmt.Sprintf("%s %d\n", k, c.Value())})
	}
	for k, g := range r.gauges {
		gauges = append(gauges, entry{k, fmt.Sprintf("%s %d\n", k, g.Value())})
	}
	type histEntry struct {
		key string
		h   *Histogram
	}
	var hists []histEntry
	for k, h := range r.hists {
		hists = append(hists, histEntry{k, h})
	}
	r.mu.Unlock()

	var err error
	emit := func(kind string, entries []entry) {
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		seen := ""
		for _, e := range entries {
			if err != nil {
				return
			}
			if f := family(e.key); f != seen {
				seen = f
				_, err = fmt.Fprintf(w, "# TYPE %s %s\n", f, kind)
				if err != nil {
					return
				}
			}
			_, err = io.WriteString(w, e.line)
		}
	}
	emit("counter", counters)
	emit("gauge", gauges)

	sort.Slice(hists, func(i, j int) bool { return hists[i].key < hists[j].key })
	seen := ""
	for _, he := range hists {
		if err != nil {
			return err
		}
		f := family(he.key)
		if f != seen {
			seen = f
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", f); err != nil {
				return err
			}
		}
		cum := int64(0)
		for i := range he.h.counts {
			cum += he.h.counts[i].Load()
			le := "+Inf"
			if i < len(he.h.bounds) {
				le = formatBound(he.h.bounds[i])
			}
			bk := withLabel(he.key, fmt.Sprintf("le=%q", le))
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f, bk[len(f):], cum); err != nil {
				return err
			}
		}
		if _, err = fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", he.key, he.h.Sum(), he.key, he.h.Count()); err != nil {
			return err
		}
	}
	return err
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// Snapshot flattens the registry into a name -> value map: counters and
// gauges verbatim, histograms as <name>_count and <name>_sum.  The map
// is the registry block a ledger embeds.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for k, c := range r.counters {
		m[k] = float64(c.Value())
	}
	for k, g := range r.gauges {
		m[k] = float64(g.Value())
	}
	for k, h := range r.hists {
		m[k+"_count"] = float64(h.Count())
		m[k+"_sum"] = h.Sum()
	}
	return m
}
