package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() Manifest {
	return Manifest{
		Tool: "obs_test", ConfigDigest: "cafe", Git: "deadbeef",
		GoVersion: "go1.22", GoOS: "linux", GoArch: "amd64",
		GoMaxProcs: 8, NumCPU: 8, Start: "2026-08-08T00:00:00Z",
	}
}

func testEpoch(p, cycle int) EpochRecord {
	return EpochRecord{
		Exp: "implicit", Model: "smp", Run: "analytic", P: p, Cycle: cycle,
		Pricing: "analytic", Accepted: true, Imbalance: 1.5,
		WOldMax: 100, WNewMax: 60, Gain: 2, Cost: 1,
		TotalV: 40, MaxV: 12, EdgeCut: 77, Elems: 1000,
		SolveSeconds: 0.25, PCGIters: 30,
		CPMakespan: 0.3, CPCompute: 0.2, CPOverhead: 0.05, CPWait: 0.05,
		Ranks: make([]RankShare, p),
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	l.Add(testEpoch(2, 0), testEpoch(2, 1))
	if l.Epochs() != 2 {
		t.Errorf("Epochs = %d, want 2", l.Epochs())
	}
	if err := l.Close(map[string]float64{"plum_worlds_finished_total": 3}, "abc123"); err != nil {
		t.Fatal(err)
	}

	lf, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Manifest.Tool != "obs_test" || lf.Manifest.Schema != SchemaVersion {
		t.Errorf("manifest = %+v", lf.Manifest)
	}
	if len(lf.Epochs) != 2 || lf.Epochs[1].Cycle != 1 || lf.Epochs[0].EdgeCut != 77 {
		t.Errorf("epochs = %+v", lf.Epochs)
	}
	if lf.Metrics["plum_worlds_finished_total"] != 3 {
		t.Errorf("metrics = %v", lf.Metrics)
	}
	if lf.End.Epochs != 2 || lf.End.OutputSHA256 != "abc123" {
		t.Errorf("end = %+v", lf.End)
	}
}

func TestReadLedgerRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"empty", "", "empty ledger"},
		{"no manifest", `{"kind":"epoch","p":2}`, "does not start with a manifest"},
		{"bad schema", `{"kind":"manifest","schema":99}`, "unsupported ledger schema"},
		{"truncated", `{"kind":"manifest","schema":1}`, "no end record"},
		{"bad epoch p", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":0}`, "p=0"},
		{"rank shares mismatch", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":4,"ranks":[{}]}`, "1 rank shares for p=4"},
		{"count mismatch", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":2}` + "\n" + `{"kind":"end","epochs":5}`, "counts 5 epochs"},
		{"unknown kind", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"mystery"}`, "unknown record kind"},
		{"trailing record", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"end","epochs":0}` + "\n" + `{"kind":"epoch","p":2}`, "after the end record"},
	}
	for _, c := range cases {
		_, err := ReadLedger(strings.NewReader(c.content))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

// TestLedgerWriteErrorLatched: a write failure surfaces at Close even
// when later appends succeed in buffering.
func TestLedgerWriteErrorLatched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	// Close the file underneath the ledger: the buffered writer's flush
	// must fail and Close must report it.
	l.f.Close()
	for i := 0; i < 4096; i++ { // overflow the bufio buffer to force a write
		l.Add(testEpoch(2, i))
	}
	if err := l.Close(nil, ""); err == nil {
		t.Error("Close reported success after underlying write failure")
	}
	os.Remove(path)
}
