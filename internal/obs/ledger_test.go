package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() Manifest {
	return Manifest{
		Tool: "obs_test", ConfigDigest: "cafe", Git: "deadbeef",
		GoVersion: "go1.22", GoOS: "linux", GoArch: "amd64",
		GoMaxProcs: 8, NumCPU: 8, Start: "2026-08-08T00:00:00Z",
	}
}

func testEpoch(p, cycle int) EpochRecord {
	return EpochRecord{
		Exp: "implicit", Model: "smp", Run: "analytic", P: p, Cycle: cycle,
		Pricing: "analytic", Accepted: true, Imbalance: 1.5,
		WOldMax: 100, WNewMax: 60, Gain: 2, Cost: 1,
		TotalV: 40, MaxV: 12, EdgeCut: 77, Elems: 1000,
		SolveSeconds: 0.25, PCGIters: 30,
		CPMakespan: 0.3, CPCompute: 0.2, CPOverhead: 0.05, CPWait: 0.05,
		Ranks: make([]RankShare, p),
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	l.Add(testEpoch(2, 0), testEpoch(2, 1))
	if l.Epochs() != 2 {
		t.Errorf("Epochs = %d, want 2", l.Epochs())
	}
	if err := l.Close(map[string]float64{"plum_worlds_finished_total": 3}, "abc123"); err != nil {
		t.Fatal(err)
	}

	lf, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Manifest.Tool != "obs_test" || lf.Manifest.Schema != SchemaVersion {
		t.Errorf("manifest = %+v", lf.Manifest)
	}
	if len(lf.Epochs) != 2 || lf.Epochs[1].Cycle != 1 || lf.Epochs[0].EdgeCut != 77 {
		t.Errorf("epochs = %+v", lf.Epochs)
	}
	if lf.Metrics["plum_worlds_finished_total"] != 3 {
		t.Errorf("metrics = %v", lf.Metrics)
	}
	if lf.End.Epochs != 2 || lf.End.OutputSHA256 != "abc123" {
		t.Errorf("end = %+v", lf.End)
	}
}

func TestReadLedgerRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"empty", "", "empty ledger"},
		{"no manifest", `{"kind":"epoch","p":2}`, "does not start with a manifest"},
		{"bad schema", `{"kind":"manifest","schema":99}`, "schema v99 unsupported by this reader (supports v1..v2)"},
		{"truncated", `{"kind":"manifest","schema":1}`, "no end record"},
		{"bad epoch p", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":0}`, "p=0"},
		{"rank shares mismatch", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":4,"ranks":[{}]}`, "1 rank shares for p=4"},
		{"count mismatch", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"epoch","p":2}` + "\n" + `{"kind":"end","epochs":5}`, "counts 5 epochs"},
		{"unknown kind", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"mystery"}`, "unknown record kind"},
		{"trailing record", `{"kind":"manifest","schema":1}` + "\n" +
			`{"kind":"end","epochs":0}` + "\n" + `{"kind":"epoch","p":2}`, "after the end record"},
	}
	for _, c := range cases {
		_, err := ReadLedger(strings.NewReader(c.content))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

// TestLedgerWriteErrorLatched: a write failure surfaces at Close even
// when later appends succeed in buffering.
func TestLedgerWriteErrorLatched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	// Close the file underneath the ledger: the buffered writer's flush
	// must fail and Close must report it.
	l.f.Close()
	for i := 0; i < 4096; i++ { // overflow the bufio buffer to force a write
		l.Add(testEpoch(2, i))
	}
	if err := l.Close(nil, ""); err == nil {
		t.Error("Close reported success after underlying write failure")
	}
	os.Remove(path)
}

func TestLedgerBlameRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	e := testEpoch(2, 0)
	e.Blame = &BlameRecord{
		Wait: 0.5, SenderCompute: 0.3, SenderOverhead: 0.1,
		Contention: 0.05, Wire: 0.05, TopRank: 1, TopPhase: "solve", TopLag: 0.3,
		TopEdges: []BlameEdge{{Src: 1, Dst: 0, Seconds: 0.1}},
	}
	plain := testEpoch(2, 1) // no blame: field must be omitted, not zeroed
	l.Add(e, plain)
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	lf, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b := lf.Epochs[0].Blame
	if b == nil || b.Wait != 0.5 || b.TopRank != 1 || b.TopPhase != "solve" {
		t.Errorf("blame = %+v", b)
	}
	if len(b.TopEdges) != 1 || b.TopEdges[0] != (BlameEdge{Src: 1, Dst: 0, Seconds: 0.1}) {
		t.Errorf("top edges = %+v", b.TopEdges)
	}
	if lf.Epochs[1].Blame != nil {
		t.Errorf("blame-free epoch round-tripped a record: %+v", lf.Epochs[1].Blame)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if !strings.Contains(lines[1], `"blame"`) || strings.Contains(lines[2], `"blame"`) {
		t.Errorf("blame field serialization wrong:\n%s\n%s", lines[1], lines[2])
	}
}

// TestReadLedgerLenient: truncation — a run killed before the end
// record, or a line torn mid-write — parses leniently with everything
// before the cut intact; strict reading still fails, and mid-file
// corruption fails both.
func TestReadLedgerLenient(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	l.Add(testEpoch(2, 0), testEpoch(2, 1))
	if err := l.Close(nil, "sum"); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A complete ledger is not truncated.
	if _, trunc, err := ReadLedgerFileLenient(path); err != nil || trunc {
		t.Errorf("complete ledger: trunc=%v err=%v", trunc, err)
	}

	check := func(name string, data []byte, wantEpochs int) {
		t.Helper()
		p := filepath.Join(t.TempDir(), "trunc.jsonl")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadLedgerFile(p); err == nil {
			t.Errorf("%s: strict read succeeded", name)
		}
		lf, trunc, err := ReadLedgerFileLenient(p)
		if err != nil {
			t.Errorf("%s: lenient read failed: %v", name, err)
			return
		}
		if !trunc {
			t.Errorf("%s: not reported truncated", name)
		}
		if len(lf.Epochs) != wantEpochs {
			t.Errorf("%s: %d epochs, want %d", name, len(lf.Epochs), wantEpochs)
		}
	}

	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	// Missing end record (and metrics): both epochs survive.
	check("no end", append(bytes.Join(lines[:3], []byte("\n")), '\n'), 2)
	// Torn final line: the complete epoch before it survives.
	check("torn line", full[:len(full)-int(float64(len(lines[len(lines)-1]))/2)-10], 2)
	// Manifest only.
	check("manifest only", append([]byte{}, append(lines[0], '\n')...), 0)

	// Mid-file corruption is damage, not truncation: both readers fail.
	corrupt := append([]byte{}, lines[0]...)
	corrupt = append(corrupt, "\n{torn\n"...)
	corrupt = append(corrupt, bytes.Join(lines[1:], []byte("\n"))...)
	corrupt = append(corrupt, '\n')
	p := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLedgerFileLenient(p); err == nil {
		t.Error("mid-file corruption parsed leniently without error")
	}
}
