package diff

// Host-benchmark comparison: the BENCH_sim.json half of a differential
// analysis.  This is the one inexact plane — ns/op comes from a real
// machine — so comparisons carry a threshold and a status instead of
// exact-zero semantics.  cmd/benchcmp is a thin wrapper over this file,
// and plumdiff folds the same comparison into its combined report, so
// bench and ledger diffs share one formatter.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchStatus classifies one benchmark's comparison.
type BenchStatus string

// The bench entry statuses.
const (
	BenchOK        BenchStatus = "ok"
	BenchRegressed BenchStatus = "regressed" // ratio past the threshold
	BenchNew       BenchStatus = "new"       // no baseline entry
	BenchMissing   BenchStatus = "missing"   // baseline entry absent from current
)

// BenchEntry is one benchmark's base/current pair.
type BenchEntry struct {
	Name    string      `json:"name"`
	BaseNs  float64     `json:"base_ns"`
	CurNs   float64     `json:"cur_ns"`
	Ratio   float64     `json:"ratio"` // CurNs/BaseNs; 0 when either side is absent
	DAllocs float64     `json:"d_allocs"`
	Status  BenchStatus `json:"status"`
}

// BenchDiff is the full benchmark comparison.
type BenchDiff struct {
	BaseFile  string       `json:"base_file"`
	CurFile   string       `json:"cur_file"`
	BaseGit   string       `json:"base_git"`
	CurGit    string       `json:"cur_git"`
	Threshold float64      `json:"threshold"`
	Entries   []BenchEntry `json:"entries"`
	Warnings  int          `json:"warnings"` // regressed + missing
}

// benchResult mirrors plumbench's BenchResult; only the compared fields
// are declared so the two sides can evolve independently.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchReport struct {
	GitSHA     string        `json:"git_sha"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func loadBench(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// CompareBenchFiles loads two BENCH_sim.json artifacts and compares
// them benchmark by benchmark against the ns/op ratio threshold.
func CompareBenchFiles(basePath, curPath string, threshold float64) (*BenchDiff, error) {
	base, err := loadBench(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := loadBench(curPath)
	if err != nil {
		return nil, err
	}
	bd := compareBench(base, cur, threshold)
	bd.BaseFile, bd.CurFile = basePath, curPath
	return bd, nil
}

// compareBench walks the current run's benchmarks in order, then
// appends baseline-only entries sorted by name (deterministic output).
func compareBench(base, cur *benchReport, threshold float64) *BenchDiff {
	bd := &BenchDiff{BaseGit: base.GitSHA, CurGit: cur.GitSHA, Threshold: threshold}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	seen := map[string]bool{}
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := baseline[c.Name]
		if !ok {
			bd.Entries = append(bd.Entries, BenchEntry{Name: c.Name, CurNs: c.NsPerOp, Status: BenchNew})
			continue
		}
		e := BenchEntry{
			Name: c.Name, BaseNs: b.NsPerOp, CurNs: c.NsPerOp,
			DAllocs: c.AllocsPerOp - b.AllocsPerOp, Status: BenchOK,
		}
		if b.NsPerOp > 0 {
			e.Ratio = c.NsPerOp / b.NsPerOp
		}
		if e.Ratio > threshold {
			e.Status = BenchRegressed
			bd.Warnings++
		}
		bd.Entries = append(bd.Entries, e)
	}
	var missing []BenchEntry
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			missing = append(missing, BenchEntry{Name: b.Name, BaseNs: b.NsPerOp, Status: BenchMissing})
			bd.Warnings++
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Name < missing[j].Name })
	bd.Entries = append(bd.Entries, missing...)
	return bd
}
