package diff

// Report rendering: one formatter for every surface.  WriteText renders
// the aligned-column terminal form (plumdiff stdout, the /diff serve
// endpoint), WriteMarkdown the GitHub-flavored table form (CI step
// summaries), and the JSON form is the Report struct itself.  Both
// renderers are deterministic: byte-identical output for equal reports.

import (
	"fmt"
	"io"

	"plum/internal/report"
)

func fmtS(v float64) string  { return fmt.Sprintf("%+.6f", v) }
func fmtS4(v float64) string { return fmt.Sprintf("%+.4f", v) }

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "plumdiff: base %s (config %s, git %s, schema v%d, %d epochs%s)\n",
		r.Base.File, orDash(r.Base.ConfigDigest), orDash(r.Base.Git), r.Base.Schema,
		r.Base.Epochs, truncNote(r.Base.Truncated))
	fmt.Fprintf(w, "          cur  %s (config %s, git %s, schema v%d, %d epochs%s)\n",
		r.Cur.File, orDash(r.Cur.ConfigDigest), orDash(r.Cur.Git), r.Cur.Schema,
		r.Cur.Epochs, truncNote(r.Cur.Truncated))
	if r.Comparable {
		fmt.Fprintln(w, "comparable: yes (equal config digests — the same simulated program)")
	} else {
		fmt.Fprintln(w, "comparable: no (config digests differ — deltas attribute the configuration change)")
	}
	fmt.Fprintln(w)

	if r.Zero() {
		fmt.Fprintln(w, "no differences: every aligned epoch record is identical (exact zero deltas)")
		fmt.Fprintln(w)
	} else {
		if len(r.Findings) > 0 {
			fmt.Fprintln(w, "What changed, ranked:")
			for i, f := range r.Findings {
				fmt.Fprintf(w, "  %2d. [%s] %s\n", i+1, f.Kind, f.Msg)
			}
			fmt.Fprintln(w)
		}
		r.writeRunTables(w)
	}

	if len(r.Spans) > 0 {
		r.writeSpanText(w)
	}
	if len(r.Metrics) > 0 {
		t := report.NewTable("Host metrics (informational — host plane, never gated)",
			"Counter", "base", "current", "delta")
		for _, m := range r.Metrics {
			t.AddRow(m.Name, fmt.Sprintf("%.0f", m.Base), fmt.Sprintf("%.0f", m.Cur),
				fmt.Sprintf("%+.0f", m.Delta))
		}
		t.Render(w)
	}
	if r.Bench != nil {
		r.Bench.WriteText(w)
	}
}

func (r *Report) writeRunTables(w io.Writer) {
	t := report.NewTable("Run-level simulated time (end-to-end = sum of aligned epochs; exact)",
		"Run", "epochs", "flips", "base(s)", "cur(s)", "Δtime(s)", "ratio",
		"Δcompute", "Δoverhead", "Δwait", "Δgaps")
	for i := range r.Runs {
		rd := &r.Runs[i]
		name := rd.Key.String()
		if rd.ModeFlip {
			name += " vs " + rd.CurKey.String()
		}
		t.AddRow(name, len(rd.Epochs), rd.Flips,
			fmt.Sprintf("%.6f", rd.BaseTime), fmt.Sprintf("%.6f", rd.CurTime),
			fmtS(rd.DTime), fmt.Sprintf("%.3fx", rd.Ratio()),
			fmtS(rd.DCompute), fmtS(rd.DOverhead), fmtS(rd.DWait), fmtS(rd.DResidual))
	}
	t.Render(w)

	et := report.NewTable("Per-epoch deltas (current - base; only epochs that differ)",
		"Run", "epoch", "verdict", "Δtime(s)", "Δcompute", "Δoverhead", "Δwait", "Δgaps",
		"Δgain", "Δcost", "ΔTotalV", "ΔMaxV", "ΔEdgeCut")
	rows := 0
	for i := range r.Runs {
		rd := &r.Runs[i]
		name := rd.Key.String()
		for _, ed := range rd.Epochs {
			if ed.Zero {
				continue
			}
			rows++
			verdict := ed.VerdictCur
			if ed.Flipped {
				verdict = ed.VerdictBase + "->" + ed.VerdictCur
			}
			et.AddRow(name, ed.Cycle, verdict, fmtS(ed.DTime),
				fmtS(ed.DCompute), fmtS(ed.DOverhead), fmtS(ed.DWait), fmtS(ed.DResidual),
				fmtS4(ed.DGain), fmtS4(ed.DCost),
				fmt.Sprintf("%+d", ed.DTotalV), fmt.Sprintf("%+d", ed.DMaxV),
				fmt.Sprintf("%+d", ed.DEdgeCut))
		}
	}
	if rows > 0 {
		et.Render(w)
	}

	bt := report.NewTable("Wait-blame deltas (ledger-embedded summaries)",
		"Run", "epoch", "Δwait", "Δsender comp", "Δsender ovhd", "Δcontention",
		"Δwire", "Δidle", "top lag cell")
	rows = 0
	for i := range r.Runs {
		rd := &r.Runs[i]
		for _, ed := range rd.Epochs {
			b := ed.Blame
			if b == nil {
				continue
			}
			rows++
			top := b.TopCur
			if b.TopMoved {
				top = b.TopBase + " -> " + b.TopCur
			}
			bt.AddRow(rd.Key.String(), ed.Cycle, fmtS(b.DWait),
				fmtS(b.DSenderCompute), fmtS(b.DSenderOverhead), fmtS(b.DContention),
				fmtS(b.DWire), fmtS(b.DIdle), top)
		}
	}
	if rows > 0 {
		bt.Render(w)
	}

	fmt.Fprintf(w, "totals: Δtime %s = Δcompute %s + Δoverhead %s + Δwait %s + Δgaps %s"+
		" (exact); %d epochs aligned, %d flips\n\n",
		fmtS(r.Totals.DTime), fmtS(r.Totals.DCompute), fmtS(r.Totals.DOverhead),
		fmtS(r.Totals.DWait), fmtS(r.Totals.DResidual),
		r.Totals.EpochsAligned, r.Totals.Flips)
}

func (r *Report) writeSpanText(w io.Writer) {
	for i := range r.Spans {
		d := &r.Spans[i]
		if d.Zero {
			fmt.Fprintf(w, "spans %s: identical blame tables\n", d.Label)
			continue
		}
		fmt.Fprintf(w, "spans %s: %+d spans, %+d blame epochs\n", d.Label, d.DSpans, d.DEpochs)
		if len(d.Cells) > 0 {
			t := report.NewTable("Sender-lag cell deltas (summed across epochs)",
				"Rank", "Phase", "base(s)", "cur(s)", "Δ(s)")
			for _, c := range d.Cells {
				t.AddRow(c.Rank, c.Phase, fmt.Sprintf("%.6f", c.Base),
					fmt.Sprintf("%.6f", c.Cur), fmtS(c.Delta))
			}
			if d.DLagOther != 0 {
				t.AddRow("-", "other", "", "", fmtS(d.DLagOther))
			}
			t.Render(w)
		}
		if len(d.Edges) > 0 {
			t := report.NewTable("Edge delay deltas (queue + wire)",
				"Edge", "base(s)", "cur(s)", "Δ(s)")
			for _, e := range d.Edges {
				t.AddRow(fmt.Sprintf("%d->%d", e.Src, e.Dst),
					fmt.Sprintf("%.6f", e.Base), fmt.Sprintf("%.6f", e.Cur), fmtS(e.Delta))
			}
			t.Render(w)
		}
	}
	fmt.Fprintln(w)
}

func truncNote(t bool) string {
	if t {
		return ", truncated"
	}
	return ""
}

// WriteMarkdown renders the report as GitHub-flavored markdown — CI
// appends it to $GITHUB_STEP_SUMMARY.
func (r *Report) WriteMarkdown(w io.Writer) {
	fmt.Fprintln(w, "### Differential run analysis")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Base `%s` (config `%s`, git `%s`) vs current `%s` (config `%s`, git `%s`).",
		r.Base.File, orDash(r.Base.ConfigDigest), orDash(r.Base.Git),
		r.Cur.File, orDash(r.Cur.ConfigDigest), orDash(r.Cur.Git))
	if r.Comparable {
		fmt.Fprint(w, " Comparable (equal config digests).")
	} else {
		fmt.Fprint(w, " **Not comparable** (config digests differ).")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	if r.Zero() {
		fmt.Fprintln(w, "✅ No differences: every aligned epoch record is identical (exact zero deltas).")
		fmt.Fprintln(w)
	} else {
		if len(r.Findings) > 0 {
			fmt.Fprintln(w, "**What changed, ranked:**")
			fmt.Fprintln(w)
			for i, f := range r.Findings {
				fmt.Fprintf(w, "%d. `%s` %s\n", i+1, f.Kind, f.Msg)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "| run | epochs | flips | base (s) | cur (s) | Δtime (s) | ratio | Δcompute | Δoverhead | Δwait | Δgaps |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
		for i := range r.Runs {
			rd := &r.Runs[i]
			name := rd.Key.String()
			if rd.ModeFlip {
				name += " vs " + rd.CurKey.String()
			}
			fmt.Fprintf(w, "| %s | %d | %d | %.6f | %.6f | %s | %.3fx | %s | %s | %s | %s |\n",
				name, len(rd.Epochs), rd.Flips, rd.BaseTime, rd.CurTime, fmtS(rd.DTime),
				rd.Ratio(), fmtS(rd.DCompute), fmtS(rd.DOverhead), fmtS(rd.DWait), fmtS(rd.DResidual))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "Totals: Δtime %s = Δcompute %s + Δoverhead %s + Δwait %s + Δgaps %s (exact); %d epochs aligned, %d verdict flips.\n",
			fmtS(r.Totals.DTime), fmtS(r.Totals.DCompute), fmtS(r.Totals.DOverhead),
			fmtS(r.Totals.DWait), fmtS(r.Totals.DResidual),
			r.Totals.EpochsAligned, r.Totals.Flips)
		fmt.Fprintln(w)
	}
	if r.Bench != nil {
		r.Bench.WriteMarkdown(w)
	}
}

// WriteText renders the benchmark comparison in benchcmp's terminal
// format.
func (b *BenchDiff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "benchcmp: baseline %s (git %s) vs current %s (git %s), threshold %.2fx\n",
		b.BaseFile, orUnknown(b.BaseGit), b.CurFile, orUnknown(b.CurGit), b.Threshold)
	for _, e := range b.Entries {
		switch e.Status {
		case BenchNew:
			fmt.Fprintf(w, "  %-28s (new — no baseline)\n", e.Name)
		case BenchMissing:
			fmt.Fprintf(w, "  %-28s %12.0f -> %12s ns/op  (missing)\n", e.Name, e.BaseNs, "-")
		default:
			fmt.Fprintf(w, "  %-28s %12.0f -> %12.0f ns/op  (%.2fx)\n",
				e.Name, e.BaseNs, e.CurNs, e.Ratio)
		}
	}
}

// WriteMarkdown renders the benchmark comparison table (the former
// benchcmp -md output).
func (b *BenchDiff) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### Benchmark comparison\n\n")
	fmt.Fprintf(w, "Baseline `%s` vs current `%s`, threshold %.2fx.\n\n",
		orUnknown(b.BaseGit), orUnknown(b.CurGit), b.Threshold)
	fmt.Fprintln(w, "| benchmark | baseline ns/op | current ns/op | ratio | Δ allocs/op |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
	for _, e := range b.Entries {
		switch e.Status {
		case BenchNew:
			fmt.Fprintf(w, "| %s | — | %.0f | new | — |\n", e.Name, e.CurNs)
		case BenchMissing:
			fmt.Fprintf(w, "| %s | %.0f | — | missing ⚠️ | — |\n", e.Name, e.BaseNs)
		default:
			mark := ""
			if e.Status == BenchRegressed {
				mark = " ⚠️"
			}
			fmt.Fprintf(w, "| %s | %.0f | %.0f | %.2fx%s | %+.0f |\n",
				e.Name, e.BaseNs, e.CurNs, e.Ratio, mark, e.DAllocs)
		}
	}
	if b.Warnings > 0 {
		fmt.Fprintf(w, "\n%d warning(s); ⚠️ marks benchmarks past the threshold or missing.\n", b.Warnings)
	}
	fmt.Fprintln(w)
}

// WriteAnnotations emits GitHub Actions ::warning lines for regressed
// and missing benchmarks (benchcmp's CI surface).
func (b *BenchDiff) WriteAnnotations(w io.Writer) {
	for _, e := range b.Entries {
		switch e.Status {
		case BenchRegressed:
			fmt.Fprintf(w, "::warning title=benchmark regression::%s is %.2fx slower than"+
				" baseline (%.0f -> %.0f ns/op, threshold %.2fx)\n",
				e.Name, e.Ratio, e.BaseNs, e.CurNs, b.Threshold)
		case BenchMissing:
			fmt.Fprintf(w, "::warning title=benchmark missing::%s is in the baseline but not the"+
				" current run\n", e.Name)
		}
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// GateSummary renders violations (or the pass line) for terminals and
// markdown alike.
func GateSummary(w io.Writer, vs []Violation, th Thresholds) {
	if len(vs) == 0 {
		fmt.Fprintf(w, "gate: PASS (sim limit %.4fx, host limit %.2fx)\n",
			th.SimRatio, th.HostRatio)
		return
	}
	fmt.Fprintf(w, "gate: FAIL — %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(w, "  [%s] %s\n", v.Kind, v.Msg)
	}
}
