// Package diff computes exact differential analyses of simulated runs:
// given two artifacts of the same kind — run ledgers (obs), span/blame
// streams (event), host-benchmark reports (BENCH_sim.json) — it aligns
// them record by record and attributes the end-to-end simulated-time
// delta down the stack: which runs moved, which epochs flipped their
// accept/reject verdict, which critical-path component (compute,
// overhead, wait) carried the change, which sender-lag cell of the
// blame table grew, and which partition-quality term (edge cut,
// imbalance, TotalV) drifted.
//
// Because every simulated output is a pure function of its
// configuration (the determinism the golden tests enforce), the diff is
// exact: no statistics, no tolerances.  Two invariants hold by
// construction, not approximation:
//
//   - self-identity: diffing a ledger against itself yields a report
//     with zero deltas everywhere (IEEE x-x = +0 for finite x);
//   - conservation: at every level, the attributed deltas sum exactly
//     to the level above.  Per epoch, the makespan delta equals
//     Δcompute + Δoverhead + Δwait + Δresidual, where Δresidual is
//     DEFINED as the remainder (it measures critical-path gaps the
//     three components do not cover).  Per run, the end-to-end delta
//     is DEFINED as the sum of the per-epoch deltas, and the run-level
//     residual as the remainder after the summed components.  Nothing
//     is lost to reassociation.
//
// Alignment is structural: epochs group by run key (experiment, model,
// pricing mode, P) and align by cycle number.  A run present in only
// one ledger is re-tried with the pricing mode wildcarded — so a
// `-measured` run diffs cleanly against its analytic twin, which is the
// paper's own comparison — and reported as added/removed otherwise.
package diff

import (
	"fmt"
	"math"
	"sort"

	"plum/internal/obs"
)

// ReportSchema versions the JSON form of a Report.
const ReportSchema = 1

// RunKey identifies one run (one epoch stream) within a ledger.
type RunKey struct {
	Exp   string `json:"exp"`
	Model string `json:"model"`
	Run   string `json:"run"` // pricing mode: "analytic" | "measured"
	P     int    `json:"p"`
}

func (k RunKey) String() string {
	model := k.Model
	if model == "" {
		model = "flat"
	}
	return fmt.Sprintf("%s/%s/%s/P=%d", k.Exp, model, k.Run, k.P)
}

// baseKey drops the pricing mode: the wildcard used by mode-flip
// alignment.
func (k RunKey) modeless() RunKey { k.Run = ""; return k }

// Verdict names an epoch's rebalancing outcome.
func Verdict(e *obs.EpochRecord) string {
	switch {
	case e.Balanced:
		return "balanced"
	case e.Accepted:
		return "accept"
	default:
		return "reject"
	}
}

// EpochDelta is the exact difference of one aligned epoch pair
// (current minus base).  DMakespan == DCompute + DOverhead + DWait +
// DResidual exactly (DResidual is defined as the remainder).
type EpochDelta struct {
	Cycle int `json:"cycle"`

	VerdictBase string `json:"verdict_base"`
	VerdictCur  string `json:"verdict_cur"`
	Flipped     bool   `json:"flipped"`
	PricingBase string `json:"pricing_base,omitempty"`
	PricingCur  string `json:"pricing_cur,omitempty"`

	// Time is the epoch's simulated-time delta: critical-path makespan
	// when both sides were traced, solve seconds otherwise (Approx
	// marks the fallback).
	DTime  float64 `json:"d_time"`
	Approx bool    `json:"approx,omitempty"`

	DCompute  float64 `json:"d_compute"`
	DOverhead float64 `json:"d_overhead"`
	DWait     float64 `json:"d_wait"`
	DResidual float64 `json:"d_residual"`

	DSolve     float64 `json:"d_solve"`
	DGain      float64 `json:"d_gain"`
	DCost      float64 `json:"d_cost"`
	DImbalance float64 `json:"d_imbalance"`
	DTotalV    int64   `json:"d_total_v"`
	DMaxV      int64   `json:"d_max_v"`
	DEdgeCut   int64   `json:"d_edge_cut"`
	DElems     int     `json:"d_elems"`
	DPCGIters  int     `json:"d_pcg_iters"`

	Blame *BlameDelta `json:"blame,omitempty"`

	// Zero reports whether every compared field of the pair is
	// identical (verdicts, prices, counts, times, and blame).
	Zero bool `json:"zero"`
}

// BlameDelta is the wait-blame movement of one aligned epoch pair, from
// the ledger's embedded blame summaries.
type BlameDelta struct {
	DWait           float64 `json:"d_wait"`
	DSenderCompute  float64 `json:"d_sender_compute"`
	DSenderOverhead float64 `json:"d_sender_overhead"`
	DContention     float64 `json:"d_contention"`
	DWire           float64 `json:"d_wire"`
	DIdle           float64 `json:"d_idle"`

	// The heaviest sender-lag cell on each side ("r3/solve 0.0123" or
	// "-" when none was attributed), and whether it moved.
	TopBase  string `json:"top_base"`
	TopCur   string `json:"top_cur"`
	TopMoved bool   `json:"top_moved"`
}

func (b *BlameDelta) zero() bool {
	return b == nil || (b.DWait == 0 && b.DSenderCompute == 0 && b.DSenderOverhead == 0 &&
		b.DContention == 0 && b.DWire == 0 && b.DIdle == 0 && !b.TopMoved)
}

// RunDelta is the aligned comparison of one run across the two ledgers.
type RunDelta struct {
	Key RunKey `json:"key"`
	// CurKey differs from Key only under mode-flip alignment (the
	// analytic run of one ledger matched against the measured run of
	// the other).
	CurKey   RunKey `json:"cur_key"`
	ModeFlip bool   `json:"mode_flip,omitempty"`

	Epochs []EpochDelta `json:"epochs"`
	// BaseOnlyCycles/CurOnlyCycles list cycle numbers present on one
	// side only (a run that ran longer, or was truncated).
	BaseOnlyCycles []int `json:"base_only_cycles,omitempty"`
	CurOnlyCycles  []int `json:"cur_only_cycles,omitempty"`

	// BaseTime/CurTime sum each side's per-epoch times over the ALIGNED
	// epochs; DTime is the sum of the per-epoch deltas (the canonical
	// end-to-end delta — conservation holds against this, exactly).
	BaseTime float64 `json:"base_time"`
	CurTime  float64 `json:"cur_time"`
	DTime    float64 `json:"d_time"`

	// Component sums over aligned epochs; DResidual is defined as
	// DTime - DCompute - DOverhead - DWait so the run-level identity is
	// exact regardless of float reassociation.
	DCompute  float64 `json:"d_compute"`
	DOverhead float64 `json:"d_overhead"`
	DWait     float64 `json:"d_wait"`
	DResidual float64 `json:"d_residual"`

	Flips int `json:"flips"`
	// Zero: every aligned epoch is identical and no epoch is unpaired.
	Zero bool `json:"zero"`
}

// Ratio returns CurTime/BaseTime (1 when the base ran in zero time).
func (r *RunDelta) Ratio() float64 {
	if r.BaseTime > 0 {
		return r.CurTime / r.BaseTime
	}
	return 1
}

// Source summarizes one compared ledger.
type Source struct {
	File         string `json:"file"`
	Tool         string `json:"tool,omitempty"`
	ConfigDigest string `json:"config_digest,omitempty"`
	Git          string `json:"git,omitempty"`
	Schema       int    `json:"schema,omitempty"`
	Start        string `json:"start,omitempty"`
	Epochs       int    `json:"epochs"`
	Truncated    bool   `json:"truncated,omitempty"`
}

// Finding is one ranked "what changed" statement.  Severity orders the
// findings (simulated seconds of impact where applicable, a comparable
// weight otherwise); ties break deterministically.
type Finding struct {
	Kind     string  `json:"kind"` // sim-time | verdict-flip | component | blame | drift | alignment | config | bench
	Run      string  `json:"run,omitempty"`
	Epoch    int     `json:"epoch"` // -1: not epoch-scoped
	Seconds  float64 `json:"seconds,omitempty"`
	Severity float64 `json:"severity"`
	Msg      string  `json:"msg"`
}

// Totals aggregates the ledger comparison.  DResidual is again the
// exact remainder, so DTime == DCompute+DOverhead+DWait+DResidual.
type Totals struct {
	BaseTime  float64 `json:"base_time"`
	CurTime   float64 `json:"cur_time"`
	DTime     float64 `json:"d_time"`
	DCompute  float64 `json:"d_compute"`
	DOverhead float64 `json:"d_overhead"`
	DWait     float64 `json:"d_wait"`
	DResidual float64 `json:"d_residual"`

	Flips         int `json:"flips"`
	EpochsAligned int `json:"epochs_aligned"`
	EpochsUnpaird int `json:"epochs_unpaired"`
}

// MetricDelta is one host-plane counter's movement.  Host metrics are
// machine data — informational, never gated, never part of Zero.
type MetricDelta struct {
	Name  string  `json:"name"`
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	Delta float64 `json:"delta"`
}

// Report is the full differential analysis.
type Report struct {
	Schema int    `json:"schema"`
	Base   Source `json:"base"`
	Cur    Source `json:"cur"`

	// Comparable: the two manifests carry equal config digests, so the
	// runs are the same simulated program and any delta is a code
	// change.  An incomparable diff is still exact — it just compares
	// two different questions (e.g. -measured on vs off).
	Comparable bool `json:"comparable"`

	Runs     []RunDelta `json:"runs"`
	BaseOnly []RunKey   `json:"base_only,omitempty"`
	CurOnly  []RunKey   `json:"cur_only,omitempty"`

	Totals   Totals        `json:"totals"`
	Findings []Finding     `json:"findings"`
	Metrics  []MetricDelta `json:"metrics,omitempty"`

	Bench *BenchDiff       `json:"bench,omitempty"`
	Spans []SpanWorldDelta `json:"spans,omitempty"`
}

// Zero reports whether the simulated planes of the two ledgers are
// identical: every run aligned, every aligned epoch byte-equivalent.
// Host metrics and bench/host sections are excluded by design.
func (r *Report) Zero() bool {
	if len(r.BaseOnly) != 0 || len(r.CurOnly) != 0 {
		return false
	}
	for i := range r.Runs {
		if !r.Runs[i].Zero {
			return false
		}
	}
	return true
}

// Options configures a ledger diff.
type Options struct {
	// TopK bounds ranked lists in findings and renderings (default 8).
	TopK int
	// Metrics includes the host-plane counter diff (informational).
	Metrics bool
}

func (o Options) topK() int {
	if o.TopK <= 0 {
		return 8
	}
	return o.TopK
}

// run groups one ledger's epochs under their run keys, preserving first
// appearance order.
type runGroup struct {
	key    RunKey
	epochs []obs.EpochRecord
}

func groupRuns(lf *obs.LedgerFile) []runGroup {
	byKey := map[RunKey]int{}
	var groups []runGroup
	for _, e := range lf.Epochs {
		k := RunKey{Exp: e.Exp, Model: e.Model, Run: e.Run, P: e.P}
		i, ok := byKey[k]
		if !ok {
			i = len(groups)
			byKey[k] = i
			groups = append(groups, runGroup{key: k})
		}
		groups[i].epochs = append(groups[i].epochs, e)
	}
	return groups
}

// Ledgers computes the differential analysis of two parsed ledgers.
// baseFile/curFile only label the report.
func Ledgers(baseFile, curFile string, base, cur *obs.LedgerFile, opt Options) *Report {
	rep := &Report{
		Schema: ReportSchema,
		Base:   sourceOf(baseFile, base),
		Cur:    sourceOf(curFile, cur),
	}
	rep.Comparable = base.Manifest.ConfigDigest == cur.Manifest.ConfigDigest &&
		base.Manifest.ConfigDigest != ""

	bg := groupRuns(base)
	cg := groupRuns(cur)
	curUsed := make([]bool, len(cg))

	// Pass 1: exact key matches, in base order.
	curByKey := map[RunKey]int{}
	for i, g := range cg {
		curByKey[g.key] = i
	}
	type pairing struct {
		bi, ci int
		flip   bool
	}
	var pairs []pairing
	var unmatched []int
	for bi, g := range bg {
		if ci, ok := curByKey[g.key]; ok && !curUsed[ci] {
			curUsed[ci] = true
			pairs = append(pairs, pairing{bi, ci, false})
		} else {
			unmatched = append(unmatched, bi)
		}
	}
	// Pass 2: mode-flip fallback — wildcard the pricing mode; pair when
	// exactly one unused counterpart matches.
	for _, bi := range unmatched {
		want := bg[bi].key.modeless()
		match, n := -1, 0
		for ci, g := range cg {
			if !curUsed[ci] && g.key.modeless() == want {
				match = ci
				n++
			}
		}
		if n == 1 {
			curUsed[match] = true
			pairs = append(pairs, pairing{bi, match, true})
		} else {
			rep.BaseOnly = append(rep.BaseOnly, bg[bi].key)
		}
	}
	for ci, g := range cg {
		if !curUsed[ci] {
			rep.CurOnly = append(rep.CurOnly, g.key)
		}
	}
	// Deterministic run order: base-file appearance order.
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].bi < pairs[j].bi })

	for _, p := range pairs {
		rd := diffRun(bg[p.bi], cg[p.ci], p.flip)
		rep.Runs = append(rep.Runs, rd)
		rep.Totals.BaseTime += rd.BaseTime
		rep.Totals.CurTime += rd.CurTime
		rep.Totals.DTime += rd.DTime
		rep.Totals.DCompute += rd.DCompute
		rep.Totals.DOverhead += rd.DOverhead
		rep.Totals.DWait += rd.DWait
		rep.Totals.Flips += rd.Flips
		rep.Totals.EpochsAligned += len(rd.Epochs)
		rep.Totals.EpochsUnpaird += len(rd.BaseOnlyCycles) + len(rd.CurOnlyCycles)
	}
	rep.Totals.DResidual = rep.Totals.DTime - rep.Totals.DCompute -
		rep.Totals.DOverhead - rep.Totals.DWait

	if opt.Metrics {
		rep.Metrics = diffMetrics(base.Metrics, cur.Metrics, opt.topK())
	}
	rep.Findings = ledgerFindings(rep, opt.topK())
	return rep
}

func sourceOf(file string, lf *obs.LedgerFile) Source {
	return Source{
		File:         file,
		Tool:         lf.Manifest.Tool,
		ConfigDigest: lf.Manifest.ConfigDigest,
		Git:          lf.Manifest.Git,
		Schema:       lf.Manifest.Schema,
		Start:        lf.Manifest.Start,
		Epochs:       len(lf.Epochs),
	}
}

// epochTime selects the comparable per-epoch time: the critical-path
// makespan when both sides were traced, else the solve seconds.
func epochTime(b, c *obs.EpochRecord) (tb, tc float64, approx bool) {
	if b.CPMakespan > 0 && c.CPMakespan > 0 {
		return b.CPMakespan, c.CPMakespan, false
	}
	return b.SolveSeconds, c.SolveSeconds, true
}

func diffRun(bg, cg runGroup, flip bool) RunDelta {
	rd := RunDelta{Key: bg.key, CurKey: cg.key, ModeFlip: flip, Zero: !flip}

	curByCycle := map[int]*obs.EpochRecord{}
	for i := range cg.epochs {
		curByCycle[cg.epochs[i].Cycle] = &cg.epochs[i]
	}
	seen := map[int]bool{}
	for i := range bg.epochs {
		b := &bg.epochs[i]
		c, ok := curByCycle[b.Cycle]
		if !ok {
			rd.BaseOnlyCycles = append(rd.BaseOnlyCycles, b.Cycle)
			rd.Zero = false
			continue
		}
		seen[b.Cycle] = true
		ed := diffEpoch(b, c)
		rd.Epochs = append(rd.Epochs, ed)
		tb, tc, _ := epochTime(b, c)
		rd.BaseTime += tb
		rd.CurTime += tc
		rd.DTime += ed.DTime
		rd.DCompute += ed.DCompute
		rd.DOverhead += ed.DOverhead
		rd.DWait += ed.DWait
		if ed.Flipped {
			rd.Flips++
		}
		if !ed.Zero {
			rd.Zero = false
		}
	}
	for i := range cg.epochs {
		if !seen[cg.epochs[i].Cycle] {
			rd.CurOnlyCycles = append(rd.CurOnlyCycles, cg.epochs[i].Cycle)
			rd.Zero = false
		}
	}
	rd.DResidual = rd.DTime - rd.DCompute - rd.DOverhead - rd.DWait
	return rd
}

func diffEpoch(b, c *obs.EpochRecord) EpochDelta {
	tb, tc, approx := epochTime(b, c)
	ed := EpochDelta{
		Cycle:       b.Cycle,
		VerdictBase: Verdict(b),
		VerdictCur:  Verdict(c),
		PricingBase: b.Pricing,
		PricingCur:  c.Pricing,
		DTime:       tc - tb,
		Approx:      approx,
		DCompute:    c.CPCompute - b.CPCompute,
		DOverhead:   c.CPOverhead - b.CPOverhead,
		DWait:       c.CPWait - b.CPWait,
		DSolve:      c.SolveSeconds - b.SolveSeconds,
		DGain:       c.Gain - b.Gain,
		DCost:       c.Cost - b.Cost,
		DImbalance:  c.Imbalance - b.Imbalance,
		DTotalV:     c.TotalV - b.TotalV,
		DMaxV:       c.MaxV - b.MaxV,
		DEdgeCut:    c.EdgeCut - b.EdgeCut,
		DElems:      c.Elems - b.Elems,
		DPCGIters:   c.PCGIters - b.PCGIters,
	}
	ed.Flipped = ed.VerdictBase != ed.VerdictCur
	ed.DResidual = ed.DTime - ed.DCompute - ed.DOverhead - ed.DWait
	ed.Blame = diffBlame(b.Blame, c.Blame)
	ed.Zero = !ed.Flipped && ed.PricingBase == ed.PricingCur &&
		ed.DTime == 0 && ed.DCompute == 0 && ed.DOverhead == 0 && ed.DWait == 0 &&
		ed.DSolve == 0 && ed.DGain == 0 && ed.DCost == 0 && ed.DImbalance == 0 &&
		ed.DTotalV == 0 && ed.DMaxV == 0 && ed.DEdgeCut == 0 && ed.DElems == 0 &&
		ed.DPCGIters == 0 && ed.Blame.zero()
	return ed
}

func topCell(b *obs.BlameRecord) string {
	if b == nil || b.TopRank < 0 {
		return "-"
	}
	return fmt.Sprintf("r%d/%s %.4f", b.TopRank, b.TopPhase, b.TopLag)
}

func diffBlame(b, c *obs.BlameRecord) *BlameDelta {
	if b == nil && c == nil {
		return nil
	}
	var zb, zc obs.BlameRecord
	zb.TopRank, zc.TopRank = -1, -1
	if b == nil {
		b = &zb
	}
	if c == nil {
		c = &zc
	}
	bd := &BlameDelta{
		DWait:           c.Wait - b.Wait,
		DSenderCompute:  c.SenderCompute - b.SenderCompute,
		DSenderOverhead: c.SenderOverhead - b.SenderOverhead,
		DContention:     c.Contention - b.Contention,
		DWire:           c.Wire - b.Wire,
		DIdle:           c.Idle - b.Idle,
		TopBase:         topCell(b),
		TopCur:          topCell(c),
	}
	bd.TopMoved = b.TopRank != c.TopRank || b.TopPhase != c.TopPhase || b.TopLag != c.TopLag
	if bd.zero() {
		return nil
	}
	return bd
}

// diffMetrics compares the host-plane counter snapshots: the topK
// largest absolute movers among keys present on either side.
func diffMetrics(base, cur map[string]float64, topK int) []MetricDelta {
	if base == nil && cur == nil {
		return nil
	}
	keys := map[string]bool{}
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	var out []MetricDelta
	for k := range keys {
		b, c := base[k], cur[k]
		if b == c {
			continue
		}
		out = append(out, MetricDelta{Name: k, Base: b, Cur: c, Delta: c - b})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Delta), math.Abs(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// componentName labels the largest-magnitude critical-path component of
// a delta set.
func componentName(dc, do, dw, dr float64) (string, float64) {
	name, v := "compute", dc
	if math.Abs(do) > math.Abs(v) {
		name, v = "overhead", do
	}
	if math.Abs(dw) > math.Abs(v) {
		name, v = "wait", dw
	}
	if math.Abs(dr) > math.Abs(v) {
		name, v = "path gaps", dr
	}
	return name, v
}

// ledgerFindings ranks what changed: run-level time movement, verdict
// flips, the dominating critical-path component, blame-cell shifts, and
// partition-quality drift, most impactful first.
func ledgerFindings(rep *Report, topK int) []Finding {
	var fs []Finding
	if rep.Base.Schema != rep.Cur.Schema {
		fs = append(fs, Finding{
			Kind: "config", Epoch: -1, Severity: math.Inf(1),
			Msg: fmt.Sprintf("ledger schema differs: base v%d vs current v%d",
				rep.Base.Schema, rep.Cur.Schema),
		})
	}
	if !rep.Comparable {
		fs = append(fs, Finding{
			Kind: "config", Epoch: -1, Severity: math.MaxFloat64,
			Msg: fmt.Sprintf("config digests differ (base %s, current %s): the two ledgers"+
				" simulate different programs; deltas attribute the configuration change",
				orDash(rep.Base.ConfigDigest), orDash(rep.Cur.ConfigDigest)),
		})
	}
	for _, k := range rep.BaseOnly {
		fs = append(fs, Finding{
			Kind: "alignment", Run: k.String(), Epoch: -1, Severity: math.MaxFloat64 / 2,
			Msg: fmt.Sprintf("run %s exists only in the base ledger", k),
		})
	}
	for _, k := range rep.CurOnly {
		fs = append(fs, Finding{
			Kind: "alignment", Run: k.String(), Epoch: -1, Severity: math.MaxFloat64 / 2,
			Msg: fmt.Sprintf("run %s exists only in the current ledger", k),
		})
	}
	for i := range rep.Runs {
		rd := &rep.Runs[i]
		name := rd.Key.String()
		if rd.ModeFlip {
			name = fmt.Sprintf("%s vs %s", rd.Key, rd.CurKey)
		}
		for _, cyc := range rd.BaseOnlyCycles {
			fs = append(fs, Finding{
				Kind: "alignment", Run: name, Epoch: cyc, Severity: math.MaxFloat64 / 4,
				Msg: fmt.Sprintf("run %s: epoch %d exists only in the base ledger", name, cyc),
			})
		}
		for _, cyc := range rd.CurOnlyCycles {
			fs = append(fs, Finding{
				Kind: "alignment", Run: name, Epoch: cyc, Severity: math.MaxFloat64 / 4,
				Msg: fmt.Sprintf("run %s: epoch %d exists only in the current ledger", name, cyc),
			})
		}
		if rd.DTime != 0 {
			comp, cv := componentName(rd.DCompute, rd.DOverhead, rd.DWait, rd.DResidual)
			dir := "slower"
			if rd.DTime < 0 {
				dir = "faster"
			}
			fs = append(fs, Finding{
				Kind: "sim-time", Run: name, Epoch: -1,
				Seconds: rd.DTime, Severity: math.Abs(rd.DTime),
				Msg: fmt.Sprintf("run %s: %+.6fs end-to-end simulated time (%.3fx, %s);"+
					" largest component: %s %+.6fs",
					name, rd.DTime, rd.Ratio(), dir, comp, cv),
			})
		}
		for _, ed := range rd.Epochs {
			sev := math.Abs(ed.DTime)
			if ed.Flipped {
				fs = append(fs, Finding{
					Kind: "verdict-flip", Run: name, Epoch: ed.Cycle,
					Seconds: ed.DTime, Severity: sev + math.Abs(ed.DGain) + math.Abs(ed.DCost),
					Msg: fmt.Sprintf("run %s epoch %d: verdict flipped %s -> %s"+
						" (gain %+.4f, cost %+.4f, TotalV %+d, MaxV %+d; epoch time %+.6fs)",
						name, ed.Cycle, ed.VerdictBase, ed.VerdictCur,
						ed.DGain, ed.DCost, ed.DTotalV, ed.DMaxV, ed.DTime),
				})
			}
			if b := ed.Blame; b != nil {
				w := math.Max(math.Abs(b.DWait), math.Abs(b.DSenderCompute))
				if b.TopMoved || w > 0 {
					fs = append(fs, Finding{
						Kind: "blame", Run: name, Epoch: ed.Cycle,
						Seconds: b.DWait, Severity: w,
						Msg: fmt.Sprintf("run %s epoch %d: attributed wait %+.6fs"+
							" (sender compute %+.6fs, overhead %+.6fs, contention %+.6fs,"+
							" wire %+.6fs, idle %+.6fs); top lag cell %s -> %s",
							name, ed.Cycle, b.DWait, b.DSenderCompute, b.DSenderOverhead,
							b.DContention, b.DWire, b.DIdle, b.TopBase, b.TopCur),
					})
				}
			}
			if ed.DEdgeCut != 0 || ed.DTotalV != 0 || ed.DImbalance != 0 {
				fs = append(fs, Finding{
					Kind: "drift", Run: name, Epoch: ed.Cycle,
					Severity: math.Abs(ed.DTime),
					Msg: fmt.Sprintf("run %s epoch %d: partition drift — edge cut %+d,"+
						" TotalV %+d, MaxV %+d, imbalance %+.4f, elems %+d",
						name, ed.Cycle, ed.DEdgeCut, ed.DTotalV, ed.DMaxV,
						ed.DImbalance, ed.DElems),
				})
			}
		}
	}
	RankFindings(fs)
	if len(fs) > topK {
		fs = fs[:topK]
	}
	return fs
}

// RankFindings orders findings most severe first with a fully
// deterministic tie-break, so reports are byte-stable.  Callers that
// append findings from another plane (spans, bench) re-rank the merged
// list with it.
func RankFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].Run != fs[j].Run {
			return fs[i].Run < fs[j].Run
		}
		if fs[i].Epoch != fs[j].Epoch {
			return fs[i].Epoch < fs[j].Epoch
		}
		return fs[i].Msg < fs[j].Msg
	})
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// LedgerFiles reads both ledgers from disk (strictly, or leniently
// tolerating truncation) and diffs them.
func LedgerFiles(basePath, curPath string, lenient bool, opt Options) (*Report, error) {
	read := func(path string) (*obs.LedgerFile, bool, error) {
		if lenient {
			return obs.ReadLedgerFileLenient(path)
		}
		lf, err := obs.ReadLedgerFile(path)
		return lf, false, err
	}
	base, btrunc, err := read(basePath)
	if err != nil {
		return nil, err
	}
	cur, ctrunc, err := read(curPath)
	if err != nil {
		return nil, err
	}
	rep := Ledgers(basePath, curPath, base, cur, opt)
	rep.Base.Truncated = btrunc
	rep.Cur.Truncated = ctrunc
	return rep, nil
}
