package diff

// Span-stream comparison: the blame half of a differential analysis.
// A span file (plumbench -spans) carries, per world stream, the
// per-epoch wait-blame summaries with their top-k sender-lag cells and
// contended edges — finer than the single top cell the ledger embeds.
// Diffing two streams answers "which rank×phase cell grew" with the
// full league table instead of one champion.
//
// Cells are a lower bound per cell (each epoch serializes only its
// top-k; the remainder folds into lag_other), so the diff carries the
// lag_other movement alongside the cell deltas to keep the total exact.

import (
	"fmt"
	"math"
	"sort"

	"plum/internal/event"
)

// LagCellDelta is one rank×phase sender-lag cell's movement, summed
// across a world's epochs.
type LagCellDelta struct {
	Rank  int     `json:"rank"`
	Phase string  `json:"phase"`
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	Delta float64 `json:"delta"`
}

// EdgeDelta is one directed rank pair's queue+wire movement.
type EdgeDelta struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	Delta float64 `json:"delta"`
}

// EpochBlameDelta is one aligned epoch's blame movement.
type EpochBlameDelta struct {
	Epoch           int     `json:"epoch"`
	DWait           float64 `json:"d_wait"`
	DSenderCompute  float64 `json:"d_sender_compute"`
	DSenderOverhead float64 `json:"d_sender_overhead"`
	DContention     float64 `json:"d_contention"`
	DWire           float64 `json:"d_wire"`
	DIdle           float64 `json:"d_idle"`
}

// SpanWorldDelta is the comparison of one aligned world stream pair.
type SpanWorldDelta struct {
	Label    string `json:"label"` // canonical key of the matched pair
	ModeFlip bool   `json:"mode_flip,omitempty"`
	P        int    `json:"p"`

	DSpans  int  `json:"d_spans"`  // span-count delta
	DEpochs int  `json:"d_epochs"` // blame-epoch delta
	Zero    bool `json:"zero"`

	Epochs []EpochBlameDelta `json:"epochs,omitempty"`
	// Cells/Edges: the largest absolute movers across all epochs.
	Cells     []LagCellDelta `json:"cells,omitempty"`
	DLagOther float64        `json:"d_lag_other,omitempty"`
	Edges     []EdgeDelta    `json:"edges,omitempty"`
}

// spanKey canonicalizes a stream's label for alignment: the standard
// exp/model/run/p annotation when present, the raw sorted label
// otherwise.
type spanKey struct {
	exp, model, run, p string
}

func (k spanKey) modeless() spanKey { k.run = ""; return k }

func (k spanKey) String() string {
	model := k.model
	if model == "" {
		model = "flat"
	}
	return fmt.Sprintf("%s/%s/%s/P=%s", k.exp, model, k.run, k.p)
}

func keyOf(w *event.SpanWorld) spanKey {
	return spanKey{
		exp:   w.Label["exp"],
		model: w.Label["model"],
		run:   w.Label["run"],
		p:     w.Label["p"],
	}
}

// Spans aligns two parsed span files world by world (exact label match
// first, pricing-mode wildcard second, stream order last) and diffs the
// blame tables of each aligned pair.  Unmatched worlds surface as
// findings appended by the caller via SpanFindings.
func Spans(base, cur []event.SpanWorld, opt Options) []SpanWorldDelta {
	used := make([]bool, len(cur))
	pair := func(b *event.SpanWorld) int {
		bk := keyOf(b)
		for ci := range cur {
			if !used[ci] && keyOf(&cur[ci]) == bk {
				return ci
			}
		}
		match, n := -1, 0
		for ci := range cur {
			if !used[ci] && keyOf(&cur[ci]).modeless() == bk.modeless() {
				match = ci
				n++
			}
		}
		if n == 1 {
			return match
		}
		return -1
	}
	var out []SpanWorldDelta
	for bi := range base {
		ci := pair(&base[bi])
		if ci < 0 {
			out = append(out, SpanWorldDelta{
				Label: keyOf(&base[bi]).String(), P: base[bi].P,
				DSpans: -len(base[bi].Spans), DEpochs: -len(base[bi].Blame),
			})
			continue
		}
		used[ci] = true
		out = append(out, diffSpanWorld(&base[bi], &cur[ci], opt.topK()))
	}
	for ci := range cur {
		if !used[ci] {
			out = append(out, SpanWorldDelta{
				Label: keyOf(&cur[ci]).String(), P: cur[ci].P,
				DSpans: len(cur[ci].Spans), DEpochs: len(cur[ci].Blame),
			})
		}
	}
	return out
}

func diffSpanWorld(b, c *event.SpanWorld, topK int) SpanWorldDelta {
	bk, ck := keyOf(b), keyOf(c)
	d := SpanWorldDelta{
		Label:    bk.String(),
		ModeFlip: bk != ck,
		P:        b.P,
		DSpans:   len(c.Spans) - len(b.Spans),
		DEpochs:  len(c.Blame) - len(b.Blame),
	}
	if d.ModeFlip {
		d.Label = fmt.Sprintf("%s vs %s", bk, ck)
	}

	blameByEpoch := func(ws []event.EpochBlame) map[int]*event.EpochBlame {
		m := make(map[int]*event.EpochBlame, len(ws))
		for i := range ws {
			m[ws[i].Epoch] = &ws[i]
		}
		return m
	}
	cm := blameByEpoch(c.Blame)
	type cellKey struct {
		rank  int
		phase string
	}
	cellBase, cellCur := map[cellKey]float64{}, map[cellKey]float64{}
	edgeBase, edgeCur := map[[2]int]float64{}, map[[2]int]float64{}
	var lagOtherBase, lagOtherCur float64
	for i := range b.Blame {
		eb := &b.Blame[i]
		lagOtherBase += eb.LagOther
		for _, l := range eb.Lag {
			cellBase[cellKey{l.Rank, l.Phase}] += l.Seconds
		}
		for _, e := range eb.Edges {
			edgeBase[[2]int{e.Src, e.Dst}] += e.Queue + e.Wire
		}
		cb, ok := cm[eb.Epoch]
		if !ok {
			continue
		}
		ed := EpochBlameDelta{
			Epoch:           eb.Epoch,
			DWait:           cb.Wait - eb.Wait,
			DSenderCompute:  cb.SenderCompute - eb.SenderCompute,
			DSenderOverhead: cb.SenderOverhead - eb.SenderOverhead,
			DContention:     cb.Contention - eb.Contention,
			DWire:           cb.Wire - eb.Wire,
			DIdle:           cb.Idle - eb.Idle,
		}
		if ed != (EpochBlameDelta{Epoch: eb.Epoch}) {
			d.Epochs = append(d.Epochs, ed)
		}
	}
	for i := range c.Blame {
		cb := &c.Blame[i]
		lagOtherCur += cb.LagOther
		for _, l := range cb.Lag {
			cellCur[cellKey{l.Rank, l.Phase}] += l.Seconds
		}
		for _, e := range cb.Edges {
			edgeCur[[2]int{e.Src, e.Dst}] += e.Queue + e.Wire
		}
	}
	d.DLagOther = lagOtherCur - lagOtherBase

	cells := map[cellKey]bool{}
	for k := range cellBase {
		cells[k] = true
	}
	for k := range cellCur {
		cells[k] = true
	}
	for k := range cells {
		bv, cv := cellBase[k], cellCur[k]
		if bv == cv {
			continue
		}
		d.Cells = append(d.Cells, LagCellDelta{
			Rank: k.rank, Phase: k.phase, Base: bv, Cur: cv, Delta: cv - bv,
		})
	}
	sort.Slice(d.Cells, func(i, j int) bool {
		ai, aj := math.Abs(d.Cells[i].Delta), math.Abs(d.Cells[j].Delta)
		if ai != aj {
			return ai > aj
		}
		if d.Cells[i].Rank != d.Cells[j].Rank {
			return d.Cells[i].Rank < d.Cells[j].Rank
		}
		return d.Cells[i].Phase < d.Cells[j].Phase
	})
	if len(d.Cells) > topK {
		d.Cells = d.Cells[:topK]
	}

	edges := map[[2]int]bool{}
	for k := range edgeBase {
		edges[k] = true
	}
	for k := range edgeCur {
		edges[k] = true
	}
	for k := range edges {
		bv, cv := edgeBase[k], edgeCur[k]
		if bv == cv {
			continue
		}
		d.Edges = append(d.Edges, EdgeDelta{Src: k[0], Dst: k[1], Base: bv, Cur: cv, Delta: cv - bv})
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		ai, aj := math.Abs(d.Edges[i].Delta), math.Abs(d.Edges[j].Delta)
		if ai != aj {
			return ai > aj
		}
		if d.Edges[i].Src != d.Edges[j].Src {
			return d.Edges[i].Src < d.Edges[j].Src
		}
		return d.Edges[i].Dst < d.Edges[j].Dst
	})
	if len(d.Edges) > topK {
		d.Edges = d.Edges[:topK]
	}

	d.Zero = !d.ModeFlip && d.DSpans == 0 && d.DEpochs == 0 &&
		len(d.Epochs) == 0 && len(d.Cells) == 0 && len(d.Edges) == 0 && d.DLagOther == 0
	return d
}

// SpanFiles reads and diffs two span files.
func SpanFiles(basePath, curPath string, opt Options) ([]SpanWorldDelta, error) {
	base, err := event.ReadSpansFile(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := event.ReadSpansFile(curPath)
	if err != nil {
		return nil, err
	}
	return Spans(base, cur, opt), nil
}

// SpanFindings converts span deltas into ranked findings (appended to a
// ledger report's findings by the caller, re-ranked together).
func SpanFindings(deltas []SpanWorldDelta) []Finding {
	var fs []Finding
	for i := range deltas {
		d := &deltas[i]
		if d.Zero {
			continue
		}
		var worst float64
		for _, c := range d.Cells {
			if a := math.Abs(c.Delta); a > worst {
				worst = a
			}
		}
		for _, e := range d.Epochs {
			if a := math.Abs(e.DWait); a > worst {
				worst = a
			}
		}
		msg := fmt.Sprintf("spans %s: %d blame epoch(s) moved, %+d spans", d.Label, len(d.Epochs), d.DSpans)
		if len(d.Cells) > 0 {
			c := d.Cells[0]
			msg += fmt.Sprintf("; largest lag-cell shift r%d/%s %+.6fs (%.6f -> %.6f)",
				c.Rank, c.Phase, c.Delta, c.Base, c.Cur)
		}
		if len(d.Edges) > 0 {
			e := d.Edges[0]
			msg += fmt.Sprintf("; largest edge shift %d->%d %+.6fs", e.Src, e.Dst, e.Delta)
		}
		fs = append(fs, Finding{Kind: "blame", Run: d.Label, Epoch: -1, Severity: worst, Msg: msg})
	}
	return fs
}
