package diff

// The CI regression gate: a report plus thresholds yields a list of
// violations.  Simulated-time thresholds can be tight (simulated
// seconds are a pure function of the code — any drift is a real
// change); host-time thresholds stay loose (shared runners are noisy).

import (
	"fmt"
	"math"
)

// Thresholds configures Gate.
type Thresholds struct {
	// SimRatio fails a run whose current simulated time exceeds
	// base*SimRatio (and the totals likewise).  <=0 disables.
	SimRatio float64
	// SimAbs is the absolute floor below which a simulated-time
	// regression is ignored (guards tiny bases against ratio blowups).
	SimAbs float64
	// HostRatio fails a benchmark whose ns/op exceeds base*HostRatio;
	// missing benchmarks also fail.  <=0 disables.
	HostRatio float64
	// RequireComparable fails when the two ledgers' config digests
	// differ — a CI gate comparing against a committed baseline wants
	// this: an incomparable pair means the baseline is stale, not that
	// the code regressed.
	RequireComparable bool
	// FailOnFlip fails on any verdict flip, regardless of time.  With
	// it off flips only fail through the time thresholds (a flip that
	// makes the run faster is a finding, not a violation).
	FailOnFlip bool
}

// DefaultThresholds: simulated time may not regress beyond 0.1% (exact
// runs — this tolerates only genuine noise-free drift being waved
// through deliberately), host time not beyond 2x.
func DefaultThresholds() Thresholds {
	return Thresholds{SimRatio: 1.001, SimAbs: 1e-9, HostRatio: 2.0, RequireComparable: true}
}

// Violation is one gate failure.
type Violation struct {
	Kind string `json:"kind"` // sim-time | verdict-flip | bench | comparability
	Msg  string `json:"msg"`
}

// Gate evaluates the report against the thresholds and returns every
// violation (empty: the gate passes).
func (r *Report) Gate(th Thresholds) []Violation {
	var vs []Violation
	if th.RequireComparable && !r.Comparable {
		vs = append(vs, Violation{Kind: "comparability",
			Msg: fmt.Sprintf("config digests differ (base %s, current %s) — refresh the baseline",
				orDash(r.Base.ConfigDigest), orDash(r.Cur.ConfigDigest))})
	}
	if th.RequireComparable && (len(r.BaseOnly) > 0 || len(r.CurOnly) > 0) {
		vs = append(vs, Violation{Kind: "comparability",
			Msg: fmt.Sprintf("%d run(s) only in base, %d only in current — the ledgers do not align",
				len(r.BaseOnly), len(r.CurOnly))})
	}
	simRegressed := func(base, d float64) bool {
		if th.SimRatio <= 0 || d <= th.SimAbs {
			return false
		}
		return d > (th.SimRatio-1)*math.Abs(base)
	}
	for i := range r.Runs {
		rd := &r.Runs[i]
		if simRegressed(rd.BaseTime, rd.DTime) {
			comp, cv := componentName(rd.DCompute, rd.DOverhead, rd.DWait, rd.DResidual)
			vs = append(vs, Violation{Kind: "sim-time",
				Msg: fmt.Sprintf("run %s: simulated time regressed %+.6fs (%.4fx > %.4fx);"+
					" largest component %s %+.6fs",
					rd.Key, rd.DTime, rd.Ratio(), th.SimRatio, comp, cv)})
		}
		if th.FailOnFlip && rd.Flips > 0 {
			vs = append(vs, Violation{Kind: "verdict-flip",
				Msg: fmt.Sprintf("run %s: %d verdict flip(s)", rd.Key, rd.Flips)})
		}
	}
	if simRegressed(r.Totals.BaseTime, r.Totals.DTime) {
		vs = append(vs, Violation{Kind: "sim-time",
			Msg: fmt.Sprintf("total simulated time regressed %+.6fs (%.6fs -> %.6fs, limit %.4fx)",
				r.Totals.DTime, r.Totals.BaseTime, r.Totals.CurTime, th.SimRatio)})
	}
	if r.Bench != nil && th.HostRatio > 0 {
		for _, e := range r.Bench.Entries {
			switch {
			case e.Status == BenchMissing:
				vs = append(vs, Violation{Kind: "bench",
					Msg: fmt.Sprintf("benchmark %s is in the baseline but not the current run", e.Name)})
			case e.Status != BenchNew && e.Ratio > th.HostRatio:
				vs = append(vs, Violation{Kind: "bench",
					Msg: fmt.Sprintf("benchmark %s: host time %.2fx baseline (%.0f -> %.0f ns/op, limit %.2fx)",
						e.Name, e.Ratio, e.BaseNs, e.CurNs, th.HostRatio)})
			}
		}
	}
	return vs
}
