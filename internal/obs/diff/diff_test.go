package diff

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plum/internal/event"
	"plum/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureBase builds a small multi-run ledger by hand: an analytic
// implicit run with a balanced epoch, an accepted epoch with blame, and
// a rejected epoch.  Floats are deliberately messy (no exact binary
// representations) so the conservation tests exercise real rounding.
func fixtureBase() *obs.LedgerFile {
	return &obs.LedgerFile{
		Manifest: obs.Manifest{
			Kind: "manifest", Schema: obs.SchemaVersion, Tool: "diff_test",
			ConfigDigest: "cfg-1", Git: "base-sha",
		},
		Epochs: []obs.EpochRecord{
			{
				Kind: "epoch", Exp: "implicit", Run: "analytic", P: 4, Cycle: 0,
				Pricing: "analytic", Balanced: true,
				Imbalance: 1.02, SolveSeconds: 0.911, Elems: 1000,
				CPMakespan: 1.013, CPCompute: 0.7, CPOverhead: 0.1, CPWait: 0.2,
			},
			{
				Kind: "epoch", Exp: "implicit", Run: "analytic", P: 4, Cycle: 1,
				Pricing: "analytic", Accepted: true,
				Imbalance: 1.31, Gain: 0.41, Cost: 0.17,
				TotalV: 520, MaxV: 140, EdgeCut: 96, Elems: 1210,
				SolveSeconds: 1.207, PCGIters: 41,
				CPMakespan: 1.409, CPCompute: 0.91, CPOverhead: 0.13, CPWait: 0.35,
				Blame: &obs.BlameRecord{
					Wait: 0.35, SenderCompute: 0.21, SenderOverhead: 0.04,
					Contention: 0.06, Wire: 0.03, Idle: 0.01,
					TopRank: 2, TopPhase: "solve", TopLag: 0.13,
					TopEdges: []obs.BlameEdge{{Src: 2, Dst: 0, Seconds: 0.09}},
				},
			},
			{
				Kind: "epoch", Exp: "implicit", Run: "analytic", P: 4, Cycle: 2,
				Pricing:   "analytic",
				Imbalance: 1.09, Gain: 0.08, Cost: 0.22,
				TotalV: 0, MaxV: 0, EdgeCut: 96, Elems: 1210,
				SolveSeconds: 1.118,
				CPMakespan:   1.233, CPCompute: 0.88, CPOverhead: 0.11, CPWait: 0.23,
			},
		},
		Metrics: map[string]float64{"plum_worlds_total": 3, "plum_msgs_total": 512},
		End:     obs.End{Kind: "end", Epochs: 3},
	}
}

// fixtureFlip perturbs the base: epoch 1's verdict flips to reject
// (gain collapses), the blame top cell moves from rank 2 to rank 3, and
// epoch 2 gets slower with the growth carried by wait.
func fixtureFlip() *obs.LedgerFile {
	lf := fixtureBase()
	lf.Manifest.Git = "cur-sha"
	e1 := &lf.Epochs[1]
	e1.Accepted = false
	e1.Gain, e1.Cost = 0.11, 0.19
	e1.TotalV, e1.MaxV = 0, 0
	e1.CPMakespan, e1.CPWait = 1.521, 0.462
	e1.Blame = &obs.BlameRecord{
		Wait: 0.462, SenderCompute: 0.2, SenderOverhead: 0.04,
		Contention: 0.15, Wire: 0.06, Idle: 0.012,
		TopRank: 3, TopPhase: "halo", TopLag: 0.21,
		TopEdges: []obs.BlameEdge{{Src: 3, Dst: 1, Seconds: 0.17}},
	}
	e2 := &lf.Epochs[2]
	e2.CPMakespan, e2.CPWait = 1.377, 0.374
	e2.EdgeCut = 131
	lf.Metrics["plum_msgs_total"] = 607
	return lf
}

func TestSelfDiffZero(t *testing.T) {
	lf := fixtureBase()
	rep := Ledgers("a.jsonl", "a.jsonl", lf, fixtureBase(), Options{Metrics: true})
	if !rep.Zero() {
		t.Fatalf("self-diff not zero: %+v", rep)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("self-diff produced findings: %+v", rep.Findings)
	}
	if len(rep.Metrics) != 0 {
		t.Errorf("self-diff produced metric deltas: %+v", rep.Metrics)
	}
	tot := rep.Totals
	if tot.DTime != 0 || tot.DCompute != 0 || tot.DOverhead != 0 ||
		tot.DWait != 0 || tot.DResidual != 0 || tot.Flips != 0 {
		t.Errorf("self-diff totals nonzero: %+v", tot)
	}
	if vs := rep.Gate(DefaultThresholds()); len(vs) != 0 {
		t.Errorf("self-diff gate violations: %+v", vs)
	}
	// The report must say so in every format.
	var text bytes.Buffer
	rep.WriteText(&text)
	if !strings.Contains(text.String(), "no differences") {
		t.Errorf("text self-diff lacks zero banner:\n%s", text.String())
	}
}

// TestSelfDiffByteStable: rendering the same comparison twice (fresh
// parses, fresh reports) yields identical bytes — no map-order leaks.
// The CI determinism matrix runs this at GOMAXPROCS 1 and 8.
func TestSelfDiffByteStable(t *testing.T) {
	render := func() (string, string, string) {
		rep := Ledgers("base.jsonl", "cur.jsonl", fixtureBase(), fixtureFlip(), Options{Metrics: true})
		var text, md bytes.Buffer
		rep.WriteText(&text)
		rep.WriteMarkdown(&md)
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return text.String(), md.String(), string(js)
	}
	t1, m1, j1 := render()
	for i := 0; i < 5; i++ {
		t2, m2, j2 := render()
		if t1 != t2 || m1 != m2 || j1 != j2 {
			t.Fatalf("render %d differs from first render", i+2)
		}
	}
}

// TestReportGolden pins the full text report of the flip fixture: a
// verdict flip, a moved blame cell, and a wait-carried slowdown must
// all be named, in rank order.
func TestReportGolden(t *testing.T) {
	rep := Ledgers("base.jsonl", "cur.jsonl", fixtureBase(), fixtureFlip(), Options{Metrics: true})
	var got bytes.Buffer
	rep.WriteText(&got)

	golden := filepath.Join("testdata", "report_flip.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("report drifted from golden (run with -update to accept):\n%s", got.String())
	}
}

// TestConservationExact: the attribution identities hold with == (not
// approximately) at every level, on messy floats.
func TestConservationExact(t *testing.T) {
	rep := Ledgers("base.jsonl", "cur.jsonl", fixtureBase(), fixtureFlip(), Options{})
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	rd := &rep.Runs[0]
	var sumEpoch float64
	for _, ed := range rd.Epochs {
		if got := ed.DCompute + ed.DOverhead + ed.DWait + ed.DResidual; got != ed.DTime {
			t.Errorf("epoch %d: components sum %v != DTime %v", ed.Cycle, got, ed.DTime)
		}
		sumEpoch += ed.DTime
	}
	if sumEpoch != rd.DTime {
		t.Errorf("sum of epoch DTime %v != run DTime %v", sumEpoch, rd.DTime)
	}
	if got := rd.DCompute + rd.DOverhead + rd.DWait + rd.DResidual; got != rd.DTime {
		t.Errorf("run components sum %v != run DTime %v", got, rd.DTime)
	}
	tot := rep.Totals
	if got := tot.DCompute + tot.DOverhead + tot.DWait + tot.DResidual; got != tot.DTime {
		t.Errorf("total components sum %v != total DTime %v", got, tot.DTime)
	}
	if got := rd.CurTime - rd.BaseTime; math.Abs(got-rd.DTime) > 1e-12 {
		// CurTime-BaseTime may reassociate differently from ΣΔ; the
		// canonical end-to-end delta is ΣΔ, but they must agree closely.
		t.Errorf("CurTime-BaseTime %v vs DTime %v", got, rd.DTime)
	}
}

// TestFlipAndBlameFindings: the ranked findings name the flipped epoch
// and the moved blame cell.
func TestFlipAndBlameFindings(t *testing.T) {
	rep := Ledgers("base.jsonl", "cur.jsonl", fixtureBase(), fixtureFlip(), Options{})
	if rep.Totals.Flips != 1 {
		t.Fatalf("flips = %d, want 1", rep.Totals.Flips)
	}
	var kinds []string
	var all strings.Builder
	for _, f := range rep.Findings {
		kinds = append(kinds, f.Kind)
		all.WriteString(f.Msg + "\n")
	}
	for _, want := range []string{"verdict-flip", "sim-time", "blame", "drift"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("findings lack kind %q; got %v", want, kinds)
		}
	}
	if !strings.Contains(all.String(), "accept -> reject") {
		t.Errorf("no flip direction named:\n%s", all.String())
	}
	if !strings.Contains(all.String(), "r2/solve") || !strings.Contains(all.String(), "r3/halo") {
		t.Errorf("moved blame cell not named:\n%s", all.String())
	}
}

// TestModeFlipAlignment: a `-measured` ledger diffs against its
// analytic twin via the pricing-mode wildcard.
func TestModeFlipAlignment(t *testing.T) {
	base := fixtureBase()
	cur := fixtureBase()
	for i := range cur.Epochs {
		cur.Epochs[i].Run = "measured"
		cur.Epochs[i].Pricing = "measured"
	}
	rep := Ledgers("a.jsonl", "b.jsonl", base, cur, Options{})
	if len(rep.BaseOnly) != 0 || len(rep.CurOnly) != 0 {
		t.Fatalf("mode flip not aligned: baseOnly=%v curOnly=%v", rep.BaseOnly, rep.CurOnly)
	}
	if len(rep.Runs) != 1 || !rep.Runs[0].ModeFlip {
		t.Fatalf("want one mode-flip run, got %+v", rep.Runs)
	}
	// Same numbers on both sides: only the pricing labels differ.
	if rep.Runs[0].DTime != 0 {
		t.Errorf("mode-flip DTime = %v, want 0", rep.Runs[0].DTime)
	}
	if rep.Runs[0].Zero {
		t.Errorf("mode-flip run claims Zero despite pricing change")
	}
}

// TestUnalignedRuns: a run present on one side only surfaces as an
// alignment finding, not a silent drop.
func TestUnalignedRuns(t *testing.T) {
	base := fixtureBase()
	cur := fixtureBase()
	extra := cur.Epochs[0]
	extra.Exp = "feedback"
	extra.Model = "fattree"
	cur.Epochs = append(cur.Epochs, extra)
	rep := Ledgers("a.jsonl", "b.jsonl", base, cur, Options{})
	if len(rep.CurOnly) != 1 {
		t.Fatalf("curOnly = %v, want 1 entry", rep.CurOnly)
	}
	if rep.Zero() {
		t.Error("report with unaligned run claims Zero")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "alignment" && strings.Contains(f.Msg, "feedback/fattree") {
			found = true
		}
	}
	if !found {
		t.Errorf("no alignment finding for the extra run: %+v", rep.Findings)
	}
}

func TestGateViolations(t *testing.T) {
	rep := Ledgers("base.jsonl", "cur.jsonl", fixtureBase(), fixtureFlip(), Options{})
	th := DefaultThresholds()
	vs := rep.Gate(th)
	if len(vs) == 0 {
		t.Fatal("regressed diff passed the gate")
	}
	hasSim := false
	for _, v := range vs {
		if v.Kind == "sim-time" {
			hasSim = true
		}
	}
	if !hasSim {
		t.Errorf("no sim-time violation: %+v", vs)
	}

	th.FailOnFlip = true
	vs = rep.Gate(th)
	hasFlip := false
	for _, v := range vs {
		if v.Kind == "verdict-flip" {
			hasFlip = true
		}
	}
	if !hasFlip {
		t.Errorf("FailOnFlip produced no verdict-flip violation: %+v", vs)
	}

	// Incomparable digests: fail only when required.
	cur := fixtureFlip()
	cur.Manifest.ConfigDigest = "cfg-2"
	rep2 := Ledgers("a.jsonl", "b.jsonl", fixtureBase(), cur, Options{})
	hasComp := false
	for _, v := range rep2.Gate(DefaultThresholds()) {
		if v.Kind == "comparability" {
			hasComp = true
		}
	}
	if !hasComp {
		t.Error("incomparable pair passed RequireComparable gate")
	}
	th2 := DefaultThresholds()
	th2.RequireComparable = false
	for _, v := range rep2.Gate(th2) {
		if v.Kind == "comparability" {
			t.Errorf("comparability violation despite RequireComparable=false: %+v", v)
		}
	}

	// An improvement passes.
	imp := Ledgers("cur.jsonl", "base.jsonl", fixtureFlip(), fixtureBase(), Options{})
	for _, v := range imp.Gate(DefaultThresholds()) {
		if v.Kind == "sim-time" {
			t.Errorf("improvement flagged as sim-time regression: %+v", v)
		}
	}
}

func TestBenchCompare(t *testing.T) {
	base := &benchReport{GitSHA: "b", Benchmarks: []benchResult{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkGone", NsPerOp: 50},
		{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: 4},
	}}
	cur := &benchReport{GitSHA: "c", Benchmarks: []benchResult{
		{Name: "BenchmarkA", NsPerOp: 450, AllocsPerOp: 12}, // 4.5x: regressed
		{Name: "BenchmarkB", NsPerOp: 210, AllocsPerOp: 4},  // 1.05x: ok
		{Name: "BenchmarkNew", NsPerOp: 70},
	}}
	bd := compareBench(base, cur, 2.0)
	byName := map[string]BenchEntry{}
	for _, e := range bd.Entries {
		byName[e.Name] = e
	}
	if byName["BenchmarkA"].Status != BenchRegressed {
		t.Errorf("A status = %s, want regressed", byName["BenchmarkA"].Status)
	}
	if byName["BenchmarkB"].Status != BenchOK {
		t.Errorf("B status = %s, want ok", byName["BenchmarkB"].Status)
	}
	if byName["BenchmarkNew"].Status != BenchNew {
		t.Errorf("New status = %s, want new", byName["BenchmarkNew"].Status)
	}
	if byName["BenchmarkGone"].Status != BenchMissing {
		t.Errorf("Gone status = %s, want missing", byName["BenchmarkGone"].Status)
	}
	if bd.Warnings != 2 {
		t.Errorf("warnings = %d, want 2 (regressed + missing)", bd.Warnings)
	}

	// The gate fails on both the regression and the missing benchmark.
	rep := Ledgers("a.jsonl", "a.jsonl", fixtureBase(), fixtureBase(), Options{})
	rep.Bench = bd
	benchViolations := 0
	for _, v := range rep.Gate(DefaultThresholds()) {
		if v.Kind == "bench" {
			benchViolations++
		}
	}
	if benchViolations != 2 {
		t.Errorf("bench violations = %d, want 2", benchViolations)
	}
}

func spanFixture(run string, lagShift float64) event.SpanWorld {
	return event.SpanWorld{
		P:     4,
		Label: map[string]string{"exp": "implicit", "model": "", "run": run, "p": "4"},
		Spans: make([]event.Span, 8),
		Blame: []event.EpochBlame{{
			K: "blame", Epoch: 0,
			Wait: 0.3 + lagShift, SenderCompute: 0.2 + lagShift,
			Lag: []event.LagEntry{
				{Rank: 1, Phase: "solve", Seconds: 0.1},
				{Rank: 2, Phase: "halo", Seconds: 0.05 + lagShift},
			},
			LagOther: 0.02,
			Edges:    []event.EdgeBlame{{Src: 1, Dst: 0, Queue: 0.04, Wire: 0.01}},
		}},
	}
}

func TestSpanDiff(t *testing.T) {
	// Self-diff: zero.
	ds := Spans([]event.SpanWorld{spanFixture("analytic", 0)},
		[]event.SpanWorld{spanFixture("analytic", 0)}, Options{})
	if len(ds) != 1 || !ds[0].Zero {
		t.Fatalf("span self-diff not zero: %+v", ds)
	}
	if fs := SpanFindings(ds); len(fs) != 0 {
		t.Errorf("span self-diff produced findings: %+v", fs)
	}

	// A grown lag cell is found and named, through a mode flip.
	ds = Spans([]event.SpanWorld{spanFixture("analytic", 0)},
		[]event.SpanWorld{spanFixture("measured", 0.07)}, Options{})
	if len(ds) != 1 || ds[0].Zero || !ds[0].ModeFlip {
		t.Fatalf("span mode-flip diff wrong: %+v", ds)
	}
	if len(ds[0].Cells) == 0 || ds[0].Cells[0].Rank != 2 || ds[0].Cells[0].Phase != "halo" {
		t.Fatalf("top moved cell wrong: %+v", ds[0].Cells)
	}
	if math.Abs(ds[0].Cells[0].Delta-0.07) > 1e-15 {
		t.Errorf("cell delta = %v, want 0.07", ds[0].Cells[0].Delta)
	}
	fs := SpanFindings(ds)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "r2/halo") {
		t.Errorf("span finding does not name the cell: %+v", fs)
	}
}

// TestLedgerFiles: the disk path — write with the obs writer, read
// back strictly, self-diff is zero.
func TestLedgerFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lf *obs.LedgerFile) string {
		path := filepath.Join(dir, name)
		l, err := obs.Create(path, lf.Manifest)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range lf.Epochs {
			l.Add(e)
		}
		if err := l.Close(lf.Metrics, ""); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.jsonl", fixtureBase())
	b := write("b.jsonl", fixtureFlip())

	rep, err := LedgerFiles(a, a, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Zero() {
		t.Error("on-disk self-diff not zero")
	}
	rep, err = LedgerFiles(a, b, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Zero() || rep.Totals.Flips != 1 {
		t.Errorf("on-disk flip diff wrong: zero=%v flips=%d", rep.Zero(), rep.Totals.Flips)
	}
}
