package remap

// Cost metrics and the gain/cost acceptance test (paper Sections 4.4-4.6).

// MoveCost quantifies the data movement a processor assignment implies.
// C counts initial-mesh-element remapping weight moved; N counts the sets
// of elements moved between processor pairs (each set is one message).
type MoveCost struct {
	Objective int64 // retained weight, the mappers' objective F
	CTotal    int64 // total weight moved between processors (TotalV's C)
	NTotal    int   // number of processor-pair transfers (TotalV's N)
	CMax      int64 // bottleneck processor's max(sent, received) (MaxV's C)
	NMax      int   // bottleneck processor's transfer count (MaxV's N)
	MaxSent   int64 // largest per-processor outgoing weight
	MaxRecv   int64 // largest per-processor incoming weight
}

// Cost evaluates the movement statistics of assignment partToProc
// (partition j -> processor) against similarity matrix s.
func Cost(s *Similarity, partToProc []int32) MoveCost {
	var mc MoveCost
	sent := make([]int64, s.P)
	recv := make([]int64, s.P)
	nsent := make([]int, s.P)
	nrecv := make([]int, s.P)
	for i := 0; i < s.P; i++ {
		for j := 0; j < s.NParts(); j++ {
			w := s.S[i][j]
			if w == 0 {
				continue
			}
			dst := partToProc[j]
			if dst == int32(i) {
				mc.Objective += w
				continue
			}
			// The elements of partition j resident on processor i move
			// to processor dst as one set.
			mc.CTotal += w
			mc.NTotal++
			sent[i] += w
			nsent[i]++
			recv[dst] += w
			nrecv[dst]++
		}
	}
	for i := 0; i < s.P; i++ {
		if sent[i] > mc.MaxSent {
			mc.MaxSent = sent[i]
		}
		if recv[i] > mc.MaxRecv {
			mc.MaxRecv = recv[i]
		}
		m := sent[i]
		nm := nsent[i]
		if recv[i] > m {
			m = recv[i]
		}
		if nrecv[i] > nm {
			nm = nrecv[i]
		}
		if m > mc.CMax || (m == mc.CMax && nm > mc.NMax) {
			mc.CMax = m
			mc.NMax = nm
		}
	}
	return mc
}

// Metric selects which redistribution cost model to use.
type Metric int

// The two generic metrics of Section 4.4.
const (
	// TotalV minimizes the total volume of data moved among all
	// processors (reduces network contention).
	TotalV Metric = iota
	// MaxV minimizes the maximum flow of data to or from any single
	// processor (reduces the bottleneck processor's time).
	MaxV
)

func (m Metric) String() string {
	if m == TotalV {
		return "TotalV"
	}
	return "MaxV"
}

// Machine holds the machine-dependent constants of the cost model
// (Section 4.5).
type Machine struct {
	TLat   float64 // remote-memory latency: per-word copy time
	TSetup float64 // message startup time
	TIter  float64 // solver time per iteration per initial-mesh element
	M      int     // storage words per element (solver + adaptor)
}

// SP2Machine returns constants loosely calibrated to the paper's IBM SP2.
func SP2Machine() Machine {
	return Machine{TLat: 0.12e-6, TSetup: 40e-6, TIter: 25e-6, M: 60}
}

// RedistributionCost returns M*C*Tlat + N*Tsetup with (C, N) chosen by
// the metric: (Ctotal, Ntotal) for TotalV, (Cmax, Nmax) for MaxV.
func RedistributionCost(metric Metric, mc MoveCost, m Machine) float64 {
	c, n := mc.CTotal, mc.NTotal
	if metric == MaxV {
		c, n = mc.CMax, mc.NMax
	}
	return float64(m.M)*float64(c)*m.TLat + float64(n)*m.TSetup
}

// ComputationalGain returns the solver time saved by adopting the new
// partitions (Section 4.6):
//
//	Titer * Nadapt * (Wold_max - Wnew_max) + (Trefine_old - Trefine_new)
//
// where the W are the heaviest-processor computational loads and the
// refinement term accounts for the better-balanced subdivision phase that
// remapping before refinement buys.
func ComputationalGain(m Machine, nadapt int, woldMax, wnewMax int64, refineSavings float64) float64 {
	return m.TIter*float64(nadapt)*float64(woldMax-wnewMax) + refineSavings
}

// Accept reports whether the new partitioning should be adopted: "the
// new partitioning and processor reassignment are accepted if the
// computational gain is larger than the redistribution cost."
func Accept(gain, cost float64) bool { return gain > cost }
