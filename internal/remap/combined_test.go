package remap

import (
	"math/rand"
	"testing"
)

func TestCombinedCostConsistency(t *testing.T) {
	s := paperLikeMatrix()
	m := Machine{TLat: 1, TSetup: 1, M: 1}
	assign := OptimalMWBG(s)
	// Pure weights reduce to the individual metrics.
	if got, want := CombinedCost(s, assign, m, 1, 0), RedistributionCost(TotalV, Cost(s, assign), m); got != want {
		t.Errorf("wTotal-only combined %v != TotalV %v", got, want)
	}
	if got, want := CombinedCost(s, assign, m, 0, 1), RedistributionCost(MaxV, Cost(s, assign), m); got != want {
		t.Errorf("wMax-only combined %v != MaxV %v", got, want)
	}
}

func TestBestCombinedNeverWorseThanPure(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m := SP2Machine()
	for trial := 0; trial < 40; trial++ {
		s := randomSimilarity(rng, 3+rng.Intn(5), 0.4)
		for _, w := range [][2]float64{{1, 0}, {0, 1}, {1, 1}, {0.3, 0.7}} {
			best, cost, winner := BestCombined(s, m, w[0], w[1])
			if err := s.CheckAssignment(best); err != nil {
				t.Fatal(err)
			}
			if winner < 0 || winner > 2 {
				t.Fatalf("winner index %d", winner)
			}
			for _, cand := range [][]int32{HeuristicMWBG(s), OptimalMWBG(s), OptimalBMCM(s, 1, 1)} {
				if c := CombinedCost(s, cand, m, w[0], w[1]); c < cost-1e-12 {
					t.Fatalf("trial %d w=%v: combined pick %v beaten by candidate %v", trial, w, cost, c)
				}
			}
		}
	}
}

func TestBestCombinedWinnerFollowsWeights(t *testing.T) {
	// With pure MaxV weighting BMCM's assignment (or one matching its
	// bottleneck) must win; with pure TotalV the MWBG optimum must win.
	rng := rand.New(rand.NewSource(41))
	m := Machine{TLat: 1, TSetup: 0, M: 1}
	agree := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		s := randomSimilarity(rng, 4+rng.Intn(3), 0.3)
		bestT, _, _ := BestCombined(s, m, 1, 0)
		if Cost(s, bestT).CTotal == Cost(s, OptimalMWBG(s)).CTotal {
			agree++
		}
		bestM, _, _ := BestCombined(s, m, 0, 1)
		if Cost(s, bestM).CMax > Cost(s, OptimalBMCM(s, 1, 1)).CMax {
			t.Fatalf("trial %d: MaxV-weighted pick has worse bottleneck than BMCM", trial)
		}
	}
	if agree != trials {
		t.Errorf("TotalV-weighted pick matched MWBG volume in %d/%d trials", agree, trials)
	}
}
