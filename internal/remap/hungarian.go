package remap

// OptimalMWBG solves the processor reassignment exactly as a maximally
// weighted bipartite graph matching (paper Section 4.4): with F == 1 the
// problem is a square assignment between P processors and P partitions;
// with F > 1 each processor is duplicated F times ("the processor
// reassignment problem can be reduced to the MWBG problem by duplicating
// each processor and all of its incident edges F times").
//
// The implementation is the Hungarian algorithm with potentials (shortest
// augmenting paths), O(n^3), comfortably fast for the papers' P <= 64;
// the paper quotes O(VE) for its solver — both are polynomial exact
// methods and Table 2's qualitative comparison (optimal is ~10x slower
// than the greedy heuristic) is preserved.
func OptimalMWBG(s *Similarity) []int32 {
	n := s.NParts()
	// Build the duplicated profit matrix: row r corresponds to processor
	// r/F, columns are partitions.  Convert to a minimization problem.
	var maxVal int64
	for i := range s.S {
		for _, v := range s.S[i] {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	cost := make([][]int64, n)
	for r := 0; r < n; r++ {
		proc := r / s.F
		cost[r] = make([]int64, n)
		for j := 0; j < n; j++ {
			cost[r][j] = maxVal - s.S[proc][j]
		}
	}
	rowOf := hungarianMin(cost)
	// rowOf[j] = duplicated row assigned to column j; fold back to the
	// processor.
	partToProc := make([]int32, n)
	for j := 0; j < n; j++ {
		partToProc[j] = int32(rowOf[j] / s.F)
	}
	return partToProc
}

// hungarianMin solves the square min-cost assignment problem and returns
// colToRow: for each column, the row assigned to it.  Standard potentials
// formulation (see e.g. "Assignment problem" in competitive-programming
// references); indices are 1-based internally.
func hungarianMin(a [][]int64) []int {
	n := len(a)
	const inf = int64(1) << 62
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // p[j]: row matched to column j (0 = none)
	way := make([]int, n+1) // way[j]: previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	colToRow := make([]int, n)
	for j := 1; j <= n; j++ {
		colToRow[j-1] = p[j] - 1
	}
	return colToRow
}
