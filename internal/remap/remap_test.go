package remap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"plum/internal/msg"
)

// paperLikeMatrix is a 4x4, F=1 similarity matrix exercising the same
// structure as the paper's Fig. 2 worked example (the scanned figure's
// exact entries are illegible; EXPERIMENTS.md documents the
// substitution).  Chosen so that the greedy heuristic is suboptimal.
func paperLikeMatrix() *Similarity {
	s := NewSimilarity(4, 1)
	s.S[0] = []int64{100, 90, 0, 0}
	s.S[1] = []int64{95, 0, 0, 0}
	s.S[2] = []int64{0, 85, 120, 30}
	s.S[3] = []int64{0, 0, 110, 25}
	return s
}

// bruteForceOptimal enumerates all assignments (F=1) and returns the
// maximum objective.
func bruteForceOptimal(s *Similarity) int64 {
	n := s.P
	perm := make([]int32, n)
	used := make([]bool, n)
	var best int64 = -1
	var rec func(j int, acc int64)
	rec = func(j int, acc int64) {
		if j == n {
			if acc > best {
				best = acc
			}
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm[j] = int32(i)
				rec(j+1, acc+s.S[i][j])
				used[i] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// bruteForceBottleneck enumerates all assignments and returns the
// minimum achievable bottleneck cost.
func bruteForceBottleneck(s *Similarity, alpha, beta float64) float64 {
	n := s.P
	rows := s.RowSums()
	cols := s.ColSums()
	used := make([]bool, n)
	best := -1.0
	var rec func(j int, cur float64)
	rec = func(j int, cur float64) {
		if best >= 0 && cur >= best {
			return
		}
		if j == n {
			if best < 0 || cur < best {
				best = cur
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sent := alpha * float64(rows[i]-s.S[i][j])
			recv := beta * float64(cols[j]-s.S[i][j])
			c := cur
			if sent > c {
				c = sent
			}
			if recv > c {
				c = recv
			}
			used[i] = true
			rec(j+1, c)
			used[i] = false
		}
	}
	rec(0, 0)
	return best
}

// bottleneckOf computes the realized bottleneck cost of an assignment.
func bottleneckOf(s *Similarity, assign []int32, alpha, beta float64) float64 {
	rows := s.RowSums()
	cols := s.ColSums()
	worst := 0.0
	for j, i := range assign {
		sent := alpha * float64(rows[i]-s.S[i][j])
		recv := beta * float64(cols[j]-s.S[i][j])
		if sent > worst {
			worst = sent
		}
		if recv > worst {
			worst = recv
		}
	}
	return worst
}

func randomSimilarity(rng *rand.Rand, p int, sparsity float64) *Similarity {
	s := NewSimilarity(p, 1)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if rng.Float64() > sparsity {
				s.S[i][j] = int64(rng.Intn(1000))
			}
		}
	}
	return s
}

func TestOptimalMWBGIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := randomSimilarity(rng, 2+rng.Intn(5), 0.4)
		assign := OptimalMWBG(s)
		if err := s.CheckAssignment(assign); err != nil {
			t.Fatal(err)
		}
		got := s.Objective(assign)
		want := bruteForceOptimal(s)
		if got != want {
			t.Fatalf("trial %d: optimal objective %d, brute force %d\n%v", trial, got, want, s.S)
		}
	}
}

func TestHeuristicHalfOptimalBound(t *testing.T) {
	// Theorem 1: 2*Heu >= Opt, always.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := randomSimilarity(rng, 2+rng.Intn(6), 0.5)
		heu := s.Objective(HeuristicMWBG(s))
		opt := s.Objective(OptimalMWBG(s))
		if 2*heu < opt {
			t.Fatalf("trial %d: heuristic %d < half of optimal %d\n%v", trial, heu, opt, s.S)
		}
		if heu > opt {
			t.Fatalf("trial %d: heuristic %d exceeds optimal %d", trial, heu, opt)
		}
	}
}

func TestHeuristicDataMovementBound(t *testing.T) {
	// Corollary: moved weight under the heuristic <= 2x optimal moved.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		s := randomSimilarity(rng, 3+rng.Intn(4), 0.3)
		heuMoved := Cost(s, HeuristicMWBG(s)).CTotal
		optMoved := Cost(s, OptimalMWBG(s)).CTotal
		if heuMoved > 2*optMoved {
			t.Fatalf("trial %d: heuristic moves %d > 2x optimal %d", trial, heuMoved, optMoved)
		}
	}
}

func TestHeuristicValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		p := 2 + rng.Intn(6)
		for f := 1; f <= 3; f++ {
			s := NewSimilarity(p, f)
			for i := 0; i < p; i++ {
				for j := 0; j < p*f; j++ {
					s.S[i][j] = int64(rng.Intn(100))
				}
			}
			assign := HeuristicMWBG(s)
			if err := s.CheckAssignment(assign); err != nil {
				t.Fatalf("P=%d F=%d: %v", p, f, err)
			}
		}
	}
}

func TestOptimalMWBGWithF2(t *testing.T) {
	// With F=2, each processor must receive exactly two partitions, and
	// the duplicated-row reduction must still beat the heuristic.
	s := NewSimilarity(3, 2)
	s.S[0] = []int64{50, 40, 0, 0, 10, 0}
	s.S[1] = []int64{45, 0, 30, 25, 0, 5}
	s.S[2] = []int64{0, 35, 28, 0, 20, 15}
	opt := OptimalMWBG(s)
	if err := s.CheckAssignment(opt); err != nil {
		t.Fatal(err)
	}
	heu := HeuristicMWBG(s)
	if err := s.CheckAssignment(heu); err != nil {
		t.Fatal(err)
	}
	if s.Objective(opt) < s.Objective(heu) {
		t.Errorf("optimal %d < heuristic %d", s.Objective(opt), s.Objective(heu))
	}
}

func TestBMCMIsOptimalBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		s := randomSimilarity(rng, 2+rng.Intn(5), 0.4)
		assign := OptimalBMCM(s, 1, 1)
		if err := s.CheckAssignment(assign); err != nil {
			t.Fatal(err)
		}
		got := bottleneckOf(s, assign, 1, 1)
		want := bruteForceBottleneck(s, 1, 1)
		if got != want {
			t.Fatalf("trial %d: BMCM bottleneck %v, brute force %v\n%v", trial, got, want, s.S)
		}
	}
}

func TestBMCMAsymmetricAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		s := randomSimilarity(rng, 3+rng.Intn(3), 0.4)
		assign := OptimalBMCM(s, 2.0, 0.5)
		got := bottleneckOf(s, assign, 2.0, 0.5)
		want := bruteForceBottleneck(s, 2.0, 0.5)
		if got != want {
			t.Fatalf("trial %d: bottleneck %v != %v", trial, got, want)
		}
	}
}

func TestBMCMBeatsMWBGOnMaxMetric(t *testing.T) {
	// Paper Fig. 2 relationship: BMCM's bottleneck (Cmax) is <= the MWBG
	// mappers' bottleneck, while its total volume is >= theirs.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		s := randomSimilarity(rng, 4+rng.Intn(4), 0.3)
		bmcm := bottleneckOf(s, OptimalBMCM(s, 1, 1), 1, 1)
		mwbg := bottleneckOf(s, OptimalMWBG(s), 1, 1)
		if bmcm > mwbg {
			t.Fatalf("trial %d: BMCM bottleneck %v worse than MWBG %v", trial, bmcm, mwbg)
		}
	}
}

func TestCostIdentityAssignment(t *testing.T) {
	s := paperLikeMatrix()
	identity := []int32{0, 1, 2, 3}
	mc := Cost(s, identity)
	if mc.Objective != 100+0+120+25 {
		t.Errorf("identity objective = %d", mc.Objective)
	}
	if mc.CTotal != s.Sum()-mc.Objective {
		t.Errorf("CTotal %d != sum-objective %d", mc.CTotal, s.Sum()-mc.Objective)
	}
}

func TestCostConservation(t *testing.T) {
	// Objective + CTotal == Sum for any assignment.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSimilarity(rng, 3+rng.Intn(5), 0.4)
		for _, assign := range [][]int32{HeuristicMWBG(s), OptimalMWBG(s), OptimalBMCM(s, 1, 1)} {
			mc := Cost(s, assign)
			if mc.Objective+mc.CTotal != s.Sum() {
				return false
			}
			if mc.CMax > mc.CTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestPaperLikeExampleRelationships(t *testing.T) {
	// The qualitative relationships of the paper's Fig. 2(b)-(d).
	s := paperLikeMatrix()
	opt := OptimalMWBG(s)
	heu := HeuristicMWBG(s)
	bmcm := OptimalBMCM(s, 1, 1)
	optC := Cost(s, opt)
	heuC := Cost(s, heu)
	bmcmC := Cost(s, bmcm)
	if optC.CTotal > heuC.CTotal {
		t.Errorf("optimal MWBG moves more (%d) than heuristic (%d)", optC.CTotal, heuC.CTotal)
	}
	if bmcmC.CTotal < optC.CTotal {
		t.Errorf("BMCM total %d below MWBG optimal %d — unexpected for this matrix", bmcmC.CTotal, optC.CTotal)
	}
	if b, m := bottleneckOf(s, bmcm, 1, 1), bottleneckOf(s, opt, 1, 1); b > m {
		t.Errorf("BMCM bottleneck %v worse than MWBG %v", b, m)
	}
	if 2*s.Objective(heu) < s.Objective(opt) {
		t.Error("theorem violated on the worked example")
	}
}

func TestRadixSortDesc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	entries := make([]entry, 500)
	for i := range entries {
		entries[i] = entry{val: int64(rng.Intn(100)), i: int32(i / 25), j: int32(i % 25)}
	}
	radixSortDesc(entries)
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.val < b.val {
			t.Fatalf("not descending at %d: %v then %v", i, a, b)
		}
		if a.val == b.val && (a.i > b.i || (a.i == b.i && a.j > b.j)) {
			t.Fatalf("tie-break violated at %d: %v then %v", i, a, b)
		}
	}
	// Cross-check against sort.
	want := make([]entry, len(entries))
	copy(want, entries)
	sort.SliceStable(want, func(x, y int) bool { return want[x].val > want[y].val })
	for i := range want {
		if want[i].val != entries[i].val {
			t.Fatal("radix order differs from reference sort")
		}
	}
}

func TestBuildSimilarity(t *testing.T) {
	wremap := []int64{5, 3, 2, 7}
	owner := []int32{0, 0, 1, 1}
	newPart := []int32{1, 0, 0, 1}
	s := BuildSimilarity(wremap, owner, newPart, 2, 1)
	if s.S[0][1] != 5 || s.S[0][0] != 3 || s.S[1][0] != 2 || s.S[1][1] != 7 {
		t.Errorf("matrix wrong: %v", s.S)
	}
	if s.Sum() != 17 {
		t.Errorf("sum = %d", s.Sum())
	}
}

func TestBuildSimilarityDistributed(t *testing.T) {
	wremap := []int64{5, 3, 2, 7, 1, 4}
	newPart := []int32{1, 0, 0, 1, 2, 2}
	owner := []int32{0, 0, 1, 1, 2, 2}
	want := BuildSimilarity(wremap, owner, newPart, 3, 1)
	msg.Run(3, func(c *msg.Comm) {
		var localRoots []int32
		for r, o := range owner {
			if int(o) == c.Rank() {
				localRoots = append(localRoots, int32(r))
			}
		}
		s := BuildSimilarityDistributed(c, localRoots, wremap, newPart, 1)
		if c.Rank() == 0 {
			for i := range want.S {
				for j := range want.S[i] {
					if s.S[i][j] != want.S[i][j] {
						t.Errorf("S[%d][%d] = %d, want %d", i, j, s.S[i][j], want.S[i][j])
					}
				}
			}
		} else if s != nil {
			t.Errorf("rank %d got a non-nil matrix", c.Rank())
		}
		// Host maps, everyone receives.
		var assign []int32
		if c.Rank() == 0 {
			assign = HeuristicMWBG(s)
		}
		assign = BroadcastAssignment(c, assign)
		if len(assign) != 3 {
			t.Errorf("rank %d: assignment %v", c.Rank(), assign)
		}
	})
}

func TestRedistributionCostMetrics(t *testing.T) {
	s := paperLikeMatrix()
	assign := OptimalMWBG(s)
	mc := Cost(s, assign)
	m := Machine{TLat: 1, TSetup: 10, TIter: 1, M: 2}
	total := RedistributionCost(TotalV, mc, m)
	wantTotal := 2*float64(mc.CTotal) + 10*float64(mc.NTotal)
	if total != wantTotal {
		t.Errorf("TotalV cost %v, want %v", total, wantTotal)
	}
	maxv := RedistributionCost(MaxV, mc, m)
	wantMax := 2*float64(mc.CMax) + 10*float64(mc.NMax)
	if maxv != wantMax {
		t.Errorf("MaxV cost %v, want %v", maxv, wantMax)
	}
}

func TestGainAndAccept(t *testing.T) {
	m := Machine{TIter: 2, M: 1}
	gain := ComputationalGain(m, 50, 1000, 600, 0.5)
	want := 2.0*50*400 + 0.5
	if gain != want {
		t.Errorf("gain = %v, want %v", gain, want)
	}
	if !Accept(10, 5) || Accept(5, 10) || Accept(5, 5) {
		t.Error("Accept thresholds wrong")
	}
}

func TestMetricString(t *testing.T) {
	if TotalV.String() != "TotalV" || MaxV.String() != "MaxV" {
		t.Error("metric names wrong")
	}
}
