package remap

import "sort"

// OptimalBMCM solves the processor reassignment under the MaxV metric
// (paper Section 4.4) as a bottleneck maximum cardinality matching: the
// mapping minimizes the maximum over processors of
//
//	max(alpha * #ElementsSent_i, beta * #ElementsReceived_i)
//
// where, for processor i assigned partition j,
// sent_i = rowsum_i - S[i][j] (resident weight that leaves i) and
// recv_i = colsum_j - S[i][j] (weight of j not already on i).
// Both depend only on the (i,j) pair, so each edge of the complete
// bipartite graph has the fixed bottleneck cost
//
//	c(i,j) = max(alpha*(rowsum_i - S[i][j]), beta*(colsum_j - S[i][j]))
//
// and the optimum is found by binary search over the distinct costs with
// a maximum-cardinality matching (Hopcroft-Karp) feasibility test.
// Gabow & Tarjan [10] give the O((V log V)^{1/2} E) bound the paper
// quotes; the binary-search formulation used here has the same optimal
// result with an extra log factor.  Implemented for F == 1, as in the
// paper.
func OptimalBMCM(s *Similarity, alpha, beta float64) []int32 {
	if s.F != 1 {
		panic("remap: OptimalBMCM is implemented for F == 1, as in the paper")
	}
	n := s.P
	rows := s.RowSums()
	cols := s.ColSums()
	cost := make([][]float64, n)
	distinct := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			sent := alpha * float64(rows[i]-s.S[i][j])
			recv := beta * float64(cols[j]-s.S[i][j])
			c := sent
			if recv > c {
				c = recv
			}
			cost[i][j] = c
			distinct = append(distinct, c)
		}
	}
	sort.Float64s(distinct)
	distinct = dedupFloats(distinct)

	// Binary search the smallest threshold admitting a perfect matching.
	lo, hi := 0, len(distinct)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if perfectMatchingExists(cost, n, distinct[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	assign := matchUnderThreshold(cost, n, distinct[lo])
	partToProc := make([]int32, n)
	for j := 0; j < n; j++ {
		partToProc[j] = int32(assign[j])
	}
	return partToProc
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// perfectMatchingExists runs Hopcroft-Karp on the bipartite graph of
// edges with cost <= t and reports whether all n rows can be matched.
func perfectMatchingExists(cost [][]float64, n int, t float64) bool {
	return len(matchUnderThreshold(cost, n, t)) == n
}

// matchUnderThreshold returns colToRow for a maximum matching using only
// edges with cost <= t; the result has n entries only when the matching
// is perfect (unmatched columns are dropped).
func matchUnderThreshold(cost [][]float64, n int, t float64) map[int]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cost[i][j] <= t {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchRow := make([]int, n) // row -> col
	matchCol := make([]int, n) // col -> row
	for i := range matchRow {
		matchRow[i] = -1
		matchCol[i] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)

	bfs := func() bool {
		queue := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if matchRow[i] < 0 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			for _, j := range adj[i] {
				w := matchCol[j]
				if w < 0 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[i] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(i int) bool
	dfs = func(i int) bool {
		for _, j := range adj[i] {
			w := matchCol[j]
			if w < 0 || (dist[w] == dist[i]+1 && dfs(w)) {
				matchRow[i] = j
				matchCol[j] = i
				return true
			}
		}
		dist[i] = inf
		return false
	}
	for bfs() {
		for i := 0; i < n; i++ {
			if matchRow[i] < 0 {
				dfs(i)
			}
		}
	}
	out := make(map[int]int, n)
	for j := 0; j < n; j++ {
		if matchCol[j] >= 0 {
			out[j] = matchCol[j]
		}
	}
	return out
}
