package remap

// Topology-aware processor reassignment.  The paper's mappers maximize
// retained weight under the implicit assumption that every move costs
// the same; on an SMP cluster or a fat tree that is false — moving an
// element one hop (same node) is nearly free while moving it across the
// machine is not.  This file prices movement by network distance
// (hop-weighted TotalV/MaxV), derives a hop-discounted similarity matrix
// so the exact MWBG machinery can optimize against it, and prices the
// Section 4.5 redistribution estimate with per-pair link constants.

import "plum/internal/machine"

// HopCost is the hop-weighted analogue of MoveCost: each moved weight
// unit counts once per network hop it crosses.
type HopCost struct {
	TotalHV int64 // sum over transfers of weight * hops (hop-weighted TotalV)
	MaxHV   int64 // bottleneck rank's max(sent, received) hop-weighted volume
}

// HopWeightedCost evaluates assignment partToProc against similarity
// matrix s on machine m: the movement metrics of Section 4.4 with every
// transfer scaled by the hop distance it travels.
func HopWeightedCost(s *Similarity, partToProc []int32, m machine.Model) HopCost {
	var hc HopCost
	sent := make([]int64, s.P)
	recv := make([]int64, s.P)
	for i := 0; i < s.P; i++ {
		for j := 0; j < s.NParts(); j++ {
			w := s.S[i][j]
			if w == 0 {
				continue
			}
			dst := int(partToProc[j])
			if dst == i {
				continue
			}
			hv := w * int64(m.Hops(i, dst))
			hc.TotalHV += hv
			sent[i] += hv
			recv[dst] += hv
		}
	}
	for i := 0; i < s.P; i++ {
		v := sent[i]
		if recv[i] > v {
			v = recv[i]
		}
		if v > hc.MaxHV {
			hc.MaxHV = v
		}
	}
	return hc
}

// maxHops returns the largest pairwise hop distance on m.
func maxHops(m machine.Model, p int) int {
	h := 0
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if d := m.Hops(i, j); d > h {
				h = d
			}
		}
	}
	return h
}

// HopDiscounted builds the derived similarity matrix of the topology-
// aware mapper: entry (i, j) is the hop-discounted profit of assigning
// partition j to processor i,
//
//	D[i][j] = sum_k S[k][j] * (Hmax - Hops(k, i)),
//
// so retained weight (0 hops) earns the full Hmax and weight dragged
// across the machine earns nothing.  Maximizing total profit over a
// valid assignment minimizes the hop-weighted total movement, which
// reduces to the paper's objective F when every pair is equidistant.
func HopDiscounted(s *Similarity, m machine.Model) *Similarity {
	hmax := int64(maxHops(m, s.P))
	d := NewSimilarity(s.P, s.F)
	for j := 0; j < s.NParts(); j++ {
		for k := 0; k < s.P; k++ {
			w := s.S[k][j]
			if w == 0 {
				continue
			}
			for i := 0; i < s.P; i++ {
				d.S[i][j] += w * (hmax - int64(m.Hops(k, i)))
			}
		}
	}
	return d
}

// TopoMWBG solves the hop-discounted assignment exactly (Hungarian on
// the HopDiscounted matrix): the optimal-TotalV mapper generalized to a
// non-flat machine.
func TopoMWBG(s *Similarity, m machine.Model) []int32 {
	return OptimalMWBG(HopDiscounted(s, m))
}

// TopoAssign is the MapTopo mapper: it evaluates the hop-discounted
// optimum alongside the flat-machine candidates and returns the
// assignment with the lowest hop-weighted MaxV (ties broken by
// hop-weighted TotalV).  Because the hop-oblivious heuristic is itself a
// candidate, MapTopo is never worse than HeuMWBG under the hop-weighted
// metrics.
func TopoAssign(s *Similarity, m machine.Model) []int32 {
	candidates := [][]int32{TopoMWBG(s, m), HeuristicMWBG(s), OptimalMWBG(s)}
	var best []int32
	var bestHC HopCost
	for _, cand := range candidates {
		hc := HopWeightedCost(s, cand, m)
		if best == nil || hc.MaxHV < bestHC.MaxHV ||
			(hc.MaxHV == bestHC.MaxHV && hc.TotalHV < bestHC.TotalHV) {
			best, bestHC = cand, hc
		}
	}
	return best
}

// wordBytes converts the machine model's per-byte link costs to the
// per-word element storage of Section 4.5's M constant.
const wordBytes = 8

// RedistributionCostTopo is the Section 4.5 redistribution estimate
// priced with per-pair link constants instead of the flat Tlat/Tsetup
// scalars: each transfer (processor i -> assign[j], weight w) costs
//
//	Setup(i,q) + M * w * wordBytes * PerByte(i,q) + Latency(i,q).
//
// TotalV sums every transfer (network-wide traffic); MaxV takes the
// bottleneck processor's serialized send+receive time.
func RedistributionCostTopo(metric Metric, s *Similarity, assign []int32, mach Machine, m machine.Model) float64 {
	perRank := make([]float64, s.P)
	var total float64
	for i := 0; i < s.P; i++ {
		for j := 0; j < s.NParts(); j++ {
			w := s.S[i][j]
			if w == 0 {
				continue
			}
			q := int(assign[j])
			if q == i {
				continue
			}
			lp := m.Pair(i, q)
			t := lp.Setup + float64(mach.M)*float64(w)*wordBytes*lp.PerByte + lp.Latency
			total += t
			perRank[i] += t
			perRank[q] += t
		}
	}
	if metric == TotalV {
		return total
	}
	var max float64
	for _, t := range perRank {
		if t > max {
			max = t
		}
	}
	return max
}
