package remap

import (
	"testing"

	"plum/internal/machine"
)

// smp4x2 is a 2-node SMP cluster of 4 ranks (nodes {0,1} and {2,3}).
func smp4x2() machine.Model {
	return machine.NewSMPCluster(4, 2, machine.SMPIntraLink(), machine.SP2Link())
}

func TestHopWeightedCostByHand(t *testing.T) {
	// P=2 flat machine: hops are 0 (retained) or 1 (moved), so the
	// hop-weighted metrics collapse to the plain ones.
	s := NewSimilarity(2, 1)
	s.S[0] = []int64{5, 7}
	s.S[1] = []int64{3, 2}
	m := machine.NewFlat(2, machine.SP2Link())
	assign := []int32{1, 0} // everything moves
	hc := HopWeightedCost(s, assign, m)
	mc := Cost(s, assign)
	if hc.TotalHV != mc.CTotal || hc.MaxHV != mc.CMax {
		t.Errorf("flat hop metrics (%d, %d) != plain metrics (%d, %d)",
			hc.TotalHV, hc.MaxHV, mc.CTotal, mc.CMax)
	}

	// SMP: the same movement now costs 1 hop within a node, 3 across.
	smp := smp4x2()
	s2 := NewSimilarity(4, 1)
	s2.S[0] = []int64{0, 10, 0, 0} // p0 holds partition 1's data
	s2.S[1] = []int64{20, 0, 0, 0}
	s2.S[2] = []int64{0, 0, 0, 30} // p2 holds partition 3's data
	s2.S[3] = []int64{0, 0, 40, 0}
	assign2 := []int32{0, 1, 2, 3} // identity: 1<->0 swap intra, 3<->2 swap intra
	hc2 := HopWeightedCost(s2, assign2, smp)
	// All four transfers stay within a node: hop weight = plain weight.
	if hc2.TotalHV != 100 {
		t.Errorf("intra-node TotalHV = %d, want 100", hc2.TotalHV)
	}
	cross := []int32{2, 3, 0, 1} // force every transfer across nodes
	hc3 := HopWeightedCost(s2, cross, smp)
	if hc3.TotalHV != 300 {
		t.Errorf("inter-node TotalHV = %d, want 300 (3 hops x 100)", hc3.TotalHV)
	}
}

// TestTopoAssignPrefersIntraNode: with equal plain weight either
// processor of a pair could take a partition, but only one choice keeps
// the movement inside a node.  The hop-oblivious mappers cannot see the
// difference; MapTopo must.
func TestTopoAssignPrefersIntraNode(t *testing.T) {
	smp := smp4x2()
	s := NewSimilarity(4, 1)
	// Partition j's weight lives mostly on processor j (diagonal), but
	// partition 0 has a secondary block on p1 (same node) and p2 (other
	// node) of equal size, and symmetrically for partition 2.  An
	// assignment that swaps 0<->2 moves everything across nodes; the
	// identity retains the diagonals.
	s.S[0] = []int64{100, 0, 0, 0}
	s.S[1] = []int64{50, 100, 0, 0}
	s.S[2] = []int64{50, 0, 100, 0}
	s.S[3] = []int64{0, 0, 50, 100}
	assign := TopoAssign(s, smp)
	if err := s.CheckAssignment(assign); err != nil {
		t.Fatal(err)
	}
	hcTopo := HopWeightedCost(s, assign, smp)
	hcHeu := HopWeightedCost(s, HeuristicMWBG(s), smp)
	if hcTopo.MaxHV > hcHeu.MaxHV {
		t.Errorf("TopoAssign MaxHV %d worse than heuristic %d", hcTopo.MaxHV, hcHeu.MaxHV)
	}
	// The identity assignment retains all diagonals and moves the three
	// off-diagonal 50s: partition 0's blocks travel 1 hop (from p1, same
	// node) and 3 hops (from p2, other node), partition 2's block 1 hop
	// (from p3).  TotalHV = 50 + 150 + 50.
	if got := HopWeightedCost(s, []int32{0, 1, 2, 3}, smp).TotalHV; got != 250 {
		t.Fatalf("hand-computed identity TotalHV = %d, want 250", got)
	}
}

// TestTopoAssignNeverWorseThanHeuristic: the guarantee that makes
// MapTopo safe to use by default on any topology — randomized matrices,
// lexicographic (MaxHV, TotalHV) comparison.
func TestTopoAssignNeverWorseThanHeuristic(t *testing.T) {
	// Small deterministic LCG so the test needs no seed plumbing.
	state := uint64(12345)
	rnd := func(n int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % n
	}
	for _, model := range []machine.Model{
		smp4x2(),
		machine.NewSMPCluster(8, 4, machine.SMPIntraLink(), machine.SP2Link()),
		machine.NewFatTree(8, 2, machine.SP2Link(), 10e-6, machine.SP2Link().PerByte),
	} {
		p := model.Ranks()
		for trial := 0; trial < 25; trial++ {
			s := NewSimilarity(p, 1)
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if rnd(3) > 0 {
						s.S[i][j] = rnd(1000)
					}
				}
			}
			assign := TopoAssign(s, model)
			if err := s.CheckAssignment(assign); err != nil {
				t.Fatalf("%s trial %d: %v", model.Name(), trial, err)
			}
			ht := HopWeightedCost(s, assign, model)
			hh := HopWeightedCost(s, HeuristicMWBG(s), model)
			if ht.MaxHV > hh.MaxHV || (ht.MaxHV == hh.MaxHV && ht.TotalHV > hh.TotalHV) {
				t.Errorf("%s trial %d: TopoAssign (%d,%d) worse than heuristic (%d,%d)",
					model.Name(), trial, ht.MaxHV, ht.TotalHV, hh.MaxHV, hh.TotalHV)
			}
		}
	}
}

// TestHopDiscountedFlatEquivalence: on a flat machine the derived matrix
// is an affine transform of S per column, so the hop-discounted optimum
// retains exactly as much weight as OptimalMWBG.
func TestHopDiscountedFlatEquivalence(t *testing.T) {
	flat := machine.NewFlat(4, machine.SP2Link())
	s := NewSimilarity(4, 1)
	s.S[0] = []int64{100, 90, 0, 0}
	s.S[1] = []int64{95, 0, 0, 0}
	s.S[2] = []int64{0, 85, 120, 30}
	s.S[3] = []int64{0, 0, 110, 25}
	topo := TopoMWBG(s, flat)
	opt := OptimalMWBG(s)
	if got, want := s.Objective(topo), s.Objective(opt); got != want {
		t.Errorf("flat-machine TopoMWBG objective %d != OptimalMWBG %d", got, want)
	}
}

func TestRedistributionCostTopo(t *testing.T) {
	smp := smp4x2()
	mach := SP2Machine()
	s := NewSimilarity(4, 1)
	s.S[0] = []int64{0, 100, 0, 0}
	s.S[1] = []int64{100, 0, 0, 0}
	s.S[2] = []int64{0, 0, 0, 100}
	s.S[3] = []int64{0, 0, 100, 0}
	intra := []int32{0, 1, 2, 3} // swaps stay within nodes
	cross := []int32{2, 3, 0, 1} // swaps cross nodes
	for _, metric := range []Metric{TotalV, MaxV} {
		ci := RedistributionCostTopo(metric, s, intra, mach, smp)
		cc := RedistributionCostTopo(metric, s, cross, mach, smp)
		if ci <= 0 || cc <= 0 {
			t.Fatalf("%v: non-positive costs %v, %v", metric, ci, cc)
		}
		if ci >= cc {
			t.Errorf("%v: intra-node redistribution %v not cheaper than inter-node %v", metric, ci, cc)
		}
	}
	// TotalV counts each transfer once; MaxV bounds it by the busiest
	// rank, so TotalV >= MaxV on any assignment with >1 active rank.
	if tot, max := RedistributionCostTopo(TotalV, s, cross, mach, smp),
		RedistributionCostTopo(MaxV, s, cross, mach, smp); tot < max {
		t.Errorf("TotalV %v < MaxV %v", tot, max)
	}
}
