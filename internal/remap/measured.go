package remap

// Measured-cost pricing: the Section 4.5/4.6 gain/cost decision with
// both sides replaced by quantities the event engine measured during
// the previous epoch, instead of the hand-calibrated machine constants
// the paper had to assume.  The analytic forms remain the fallback —
// and the first epoch of every run, which has no profile yet, prices
// exactly as the paper does.

import "plum/internal/machine"

// MeasuredGain returns the solver time the new assignment is predicted
// to save over the next nadapt iterations, priced from measurement: the
// solve phase under the current mapping took perIter simulated seconds
// per iteration — halo waits, collectives, and contention included —
// and solver time tracks the heaviest-rank load, so rebalancing from
// woldMax to wnewMax scales it by wnewMax/woldMax:
//
//	gain = perIter * nadapt * (woldMax - wnewMax) / woldMax.
//
// This replaces the analytic Titer (seconds per iteration per element,
// a constant the paper calibrated once) with the per-iteration cost the
// simulator actually charged, which on a congested or heterogeneous
// machine can differ from the constant by a large factor.
func MeasuredGain(perIter float64, nadapt int, woldMax, wnewMax int64) float64 {
	if woldMax <= 0 {
		return 0
	}
	return perIter * float64(nadapt) * float64(woldMax-wnewMax) / float64(woldMax)
}

// RedistributionCostMeasured is the Section 4.5 redistribution estimate
// priced with link rates calibrated from the previous epoch's observed
// sends (machine.CalibrateRates): each transfer (processor i ->
// assign[j], weight w) crossing h network hops costs
//
//	Setup_h + M * w * wordBytes * PerByte_h + Latency_h
//
// with (Setup_h, PerByte_h, Latency_h) the measured rates of hop class
// h — contention queueing included, because the calibration reads
// arrival delays from the trace.  Hop classes never observed fall back
// to the machine model's own Pair constants (topo nil: the flat scalar
// constants), so a quiet epoch cannot zero-price a remapping.  TotalV
// sums every transfer; MaxV takes the bottleneck processor's
// serialized send+receive time — the same aggregation as the analytic
// RedistributionCostTopo.
func RedistributionCostMeasured(metric Metric, s *Similarity, assign []int32,
	mach Machine, topo machine.Model, rates machine.RateTable) float64 {

	flat := LinkFromMachine(mach)
	perRank := make([]float64, s.P)
	var total float64
	for i := 0; i < s.P; i++ {
		for j := 0; j < s.NParts(); j++ {
			w := s.S[i][j]
			if w == 0 {
				continue
			}
			q := int(assign[j])
			if q == i {
				continue
			}
			hops, fallback := 1, flat
			if topo != nil {
				hops = topo.Hops(i, q)
				fallback = topo.Pair(i, q)
			}
			lp := rates.For(hops, fallback)
			t := lp.Setup + float64(mach.M)*float64(w)*wordBytes*lp.PerByte + lp.Latency
			total += t
			perRank[i] += t
			perRank[q] += t
		}
	}
	if metric == TotalV {
		return total
	}
	var max float64
	for _, t := range perRank {
		if t > max {
			max = t
		}
	}
	return max
}

// LinkFromMachine converts the scalar Section 4.5 constants into
// LinkParams: the flat-machine fallback for measured pricing when no
// topology is installed.  Tlat is per word, LinkParams.PerByte per
// byte.
func LinkFromMachine(m Machine) machine.LinkParams {
	return machine.LinkParams{Setup: m.TSetup, PerByte: m.TLat / wordBytes}
}
