package remap

import (
	"fmt"

	"plum/internal/msg"
)

// Similarity is the matrix S of Section 4.3: entry S[i][j] is the sum of
// the remapping weights Wremap of all dual-graph vertices in new
// partition j that already reside on processor i.  There are P processor
// rows and P*F partition columns; each processor will be assigned F
// unique partitions.
type Similarity struct {
	P int // processors
	F int // partitions per processor
	S [][]int64
}

// NewSimilarity allocates a zero P x (P*F) matrix.
func NewSimilarity(p, f int) *Similarity {
	s := &Similarity{P: p, F: f, S: make([][]int64, p)}
	for i := range s.S {
		s.S[i] = make([]int64, p*f)
	}
	return s
}

// NParts returns the number of new partitions (P*F).
func (s *Similarity) NParts() int { return s.P * s.F }

// Sum returns the total of all matrix entries (the total remapping weight
// of the mesh).
func (s *Similarity) Sum() int64 {
	var t int64
	for _, row := range s.S {
		for _, x := range row {
			t += x
		}
	}
	return t
}

// RowSums returns per-processor totals (the remapping weight currently
// resident on each processor).
func (s *Similarity) RowSums() []int64 {
	out := make([]int64, s.P)
	for i, row := range s.S {
		for _, x := range row {
			out[i] += x
		}
	}
	return out
}

// ColSums returns per-partition totals (the remapping weight of each new
// partition).
func (s *Similarity) ColSums() []int64 {
	out := make([]int64, s.NParts())
	for _, row := range s.S {
		for j, x := range row {
			out[j] += x
		}
	}
	return out
}

// BuildSimilarity constructs S from global information: wremap[r] is the
// remapping weight of dual vertex (initial element) r, owner[r] its
// current processor, and newPart[r] its new partition.
func BuildSimilarity(wremap []int64, owner, newPart []int32, p, f int) *Similarity {
	s := NewSimilarity(p, f)
	for r := range wremap {
		s.S[owner[r]][newPart[r]] += wremap[r]
	}
	return s
}

// Objective returns the mapper objective F = sum over processors of the
// similarity weight they retain under the assignment (partToProc[j] is
// the processor that receives partition j).  Maximizing it minimizes the
// total data movement, since moved weight = Sum() - Objective.
func (s *Similarity) Objective(partToProc []int32) int64 {
	var t int64
	for j, i := range partToProc {
		t += s.S[i][j]
	}
	return t
}

// CheckAssignment validates that partToProc assigns each of the P*F
// partitions to a processor and every processor receives exactly F
// partitions.
func (s *Similarity) CheckAssignment(partToProc []int32) error {
	if len(partToProc) != s.NParts() {
		return fmt.Errorf("remap: assignment length %d != %d partitions", len(partToProc), s.NParts())
	}
	count := make([]int, s.P)
	for j, i := range partToProc {
		if i < 0 || int(i) >= s.P {
			return fmt.Errorf("remap: partition %d assigned to invalid processor %d", j, i)
		}
		count[i]++
	}
	for i, c := range count {
		if c != s.F {
			return fmt.Errorf("remap: processor %d received %d partitions, want F=%d", i, c, s.F)
		}
	}
	return nil
}

// BuildSimilarityDistributed runs the distributed construction of
// Section 4.3: "since the partitioning algorithm is run in parallel, each
// processor can simultaneously compute one row of the matrix... This
// information is then gathered by a single host processor."  Each rank
// passes the roots it currently owns; the host (rank 0) returns the full
// matrix, other ranks return nil.  The gather moves only one row (P*F
// integers) per processor, which is why the paper calls its cost
// "minuscule".
func BuildSimilarityDistributed(c *msg.Comm, localRoots []int32, wremap []int64, newPart []int32, f int) *Similarity {
	p := c.Size()
	row := make([]int64, p*f)
	for _, r := range localRoots {
		row[newPart[r]] += wremap[r]
	}
	c.Compute(float64(len(localRoots)))
	rows := c.Gather(0, msg.PutInts(row))
	if c.Rank() != 0 {
		return nil
	}
	s := NewSimilarity(p, f)
	for i := 0; i < p; i++ {
		copy(s.S[i], msg.GetInts(rows[i]))
	}
	return s
}

// BroadcastAssignment scatters the host's partition-to-processor mapping
// to all ranks ("computes the new partition-to-processor mapping, and
// scatters the solution back to the processors").
func BroadcastAssignment(c *msg.Comm, partToProc []int32) []int32 {
	var flat []int64
	if c.Rank() == 0 {
		flat = make([]int64, len(partToProc))
		for i, x := range partToProc {
			flat[i] = int64(x)
		}
	}
	flat = c.BcastInts(0, flat)
	out := make([]int32, len(flat))
	for i, x := range flat {
		out[i] = int32(x)
	}
	return out
}
