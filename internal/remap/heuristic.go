package remap

// HeuristicMWBG is the paper's O(E) greedy approximation to the maximally
// weighted bipartite graph matching (Section 4.4): similarity entries are
// sorted in descending order with a radix sort, and scanned once,
// assigning partition j to processor i whenever the partition is still
// unassigned and the processor still needs partitions.
//
// Theorem 1 of the paper guarantees the objective is at least half the
// optimal, and the corollary bounds the data movement at twice optimal.
// Table 2 shows it is nearly optimal in practice at a tenth of the cost.
func HeuristicMWBG(s *Similarity) []int32 {
	nparts := s.NParts()
	partMap := make([]int32, nparts)
	for j := range partMap {
		partMap[j] = -1
	}
	procUnmap := make([]int, s.P) // partitions each processor still needs
	for i := range procUnmap {
		procUnmap[i] = s.F
	}

	entries := sortedEntriesDesc(s)

	count := 0
	for _, e := range entries {
		if count >= nparts {
			break
		}
		if procUnmap[e.i] > 0 && partMap[e.j] < 0 {
			procUnmap[e.i]--
			partMap[e.j] = int32(e.i)
			count++
		}
	}
	// The zero entries of S participate implicitly: any partition still
	// unassigned goes to any processor with remaining capacity (in
	// deterministic order).
	if count < nparts {
		i := 0
		for j := range partMap {
			if partMap[j] >= 0 {
				continue
			}
			for procUnmap[i] == 0 {
				i++
			}
			procUnmap[i]--
			partMap[j] = int32(i)
			count++
		}
	}
	return partMap
}

// entry is one similarity matrix cell.
type entry struct {
	val  int64
	i, j int32
}

// sortedEntriesDesc returns all non-zero entries sorted by value
// descending, ties broken by (i, j) ascending — an LSD radix sort over
// the value bytes, per the paper's pseudocode ("generate list L of
// entries in S in descending order using radix sort").
func sortedEntriesDesc(s *Similarity) []entry {
	var entries []entry
	for i := range s.S {
		for j, v := range s.S[i] {
			if v > 0 {
				entries = append(entries, entry{v, int32(i), int32(j)})
			}
		}
	}
	radixSortDesc(entries)
	return entries
}

// radixSortDesc sorts entries by val descending, stable.  Entries were
// appended in (i,j) ascending order, so stability yields the documented
// tie-break.  Values are non-negative weights, so unsigned byte radix
// passes apply directly.
func radixSortDesc(entries []entry) {
	n := len(entries)
	if n < 2 {
		return
	}
	buf := make([]entry, n)
	src, dst := entries, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var count [256]int
		anyNonZero := false
		for _, e := range src {
			b := byte(uint64(e.val) >> shift)
			count[b]++
			if b != 0 {
				anyNonZero = true
			}
		}
		if !anyNonZero && shift > 0 {
			break // all higher bytes zero: already fully sorted
		}
		// Descending: bucket 255 first.
		pos := 0
		var start [256]int
		for b := 255; b >= 0; b-- {
			start[b] = pos
			pos += count[b]
		}
		for _, e := range src {
			b := byte(uint64(e.val) >> shift)
			dst[start[b]] = e
			start[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}
