package remap

// Combined-metric mapping.  The paper closes Section 4.4 with: "in
// general, the objective function may need to use a combination of both
// metrics to effectively incorporate all related costs.  This issue will
// be addressed in future work."  This file implements that extension: a
// weighted combination of the TotalV and MaxV redistribution models
// evaluated over a portfolio of candidate assignments.

// CombinedCost returns wTotal * TotalV-cost + wMax * MaxV-cost for an
// assignment under the machine model.
func CombinedCost(s *Similarity, assign []int32, m Machine, wTotal, wMax float64) float64 {
	mc := Cost(s, assign)
	return wTotal*RedistributionCost(TotalV, mc, m) + wMax*RedistributionCost(MaxV, mc, m)
}

// BestCombined evaluates the three mappers (heuristic MWBG, optimal
// MWBG, optimal BMCM) under the combined objective and returns the best
// assignment, its cost, and which candidate won (0=heuristic, 1=optimal
// MWBG, 2=BMCM).  Because the candidates are the optima of the two pure
// metrics plus the cheap heuristic, the winner is never worse than
// either pure strategy under the combined objective.
func BestCombined(s *Similarity, m Machine, wTotal, wMax float64) (assign []int32, cost float64, winner int) {
	candidates := [][]int32{HeuristicMWBG(s), OptimalMWBG(s)}
	if s.F == 1 {
		candidates = append(candidates, OptimalBMCM(s, 1, 1))
	}
	winner = -1
	for i, cand := range candidates {
		c := CombinedCost(s, cand, m, wTotal, wMax)
		if winner < 0 || c < cost {
			assign, cost, winner = cand, c, i
		}
	}
	return assign, cost, winner
}
