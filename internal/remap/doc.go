// Package remap implements the processor-reassignment and data-movement
// cost machinery of the PLUM load balancer (paper Sections 4.3-4.6):
// the similarity matrix, the three partition-to-processor mappers
// (heuristic greedy MWBG, optimal MWBG, optimal BMCM), the TotalV / MaxV
// cost metrics, and the computational-gain vs. redistribution-cost
// acceptance test — plus the two extensions this reproduction adds on
// top: topology-aware mapping and measured-cost pricing.
//
// Entry points.  BuildSimilarityDistributed assembles the similarity
// matrix at the host; HeuristicMWBG / OptimalMWBG / OptimalBMCM are the
// paper's mappers and TopoAssign the hop-aware one (topo.go); Cost and
// HopWeightedCost score an assignment; RedistributionCost,
// RedistributionCostTopo, and RedistributionCostMeasured price the move
// (scalar constants, per-pair link constants, and trace-calibrated
// rates respectively); ComputationalGain and MeasuredGain price the
// other side; Accept is the decision.
//
// Invariants.  Every mapper is deterministic (ties break by index), so
// a given similarity matrix always yields the same assignment.  The
// pricing tiers are strictly layered fallbacks: measured pricing is
// used only when a profile exists, per-pair pricing only when the
// topology is non-uniform, and the scalar Section 4.5 formulas
// otherwise — the flat default path is bitwise-pinned by the golden
// tests in internal/core.  The heuristic mapper's objective is provably
// within 2x of optimal (checked by the Fig. 2 experiment).
package remap
