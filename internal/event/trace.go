package event

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
)

// Kind classifies a traced, clock-advancing operation.
type Kind uint8

// The three operation classes the runtime records.
const (
	// KindCompute is local work: a Compute charge or a raw clock advance.
	KindCompute Kind = iota
	// KindSend is the sender-side injection span (per-message setup plus
	// per-byte copy); the wire time after it is implicit in the matching
	// receive's Arrival.
	KindSend
	// KindRecv is the receiver-side span of a Recv or Wait: from the call
	// to completion, covering any idle wait for the arrival plus the
	// receive overhead (matching + copy-out).
	KindRecv
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	default:
		return "recv"
	}
}

// Record is one clock-advancing operation of one rank.  Records of a
// rank appear in the trace in that rank's program order, which is also
// nondecreasing T0 order per rank.
type Record struct {
	Rank  int
	Kind  Kind
	T0    float64 // simulated time the operation started
	T1    float64 // simulated time it completed (the rank's clock after)
	Peer  int     // destination (send) or source (recv); -1 otherwise
	Tag   int
	Bytes int
	// MsgID links a send record to the recv record that consumed the
	// message; 0 when the operation moved no message.
	MsgID int64
	// Arrival is, for a recv, the simulated time the matched message
	// became available at the receiver (send completion + wire latency +
	// any contention queueing).  Arrival > T0 means the rank idled
	// waiting on the wire.
	Arrival float64
	// Depart is, for a send, the simulated time the message actually
	// entered the wire: T1 plus any contention queueing on shared links
	// (Depart == T1 on uncontended paths).  Arrival - Depart is pure
	// wire latency, Depart - T1 the queue delay — the exact split the
	// wait-blame pass charges to contention vs wire.
	Depart float64
	// Phase is the innermost phase span open on the rank when the
	// operation ran (PhaseNone outside any span).
	Phase Phase
}

// Trace is the event log of one simulated run.
type Trace struct {
	P       int // world size
	Records []Record
}

// Add appends a record.  Appends are serialized by the engine's
// execution token, so no locking is needed.
//
// Records is deliberately one contiguous, globally ordered arena rather
// than per-rank lists: the global append order is the engine's
// deterministic total order, which is what lets the measured-cost
// feedback loop cut bitwise-reproducible profile windows out of a live
// trace by plain [start, end) indices (internal/core's Unsteady.Cycle,
// profile.FromTrace).  Growth is amortized by Grow — the runtime
// pre-grows each traced world — and by append's doubling thereafter.
func (t *Trace) Add(r Record) { t.Records = append(t.Records, r) }

// Grow ensures capacity for at least n additional records without
// reallocation, pre-growing the arena so hot recording loops do not pay
// repeated growth copies.
func (t *Trace) Grow(n int) {
	t.Records = slices.Grow(t.Records, n)
}

// Makespan returns the latest completion time in the trace.
func (t *Trace) Makespan() float64 {
	var m float64
	for _, r := range t.Records {
		if r.T1 > m {
			m = r.T1
		}
	}
	return m
}

// chromeEvent is one entry of the Chrome tracing JSON array format
// (chrome://tracing, Perfetto).  Times are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usec = 1e6

// WriteChrome writes the trace in the Chrome tracing JSON array format:
// one complete ("X") event per record on the rank's timeline, plus flow
// ("s"/"f") arrows from each send to the recv that consumed its message.
// Load the file in chrome://tracing or https://ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.WriteChromeSpans(w, nil)
}

// WriteChromeSpans is WriteChrome with the run's phase spans layered
// onto the same per-rank timelines: each span becomes an enclosing
// "X" slice (spans strictly contain the records and each other by the
// push/pop stack discipline, so the viewer nests them), so the export
// shows both *what* each rank did and *which phase* it was doing it
// for, with the message flow arrows as the causality edges between.
func (t *Trace) WriteChromeSpans(w io.Writer, spans []Span) error {
	var events []chromeEvent
	for rank := 0; rank < t.P; rank++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
	}
	for _, s := range spans {
		dur := (s.T1 - s.T0) * usec
		events = append(events, chromeEvent{
			Name: s.Phase.String(), Ph: "X", Ts: s.T0 * usec, Dur: &dur,
			Pid: 0, Tid: s.Rank,
			Args: map[string]any{"depth": s.Depth, "epoch": s.Epoch},
		})
	}
	recvOf := make(map[int64]bool)
	for _, r := range t.Records {
		if r.Kind == KindRecv && r.MsgID != 0 {
			recvOf[r.MsgID] = true
		}
	}
	for _, r := range t.Records {
		name := r.Kind.String()
		args := map[string]any{}
		if r.Phase != PhaseNone {
			args["phase"] = r.Phase.String()
		}
		switch r.Kind {
		case KindSend:
			name = fmt.Sprintf("send→%d", r.Peer)
			args["bytes"], args["tag"] = r.Bytes, r.Tag
			if r.Depart > r.T1 {
				args["queue_us"] = (r.Depart - r.T1) * usec
			}
		case KindRecv:
			name = fmt.Sprintf("recv←%d", r.Peer)
			args["bytes"], args["tag"] = r.Bytes, r.Tag
			args["arrival_us"] = r.Arrival * usec
			args["waited"] = r.Arrival > r.T0
		}
		dur := (r.T1 - r.T0) * usec
		events = append(events, chromeEvent{
			Name: name, Ph: "X", Ts: r.T0 * usec, Dur: &dur,
			Pid: 0, Tid: r.Rank, Args: args,
		})
		if r.MsgID != 0 && recvOf[r.MsgID] {
			switch r.Kind {
			case KindSend:
				events = append(events, chromeEvent{
					Name: "msg", Ph: "s", Ts: r.T1 * usec, Pid: 0,
					Tid: r.Rank, ID: r.MsgID,
				})
			case KindRecv:
				events = append(events, chromeEvent{
					Name: "msg", Ph: "f", BP: "e", Ts: r.Arrival * usec,
					Pid: 0, Tid: r.Rank, ID: r.MsgID,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteChromeFile writes the Chrome-tracing export to path, reporting
// both write and close failures (a truncated trace file must not look
// like success).  The single implementation both exporter commands
// (plumbench -trace, plumviz -trace) share.
func (t *Trace) WriteChromeFile(path string) error {
	return t.WriteChromeFileSpans(path, nil)
}

// WriteChromeFileSpans writes the span-layered export to path.
func (t *Trace) WriteChromeFileSpans(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteChromeSpans(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
