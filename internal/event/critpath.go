package event

// Critical-path extraction: the chain of operations that determines the
// makespan of a simulated run.  Walking it back from the last completed
// operation separates what actually bounds the run — local compute,
// message-passing software overhead, or time spent waiting on the wire —
// the decomposition solver studies use to separate setup cost from
// iteration cost, and the quantity the comm/compute-overlap optimization
// exists to shorten.

// Path is the critical path of a trace: a time-ascending chain of
// records from (near) time zero to the makespan, with the chain's
// duration decomposed into three exclusive buckets.
type Path struct {
	Makespan float64 // completion time of the last operation in the run
	EndRank  int     // rank whose operation finishes last
	Steps    []Record

	// The decomposition.  Compute + Overhead + CommWait equals Makespan
	// minus the start time of the first step (normally 0).
	Compute  float64 // local work on the path
	Overhead float64 // send injection + receive matching/copy overhead
	CommWait float64 // wire latency, contention queueing, and idle gaps
}

// CriticalPath extracts the critical path of a trace.  From the record
// that completes last, each step's predecessor is:
//
//   - the send that produced the message, when the step is a receive
//     that idled waiting for its arrival (the dependency crosses ranks);
//   - the previous record on the same rank otherwise.
//
// The walk is deterministic: ties on the final completion time resolve
// to the lowest rank, then the latest record of that rank.
func CriticalPath(t *Trace) Path {
	var p Path
	if len(t.Records) == 0 {
		return p
	}
	perRank := make([][]int, t.P)
	rankPos := make([]int, len(t.Records)) // index within the rank's list
	sendIdx := make(map[int64]int)
	for i, r := range t.Records {
		rankPos[i] = len(perRank[r.Rank])
		perRank[r.Rank] = append(perRank[r.Rank], i)
		if r.Kind == KindSend && r.MsgID != 0 {
			sendIdx[r.MsgID] = i
		}
	}

	end := -1
	for i, r := range t.Records {
		if end < 0 {
			end = i
			continue
		}
		e := t.Records[end]
		if r.T1 > e.T1 || (r.T1 == e.T1 && (r.Rank < e.Rank ||
			(r.Rank == e.Rank && i > end))) {
			end = i
		}
	}
	p.Makespan = t.Records[end].T1
	p.EndRank = t.Records[end].Rank

	var steps []Record
	cur := end
	for cur >= 0 {
		r := t.Records[cur]
		steps = append(steps, r)
		next := -1
		switch {
		case r.Kind == KindRecv && r.Arrival > r.T0:
			// The rank idled until the wire delivered: the path crosses to
			// the sender.  The receive span splits into copy-out overhead
			// after the arrival and wire time before it.
			p.Overhead += r.T1 - r.Arrival
			if si, ok := sendIdx[r.MsgID]; ok {
				p.CommWait += r.Arrival - t.Records[si].T1
				next = si
			} else {
				// Untraced producer (shouldn't happen): charge the wait
				// locally and continue on this rank.
				p.CommWait += r.Arrival - r.T0
				next = prevOnRank(t, perRank, rankPos, cur)
			}
		case r.Kind == KindRecv:
			p.Overhead += r.T1 - r.T0
			next = prevOnRank(t, perRank, rankPos, cur)
		case r.Kind == KindSend:
			p.Overhead += r.T1 - r.T0
			next = prevOnRank(t, perRank, rankPos, cur)
		default:
			p.Compute += r.T1 - r.T0
			next = prevOnRank(t, perRank, rankPos, cur)
		}
		// Idle gap between the predecessor's completion and this step's
		// start on the same rank (message edges already charged the wire
		// span; back-to-back local operations have no gap).
		if next >= 0 && !(r.Kind == KindRecv && r.Arrival > r.T0) {
			if gap := r.T0 - t.Records[next].T1; gap > 0 {
				p.CommWait += gap
			}
		}
		cur = next
	}
	// Reverse into time-ascending order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	p.Steps = steps
	return p
}

func prevOnRank(t *Trace, perRank [][]int, rankPos []int, i int) int {
	r := t.Records[i]
	if rankPos[i] == 0 {
		return -1
	}
	return perRank[r.Rank][rankPos[i]-1]
}
