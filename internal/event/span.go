package event

// Causal span layer: each rank's timeline, segmented into typed, nested
// phase spans (solver iteration, halo exchange, collective, SPAI setup,
// refine/coarsen, repartition, migrate).  Spans are pure observation —
// opening or closing one never touches a simulated clock — and the span
// stream is written through a bounded-memory streaming sink: per-rank
// ring buffers spill the oldest completed spans to the sink as
// serialized bytes, epoch cuts flush the rest in canonical rank-major
// order, and optional sampling thins off-path spans while never
// dropping a span that overlaps the epoch's critical path.  Because
// every mutation happens while the owning rank holds the engine's
// execution token, the stream is deterministic: byte-equal across
// repeat runs and across GOMAXPROCS, and byte-equal with the ring
// bound on or off (sampling disabled) — eviction only changes *when*
// a span's bytes are serialized, never their order or content.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Phase classifies a span: which algorithmic phase of the PLUM cycle
// (or of the solver underneath it) the enclosed operations belong to.
type Phase uint8

// The phases of the adaption/solve cycle that get spans.  The zero
// value PhaseNone marks records outside any pushed phase.
const (
	PhaseNone Phase = iota
	PhaseSolve
	PhaseHalo
	PhaseCollective
	PhaseSPAI
	PhaseMark
	PhaseCoarsen
	PhaseRefine
	PhaseRepartition
	PhaseReassign
	PhaseMigrate
	NumPhases
)

var phaseNames = [NumPhases]string{
	"none", "solve", "halo", "collective", "spai", "mark",
	"coarsen", "refine", "repartition", "reassign", "migrate",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// PhaseFromString is the inverse of Phase.String; unknown names map to
// PhaseNone (span files are forward-tolerant).
func PhaseFromString(s string) Phase {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i)
		}
	}
	return PhaseNone
}

// Span is one completed phase interval of one rank.
type Span struct {
	Rank  int
	Phase Phase
	Depth int // nesting depth: 0 = outermost
	Epoch int // adaption epoch the span was flushed in
	T0    float64
	T1    float64
	// OnPath marks spans that overlap their rank's critical-path steps
	// of the epoch they were cut in.  It exists for sampling retention
	// (critical-path spans are never sampled out) and in-memory
	// consumers; it is deliberately not serialized, so the stream's
	// bytes do not depend on whether a span was ring-evicted before the
	// cut computed the path.
	OnPath bool
}

// SpanOptions configures a SpanLog.
type SpanOptions struct {
	// Sink receives the serialized span stream (JSONL).  Nil keeps all
	// spans resident for All(); RingCap is then ignored (eviction needs
	// somewhere to spill).
	Sink io.Writer
	// RingCap bounds the completed spans held resident per rank; 0
	// means unbounded.  When the ring is full the oldest span is
	// serialized into the rank's pending spill buffer immediately.
	RingCap int
	// SampleEvery keeps 1 in SampleEvery off-path spans at each epoch
	// cut (0 or 1 keeps all).  Spans overlapping the epoch's critical
	// path, and spans already ring-evicted, are always kept.
	SampleEvery int
	// Label annotates the stream header (experiment, model, run, P...).
	Label map[string]string
}

// spanRing is a fixed-capacity FIFO of completed spans.
type spanRing struct {
	buf  []Span
	head int
	n    int
}

func (r *spanRing) at(i int) *Span { return &r.buf[(r.head+i)%len(r.buf)] }

// SpanLog collects one world's spans.  All methods must be called while
// the acting rank holds the execution token (straight-line rank code),
// which serializes every mutation in the engine's deterministic order.
type SpanLog struct {
	P    int
	opts SpanOptions

	open [][]Span   // per-rank stack of open spans
	ring []spanRing // per-rank completed spans (RingCap > 0)
	done [][]Span   // per-rank completed spans (unbounded mode)
	cut  []int      // per-rank count of done spans already stamped/flushed
	pend []bytes.Buffer

	epoch        int
	peakResident int   // max completed+open spans resident on any rank
	written      int64 // spans serialized to the sink
	sampledOut   int64
	evicted      int64
	sampleCnt    []int64 // per-rank off-path sampling counters
	closed       bool
	err          error
}

// NewSpanLog creates a span log for a P-rank world and writes the
// stream header.
func NewSpanLog(p int, opts SpanOptions) *SpanLog {
	if opts.Sink == nil {
		opts.RingCap = 0
	}
	s := &SpanLog{
		P:         p,
		opts:      opts,
		open:      make([][]Span, p),
		pend:      make([]bytes.Buffer, p),
		sampleCnt: make([]int64, p),
	}
	if opts.RingCap > 0 {
		s.ring = make([]spanRing, p)
		for i := range s.ring {
			s.ring[i].buf = make([]Span, opts.RingCap)
		}
	} else {
		s.done = make([][]Span, p)
		s.cut = make([]int, p)
	}
	s.writeLine(spanHdr{
		K: "hdr", Schema: SpanSchemaVersion, P: p,
		Ring: opts.RingCap, Sample: opts.SampleEvery, Label: opts.Label,
	})
	return s
}

// Begin opens a span of the given phase on rank at simulated time t.
func (s *SpanLog) Begin(rank int, ph Phase, t float64) {
	st := s.open[rank]
	s.open[rank] = append(st, Span{Rank: rank, Phase: ph, Depth: len(st), T0: t})
}

// End closes rank's innermost open span at simulated time t and files
// it as completed.
func (s *SpanLog) End(rank int, t float64) {
	st := s.open[rank]
	if len(st) == 0 {
		panic("event: SpanLog.End without matching Begin")
	}
	sp := st[len(st)-1]
	s.open[rank] = st[:len(st)-1]
	sp.T1 = t
	if s.ring != nil {
		r := &s.ring[rank]
		if r.n == len(r.buf) {
			// Ring full: spill the oldest span's bytes now.  Its position
			// in the stream is unchanged (pend is flushed before the ring
			// at each cut), so the bound costs memory order, not byte
			// determinism.
			s.spill(rank, r.at(0))
			r.head = (r.head + 1) % len(r.buf)
			r.n--
			s.evicted++
		}
		*r.at(r.n) = sp
		r.n++
		if res := r.n + len(s.open[rank]); res > s.peakResident {
			s.peakResident = res
		}
	} else {
		s.done[rank] = append(s.done[rank], sp)
		if res := len(s.done[rank]) + len(s.open[rank]); res > s.peakResident {
			s.peakResident = res
		}
	}
}

// spill serializes one span into rank's pending buffer (stamped with
// the current epoch, exactly as the cut would stamp it).
func (s *SpanLog) spill(rank int, sp *Span) {
	s.written++
	line, err := json.Marshal(spanLine{
		K: "span", E: s.epoch, R: sp.Rank, Ph: sp.Phase.String(),
		D: sp.Depth, T0: sp.T0, T1: sp.T1,
	})
	if err != nil {
		s.fail(err)
		return
	}
	s.pend[rank].Write(line)
	s.pend[rank].WriteByte('\n')
}

// CutEpoch ends the current epoch: every completed span is stamped
// with the epoch, marked on-path if it overlaps its rank's
// critical-path steps, sampled (off-path spans only), and flushed to
// the sink in canonical rank-major order, followed by the epoch's
// blame summary.  cp and blame should come from the same trace window;
// either may be zero/nil (plain flush).
func (s *SpanLog) CutEpoch(cp *Path, blame *BlameReport) {
	// Per-rank on-path intervals of this epoch's steps.
	var onPath [][]Record
	if cp != nil {
		onPath = make([][]Record, s.P)
		for _, st := range cp.Steps {
			if st.Rank >= 0 && st.Rank < s.P {
				onPath[st.Rank] = append(onPath[st.Rank], st)
			}
		}
	}
	for rank := 0; rank < s.P; rank++ {
		if s.opts.Sink != nil && s.pend[rank].Len() > 0 {
			if _, err := s.opts.Sink.Write(s.pend[rank].Bytes()); err != nil {
				s.fail(err)
			}
			s.pend[rank].Reset()
		}
		flush := func(sp *Span) {
			sp.Epoch = s.epoch
			sp.OnPath = overlapsPath(onPath, sp)
			if !sp.OnPath && s.opts.SampleEvery > 1 {
				s.sampleCnt[rank]++
				if s.sampleCnt[rank]%int64(s.opts.SampleEvery) != 0 {
					s.sampledOut++
					return
				}
			}
			s.writeSpan(sp)
		}
		if s.ring != nil {
			r := &s.ring[rank]
			for i := 0; i < r.n; i++ {
				flush(r.at(i))
			}
			r.head, r.n = 0, 0
		} else {
			for i := s.cut[rank]; i < len(s.done[rank]); i++ {
				flush(&s.done[rank][i])
			}
			if s.opts.Sink != nil {
				s.done[rank] = s.done[rank][:0]
			}
			s.cut[rank] = len(s.done[rank])
		}
	}
	if blame != nil {
		eb := blame.Summary(s.epoch, blameTopK)
		s.writeLine(&eb)
	}
	s.epoch++
}

func overlapsPath(onPath [][]Record, sp *Span) bool {
	if onPath == nil {
		return false
	}
	for _, st := range onPath[sp.Rank] {
		if st.T0 < sp.T1 && sp.T0 < st.T1 {
			return true
		}
	}
	return false
}

func (s *SpanLog) writeSpan(sp *Span) {
	s.written++
	s.writeLine(spanLine{
		K: "span", E: sp.Epoch, R: sp.Rank, Ph: sp.Phase.String(),
		D: sp.Depth, T0: sp.T0, T1: sp.T1,
	})
}

// Close flushes any spans completed after the last epoch cut and
// writes the stream trailer.  The trailer deliberately carries only
// stream-shape fields that are invariant under the ring bound
// (epochs, spans written, spans sampled out); resident-memory facts
// (PeakResident, Evicted) stay on the accessors.
func (s *SpanLog) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.CutEpoch(nil, nil)
	s.epoch-- // the final flush is a trailer, not a new epoch
	s.writeLine(spanEnd{
		K: "end", Epochs: s.epoch, Spans: s.written, SampledOut: s.sampledOut,
	})
	return s.err
}

// All returns the resident completed spans in canonical rank-major
// order.  With a nil sink (the in-memory mode plumviz -trace uses)
// this is every span of the run; with a sink it is only the spans not
// yet flushed.
func (s *SpanLog) All() []Span {
	var out []Span
	for rank := 0; rank < s.P; rank++ {
		if s.ring != nil {
			r := &s.ring[rank]
			for i := 0; i < r.n; i++ {
				out = append(out, *r.at(i))
			}
		} else {
			out = append(out, s.done[rank]...)
		}
	}
	return out
}

// PeakResident returns the maximum number of spans (completed + open)
// any single rank held resident at once — the quantity RingCap bounds.
func (s *SpanLog) PeakResident() int { return s.peakResident }

// Written returns the number of spans serialized to the sink.
func (s *SpanLog) Written() int64 { return s.written }

// SampledOut returns the number of off-path spans dropped by sampling.
func (s *SpanLog) SampledOut() int64 { return s.sampledOut }

// Evicted returns the number of spans spilled early by the ring bound.
func (s *SpanLog) Evicted() int64 { return s.evicted }

// Epochs returns the number of epoch cuts so far.
func (s *SpanLog) Epochs() int { return s.epoch }

// Err returns the first sink write error, if any.
func (s *SpanLog) Err() error { return s.err }

func (s *SpanLog) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *SpanLog) writeLine(v any) {
	if s.opts.Sink == nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		s.fail(err)
		return
	}
	if _, err := s.opts.Sink.Write(append(line, '\n')); err != nil {
		s.fail(err)
	}
}

// blameTopK bounds the per-epoch blame summary serialized into span
// files and ledgers: top-k lag culprits and top-k contended edges,
// with the remainder folded into LagOther.  Keeps the stream O(1) per
// epoch at P=4096.
const blameTopK = 16

// SpanSchemaVersion is the span-stream JSONL schema this package
// writes.  Readers accept [MinSpanSchemaVersion, SpanSchemaVersion] and
// reject anything else loudly, naming both the file's version and the
// supported range.
const (
	SpanSchemaVersion    = 2
	MinSpanSchemaVersion = 1
)

// The JSONL span-stream schema.  One stream per world; a file may
// concatenate several streams (hdr ... end, hdr ... end).
type spanHdr struct {
	K      string            `json:"k"`
	Schema int               `json:"schema"`
	P      int               `json:"p"`
	Ring   int               `json:"ring"`
	Sample int               `json:"sample"`
	Label  map[string]string `json:"label,omitempty"`
}

type spanLine struct {
	K  string  `json:"k"`
	E  int     `json:"e"`
	R  int     `json:"r"`
	Ph string  `json:"ph"`
	D  int     `json:"d"`
	T0 float64 `json:"t0"`
	T1 float64 `json:"t1"`
}

type spanEnd struct {
	K          string `json:"k"`
	Epochs     int    `json:"epochs"`
	Spans      int64  `json:"spans"`
	SampledOut int64  `json:"sampled_out"`
}

// EpochBlame is the per-epoch blame summary as serialized in a span
// stream (and, trimmed further, in the obs ledger): the by-culprit
// decomposition of the epoch's critical-path wait time.
type EpochBlame struct {
	K              string      `json:"k"` // "blame"
	Epoch          int         `json:"e"`
	Wait           float64     `json:"wait"`
	SenderCompute  float64     `json:"sender_compute"`
	SenderOverhead float64     `json:"sender_overhead"`
	Contention     float64     `json:"contention"`
	Wire           float64     `json:"wire"`
	Idle           float64     `json:"idle"`
	Lag            []LagEntry  `json:"lag,omitempty"`
	LagOther       float64     `json:"lag_other,omitempty"`
	Edges          []EdgeBlame `json:"edges,omitempty"`
}

// SpanWorld is one parsed world stream of a span file.
type SpanWorld struct {
	P          int
	Ring       int
	Sample     int
	Label      map[string]string
	Spans      []Span
	Blame      []EpochBlame
	Epochs     int
	Written    int64
	SampledOut int64
	// Complete reports whether the stream's end trailer was present —
	// false means the producing run was killed mid-stream (or is still
	// running) and the counts above reflect only what was parsed.
	Complete bool
}

// ReadSpans parses a span file: a concatenation of one or more world
// streams.  It is deliberately tolerant of truncation — a stream cut
// off mid-line or before its end trailer parses as Complete=false with
// everything up to the cut intact — because live /spans scrapes read
// the file while plumbench is still appending to it.  Structural
// errors (a span line outside any stream, an unknown schema) fail.
func ReadSpans(r io.Reader) ([]SpanWorld, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var worlds []SpanWorld
	var cur *SpanWorld
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			// A torn tail line is truncation, not corruption — but only
			// if nothing follows it.
			if tail := scannerHasMore(sc); tail {
				return nil, fmt.Errorf("event: span file line %d: %v", line, err)
			}
			return worlds, nil
		}
		switch probe.K {
		case "hdr":
			var h spanHdr
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("event: span file line %d: %v", line, err)
			}
			if h.Schema < MinSpanSchemaVersion || h.Schema > SpanSchemaVersion {
				return nil, fmt.Errorf("event: span file line %d: stream schema v%d unsupported"+
					" by this reader (supports v%d..v%d) — regenerate the stream or upgrade the tool",
					line, h.Schema, MinSpanSchemaVersion, SpanSchemaVersion)
			}
			worlds = append(worlds, SpanWorld{
				P: h.P, Ring: h.Ring, Sample: h.Sample, Label: h.Label,
			})
			cur = &worlds[len(worlds)-1]
		case "span":
			if cur == nil {
				return nil, fmt.Errorf("event: span file line %d: span before header", line)
			}
			var sl spanLine
			if err := json.Unmarshal(raw, &sl); err != nil {
				return nil, fmt.Errorf("event: span file line %d: %v", line, err)
			}
			cur.Spans = append(cur.Spans, Span{
				Rank: sl.R, Phase: PhaseFromString(sl.Ph), Depth: sl.D,
				Epoch: sl.E, T0: sl.T0, T1: sl.T1,
			})
		case "blame":
			if cur == nil {
				return nil, fmt.Errorf("event: span file line %d: blame before header", line)
			}
			var eb EpochBlame
			if err := json.Unmarshal(raw, &eb); err != nil {
				return nil, fmt.Errorf("event: span file line %d: %v", line, err)
			}
			cur.Blame = append(cur.Blame, eb)
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("event: span file line %d: end before header", line)
			}
			var e spanEnd
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("event: span file line %d: %v", line, err)
			}
			cur.Epochs, cur.Written, cur.SampledOut = e.Epochs, e.Spans, e.SampledOut
			cur.Complete = true
			cur = nil
		default:
			return nil, fmt.Errorf("event: span file line %d: unknown kind %q", line, probe.K)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(worlds) == 0 {
		return nil, errors.New("event: span file has no streams")
	}
	return worlds, nil
}

// scannerHasMore reports whether the scanner yields another non-blank
// line (consuming it).
func scannerHasMore(sc *bufio.Scanner) bool {
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			return true
		}
	}
	return false
}

// ReadSpansFile reads a span file from disk.
func ReadSpansFile(path string) ([]SpanWorld, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(f)
}
