package event

import "testing"

// TestEngineStatsCounts: the scheduler's host-plane counters reflect
// what the schedule did — yields split into fast-path and handoff,
// blocks pair with wakes, and the calendar high-water stays within one
// entry per live process.
func TestEngineStatsCounts(t *testing.T) {
	const p = 4
	e := NewEngine(p)
	e.Run(func(id int) {
		for i := 0; i < 10; i++ {
			e.Yield(id, float64(i))
		}
	})
	st := e.Stats()
	if st.FastYields+st.HandoffYields != p*10 {
		t.Errorf("yields = %d fast + %d handoff, want %d total",
			st.FastYields, st.HandoffYields, p*10)
	}
	// Interleaved same-time yields force handoffs; the schedule is
	// deterministic, so both classes must be exercised.
	if st.FastYields == 0 || st.HandoffYields == 0 {
		t.Errorf("expected both yield classes, got fast=%d handoff=%d",
			st.FastYields, st.HandoffYields)
	}
	if st.CalendarHighWater < 1 || st.CalendarHighWater > p {
		t.Errorf("calendar high-water = %d, want in [1, %d]", st.CalendarHighWater, p)
	}
	if st.Blocks != 0 || st.Wakes != 0 || st.DeadlockAborts != 0 {
		t.Errorf("unexpected block/wake/abort counts: %+v", st)
	}
}

// TestEngineStatsDeterministic: identical programs produce identical
// counters — the stats are a pure function of the schedule.
func TestEngineStatsDeterministic(t *testing.T) {
	run := func() EngineStats {
		e := NewEngine(3)
		e.Run(func(id int) {
			for i := 0; i < 7; i++ {
				e.Yield(id, float64(i)*0.5)
				if id == 0 {
					e.Wake(1, float64(i)) // no-op unless 1 is blocked
				}
			}
		})
		return e.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("stats diverged across identical runs: %+v vs %+v", a, b)
	}
}

// TestEngineStatsBlockWakeAborts: a blocked process that is never woken
// is aborted and counted; a woken one counts a block and a wake.
func TestEngineStatsBlockWakeAborts(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(id int) {
		if id == 1 {
			e.Yield(id, 1)
			e.Wake(0, 2)
			return
		}
		e.Block(id)
	})
	st := e.Stats()
	if st.Blocks != 1 || st.Wakes != 1 || st.DeadlockAborts != 0 {
		t.Errorf("block/wake run: %+v", st)
	}

	e2 := NewEngine(2)
	func() {
		defer func() { recover() }() // the deadlocked rank re-raises
		e2.Run(func(id int) {
			if id == 0 {
				defer func() { recover() }() // swallow the Deadlock panic
				e2.Block(id)
			}
		})
	}()
	if st2 := e2.Stats(); st2.DeadlockAborts != 1 {
		t.Errorf("deadlock aborts = %d, want 1: %+v", st2.DeadlockAborts, st2)
	}
}
