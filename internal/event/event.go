package event

import (
	"fmt"
	"math"
)

// Deadlock is the panic value delivered inside a process that is still
// blocked when no pending event can ever wake it (every other live
// process is blocked too).  The msg runtime converts it into a
// per-world deadlock report naming the stuck ranks.
type Deadlock struct {
	ID int // the blocked process
}

func (d Deadlock) Error() string {
	return fmt.Sprintf("event: process %d blocked with no event in flight", d.ID)
}

type pstate uint8

const (
	stateReady pstate = iota
	stateRunning
	stateBlocked
	stateDone
)

type proc struct {
	state   pstate
	aborted bool
	grant   chan struct{} // previous token holder -> process: you hold the token
}

// EngineStats counts what the scheduler did on the host plane: how
// often the Yield fast path kept the token versus handing it off, how
// deep the calendar got, and whether any process had to be aborted as
// deadlocked.  The counts are a pure function of the program — the
// schedule is deterministic, so two identical runs report identical
// stats — but they are host-plane data: collecting them never touches a
// simulated clock.  Fields are written only while holding the execution
// token (or by the engine goroutine between handoffs), so no atomics
// are needed; read them after Run returns via Stats.
type EngineStats struct {
	FastYields        int64 // Yields that kept the token with zero goroutine switches
	HandoffYields     int64 // Yields that parked the caller and handed the token off
	Blocks            int64 // Block suspensions (message waits)
	Wakes             int64 // Wake deliveries that made a blocked process runnable
	CalendarHighWater int   // deepest the pending-event queue ever got
	DeadlockAborts    int64 // processes aborted as deadlocked
}

// Engine is a deterministic discrete-event scheduler for a fixed set of
// coroutine-style processes.  Exactly one goroutine — the engine or one
// process — runs at any instant; the execution token is handed over by
// channel operations, so all engine and process state is synchronized
// without locks and the schedule is independent of GOMAXPROCS.
//
// Processes interact with the engine through three primitives, each of
// which may only be called by the process that owns the token:
//
//   - Yield(id, t): reschedule me at simulated time t and run me again
//     when I am globally next.  The msg runtime yields before every
//     shared-link reservation, which is what serializes fat-tree up-link
//     contention in simulated-time order (the deterministic reservation
//     pass).
//   - Block(id): suspend me until another process calls Wake.
//   - Wake(id, t): make a blocked process runnable at time t (message
//     delivery).
//
// Keys processed by the scheduler are nondecreasing in time: a running
// process only inserts keys at or after its own current time, so the
// engine never violates causality.
//
// Scheduling is zero- or one-handoff.  The schedule — which process the
// token visits, keyed (time, id, seq) — is a pure function of the
// program, but the number of goroutine switches used to realize it is
// not part of the contract, and the engine minimizes them:
//
//   - A Yield whose rescheduled key is still the globally smallest
//     pending entry returns immediately: the caller keeps the token and
//     no goroutine switches at all (the fast path; most yields of the
//     reservation pass are uncontended).
//   - Otherwise the process giving up the token pops the next entry and
//     grants the winner directly — one handoff, not a bounce through the
//     engine goroutine.  The engine goroutine only mediates start-up,
//     global deadlock (calendar empty with live blocked processes), and
//     termination.
//
// Both paths pop the same entries in the same order, so traces, clocks,
// and contention resolutions are bitwise identical to the two-handoff
// schedule (asserted by TestEngineFastPathSchedule).  noFastPath forces
// the slow path for that test.
type Engine struct {
	procs []proc
	cal   Calendar
	seq   int64
	live  int           // processes not yet done; token-holder owned
	token chan struct{} // process -> engine: deadlock or termination
	fault any           // first panic escaping a process body
	stats EngineStats

	// noFastPath disables the keep-the-token Yield fast path (testing
	// only: the stress test diffs fast- and slow-path schedules).
	noFastPath bool
}

// NewEngine returns an engine for p processes with ids 0..p-1.
func NewEngine(p int) *Engine {
	if p <= 0 {
		panic("event: engine needs at least one process")
	}
	e := &Engine{procs: make([]proc, p), token: make(chan struct{})}
	for i := range e.procs {
		e.procs[i].grant = make(chan struct{})
	}
	return e
}

func (e *Engine) nextSeq() int64 {
	e.seq++
	return e.seq
}

// Stats returns the scheduler's host-plane counters.  Call it after Run
// returns (the msg runtime flushes them into the obs registry there);
// during a run only the token holder may read them.
func (e *Engine) Stats() EngineStats { return e.stats }

// push inserts a calendar entry and tracks the queue's high-water mark.
func (e *Engine) push(ent Entry) {
	e.cal.Push(ent)
	if n := e.cal.Len(); n > e.stats.CalendarHighWater {
		e.stats.CalendarHighWater = n
	}
}

// handoff passes the execution token to the next scheduled process
// directly, or to the engine goroutine when there is nothing to grant
// (termination, or deadlock resolution).  The caller must hold the
// token and must already have parked its own state.  When the winning
// entry belongs to the calling process itself (self may only have a
// pending entry during Yield), handoff returns true and the caller
// keeps the token — a goroutine cannot rendezvous with its own grant
// channel.
func (e *Engine) handoff(self int) bool {
	if e.live == 0 || e.cal.Len() == 0 {
		e.token <- struct{}{}
		return false
	}
	ent := e.cal.Pop()
	p := &e.procs[ent.ID]
	p.state = stateRunning
	if ent.ID == self {
		return true
	}
	p.grant <- struct{}{}
	return false
}

// Run executes fn(id) for every process and returns when all have
// finished.  Scheduling is by smallest (time, id, seq): all processes
// start ready at time 0.  If fn panics the engine lets the remaining
// processes finish (blocked ones are aborted with a Deadlock panic
// inside their own goroutine) and then re-raises the first panic on the
// caller; callers that recover inside fn — as the msg runtime does —
// never see that path.
func (e *Engine) Run(fn func(id int)) {
	for i := range e.procs {
		e.procs[i].state = stateReady
		e.push(Entry{Time: 0, ID: i, Seq: e.nextSeq()})
	}
	e.live = len(e.procs)
	for i := range e.procs {
		go func(id int) {
			p := &e.procs[id]
			<-p.grant
			defer func() {
				if r := recover(); r != nil && e.fault == nil {
					e.fault = r
				}
				p.state = stateDone
				e.live--
				e.handoff(-1) // a finished process has no pending entry
			}()
			fn(id)
		}(i)
	}
	// The token circulates among the processes; it only returns here
	// when the calendar drains — either every process is done, or the
	// survivors are all blocked (global deadlock) and must be aborted.
	for {
		e.handoff(-1) // the engine is not a process
		<-e.token
		if e.live == 0 {
			break
		}
		for i := range e.procs {
			if e.procs[i].state == stateBlocked {
				e.procs[i].aborted = true
				e.procs[i].state = stateReady
				e.stats.DeadlockAborts++
				e.push(Entry{Time: math.Inf(1), ID: i, Seq: e.nextSeq()})
			}
		}
		if e.cal.Len() == 0 {
			panic("event: live processes but none ready or blocked")
		}
	}
	if e.fault != nil {
		panic(e.fault)
	}
}

// Yield reschedules the calling process at simulated time t and returns
// once it is again the globally smallest pending event.  Yield does not
// change any clock; it only defers execution, which is how operations on
// shared simulated resources get processed in (time, rank, seq) order.
//
// Fast path: the engine holds at most one calendar entry per live
// process, so when the entry just pushed is still the global minimum it
// is necessarily the caller's own — the caller would be granted the
// token right back, and instead keeps it without any goroutine switch.
func (e *Engine) Yield(id int, t float64) {
	p := &e.procs[id]
	e.push(Entry{Time: t, ID: id, Seq: e.nextSeq()})
	if e.cal.Min().ID == id && !e.noFastPath {
		e.cal.Pop()
		e.stats.FastYields++
		return
	}
	e.stats.HandoffYields++
	p.state = stateReady
	if e.handoff(id) {
		return // own entry won anyway: keep the token
	}
	<-p.grant
}

// Block suspends the calling process until another process wakes it.
// It panics with Deadlock when no event can ever arrive.
func (e *Engine) Block(id int) {
	p := &e.procs[id]
	if p.aborted {
		panic(Deadlock{ID: id})
	}
	p.state = stateBlocked
	e.stats.Blocks++
	e.handoff(id) // self has no pending entry while blocked: never true
	<-p.grant
	if p.aborted {
		panic(Deadlock{ID: id})
	}
}

// Wake makes a blocked process runnable again at simulated time t.  It
// must be called by the running process (delivering a message) and is a
// no-op when the target is not blocked — an already-ready process will
// see the delivery when it next runs.
func (e *Engine) Wake(id int, t float64) {
	if p := &e.procs[id]; p.state == stateBlocked {
		p.state = stateReady
		e.stats.Wakes++
		e.push(Entry{Time: t, ID: id, Seq: e.nextSeq()})
	}
}
