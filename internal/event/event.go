package event

import (
	"fmt"
	"math"
)

// Deadlock is the panic value delivered inside a process that is still
// blocked when no pending event can ever wake it (every other live
// process is blocked too).  The msg runtime converts it into a
// per-world deadlock report naming the stuck ranks.
type Deadlock struct {
	ID int // the blocked process
}

func (d Deadlock) Error() string {
	return fmt.Sprintf("event: process %d blocked with no event in flight", d.ID)
}

type pstate uint8

const (
	stateReady pstate = iota
	stateRunning
	stateBlocked
	stateDone
)

type proc struct {
	state   pstate
	aborted bool
	grant   chan struct{} // engine -> process: you hold the token
}

// Engine is a deterministic discrete-event scheduler for a fixed set of
// coroutine-style processes.  Exactly one goroutine — the engine or one
// process — runs at any instant; the execution token is handed over by
// channel operations, so all engine and process state is synchronized
// without locks and the schedule is independent of GOMAXPROCS.
//
// Processes interact with the engine through three primitives, each of
// which may only be called by the process that owns the token:
//
//   - Yield(id, t): reschedule me at simulated time t and run me again
//     when I am globally next.  The msg runtime yields before every
//     shared-link reservation, which is what serializes fat-tree up-link
//     contention in simulated-time order (the deterministic reservation
//     pass).
//   - Block(id): suspend me until another process calls Wake.
//   - Wake(id, t): make a blocked process runnable at time t (message
//     delivery).
//
// Keys processed by the scheduler are nondecreasing in time: a running
// process only inserts keys at or after its own current time, so the
// engine never violates causality.
type Engine struct {
	procs []proc
	cal   Calendar
	seq   int64
	token chan struct{} // process -> engine: token returned
	fault any           // first panic escaping a process body
}

// NewEngine returns an engine for p processes with ids 0..p-1.
func NewEngine(p int) *Engine {
	if p <= 0 {
		panic("event: engine needs at least one process")
	}
	e := &Engine{procs: make([]proc, p), token: make(chan struct{})}
	for i := range e.procs {
		e.procs[i].grant = make(chan struct{})
	}
	return e
}

func (e *Engine) nextSeq() int64 {
	e.seq++
	return e.seq
}

// Run executes fn(id) for every process and returns when all have
// finished.  Scheduling is by smallest (time, id, seq): all processes
// start ready at time 0.  If fn panics the engine lets the remaining
// processes finish (blocked ones are aborted with a Deadlock panic
// inside their own goroutine) and then re-raises the first panic on the
// caller; callers that recover inside fn — as the msg runtime does —
// never see that path.
func (e *Engine) Run(fn func(id int)) {
	for i := range e.procs {
		e.procs[i].state = stateReady
		e.cal.Push(Entry{Time: 0, ID: i, Seq: e.nextSeq()})
	}
	for i := range e.procs {
		go func(id int) {
			p := &e.procs[id]
			<-p.grant
			defer func() {
				if r := recover(); r != nil && e.fault == nil {
					e.fault = r
				}
				p.state = stateDone
				e.token <- struct{}{}
			}()
			fn(id)
		}(i)
	}
	live := len(e.procs)
	for live > 0 {
		if e.cal.Len() == 0 {
			// Every live process is blocked: global deadlock.  Abort them
			// so each unwinds (Block panics Deadlock in the process body)
			// instead of leaking parked goroutines.
			for i := range e.procs {
				if e.procs[i].state == stateBlocked {
					e.procs[i].aborted = true
					e.procs[i].state = stateReady
					e.cal.Push(Entry{Time: math.Inf(1), ID: i, Seq: e.nextSeq()})
				}
			}
			if e.cal.Len() == 0 {
				panic("event: live processes but none ready or blocked")
			}
			continue
		}
		ent := e.cal.Pop()
		p := &e.procs[ent.ID]
		p.state = stateRunning
		p.grant <- struct{}{}
		<-e.token
		if p.state == stateDone {
			live--
		}
	}
	if e.fault != nil {
		panic(e.fault)
	}
}

// Yield reschedules the calling process at simulated time t and returns
// once it is again the globally smallest pending event.  Yield does not
// change any clock; it only defers execution, which is how operations on
// shared simulated resources get processed in (time, rank, seq) order.
func (e *Engine) Yield(id int, t float64) {
	p := &e.procs[id]
	p.state = stateReady
	e.cal.Push(Entry{Time: t, ID: id, Seq: e.nextSeq()})
	e.token <- struct{}{}
	<-p.grant
	p.state = stateRunning
}

// Block suspends the calling process until another process wakes it.
// It panics with Deadlock when no event can ever arrive.
func (e *Engine) Block(id int) {
	p := &e.procs[id]
	if p.aborted {
		panic(Deadlock{ID: id})
	}
	p.state = stateBlocked
	e.token <- struct{}{}
	<-p.grant
	p.state = stateRunning
	if p.aborted {
		panic(Deadlock{ID: id})
	}
}

// Wake makes a blocked process runnable again at simulated time t.  It
// must be called by the running process (delivering a message) and is a
// no-op when the target is not blocked — an already-ready process will
// see the delivery when it next runs.
func (e *Engine) Wake(id int, t float64) {
	if p := &e.procs[id]; p.state == stateBlocked {
		p.state = stateReady
		e.cal.Push(Entry{Time: t, ID: id, Seq: e.nextSeq()})
	}
}
