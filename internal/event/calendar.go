package event

// Entry is one scheduled wake-up in the engine's pending-event set.
// The triple (Time, ID, Seq) totally orders events: simulated time
// first, then process id, then insertion sequence — so simultaneous
// events resolve to the lower rank and re-insertions stay FIFO.
type Entry struct {
	Time float64 // simulated seconds
	ID   int     // process (rank) the entry resumes
	Seq  int64   // insertion sequence, engine-global
}

// Before reports whether a orders strictly before b under the engine's
// total order.
func (a Entry) Before(b Entry) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Seq < b.Seq
}

// Calendar is the engine's pending-event queue ("calendar" in the
// discrete-event-simulation sense).  The engine holds at most one entry
// per live process, so the population is bounded by the world size and
// a binary heap — O(log P) push/pop with no bucket tuning — beats a
// bucketed calendar queue; the type keeps the classical name and an
// interface a bucketed implementation could slot into.  The zero value
// is an empty queue.
type Calendar struct {
	h []Entry
}

// Len returns the number of pending entries.
func (c *Calendar) Len() int { return len(c.h) }

// Push inserts an entry.
func (c *Calendar) Push(e Entry) {
	c.h = append(c.h, e)
	i := len(c.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.h[i].Before(c.h[parent]) {
			break
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

// Pop removes and returns the smallest entry.  It panics on an empty
// calendar.
func (c *Calendar) Pop() Entry {
	if len(c.h) == 0 {
		panic("event: pop from empty calendar")
	}
	top := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(c.h) && c.h[l].Before(c.h[smallest]) {
			smallest = l
		}
		if r < len(c.h) && c.h[r].Before(c.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		c.h[i], c.h[smallest] = c.h[smallest], c.h[i]
		i = smallest
	}
}

// Min returns the smallest entry without removing it.  It panics on an
// empty calendar.
func (c *Calendar) Min() Entry {
	if len(c.h) == 0 {
		panic("event: min of empty calendar")
	}
	return c.h[0]
}
