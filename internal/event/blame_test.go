package event

import (
	"math"
	"testing"
)

// The hand-built traces below exercise each attribution rule with
// numbers chosen so every expected split is exact in float64.

// pathRecvWait computes the receiver-perspective wait of a critical
// path — the quantity WaitBlame must partition exactly: for each
// on-path waiting receive the interval [T0, Arrival], plus each
// on-path same-rank idle gap.
func pathRecvWait(cp *Path) float64 {
	var w float64
	for i, st := range cp.Steps {
		if st.Kind == KindRecv && st.Arrival > st.T0 {
			w += st.Arrival - st.T0
		} else if i > 0 && cp.Steps[i-1].Rank == st.Rank {
			if gap := st.T0 - cp.Steps[i-1].T1; gap > 0 {
				w += gap
			}
		}
	}
	return w
}

func checkConservation(t *testing.T, tr *Trace, b *BlameReport, cp *Path) {
	t.Helper()
	want := pathRecvWait(cp)
	if diff := math.Abs(b.Wait - want); diff > 1e-12*(1+want) {
		t.Errorf("blame total %.17g != path recv-wait %.17g (diff %g)", b.Wait, want, diff)
	}
	var sum float64
	for _, v := range b.ByKind {
		sum += v
	}
	if diff := math.Abs(sum - b.Wait); diff > 1e-12*(1+b.Wait) {
		t.Errorf("by-kind sum %.17g != blame total %.17g", sum, b.Wait)
	}
	var lagSum float64
	for _, row := range b.Lag {
		for _, v := range row {
			lagSum += v
		}
	}
	kinds := b.ByKind[BlameSenderCompute] + b.ByKind[BlameSenderOverhead]
	if diff := math.Abs(lagSum - kinds); diff > 1e-12*(1+kinds) {
		t.Errorf("lag table sum %.17g != sender compute+overhead %.17g", lagSum, kinds)
	}
}

// TestBlameSenderComputeLag: the producer was computing for most of the
// receiver's wait; the split is compute lag + injection overhead + wire.
func TestBlameSenderComputeLag(t *testing.T) {
	tr := &Trace{P: 2, Records: []Record{
		{Rank: 1, Kind: KindCompute, T0: 0, T1: 5, Peer: -1, Phase: PhaseSolve},
		{Rank: 1, Kind: KindSend, T0: 5, T1: 6, Peer: 0, MsgID: 1, Depart: 6},
		{Rank: 0, Kind: KindRecv, T0: 0, T1: 7.5, Peer: 1, MsgID: 1, Arrival: 7},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	if b.Wait != 7 {
		t.Fatalf("Wait = %g, want 7", b.Wait)
	}
	want := [NumBlameKinds]float64{5, 1, 0, 1, 0}
	if b.ByKind != want {
		t.Errorf("ByKind = %v, want %v", b.ByKind, want)
	}
	if b.Lag[1][PhaseSolve] != 5 {
		t.Errorf("Lag[1][solve] = %g, want 5", b.Lag[1][PhaseSolve])
	}
	if len(b.Edges) != 1 || b.Edges[0] != (EdgeBlame{Src: 1, Dst: 0, Queue: 0, Wire: 1, Count: 1}) {
		t.Errorf("Edges = %+v", b.Edges)
	}
}

// TestBlameContention: the message sat two seconds in a shared-link
// queue after the sender finished (Depart > T1).
func TestBlameContention(t *testing.T) {
	tr := &Trace{P: 2, Records: []Record{
		{Rank: 1, Kind: KindCompute, T0: 0, T1: 3, Peer: -1, Phase: PhaseHalo},
		{Rank: 1, Kind: KindSend, T0: 3, T1: 4, Peer: 0, MsgID: 1, Depart: 6},
		{Rank: 0, Kind: KindRecv, T0: 2, T1: 7.5, Peer: 1, MsgID: 1, Arrival: 7},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	if b.Wait != 5 {
		t.Fatalf("Wait = %g, want 5", b.Wait)
	}
	// [2,3] sender compute, [3,4] injection, [4,6] queue, [6,7] wire.
	want := [NumBlameKinds]float64{1, 1, 2, 1, 0}
	if b.ByKind != want {
		t.Errorf("ByKind = %v, want %v", b.ByKind, want)
	}
	if len(b.Edges) != 1 || b.Edges[0].Queue != 2 || b.Edges[0].Wire != 1 {
		t.Errorf("Edges = %+v", b.Edges)
	}
}

// TestBlameTransitive: rank 2 waits on rank 1, whose own wait was rank
// 0's fault — the attribution must recurse to the true culprit.
func TestBlameTransitive(t *testing.T) {
	tr := &Trace{P: 3, Records: []Record{
		{Rank: 0, Kind: KindCompute, T0: 0, T1: 4, Peer: -1, Phase: PhaseRefine},
		{Rank: 0, Kind: KindSend, T0: 4, T1: 5, Peer: 1, MsgID: 1, Depart: 5},
		{Rank: 1, Kind: KindRecv, T0: 0, T1: 6.5, Peer: 0, MsgID: 1, Arrival: 6},
		{Rank: 1, Kind: KindSend, T0: 6.5, T1: 7, Peer: 2, MsgID: 2, Depart: 7},
		{Rank: 2, Kind: KindRecv, T0: 0, T1: 8.5, Peer: 1, MsgID: 2, Arrival: 8},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	// recv r1 waits [0,6]: 4 compute(r0) + 1 send(r0) + 1 wire.
	// recv r2 waits [0,8]: transitively 4 compute(r0) + 1 send(r0) +
	// 1 wire + 0.5 copy-out(r1) + 0.5 send(r1) + 1 wire.
	if b.Wait != 14 {
		t.Fatalf("Wait = %g, want 14", b.Wait)
	}
	want := [NumBlameKinds]float64{8, 3, 0, 3, 0}
	if b.ByKind != want {
		t.Errorf("ByKind = %v, want %v", b.ByKind, want)
	}
	if b.Lag[0][PhaseRefine] != 8 {
		t.Errorf("Lag[0][refine] = %g, want 8 (transitive compute lag)", b.Lag[0][PhaseRefine])
	}
}

// TestBlameUntracedProducer: a receive whose message has no send record
// charges the whole wait as idle (and the path walk stays consistent).
func TestBlameUntracedProducer(t *testing.T) {
	tr := &Trace{P: 1, Records: []Record{
		{Rank: 0, Kind: KindRecv, T0: 0, T1: 3, Peer: -1, MsgID: 99, Arrival: 2.5},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	if b.ByKind[BlameIdle] != 2.5 || b.Wait != 2.5 {
		t.Errorf("ByKind = %v, Wait = %g; want all 2.5 idle", b.ByKind, b.Wait)
	}
}

// TestBlameSameRankGap: an idle gap between back-to-back on-path
// operations of one rank is charged as idle.
func TestBlameSameRankGap(t *testing.T) {
	tr := &Trace{P: 1, Records: []Record{
		{Rank: 0, Kind: KindCompute, T0: 0, T1: 1, Peer: -1},
		{Rank: 0, Kind: KindCompute, T0: 3, T1: 4, Peer: -1},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	if b.ByKind[BlameIdle] != 2 || b.Wait != 2 {
		t.Errorf("ByKind = %v, Wait = %g; want 2s idle", b.ByKind, b.Wait)
	}
}

// TestBlameSenderIdleResidue: part of the sender's window is covered by
// no record at all — the uncovered residue must fall to idle, keeping
// the attribution measure-preserving.
func TestBlameSenderIdleResidue(t *testing.T) {
	tr := &Trace{P: 2, Records: []Record{
		{Rank: 1, Kind: KindCompute, T0: 2, T1: 5, Peer: -1, Phase: PhaseMigrate},
		{Rank: 1, Kind: KindSend, T0: 5, T1: 6, Peer: 0, MsgID: 1, Depart: 6},
		{Rank: 0, Kind: KindRecv, T0: 0, T1: 7.5, Peer: 1, MsgID: 1, Arrival: 7},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	checkConservation(t, tr, b, &cp)
	// [0,2] sender idle, [2,5] compute, [5,6] injection, [6,7] wire.
	want := [NumBlameKinds]float64{3, 1, 0, 1, 2}
	if b.ByKind != want {
		t.Errorf("ByKind = %v, want %v", b.ByKind, want)
	}
}

// TestBlameSummaryFoldsOther: the bounded epoch summary folds lag cells
// past top-k into lag_other so the serialized form stays conservative.
func TestBlameSummaryFoldsOther(t *testing.T) {
	tr := &Trace{P: 2, Records: []Record{
		{Rank: 1, Kind: KindCompute, T0: 0, T1: 5, Peer: -1, Phase: PhaseSolve},
		{Rank: 1, Kind: KindSend, T0: 5, T1: 6, Peer: 0, MsgID: 1, Depart: 6},
		{Rank: 0, Kind: KindRecv, T0: 0, T1: 7.5, Peer: 1, MsgID: 1, Arrival: 7},
	}}
	cp := CriticalPath(tr)
	b := WaitBlame(tr, &cp)
	sum := b.Summary(3, 1)
	if sum.Epoch != 3 || sum.Wait != b.Wait {
		t.Fatalf("summary header = %+v", sum)
	}
	if len(sum.Lag) != 1 {
		t.Fatalf("Lag = %+v, want exactly top-1", sum.Lag)
	}
	var inTop float64
	for _, l := range sum.Lag {
		inTop += l.Seconds
	}
	total := sum.SenderCompute + sum.SenderOverhead
	if diff := math.Abs(inTop + sum.LagOther - total); diff > 1e-12 {
		t.Errorf("top lag %g + other %g != sender lag %g", inTop, sum.LagOther, total)
	}
}
