// Package event provides the discrete-event execution core the msg
// runtime schedules simulated ranks on: a deterministic engine that runs
// P coroutine-style processes under a single execution token, a calendar
// queue totally ordered by (time, rank, seq), an event trace recording
// every clock-advancing operation, and a critical-path extractor over
// the trace.
//
// The paper's machine model (Oliker & Biswas, SPAA 1997, Section 4.5)
// converts communication volumes into seconds analytically; the msg
// runtime does it operationally, one simulated clock per rank.  Before
// this package, ranks free-ran as goroutines with private clocks, which
// had two costs: topologies with shared-link contention (the fat tree's
// up-links) reserved links in goroutine-scheduling order, making
// contended timings only approximately reproducible; and there was no
// global event order to trace or to extract a critical path from.  The
// engine fixes both: exactly one process executes at any instant, and
// the scheduler always resumes the runnable process with the smallest
// (time, rank, seq) key, so every shared-resource reservation happens in
// simulated-time order and every run is bitwise reproducible regardless
// of GOMAXPROCS.
//
// Entry points.  NewEngine + Run execute the processes (the msg runtime
// is the only intended caller); Yield / Block / Wake are the three
// process-side primitives; Trace accumulates Records and exports
// Chrome-tracing JSON (WriteChrome); CriticalPath walks a trace back
// from its makespan and decomposes the bounding chain into compute,
// message overhead, and comm wait — the decomposition the
// measured-cost feedback loop (internal/profile) aggregates.
//
// Invariants.  Keys processed by the scheduler are nondecreasing in
// time (a running process only inserts keys at or after its own current
// time), so causality is never violated; ties resolve (rank, seq), so
// the total order — and therefore trace record order — is a pure
// function of the program.  Records of one rank appear in program
// order.  Deadlock (every live process blocked) aborts the blocked
// processes with a Deadlock panic rather than hanging.
//
// Performance.  The schedule fixes which process runs next, not how
// many goroutine switches realize it: an uncontended Yield (its new key
// still globally smallest) keeps the token and switches zero times, and
// a contended one grants the winner directly — one handoff, not a
// bounce through the engine goroutine, which only mediates start-up,
// deadlock, and termination.  Fast and slow paths pop identical entry
// sequences (pinned by TestEngineFastPathSchedule).  Traces append into
// a pre-grown contiguous arena (Trace.Grow); the global append order is
// the engine's total order, which downstream profile windows slice by
// plain indices.  See docs/ARCHITECTURE.md, "Performance".
package event
