package event

// Wait-blame attribution: every second the critical path spends
// waiting is somebody's fault, and the trace knows whose.  WaitBlame
// walks the on-path wait intervals — a receive that posted before its
// message arrived, or an idle gap between back-to-back operations —
// and attributes each one, transitively, to its true culprit:
//
//   - sender compute: the producing rank was still computing when the
//     receiver went idle (an imbalanced partition shows up here, as
//     lag concentrated on particular ranks and phases);
//   - sender overhead: the producer was busy injecting or draining
//     other messages;
//   - contention: the message sat in a shared-link queue (fat-tree
//     up-link reservation delay) after the sender finished;
//   - wire: irreducible latency between departure and arrival;
//   - idle: the producer itself was idle (transitive wait deeper than
//     the recursion bound, an untraced producer, or a same-rank gap).
//
// The invariant — pinned by the conservation tests — is that the
// attributed seconds sum exactly (up to float accumulation) to the
// critical path's receiver-perspective wait time: for each on-path
// waiting receive the interval [T0, Arrival], plus each on-path
// same-rank gap.  Attribution is measure-preserving: each wait second
// is charged to exactly one culprit, because sender windows partition
// into record-covered pieces plus idle residue, and the sender-lag /
// queue / wire split of a wait interval is computed by residual.

import (
	"math"
	"sort"
)

// BlameKind classifies where a waited second really went.
type BlameKind uint8

// The blame buckets, in serialization order.
const (
	BlameSenderCompute BlameKind = iota
	BlameSenderOverhead
	BlameContention
	BlameWire
	BlameIdle
	NumBlameKinds
)

var blameNames = [NumBlameKinds]string{
	"sender-compute", "sender-overhead", "contention", "wire", "idle",
}

func (k BlameKind) String() string {
	if k < NumBlameKinds {
		return blameNames[k]
	}
	return "blame(?)"
}

// EdgeBlame aggregates the post-send delay charged to one directed
// rank pair: queueing on shared links plus wire latency.
type EdgeBlame struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Queue float64 `json:"queue"`
	Wire  float64 `json:"wire"`
	Count int     `json:"n"`
}

// LagEntry is one cell of the sender-lag league table: seconds of
// critical-path wait attributed to (rank, phase) compute or overhead.
type LagEntry struct {
	Rank    int     `json:"r"`
	Phase   string  `json:"ph"`
	Seconds float64 `json:"s"`
}

// BlameReport is the attribution of a trace window's critical-path
// wait time.
type BlameReport struct {
	P int
	// Wait is the total attributed time: the sum over on-path waiting
	// receives of (Arrival - T0) plus on-path same-rank gaps.  Note
	// this is the receiver-perspective wait, not Path.CommWait (which
	// measures the sender-edge span send.T1 -> Arrival); the receiver
	// perspective is what makes "the sender was still computing"
	// attributable.
	Wait   float64
	ByKind [NumBlameKinds]float64
	// Lag[rank][phase] is the sender-lag time (compute + overhead)
	// attributed to that rank while it was in that phase.
	Lag   [][]float64
	Edges []EdgeBlame // sorted by total delay, descending
}

// maxBlameDepth bounds transitive attribution (a waits on b waits on
// c waits on ...).  The walk always moves to strictly earlier trace
// intervals so it terminates regardless; the bound just caps cost, and
// anything deeper is charged as idle.
const maxBlameDepth = 256

// WaitBlame attributes the critical path's wait intervals.  cp must
// come from CriticalPath(t) on the same trace (or trace window).
func WaitBlame(t *Trace, cp *Path) *BlameReport {
	rep := &BlameReport{P: t.P, Lag: make([][]float64, t.P)}
	for i := range rep.Lag {
		rep.Lag[i] = make([]float64, NumPhases)
	}
	if len(cp.Steps) == 0 {
		return rep
	}
	bl := &blamer{
		t:       t,
		perRank: make([][]int, t.P),
		sendIdx: make(map[int64]int),
		edges:   make(map[[2]int]*EdgeBlame),
		rep:     rep,
	}
	for i, r := range t.Records {
		bl.perRank[r.Rank] = append(bl.perRank[r.Rank], i)
		if r.Kind == KindSend && r.MsgID != 0 {
			bl.sendIdx[r.MsgID] = i
		}
	}
	// The forward mirror of CriticalPath's backward walk: a step that
	// is a waiting receive contributes its wait interval; any other
	// step contributes the gap to its same-rank predecessor.
	for i, st := range cp.Steps {
		if st.Kind == KindRecv && st.Arrival > st.T0 {
			bl.recvWait(st.Rank, st.T0, st.Arrival, st.MsgID, 0)
		} else if i > 0 && cp.Steps[i-1].Rank == st.Rank {
			if gap := st.T0 - cp.Steps[i-1].T1; gap > 0 {
				bl.acc(BlameIdle, gap)
			}
		}
	}
	rep.Edges = make([]EdgeBlame, 0, len(bl.edges))
	for _, e := range bl.edges {
		rep.Edges = append(rep.Edges, *e)
	}
	sort.Slice(rep.Edges, func(i, j int) bool {
		a, b := &rep.Edges[i], &rep.Edges[j]
		if ta, tb := a.Queue+a.Wire, b.Queue+b.Wire; ta != tb {
			return ta > tb
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return rep
}

type blamer struct {
	t       *Trace
	perRank [][]int
	sendIdx map[int64]int
	edges   map[[2]int]*EdgeBlame
	rep     *BlameReport
}

func (bl *blamer) acc(k BlameKind, sec float64) {
	bl.rep.Wait += sec
	bl.rep.ByKind[k] += sec
}

// lag charges sender-side busy time to (kind, rank, phase).
func (bl *blamer) lag(k BlameKind, rank int, ph Phase, sec float64) {
	bl.acc(k, sec)
	bl.rep.Lag[rank][ph] += sec
}

// recvWait attributes the sub-window [lo, hi] of a wait interval on
// dst for the message msgID.  The window partitions by residual into
// sender lag (before the send completed), link queueing (send.T1 to
// the post-contention departure), and wire time.
func (bl *blamer) recvWait(dst int, lo, hi float64, msgID int64, depth int) {
	if hi <= lo {
		return
	}
	si, ok := bl.sendIdx[msgID]
	if !ok || depth > maxBlameDepth {
		bl.acc(BlameIdle, hi-lo)
		return
	}
	send := &bl.t.Records[si]
	var lag float64
	if lagHi := math.Min(send.T1, hi); lagHi > lo {
		lag = lagHi - lo
		bl.window(send.Rank, lo, lagHi, depth+1)
	}
	var queue float64
	if qLo, qHi := math.Max(lo, send.T1), math.Min(hi, send.Depart); qHi > qLo {
		queue = qHi - qLo
		bl.acc(BlameContention, queue)
	}
	wire := (hi - lo) - lag - queue
	if wire > 0 {
		bl.acc(BlameWire, wire)
	} else {
		wire = 0
	}
	if queue > 0 || wire > 0 {
		key := [2]int{send.Rank, dst}
		e := bl.edges[key]
		if e == nil {
			e = &EdgeBlame{Src: send.Rank, Dst: dst}
			bl.edges[key] = e
		}
		e.Queue += queue
		e.Wire += wire
		e.Count++
	}
}

// window attributes [a, b] of rank's timeline: each record-covered
// piece by the record's kind (recursing through the rank's own waits),
// uncovered residue as idle.
func (bl *blamer) window(rank int, a, b float64, depth int) {
	if b <= a {
		return
	}
	if depth > maxBlameDepth {
		bl.acc(BlameIdle, b-a)
		return
	}
	idx := bl.perRank[rank]
	// Records of a rank are disjoint and time-sorted; find the first
	// one ending inside the window.
	k := sort.Search(len(idx), func(i int) bool {
		return bl.t.Records[idx[i]].T1 > a
	})
	covered := a
	for ; k < len(idx) && covered < b; k++ {
		r := &bl.t.Records[idx[k]]
		if r.T0 >= b {
			break
		}
		lo := math.Max(covered, r.T0)
		hi := math.Min(b, r.T1)
		if lo > covered {
			bl.acc(BlameIdle, lo-covered)
			covered = lo
		}
		if hi <= lo {
			continue
		}
		switch {
		case r.Kind == KindCompute:
			bl.lag(BlameSenderCompute, rank, r.Phase, hi-lo)
		case r.Kind == KindRecv && r.Arrival > r.T0:
			// The sender was itself waiting: recurse into the producer
			// of its message for the pre-arrival part, charge the
			// post-arrival copy-out as overhead.
			if wHi := math.Min(hi, r.Arrival); wHi > lo {
				bl.recvWait(rank, lo, wHi, r.MsgID, depth+1)
			}
			if oLo := math.Max(lo, r.Arrival); hi > oLo {
				bl.lag(BlameSenderOverhead, rank, r.Phase, hi-oLo)
			}
		default:
			bl.lag(BlameSenderOverhead, rank, r.Phase, hi-lo)
		}
		covered = hi
	}
	if covered < b {
		bl.acc(BlameIdle, b-covered)
	}
}

// TopLag returns the k largest (rank, phase) sender-lag cells,
// descending, ties broken by rank then phase.
func (b *BlameReport) TopLag(k int) []LagEntry {
	var all []LagEntry
	for rank, row := range b.Lag {
		for ph, sec := range row {
			if sec > 0 {
				all = append(all, LagEntry{Rank: rank, Phase: Phase(ph).String(), Seconds: sec})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Seconds != all[j].Seconds {
			return all[i].Seconds > all[j].Seconds
		}
		if all[i].Rank != all[j].Rank {
			return all[i].Rank < all[j].Rank
		}
		return all[i].Phase < all[j].Phase
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TopEdges returns the k most-delaying causality edges.
func (b *BlameReport) TopEdges(k int) []EdgeBlame {
	if len(b.Edges) <= k {
		return b.Edges
	}
	return b.Edges[:k]
}

// Summary trims the report to the bounded per-epoch form serialized
// into span streams and ledgers.
func (b *BlameReport) Summary(epoch, topK int) EpochBlame {
	eb := EpochBlame{
		K:              "blame",
		Epoch:          epoch,
		Wait:           b.Wait,
		SenderCompute:  b.ByKind[BlameSenderCompute],
		SenderOverhead: b.ByKind[BlameSenderOverhead],
		Contention:     b.ByKind[BlameContention],
		Wire:           b.ByKind[BlameWire],
		Idle:           b.ByKind[BlameIdle],
		Lag:            b.TopLag(topK),
		Edges:          b.TopEdges(topK),
	}
	var inTop float64
	for _, l := range eb.Lag {
		inTop += l.Seconds
	}
	eb.LagOther = (eb.SenderCompute + eb.SenderOverhead) - inTop
	if eb.LagOther < 1e-15 {
		eb.LagOther = 0
	}
	return eb
}
