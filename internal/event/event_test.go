package event

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// TestCalendarOrdering: pops come out in (time, id, seq) order whatever
// the push order.
func TestCalendarOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var entries []Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{
			Time: float64(rng.Intn(20)),
			ID:   rng.Intn(8),
			Seq:  int64(i),
		})
	}
	var c Calendar
	for _, e := range entries {
		c.Push(e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Before(entries[j]) })
	for i, want := range entries {
		if c.Len() == 0 {
			t.Fatalf("calendar empty after %d pops, want %d", i, len(entries))
		}
		got := c.Pop()
		if got != want {
			t.Fatalf("pop %d = %+v, want %+v", i, got, want)
		}
	}
}

// TestEngineRunsAllProcesses: every process body executes exactly once.
func TestEngineRunsAllProcesses(t *testing.T) {
	const p = 7
	ran := make([]int, p)
	NewEngine(p).Run(func(id int) { ran[id]++ })
	for id, n := range ran {
		if n != 1 {
			t.Errorf("process %d ran %d times", id, n)
		}
	}
}

// TestEngineYieldOrder: processes yielding at distinct times resume in
// time order; equal times resolve to the lower id.  The interleaving is
// recorded from the process bodies themselves — safe because only one
// runs at a time.
func TestEngineYieldOrder(t *testing.T) {
	const p = 4
	e := NewEngine(p)
	var order []int
	e.Run(func(id int) {
		// First visit at t=0 in id order, then resume at reversed times.
		e.Yield(id, float64(p-id))
		order = append(order, id)
	})
	want := []int{3, 2, 1, 0}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("resume order %v, want %v", order, want)
		}
	}
}

// TestEngineBlockWake: a blocked process resumes when the running
// process wakes it, and the wake time keys its position in the schedule.
func TestEngineBlockWake(t *testing.T) {
	e := NewEngine(2)
	var got []string
	e.Run(func(id int) {
		if id == 0 {
			e.Block(0)
			got = append(got, "woken")
		} else {
			e.Yield(1, 5)
			got = append(got, "waker")
			e.Wake(0, 6)
		}
	})
	if len(got) != 2 || got[0] != "waker" || got[1] != "woken" {
		t.Fatalf("sequence %v, want [waker woken]", got)
	}
}

// TestEngineDeadlockAborts: blocked processes with no event in flight
// receive a Deadlock panic instead of hanging.
func TestEngineDeadlockAborts(t *testing.T) {
	e := NewEngine(2)
	aborted := make([]bool, 2)
	e.Run(func(id int) {
		defer func() {
			if d, ok := recover().(Deadlock); ok {
				aborted[id] = d.ID == id
			}
		}()
		e.Block(id)
	})
	if !aborted[0] || !aborted[1] {
		t.Fatalf("deadlocked processes not aborted: %v", aborted)
	}
}

// TestEnginePanicPropagates: a panic escaping a process body reaches the
// Run caller after the remaining processes finish.
func TestEnginePanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected process panic to propagate")
		}
	}()
	NewEngine(3).Run(func(id int) {
		if id == 1 {
			panic("boom")
		}
	})
}

// TestEngineDeterministicAcrossGOMAXPROCS: the schedule is a pure
// function of the program, not of the host's parallelism.
func TestEngineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() []int {
		var order []int
		e := NewEngine(6)
		e.Run(func(id int) {
			for i := 0; i < 50; i++ {
				e.Yield(id, float64((id*7+i*3)%11))
				order = append(order, id)
			}
		})
		return order
	}
	old := runtime.GOMAXPROCS(1)
	a := run()
	runtime.GOMAXPROCS(8)
	b := run()
	runtime.GOMAXPROCS(old)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// stressSchedule runs a 16-process program mixing Yield, Block, Wake,
// and early completion, recording every scheduling slot as (id, t) from
// inside the process bodies (safe: one process runs at a time).  Even
// processes block mid-run and are woken by their odd partners; two
// processes finish early so the engine also schedules across a shrinking
// live set.  With noFast the engine's keep-the-token Yield fast path is
// disabled, so comparing the two recordings asserts the fast path
// realizes the identical (time, rank, seq) schedule the slow path pops.
func stressSchedule(t *testing.T, noFast bool) ([]int, []float64) {
	t.Helper()
	const p = 16
	const steps = 60
	e := NewEngine(p)
	e.noFastPath = noFast
	var ids []int
	var times []float64
	blocked := make([]bool, p)
	e.Run(func(id int) {
		clock := float64(id) * 0.25
		note := func() {
			ids = append(ids, id)
			times = append(times, clock)
		}
		note()
		for k := 0; k < steps; k++ {
			switch {
			case id%2 == 0 && k == 10+id/2:
				// Block until the odd partner wakes me.
				blocked[id] = true
				e.Block(id)
				blocked[id] = false
				note()
			case id%2 == 1 && blocked[id-1]:
				e.Wake(id-1, clock)
				clock += 0.125
				e.Yield(id, clock)
				note()
			case id == 3 && k == 20, id == 8 && k == 25 && !blocked[8]:
				return // early completion: the live set shrinks
			default:
				clock += float64((id*13+k*7)%5) * 0.5 // often 0: fast-path yields
				e.Yield(id, clock)
				note()
			}
		}
	})
	return ids, times
}

// TestEngineFastPathSchedule: the zero-handoff fast path and the
// engine-mediated slow path produce identical schedules on a stress mix
// of Yield/Block/Wake/completion.
func TestEngineFastPathSchedule(t *testing.T) {
	fastIDs, fastTimes := stressSchedule(t, false)
	slowIDs, slowTimes := stressSchedule(t, true)
	if len(fastIDs) != len(slowIDs) {
		t.Fatalf("schedule lengths differ: fast %d, slow %d", len(fastIDs), len(slowIDs))
	}
	for i := range fastIDs {
		if fastIDs[i] != slowIDs[i] || fastTimes[i] != slowTimes[i] {
			t.Fatalf("schedules diverge at slot %d: fast (%d, %v), slow (%d, %v)",
				i, fastIDs[i], fastTimes[i], slowIDs[i], slowTimes[i])
		}
	}
}

// TestEngineStressDeadlockAbort: when a stress program ends with blocked
// processes nobody will wake, both paths abort the same set.
func TestEngineStressDeadlockAbort(t *testing.T) {
	run := func(noFast bool) []bool {
		const p = 6
		e := NewEngine(p)
		e.noFastPath = noFast
		aborted := make([]bool, p)
		e.Run(func(id int) {
			defer func() {
				if d, ok := recover().(Deadlock); ok {
					aborted[id] = d.ID == id
				}
			}()
			for k := 0; k < 10; k++ {
				e.Yield(id, float64((id*5+k*3)%7))
			}
			if id%3 == 0 {
				e.Block(id) // no waker exists: global deadlock once others exit
			}
		})
		return aborted
	}
	fast, slow := run(false), run(true)
	for i := range fast {
		want := i%3 == 0
		if fast[i] != want || slow[i] != want {
			t.Errorf("process %d: aborted fast=%v slow=%v, want %v", i, fast[i], slow[i], want)
		}
	}
}

// TestEngineFastPathManyRanks: a larger world where every yield is
// uncontended (strictly increasing times per rank, all ranks
// interleaved) — the fast path's bread-and-butter case — still visits
// ranks in exact (time, rank, seq) order.
func TestEngineFastPathManyRanks(t *testing.T) {
	const p = 64
	e := NewEngine(p)
	type slot struct {
		id int
		t  float64
	}
	var got []slot
	e.Run(func(id int) {
		for k := 0; k < 20; k++ {
			tk := float64(k*p + id)
			e.Yield(id, tk)
			got = append(got, slot{id, tk})
		}
	})
	for i := 1; i < len(got); i++ {
		if got[i].t < got[i-1].t {
			t.Fatalf("slot %d: time %v after %v — yields processed out of order",
				i, got[i].t, got[i-1].t)
		}
	}
	if len(got) != p*20 {
		t.Fatalf("recorded %d slots, want %d", len(got), p*20)
	}
}

// TestCriticalPathChain: a hand-built two-rank trace — rank 1 computes,
// sends; rank 0 computes less, then waits on the message — must put the
// sender's compute and the wire on the path and decompose exactly.
func TestCriticalPathChain(t *testing.T) {
	tr := &Trace{P: 2}
	tr.Add(Record{Rank: 1, Kind: KindCompute, T0: 0, T1: 10})
	tr.Add(Record{Rank: 1, Kind: KindSend, T0: 10, T1: 11, Peer: 0, Bytes: 8, MsgID: 1})
	tr.Add(Record{Rank: 0, Kind: KindCompute, T0: 0, T1: 2})
	tr.Add(Record{Rank: 0, Kind: KindRecv, T0: 2, T1: 14, Peer: 1, Bytes: 8, MsgID: 1, Arrival: 13})
	p := CriticalPath(tr)
	if p.Makespan != 14 || p.EndRank != 0 {
		t.Fatalf("makespan %v on rank %d, want 14 on rank 0", p.Makespan, p.EndRank)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("path has %d steps, want 3 (compute, send, recv): %+v", len(p.Steps), p.Steps)
	}
	if p.Steps[0].Kind != KindCompute || p.Steps[0].Rank != 1 {
		t.Errorf("path starts with %v on rank %d, want sender compute", p.Steps[0].Kind, p.Steps[0].Rank)
	}
	if p.Compute != 10 || p.Overhead != 1+1 || p.CommWait != 2 {
		t.Errorf("decomposition compute=%v overhead=%v wait=%v, want 10/2/2",
			p.Compute, p.Overhead, p.CommWait)
	}
	if sum := p.Compute + p.Overhead + p.CommWait; math.Abs(sum-p.Makespan) > 1e-12 {
		t.Errorf("decomposition sums to %v, want makespan %v", sum, p.Makespan)
	}
}

// TestCriticalPathNoWait: when the message is already there the path
// stays on the receiving rank.
func TestCriticalPathNoWait(t *testing.T) {
	tr := &Trace{P: 2}
	tr.Add(Record{Rank: 1, Kind: KindSend, T0: 0, T1: 1, Peer: 0, MsgID: 1})
	tr.Add(Record{Rank: 0, Kind: KindCompute, T0: 0, T1: 9})
	tr.Add(Record{Rank: 0, Kind: KindRecv, T0: 9, T1: 10, Peer: 1, MsgID: 1, Arrival: 2})
	p := CriticalPath(tr)
	if p.EndRank != 0 || len(p.Steps) != 2 {
		t.Fatalf("path %+v, want the receiver's compute+recv", p.Steps)
	}
	if p.Compute != 9 || p.Overhead != 1 || p.CommWait != 0 {
		t.Errorf("decomposition %v/%v/%v, want 9/1/0", p.Compute, p.Overhead, p.CommWait)
	}
}

// TestWriteChromeValidJSON: the export is a valid JSON array with one X
// event per record plus flow arrows for matched messages.
func TestWriteChromeValidJSON(t *testing.T) {
	tr := &Trace{P: 2}
	tr.Add(Record{Rank: 0, Kind: KindCompute, T0: 0, T1: 1})
	tr.Add(Record{Rank: 0, Kind: KindSend, T0: 1, T1: 2, Peer: 1, Bytes: 16, Tag: 3, MsgID: 7})
	tr.Add(Record{Rank: 1, Kind: KindRecv, T0: 0, T1: 3, Peer: 0, Bytes: 16, Tag: 3, MsgID: 7, Arrival: 2.5})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var x, s, f int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			x++
		case "s":
			s++
		case "f":
			f++
		}
	}
	if x != 3 || s != 1 || f != 1 {
		t.Errorf("event counts X=%d s=%d f=%d, want 3/1/1", x, s, f)
	}
}
