package event

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpanLogNesting: Begin/End maintain a per-rank stack; completed
// spans carry their nesting depth and flush rank-major.
func TestSpanLogNesting(t *testing.T) {
	s := NewSpanLog(2, SpanOptions{})
	s.Begin(0, PhaseRefine, 0)
	s.Begin(0, PhaseHalo, 1)
	s.End(0, 2) // halo, depth 1
	s.End(0, 3) // refine, depth 0
	s.Begin(1, PhaseSolve, 0)
	s.End(1, 5)
	all := s.All()
	if len(all) != 3 {
		t.Fatalf("got %d spans, want 3", len(all))
	}
	want := []Span{
		{Rank: 0, Phase: PhaseHalo, Depth: 1, T0: 1, T1: 2},
		{Rank: 0, Phase: PhaseRefine, Depth: 0, T0: 0, T1: 3},
		{Rank: 1, Phase: PhaseSolve, Depth: 0, T0: 0, T1: 5},
	}
	for i, w := range want {
		if all[i] != w {
			t.Errorf("span %d = %+v, want %+v", i, all[i], w)
		}
	}
}

func TestSpanEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	NewSpanLog(1, SpanOptions{}).End(0, 1)
}

// driveSpans runs a fixed multi-epoch span workload against a log.
func driveSpans(s *SpanLog) {
	t := 0.0
	for epoch := 0; epoch < 3; epoch++ {
		for rank := 0; rank < s.P; rank++ {
			for i := 0; i < 10; i++ {
				s.Begin(rank, PhaseSolve, t)
				s.Begin(rank, PhaseHalo, t+0.1)
				s.End(rank, t+0.4)
				s.End(rank, t+1)
				t++
			}
		}
		s.CutEpoch(nil, nil)
	}
}

// TestSpanRingByteIdentity: the stream's bytes are identical with the
// ring bound on or off — eviction changes when bytes are serialized,
// never their order or content — and the bound holds.
func TestSpanRingByteIdentity(t *testing.T) {
	var unbounded, bounded bytes.Buffer
	u := NewSpanLog(2, SpanOptions{Sink: &unbounded})
	driveSpans(u)
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	const ringCap = 4
	b := NewSpanLog(2, SpanOptions{Sink: &bounded, RingCap: ringCap})
	driveSpans(b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// The header line records the ring setting, so identity is over the
	// span/blame/end lines — everything after the first newline.
	tail := func(buf *bytes.Buffer) string {
		s := buf.String()
		return s[strings.IndexByte(s, '\n')+1:]
	}
	if tail(&unbounded) != tail(&bounded) {
		t.Errorf("stream bytes differ between unbounded and ring-bounded sinks:\n--- unbounded\n%s--- ring\n%s",
			tail(&unbounded), tail(&bounded))
	}
	if b.Evicted() == 0 {
		t.Error("ring log evicted nothing; the test never exercised the bound")
	}
	// +1: one span can be open while ringCap completed spans are resident.
	if b.PeakResident() > ringCap+2 {
		t.Errorf("PeakResident = %d, want <= %d", b.PeakResident(), ringCap+2)
	}
	if u.PeakResident() <= ringCap+2 {
		t.Errorf("unbounded PeakResident = %d; workload too small to prove the bound matters",
			u.PeakResident())
	}
	if u.Written() != b.Written() || u.Epochs() != b.Epochs() {
		t.Errorf("written/epochs differ: %d/%d vs %d/%d",
			u.Written(), u.Epochs(), b.Written(), b.Epochs())
	}
}

// TestSpanSamplingKeepsOnPath: sampling thins off-path spans but may
// never drop a span overlapping the epoch's critical path, and spans
// already ring-evicted are always written.
func TestSpanSamplingKeepsOnPath(t *testing.T) {
	var buf bytes.Buffer
	s := NewSpanLog(1, SpanOptions{Sink: &buf, SampleEvery: 1000})
	for i := 0; i < 20; i++ {
		s.Begin(0, PhaseSolve, float64(i))
		s.End(0, float64(i)+0.5)
	}
	// Critical path overlaps spans 5 and 6 only.
	cp := &Path{Steps: []Record{{Rank: 0, T0: 5.2, T1: 6.3}}}
	s.CutEpoch(cp, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	worlds, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 1 {
		t.Fatalf("got %d worlds, want 1", len(worlds))
	}
	kept := worlds[0].Spans
	has := func(t0 float64) bool {
		for _, sp := range kept {
			if sp.T0 == t0 {
				return true
			}
		}
		return false
	}
	if !has(5) || !has(6) {
		t.Errorf("critical-path spans sampled out; kept %+v", kept)
	}
	if s.SampledOut() != 18 {
		t.Errorf("SampledOut = %d, want 18 (every off-path span at 1-in-1000)", s.SampledOut())
	}
}

// TestReadSpansRoundTrip: a multi-epoch stream with blame lines parses
// back with every field intact.
func TestReadSpansRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewSpanLog(2, SpanOptions{
		Sink:  &buf,
		Label: map[string]string{"exp": "test", "p": "2"},
	})
	s.Begin(0, PhaseRepartition, 1)
	s.End(0, 2)
	s.Begin(1, PhaseMigrate, 1.5)
	s.End(1, 3)
	blame := &BlameReport{P: 2, Wait: 1.25}
	blame.ByKind[BlameContention] = 1.25
	blame.Lag = make([][]float64, 2)
	for i := range blame.Lag {
		blame.Lag[i] = make([]float64, NumPhases)
	}
	s.CutEpoch(nil, blame)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	worlds, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 1 {
		t.Fatalf("got %d worlds, want 1", len(worlds))
	}
	w := worlds[0]
	if w.P != 2 || w.Label["exp"] != "test" || !w.Complete {
		t.Errorf("world header = %+v", w)
	}
	if len(w.Spans) != 2 || w.Spans[0].Phase != PhaseRepartition || w.Spans[1].Phase != PhaseMigrate {
		t.Errorf("spans = %+v", w.Spans)
	}
	if len(w.Blame) != 1 || w.Blame[0].Contention != 1.25 || w.Blame[0].Wait != 1.25 {
		t.Errorf("blame = %+v", w.Blame)
	}
	if w.Epochs != 1 || w.Written != 2 {
		t.Errorf("trailer: epochs=%d written=%d", w.Epochs, w.Written)
	}
}

// TestReadSpansTruncation: a stream cut off mid-line or before its end
// trailer parses as Complete=false with everything before the cut
// intact; corruption in the middle still fails.
func TestReadSpansTruncation(t *testing.T) {
	var buf bytes.Buffer
	s := NewSpanLog(1, SpanOptions{Sink: &buf})
	s.Begin(0, PhaseSolve, 0)
	s.End(0, 1)
	s.Begin(0, PhaseSolve, 2)
	s.End(0, 3)
	s.CutEpoch(nil, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Drop the end trailer.
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	noEnd := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	worlds, err := ReadSpans(bytes.NewReader(noEnd))
	if err != nil {
		t.Fatalf("missing end trailer should parse leniently: %v", err)
	}
	if worlds[0].Complete || len(worlds[0].Spans) != 2 {
		t.Errorf("truncated stream: complete=%v spans=%d", worlds[0].Complete, len(worlds[0].Spans))
	}

	// Tear the final line in half.
	torn := full[:len(full)-8]
	worlds, err = ReadSpans(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line should parse leniently: %v", err)
	}
	if worlds[0].Complete {
		t.Error("torn stream parsed as complete")
	}

	// Corrupt a line in the middle: that is damage, not truncation.
	corrupt := append([]byte{}, lines[0]...)
	corrupt = append(corrupt, "\n{broken\n"...)
	corrupt = append(corrupt, bytes.Join(lines[1:], []byte("\n"))...)
	corrupt = append(corrupt, '\n')
	if _, err := ReadSpans(bytes.NewReader(corrupt)); err == nil {
		t.Error("mid-file corruption parsed without error")
	}

	// An empty file is an error, not an empty result.
	if _, err := ReadSpans(bytes.NewReader(nil)); err == nil {
		t.Error("empty file parsed without error")
	}
}

// TestSpanMultiStream: a file concatenating two world streams (what a
// multi-world plumbench run writes) parses as two worlds.
func TestSpanMultiStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		s := NewSpanLog(1, SpanOptions{Sink: &buf})
		s.Begin(0, PhaseCollective, 0)
		s.End(0, 1)
		s.CutEpoch(nil, nil)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	worlds, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 2 || !worlds[0].Complete || !worlds[1].Complete {
		t.Fatalf("got %d worlds (complete: %v, %v), want 2 complete",
			len(worlds), worlds[0].Complete, worlds[len(worlds)-1].Complete)
	}
}
