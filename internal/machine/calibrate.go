package machine

// Rate calibration: LinkParams estimated from an executed event trace
// instead of assumed from the model's constants.  The redistribution
// estimate of the paper's Section 4.5 prices data movement with machine
// constants the implementor measured once, by hand; with the event
// engine every run carries its own measurements, so the gain/cost
// decision can price the next remapping with the per-message and
// per-byte rates the current mapping actually achieved — including
// contention queueing the analytic constants cannot see.
//
// Calibration groups traced sends by network hop distance (the same
// metric MapTopo minimizes): one ordinary-least-squares fit of
// span = Setup + bytes*PerByte per hop class, plus the mean observed
// send-completion-to-arrival delay as that class's Latency.  Hop
// classes collapse exactly the pairs the concrete models price
// identically (intra-node vs inter-node on the SMP cluster, subtree
// levels on the fat tree), so a handful of observations per class is
// enough to price every pair.

import "plum/internal/event"

// RateObs is one hop class's calibrated link constants together with
// the observation counts backing them.
type RateObs struct {
	LinkParams
	Messages int   // traced sends in this class
	Bytes    int64 // traced payload bytes in this class
}

// RateTable holds calibrated link constants keyed by hop distance.
type RateTable struct {
	ByHops map[int]RateObs
}

// Observed reports whether the table contains any calibrated class.
func (t RateTable) Observed() bool { return len(t.ByHops) > 0 }

// For returns the calibrated constants for a transfer crossing the
// given hop distance.  An unobserved class borrows the nearest observed
// one (ties to the larger distance: overpricing an unseen link class is
// the safer error for an accept/reject decision); with no observations
// at all the fallback constants are returned unchanged.
func (t RateTable) For(hops int, fallback LinkParams) LinkParams {
	if obs, ok := t.ByHops[hops]; ok {
		return obs.LinkParams
	}
	bestH, bestDist := 0, -1
	for h := range t.ByHops {
		d := h - hops
		if d < 0 {
			d = -d
		}
		// The (dist, -hops) comparison is total, so the winner is
		// independent of map iteration order.
		if bestDist < 0 || d < bestDist || (d == bestDist && h > bestH) {
			bestH, bestDist = h, d
		}
	}
	if bestDist < 0 {
		return fallback
	}
	return t.ByHops[bestH].LinkParams
}

// rateAccum accumulates the per-class regression sums.
type rateAccum struct {
	n                        int
	sumB, sumT, sumBB, sumBT float64
	bytes                    int64
	latN                     int
	latSum                   float64
}

// CalibrateRates fits per-hop-class link constants to the send and
// receive records of one trace window on machine m.  Every sum is
// accumulated in record order — the engine's deterministic total order —
// so the result is bitwise reproducible across runs and GOMAXPROCS.
func CalibrateRates(recs []event.Record, m Model) RateTable {
	acc := make(map[int]*rateAccum)
	classOf := func(src, dst int) *rateAccum {
		h := m.Hops(src, dst)
		a, ok := acc[h]
		if !ok {
			a = &rateAccum{}
			acc[h] = a
		}
		return a
	}
	sendOf := make(map[int64]int) // MsgID -> index in recs
	for i, r := range recs {
		switch r.Kind {
		case event.KindSend:
			a := classOf(r.Rank, r.Peer)
			span, b := r.T1-r.T0, float64(r.Bytes)
			a.n++
			a.sumB += b
			a.sumT += span
			a.sumBB += b * b
			a.sumBT += b * span
			a.bytes += int64(r.Bytes)
			if r.MsgID != 0 {
				sendOf[r.MsgID] = i
			}
		case event.KindRecv:
			si, ok := sendOf[r.MsgID]
			if !ok || r.MsgID == 0 {
				continue
			}
			// Arrival - send completion is the wire latency plus any
			// contention queueing the transfer suffered — the measured
			// counterpart of LinkParams.Latency.
			a := classOf(recs[si].Rank, r.Rank)
			if lat := r.Arrival - recs[si].T1; lat >= 0 {
				a.latN++
				a.latSum += lat
			}
		}
	}
	out := RateTable{ByHops: make(map[int]RateObs, len(acc))}
	for h, a := range acc {
		var lp LinkParams
		nf := float64(a.n)
		if v := nf*a.sumBB - a.sumB*a.sumB; v > 0 {
			lp.PerByte = (nf*a.sumBT - a.sumB*a.sumT) / v
			lp.Setup = (a.sumT - lp.PerByte*a.sumB) / nf
		} else if a.n > 0 {
			// No size variation in this class: all span is startup.
			lp.Setup = a.sumT / nf
		}
		// The engine's spans are exact sums of nonnegative charges, but a
		// degenerate fit (e.g. two sizes whose spans happen to be
		// collinear through a negative intercept) can extrapolate below
		// zero; clamp to the physically meaningful range.
		if lp.PerByte < 0 {
			lp.PerByte = 0
			if a.n > 0 {
				lp.Setup = a.sumT / nf
			}
		}
		if lp.Setup < 0 {
			lp.Setup = 0
		}
		if a.latN > 0 {
			lp.Latency = a.latSum / float64(a.latN)
		}
		out.ByHops[h] = RateObs{LinkParams: lp, Messages: a.n, Bytes: a.bytes}
	}
	return out
}
