package machine

// Hetero wraps any network model with per-rank compute speed
// multipliers, modeling a machine assembled from several processor
// generations.  The balancer's gain model assumes homogeneous
// processors; running the framework on a Hetero machine exposes how far
// that assumption degrades the decision quality.
type Hetero struct {
	base  Model
	speed []float64
}

// NewHetero wraps base with per-rank speeds; len(speed) must equal
// base.Ranks() and every speed must be positive.
func NewHetero(base Model, speed []float64) *Hetero {
	if len(speed) != base.Ranks() {
		panic("machine: hetero speed vector length must match rank count")
	}
	for _, s := range speed {
		if s <= 0 {
			panic("machine: hetero speeds must be positive")
		}
	}
	return &Hetero{base: base, speed: speed}
}

// TwoGenerationSpeeds returns a speed vector whose first half runs at
// baseline and second half at the given relative speed — two processor
// generations in one machine.
func TwoGenerationSpeeds(p int, second float64) []float64 {
	speed := make([]float64, p)
	for i := range speed {
		if i < (p+1)/2 {
			speed[i] = 1
		} else {
			speed[i] = second
		}
	}
	return speed
}

// Name implements Model.
func (h *Hetero) Name() string { return "hetero" }

// Ranks implements Model.
func (h *Hetero) Ranks() int { return h.base.Ranks() }

// Pair implements Model by delegation.
func (h *Hetero) Pair(src, dst int) LinkParams { return h.base.Pair(src, dst) }

// Speed implements Model: rank r's configured multiplier.
func (h *Hetero) Speed(r int) float64 { return h.speed[r] }

// Hops implements Model by delegation.
func (h *Hetero) Hops(src, dst int) int { return h.base.Hops(src, dst) }

// Acquire implements Model by delegation.
func (h *Hetero) Acquire(src, dst, nbytes int, depart float64) float64 {
	return h.base.Acquire(src, dst, nbytes, depart)
}

// Contended implements Model by delegation.
func (h *Hetero) Contended(src, dst int) bool { return h.base.Contended(src, dst) }

// Reset implements Model by delegation.
func (h *Hetero) Reset() { h.base.Reset() }
