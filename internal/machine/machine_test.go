package machine

import "testing"

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name, 8)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
		if m.Ranks() != 8 {
			t.Errorf("ByName(%q).Ranks() = %d, want 8", name, m.Ranks())
		}
	}
	if _, err := ByName("torus", 8); err == nil {
		t.Error("ByName(torus) should fail")
	}
}

func TestUniformProbe(t *testing.T) {
	cases := []struct {
		m    Model
		want bool
	}{
		{NewFlat(8, SP2Link()), true},
		{NewSMPCluster(8, 4, SMPIntraLink(), SP2Link()), false},
		{NewSMPCluster(4, 4, SMPIntraLink(), SP2Link()), true}, // single node: no pair structure
		{NewFatTree(8, 4, SP2Link(), 10e-6, SP2Link().PerByte), false},
		{NewHetero(NewFlat(8, SP2Link()), TwoGenerationSpeeds(8, 0.5)), true}, // links uniform, speeds not
	}
	for _, c := range cases {
		if got := Uniform(c.m); got != c.want {
			t.Errorf("Uniform(%s, %d ranks) = %v, want %v", c.m.Name(), c.m.Ranks(), got, c.want)
		}
	}
}

func TestFlatUniform(t *testing.T) {
	f := NewFlat(4, SP2Link())
	want := SP2Link()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := f.Pair(i, j); got != want {
				t.Fatalf("Pair(%d,%d) = %+v, want %+v", i, j, got, want)
			}
			wantHops := 1
			if i == j {
				wantHops = 0
			}
			if got := f.Hops(i, j); got != wantHops {
				t.Errorf("Hops(%d,%d) = %d, want %d", i, j, got, wantHops)
			}
		}
		if f.Speed(i) != 1 {
			t.Errorf("Speed(%d) = %v, want 1", i, f.Speed(i))
		}
	}
	if got := f.Acquire(0, 1, 1<<20, 7.5); got != 7.5 {
		t.Errorf("flat Acquire shifted depart to %v", got)
	}
}

func TestSMPClusterPairAndHops(t *testing.T) {
	intra, inter := SMPIntraLink(), SP2Link()
	m := NewSMPCluster(8, 4, intra, inter)
	if m.Node(3) != 0 || m.Node(4) != 1 {
		t.Fatalf("node mapping wrong: Node(3)=%d Node(4)=%d", m.Node(3), m.Node(4))
	}
	if got := m.Pair(0, 3); got != intra {
		t.Errorf("intra-node pair got inter constants: %+v", got)
	}
	if got := m.Pair(0, 4); got != inter {
		t.Errorf("inter-node pair got intra constants: %+v", got)
	}
	if m.Hops(2, 2) != 0 || m.Hops(0, 3) != 1 || m.Hops(0, 7) != 3 {
		t.Errorf("hops = %d/%d/%d, want 0/1/3", m.Hops(2, 2), m.Hops(0, 3), m.Hops(0, 7))
	}
	// The whole point of the model: moving a byte within a node must be
	// cheaper than moving it across nodes.
	if intra.Setup+intra.PerByte >= inter.Setup+inter.PerByte {
		t.Error("intra-node link is not cheaper than inter-node")
	}
}

func TestFatTreeHops(t *testing.T) {
	ft := NewFatTree(16, 4, SP2Link(), 10e-6, SP2Link().PerByte)
	cases := []struct{ src, dst, want int }{
		{5, 5, 0},  // self
		{0, 3, 2},  // same leaf group: up one switch and down
		{0, 4, 4},  // adjacent groups: two levels
		{0, 15, 4}, // still within the 16-leaf two-level tree
	}
	for _, c := range cases {
		if got := ft.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	// Latency must grow with hop distance.
	near, far := ft.Pair(0, 3), ft.Pair(0, 4)
	if near.Latency >= far.Latency {
		t.Errorf("near latency %v >= far latency %v", near.Latency, far.Latency)
	}
}

func TestFatTreeContentionQueue(t *testing.T) {
	perByte := 1e-6
	ft := NewFatTree(8, 4, LinkParams{PerByte: perByte}, 0, perByte)
	// Two off-group transfers from the same group back-to-back: the
	// second serializes behind the first on the shared up-link.
	s1 := ft.Acquire(0, 4, 1000, 0)
	s2 := ft.Acquire(1, 5, 1000, 0)
	if s1 != 0 {
		t.Fatalf("first reservation should start at depart, got %v", s1)
	}
	if want := 1000 * perByte; s2 != want {
		t.Fatalf("second reservation = %v, want serialized start %v", s2, want)
	}
	// Intra-group traffic never touches the up-link.
	if got := ft.Acquire(2, 3, 1000, 0); got != 0 {
		t.Errorf("intra-group transfer queued on up-link: start %v", got)
	}
	// Distinct groups own distinct up-links.
	if got := ft.Acquire(4, 0, 1000, 0); got != 0 {
		t.Errorf("other group's up-link was busy: start %v", got)
	}
	// Reset clears the queues.
	ft.Reset()
	if got := ft.Acquire(0, 4, 1000, 0); got != 0 {
		t.Errorf("Acquire after Reset = %v, want 0", got)
	}
}

func TestHeteroSpeeds(t *testing.T) {
	h := NewHetero(NewFlat(4, SP2Link()), TwoGenerationSpeeds(4, 0.5))
	wants := []float64{1, 1, 0.5, 0.5}
	for r, want := range wants {
		if got := h.Speed(r); got != want {
			t.Errorf("Speed(%d) = %v, want %v", r, got, want)
		}
	}
	// Network behavior delegates to the base model.
	if h.Pair(0, 3) != SP2Link() || h.Hops(0, 3) != 1 {
		t.Error("hetero did not delegate network model to base")
	}
}
