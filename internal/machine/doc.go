// Package machine models the simulated parallel machine as a first-class
// object.  The paper's cost analysis (Oliker & Biswas, SPAA 1997,
// Sections 4.4-4.6) prices every rebalancing decision against a machine:
// the original is a flat IBM SP2 where every processor pair is
// equidistant and every processor equally fast.  This package generalizes
// that to a Model interface — per-pair message costs, per-rank compute
// speed, network hop distance, and shared-link contention — with four
// concrete machines:
//
//   - Flat: the uniform SP2 of the paper; bitwise-compatible with the
//     scalar msg.CostModel constants when built from SP2Link().
//   - SMPCluster: nodes of NodeSize ranks; cheap intra-node links
//     (shared-memory copy) and expensive inter-node links.
//   - FatTree: ranks at the leaves of a radix-R tree; latency grows with
//     hop count and ranks in a leaf group serialize on a shared up-link
//     (a contention queue).
//   - Hetero: wraps any model with per-rank speed multipliers (two
//     processor generations in one machine).
//
// The msg runtime consults the installed Model on every send, receive,
// and compute charge; remap prices redistribution with per-pair costs;
// and the MapTopo processor mapper minimizes hop-weighted data movement.
//
// Entry points.  ByName builds the four standard machines; SpeedShares
// and SpeedSharesAssigned derive the heterogeneous partitioner targets
// (provisional j mod P keying, and the realized-assignment keying the
// adaption step re-prices with); CalibrateRates fits per-hop-class
// LinkParams to an executed event trace — the measured-cost loop's
// pricing source; Uniform detects networks with no pair structure so
// the gain/cost decision can keep the paper's scalar pricing on them.
//
// Invariants.  All methods except Acquire are pure; Acquire is the only
// mutable contention state and the msg runtime serializes it in
// (time, rank, seq) order via the engine's reservation pass, so even
// contended timings are bitwise reproducible.  Reset clears contention
// state between runs; ByName returns a fresh model per call.  A Flat
// built from SP2Link charges exactly the scalar model's costs — the
// bitwise-pinned default path.
package machine
