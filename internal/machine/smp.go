package machine

// SMPCluster models a cluster of shared-memory nodes: ranks are packed
// into nodes of NodeSize consecutive ranks; messages within a node move
// at memory-copy speed while messages between nodes cross the cluster
// interconnect.  This is the machine class (SP nodes, Beowulf clusters)
// that succeeded the paper's flat SP2, and the one on which a
// hop-oblivious processor mapping visibly overpays: retaining data on a
// same-node rank is nearly free, retaining it across nodes is not.
type SMPCluster struct {
	p        int
	nodeSize int
	intra    LinkParams
	inter    LinkParams
}

// SMPIntraLink returns the default intra-node link calibration: a
// shared-memory copy at ~400 MB/s with a ~3 us software handoff.
func SMPIntraLink() LinkParams {
	return LinkParams{Setup: 3e-6, PerByte: 1.0 / 400e6, Latency: 1e-6}
}

// NewSMPCluster builds a p-rank cluster of nodes holding nodeSize
// consecutive ranks each (the last node may be partial).  nodeSize < 1
// panics.
func NewSMPCluster(p, nodeSize int, intra, inter LinkParams) *SMPCluster {
	if nodeSize < 1 {
		panic("machine: SMP node size must be positive")
	}
	return &SMPCluster{p: p, nodeSize: nodeSize, intra: intra, inter: inter}
}

// Name implements Model.
func (m *SMPCluster) Name() string { return "smp" }

// Ranks implements Model.
func (m *SMPCluster) Ranks() int { return m.p }

// NodeSize returns the configured node arity.
func (m *SMPCluster) NodeSize() int { return m.nodeSize }

// Node returns the node index of rank r.
func (m *SMPCluster) Node(r int) int { return r / m.nodeSize }

// Pair implements Model: intra-node constants within a node, inter-node
// constants across nodes.
func (m *SMPCluster) Pair(src, dst int) LinkParams {
	if m.Node(src) == m.Node(dst) {
		return m.intra
	}
	return m.inter
}

// Speed implements Model: all ranks run at baseline speed.
func (m *SMPCluster) Speed(r int) float64 { return 1 }

// Hops implements Model: 0 to self, 1 within a node, 3 across nodes
// (NIC, cluster switch, NIC).
func (m *SMPCluster) Hops(src, dst int) int {
	switch {
	case src == dst:
		return 0
	case m.Node(src) == m.Node(dst):
		return 1
	default:
		return 3
	}
}

// Acquire implements Model: links are modeled contention-free.
func (m *SMPCluster) Acquire(src, dst, nbytes int, depart float64) float64 { return depart }

// Contended implements Model: no shared link state.
func (m *SMPCluster) Contended(src, dst int) bool { return false }

// Reset implements Model.
func (m *SMPCluster) Reset() {}
