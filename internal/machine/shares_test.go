package machine

import "testing"

// TestSpeedShares: homogeneous machines yield nil (the exact uniform
// path); heterogeneous machines yield per-part shares cycling over the
// ranks' speeds.
func TestSpeedShares(t *testing.T) {
	for _, name := range []string{"flat", "smp", "fattree"} {
		m, err := ByName(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if s := SpeedShares(m, 8); s != nil {
			t.Errorf("%s: homogeneous machine produced shares %v", name, s)
		}
	}
	h := NewHetero(NewFlat(4, SP2Link()), []float64{1, 1, 0.5, 0.5})
	s := SpeedShares(h, 8) // F=2: parts cycle over the ranks
	want := []float64{1, 1, 0.5, 0.5, 1, 1, 0.5, 0.5}
	if len(s) != len(want) {
		t.Fatalf("share length %d, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("share[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

// TestContended: only the fat tree's inter-group pairs carry shared
// mutable link state; hetero delegates to its base.
func TestContended(t *testing.T) {
	cases := []struct {
		m        Model
		src, dst int
		want     bool
	}{
		{NewFlat(8, SP2Link()), 0, 7, false},
		{NewSMPCluster(8, 4, SMPIntraLink(), SP2Link()), 0, 7, false},
		{NewFatTree(8, 4, SP2Link(), 10e-6, 4*SP2Link().PerByte), 0, 1, false}, // same leaf group
		{NewFatTree(8, 4, SP2Link(), 10e-6, 4*SP2Link().PerByte), 0, 4, true},  // crosses the up-link
		{NewHetero(NewFlat(8, SP2Link()), TwoGenerationSpeeds(8, 0.5)), 0, 7, false},
		{NewHetero(NewFatTree(8, 4, SP2Link(), 10e-6, 1e-8), TwoGenerationSpeeds(8, 0.5)), 0, 4, true},
	}
	for _, c := range cases {
		if got := c.m.Contended(c.src, c.dst); got != c.want {
			t.Errorf("%s: Contended(%d,%d) = %v, want %v", c.m.Name(), c.src, c.dst, got, c.want)
		}
	}
}
