package machine

// Flat is the uniform machine of the paper: every pair of distinct ranks
// is one hop apart with identical link constants, every rank runs at
// baseline speed, and no link is shared.  Built from SP2Link() it charges
// exactly what the scalar msg.CostModel charges, so installing it is a
// behavioral no-op (the golden regression test pins this).
type Flat struct {
	p    int
	link LinkParams
}

// NewFlat builds a p-rank uniform machine with the given link constants.
func NewFlat(p int, link LinkParams) *Flat {
	return &Flat{p: p, link: link}
}

// Name implements Model.
func (f *Flat) Name() string { return "flat" }

// Ranks implements Model.
func (f *Flat) Ranks() int { return f.p }

// Pair implements Model: every pair shares the same constants.
func (f *Flat) Pair(src, dst int) LinkParams { return f.link }

// Speed implements Model: all ranks run at baseline speed.
func (f *Flat) Speed(r int) float64 { return 1 }

// Hops implements Model: 0 to self, 1 to anyone else.
func (f *Flat) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Acquire implements Model: no shared links, no contention.
func (f *Flat) Acquire(src, dst, nbytes int, depart float64) float64 { return depart }

// Contended implements Model: no shared link state.
func (f *Flat) Contended(src, dst int) bool { return false }

// Reset implements Model.
func (f *Flat) Reset() {}
