package machine

import "sync"

// FatTree places the ranks at the leaves of a radix-R tree: ranks whose
// indices agree in all base-R digits above level l are separated by 2*l
// hops (up to the lowest common switch and back down).  Per-pair latency
// grows with hop count, and every leaf group of R ranks shares one
// up-link: messages leaving the group serialize on it, so a burst of
// off-group traffic from co-located ranks queues — the congestion effect
// a flat model cannot express.
//
// The up-link reservation is a contention queue in simulated time: a
// transfer ready at depart starts at max(depart, link busy-until) and
// occupies the link for nbytes * uplinkPerByte seconds.  The fat tree
// reports Contended, so the msg runtime's event engine serializes the
// reservations in (time, rank, seq) order — the deterministic
// reservation pass — making contended timings bitwise reproducible for
// any GOMAXPROCS.  The per-group mutex remains only as a safety net for
// callers driving the model outside the engine.
type FatTree struct {
	p             int
	radix         int
	link          LinkParams
	hopLatency    float64 // per-hop wire latency, seconds
	uplinkPerByte float64 // shared up-link serialization, seconds/byte

	uplinks []uplink // one per leaf group
}

type uplink struct {
	mu   sync.Mutex
	busy float64 // simulated time until which the link is occupied
}

// NewFatTree builds a p-rank fat tree with the given leaf-link
// constants, per-hop latency, and shared up-link bandwidth.  radix < 2
// panics.
func NewFatTree(p, radix int, link LinkParams, hopLatency, uplinkPerByte float64) *FatTree {
	if radix < 2 {
		panic("machine: fat-tree radix must be at least 2")
	}
	groups := (p + radix - 1) / radix
	if groups < 1 {
		groups = 1
	}
	return &FatTree{
		p: p, radix: radix, link: link,
		hopLatency: hopLatency, uplinkPerByte: uplinkPerByte,
		uplinks: make([]uplink, groups),
	}
}

// Name implements Model.
func (t *FatTree) Name() string { return "fattree" }

// Ranks implements Model.
func (t *FatTree) Ranks() int { return t.p }

// Radix returns the tree radix (leaf-group size).
func (t *FatTree) Radix() int { return t.radix }

// Hops implements Model: twice the level of the lowest common ancestor
// switch of the two leaves.
func (t *FatTree) Hops(src, dst int) int {
	l := 0
	for src != dst {
		src /= t.radix
		dst /= t.radix
		l++
	}
	return 2 * l
}

// Pair implements Model: setup and bandwidth come from the leaf link;
// latency accumulates per hop.
func (t *FatTree) Pair(src, dst int) LinkParams {
	return LinkParams{
		Setup:   t.link.Setup,
		PerByte: t.link.PerByte,
		Latency: t.hopLatency * float64(t.Hops(src, dst)),
	}
}

// Speed implements Model: all ranks run at baseline speed.
func (t *FatTree) Speed(r int) float64 { return 1 }

// Acquire implements Model: transfers leaving src's leaf group reserve
// the group's shared up-link; intra-group transfers are contention-free.
func (t *FatTree) Acquire(src, dst, nbytes int, depart float64) float64 {
	g := src / t.radix
	if g == dst/t.radix {
		return depart
	}
	u := &t.uplinks[g]
	u.mu.Lock()
	start := depart
	if u.busy > start {
		start = u.busy
	}
	u.busy = start + float64(nbytes)*t.uplinkPerByte
	u.mu.Unlock()
	return start
}

// Contended implements Model: transfers leaving their leaf group
// reserve the group's shared up-link, so they must be processed in
// simulated-time order; intra-group transfers touch no shared state.
func (t *FatTree) Contended(src, dst int) bool { return src/t.radix != dst/t.radix }

// Reset implements Model: clears all up-link reservations.
func (t *FatTree) Reset() {
	for i := range t.uplinks {
		u := &t.uplinks[i]
		u.mu.Lock()
		u.busy = 0
		u.mu.Unlock()
	}
}
