package machine

import "fmt"

// LinkParams are the point-to-point message cost constants of one link
// class — the per-pair generalization of the scalar cost model.
type LinkParams struct {
	Setup   float64 // per-message startup cost, seconds
	PerByte float64 // per-byte injection/copy cost, seconds
	Latency float64 // wire latency between injection and arrival, seconds
}

// Model is a simulated parallel machine.  Implementations must be safe
// for concurrent use by all ranks (the ranks run as goroutines); all
// methods except Acquire must be pure so that contention-free paths stay
// deterministic.
type Model interface {
	// Name identifies the topology ("flat", "smp", ...).
	Name() string
	// Ranks returns the machine size the model was built for.
	Ranks() int
	// Pair returns the message cost constants from src to dst.
	Pair(src, dst int) LinkParams
	// Speed returns rank r's relative compute speed: 1 is the baseline,
	// 0.5 means the same work takes twice as long.
	Speed(r int) float64
	// Hops returns the network distance between two ranks: 0 for
	// src == dst, growing with topological distance.  MapTopo minimizes
	// hop-weighted data movement against this metric.
	Hops(src, dst int) int
	// Acquire reserves the shared network resources needed by a transfer
	// of nbytes from src to dst that is ready to inject at simulated
	// time depart, and returns the actual injection time — depart itself
	// on contention-free links.  On machines that report Contended, the
	// msg runtime's event engine serializes Acquire calls in
	// (time, rank, seq) order — the deterministic reservation pass — so
	// contended timings are bitwise reproducible; implementations keep
	// their own guards only as a safety net for direct callers.
	Acquire(src, dst, nbytes int, depart float64) float64
	// Contended reports whether a transfer from src to dst consults
	// shared mutable link state in Acquire (a reservation queue).  The
	// runtime runs its engine reservation pass only for contended pairs;
	// contention-free pairs — every pair on a flat or SMP machine, and
	// intra-group pairs on the fat tree — skip it, keeping the exact
	// cost path of the scalar model.
	Contended(src, dst int) bool
	// Reset clears contention state so a model can be reused across
	// simulation runs.
	Reset()
}

// SP2Link returns the link constants of the paper's IBM SP2 — the same
// values as msg.SP2Model's scalars (~40 us startup, ~35 MB/s sustained
// bandwidth), kept here as the single source of truth.
func SP2Link() LinkParams {
	return LinkParams{
		Setup:   40e-6,
		PerByte: 1.0 / 35e6,
		Latency: 40e-6,
	}
}

// Uniform reports whether every distinct pair of ranks on m shares
// identical link constants — i.e. the network is flat, whatever the
// concrete type (a Flat, a single-node SMPCluster, ...).  The gain/cost
// decision uses this to keep the paper's scalar redistribution pricing
// on uniform machines: per-pair pricing is calibrated differently, and
// switching formulas on a network with no pair structure would change
// accept/reject decisions for no informational gain.
func Uniform(m Model) bool {
	p := m.Ranks()
	if p < 2 {
		return true
	}
	ref := m.Pair(0, 1)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j && m.Pair(i, j) != ref {
				return false
			}
		}
	}
	return true
}

// SpeedShares returns per-part target-load shares proportional to the
// speed of the rank each part cycles onto (part j -> rank j mod P), or
// nil when every rank runs at the same speed.  The repartitioner seeds
// part j from rank j's current ownership (F=1), so share j scaled by
// Speed(j) steers proportionally less work onto slow ranks — the
// hetero-aware balancing that closes the loop between the machine model
// and the partitioner's target loads.  A nil result keeps the uniform
// targets, so homogeneous machines stay on the exact paper path.
func SpeedShares(m Model, k int) []float64 {
	if speedsUniform(m) {
		return nil
	}
	p := m.Ranks()
	shares := make([]float64, k)
	for j := 0; j < k; j++ {
		shares[j] = m.Speed(j % p)
	}
	return shares
}

// speedsUniform reports whether every rank of m computes at the same
// speed — the condition under which both share derivations return nil
// and the framework stays on the paper's equal-target path.
func speedsUniform(m Model) bool {
	s0 := m.Speed(0)
	for r := 1; r < m.Ranks(); r++ {
		if m.Speed(r) != s0 {
			return false
		}
	}
	return true
}

// SpeedSharesAssigned returns per-part target-load shares keyed by the
// mapper's actual part-to-rank assignment: share j is the speed of the
// rank partition j will really run on, Speed(assign[j]).  This closes
// the gap SpeedShares documents: the j mod P keying assumes the mapper
// keeps the owner-seeded correspondence, but a mapper that trades a
// part across ranks (routine at F > 1) can land a slow-sized part on a
// fast processor.  The adaption step uses this for its one-iteration
// re-price: partition with the provisional keying, map, and when the
// realized assignment disagrees, repartition with the shares the
// mapping actually implies.  Nil on homogeneous machines, so uniform
// paths never re-price.
func SpeedSharesAssigned(m Model, assign []int32) []float64 {
	if speedsUniform(m) {
		return nil
	}
	shares := make([]float64, len(assign))
	for j, r := range assign {
		shares[j] = m.Speed(int(r))
	}
	return shares
}

// Names lists the topologies ByName accepts, in presentation order.
func Names() []string { return []string{"flat", "smp", "fattree", "hetero"} }

// ByName builds the named topology for a p-rank machine with the default
// calibration: SP2 links for flat, 4-rank SMP nodes with shared-memory
// intra-node links, a radix-4 fat tree with SP2 leaf links and 4:1
// oversubscribed up-links (the classical taper: one up-link carries a
// full leaf group, so its effective per-byte time is radix x the leaf
// link's), and a hetero machine whose second half runs at 0.5x speed.
// Each call returns a fresh model (fresh contention state).
func ByName(name string, p int) (Model, error) {
	switch name {
	case "flat":
		return NewFlat(p, SP2Link()), nil
	case "smp":
		return NewSMPCluster(p, 4, SMPIntraLink(), SP2Link()), nil
	case "fattree":
		return NewFatTree(p, 4, SP2Link(), 10e-6, 4*SP2Link().PerByte), nil
	case "hetero":
		return NewHetero(NewFlat(p, SP2Link()), TwoGenerationSpeeds(p, 0.5)), nil
	default:
		return nil, fmt.Errorf("machine: unknown model %q (valid: %v)", name, Names())
	}
}
