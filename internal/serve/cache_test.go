package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Crash-safety of the result cache: every way an entry can be damaged
// on disk — torn tail, truncation, bit flip, metadata corruption, a
// crash between the two renames — must read as a quarantined miss,
// never as served bytes.

func testBody() []byte {
	return RenderBody([]Row{
		{Kind: "epoch", Cycle: 0, Gain: 0.5, Cost: 0.1, Elems: 100},
		{Kind: "epoch", Cycle: 1, Gain: 0.6, Cost: 0.2, Elems: 120},
	}, 1.25, "deadbeef")
}

func openTestCache(t *testing.T) (*Cache, *Request) {
	t.Helper()
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c, &Request{P: 4, Cycles: 2, Seed: 9}
}

func mustPut(t *testing.T, c *Cache, req *Request, body []byte) {
	t.Helper()
	if err := c.Put(req, body, 2, 1.25); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRoundtrip(t *testing.T) {
	c, req := openTestCache(t)
	if _, ok := c.Get(req); ok {
		t.Fatal("hit on an empty cache")
	}
	body := testBody()
	mustPut(t, c, req, body)
	got, ok := c.Get(req)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get after put: ok=%v, bytes equal=%v", ok, bytes.Equal(got, body))
	}
	// A different request must not alias.
	other := &Request{P: 4, Cycles: 2, Seed: 10}
	if _, ok := c.Get(other); ok {
		t.Fatal("different seed hit the same entry")
	}
}

// corruptions maps a damage mode to the mutation that inflicts it.
func TestCacheCorruptionQuarantined(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, c *Cache, digest string)
	}{
		{"truncated body", func(t *testing.T, c *Cache, d string) {
			fi, _ := os.Stat(c.bodyPath(d))
			if err := os.Truncate(c.bodyPath(d), fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped body", func(t *testing.T, c *Cache, d string) {
			b, _ := os.ReadFile(c.bodyPath(d))
			b[len(b)/2] ^= 0x40
			os.WriteFile(c.bodyPath(d), b, 0o644)
		}},
		{"torn metadata", func(t *testing.T, c *Cache, d string) {
			b, _ := os.ReadFile(c.metaPath(d))
			os.WriteFile(c.metaPath(d), b[:len(b)/2], 0o644)
		}},
		{"canon swapped", func(t *testing.T, c *Cache, d string) {
			// Metadata of a different request copied under this digest —
			// the preimage check must catch the alias.
			other := &Request{P: 8, Cycles: 2}
			if err := c.Put(other, testBody(), 2, 1.25); err != nil {
				t.Fatal(err)
			}
			b, _ := os.ReadFile(c.metaPath(other.Digest()))
			os.WriteFile(c.metaPath(d), b, 0o644)
		}},
		{"body missing", func(t *testing.T, c *Cache, d string) {
			os.Remove(c.bodyPath(d))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, req := openTestCache(t)
			mustPut(t, c, req, testBody())
			tc.damage(t, c, req.Digest())
			if _, ok := c.Get(req); ok {
				t.Fatal("damaged entry served as a hit")
			}
			// Quarantine keeps the evidence out of the addressable namespace.
			if _, err := os.Stat(c.bodyPath(req.Digest())); err == nil {
				if _, err := os.Stat(c.metaPath(req.Digest())); err == nil {
					t.Fatal("damaged entry still fully addressable after Get")
				}
			}
			// Recompute-and-rewrite heals the entry.
			mustPut(t, c, req, testBody())
			if got, ok := c.Get(req); !ok || !bytes.Equal(got, testBody()) {
				t.Fatal("rewrite after quarantine did not heal the entry")
			}
		})
	}
}

func TestCacheSweepsInterruptedWrites(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a temp file behind.
	tmp := filepath.Join(dir, "abc.body.tmp12345")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("interrupted write survived OpenCache")
	}
}

func TestCacheFlushWritesIndex(t *testing.T) {
	c, req := openTestCache(t)
	mustPut(t, c, req, testBody())
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(c.dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(req.Digest())) {
		t.Fatalf("index.json does not name the entry: %s", b)
	}
}

func TestCacheDisabled(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{P: 4, Cycles: 1}
	if err := c.Put(req, testBody(), 2, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(req); ok {
		t.Fatal("disabled cache served a hit")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}
