package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plum/internal/core"
	"plum/internal/obs"
	"plum/internal/scenario"
)

// Config shapes a Server.  Zero values take defaults in NewServer.
type Config struct {
	// CacheDir holds the crash-safe result cache ("" = no cache).
	CacheDir string
	// Workers bounds concurrently simulating worlds (0 = GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker beyond those running;
	// an arrival past the bound is shed with 429 (0 = 2*Workers).
	Queue int
	// DefaultTimeout caps a request that names no timeout_seconds
	// (0 = no implicit deadline).
	DefaultTimeout time.Duration
	// Scenarios is the loaded corpus requests may name (nil = none).
	Scenarios []*scenario.Spec
	// Chaos enables the fault-injection request field.  Off by default:
	// a production daemon refuses chaos requests with 403.
	Chaos bool
	// Obs configures the shared observability surface (ledger dir etc.).
	Obs ObsState
}

// errShed marks a flight whose leader was shed by admission control;
// followers translate it into the same retry advice.
var errShed = errors.New("serve: shed by admission control")

// flight is one in-flight computation of a digest, shared by the
// leader (who simulates) and any followers (identical requests that
// arrived while it ran).  The leader fills the result fields, closes
// done, and unregisters the flight; followers wait on done and replay.
type flight struct {
	done chan struct{}

	// Set before done closes.  Exactly one of body / werr / err is the
	// outcome: a completed response, a world fault, or a leader-side
	// cancellation (followers then retry rather than inherit the cancel).
	body    []byte
	simTime float64
	rows    int
	werr    *WorldError
	err     error
}

// Server is the sweep-serving daemon: an http.Handler accepting
// experiment requests on POST /run and streaming NDJSON result rows.
type Server struct {
	cfg       Config
	exp       *core.Experiments
	scenarios map[string]*scenario.Spec
	cache     *Cache
	mux       *http.ServeMux

	// baseCtx parents every request's run context; cancelAll fires it
	// during drain to sweep stragglers cooperatively.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	// workers and waiters are counting semaphores: a request holds a
	// waiters slot from admission to completion and a workers slot while
	// its world simulates.  Admission sheds when waiters is full — the
	// bounded queue of the back-pressure story.
	workers chan struct{}
	waiters chan struct{}

	// drainMu orders request registration against the drain transition:
	// inflight.Add may not race inflight.Wait, so the draining check and
	// the Add are one atomic step, and Drain flips the flag under the
	// same lock before it waits.
	drainMu  sync.Mutex
	draining atomic.Bool
	inflight sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*flight

	reqOK, reqCached, reqFollower, reqShed, reqBad, reqErr, reqCancel *obs.Counter
	sfLeader, sfFollower                                              *obs.Counter
	queueDepth                                                        *obs.Gauge
	drainSeconds                                                      *obs.Gauge
}

// NewServer builds the daemon around a shared experiment harness.
// exp must outlive the server; the server only reads it (the
// RunWorldCtx concurrency contract).
func NewServer(exp *core.Experiments, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Workers
	}
	cache, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		exp:       exp,
		scenarios: make(map[string]*scenario.Spec, len(cfg.Scenarios)),
		cache:     cache,
		mux:       http.NewServeMux(),
		workers:   make(chan struct{}, cfg.Workers),
		waiters:   make(chan struct{}, cfg.Workers+cfg.Queue),
		flights:   make(map[string]*flight),

		reqOK:        obs.Default.Counter("plumserve_requests_total", "result", "ok"),
		reqCached:    obs.Default.Counter("plumserve_requests_total", "result", "cached"),
		reqFollower:  obs.Default.Counter("plumserve_requests_total", "result", "singleflight"),
		reqShed:      obs.Default.Counter("plumserve_requests_total", "result", "shed"),
		reqBad:       obs.Default.Counter("plumserve_requests_total", "result", "bad_request"),
		reqErr:       obs.Default.Counter("plumserve_requests_total", "result", "error"),
		reqCancel:    obs.Default.Counter("plumserve_requests_total", "result", "cancelled"),
		sfLeader:     obs.Default.Counter("plumserve_singleflight_total", "role", "leader"),
		sfFollower:   obs.Default.Counter("plumserve_singleflight_total", "role", "follower"),
		queueDepth:   obs.Default.Gauge("plumserve_queue_depth"),
		drainSeconds: obs.Default.Gauge("plumserve_drain_millis"),
	}
	for _, sp := range cfg.Scenarios {
		s.scenarios[sp.Name] = sp
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	o := cfg.Obs
	if o.Health == nil {
		o.Health = func() string {
			if s.draining.Load() {
				return "draining"
			}
			return "running"
		}
	}
	o.Register(s.mux)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the result cache (drain flushing, tests).
func (s *Server) Cache() *Cache { return s.cache }

// handleReadyz is the load-balancer rotation probe: 200 while
// admitting, 503 the moment drain begins — before in-flight worlds
// finish, so a fronting balancer stops routing here while the daemon
// still completes what it holds.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// retryAfterSeconds estimates when a shed client should come back:
// the observed mean world wall-clock (falling back to one second before
// any world has run) times the queue generations ahead of it.
func (s *Server) retryAfterSeconds() int {
	est := core.WorldWallEstimate(1.0)
	gens := float64(len(s.waiters))/float64(cap(s.workers)) + 1
	sec := int(math.Ceil(est * gens))
	if sec < 1 {
		sec = 1
	}
	return sec
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}

// handleRun is the request lifecycle: decode strictly, admit or shed,
// answer from the cache, collapse onto an existing flight, or lead a
// new simulation and stream its rows.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a request object to /run")
		return
	}
	if s.draining.Load() {
		s.reqShed.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, err := ParseRequest(r.Body)
	if err != nil {
		s.reqBad.Inc()
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Chaos != "" {
		if !s.cfg.Chaos {
			s.reqBad.Inc()
			httpError(w, http.StatusForbidden, "chaos injection is disabled on this server")
			return
		}
		if _, err := parseChaos(req.Chaos); err != nil {
			s.reqBad.Inc()
			httpError(w, http.StatusBadRequest, "bad chaos spec: %v", err)
			return
		}
	}
	ws, err := req.Spec(s.scenarios)
	if err != nil {
		s.reqBad.Inc()
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	digest := req.Digest()
	w.Header().Set("X-Plum-Digest", digest)

	// The cache answers before any scheduling: a verified hit costs no
	// queue slot, no worker, no simulation.
	if body, ok := s.cache.Get(req); ok {
		s.reqCached.Inc()
		w.Header().Set("X-Plum-Cache", "hit")
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(body)
		return
	}

	// Track the request for drain.  Check-and-register is atomic with
	// respect to Drain: once the flag flips no new Add can slip past the
	// Wait.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		s.reqShed.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()

	// Singleflight: one simulation per digest.  Register-or-join is
	// atomic under the lock; the loser becomes a follower.  Joining
	// precedes admission control because a follower consumes no
	// simulation capacity — only leaders compete for queue slots.
	s.mu.Lock()
	if fl, ok := s.flights[digest]; ok {
		s.mu.Unlock()
		s.sfFollower.Inc()
		s.followFlight(w, r, fl)
		return
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[digest] = fl
	s.mu.Unlock()
	s.sfLeader.Inc()
	s.leadFlight(w, r, req, ws, digest, fl)
}

// followFlight waits for the digest's leader and replays its outcome.
func (s *Server) followFlight(w http.ResponseWriter, r *http.Request, fl *flight) {
	select {
	case <-r.Context().Done():
		s.reqCancel.Inc()
		return // client gone; nothing to write
	case <-fl.done:
	}
	switch {
	case fl.body != nil:
		s.reqFollower.Inc()
		w.Header().Set("X-Plum-Cache", "singleflight")
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(fl.body)
	case fl.werr != nil:
		s.reqErr.Inc()
		s.writeWorldError(w, fl.werr)
	default:
		// The leader was cancelled (its client vanished, its deadline
		// fired).  The follower did nothing wrong: tell it to retry —
		// immediately, since a worker just freed.
		s.reqCancel.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			"the in-flight computation of this request was cancelled; retry")
	}
}

// writeWorldError renders a world fault as a structured 500.
func (s *Server) writeWorldError(w http.ResponseWriter, we *WorldError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusInternalServerError)
	w.Write(marshalLine(struct {
		Kind  string      `json:"kind"`
		Error *WorldError `json:"error"`
	}{"world_error", we}))
}

// runContext derives the world's context: the client's own context
// (disconnect = cancel), parented to the server's base context (drain
// sweeps it), bounded by the request or server deadline.
func (s *Server) runContext(r *http.Request, req *Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	cleanup := func() { stop(); cancel() }
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		var cancelD context.CancelFunc
		ctx, cancelD = context.WithDeadline(ctx, time.Now().Add(timeout))
		inner := cleanup
		cleanup = func() { cancelD(); inner() }
	}
	return ctx, cleanup
}

// leadFlight simulates the request's world, streaming rows to this
// client as epochs complete, and publishes the outcome to followers.
func (s *Server) leadFlight(w http.ResponseWriter, r *http.Request, req *Request, ws core.WorldSpec, digest string, fl *flight) {
	defer func() {
		s.mu.Lock()
		delete(s.flights, digest)
		s.mu.Unlock()
		close(fl.done)
	}()

	// Admission control: the bounded queue.  An arrival past the bound
	// is shed with 429 + Retry-After; its followers (if any joined in
	// the window) get the retry 503 through the flight.
	select {
	case s.waiters <- struct{}{}:
	default:
		s.reqShed.Inc()
		fl.err = errShed
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests,
			"queue full (%d waiting, %d workers)", cap(s.waiters), cap(s.workers))
		return
	}
	s.queueDepth.Set(int64(len(s.waiters)))
	defer func() {
		<-s.waiters
		s.queueDepth.Set(int64(len(s.waiters)))
	}()

	ctx, cancel := s.runContext(r, req)
	defer cancel()

	// Wait for a worker slot — still cancellable while queued.
	select {
	case s.workers <- struct{}{}:
		defer func() { <-s.workers }()
	case <-ctx.Done():
		s.reqCancel.Inc()
		fl.err = ctx.Err()
		return
	}

	emit := s.buildEmit(req)
	rowCh := make(chan Row, 64)
	type outcome struct {
		run core.FeedbackRun
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		run, err := s.exp.RunWorldCtx(ctx, ws, func(ep core.FeedbackEpoch) {
			emit(ep.Cycle)
			rowCh <- RowFromEpoch(ep)
		})
		close(rowCh)
		resCh <- outcome{run, err}
	}()

	// Stream rows as the world produces them.  The handler drains
	// continuously, so emit (called from the world's rank-0 goroutine)
	// never blocks for long; headers commit lazily at the first row so a
	// pre-row fault can still change the status line.
	flusher, _ := w.(http.Flusher)
	var rows []Row
	headered := false
	for row := range rowCh {
		if !headered {
			w.Header().Set("X-Plum-Cache", "miss")
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headered = true
		}
		rows = append(rows, row)
		w.Write(marshalLine(row))
		if flusher != nil {
			flusher.Flush()
		}
	}
	res := <-resCh

	switch {
	case res.err == nil:
		trailer := Trailer{Kind: "end", Rows: len(rows), SimTime: res.run.SimTime, Digest: digest}
		if !headered {
			w.Header().Set("X-Plum-Cache", "miss")
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Write(marshalLine(trailer))
		// The full body — what a cache hit or a follower will replay —
		// is exactly the bytes just streamed, by shared construction
		// through RenderBody.
		body := RenderBody(rows, res.run.SimTime, digest)
		fl.body, fl.rows, fl.simTime = body, len(rows), res.run.SimTime
		// Chaos bodies never enter the cache: an injected stall changes
		// no row, but serving a chaos result to future identical chaos
		// requests would hide the re-injection the tests rely on.
		if req.Chaos == "" {
			if err := s.cache.Put(req, body, len(rows), res.run.SimTime); err != nil {
				fmt.Fprintf(os.Stderr, "plumserve: cache put %s: %v\n", shortKey(digest), err)
			}
		}
		s.reqOK.Inc()

	case isCancel(res.err):
		s.reqCancel.Inc()
		fl.err = res.err
		if headered {
			// Mid-stream cancel: the status line is gone; close the body
			// with an explicit error line so the client can tell a
			// cancelled stream from a completed one.
			w.Write(marshalLine(struct {
				Kind  string `json:"kind"`
				Error string `json:"error"`
			}{"cancelled", res.err.Error()}))
		} else {
			httpError(w, statusForCancel(res.err), "run cancelled: %v", res.err)
		}

	default:
		we := classifyWorldErr(digest, res.err)
		fl.werr = we
		s.reqErr.Inc()
		if st := we.Stack(); len(st) > 0 {
			fmt.Fprintf(os.Stderr, "plumserve: %v\n%s\n", we, st)
		} else {
			fmt.Fprintf(os.Stderr, "plumserve: %v\n", we)
		}
		if headered {
			w.Write(marshalLine(struct {
				Kind  string      `json:"kind"`
				Error *WorldError `json:"error"`
			}{"world_error", we}))
		} else {
			s.writeWorldError(w, we)
		}
	}
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// statusForCancel maps a cancellation cause to its status: a deadline
// is the server refusing further work (504); a plain cancel means the
// client left or the server is draining (503).
func statusForCancel(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusServiceUnavailable
}

// Drain winds the daemon down: flip /readyz, refuse new runs, give
// in-flight worlds until ctx to finish, then cancel the stragglers
// cooperatively and wait for them to unwind, and finally flush the
// cache index.  Returns nil when everything completed, ctx.Err() when
// stragglers had to be cancelled.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-done // cooperative cancellation bounds this wait
	}
	s.cancelAll()
	if ferr := s.cache.Flush(); ferr != nil && err == nil {
		err = ferr
	}
	s.drainSeconds.Set(time.Since(start).Milliseconds())
	return err
}
