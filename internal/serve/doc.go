// Package serve is the fault-tolerant sweep-serving layer: it turns
// the deterministic experiment harness (internal/core) into a
// long-running HTTP daemon (cmd/plumserve) that accepts experiment
// requests, schedules each one as a hermetic simulated world on a
// bounded worker pool, and streams result rows back as epochs complete.
//
// The robustness substrate, piece by piece:
//
//   - Cancellation & deadlines: every request runs under a context
//     (client disconnect, per-request deadline, server drain) observed
//     at cooperative checkpoints inside the simulation — epoch
//     boundaries and solver-iteration boundaries (core.CollectiveStop)
//     — so abandoned work stops simulating instead of leaking
//     goroutines.  The checkpoints execute the same simulated
//     collectives whether or not they fire, so a served world and its
//     offline replay are bitwise identical.
//
//   - Fault isolation: a panicking world — a rank program bug, an
//     engine deadlock abort — is recovered (core world recovery over
//     the typed *msg.RankPanic / *msg.DeadlockError values) into a
//     *WorldError carrying the request key, the failing rank, and the
//     phase it died in, and returned as a structured 5xx body.  The
//     process never dies for a request.
//
//   - Admission control & back-pressure: a bounded queue sheds load
//     with 429 + Retry-After (derived from the observed world
//     wall-clock histogram), identical in-flight requests collapse to
//     one simulation (singleflight), and completed results land in a
//     crash-safe content-addressed on-disk cache (atomic temp+rename
//     writes, canonical-config and body-checksum verification on load,
//     corrupt entries quarantined, never trusted).  Determinism makes
//     the cache sound: a world's rows are a pure function of its
//     canonical request, which the golden/scenario/ledger tests pin.
//
//   - Graceful degradation: Drain stops admission (the /readyz probe
//     flips first, so a fronting balancer rotates the instance out),
//     lets in-flight worlds finish against a drain deadline, cancels
//     the stragglers cooperatively, and flushes the cache index.
//
// The package also owns the shared observability surface — /metrics,
// /runs, /spans, /diff, /healthz, /debug/pprof — mounted by both
// plumserve and plumbench -serve (ObsState.Register), so the two
// servers cannot drift.
package serve
