package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"plum/internal/obs"
)

// The crash-safe content-addressed result cache.  Soundness rests on
// the repo's determinism pillar: a world's response body is a pure
// function of its canonical request, so a body stored under the
// request's digest answers every future identical request — there is no
// invalidation problem, only an integrity problem.  Integrity is
// handled by never trusting the disk:
//
//   - Writes are atomic: body and metadata land in a temp file in the
//     cache directory, are fsynced, and rename(2) into place.  A crash
//     mid-write leaves a temp file (swept on open), never a half entry.
//   - Reads verify: the stored canonical request must equal the asking
//     request's canon (digest preimage check — a sha256 collision or a
//     hand-edited file cannot alias), and the stored body must hash to
//     the stored checksum.  Any mismatch, torn tail, or unparsable
//     metadata quarantines the entry (renamed aside with a .quarantine
//     suffix, kept for forensics) and reports a miss; the daemon then
//     recomputes and rewrites it.
//
// An entry is two files under the digest prefix:
//
//	<digest>.body   the exact response bytes (NDJSON rows + trailer)
//	<digest>.meta   JSON: canon, body sha256, row count, sim time
type Cache struct {
	dir string

	mu    sync.Mutex
	known map[string]cacheMeta // digest -> verified-at-load or written meta

	hits, misses, corrupt *obs.Counter
}

// cacheMeta is the sidecar metadata of one entry.
type cacheMeta struct {
	Canon   string  `json:"canon"`
	BodySHA string  `json:"body_sha256"`
	Rows    int     `json:"rows"`
	SimTime float64 `json:"sim_time"`
}

// OpenCache opens (creating if needed) the cache directory and sweeps
// the debris of interrupted writes.  dir == "" disables caching: every
// Get misses, every Put is dropped.
func OpenCache(dir string) (*Cache, error) {
	c := &Cache{
		dir:     dir,
		known:   make(map[string]cacheMeta),
		hits:    obs.Default.Counter("plumserve_cache_total", "result", "hit"),
		misses:  obs.Default.Counter("plumserve_cache_total", "result", "miss"),
		corrupt: obs.Default.Counter("plumserve_cache_total", "result", "corrupt"),
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	// A temp file is an interrupted write by definition (completed writes
	// renamed it away); sweeping keeps the directory listable forever.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	for _, t := range tmps {
		os.Remove(t)
	}
	return c, nil
}

// paths of the entry files for a digest.
func (c *Cache) bodyPath(digest string) string { return filepath.Join(c.dir, digest+".body") }
func (c *Cache) metaPath(digest string) string { return filepath.Join(c.dir, digest+".meta") }

// Get returns the stored body for the request, verifying the entry
// end to end.  ok reports a verified hit; a corrupt entry is
// quarantined and reported as a miss.
func (c *Cache) Get(req *Request) (body []byte, ok bool) {
	if c.dir == "" {
		c.misses.Inc()
		return nil, false
	}
	digest := req.Digest()
	mb, err := os.ReadFile(c.metaPath(digest))
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	var meta cacheMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		c.quarantine(digest, "unparsable metadata")
		return nil, false
	}
	if meta.Canon != req.Canonical() {
		// Digest preimage mismatch: the entry is not what its name claims.
		c.quarantine(digest, "canonical request mismatch")
		return nil, false
	}
	body, err = os.ReadFile(c.bodyPath(digest))
	if err != nil {
		c.quarantine(digest, "metadata without body")
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != meta.BodySHA {
		c.quarantine(digest, "body checksum mismatch")
		return nil, false
	}
	c.mu.Lock()
	c.known[digest] = meta
	c.mu.Unlock()
	c.hits.Inc()
	return body, true
}

// quarantine renames a failed entry's files aside (kept for forensics,
// out of the addressable namespace) and counts the corruption.
func (c *Cache) quarantine(digest, why string) {
	c.corrupt.Inc()
	for _, p := range []string{c.bodyPath(digest), c.metaPath(digest)} {
		if _, err := os.Stat(p); err == nil {
			os.Rename(p, p+".quarantine")
		}
	}
	fmt.Fprintf(os.Stderr, "plumserve: cache entry %s quarantined: %s\n", shortKey(digest), why)
	c.mu.Lock()
	delete(c.known, digest)
	c.mu.Unlock()
}

// Put stores a completed response body atomically.  Storage failure is
// non-fatal — the daemon can always recompute — so errors are returned
// for logging, not propagation to clients.
func (c *Cache) Put(req *Request, body []byte, rows int, simTime float64) error {
	if c.dir == "" {
		return nil
	}
	digest := req.Digest()
	sum := sha256.Sum256(body)
	meta := cacheMeta{
		Canon:   req.Canonical(),
		BodySHA: hex.EncodeToString(sum[:]),
		Rows:    rows,
		SimTime: simTime,
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	// Body first, then metadata: a crash between the two renames leaves a
	// body without metadata, which Get treats as a plain miss (the meta
	// file is the commit point).
	if err := atomicWrite(c.bodyPath(digest), body); err != nil {
		return err
	}
	if err := atomicWrite(c.metaPath(digest), append(mb, '\n')); err != nil {
		return err
	}
	c.mu.Lock()
	c.known[digest] = meta
	c.mu.Unlock()
	return nil
}

// atomicWrite lands data at path via temp + fsync + rename, so path
// either holds the complete bytes or its previous content.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// indexEntry is one line of the drain-time index.
type indexEntry struct {
	Digest  string  `json:"digest"`
	Rows    int     `json:"rows"`
	SimTime float64 `json:"sim_time"`
}

// Flush writes index.json — a sorted summary of every entry this
// process verified or wrote — via the same atomic path.  The index is
// documentation for operators (what is this cache holding?); Get never
// reads it, so a stale index cannot corrupt anything.
func (c *Cache) Flush() error {
	if c.dir == "" {
		return nil
	}
	c.mu.Lock()
	entries := make([]indexEntry, 0, len(c.known))
	for d, m := range c.known {
		entries = append(entries, indexEntry{Digest: d, Rows: m.Rows, SimTime: m.SimTime})
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Digest < entries[j].Digest })
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.Encode(entries)
	return atomicWrite(filepath.Join(c.dir, "index.json"), []byte(b.String()))
}
