package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Deterministic fault injection for the chaos harness.  A chaos spec
// rides inside the request, the injection executes inside the world's
// real emit path (on the rank-0 goroutine, while the world holds the
// engine), so an injected panic unwinds through the genuine
// RankPanic -> WorldPanic -> WorldError machinery and an injected stall
// consumes genuine host wall-clock against the request deadline —
// nothing is simulated about the failure, only its trigger.
//
// Grammar:
//
//	panic@N      panic on the rank-0 goroutine when epoch N's row emits
//	stall@N:MS   sleep MS host-milliseconds when epoch N's row emits

// chaosSpec is a parsed chaos request field.
type chaosSpec struct {
	kind    string // "panic" or "stall"
	epoch   int
	stallMS int
}

// parseChaos parses the grammar above.
func parseChaos(s string) (chaosSpec, error) {
	var cs chaosSpec
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return cs, fmt.Errorf("want kind@epoch, got %q", s)
	}
	cs.kind = kind
	switch kind {
	case "panic":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return cs, fmt.Errorf("want panic@N with N >= 0, got %q", s)
		}
		cs.epoch = n
	case "stall":
		epochStr, msStr, ok := strings.Cut(rest, ":")
		if !ok {
			return cs, fmt.Errorf("want stall@N:MS, got %q", s)
		}
		n, err1 := strconv.Atoi(epochStr)
		ms, err2 := strconv.Atoi(msStr)
		if err1 != nil || err2 != nil || n < 0 || ms < 0 || ms > 60_000 {
			return cs, fmt.Errorf("want stall@N:MS with N >= 0 and MS in [0, 60000], got %q", s)
		}
		cs.epoch, cs.stallMS = n, ms
	default:
		return cs, fmt.Errorf("unknown chaos kind %q (panic, stall)", kind)
	}
	return cs, nil
}

// buildEmit returns the per-epoch hook run inside the world before the
// row is forwarded: a no-op without chaos, the configured fault at its
// epoch with it.  The spec was validated at admission, so a parse
// failure here is impossible; the zero spec injects nothing.
func (s *Server) buildEmit(req *Request) func(epoch int) {
	if req.Chaos == "" || !s.cfg.Chaos {
		return func(int) {}
	}
	cs, err := parseChaos(req.Chaos)
	if err != nil {
		return func(int) {}
	}
	return func(epoch int) {
		if epoch != cs.epoch {
			return
		}
		switch cs.kind {
		case "panic":
			panic(fmt.Sprintf("chaos: injected panic at epoch %d", epoch))
		case "stall":
			time.Sleep(time.Duration(cs.stallMS) * time.Millisecond)
		}
	}
}
