package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"

	"plum/internal/event"
	"plum/internal/obs"
	"plum/internal/obs/diff"
)

// The shared host-plane observability surface.  Everything served here
// is host data — the metrics registry, run ledgers on disk, span
// streams, the Go profiler — so scraping it cannot perturb a simulated
// run in progress.  Both plumserve and plumbench -serve mount it
// through ObsState.Register:
//
//	/metrics        the obs registry, Prometheus text exposition
//	/runs           JSON listing of *.jsonl ledgers in the ledger dir
//	/spans          JSON summary of the span file (worlds, blame)
//	/diff           differential analysis vs ?base=<ledger in the dir>
//	/healthz        {"status":...} from the Health callback
//	/debug/pprof/*  the standard Go profiler endpoints

// ObsState names the artifacts the observability handlers serve.
type ObsState struct {
	Dir    string // directory listed by /runs ("" = current directory)
	Ledger string // current run's ledger, the "current" side of /diff ("" = none)
	Spans  string // span file served by /spans ("" = none)

	// Health returns the /healthz status string ("running", "done",
	// "draining", ...).  Nil reports "running" forever.
	Health func() string
}

// Register mounts the observability surface on mux.
func (o *ObsState) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/runs", o.handleRuns)
	mux.HandleFunc("/spans", o.handleSpans)
	mux.HandleFunc("/diff", o.handleDiff)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "running"
		if o.Health != nil {
			status = o.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// runsDir resolves the /runs listing directory.
func (o *ObsState) runsDir() string {
	if o.Dir != "" {
		return o.Dir
	}
	return "."
}

// RunEntry is one /runs listing line.
type RunEntry struct {
	File      string `json:"file"`
	Size      int64  `json:"size"`
	Epochs    int    `json:"epochs,omitempty"`
	Streaming bool   `json:"streaming,omitempty"` // no end record yet (run in progress)
	Error     string `json:"error,omitempty"`     // unreadable ledger
}

// handleRuns lists the ledgers in the ledger directory.  A ledger being
// written concurrently has no end record yet; the lenient reader
// reports the epochs flushed so far with Streaming set, so a live
// scrape sees progress instead of an error.
func (o *ObsState) handleRuns(w http.ResponseWriter, r *http.Request) {
	paths, _ := filepath.Glob(filepath.Join(o.runsDir(), "*.jsonl"))
	entries := []RunEntry{}
	for _, p := range paths {
		e := RunEntry{File: filepath.Base(p)}
		if fi, err := os.Stat(p); err == nil {
			e.Size = fi.Size()
		}
		if lf, trunc, err := obs.ReadLedgerFileLenient(p); err != nil {
			e.Error = err.Error()
		} else {
			e.Epochs = len(lf.Epochs)
			e.Streaming = trunc
		}
		entries = append(entries, e)
	}
	writeJSON(w, entries)
}

// SpanWorldEntry is one world stream of the /spans response: the stream
// header plus the bounded per-epoch blame summaries — never the spans
// themselves, which may number millions.
type SpanWorldEntry struct {
	Label      map[string]string  `json:"label,omitempty"`
	P          int                `json:"p"`
	Ring       int                `json:"ring"`
	Sample     int                `json:"sample"`
	Spans      int                `json:"spans"`
	Epochs     int                `json:"epochs"`
	SampledOut int64              `json:"sampled_out,omitempty"`
	Complete   bool               `json:"complete"`
	Blame      []event.EpochBlame `json:"blame,omitempty"`
}

// handleSpans summarizes the span file.  The reader tolerates a file
// still being appended to (incomplete trailing stream), so live scrapes
// during a run see every world flushed so far.
func (o *ObsState) handleSpans(w http.ResponseWriter, r *http.Request) {
	if o.Spans == "" {
		http.Error(w, "no span file for this run", http.StatusNotFound)
		return
	}
	worlds, err := event.ReadSpansFile(o.Spans)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	entries := make([]SpanWorldEntry, len(worlds))
	for i, sw := range worlds {
		entries[i] = SpanWorldEntry{
			Label: sw.Label, P: sw.P, Ring: sw.Ring, Sample: sw.Sample,
			Spans: len(sw.Spans), Epochs: sw.Epochs,
			SampledOut: sw.SampledOut, Complete: sw.Complete,
			Blame: sw.Blame,
		}
	}
	writeJSON(w, entries)
}

// handleDiff runs an exact differential analysis of this run's ledger
// against a base ledger from the same directory:
//
//	/diff?base=<file>&format=text|md|json
//
// The base is confined to the ledger directory (a bare file name, as
// listed by /runs) so the endpoint cannot read arbitrary paths.  Both
// sides read leniently — diffing against a run still in progress
// compares the epochs flushed so far.
func (o *ObsState) handleDiff(w http.ResponseWriter, r *http.Request) {
	if o.Ledger == "" {
		http.Error(w, "no run ledger to diff against", http.StatusNotFound)
		return
	}
	base := r.URL.Query().Get("base")
	if base == "" {
		http.Error(w, "missing ?base=<ledger file> (see /runs for candidates)", http.StatusBadRequest)
		return
	}
	if base != filepath.Base(base) || base == "." || base == ".." {
		http.Error(w, "base must be a bare file name in the ledger directory", http.StatusBadRequest)
		return
	}
	basePath := filepath.Join(o.runsDir(), base)
	rep, err := diff.LedgerFiles(basePath, o.Ledger, true, diff.Options{Metrics: true})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
	case "md":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		rep.WriteMarkdown(w)
	case "json":
		writeJSON(w, rep)
	default:
		http.Error(w, "format must be text, md, or json", http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
