package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"plum/internal/core"
	"plum/internal/obs"
	"plum/internal/scenario"
)

// The request schema of POST /run.  A request names one simulated
// world; its canonical encoding is the content address of the result,
// so two requests with equal canon are answered by one simulation ever
// (singleflight while in flight, the result cache afterwards).  Every
// field with simulated meaning is part of the canon; host-plane knobs
// (timeout, chaos injection) are excluded — except chaos, which is
// deliberately included so an injected-fault run can never answer a
// clean request.

// Request is the JSON body of POST /run.
type Request struct {
	// P is the simulated processor count (default 8).
	P int `json:"p,omitempty"`
	// Cycles is the number of adapt-balance-solve epochs (default 4);
	// one result row streams back per completed epoch.
	Cycles int `json:"cycles,omitempty"`
	// Model selects the machine topology: flat, smp, fattree, hetero,
	// or empty for the uniform SP2.
	Model string `json:"model,omitempty"`
	// Mapper selects processor reassignment: heu (default), opt, bmcm,
	// or topo.
	Mapper string `json:"mapper,omitempty"`
	// Workload selects the solver between adaptions: implicit (default)
	// or explicit.
	Workload string `json:"workload,omitempty"`
	// Measured prices each epoch's gain/cost decision from the previous
	// epoch's measured profile instead of the analytic model.
	Measured bool `json:"measured,omitempty"`
	// Frac / CoarsenBelow tune the refinement dynamics (zero: the
	// feedback experiment's defaults).
	Frac         float64 `json:"frac,omitempty"`
	CoarsenBelow float64 `json:"coarsen_below,omitempty"`
	// Seed phase-shifts the moving-feature indicator deterministically;
	// distinct seeds are distinct simulations.
	Seed int64 `json:"seed,omitempty"`
	// Scenario runs a named workload spec from the server's corpus
	// instead of the moving-shock dynamics; P, Cycles, Model, Mapper,
	// Frac, and CoarsenBelow then come from the spec and must be left
	// zero here.
	Scenario string `json:"scenario,omitempty"`

	// TimeoutSeconds is the per-request simulation deadline (host
	// seconds; 0 = the server default).  Not part of the canon: it
	// bounds how long the answer may take, not what the answer is.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Chaos injects a deterministic fault for robustness testing and is
	// refused unless the server runs with chaos enabled:
	//
	//	panic@N     panic inside the world when epoch N completes
	//	stall@N:MS  sleep MS host-milliseconds at epoch N (deadline fuel)
	Chaos string `json:"chaos,omitempty"`
}

// ParseRequest decodes a strict request body: unknown fields, type
// mismatches, and trailing data are errors (a daemon must not guess).
func ParseRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	req := new(Request)
	if err := dec.Decode(req); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the request object")
	}
	return req, nil
}

// normalize applies defaults in place.
func (r *Request) normalize() {
	if r.Scenario != "" {
		return // the spec supplies everything
	}
	if r.P == 0 {
		r.P = 8
	}
	if r.Cycles == 0 {
		r.Cycles = 4
	}
	if r.Mapper == "" {
		r.Mapper = "heu"
	}
	if r.Workload == "" {
		r.Workload = "implicit"
	}
}

// mapperByName mirrors the scenario loader's mapper naming.
func mapperByName(name string) (core.Mapper, error) {
	switch name {
	case "heu":
		return core.MapHeuristic, nil
	case "opt":
		return core.MapOptMWBG, nil
	case "bmcm":
		return core.MapOptBMCM, nil
	case "topo":
		return core.MapTopo, nil
	}
	return 0, fmt.Errorf("unknown mapper %q (heu, opt, bmcm, topo)", name)
}

// Spec validates the request and resolves it to a runnable WorldSpec.
// scenarios is the server's loaded corpus (nil when none).
func (r *Request) Spec(scenarios map[string]*scenario.Spec) (core.WorldSpec, error) {
	r.normalize()
	var ws core.WorldSpec
	if r.Scenario != "" {
		sp, ok := scenarios[r.Scenario]
		if !ok {
			names := make([]string, 0, len(scenarios))
			for n := range scenarios {
				names = append(names, n)
			}
			return ws, fmt.Errorf("unknown scenario %q; corpus: %s",
				r.Scenario, strings.Join(sortedNames(names), ", "))
		}
		if r.P != 0 || r.Cycles != 0 || r.Model != "" || r.Mapper != "" ||
			r.Workload != "" || r.Frac != 0 || r.CoarsenBelow != 0 {
			return ws, fmt.Errorf("a scenario request takes its world shape from the spec;" +
				" leave p, cycles, model, mapper, workload, frac, and coarsen_below unset")
		}
		ws = core.WorldSpec{Scenario: sp, Measured: r.Measured, Seed: r.Seed}
		return ws, ws.Validate()
	}
	mapper, err := mapperByName(r.Mapper)
	if err != nil {
		return ws, err
	}
	var workload core.Workload
	switch r.Workload {
	case "explicit":
		workload = core.WorkloadExplicit
	case "implicit":
		workload = core.WorkloadImplicit
	default:
		return ws, fmt.Errorf("unknown workload %q (explicit, implicit)", r.Workload)
	}
	ws = core.WorldSpec{
		P:            r.P,
		Cycles:       r.Cycles,
		Model:        r.Model,
		Mapper:       mapper,
		Workload:     workload,
		Measured:     r.Measured,
		Frac:         r.Frac,
		CoarsenBelow: r.CoarsenBelow,
		Seed:         r.Seed,
	}
	return ws, ws.Validate()
}

// Canonical is the request's content address source: a stable, ordered
// rendering of every simulated-meaning field (after defaults), prefixed
// with the ledger schema version — the same canon discipline as the
// ledger manifest's config digest, so a schema bump invalidates cached
// results exactly like it invalidates committed baselines.
func (r *Request) Canonical() string {
	r.normalize()
	canon := fmt.Sprintf("v%d|serve|p=%d|cycles=%d|model=%s|mapper=%s|workload=%s|measured=%v|frac=%g|coarsen=%g|seed=%d",
		obs.SchemaVersion, r.P, r.Cycles, r.Model, r.Mapper, r.Workload,
		r.Measured, r.Frac, r.CoarsenBelow, r.Seed)
	if r.Scenario != "" {
		canon += "|scenario=" + r.Scenario
	}
	if r.Chaos != "" {
		canon += "|chaos=" + r.Chaos
	}
	return canon
}

// Digest is the hex content address of the request (sha256 of the
// canonical encoding): the cache key, the singleflight key, and the
// run key of every error the request produces.
func (r *Request) Digest() string {
	sum := sha256.Sum256([]byte(r.Canonical()))
	return hex.EncodeToString(sum[:])
}

func sortedNames(names []string) []string {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// ---------------------------------------------------------------------
// The response stream.

// Row is one streamed result line: a completed adaption epoch.  Rows
// stream back as epochs complete, newline-delimited JSON, in cycle
// order.
type Row struct {
	Kind         string  `json:"kind"` // always "epoch"
	Cycle        int     `json:"cycle"`
	Balanced     bool    `json:"balanced"`
	Accepted     bool    `json:"accepted"`
	Measured     bool    `json:"measured"` // decision priced from a profile
	Gain         float64 `json:"gain"`
	Cost         float64 `json:"cost"`
	TotalV       int64   `json:"total_v"`
	MaxV         int64   `json:"max_v"`
	Elems        int     `json:"elems"`
	SolveSeconds float64 `json:"solve_seconds"`
}

// Trailer is the final line of a successful response: the row count, the
// end-to-end simulated makespan, and the request digest the result is
// content-addressed under.  Deliberately free of host-plane facts
// (cache hit/miss travels in the X-Plum-Cache header) so response
// bodies are byte-identical however they were produced.
type Trailer struct {
	Kind    string  `json:"kind"` // always "end"
	Rows    int     `json:"rows"`
	SimTime float64 `json:"sim_time"`
	Digest  string  `json:"digest"`
}

// RowFromEpoch flattens one epoch into its wire row.
func RowFromEpoch(ep core.FeedbackEpoch) Row {
	return Row{
		Kind:         "epoch",
		Cycle:        ep.Cycle,
		Balanced:     ep.Balanced,
		Accepted:     ep.Accepted,
		Measured:     ep.Measured,
		Gain:         ep.Gain,
		Cost:         ep.Cost,
		TotalV:       ep.TotalV,
		MaxV:         ep.MaxV,
		Elems:        ep.Elems,
		SolveSeconds: ep.SolveTime,
	}
}

// marshalLine renders one NDJSON line.  json.Marshal over these fixed
// struct shapes cannot fail; a failure is a programming error.
func marshalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal %T: %v", v, err))
	}
	return append(b, '\n')
}

// RenderBody renders the full success body for a row set: one line per
// row plus the trailer.  The streaming handler emits exactly these
// bytes line by line, the cache verifies its entries against their
// sha256, and the offline replay (plumserve -oneshot) prints them — one
// definition, three consumers, byte-identical by construction.
func RenderBody(rows []Row, simTime float64, digest string) []byte {
	var b []byte
	for _, r := range rows {
		b = append(b, marshalLine(r)...)
	}
	b = append(b, marshalLine(Trailer{Kind: "end", Rows: len(rows), SimTime: simTime, Digest: digest})...)
	return b
}
