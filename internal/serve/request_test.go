package serve

import (
	"strings"
	"testing"
)

func TestParseRequestStrict(t *testing.T) {
	for _, bad := range []string{
		`{"p":4,"cycels":2}`, // misspelled field
		`{"p":"four"}`,       // type mismatch
		`{"p":4}{"p":8}`,     // trailing object
		`{"p":4} garbage`,    // trailing junk
		`[1,2,3]`,            // not an object
		`{"p":4,"unknown":"field"}`,
	} {
		if _, err := ParseRequest(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRequest accepted %q", bad)
		}
	}
	req, err := ParseRequest(strings.NewReader(`{"p":4,"cycles":2,"mapper":"opt"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.P != 4 || req.Cycles != 2 || req.Mapper != "opt" {
		t.Errorf("parsed %+v", req)
	}
}

func TestRequestDigest(t *testing.T) {
	// Defaults are canonical: the empty request and its spelled-out form
	// share an address.
	a := (&Request{}).Digest()
	b := (&Request{P: 8, Cycles: 4, Mapper: "heu", Workload: "implicit"}).Digest()
	if a != b {
		t.Error("defaulted and spelled-out requests got different digests")
	}
	if len(a) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(a))
	}
	// Every simulated-meaning field moves the address; timeout does not.
	base := Request{P: 4, Cycles: 2}
	for name, r := range map[string]Request{
		"seed":     {P: 4, Cycles: 2, Seed: 1},
		"cycles":   {P: 4, Cycles: 3},
		"measured": {P: 4, Cycles: 2, Measured: true},
		"chaos":    {P: 4, Cycles: 2, Chaos: "panic@0"},
		"scenario": {Scenario: "x"},
	} {
		if r.Digest() == base.Digest() {
			t.Errorf("%s did not change the digest", name)
		}
	}
	to := Request{P: 4, Cycles: 2, TimeoutSeconds: 9}
	if to.Digest() != base.Digest() {
		t.Error("timeout_seconds changed the digest: a host-plane knob leaked into the canon")
	}
}

func TestRequestSpecValidation(t *testing.T) {
	for name, body := range map[string]string{
		"bad mapper":        `{"mapper":"nope"}`,
		"bad workload":      `{"workload":"quantum"}`,
		"p out of range":    `{"p":9999}`,
		"unknown scenario":  `{"scenario":"missing"}`,
		"scenario plus p":   `{"scenario":"s","p":4}`,
		"scenario and seed": `{"scenario":"s","seed":3}`,
	} {
		req, err := ParseRequest(strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := req.Spec(nil); err == nil {
			t.Errorf("%s: Spec accepted %s", name, body)
		}
	}
}

func TestParseChaos(t *testing.T) {
	good := map[string]chaosSpec{
		"panic@0":     {kind: "panic", epoch: 0},
		"panic@3":     {kind: "panic", epoch: 3},
		"stall@1:250": {kind: "stall", epoch: 1, stallMS: 250},
		"stall@0:0":   {kind: "stall"},
	}
	for s, want := range good {
		got, err := parseChaos(s)
		if err != nil || got != want {
			t.Errorf("parseChaos(%q) = %+v, %v; want %+v", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "panic", "panic@", "panic@-1", "stall@1", "stall@1:999999", "explode@2", "panic@x"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos accepted %q", bad)
		}
	}
}

func TestRenderBodyShape(t *testing.T) {
	body := RenderBody([]Row{{Kind: "epoch", Cycle: 0}}, 2.5, "abc")
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[1], `"kind":"end"`) || !strings.Contains(lines[1], `"rows":1`) {
		t.Errorf("trailer %q", lines[1])
	}
}
