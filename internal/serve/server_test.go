package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"plum/internal/core"
	"plum/internal/obs"
)

// The deterministic chaos harness: injected panics, slow-world stalls,
// cancel storms, and corrupted cache entries driven against a live
// server, asserting the daemon's availability invariants — clean
// requests succeed around faults, the process never dies, goroutines
// never leak, and every 200 body is byte-identical to the offline run
// of the same request.

// sharedExp builds the experiment harness once for the whole package;
// RunWorldCtx is read-only over it, so every test server can share it.
var (
	expOnce sync.Once
	expVal  *core.Experiments
)

func sharedExp() *core.Experiments {
	expOnce.Do(func() { expVal = core.NewExperiments(false) })
	return expVal
}

// newTestServer boots a server over httptest with chaos enabled and a
// per-test cache directory.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{CacheDir: t.TempDir(), Chaos: true}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := NewServer(sharedExp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// post sends a request body and returns the response with its body read.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// counter reads a labelled counter from the process-global registry.
func counter(name string, labels ...string) float64 {
	return obs.Default.Value(name, labels...)
}

func TestServeByteIdentityAndCache(t *testing.T) {
	_, hs := newTestServer(t, nil)
	const reqBody = `{"p":4,"cycles":2,"seed":11}`

	resp, served := post(t, hs.URL, reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, served)
	}
	if got := resp.Header.Get("X-Plum-Cache"); got != "miss" {
		t.Errorf("first request X-Plum-Cache = %q, want miss", got)
	}

	// The offline oracle: the same request through the same runner and
	// renderer, no daemon involved.
	req, err := ParseRequest(strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := req.Spec(nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	run, err := sharedExp().RunWorldCtx(context.Background(), ws, func(ep core.FeedbackEpoch) {
		rows = append(rows, RowFromEpoch(ep))
	})
	if err != nil {
		t.Fatal(err)
	}
	offline := RenderBody(rows, run.SimTime, req.Digest())
	if !bytes.Equal(served, offline) {
		t.Fatalf("served body differs from the offline run:\nserved:  %s\noffline: %s", served, offline)
	}

	// Second request: a verified cache hit, byte-identical again.
	resp2, cached := post(t, hs.URL, reqBody)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Plum-Cache") != "hit" {
		t.Fatalf("second request: status %d, cache %q", resp2.StatusCode, resp2.Header.Get("X-Plum-Cache"))
	}
	if !bytes.Equal(cached, served) {
		t.Fatal("cache hit body differs from the originally served bytes")
	}
}

func TestServeCorruptCacheRecomputes(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	const reqBody = `{"p":4,"cycles":1,"seed":12}`
	_, first := post(t, hs.URL, reqBody)

	// Flip a bit in the stored body, as a crash or disk fault would.
	req, _ := ParseRequest(strings.NewReader(reqBody))
	bp := srv.Cache().bodyPath(req.Digest())
	b, err := os.ReadFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x20
	os.WriteFile(bp, b, 0o644)

	corruptBefore := counter("plumserve_cache_total", "result", "corrupt")
	resp, second := post(t, hs.URL, reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after corruption", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Plum-Cache"); got != "miss" {
		t.Errorf("corrupt entry served as %q, want miss (recompute)", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("recomputed body differs from the original")
	}
	if d := counter("plumserve_cache_total", "result", "corrupt") - corruptBefore; d != 1 {
		t.Errorf("corrupt counter moved by %v, want 1", d)
	}
	// The damaged files were quarantined, and the healed entry now hits.
	if m, _ := filepath.Glob(filepath.Join(srv.cache.dir, "*.quarantine")); len(m) == 0 {
		t.Error("no quarantine files after corruption")
	}
	resp3, _ := post(t, hs.URL, reqBody)
	if resp3.Header.Get("X-Plum-Cache") != "hit" {
		t.Error("healed entry did not hit")
	}
}

func TestServeSingleflightCollapse(t *testing.T) {
	_, hs := newTestServer(t, nil)
	// The stall keeps the leader in flight long enough that the
	// duplicates must join it; chaos requests are never cached, so every
	// run of this test exercises the collapse, not the cache.
	const reqBody = `{"p":4,"cycles":1,"seed":13,"chaos":"stall@0:500"}`
	const dup = 4

	worldsBefore := counter("plum_worlds_started_total")
	leadersBefore := counter("plumserve_singleflight_total", "role", "leader")
	followersBefore := counter("plumserve_singleflight_total", "role", "follower")

	var wg sync.WaitGroup
	bodies := make([][]byte, dup)
	codes := make([]int, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(reqBody))
			if err != nil {
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i := 0; i < dup; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if d := counter("plum_worlds_started_total") - worldsBefore; d != 1 {
		t.Errorf("%v worlds simulated for %d identical requests, want exactly 1", d, dup)
	}
	if d := counter("plumserve_singleflight_total", "role", "leader") - leadersBefore; d != 1 {
		t.Errorf("leaders delta %v, want 1", d)
	}
	if d := counter("plumserve_singleflight_total", "role", "follower") - followersBefore; d != float64(dup-1) {
		t.Errorf("followers delta %v, want %d", d, dup-1)
	}
}

func TestServeInjectedPanicIsolated(t *testing.T) {
	_, hs := newTestServer(t, nil)

	// A clean request first, the fault, then clean again: availability
	// around the fault is the assertion.
	okBody := fmt.Sprintf(`{"p":4,"cycles":1,"seed":%d}`, 14)
	if resp, b := post(t, hs.URL, okBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-fault request: status %d: %s", resp.StatusCode, b)
	}

	resp, body := post(t, hs.URL, `{"p":4,"cycles":1,"seed":14,"chaos":"panic@0"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500: %s", resp.StatusCode, body)
	}
	var wire struct {
		Kind  string      `json:"kind"`
		Error *WorldError `json:"error"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("5xx body is not structured JSON: %v: %s", err, body)
	}
	if wire.Kind != "world_error" || wire.Error == nil {
		t.Fatalf("wire shape %+v", wire)
	}
	if wire.Error.Kind != "panic" || wire.Error.Rank != 0 {
		t.Errorf("fault attribution %+v, want panic on rank 0", wire.Error)
	}
	if len(wire.Error.Key) != 64 {
		t.Errorf("fault key %q is not a content address", wire.Error.Key)
	}

	if resp, b := post(t, hs.URL, okBody); resp.StatusCode != http.StatusOK ||
		resp.Header.Get("X-Plum-Cache") != "hit" {
		t.Fatalf("post-fault request: status %d cache %q: %s",
			resp.StatusCode, resp.Header.Get("X-Plum-Cache"), b)
	}
}

func TestServeDeadlineBeforeFirstRow(t *testing.T) {
	_, hs := newTestServer(t, nil)
	// A microscopic deadline expires before the first epoch closes, so
	// the cancellation surfaces as a status line, not a mid-stream line.
	resp, body := post(t, hs.URL, `{"p":4,"cycles":1,"seed":15,"timeout_seconds":0.001}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

func TestServeBackpressureSheds(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.Workers = 1; c.Queue = 1 })

	// Four distinct slow requests against one worker and one queue slot:
	// at least one must shed with 429 + Retry-After.
	var wg sync.WaitGroup
	codes := make([]int, 4)
	retryAfter := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"p":4,"cycles":1,"seed":%d,"chaos":"stall@0:400"}`, 100+i)
			resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	shed, ok := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
			if sec, err := strconv.Atoi(retryAfter[i]); err != nil || sec < 1 {
				t.Errorf("shed response %d: Retry-After %q, want a positive integer", i, retryAfter[i])
			}
		case http.StatusOK:
			ok++
		}
	}
	if shed == 0 {
		t.Errorf("no request shed: codes %v", codes)
	}
	if ok == 0 {
		t.Errorf("no request served: codes %v", codes)
	}
}

func TestServeCancelStormNoLeak(t *testing.T) {
	_, hs := newTestServer(t, nil)
	base := runtime.NumGoroutine()

	// A storm of clients that vanish mid-run: each request's context is
	// cancelled while its world simulates.  The worlds must wind down
	// cooperatively, leaving no goroutines behind.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
			defer cancel()
			body := fmt.Sprintf(`{"p":4,"cycles":8,"seed":%d}`, 200+i)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/run", strings.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	// All three worlds must exit; settle before counting.
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after cancel storm: %d vs base %d\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The daemon still serves.
	if resp, b := post(t, hs.URL, `{"p":4,"cycles":1,"seed":16}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request: status %d: %s", resp.StatusCode, b)
	}
}

func TestServeDrain(t *testing.T) {
	srv, hs := newTestServer(t, nil)

	if resp, err := http.Get(hs.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// A slow request in flight when the drain begins must complete with
	// its full body — drain waits, it does not kill.
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/run", "application/json",
			strings.NewReader(`{"p":4,"cycles":1,"seed":17,"chaos":"stall@0:600"}`))
		if err != nil {
			inflight <- result{}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{resp.StatusCode, b}
	}()
	time.Sleep(200 * time.Millisecond) // let it enter the world

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()

	// readyz flips promptly, well before the in-flight world finishes.
	flipDeadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(flipDeadline) {
			t.Fatal("readyz did not flip to 503 during drain")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// New work is refused while draining.
	if resp, _ := post(t, hs.URL, `{"p":4,"cycles":1,"seed":18}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain: status %d, want 503", resp.StatusCode)
	}

	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", r.code, r.body)
	}
	if !bytes.Contains(r.body, []byte(`"kind":"end"`)) {
		t.Fatalf("in-flight body incomplete: %s", r.body)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The cache index flushed on the way out.
	if _, err := os.Stat(filepath.Join(srv.cache.dir, "index.json")); err != nil {
		t.Errorf("no cache index after drain: %v", err)
	}
}

func TestServeChaosRefusedWhenDisabled(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.Chaos = false })
	resp, _ := post(t, hs.URL, `{"p":4,"cycles":1,"chaos":"panic@0"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("chaos on a production server: status %d, want 403", resp.StatusCode)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, hs := newTestServer(t, nil)
	for body, want := range map[string]int{
		`{"p":4,"cycels":2}`:     http.StatusBadRequest,
		`{"p":-1}`:               http.StatusBadRequest,
		`{"mapper":"nope"}`:      http.StatusBadRequest,
		`{"chaos":"explode@2"}`:  http.StatusBadRequest,
		`{"scenario":"missing"}`: http.StatusBadRequest,
	} {
		if resp, b := post(t, hs.URL, body); resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d: %s", body, resp.StatusCode, want, b)
		}
	}
	resp, err := http.Get(hs.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}
