package serve

import (
	"errors"
	"fmt"

	"plum/internal/core"
	"plum/internal/msg"
)

// WorldError is the fault-isolation boundary's public face: one
// request's world died, and this is everything the client needs to file
// a useful report — the content address of the run (Key), what kind of
// death it was, and, when a single rank's program panicked, which rank
// and in which phase of the adapt-balance-solve cycle.
//
// A WorldError is always the recovered form of a world fault: the
// process served every other request throughout.
type WorldError struct {
	Key      string `json:"key"`             // request digest (the run's content address)
	Kind     string `json:"kind"`            // "panic" or "deadlock"
	Rank     int    `json:"rank"`            // failing rank (panic only; -1 otherwise)
	Phase    string `json:"phase,omitempty"` // simulated phase the rank died in (panic only)
	Ranks    []int  `json:"ranks,omitempty"` // blocked ranks (deadlock only)
	Detail   string `json:"detail"`          // the panic value / deadlock description
	hasStack []byte // rank stack, logged server-side, never sent to clients
}

func (we *WorldError) Error() string {
	if we.Kind == "deadlock" {
		return fmt.Sprintf("serve: world %s deadlocked: ranks %v", shortKey(we.Key), we.Ranks)
	}
	if we.Phase != "" {
		return fmt.Sprintf("serve: world %s: rank %d panicked in %s: %s",
			shortKey(we.Key), we.Rank, we.Phase, we.Detail)
	}
	return fmt.Sprintf("serve: world %s panicked: %s", shortKey(we.Key), we.Detail)
}

// shortKey abbreviates a content address for log lines.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// Stack returns the failing rank's stack for server-side logging.
func (we *WorldError) Stack() []byte { return we.hasStack }

// classifyWorldErr maps a runner error onto the wire taxonomy.  The
// typed chain it unpacks: runWorldsErr recovers any world panic into
// *core.WorldPanic, whose value — when the death started inside the
// message-passing world — is a *msg.RankPanic (rank program panic,
// engine-attributed rank and phase) or *msg.DeadlockError (every
// runnable rank blocked in Recv).  Anything else (a panic outside the
// world machinery, an arbitrary error) degrades to an attributed
// "panic" with rank -1.
func classifyWorldErr(key string, err error) *WorldError {
	we := &WorldError{Key: key, Kind: "panic", Rank: -1, Detail: err.Error()}
	var wp *core.WorldPanic
	if errors.As(err, &wp) {
		we.hasStack = wp.Stack
		we.Detail = fmt.Sprint(wp.Value)
		switch v := wp.Value.(type) {
		case *msg.RankPanic:
			we.Rank = v.Rank
			we.Phase = v.Phase.String()
			we.Detail = fmt.Sprint(v.Value)
			we.hasStack = v.Stack
		case *msg.DeadlockError:
			we.Kind = "deadlock"
			we.Ranks = v.Ranks
			we.Detail = v.Error()
		}
	}
	return we
}
