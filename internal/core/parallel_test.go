package core

import (
	"runtime"
	"testing"
)

// The parallel-world harness must be invisible in the results: every
// world is deterministic in isolation (the event engine's guarantee),
// each world owns its machine instance, and rows land in loop-order
// slots — so a sweep's output must be byte-for-byte the serial sweep's,
// whatever GOMAXPROCS is and however many worlds run at once.

// sweepRows runs a reduced machine sweep (two contended topologies,
// both mappers) and returns the rows.
func sweepRows(t *testing.T) []MachineRow {
	t.Helper()
	e := NewExperiments(false)
	e.Ps = []int{4, 8}
	return e.MachineSweep(0.33, []string{"smp", "fattree"}, MachineMappers())
}

// TestMachineSweepDeterministicAcrossGOMAXPROCS: the concurrent sweep's
// rows — simulated times included — are identical at GOMAXPROCS 1
// (serial fallback) and 8 (worlds genuinely interleaved).
func TestMachineSweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := sweepRows(t)
	runtime.GOMAXPROCS(8)
	parallel := sweepRows(t)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d diverged:\n  serial:   %+v\n  parallel: %+v",
				i, serial[i], parallel[i])
		}
	}
}

// TestScalingSpeedupBaselines: the post-barrier speedup derivation uses
// each (case, ordering) series' own P=1 baseline, exactly like the
// serial sweep's running variable did.
func TestScalingSpeedupBaselines(t *testing.T) {
	e := NewExperiments(false)
	e.Ps = []int{1, 4}
	e.Cases = e.Cases[:2]
	rows := e.Scaling()
	if len(rows) != 2*2*2 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		p1, p4 := rows[i], rows[i+1]
		if p1.P != 1 || p4.P != 4 {
			t.Fatalf("row order broken: %+v", rows)
		}
		if p1.Speedup != 1 {
			t.Errorf("series %d: P=1 speedup = %v, want 1", i/2, p1.Speedup)
		}
		if p4.AdaptTime > 0 && p1.AdaptTime > 0 {
			want := p1.AdaptTime / p4.AdaptTime
			if p4.Speedup != want {
				t.Errorf("series %d: P=4 speedup = %v, want %v (own-series baseline)",
					i/2, p4.Speedup, want)
			}
		}
	}
}

// TestFeedbackComparisonParallelPairs: the pair slots are filled by the
// right (model, mode) worlds when they run concurrently.
func TestFeedbackComparisonParallelPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("feedback pair sweep is slow")
	}
	e := NewExperiments(false)
	pairs := e.FeedbackComparison(4, 2, []string{"smp"})
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1", len(pairs))
	}
	pr := pairs[0]
	if pr.Analytic.Model != "smp" || pr.Measured.Model != "smp" {
		t.Fatalf("models: analytic %q, measured %q", pr.Analytic.Model, pr.Measured.Model)
	}
	if pr.Analytic.Measured || !pr.Measured.Measured {
		t.Errorf("pricing modes landed in the wrong slots: %+v / %+v",
			pr.Analytic.Measured, pr.Measured.Measured)
	}
	if len(pr.Analytic.Epochs) != 2 || len(pr.Measured.Epochs) != 2 {
		t.Errorf("epoch counts: %d / %d, want 2 / 2",
			len(pr.Analytic.Epochs), len(pr.Measured.Epochs))
	}
}
