package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// The serving-path contracts: runWorldsErr's panic containment,
// runWorldsCtx's admission gating, cooperative cancellation through
// RunWorldCtx (no goroutine leaks, partial rows intact), the mid-epoch
// stop checkpoint, and the determinism the result cache rests on.

func TestRunWorldsErrRecoversPanic(t *testing.T) {
	err := runWorldsErr(4, func(i int) error {
		if i == 2 {
			panic("world bug")
		}
		return nil
	})
	var wp *WorldPanic
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v (%T), want *WorldPanic", err, err)
	}
	if wp.World != 2 {
		t.Errorf("World = %d, want 2", wp.World)
	}
	if wp.Value != "world bug" {
		t.Errorf("Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 || !strings.Contains(string(wp.Stack), "goroutine") {
		t.Errorf("missing goroutine stack, got %q", wp.Stack)
	}
}

func TestRunWorldsErrUnwrapsErrorPanics(t *testing.T) {
	sentinel := errors.New("typed failure")
	err := runWorldsErr(1, func(int) error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false; err = %v", err)
	}
}

func TestRunWorldsCtxGatesAdmission(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := runWorldsCtx(ctx, 8, func(int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d worlds started under a cancelled context", ran)
	}
}

// TestUnsteadyStopMidEpoch pins the mid-epoch checkpoint semantics
// deterministically: with NAdapt=20 and the default cadence of 8, the
// checkpoints fall after iterations 8 and 16; a hook that fires on its
// second consultation stops the cycle at iteration 16, collectively, on
// every rank.
func TestUnsteadyStopMidEpoch(t *testing.T) {
	const p = 4
	global := mesh.Box(8, 6, 4, 2.4, 1.8, 1.2)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := DefaultConfig()
	cfg.NAdapt = 20
	cfg.ForceAccept = false

	run := func(hook func() bool) (stopped bool, work int) {
		msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
			d := pmesh.New(c, global, initPart, solver.NComp)
			u := NewUnsteady(d, g, cfg)
			u.Frac = 0.12
			u.Indicator = func(int) func(mesh.Vec3) float64 {
				return adapt.ShockCylinderIndicator(
					mesh.Vec3{1.0, 0.9, 0}, mesh.Vec3{0, 0, 1}, 0.3, 0.15)
			}
			u.Stop = hook
			u.PS.InitParallel(solver.GaussianPulse(mesh.Vec3{1.2, 0.9, 0.6}, 0.4))
			cs := u.Cycle()
			if c.Rank() == 0 {
				stopped, work = cs.Stopped, cs.SolverWork
			}
		})
		return
	}

	calls := 0
	stopped, partialWork := run(func() bool { calls++; return calls >= 2 })
	if !stopped {
		t.Fatal("second-checkpoint hook did not stop the cycle")
	}
	fullStopped, fullWork := run(func() bool { return false })
	if fullStopped {
		t.Fatal("never-firing hook stopped the cycle")
	}
	if partialWork >= fullWork {
		t.Errorf("stopped cycle did %d work, full cycle %d — stop saved nothing", partialWork, fullWork)
	}
}

// settleGoroutines polls until the goroutine count returns to within
// slack of base (world teardown is asynchronous only in that the
// spawning goroutine observes completion before the worker fully
// exits), failing the test if it never does.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, base %d\n%s", n, base, buf)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestRunWorldCtxCancelMidSweep cancels from inside the first epoch's
// emit: the world must wind down collectively at the next checkpoint,
// return the context's error with the completed rows intact, and leak
// nothing.
func TestRunWorldCtxCancelMidSweep(t *testing.T) {
	e := NewExperiments(false)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ws := WorldSpec{P: 4, Cycles: 4, Mapper: MapHeuristic, Workload: WorkloadImplicit}
	var rows int
	run, err := e.RunWorldCtx(ctx, ws, func(FeedbackEpoch) {
		rows++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != 1 || len(run.Epochs) != 1 {
		t.Errorf("rows = %d, run.Epochs = %d; want 1 each (cancel after the first epoch)", rows, len(run.Epochs))
	}
	settleGoroutines(t, base)
}

// TestRunWorldCtxDeadlineMidEpoch drives the explicit workload — 50
// solver iterations per epoch, so the in-epoch checkpoints are live —
// under a deadline that expires while the first epoch solves.  The run
// must come back with DeadlineExceeded and no goroutine debt.
func TestRunWorldCtxDeadlineMidEpoch(t *testing.T) {
	e := NewExperiments(false)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	ws := WorldSpec{P: 4, Cycles: 4, Mapper: MapHeuristic, Workload: WorkloadExplicit}
	_, err := e.RunWorldCtx(ctx, ws, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, base)
}

// TestRunWorldCtxDeterministic is the soundness condition of the serve
// layer's content-addressed cache: identical specs produce identical
// rows and makespans, run after run.
func TestRunWorldCtxDeterministic(t *testing.T) {
	e := NewExperiments(false)
	ws := WorldSpec{P: 4, Cycles: 2, Mapper: MapHeuristic, Workload: WorkloadImplicit, Seed: 7}
	a, err := e.RunWorldCtx(context.Background(), ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunWorldCtx(context.Background(), ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical specs diverged:\n%+v\n%+v", a, b)
	}
	if len(a.Epochs) != 2 || a.SimTime <= 0 {
		t.Errorf("run shape: epochs=%d simtime=%v", len(a.Epochs), a.SimTime)
	}
	// Distinct seeds are distinct simulations.
	ws.Seed = 8
	c, err := e.RunWorldCtx(context.Background(), ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Epochs, c.Epochs) {
		t.Error("seed 7 and seed 8 produced identical epochs")
	}
}
