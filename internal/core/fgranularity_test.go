package core

import (
	"testing"
)

// TestAdaptionStepWithF2 exercises the F > 1 path end to end: the
// repartitioner produces P*F partitions, the similarity matrix has P*F
// columns, and each processor receives exactly F partitions (paper
// Section 4.3: "performing data mapping at a finer granularity reduces
// the volume of data movement at the expense of partitioning and
// processor reassignment times").
func TestAdaptionStepWithF2(t *testing.T) {
	e := NewExperiments(false)
	e.Cfg.F = 2
	st := e.RunStep(4, 0.33, true, MapHeuristic)
	if !st.Accepted {
		t.Fatal("forced accept did not remap")
	}
	if st.Counts.Elems <= e.Global.NumElems() {
		t.Error("no refinement")
	}
	// Compare against F=1 on the same problem: results must both be
	// valid; finer granularity should not increase the heaviest load.
	e1 := NewExperiments(false)
	st1 := e1.RunStep(4, 0.33, true, MapHeuristic)
	if st.Counts != st1.Counts {
		t.Errorf("F=2 counts %+v != F=1 counts %+v", st.Counts, st1.Counts)
	}
	if st.WNewMax > 2*st1.WNewMax {
		t.Errorf("F=2 left heaviest load %d, F=1 %d", st.WNewMax, st1.WNewMax)
	}
}

// TestAdaptionStepOptimalMappers runs the full cycle under the optimal
// mappers too (the Table 2 comparators), checking they complete and
// produce valid balanced results.
func TestAdaptionStepOptimalMappers(t *testing.T) {
	for _, mapper := range []Mapper{MapOptMWBG, MapOptBMCM} {
		e := NewExperiments(false)
		st := e.RunStep(4, 0.33, true, mapper)
		if !st.Accepted {
			t.Errorf("%v: not accepted", mapper)
		}
		if st.SolverImprovement() < 1 {
			t.Errorf("%v: balancing made things worse (%v)", mapper, st.SolverImprovement())
		}
		if st.ReassignWall <= 0 {
			t.Errorf("%v: no reassignment time measured", mapper)
		}
	}
}
