package core

import (
	"testing"

	"plum/internal/machine"
)

// TestMachineSweepTopoBeatsHeuristic pins the acceptance property of
// the machine experiment: on the SMP cluster the topology-aware mapper
// achieves strictly lower hop-weighted MaxV than the hop-oblivious
// heuristic (at processor counts spanning more than one node), and is
// never worse on any topology.
func TestMachineSweepTopoBeatsHeuristic(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaption pipeline per (topology, P, mapper)")
	}
	e := NewExperiments(false)
	e.Ps = []int{8, 16}
	rows := e.MachineSweep(0.33, machine.Names(), MachineMappers())
	if len(rows) != len(machine.Names())*2*2 {
		t.Fatalf("sweep produced %d rows", len(rows))
	}
	find := func(model string, p int, m Mapper) MachineRow {
		for _, r := range rows {
			if r.Model == model && r.P == p && r.Mapper == m {
				return r
			}
		}
		t.Fatalf("row (%s, %d, %v) missing", model, p, m)
		return MachineRow{}
	}
	for _, name := range machine.Names() {
		for _, p := range e.Ps {
			heu := find(name, p, MapHeuristic)
			topo := find(name, p, MapTopo)
			if topo.HopMaxV > heu.HopMaxV {
				t.Errorf("%s P=%d: MapTopo HopMaxV %d worse than HeuMWBG %d",
					name, p, topo.HopMaxV, heu.HopMaxV)
			}
			if heu.RemapTime <= 0 || topo.RemapTime <= 0 {
				t.Errorf("%s P=%d: missing simulated remap times", name, p)
			}
		}
	}
	// The headline claim, strict: multiple SMP nodes give the hop-aware
	// mapper room the greedy mapper cannot see.
	for _, p := range e.Ps {
		heu, topo := find("smp", p, MapHeuristic), find("smp", p, MapTopo)
		if topo.HopMaxV >= heu.HopMaxV {
			t.Errorf("smp P=%d: MapTopo HopMaxV %d not strictly below HeuMWBG %d",
				p, topo.HopMaxV, heu.HopMaxV)
		}
	}
	// An SMP cluster's cheap intra-node links must make the same
	// migration cheaper than on the flat machine.
	for _, p := range e.Ps {
		if smp, flat := find("smp", p, MapHeuristic), find("flat", p, MapHeuristic); smp.RemapTime >= flat.RemapTime {
			t.Errorf("P=%d: smp migration %.4fs not cheaper than flat %.4fs",
				p, smp.RemapTime, flat.RemapTime)
		}
	}
}
