package core

import (
	"plum/internal/event"
	"plum/internal/linalg"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// The comm/compute-overlap experiment: the same implicit PCG step run
// twice per machine topology — once with the blocking halo exchange,
// once with the split-SpMV overlap (interior rows compute while the
// ghost messages are in flight).  The iterates are bitwise identical
// (identical per-row kernels, exact reductions), so the two runs do
// exactly the same arithmetic; what changes is the simulated critical
// path, extracted from the event trace.  This is the ROADMAP item the
// blocking Send/Recv runtime could not express.

// OverlapRow compares blocking and overlapped PCG on one topology.
type OverlapRow struct {
	Model string
	P     int
	Iters int // PCG iterations (identical in both modes by construction)

	// Simulated seconds of the PCG solve phase, max over ranks.
	SolveBlocking, SolveOverlap float64
	// Critical-path makespan of the full traced run.
	CPBlocking, CPOverlap float64
	// Comm-wait seconds on the critical path (wire latency, contention
	// queueing, idle gaps) — the bucket overlap exists to shrink.
	WaitBlocking, WaitOverlap float64

	// TraceOverlapped is the overlapped run's event trace, kept so
	// -trace exports it without repeating the (deterministic, identical)
	// simulation.
	TraceOverlapped *event.Trace
}

// Speedup returns the critical-path ratio blocking/overlapped.
func (r OverlapRow) Speedup() float64 {
	if r.CPOverlap == 0 {
		return 1
	}
	return r.CPBlocking / r.CPOverlap
}

// overlapOptions returns the implicit solve the overlap experiment
// runs: Jacobi preconditioning isolates the halo-exchange SpMV (the
// path being overlapped), and the iteration cap keeps the trace small —
// both modes run the identical iteration sequence either way.
func overlapOptions(overlap bool) solver.ImplicitOptions {
	opt := solver.DefaultImplicitOptions()
	opt.Precond = linalg.PrecondJacobi
	opt.MaxIter = 60
	opt.Overlap = overlap
	return opt
}

// traceImplicit runs one adapted implicit PCG step on p ranks of the
// named machine with tracing enabled and returns the per-rank times,
// the trace, the iteration count, and the solve-phase simulated seconds
// (max over ranks).  The initial partition is built for the named
// machine itself — speed-scaled targets iff it is heterogeneous — so
// every topology row of a comparison runs on its own machine's natural
// partition, not on whatever -model the harness happens to carry.
func (e *Experiments) traceImplicit(p int, model string, overlap bool) ([]float64, *event.Trace, int, float64) {
	topo, err := machine.ByName(model, p)
	if err != nil {
		panic(err)
	}
	mod := e.Model.WithTopo(topo)
	popt := e.Cfg.PartOpts
	popt.TargetShares = machine.SpeedShares(topo, p)
	initPart := partition.Partition(e.Dual, p, popt)
	ind := e.Indicator()
	var iters int
	var solve float64
	times, tr := msg.RunTraced(p, mod, func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, solver.NComp)
		d.MarkGeometricFraction(ind, 0.2)
		d.PropagateParallel()
		d.Refine()
		solver.InitField(d.M, solver.GaussianPulse(
			mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
		im := solver.NewImplicit(d, overlapOptions(overlap))
		before := c.Elapsed()
		r := im.Step()
		elapsed := c.AllreduceFloat64(c.Elapsed()-before, msg.MaxFloat64)
		if c.Rank() == 0 {
			iters = r.Iterations
			solve = elapsed
		}
	})
	return times, tr, iters, solve
}

// OverlapComparison runs the blocking-vs-overlapped implicit step on
// every named topology and reports solve times and the traced critical
// path of each mode.  The 2*len(models) worlds are independent
// (traceImplicit builds a private partition and topology per call) and
// run concurrently.
func (e *Experiments) OverlapComparison(p int, models []string) []OverlapRow {
	type result struct {
		tr    *event.Trace
		iters int
		solve float64
	}
	res := make([]result, 2*len(models)) // [2i]: blocking, [2i+1]: overlapped
	runWorlds(len(res), func(i int) {
		_, tr, iters, solve := e.traceImplicit(p, models[i/2], i%2 == 1)
		res[i] = result{tr, iters, solve}
	})
	rows := make([]OverlapRow, 0, len(models))
	for i, name := range models {
		b, o := res[2*i], res[2*i+1]
		if b.iters != o.iters {
			panic("core: overlap changed the PCG iteration sequence")
		}
		row := OverlapRow{Model: name, P: p, Iters: b.iters}
		row.SolveBlocking, row.SolveOverlap = b.solve, o.solve
		cpB, cpO := event.CriticalPath(b.tr), event.CriticalPath(o.tr)
		row.CPBlocking, row.CPOverlap = cpB.Makespan, cpO.Makespan
		row.WaitBlocking, row.WaitOverlap = cpB.CommWait, cpO.CommWait
		row.TraceOverlapped = o.tr
		rows = append(rows, row)
	}
	return rows
}

// TraceImplicitStep runs one implicit PCG step on p ranks of the named
// machine (empty name: flat) and returns the event trace — the artifact
// plumviz -trace exports as Chrome-tracing JSON (plumbench reuses the
// trace already produced by its OverlapComparison instead).
func (e *Experiments) TraceImplicitStep(p int, overlap bool) *event.Trace {
	model := e.ModelName
	if model == "" {
		model = "flat"
	}
	_, tr, _, _ := e.traceImplicit(p, model, overlap)
	return tr
}
