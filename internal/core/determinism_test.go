package core

import (
	"runtime"
	"testing"
)

// Regression for the event engine's deterministic reservation pass: the
// fat tree's shared up-links used to reserve in goroutine-scheduling
// order, making contended timings only approximately reproducible (the
// caveat the old msg package documented).  Now every reservation is
// processed in (time, rank, seq) order by the engine, so two runs must
// agree bitwise — whatever GOMAXPROCS is, and under -race (CI runs this
// package with -race in the determinism job).

// fatTreeStep runs the full Real_2 remap-before adaption step on the
// fat tree and returns its simulated phase times.
func fatTreeStep(t *testing.T, p int) StepStats {
	t.Helper()
	e := NewExperiments(false)
	if err := e.UseMachine("fattree"); err != nil {
		t.Fatal(err)
	}
	return e.RunStep(p, 0.33, true, MapHeuristic)
}

func requireIdenticalStats(t *testing.T, label string, a, b StepStats) {
	t.Helper()
	pairs := []struct {
		name string
		x, y float64
	}{
		{"MarkTime", a.MarkTime, b.MarkTime},
		{"PartitionTime", a.PartitionTime, b.PartitionTime},
		{"ReassignTime", a.ReassignTime, b.ReassignTime},
		{"RemapTime", a.RemapTime, b.RemapTime},
		{"RefineTime", a.RefineTime, b.RefineTime},
	}
	for _, c := range pairs {
		if c.x != c.y {
			t.Errorf("%s: %s = %x vs %x (must be bitwise identical)", label, c.name, c.x, c.y)
		}
	}
	if a.Counts != b.Counts || a.Moved != b.Moved {
		t.Errorf("%s: step outcomes diverged: %+v vs %+v", label, a, b)
	}
}

// TestFatTreeDeterministicAcrossGOMAXPROCS: contended fat-tree timings
// are a pure function of the program — the host's parallelism must not
// reach the simulated clocks.
func TestFatTreeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := fatTreeStep(t, 8)
	runtime.GOMAXPROCS(8)
	parallel := fatTreeStep(t, 8)
	requireIdenticalStats(t, "gomaxprocs 1 vs 8", serial, parallel)
}

// TestFatTreeDeterministicRepeat: back-to-back runs with fresh machine
// instances agree bitwise (fresh contention state per run).
func TestFatTreeDeterministicRepeat(t *testing.T) {
	requireIdenticalStats(t, "repeat", fatTreeStep(t, 8), fatTreeStep(t, 8))
}
