package core

import (
	"math"
	"testing"

	"plum/internal/event"
)

// The comm/compute-overlap acceptance: on machines where wire time or
// shared-link contention is visible past the software overhead (the SMP
// cluster's inter-node links, the tapered fat tree's up-links), the
// overlapped PCG must have a strictly shorter simulated critical path
// than the blocking PCG — while doing bitwise-identical arithmetic.  On
// the paper's flat SP2 the per-message software overhead dominates and
// overlap is legitimately a no-op; the comparison reports that too.

func TestOverlapShortensCriticalPath(t *testing.T) {
	e := NewExperiments(false)
	rows := e.OverlapComparison(8, []string{"smp", "fattree"})
	for _, r := range rows {
		if r.Iters <= 0 {
			t.Fatalf("%s: no PCG iterations ran", r.Model)
		}
		if !(r.CPOverlap < r.CPBlocking) {
			t.Errorf("%s: overlapped critical path %.6g not strictly shorter than blocking %.6g",
				r.Model, r.CPOverlap, r.CPBlocking)
		}
		if !(r.SolveOverlap < r.SolveBlocking) {
			t.Errorf("%s: overlapped solve time %.6g not strictly shorter than blocking %.6g",
				r.Model, r.SolveOverlap, r.SolveBlocking)
		}
		if !(r.WaitOverlap < r.WaitBlocking) {
			t.Errorf("%s: comm wait on the path did not shrink: %.6g -> %.6g",
				r.Model, r.WaitBlocking, r.WaitOverlap)
		}
	}
}

// TestOverlapTraceDecomposition: the critical-path decomposition of a
// traced implicit run must tile the makespan (no double counting, no
// gaps) in both modes.
func TestOverlapTraceDecomposition(t *testing.T) {
	e := NewExperiments(false)
	for _, overlap := range []bool{false, true} {
		_, tr, _, _ := e.traceImplicit(4, "fattree", overlap)
		p := event.CriticalPath(tr)
		if p.Makespan <= 0 || len(p.Steps) == 0 {
			t.Fatalf("overlap=%v: empty critical path", overlap)
		}
		sum := p.Compute + p.Overhead + p.CommWait
		start := p.Steps[0].T0
		if diff := math.Abs(sum - (p.Makespan - start)); diff > 1e-9*p.Makespan {
			t.Errorf("overlap=%v: decomposition %.12g != makespan-start %.12g",
				overlap, sum, p.Makespan-start)
		}
		// The path must be causally ordered.
		for i := 1; i < len(p.Steps); i++ {
			if p.Steps[i].T1 < p.Steps[i-1].T1 {
				t.Fatalf("overlap=%v: path step %d completes before its predecessor", overlap, i)
			}
		}
	}
}

// TestTraceImplicitStep: the plumbench/plumviz trace artifact is
// non-empty and covers every rank.
func TestTraceImplicitStep(t *testing.T) {
	e := NewExperiments(false)
	if err := e.UseMachine("smp"); err != nil {
		t.Fatal(err)
	}
	tr := e.TraceImplicitStep(4, true)
	if tr.P != 4 {
		t.Fatalf("trace world size %d, want 4", tr.P)
	}
	seen := make(map[int]bool)
	for _, r := range tr.Records {
		seen[r.Rank] = true
	}
	if len(seen) != 4 {
		t.Errorf("trace covers %d ranks, want 4", len(seen))
	}
}
