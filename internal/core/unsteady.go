package core

import (
	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/pmesh"
	"plum/internal/profile"
	"plum/internal/solver"
)

// Unsteady drives the paper's target application pattern: a feature
// (shock, vortex) moves through the domain over many time steps, and
// every NAdapt solver iterations the framework re-adapts and rebalances
// around the feature's new position (the outer loop of Fig. 1).  This
// is the public API the examples and downstream users build on;
// AdaptionStep remains available for single-cycle control.
type Unsteady struct {
	D   *pmesh.DistMesh
	PS  *solver.PSolver
	IS  *solver.Implicit // non-nil when Cfg.Workload == WorkloadImplicit
	G   *dual.Graph      // replicated dual graph (weights owned per rank)
	Cfg Config

	// Indicator returns the error-indicator function for cycle number
	// i (the moving feature).
	Indicator func(i int) func(mesh.Vec3) float64
	// Frac is the fraction of edges targeted for refinement per cycle.
	Frac float64
	// CoarsenBelow, when > 0, coarsens edges whose indicator value for
	// the *new* position falls below this threshold before refining —
	// releasing resolution the feature has left behind.
	CoarsenBelow float64
	// DT is the solver pseudo-time step.
	DT float64

	// Stop, when non-nil, is the cooperative cancellation hook of the
	// serving path: it is consulted ONLY on rank 0 (so it may read host
	// state — a context, a drain flag — without rank divergence) and its
	// verdict is agreed by a zero-payload allreduce at solver-iteration
	// boundaries, so every rank leaves the solve loop at the same
	// checkpoint.  The agreement allreduce runs whether or not the
	// verdict fires, making the message pattern — and with it every
	// simulated clock — a pure function of (config, Stop != nil): a
	// served world and its offline replay stay bitwise identical.  CLI
	// and experiment paths leave Stop nil, which skips the checkpoints
	// entirely and keeps the golden-pinned schedules untouched.
	Stop func() bool
	// StopEvery is the solver-iteration cadence of the Stop checkpoints
	// (<= 0: every 8 iterations).
	StopEvery int

	cycle int
	// prof is the previous cycle's measured cost profile (rank 0 only;
	// nil on other ranks, on untraced runs, and before the first solve
	// phase completes).  Each cycle hands it to AdaptionStep's gain/cost
	// decision and replaces it after the solve phase — the measured-cost
	// feedback loop.
	prof *profile.Profile
}

// CycleStats extends the adaption statistics with solver accounting.
type CycleStats struct {
	Step        StepStats
	Coarsen     adapt.CoarsenStats
	SolverWork  int     // this rank's work units (edge fluxes, or PCG iters x nnz)
	WorkBalance float64 // sum(work)/(P*max(work)); 1.0 = perfect
	Mass        float64 // conservation diagnostic
	SolverTime  float64 // simulated seconds in the solve phase, max over ranks

	// Implicit-workload accounting (zero under WorkloadExplicit).
	PCGIters     int  // total PCG iterations this cycle
	PCGConverged bool // every solve hit the tolerance

	// Stopped reports that a Stop checkpoint fired inside the solve
	// loop: the cycle completed collectively (all ranks agreed at the
	// same iteration boundary) but ran fewer solver steps than
	// configured.  The caller should treat the cycle's statistics as
	// partial and stop driving further cycles.
	Stopped bool

	// Blame is the wait-blame attribution of this cycle's critical path
	// (rank 0 of a traced run; nil otherwise): every second the path
	// waited, charged to a lagging sender's compute, a contended link,
	// wire latency, or idleness (event.WaitBlame).
	Blame *event.BlameReport

	// Profile is the cost profile measured over this cycle (rank 0 of a
	// traced run with Cfg.Measured set; nil otherwise).  The *next*
	// cycle's gain/cost decision consumes it.
	Profile *profile.Profile
}

// NewUnsteady wires the driver over an existing distributed mesh with
// the configured workload's solver attached.  Collective.
func NewUnsteady(d *pmesh.DistMesh, g *dual.Graph, cfg Config) *Unsteady {
	u := &Unsteady{D: d, G: g, Cfg: cfg, Frac: 0.1, DT: 0.002}
	u.PS = solver.NewParallel(d)
	if cfg.Workload == WorkloadImplicit {
		u.IS = solver.NewImplicit(d, cfg.Implicit)
	}
	return u
}

// Cycle runs one adapt-balance-solve cycle and returns its statistics.
// Collective.
func (u *Unsteady) Cycle() CycleStats {
	var cs CycleStats
	ind := u.Indicator(u.cycle)
	c := u.D.C

	// Measured-cost feedback: on a traced run, remember where this
	// cycle's records begin so the post-solve profile covers exactly one
	// epoch (adaption + migration + solve).  Only rank 0 cuts the
	// window — it is the rank that prices the decision — and the
	// engine's deterministic total order makes the boundary, and with it
	// the profile, bitwise reproducible.  Observe cuts the same window
	// for the run ledger but never feeds the profile forward.
	var tr *event.Trace
	cycleStart := 0
	if u.Cfg.Measured || u.Cfg.Observe {
		tr = c.Trace()
		if tr != nil && c.Rank() == 0 {
			cycleStart = len(tr.Records)
		}
	}

	if u.CoarsenBelow > 0 && u.cycle > 0 {
		c.PushPhase(event.PhaseCoarsen)
		cs.Coarsen = u.D.ParallelCoarsen(ind, u.CoarsenBelow)
		c.PopPhase()
	}
	gv := u.G.WithWeights(u.G.WComp, u.G.WRemap)
	cfg := u.Cfg
	if c.Rank() == 0 {
		cfg.Profile = u.prof
	}
	cs.Step = AdaptionStep(c, u.D, gv, ind, u.Frac, cfg)
	// Rebuild only the active workload's solver: each rebuild performs
	// a collective ownership resolution, so doing both would double the
	// per-cycle setup cost for no benefit.
	if u.IS != nil {
		u.IS.Rebuild()
	} else {
		u.PS.Rebuild()
	}

	n := u.Cfg.NAdapt
	if n <= 0 {
		n = 1
	}
	timer := newPhaseTimer(c)
	if u.IS != nil {
		cs.PCGConverged = true
		for it := 0; it < n; it++ {
			c.PushPhase(event.PhaseSolve)
			r := u.IS.Step()
			c.PopPhase()
			cs.SolverWork += r.Work
			cs.PCGIters += r.Iterations
			cs.PCGConverged = cs.PCGConverged && r.Converged
			if u.stopCheckpoint(c, it, n) {
				cs.Stopped = true
				break
			}
		}
	} else {
		for it := 0; it < n; it++ {
			c.PushPhase(event.PhaseSolve)
			cs.SolverWork += u.PS.Step(u.DT)
			c.PopPhase()
			if u.stopCheckpoint(c, it, n) {
				cs.Stopped = true
				break
			}
		}
	}
	cs.SolverTime = timer.Lap()
	if tr != nil && c.Rank() == 0 {
		// Aggregate the epoch's records into the profile the next cycle's
		// decision will price with: per-rank wait decomposition, critical
		// path, solve-phase per-iteration time, and link rates calibrated
		// from the observed sends.  An untopologized run calibrates
		// against the flat machine (hop class 1 for every remote pair).
		p := profile.FromTrace(tr, cycleStart, len(tr.Records), nil)
		p.SolveSeconds = cs.SolverTime
		p.SolveSteps = n
		topo := u.Cfg.Topo
		if topo == nil {
			topo = machine.NewFlat(c.Size(), machine.SP2Link())
		}
		p.Rates = machine.CalibrateRates(tr.Records[cycleStart:len(tr.Records)], topo)
		// Only the measured-cost loop feeds the profile into the next
		// decision; an Observe-only run records it (cs.Profile) and stays
		// bitwise analytic.
		if u.Cfg.Measured {
			u.prof = p
		}
		cs.Profile = p
		// Blame the epoch's waits while the window is cut: the critical
		// path over the same records, attributed culprit by culprit.  The
		// span log (when this run streams spans) closes its epoch against
		// the same path, so span sampling can never drop an on-path span.
		sub := &event.Trace{P: c.Size(), Records: tr.Records[cycleStart:len(tr.Records):len(tr.Records)]}
		cp := event.CriticalPath(sub)
		cs.Blame = event.WaitBlame(sub, &cp)
		if sl := c.Spans(); sl != nil {
			sl.CutEpoch(&cp, cs.Blame)
		}
	}
	maxW := c.AllreduceInt64(int64(cs.SolverWork), msg.MaxInt64)
	sumW := c.AllreduceInt64(int64(cs.SolverWork), msg.SumInt64)
	if maxW > 0 {
		cs.WorkBalance = float64(sumW) / (float64(c.Size()) * float64(maxW))
	}
	if u.IS != nil {
		cs.Mass = u.IS.GlobalMass()
	} else {
		cs.Mass = u.PS.GlobalMass()
	}
	u.cycle++
	return cs
}

// CycleNumber returns how many cycles have completed.
func (u *Unsteady) CycleNumber() int { return u.cycle }

// stopCheckpoint is the mid-epoch cooperative cancellation point: after
// solver iteration it (of n) it decides collectively whether to abandon
// the remaining iterations.  With no Stop hook it is free — no message,
// no clock movement.  With one, every rank joins a zero-payload
// max-allreduce whose value is rank 0's sampled verdict, so the ranks
// agree on exactly which iteration boundary they leave from; the
// allreduce runs at the same cadence whether or not the verdict fires,
// keeping served and offline schedules bitwise identical.  The final
// iteration skips the check — the epoch is about to close anyway.
func (u *Unsteady) stopCheckpoint(c *msg.Comm, it, n int) bool {
	if u.Stop == nil || it+1 >= n {
		return false
	}
	every := u.StopEvery
	if every <= 0 {
		every = 8
	}
	if (it+1)%every != 0 {
		return false
	}
	return CollectiveStop(c, u.Stop)
}

// CollectiveStop agrees a host-plane stop verdict across a world's
// ranks: hook is consulted only on rank 0, and the verdict is broadcast
// through a max-allreduce so every rank adopts it at the same point of
// its program.  Collective; runs the allreduce unconditionally.
func CollectiveStop(c *msg.Comm, hook func() bool) bool {
	var flag int64
	if c.Rank() == 0 && hook() {
		flag = 1
	}
	return c.AllreduceInt64(flag, msg.MaxInt64) == 1
}
