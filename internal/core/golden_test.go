package core

import (
	"testing"

	"plum/internal/machine"
)

// Golden regression: the machine subsystem must be a behavioral no-op
// when no topology is selected.  The constants below are the simulated
// phase times of the reduced-scale Real_2 remap-before step recorded on
// the pre-machine-layer tree (hex float literals, so the comparison is
// bitwise).  Simulated time is fully deterministic — goroutine
// scheduling never reaches the clocks — so any drift here means the
// default cost path changed.
//
// The float arithmetic is unfused on amd64; a platform that contracts
// a*b+c into FMA could legitimately differ in the last bit.  CI runs
// on amd64, matching the recording.
type goldenStep struct {
	p                             int
	mark, part, reassign          float64
	remapT, refine                float64
	elems                         int
	wOldMax, wNewMax, movedCTotal int64
}

var goldenSteps = []goldenStep{
	{
		p:    4,
		mark: 0x1.9a5aae89b46dcp-07, part: 0x1.bc5e42b7bbb16p-05,
		reassign: 0x1.29cf81198ec4p-09, remapT: 0x1.ec8f16391503p-07,
		refine: 0x1.e6d73a0e18c7p-08,
		elems:  15024, wOldMax: 6216, wNewMax: 3908, movedCTotal: 1325,
	},
	{
		p:    8,
		mark: 0x1.426764ef30853p-06, part: 0x1.e10eb5992363ep-05,
		reassign: 0x1.c8c651c5e4p-10, remapT: 0x1.6803498b8f42p-07,
		refine: 0x1.0989ec7d6c3cp-08,
		elems:  15024, wOldMax: 3424, wNewMax: 1965, movedCTotal: 1568,
	},
}

func checkGolden(t *testing.T, label string, st StepStats, g goldenStep) {
	t.Helper()
	times := []struct {
		name      string
		got, want float64
	}{
		{"MarkTime", st.MarkTime, g.mark},
		{"PartitionTime", st.PartitionTime, g.part},
		{"ReassignTime", st.ReassignTime, g.reassign},
		{"RemapTime", st.RemapTime, g.remapT},
		{"RefineTime", st.RefineTime, g.refine},
	}
	for _, c := range times {
		if c.got != c.want {
			t.Errorf("%s P=%d %s = %x, want %x (bitwise)", label, g.p, c.name, c.got, c.want)
		}
	}
	if st.Counts.Elems != g.elems {
		t.Errorf("%s P=%d Elems = %d, want %d", label, g.p, st.Counts.Elems, g.elems)
	}
	if st.WOldMax != g.wOldMax || st.WNewMax != g.wNewMax {
		t.Errorf("%s P=%d loads = %d/%d, want %d/%d", label, g.p, st.WOldMax, st.WNewMax, g.wOldMax, g.wNewMax)
	}
	if st.Moved.CTotal != g.movedCTotal {
		t.Errorf("%s P=%d CTotal = %d, want %d", label, g.p, st.Moved.CTotal, g.movedCTotal)
	}
}

// TestGoldenDefaultPath pins the no-topology (pre-machine-layer) cost
// path against the recorded constants.
func TestGoldenDefaultPath(t *testing.T) {
	e := NewExperiments(false)
	for _, g := range goldenSteps {
		checkGolden(t, "default", e.RunStep(g.p, 0.33, true, MapHeuristic), g)
	}
}

// TestGoldenFlatTopology: selecting the explicit "flat" machine model
// must reproduce the same constants bitwise — machine.Flat built from
// SP2Link charges exactly what the scalar model charges, end to end
// through the full adaption pipeline.
func TestGoldenFlatTopology(t *testing.T) {
	e := NewExperiments(false)
	if err := e.UseMachine("flat"); err != nil {
		t.Fatal(err)
	}
	for _, g := range goldenSteps {
		checkGolden(t, "flat", e.RunStep(g.p, 0.33, true, MapHeuristic), g)
	}
}

// TestFlatTopologyDecisionNoOp covers the branch the golden constants
// cannot: with ForceAccept=false the gain-vs-cost decision runs, and a
// uniform topology must take the scalar pricing path, so every
// statistic — including Accepted — matches the default machine exactly.
func TestFlatTopologyDecisionNoOp(t *testing.T) {
	run := func(flat bool) StepStats {
		e := NewExperiments(false)
		e.Cfg.ForceAccept = false
		e.Cfg.NAdapt = 1 // small gain: the decision is near its threshold
		if flat {
			if err := e.UseMachine("flat"); err != nil {
				t.Fatal(err)
			}
		}
		return e.RunStep(8, 0.33, true, MapHeuristic)
	}
	def, flat := run(false), run(true)
	if def.Accepted != flat.Accepted {
		t.Fatalf("accept decision diverged: default %v, flat topology %v", def.Accepted, flat.Accepted)
	}
	if def.RemapTime != flat.RemapTime || def.RefineTime != flat.RefineTime ||
		def.ReassignTime != flat.ReassignTime {
		t.Errorf("phase times diverged: default %+v, flat %+v", def, flat)
	}
}

// TestUseMachineValidates: unknown names are rejected up front and the
// empty name restores the scalar model.
func TestUseMachineValidates(t *testing.T) {
	e := NewExperiments(false)
	if err := e.UseMachine("hypercube"); err == nil {
		t.Error("unknown machine name accepted")
	}
	for _, name := range machine.Names() {
		if err := e.UseMachine(name); err != nil {
			t.Errorf("UseMachine(%q): %v", name, err)
		}
	}
	if err := e.UseMachine(""); err != nil {
		t.Fatal(err)
	}
	if mod := e.modelFor(4); mod != e.Model || mod.Topo != nil {
		t.Error("empty name did not restore the scalar model")
	}
}
