package core

import (
	"testing"

	"plum/internal/machine"
	"plum/internal/partition"
)

// Hetero-aware balancing (the ROADMAP item): with the hetero machine
// selected, the partitioner's per-part targets scale with rank speed,
// so the effective per-rank time — load divided by speed — balances
// better than the paper's equal-weight targets, which overload the
// slow half of the machine.

func heteroTimeImbalance(t *testing.T, e *Experiments, p int) float64 {
	t.Helper()
	topo, err := machine.ByName("hetero", p)
	if err != nil {
		t.Fatal(err)
	}
	part := e.initialPartition(p)
	w := partition.PartWeights(e.Dual, part, p)
	var maxT, sumT float64
	for r := 0; r < p; r++ {
		tr := float64(w[r]) / topo.Speed(r)
		sumT += tr
		if tr > maxT {
			maxT = tr
		}
	}
	return maxT * float64(p) / sumT
}

func TestHeteroBalancingScalesTargets(t *testing.T) {
	const p = 8
	uniform := NewExperiments(false)
	hetero := NewExperiments(false)
	if err := hetero.UseMachine("hetero"); err != nil {
		t.Fatal(err)
	}
	imbUniform := heteroTimeImbalance(t, uniform, p)
	imbHetero := heteroTimeImbalance(t, hetero, p)
	if imbHetero >= imbUniform {
		t.Errorf("speed-scaled targets did not improve time balance: %.3f vs uniform %.3f",
			imbHetero, imbUniform)
	}
	// Equal targets on a half-speed second generation leave the slow
	// ranks ~33%% over their fair time share; the scaled targets must
	// land materially closer to balanced.
	if imbHetero > 1.15 {
		t.Errorf("hetero-aware partition still %.3fx imbalanced in time", imbHetero)
	}

	// The slow ranks' subdomains must be genuinely smaller.
	part := hetero.initialPartition(p)
	w := partition.PartWeights(hetero.Dual, part, p)
	for fast := 0; fast < p/2; fast++ {
		for slow := p / 2; slow < p; slow++ {
			if w[slow] >= w[fast] {
				t.Fatalf("slow rank %d load %d not below fast rank %d load %d: %v",
					slow, w[slow], fast, w[fast], w)
			}
		}
	}
}
