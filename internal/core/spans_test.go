package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"plum/internal/event"
	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"

	"plum/internal/mesh"
)

// The span-stream invariants, at the experiment layer: attaching a
// SpanSink must not perturb any simulated output, and the span file
// itself must be a deterministic artifact — byte-identical across
// repeat runs, across GOMAXPROCS, and (modulo the header line that
// records the setting) across ring bounds.  The test names carry
// "Deterministic" so CI's determinism job runs them under -race.

// spanFileBytes runs a 2-cycle implicit sweep with a span sink attached
// (ring as given) and returns the span file's bytes.
func spanFileBytes(t *testing.T, ring int) []byte {
	t.Helper()
	e := smallExperiments()
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	sink, err := CreateSpanSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Ring = ring
	e.Spans = sink
	e.ImplicitScaling(2)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Worlds() != len(e.Ps) {
		t.Fatalf("flushed %d world streams, want %d", sink.Worlds(), len(e.Ps))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSpanFileDeterministicAcrossGOMAXPROCS: the span file is bitwise
// identical whether the experiment worlds run serially or race on 8
// procs — the per-world buffers flush after the barrier, in loop order.
func TestSpanFileDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := spanFileBytes(t, DefaultSpanRing)
	runtime.GOMAXPROCS(8)
	parallel := spanFileBytes(t, DefaultSpanRing)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("span file differs between GOMAXPROCS 1 and 8 (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}

// stripSpanHeaders drops the per-world header lines, which record the
// ring setting by design; every other line must be ring-invariant.
func stripSpanHeaders(data []byte) []byte {
	var out []byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		if bytes.Contains(line, []byte(`"k":"hdr"`)) {
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

// TestSpanFileDeterministicRingOnOff: the ring bound changes resident
// memory, never the stream — span, blame, and end-trailer lines are
// byte-identical with the bound on or off (sampling disabled).
func TestSpanFileDeterministicRingOnOff(t *testing.T) {
	unbounded := stripSpanHeaders(spanFileBytes(t, 0))
	bounded := stripSpanHeaders(spanFileBytes(t, 8))
	if !bytes.Equal(unbounded, bounded) {
		t.Errorf("span/blame/end lines differ between unbounded and ring=8 sinks"+
			" (%d vs %d bytes)", len(unbounded), len(bounded))
	}
}

// TestSpansDeterministicImplicitRows: an ImplicitScaling sweep with a
// span sink attached (which forces traced worlds and per-cycle epoch
// cuts) reports bit-identical rows to the plain untraced sweep — the
// tracing-must-not-perturb acceptance criterion at the harness layer.
func TestSpansDeterministicImplicitRows(t *testing.T) {
	plain := implicitRowsString(smallExperiments().ImplicitScaling(2))

	e := smallExperiments()
	sink, err := CreateSpanSink(filepath.Join(t.TempDir(), "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	e.Spans = sink
	spanned := implicitRowsString(e.ImplicitScaling(2))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if plain != spanned {
		t.Errorf("span recording perturbed the run:\nplain:   %s\nspanned: %s", plain, spanned)
	}
}

// TestSpansDeterministicFeedbackRows: same invariant for the feedback
// comparison, whose runs stream through per-run buffers.
func TestSpansDeterministicFeedbackRows(t *testing.T) {
	run := func(withSpans bool) string {
		e := smallExperiments()
		var sink *SpanSink
		if withSpans {
			var err error
			sink, err = CreateSpanSink(filepath.Join(t.TempDir(), "spans.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			e.Spans = sink
		}
		pairs := e.FeedbackComparison(4, 2, []string{"smp"})
		if sink != nil {
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// recs and spans are sink plumbing, not results; compare the
		// public data.
		for i := range pairs {
			pairs[i].Analytic.recs, pairs[i].Measured.recs = nil, nil
			pairs[i].Analytic.spans, pairs[i].Measured.spans = nil, nil
		}
		return fmt.Sprintf("%+v", pairs)
	}
	plain := run(false)
	spanned := run(true)
	if plain != spanned {
		t.Errorf("span recording perturbed the feedback comparison:\nplain:   %s\nspanned: %s",
			plain, spanned)
	}
}

// TestSpanFileParsesWithBlame: the file an experiment writes reads back
// with ReadSpans — complete world streams, labels identifying each
// world, and at least one epoch blame summary attributing wait.
func TestSpanFileParsesWithBlame(t *testing.T) {
	data := spanFileBytes(t, DefaultSpanRing)
	worlds, err := event.ReadSpans(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 3 {
		t.Fatalf("got %d world streams, want 3 (Ps 1,2,4)", len(worlds))
	}
	var blames int
	for _, w := range worlds {
		if !w.Complete {
			t.Errorf("world %v parsed as truncated", w.Label)
		}
		if w.Label["exp"] != "implicit" || w.Label["p"] == "" {
			t.Errorf("world label = %v, want exp=implicit with a p key", w.Label)
		}
		if len(w.Spans) == 0 {
			t.Errorf("world %v carries no spans", w.Label)
		}
		if w.Epochs != 2 {
			t.Errorf("world %v has %d epochs, want 2 (one per cycle)", w.Label, w.Epochs)
		}
		for _, b := range w.Blame {
			blames++
			if b.Wait < 0 {
				t.Errorf("world %v epoch %d: negative wait %g", w.Label, b.Epoch, b.Wait)
			}
		}
	}
	if blames == 0 {
		t.Error("no epoch blame summary in the whole file")
	}
}

// TestSpanPeakResidentBoundedOverlapPCG: on an overlapped implicit PCG
// step — the repository's densest span producer — the ring bound holds
// peak resident spans per rank near the configured cap, far below what
// the unbounded log retains, without changing the simulated clocks.
func TestSpanPeakResidentBoundedOverlapPCG(t *testing.T) {
	e := smallExperiments()
	const p, ring = 4, 64
	topo, err := machine.ByName("fattree", p)
	if err != nil {
		t.Fatal(err)
	}
	mod := e.Model.WithTopo(topo)
	popt := e.Cfg.PartOpts
	popt.TargetShares = machine.SpeedShares(topo, p)
	initPart := partition.Partition(e.Dual, p, popt)
	ind := e.Indicator()
	body := func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, solver.NComp)
		d.MarkGeometricFraction(ind, 0.2)
		d.PropagateParallel()
		d.Refine()
		solver.InitField(d.M, solver.GaussianPulse(
			mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
		im := solver.NewImplicit(d, overlapOptions(true))
		im.Step()
	}
	run := func(ringCap int) ([]float64, *event.SpanLog) {
		var buf bytes.Buffer
		times, _, sl := msg.RunTracedSpans(p, mod,
			event.SpanOptions{Sink: &buf, RingCap: ringCap}, body)
		if err := sl.Err(); err != nil {
			t.Fatal(err)
		}
		return times, sl
	}
	boundedTimes, bounded := run(ring)
	unboundedTimes, unbounded := run(0)

	if bounded.Evicted() == 0 {
		t.Fatal("PCG run never hit the ring bound; the test proves nothing")
	}
	// The bound: ring completed spans plus the open phase stack (nesting
	// in this workload is a handful deep).
	if bounded.PeakResident() > ring+8 {
		t.Errorf("peak resident spans = %d, want <= %d (ring %d + open stack)",
			bounded.PeakResident(), ring+8, ring)
	}
	if unbounded.PeakResident() <= ring+8 {
		t.Errorf("unbounded peak %d within the ring bound; workload too small to matter",
			unbounded.PeakResident())
	}
	if bounded.Written() != unbounded.Written() {
		t.Errorf("ring changed the spans written: %d vs %d",
			bounded.Written(), unbounded.Written())
	}
	for r := range boundedTimes {
		if boundedTimes[r] != unboundedTimes[r] {
			t.Errorf("rank %d: ring changed a simulated clock: %v vs %v",
				r, boundedTimes[r], unboundedTimes[r])
		}
	}
}
