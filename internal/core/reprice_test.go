package core

import (
	"testing"

	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/pmesh"
	"plum/internal/remap"
)

// Regression for the heterogeneous-shares gap the ROADMAP recorded:
// TargetShares used to be keyed part j -> rank j%P, which breaks as
// soon as the mapper trades a part across ranks (routine at F > 1 —
// the machine sweep's own granularity).  The adaption step now
// re-prices the shares through the mapper's realized assignment with
// one extra partition+reassignment iteration.

// heteroStep runs one Real_2 adaption step at F=2 on the 16-rank
// hetero machine and returns the step statistics plus the realized
// speed-normalized time imbalance max_r(load_r/speed_r) / avg.  With
// legacyShares the j%P keying is passed explicitly, which opts out of
// the automatic re-price — the pre-fix behaviour.
func heteroStep(t *testing.T, legacyShares bool) (StepStats, float64) {
	t.Helper()
	const p, f = 16, 2
	e := NewExperiments(false)
	if err := e.UseMachine("hetero"); err != nil {
		t.Fatal(err)
	}
	topo, err := machine.ByName("hetero", p)
	if err != nil {
		t.Fatal(err)
	}
	initPart := e.initialPartition(p)
	ind := e.Indicator()
	mod := e.modelFor(p)
	var st StepStats
	var imb float64
	msg.RunModel(p, mod, func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, 0)
		g := e.Dual.WithWeights(e.Dual.WComp, e.Dual.WRemap)
		cfg := e.Cfg
		cfg.F = f
		cfg.Mapper = MapTopo
		cfg.Metric = remap.MaxV
		cfg.Topo = topo
		cfg.ForceAccept = true
		if legacyShares {
			cfg.PartOpts.TargetShares = machine.SpeedShares(topo, p*f)
		}
		s := AdaptionStep(c, d, g, ind, 0.33, cfg)
		// Realized post-refinement loads under the adopted ownership.
		wc, _ := d.GatherWeights()
		loads := rankLoads(wc, d.RootOwner, p)
		var maxT, sumT float64
		for r := 0; r < p; r++ {
			tr := float64(loads[r]) / topo.Speed(r)
			sumT += tr
			if tr > maxT {
				maxT = tr
			}
		}
		if c.Rank() == 0 {
			st = s
			imb = maxT * float64(p) / sumT
		}
	})
	return st, imb
}

// TestHeteroRepriceKeysSharesByAssignment: the automatic path must
// detect the assignment/keying mismatch and re-price; the explicit
// legacy shares must be honoured untouched; and the re-priced step's
// speed-normalized bottleneck must not be worse than the legacy
// keying's.
func TestHeteroRepriceKeysSharesByAssignment(t *testing.T) {
	auto, imbAuto := heteroStep(t, false)
	legacy, imbLegacy := heteroStep(t, true)
	if !auto.Repriced {
		t.Error("automatic shares did not re-price through the mapper's assignment" +
			" (expected the F=2 mapping to disagree with the j%P keying)")
	}
	if legacy.Repriced {
		t.Error("explicitly passed TargetShares must opt out of the re-price")
	}
	if imbAuto > imbLegacy {
		t.Errorf("re-priced time imbalance %.4f worse than legacy keying %.4f",
			imbAuto, imbLegacy)
	}
	if auto.WNewMax <= 0 || legacy.WNewMax <= 0 {
		t.Fatalf("degenerate loads: %d / %d", auto.WNewMax, legacy.WNewMax)
	}
}

// TestSpeedSharesAssigned: homogeneous machines yield nil; on a hetero
// machine the shares follow the assignment, not the part index.
func TestSpeedSharesAssigned(t *testing.T) {
	flat := machine.NewFlat(4, machine.SP2Link())
	if s := machine.SpeedSharesAssigned(flat, []int32{1, 0, 3, 2}); s != nil {
		t.Errorf("homogeneous machine produced shares %v", s)
	}
	h := machine.NewHetero(flat, []float64{1, 1, 0.5, 0.5})
	// Parts 0..3 assigned to ranks 3,2,1,0: shares must mirror the
	// assigned ranks' speeds, where the j%P keying would give 1,1,.5,.5.
	got := machine.SpeedSharesAssigned(h, []int32{3, 2, 1, 0})
	want := []float64{0.5, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("share[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}
