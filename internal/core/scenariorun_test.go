package core

import (
	"runtime"
	"testing"

	"plum/internal/scenario"
)

// The scenario runner inherits the engine's bitwise reproducibility:
// a (spec, pricing mode) pair must produce identical epochs whatever
// the host parallelism, even with the straggler and multi-job machine
// wrappers switching state mid-run.  CI runs this package with -race
// in the determinism job; the full-corpus byte-level check (ledgers
// and stdout) lives in cmd/plumbench.

// stragglerSpec exercises the CycleSpeed wrapper: a transient slowdown
// window that the pre-run partitioner must not see.
func stragglerSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := &scenario.Spec{
		Name: "det-straggler", Kind: scenario.KindStraggler, Model: "flat",
		P: 8, Cycles: 2, Frac: 0.12, CoarsenBelow: 0.05,
		Front:     &scenario.FrontSpec{X0: 0.25, X1: 0.75, Width: 0.17, Radius: 0.35},
		Straggler: &scenario.StragglerSpec{Ranks: []int{1}, Slowdown: 0.5, From: 1},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// multijobSpec exercises the Background wrapper: injection-time-
// dependent up-link tolls on the fat tree.
func multijobSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := &scenario.Spec{
		Name: "det-multijob", Kind: scenario.KindMultiJob, Model: "fattree",
		P: 8, Cycles: 2, Frac: 0.12, CoarsenBelow: 0.05,
		MultiJob: &scenario.MultiJobSpec{Period: 0.3, Duty: 0.5, Load: 4},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// runScenarioOnce drives one (spec, pricing-mode) run on a fresh
// Experiments; requireIdenticalRuns (feedback_test.go) compares runs.
func runScenarioOnce(t *testing.T, sp *scenario.Spec, measured bool) FeedbackRun {
	t.Helper()
	e := NewExperiments(false)
	return e.RunScenario(sp, measured)
}

// TestScenarioDeterministicAcrossGOMAXPROCS: both machine wrappers,
// both pricing modes, GOMAXPROCS 1 vs 8 — identical epochs and
// simulated makespans.
func TestScenarioDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, mk := range []func(*testing.T) *scenario.Spec{stragglerSpec, multijobSpec} {
		sp := mk(t)
		for _, measured := range []bool{false, true} {
			old := runtime.GOMAXPROCS(1)
			serial := runScenarioOnce(t, sp, measured)
			runtime.GOMAXPROCS(8)
			parallel := runScenarioOnce(t, sp, measured)
			runtime.GOMAXPROCS(old)
			requireIdenticalRuns(t,
				sp.Name+"/"+pricingMode(measured)+" gomaxprocs 1 vs 8", serial, parallel)
		}
	}
}

// TestScenarioDeterministicRepeat: back-to-back runs build fresh
// machine wrappers (fresh contention state, pre-run cycle) and agree
// bitwise.
func TestScenarioDeterministicRepeat(t *testing.T) {
	sp := multijobSpec(t)
	requireIdenticalRuns(t, "repeat",
		runScenarioOnce(t, sp, true), runScenarioOnce(t, sp, true))
}

// TestScenarioStragglerChangesTimings: the transient slowdown must
// actually reach the simulated clocks — the same spec without its
// straggler section finishes faster.  Guards against the wrapper
// silently never being consulted.
func TestScenarioStragglerChangesTimings(t *testing.T) {
	slow := stragglerSpec(t)
	fast := *slow
	fast.Name = "det-nostraggler"
	fast.Kind = scenario.KindFront
	fast.Straggler = nil
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	a := runScenarioOnce(t, slow, false)
	b := runScenarioOnce(t, &fast, false)
	if a.SimTime <= b.SimTime {
		t.Errorf("straggler run (%v s) not slower than unimpaired run (%v s)",
			a.SimTime, b.SimTime)
	}
}

// TestScenarioMapperByName: the spec mapper names map onto the core
// constants, with unknown strings falling back to the heuristic.
func TestScenarioMapperByName(t *testing.T) {
	want := map[string]Mapper{
		"heu": MapHeuristic, "opt": MapOptMWBG, "bmcm": MapOptBMCM,
		"topo": MapTopo, "": MapHeuristic,
	}
	for name, m := range want {
		if got := mapperByName(name); got != m {
			t.Errorf("mapperByName(%q) = %v, want %v", name, got, m)
		}
	}
}
