package core

import (
	"math"
	"testing"

	"plum/internal/remap"
)

func TestMaxImprovementModel(t *testing.T) {
	// The paper's quoted values: G=1.353 -> 5.91 for P>=20; G=3.310 ->
	// 2.42 for P>=4; G=5.279 -> 1.52 for P>=2.
	cases := []struct {
		g    float64
		pMin int
		want float64
	}{
		{1.353, 20, 5.91},
		{3.310, 4, 2.42},
		{5.279, 2, 1.52},
	}
	for _, c := range cases {
		got := MaxImprovement(c.pMin, c.g)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("MaxImprovement(%d, %v) = %.3f, want %.2f", c.pMin, c.g, got, c.want)
		}
		// Saturation: larger P gives the same value.
		if MaxImprovement(c.pMin+40, c.g) != got {
			t.Errorf("G=%v: bound not saturated at P=%d", c.g, c.pMin)
		}
	}
	// No improvement possible at G=1 or G=8.
	if MaxImprovement(64, 1) != 1 {
		t.Errorf("G=1 improvement = %v, want 1", MaxImprovement(64, 1))
	}
	if math.Abs(MaxImprovement(64, 8)-1) > 1e-12 {
		t.Errorf("G=8 improvement = %v, want 1", MaxImprovement(64, 8))
	}
	// Monotone in P until saturation.
	if MaxImprovement(2, 1.353) >= MaxImprovement(8, 1.353) {
		t.Error("bound should grow with P before saturating")
	}
}

func TestApplyMapperKinds(t *testing.T) {
	s := remap.NewSimilarity(3, 1)
	s.S[0] = []int64{10, 0, 5}
	s.S[1] = []int64{0, 20, 0}
	s.S[2] = []int64{5, 0, 30}
	for _, kind := range []Mapper{MapHeuristic, MapOptMWBG, MapOptBMCM, MapTopo} {
		assign, wall := ApplyMapper(kind, s, nil)
		if err := s.CheckAssignment(assign); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
		if wall < 0 {
			t.Errorf("%v: negative wall time", kind)
		}
	}
	// This diagonal-dominant matrix has the identity as its optimum.
	assign, _ := ApplyMapper(MapOptMWBG, s, nil)
	for j, i := range assign {
		if int(i) != j {
			t.Errorf("optimal assignment %v not identity", assign)
		}
	}
}

func TestMapperString(t *testing.T) {
	if MapHeuristic.String() != "HeuMWBG" || MapOptMWBG.String() != "OptMWBG" ||
		MapOptBMCM.String() != "OptBMCM" || MapTopo.String() != "MapTopo" {
		t.Error("mapper names wrong")
	}
}

func TestRankLoadHelpers(t *testing.T) {
	w := []int64{5, 3, 2, 7}
	owner := []int32{0, 1, 0, 1}
	loads := rankLoads(w, owner, 2)
	if loads[0] != 7 || loads[1] != 10 {
		t.Errorf("loads = %v", loads)
	}
	if maxLoad(loads) != 10 {
		t.Errorf("maxLoad = %d", maxLoad(loads))
	}
	if got := imbalanceOf([]int64{10, 10}); got != 1 {
		t.Errorf("balanced imbalance = %v", got)
	}
	if got := imbalanceOf([]int64{30, 10}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
}

func TestFig2Relationships(t *testing.T) {
	r := Fig2()
	if !r.HeuristicBoundHolds {
		t.Error("heuristic bound violated on the worked example")
	}
	opt, heu, bmcm := r.Costs[0], r.Costs[1], r.Costs[2]
	if opt.CTotal > heu.CTotal {
		t.Errorf("optimal MWBG total %d > heuristic %d", opt.CTotal, heu.CTotal)
	}
	if bmcm.CMax > opt.CMax {
		t.Errorf("BMCM Cmax %d > MWBG %d", bmcm.CMax, opt.CMax)
	}
	if r.ObjectiveOpt < r.ObjectiveHeu {
		t.Error("optimal objective below heuristic")
	}
}

func TestAdaptionStepSmall(t *testing.T) {
	e := NewExperiments(false)
	e.Ps = []int{1, 2, 4}
	for _, p := range e.Ps {
		st := e.RunStep(p, 0.33, true, MapHeuristic)
		if st.Counts.Elems <= e.Global.NumElems() {
			t.Errorf("p=%d: no refinement happened (%d elems)", p, st.Counts.Elems)
		}
		if st.RefineTime <= 0 || st.MarkTime <= 0 {
			t.Errorf("p=%d: missing phase times %+v", p, st)
		}
		if p > 1 && !st.Accepted {
			t.Errorf("p=%d: forced accept did not remap", p)
		}
	}
}

func TestAdaptionStepBeforeVsAfterSameMesh(t *testing.T) {
	// Both orderings must produce the same refined mesh (the ordering
	// changes cost, not the result).
	e := NewExperiments(false)
	before := e.RunStep(4, 0.33, true, MapHeuristic)
	after := e.RunStep(4, 0.33, false, MapHeuristic)
	if before.Counts != after.Counts {
		t.Errorf("orderings disagree: before %+v, after %+v", before.Counts, after.Counts)
	}
	// Remap-after moves the refined mesh: strictly more data.
	if before.Mig.ElemsSent >= after.Mig.ElemsSent && after.Mig.ElemsSent > 0 {
		t.Errorf("remap-before moved %d elems, remap-after %d — expected before < after",
			before.Mig.ElemsSent, after.Mig.ElemsSent)
	}
}

func TestAdaptionStepEvaluationSkipsBalanced(t *testing.T) {
	// With a huge threshold and no forced accept, the evaluation step
	// must skip repartitioning entirely.
	e := NewExperiments(false)
	e.Cfg.ForceAccept = false
	e.Cfg.ImbalanceThreshold = 1e9
	st := e.RunStep(4, 0.33, true, MapHeuristic)
	if !st.Balanced {
		t.Error("evaluation did not declare the mesh balanced")
	}
	if st.Accepted || st.Mig.ElemsSent > 0 {
		t.Error("balanced step still migrated data")
	}
	if st.Counts.Elems <= e.Global.NumElems() {
		t.Error("balanced step skipped refinement")
	}
}

func TestSolverImprovementComputation(t *testing.T) {
	st := StepStats{WOldMax: 300, WNewMax: 100}
	if got := st.SolverImprovement(); got != 3 {
		t.Errorf("improvement = %v", got)
	}
	if (StepStats{}).SolverImprovement() != 1 {
		t.Error("zero stats should report no improvement")
	}
}

func TestTable1SmallScale(t *testing.T) {
	e := NewExperiments(false)
	rows := e.Table1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Case != "Initial" {
		t.Error("first row must be the initial grid")
	}
	// Growth factors must be ordered Real_1 < Real_2 < Real_3, all > 1.
	if !(rows[1].Growth > 1 && rows[1].Growth < rows[2].Growth && rows[2].Growth < rows[3].Growth) {
		t.Errorf("growth ordering wrong: %v %v %v", rows[1].Growth, rows[2].Growth, rows[3].Growth)
	}
	for _, r := range rows[1:] {
		if r.Elems <= rows[0].Elems {
			t.Errorf("%s did not grow the mesh", r.Case)
		}
	}
}

func TestTable2SmallScale(t *testing.T) {
	e := NewExperiments(false)
	e.Ps = []int{2, 4, 8}
	rows := e.Table2(0.33)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Optimal MWBG moves no more than the heuristic.
		if r.Opt.TotalElems > r.Heu.TotalElems {
			t.Errorf("P=%d: optimal total %d > heuristic %d", r.P, r.Opt.TotalElems, r.Heu.TotalElems)
		}
		// Heuristic within 2x of optimal (the corollary).
		if r.Heu.TotalElems > 2*r.Opt.TotalElems {
			t.Errorf("P=%d: heuristic total %d > 2x optimal %d", r.P, r.Heu.TotalElems, r.Opt.TotalElems)
		}
		// BMCM minimizes the bottleneck: its max-sent cannot exceed the
		// MWBG mappers'.
		if r.Bmcm.MaxSent > r.Opt.MaxSent {
			t.Errorf("P=%d: BMCM max sent %d > MWBG %d", r.P, r.Bmcm.MaxSent, r.Opt.MaxSent)
		}
	}
}

func TestFig7Rows(t *testing.T) {
	e := NewExperiments(false)
	rows := e.Fig7()
	if len(rows) != 3*len(e.Ps) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Improvement < 1 || r.Improvement > 8 {
			t.Errorf("improvement %v out of range", r.Improvement)
		}
	}
}
