package core

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/linalg"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// runImplicitCycles drives the implicit workload for a few cycles and
// returns the per-cycle PCG iteration counts and the final mass.
func runImplicitCycles(t *testing.T, p, cycles int, kind linalg.PrecondKind) ([]int, float64) {
	t.Helper()
	const lx, ly = 3.0, 2.0
	global := mesh.Box(6, 4, 3, lx, ly, 1.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := DefaultConfig()
	cfg.Workload = WorkloadImplicit
	cfg.NAdapt = 1
	cfg.Implicit.Precond = kind

	iters := make([]int, cycles)
	var mass float64
	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		u := NewUnsteady(d, g, cfg)
		u.Frac = 0.15
		u.Indicator = func(i int) func(mesh.Vec3) float64 {
			x := lx * (0.3 + 0.2*float64(i))
			return adapt.ShockCylinderIndicator(
				mesh.Vec3{x, ly / 2, 0}, mesh.Vec3{0, 0, 1}, 0.4, 0.2)
		}
		u.PS.InitParallel(solver.GaussianPulse(mesh.Vec3{lx / 3, ly / 2, 0.5}, 0.5))
		for i := 0; i < cycles; i++ {
			cs := u.Cycle()
			if !cs.PCGConverged {
				t.Errorf("p=%d cycle %d: PCG did not converge", p, i)
			}
			if c.Rank() == 0 {
				iters[i] = cs.PCGIters
			}
		}
		// Exact (partition-independent) mass diagnostic; PS.GlobalMass
		// would round rank-by-rank and could differ in the last bits
		// across P.
		m := u.IS.GlobalMass()
		if c.Rank() == 0 {
			mass = m
		}
	})
	return iters, mass
}

// TestImplicitWorkloadIterationsIndependentOfP exercises the workload
// selector end to end: the full solve->adapt->balance cycle under the
// implicit workload must produce identical PCG iteration counts and a
// bitwise-identical solution diagnostic for every processor count —
// migration, refinement, and the remap decision included.
func TestImplicitWorkloadIterationsIndependentOfP(t *testing.T) {
	refIters, refMass := runImplicitCycles(t, 1, 2, linalg.PrecondSPAI)
	for _, p := range []int{2, 4} {
		iters, mass := runImplicitCycles(t, p, 2, linalg.PrecondSPAI)
		for i := range iters {
			if iters[i] != refIters[i] {
				t.Errorf("p=%d cycle %d: %d PCG iterations, serial %d", p, i, iters[i], refIters[i])
			}
		}
		if mass != refMass {
			t.Errorf("p=%d: final mass %x, serial %x", p, mass, refMass)
		}
	}
}

// TestImplicitWorkloadJacobi smoke-tests the other preconditioner
// through the driver.
func TestImplicitWorkloadJacobi(t *testing.T) {
	iters, _ := runImplicitCycles(t, 2, 1, linalg.PrecondJacobi)
	if iters[0] == 0 {
		t.Fatal("no PCG iterations recorded")
	}
}
