package core

import (
	"context"
	"fmt"

	"plum/internal/adapt"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/remap"
	"plum/internal/scenario"
	"plum/internal/solver"
)

// The serving path through the experiment harness: one request = one
// hermetic world, driven with cooperative cancellation and fault
// isolation so a long-running daemon (cmd/plumserve) can run many of
// them concurrently against one shared, read-only Experiments.
//
// Concurrency contract: RunWorldCtx touches only immutable harness
// state (the global mesh, the dual graph, Cfg by value) — it computes
// its own initial partition instead of the initialPartition cache — so
// any number of calls may run concurrently.  Determinism contract: the
// emitted rows and SimTime are a pure function of the WorldSpec; the
// context only decides how far the run gets, never what any completed
// epoch contains, because the cancellation checkpoints execute the same
// simulated collectives whether or not they fire.

// WorldSpec names one servable world: everything that determines its
// simulated output.  The canonical encoding of a WorldSpec is the cache
// key of the serving layer.
type WorldSpec struct {
	P        int
	Cycles   int
	Model    string // machine.Names() entry, or "" for the uniform SP2
	Mapper   Mapper
	Workload Workload
	Measured bool // price decisions from the previous epoch's profile

	// Frac / CoarsenBelow tune the refinement dynamics (zero values
	// take the feedback experiment's defaults: 0.12 / 0.05).
	Frac         float64
	CoarsenBelow float64

	// Seed phase-shifts the moving-feature indicator, so distinct seeds
	// are distinct simulations (deterministically — the seed is part of
	// the function, not an RNG state).
	Seed int64

	// Scenario, when non-nil, replaces the moving-shock dynamics with a
	// declarative workload spec (indicator schedule, burst fractions,
	// stragglers, background contention); P, Cycles, Model, Mapper,
	// Frac, and CoarsenBelow then come from the spec.
	Scenario *scenario.Spec
}

// seedFrac maps a seed to a deterministic phase in [0, 1): a SplitMix64
// finalizer step, so nearby seeds land far apart.
func seedFrac(seed int64) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// serveIndicator is the feedback experiment's moving shock with a
// seed-dependent starting offset: the cylinder still advances half the
// domain over the run, but where it starts (and so which ranks the
// imbalance hits) is the seed's choice.
func (e *Experiments) serveIndicator(cycles int, seed int64) func(i int) func(mesh.Vec3) float64 {
	den := cycles - 1
	if den < 1 {
		den = 1
	}
	off := 0.2 * seedFrac(seed)
	return func(i int) func(mesh.Vec3) float64 {
		x := (0.2 + off + 0.5*float64(i)/float64(den)) * e.LX
		return adapt.ShockCylinderIndicator(
			mesh.Vec3{x, e.LY / 2, 0}, mesh.Vec3{0, 0, 1},
			0.35*e.LY, 0.17*e.LY)
	}
}

// Validate rejects specs the runner would panic on, so the serving
// layer can turn bad requests into 400s before any world starts.
func (ws *WorldSpec) Validate() error {
	if ws.Scenario != nil {
		if ws.Seed != 0 {
			return fmt.Errorf("scenario runs are seedless: seed must be 0, got %d", ws.Seed)
		}
		return nil // the scenario loader validated the spec
	}
	if ws.P < 1 || ws.P > 1024 {
		return fmt.Errorf("p must be in [1, 1024], got %d", ws.P)
	}
	if ws.Cycles < 1 || ws.Cycles > 64 {
		return fmt.Errorf("cycles must be in [1, 64], got %d", ws.Cycles)
	}
	if ws.Model != "" {
		if _, err := machine.ByName(ws.Model, ws.P); err != nil {
			return err
		}
	}
	if ws.Mapper < MapHeuristic || ws.Mapper > MapTopo {
		return fmt.Errorf("unknown mapper %d", int(ws.Mapper))
	}
	if ws.Workload != WorkloadExplicit && ws.Workload != WorkloadImplicit {
		return fmt.Errorf("unknown workload %d", int(ws.Workload))
	}
	if ws.Frac < 0 || ws.Frac > 1 {
		return fmt.Errorf("frac must be in [0, 1], got %g", ws.Frac)
	}
	if ws.CoarsenBelow < 0 || ws.CoarsenBelow >= 1 {
		return fmt.Errorf("coarsen_below must be in [0, 1), got %g", ws.CoarsenBelow)
	}
	return nil
}

// RunWorldCtx drives one world per the spec, calling emit on rank 0
// after each completed epoch (from inside the world — emit must not
// block on the world's own output), and returns the run summary.
//
// Cancellation: ctx is observed at epoch boundaries and, through
// Unsteady.Stop, between solver iterations; when it fires the world
// winds down collectively (no goroutine leaks, no torn collectives) and
// RunWorldCtx returns ctx.Err() with the rows emitted so far intact.
// Fault isolation: a panicking world — a rank program bug, an engine
// deadlock abort — is recovered into a *WorldPanic error (wrapping the
// typed *msg.RankPanic / *msg.DeadlockError) instead of unwinding the
// caller.
func (e *Experiments) RunWorldCtx(ctx context.Context, ws WorldSpec, emit func(FeedbackEpoch)) (FeedbackRun, error) {
	if err := ws.Validate(); err != nil {
		return FeedbackRun{}, err
	}
	var (
		topo machine.Model
		dyn  *scenario.CycleSpeed
		err  error
	)
	sp := ws.Scenario
	p, cycles := ws.P, ws.Cycles
	modelName := ws.Model
	if sp != nil {
		p, cycles, modelName = sp.P, sp.Cycles, sp.Model
		if topo, dyn, err = sp.BuildMachine(); err != nil {
			return FeedbackRun{}, err
		}
	} else if ws.Model != "" {
		if topo, err = machine.ByName(ws.Model, p); err != nil {
			return FeedbackRun{}, err
		}
	}
	mod := e.Model
	if topo != nil {
		mod = e.Model.WithTopo(topo)
	}
	popt := e.Cfg.PartOpts
	if topo != nil {
		popt.TargetShares = machine.SpeedShares(topo, p)
	}
	initPart := partition.Partition(e.Dual, p, popt)

	run := FeedbackRun{Model: modelName, Measured: ws.Measured}
	stopped := false
	body := func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, solver.NComp)
		var cfg Config
		if ws.Workload == WorkloadImplicit || sp != nil {
			cfg = e.implicitConfig()
			// The feedback experiment's decision-sensitive regime: one
			// solver step per adaption and the implicit migration payload
			// (matrix rows + preconditioner state ride with an element).
			cfg.NAdapt = 1
			cfg.Machine.M *= 3
		} else {
			cfg = e.Cfg
		}
		cfg.Topo = topo
		cfg.ForceAccept = false
		cfg.Measured = ws.Measured
		if sp != nil {
			cfg.Mapper = mapperByName(sp.Mapper)
		} else {
			cfg.Mapper = ws.Mapper
		}
		if cfg.Mapper == MapOptBMCM || cfg.Mapper == MapTopo {
			cfg.Metric = remap.MaxV
		}
		u := NewUnsteady(d, e.Dual, cfg)
		u.Stop = func() bool { return ctx.Err() != nil }
		if sp != nil {
			u.CoarsenBelow = sp.CoarsenBelow
			u.Indicator = sp.Indicator(scenario.Domain{LX: e.LX, LY: e.LY})
		} else {
			u.Frac = 0.12
			u.CoarsenBelow = 0.05
			if ws.Frac > 0 {
				u.Frac = ws.Frac
			}
			if ws.CoarsenBelow > 0 {
				u.CoarsenBelow = ws.CoarsenBelow
			}
			u.Indicator = e.serveIndicator(cycles, ws.Seed)
		}
		u.PS.InitParallel(solver.GaussianPulse(
			mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
		for i := 0; i < cycles; i++ {
			// Epoch boundary: the barrier both keeps scenario speed
			// switches off the previous epoch's ranks and anchors the
			// epoch-level cancellation checkpoint.
			c.Barrier()
			if dyn != nil {
				dyn.SetCycle(i)
			}
			if CollectiveStop(c, u.Stop) {
				stopped = true
				return
			}
			if sp != nil {
				u.Frac = sp.FracAt(i)
			}
			cs := u.Cycle()
			if !cs.Stopped && c.Rank() == 0 {
				row := FeedbackEpoch{
					Cycle:     i,
					Balanced:  cs.Step.Balanced,
					Accepted:  cs.Step.Accepted,
					Measured:  cs.Step.MeasuredDecision,
					Gain:      cs.Step.Gain,
					Cost:      cs.Step.Cost,
					TotalV:    cs.Step.Moved.CTotal,
					MaxV:      cs.Step.Moved.CMax,
					Elems:     cs.Step.Counts.Elems,
					SolveTime: cs.SolverTime,
				}
				run.Epochs = append(run.Epochs, row)
				if emit != nil {
					emit(row)
				}
			}
			if cs.Stopped {
				stopped = true
				return
			}
		}
	}
	err = runWorldsErr(1, func(int) error {
		var times []float64
		if ws.Measured {
			times, _ = msg.RunTraced(p, mod, body)
		} else {
			times = msg.RunModel(p, mod, body)
		}
		run.SimTime = msg.MaxTime(times)
		return nil
	})
	if err == nil && stopped {
		err = ctx.Err()
		if err == nil {
			err = context.Canceled // Stop fired between sampling and here
		}
	}
	return run, err
}
