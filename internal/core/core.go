package core

import (
	"time"

	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/profile"
	"plum/internal/remap"
	"plum/internal/solver"
)

// Mapper selects the processor-reassignment algorithm (paper Section
// 4.4 / Table 2, plus the topology-aware extension).
type Mapper int

// The three mappers the paper compares, plus MapTopo: the hop-aware
// mapper that minimizes hop-weighted MaxV on non-flat machines.
const (
	MapHeuristic Mapper = iota // greedy MWBG, O(E), TotalV metric
	MapOptMWBG                 // optimal MWBG, TotalV metric
	MapOptBMCM                 // optimal BMCM, MaxV metric
	MapTopo                    // hop-discounted optimal, hop-weighted MaxV metric
)

func (m Mapper) String() string {
	switch m {
	case MapHeuristic:
		return "HeuMWBG"
	case MapOptMWBG:
		return "OptMWBG"
	case MapTopo:
		return "MapTopo"
	default:
		return "OptBMCM"
	}
}

// ApplyMapper runs the chosen mapper on a similarity matrix and reports
// the wall-clock time it took (the paper's Table 2 reassignment times).
// topo is the machine the assignment will run on; it only affects
// MapTopo, which treats a nil topo as the flat SP2.
func ApplyMapper(kind Mapper, s *remap.Similarity, topo machine.Model) (assign []int32, wall float64) {
	start := time.Now()
	switch kind {
	case MapHeuristic:
		assign = remap.HeuristicMWBG(s)
	case MapOptMWBG:
		assign = remap.OptimalMWBG(s)
	case MapTopo:
		if topo == nil {
			topo = machine.NewFlat(s.P, machine.SP2Link())
		}
		assign = remap.TopoAssign(s, topo)
	default:
		assign = remap.OptimalBMCM(s, 1, 1)
	}
	return assign, time.Since(start).Seconds()
}

// mapperWork returns the simulated host compute charge of a mapper in
// abstract work units (entries touched): the heuristic is O(E), the
// optimal algorithms are roughly cubic in P*F.
func mapperWork(kind Mapper, p, f int) float64 {
	n := float64(p * f)
	switch kind {
	case MapHeuristic:
		return n * n
	default:
		return n * n * n
	}
}

// Workload selects the solver class driven between adaptions.  The
// paper's framework couples to an explicit edge-based flow solver
// (communication once per time step); the implicit workload solves a
// backward-Euler system by preconditioned CG (communication every solver
// iteration), so the balancer's communication metrics become directly
// observable as simulated time.
type Workload int

// The two workload classes.
const (
	WorkloadExplicit Workload = iota
	WorkloadImplicit
)

func (w Workload) String() string {
	if w == WorkloadImplicit {
		return "implicit"
	}
	return "explicit"
}

// Config tunes one PLUM adaption step.
type Config struct {
	F           int           // partitions per processor (paper uses 1)
	NAdapt      int           // solver iterations between adaptions (gain model)
	Metric      remap.Metric  // TotalV or MaxV redistribution model
	Mapper      Mapper        // processor reassignment algorithm
	Machine     remap.Machine // cost-model constants
	RemapBefore bool          // remap before subdivision (the paper's optimization)
	// ImbalanceThreshold triggers repartitioning when the predicted
	// imbalance (Wmax/Wavg) exceeds it (the "quick evaluation" of
	// Fig. 1).  Zero means 1.10.
	ImbalanceThreshold float64
	// ForceAccept skips the gain-vs-cost decision (experiments that
	// always remap, as in the paper's single-step studies).
	ForceAccept bool
	PartOpts    partition.Options

	// Topo, when non-nil, is the machine topology the step runs on: the
	// mapper sees it (MapTopo) and the gain/cost decision prices
	// redistribution with its per-pair link constants instead of the
	// flat Machine scalars.  Nil keeps the paper's uniform machine.
	Topo machine.Model

	// Workload selects the solver driven between adaptions; Implicit
	// tunes the PCG-backed workload when WorkloadImplicit is chosen.
	Workload Workload
	Implicit solver.ImplicitOptions

	// Measured turns on the measured-cost feedback loop: the Unsteady
	// driver extracts a cost profile (internal/profile) from the event
	// trace of each epoch and hands it to the next epoch's gain/cost
	// decision.  Requires a traced run (msg.RunTraced); on an untraced
	// world the flag is inert and every decision stays analytic.
	Measured bool
	// Observe makes the Unsteady driver cut the same per-epoch profile
	// windows Measured does — so a run ledger (internal/obs) can record
	// the measured cost decomposition — WITHOUT feeding the profile into
	// any gain/cost decision: an Observe-only run prices every decision
	// analytically and its simulated outputs stay bitwise identical to an
	// unobserved run.  Like Measured it needs a traced world; on an
	// untraced one it is inert.
	Observe bool
	// Profile is the previous epoch's measured cost profile, set by the
	// Unsteady driver on rank 0 (the rank that makes the gain/cost
	// decision); every other rank leaves it nil and learns the decision
	// from the broadcast.  Nil prices the decision analytically — the
	// exact paper path, bitwise.
	Profile *profile.Profile
}

// DefaultConfig returns the configuration used by the experiment
// harness, matching the paper's setup: F=1, TotalV metric, heuristic
// mapper, remapping before subdivision.
func DefaultConfig() Config {
	return Config{
		F:                  1,
		NAdapt:             50,
		Metric:             remap.TotalV,
		Mapper:             MapHeuristic,
		Machine:            remap.SP2Machine(),
		RemapBefore:        true,
		ImbalanceThreshold: 1.10,
		ForceAccept:        true,
		PartOpts:           partition.Default(),
		Workload:           WorkloadExplicit,
		Implicit:           solver.DefaultImplicitOptions(),
	}
}

// rankLoads accumulates per-rank computational loads from per-root
// weights and an ownership vector.
func rankLoads(w []int64, owner []int32, p int) []int64 {
	loads := make([]int64, p)
	for r, o := range owner {
		loads[o] += w[r]
	}
	return loads
}

func maxLoad(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// imbalanceOf returns Wmax/Wavg of the given loads.
func imbalanceOf(loads []int64) float64 {
	var total, max int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(loads)) / float64(total)
}

// phaseTimer measures per-phase simulated time: Lap returns the
// max-over-ranks simulated seconds spent since the previous lap.
type phaseTimer struct {
	c    *msg.Comm
	last float64
}

func newPhaseTimer(c *msg.Comm) *phaseTimer { return &phaseTimer{c: c, last: c.Elapsed()} }

// Lap returns the global maximum of the per-rank elapsed simulated time
// since the last lap, and synchronizes the ranks.
func (t *phaseTimer) Lap() float64 {
	local := t.c.Elapsed() - t.last
	max := t.c.AllreduceFloat64(local, msg.MaxFloat64)
	t.c.Barrier()
	t.last = t.c.Elapsed()
	return max
}
