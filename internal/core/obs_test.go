package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"plum/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden ledger instead of comparing")

// The observability invariants: recording a run ledger must not perturb
// any simulated output (the -obs acceptance criterion), and the ledger
// itself must be a deterministic artifact — byte-identical epoch lines
// across repetitions and GOMAXPROCS values, pinned by a golden file.
// The test names carry "Deterministic" so CI's determinism job runs
// them under -race.

// smallExperiments returns a harness cut down to a fast sweep.
func smallExperiments() *Experiments {
	e := NewExperiments(false)
	e.Ps = []int{1, 2, 4}
	return e
}

func implicitRowsString(rows []ImplicitRow) string {
	return fmt.Sprintf("%+v", rows)
}

// TestObserveDeterministicImplicitRows: an ImplicitScaling sweep with a
// ledger attached (which forces traced worlds and per-epoch profile
// windows) reports bit-identical rows to the plain untraced sweep.
func TestObserveDeterministicImplicitRows(t *testing.T) {
	plain := implicitRowsString(smallExperiments().ImplicitScaling(2))

	e := smallExperiments()
	l, err := obs.Create(filepath.Join(t.TempDir(), "run.jsonl"), obs.Manifest{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	e.Obs = l
	observed := implicitRowsString(e.ImplicitScaling(2))
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}

	if plain != observed {
		t.Errorf("observation perturbed the run:\nplain:    %s\nobserved: %s", plain, observed)
	}
}

// TestObserveDeterministicFeedbackRows: same invariant for the feedback
// comparison — with Obs set the analytic run executes traced instead of
// untraced, and its epochs and simulated times must not move.
func TestObserveDeterministicFeedbackRows(t *testing.T) {
	run := func(withObs bool) (string, *obs.Ledger) {
		e := smallExperiments()
		var l *obs.Ledger
		if withObs {
			var err error
			l, err = obs.Create(filepath.Join(t.TempDir(), "run.jsonl"), obs.Manifest{Tool: "test"})
			if err != nil {
				t.Fatal(err)
			}
			e.Obs = l
		}
		pairs := e.FeedbackComparison(4, 2, []string{"smp"})
		// recs is the ledger plumbing, not a result; compare the public data.
		pairs[0].Analytic.recs, pairs[0].Measured.recs = nil, nil
		return fmt.Sprintf("%+v", pairs), l
	}
	plain, _ := run(false)
	observed, l := run(true)
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Errorf("observation perturbed the feedback comparison:\nplain:    %s\nobserved: %s",
			plain, observed)
	}
}

// ledgerEpochLines runs a 2-cycle implicit sweep with a ledger attached
// and returns the ledger's epoch lines (manifest and metrics excluded:
// they carry host-varying fields by design).
func ledgerEpochLines(t *testing.T) []byte {
	t.Helper()
	e := smallExperiments()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := obs.Create(path, obs.Manifest{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	e.Obs = l
	e.ImplicitScaling(2)
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		if bytes.Contains(line, []byte(`"kind":"epoch"`)) {
			epochs = append(epochs, line...)
			epochs = append(epochs, '\n')
		}
	}
	return epochs
}

// TestLedgerDeterministicGolden pins the ledger's epoch-line bytes —
// schema, field order, and every simulated value — against a golden
// file, at GOMAXPROCS 1 and 8.  Like the repository's other golden
// tests it is bitwise on amd64 (hex float comparison via the JSON
// round-trip); regenerate with -update after an intentional change:
//
//	go test ./internal/core/ -run LedgerDeterministicGolden -update
func TestLedgerDeterministicGolden(t *testing.T) {
	golden := filepath.Join("testdata", "ledger_implicit.golden")

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := ledgerEpochLines(t)
	runtime.GOMAXPROCS(8)
	parallel := ledgerEpochLines(t)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("ledger epochs differ between GOMAXPROCS 1 and 8:\n1: %s\n8: %s", serial, parallel)
	}

	if *update {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(serial))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("ledger epochs diverged from %s:\ngot:  %s\nwant: %s", golden, serial, want)
	}
}
