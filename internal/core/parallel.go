package core

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"plum/internal/obs"
)

// Parallel world execution.  A simulated world is hermetic: it owns its
// event engine, mailboxes, clocks, and (per-job) machine topology, and
// its schedule is bitwise independent of GOMAXPROCS — the engine's
// deterministic token discipline guarantees it.  Two worlds therefore
// never share mutable state, and the experiment sweeps — which run one
// world per (topology, P, mapper, pricing-mode, ...) combination — are
// embarrassingly parallel on the host even though each world is
// internally serialized.
//
// The rules each caller follows to keep results byte-identical to the
// serial sweep:
//
//   - shared inputs (the global mesh, the dual graph, cached initial
//     partitions) are read-only during the fan-out; anything that
//     mutates the harness (the initialPartition cache) is computed
//     before it;
//   - every job builds its own machine.Model instance — topologies
//     carry contention state that a concurrent world must not touch;
//   - results land in index-addressed slots, so presentation order is
//     the loop order, not completion order.
//
// Two fault contracts share one scheduler:
//
//   - runWorlds (the CLI sweeps) re-raises the first world panic after
//     in-flight worlds stop — a broken invariant kills the run loudly;
//   - runWorldsErr / runWorldsCtx (the serving path) recover each
//     world's panic into a *WorldPanic error with the world index and
//     goroutine stack, so one dying request can never unwind a daemon.

// WorldPanic is a world job's panic recovered into an error: the world
// index within its fan-out, the original panic value, and the goroutine
// stack captured where the panic unwound the job.
type WorldPanic struct {
	World int
	Value any
	Stack []byte
}

func (wp *WorldPanic) Error() string {
	return fmt.Sprintf("core: world %d panicked: %v", wp.World, wp.Value)
}

// Unwrap exposes the panic value when it was itself an error (the msg
// runtime panics typed *msg.RankPanic / *msg.DeadlockError values), so
// errors.As reaches the rank-level fault through the world wrapper.
func (wp *WorldPanic) Unwrap() error {
	if err, ok := wp.Value.(error); ok {
		return err
	}
	return nil
}

// runWorlds executes jobs 0..n-1 concurrently, bounded by GOMAXPROCS
// host threads (each job is a full simulated world; running more worlds
// than cores just thrashes).  A job panic skips every not-yet-started
// job, prints the failing world's goroutine stack to stderr, and is
// re-raised with the original panic value once in-flight jobs stop.
func runWorlds(n int, job func(i int)) {
	err := runWorldsErr(n, func(i int) error { job(i); return nil })
	if err == nil {
		return
	}
	wp := err.(*WorldPanic)
	fmt.Fprintf(os.Stderr, "core: world %d of %d panicked: %v\n%s",
		wp.World, n, wp.Value, wp.Stack)
	panic(wp.Value)
}

// runWorldsErr is runWorlds with panics contained: each job runs under
// a recover that converts a panic into a *WorldPanic, the first failure
// (error return or panic) stops not-yet-started jobs, and the first
// failure is returned once in-flight jobs stop.  Completed jobs' results
// remain valid — index-addressed slots written by finished worlds are
// untouched by a sibling's death.
func runWorldsErr(n int, job func(i int) error) error {
	return runWorldsCtx(context.Background(), n, job)
}

// runWorldsCtx is runWorldsErr bounded by a context: once ctx is done,
// not-yet-started jobs are skipped and ctx.Err() is reported (unless a
// job already failed — the first fault wins).  Jobs themselves are
// responsible for observing ctx at their own cooperative checkpoints;
// the scheduler only gates admission.
func runWorldsCtx(ctx context.Context, n int, job func(i int) error) error {
	job = timedJob(job)
	safe := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &WorldPanic{World: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return job(i)
	}
	limit := runtime.GOMAXPROCS(0)
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safe(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		fault   error
		faulted atomic.Bool
	)
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		if faulted.Load() {
			break // fail fast: don't start worlds after a failure
		}
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if fault == nil {
				fault = err
			}
			mu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			if err := safe(i); err != nil {
				mu.Lock()
				if fault == nil {
					fault = err
				}
				mu.Unlock()
				faulted.Store(true)
			}
		}(i)
	}
	wg.Wait()
	return fault
}

// timedJob wraps a world job with the host-plane scheduling counters:
// worlds started/finished and the wall-clock each world took.  A world
// that panics or errors counts as started but not finished, so the gap
// between the two counters is the number of worlds that died.
func timedJob(job func(i int) error) func(i int) error {
	started := obs.Default.Counter("plum_worlds_started_total")
	finished := obs.Default.Counter("plum_worlds_finished_total")
	wall := obs.Default.Histogram("plum_world_wall_seconds", obs.TimeBuckets)
	return func(i int) error {
		started.Inc()
		t0 := time.Now()
		if err := job(i); err != nil {
			return err
		}
		wall.Observe(time.Since(t0).Seconds())
		finished.Inc()
		return nil
	}
}

// WorldWallEstimate returns the mean observed world wall-clock seconds
// of this process (the plum_worlds started/wall histogram), or fallback
// when no world has completed yet.  The serving layer derives
// Retry-After hints from it.
func WorldWallEstimate(fallback float64) float64 {
	h := obs.Default.Histogram("plum_world_wall_seconds", obs.TimeBuckets)
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return fallback
}

// prewarmPartitions fills the initial-partition cache for every listed
// processor count.  The cache is the one mutable piece of the harness a
// sweep touches, so it must be complete before worlds fan out.
func (e *Experiments) prewarmPartitions(ps []int) {
	for _, p := range ps {
		e.initialPartition(p)
	}
}
