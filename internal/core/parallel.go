package core

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"plum/internal/obs"
)

// Parallel world execution.  A simulated world is hermetic: it owns its
// event engine, mailboxes, clocks, and (per-job) machine topology, and
// its schedule is bitwise independent of GOMAXPROCS — the engine's
// deterministic token discipline guarantees it.  Two worlds therefore
// never share mutable state, and the experiment sweeps — which run one
// world per (topology, P, mapper, pricing-mode, ...) combination — are
// embarrassingly parallel on the host even though each world is
// internally serialized.
//
// The rules each caller follows to keep results byte-identical to the
// serial sweep:
//
//   - shared inputs (the global mesh, the dual graph, cached initial
//     partitions) are read-only during the fan-out; anything that
//     mutates the harness (the initialPartition cache) is computed
//     before it;
//   - every job builds its own machine.Model instance — topologies
//     carry contention state that a concurrent world must not touch;
//   - results land in index-addressed slots, so presentation order is
//     the loop order, not completion order.

// runWorlds executes jobs 0..n-1 concurrently, bounded by GOMAXPROCS
// host threads (each job is a full simulated world; running more worlds
// than cores just thrashes).  A job panic skips every not-yet-started
// job, prints the failing world's goroutine stack to stderr (the
// re-raise below unwinds runWorlds' caller, not the world), and is
// re-raised with the original panic value once in-flight jobs stop.
func runWorlds(n int, job func(i int)) {
	job = timedJob(job)
	limit := runtime.GOMAXPROCS(0)
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		fault   any
		faulted atomic.Bool
	)
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		if faulted.Load() {
			break // fail fast: don't start worlds after a failure
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if fault == nil {
						fault = r
						fmt.Fprintf(os.Stderr, "core: world %d of %d panicked: %v\n%s",
							i, n, r, debug.Stack())
					}
					mu.Unlock()
					faulted.Store(true)
				}
				<-sem
				wg.Done()
			}()
			job(i)
		}(i)
	}
	wg.Wait()
	if fault != nil {
		panic(fault)
	}
}

// timedJob wraps a world job with the host-plane scheduling counters:
// worlds started/finished and the wall-clock each world took.  A world
// that panics counts as started but not finished, so the gap between
// the two counters is the number of worlds that died.
func timedJob(job func(i int)) func(i int) {
	started := obs.Default.Counter("plum_worlds_started_total")
	finished := obs.Default.Counter("plum_worlds_finished_total")
	wall := obs.Default.Histogram("plum_world_wall_seconds", obs.TimeBuckets)
	return func(i int) {
		started.Inc()
		t0 := time.Now()
		job(i)
		wall.Observe(time.Since(t0).Seconds())
		finished.Inc()
	}
}

// prewarmPartitions fills the initial-partition cache for every listed
// processor count.  The cache is the one mutable piece of the harness a
// sweep touches, so it must be complete before worlds fan out.
func (e *Experiments) prewarmPartitions(ps []int) {
	for _, p := range ps {
		e.initialPartition(p)
	}
}
