package core

import (
	"bytes"

	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/remap"
	"plum/internal/scenario"
	"plum/internal/solver"
)

// The scenario harness: each scenario.Spec is driven exactly like a
// feedback run — the same unsteady implicit epochs, executed once under
// analytic pricing and once under the measured-cost loop — but with the
// indicator sequence, the marked-fraction schedule, the mapper, and the
// machine wrappers all taken from the spec.  A scenario run is a pure
// function of (mesh, spec, pricing mode), so its ledger is bitwise
// reproducible and the committed corpus under ci/scenarios doubles as
// the balancer's regression suite.

// ScenarioPair is one scenario's analytic/measured comparison.
type ScenarioPair struct {
	Spec *scenario.Spec
	FeedbackPair
}

// mapperByName translates a spec's mapper name to the core constant.
// The scenario loader validated the name; unknown strings fall back to
// the heuristic (the spec default).
func mapperByName(name string) Mapper {
	switch name {
	case "opt":
		return MapOptMWBG
	case "bmcm":
		return MapOptBMCM
	case "topo":
		return MapTopo
	default:
		return MapHeuristic
	}
}

// scenarioExp is the ledger experiment key of a scenario run: the
// prefix keeps scenario RunKeys disjoint from every other experiment's.
func scenarioExp(sp *scenario.Spec) string { return "scenario/" + sp.Name }

// RunScenario drives one scenario under one pricing mode and reports
// every epoch's decision.  The structure mirrors RunFeedback — same
// implicit workload, same migration-payload scaling, same one-solve
// NAdapt regime where pricing is decision-sensitive — with the spec
// supplying the dynamics:
//
//   - the indicator advances per the front schedule (Spec.Indicator),
//   - the marked fraction follows the burst schedule (Spec.FracAt),
//   - straggler speeds switch at epoch boundaries (CycleSpeed.SetCycle
//     after a barrier, so no rank still computes under the old cycle),
//   - multi-job background load rides inside the machine's Acquire.
//
// The partitioner's speed targets are derived before the run, when a
// straggler wrapper still reports cycle -1 (no slowdown): the balancer
// starts blind to the transient, exactly the regime where analytic and
// measured pricing can disagree.
func (e *Experiments) RunScenario(sp *scenario.Spec, measured bool) FeedbackRun {
	topo, dyn, err := sp.BuildMachine()
	if err != nil {
		panic(err) // unreachable: the spec validated its model name
	}
	mod := e.Model.WithTopo(topo)
	popt := e.Cfg.PartOpts
	popt.TargetShares = machine.SpeedShares(topo, sp.P)
	initPart := partition.Partition(e.Dual, sp.P, popt)
	ind := sp.Indicator(scenario.Domain{LX: e.LX, LY: e.LY})
	run := FeedbackRun{Model: sp.Model, Measured: measured}
	body := func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, solver.NComp)
		cfg := e.implicitConfig()
		cfg.Topo = topo
		cfg.ForceAccept = false
		cfg.Measured = measured
		cfg.Observe = e.Obs != nil || e.Spans != nil
		cfg.Mapper = mapperByName(sp.Mapper)
		if cfg.Mapper == MapOptBMCM || cfg.Mapper == MapTopo {
			cfg.Metric = remap.MaxV
		}
		// Same decision-sensitive regime as the feedback experiment: one
		// solver step between adaptions and the implicit migration payload.
		cfg.NAdapt = 1
		cfg.Machine.M *= 3
		u := NewUnsteady(d, e.Dual, cfg)
		u.CoarsenBelow = sp.CoarsenBelow
		u.Indicator = ind
		u.PS.InitParallel(solver.GaussianPulse(
			mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
		for i := 0; i < sp.Cycles; i++ {
			// Epoch boundary: all ranks cross the barrier before the
			// straggler wrapper switches cycles, so a speed change can
			// never straddle a rank's previous epoch.  The writes are
			// idempotent and single-token serialized.
			c.Barrier()
			if dyn != nil {
				dyn.SetCycle(i)
			}
			u.Frac = sp.FracAt(i)
			cs := u.Cycle()
			if c.Rank() != 0 {
				continue
			}
			run.Epochs = append(run.Epochs, FeedbackEpoch{
				Cycle:     i,
				Balanced:  cs.Step.Balanced,
				Accepted:  cs.Step.Accepted,
				Measured:  cs.Step.MeasuredDecision,
				Gain:      cs.Step.Gain,
				Cost:      cs.Step.Cost,
				TotalV:    cs.Step.Moved.CTotal,
				MaxV:      cs.Step.Moved.CMax,
				Elems:     cs.Step.Counts.Elems,
				SolveTime: cs.SolverTime,
			})
			if e.Obs != nil {
				run.recs = append(run.recs, epochRecord(
					scenarioExp(sp), sp.Model, pricingMode(measured),
					sp.P, i, cs, partition.EdgeCut(e.Dual, d.RootOwner)))
			}
		}
	}
	var times []float64
	switch {
	case e.Spans != nil:
		run.spans = new(bytes.Buffer)
		opts := e.Spans.options(
			spanLabel(scenarioExp(sp), sp.Model, pricingMode(measured), sp.P), run.spans)
		times, _, _ = msg.RunTracedSpans(sp.P, mod, opts, body)
	case measured || e.Obs != nil:
		times, _ = msg.RunTraced(sp.P, mod, body)
	default:
		times = msg.RunModel(sp.P, mod, body)
	}
	run.SimTime = msg.MaxTime(times)
	return run
}

// Scenarios runs the analytic/measured pair for every spec.  Each
// (spec, pricing-mode) sweep is an independent world; all 2*len(specs)
// run concurrently under the runWorlds bound.  With e.Obs set the
// ledger receives every run's epochs after the barrier, in (spec,
// analytic-then-measured) order — deterministic even though the worlds
// race.
func (e *Experiments) Scenarios(specs []*scenario.Spec) []ScenarioPair {
	pairs := make([]ScenarioPair, len(specs))
	for i, sp := range specs {
		pairs[i].Spec = sp
	}
	runWorlds(2*len(specs), func(i int) {
		run := e.RunScenario(specs[i/2], i%2 == 1)
		if i%2 == 1 {
			pairs[i/2].Measured = run
		} else {
			pairs[i/2].Analytic = run
		}
	})
	if e.Obs != nil {
		for _, pair := range pairs {
			e.Obs.Add(pair.Analytic.recs...)
			e.Obs.Add(pair.Measured.recs...)
		}
	}
	if e.Spans != nil {
		for i := range pairs {
			e.Spans.flush(pairs[i].Analytic.spans)
			e.Spans.flush(pairs[i].Measured.spans)
		}
	}
	return pairs
}
