package core

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// TestFullFrameworkMultiCycle drives the complete Fig. 1 loop — solve,
// mark, coarsen, balance, remap, refine — for several cycles with a
// moving shock, checking mesh validity, conservation, and balance after
// every cycle.  This is the closest analogue of the paper's unsteady
// target application that runs in test time.
func TestFullFrameworkMultiCycle(t *testing.T) {
	const (
		p      = 4
		cycles = 3
		lx, ly = 3.0, 1.5
	)
	global := mesh.Box(9, 6, 4, lx, ly, 1.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := DefaultConfig()
	cfg.ForceAccept = false

	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{lx / 2, ly / 2, 0.5}, 0.4))

		prevShockX := -1.0
		for cycle := 0; cycle < cycles; cycle++ {
			x := lx * (0.25 + 0.5*float64(cycle)/float64(cycles-1))
			ind := adapt.ShockCylinderIndicator(
				mesh.Vec3{x, ly / 2, 0}, mesh.Vec3{0, 0, 1}, 0.3, 0.15)

			// Coarsen the previously refined (now uninteresting) region
			// before refining the new one, as the Fig. 1 loop does.
			if prevShockX >= 0 {
				d.ParallelCoarsen(ind, 0.05)
				if err := d.M.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d rank %d post-coarsen: %v", cycle, c.Rank(), err)
				}
			}
			prevShockX = x

			gv := g.WithWeights(g.WComp, g.WRemap)
			st := AdaptionStep(c, d, gv, ind, 0.12, cfg)
			if err := d.M.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d rank %d post-adapt: %v", cycle, c.Rank(), err)
			}
			if st.Counts.Elems < global.NumElems() {
				t.Fatalf("cycle %d: mesh shrank below initial (%d)", cycle, st.Counts.Elems)
			}

			ps.Rebuild()
			for it := 0; it < 3; it++ {
				ps.Step(0.002)
			}
			for _, u := range d.M.Sol {
				if math.IsNaN(u) || math.IsInf(u, 0) {
					t.Fatalf("cycle %d: solver diverged", cycle)
				}
			}

			// Balance: after an accepted remap the per-rank active
			// element counts must be within the partitioner tolerance
			// plus family granularity slack.
			if st.Accepted {
				local := 0
				for e := range d.M.ElemVerts {
					if d.M.ElemActive(int32(e)) {
						local++
					}
				}
				maxL := c.AllreduceInt64(int64(local), msg.MaxInt64)
				sumL := c.AllreduceInt64(int64(local), msg.SumInt64)
				imb := float64(maxL) * float64(p) / float64(sumL)
				if imb > 1.6 {
					t.Errorf("cycle %d: post-remap imbalance %.2f", cycle, imb)
				}
			}
		}

		// Finalization: the gathered global mesh must be valid and
		// volume-conserving.
		gm := d.Finalize()
		if c.Rank() == 0 {
			if err := gm.CheckInvariants(); err != nil {
				t.Fatalf("finalized mesh: %v", err)
			}
			if math.Abs(gm.TotalActiveVolume()-lx*ly*1.0) > 1e-9 {
				t.Errorf("volume %v, want %v", gm.TotalActiveVolume(), lx*ly*1.0)
			}
		}
	})
}

// TestCostDecisionRejectsPointlessRemap verifies the gain/cost model:
// when the solver runs only one iteration between adaptions, the gain
// cannot amortize any real redistribution, so the balancer must reject.
func TestCostDecisionRejectsPointlessRemap(t *testing.T) {
	e := NewExperiments(false)
	e.Cfg.ForceAccept = false
	e.Cfg.NAdapt = 0 // no solver iterations -> zero gain
	st := e.RunStep(4, 0.33, true, MapHeuristic)
	if st.Balanced {
		t.Skip("mesh happened to be balanced; decision not exercised")
	}
	if st.Accepted {
		t.Error("zero-gain remap was accepted")
	}
	if st.Mig.ElemsSent != 0 {
		t.Error("rejected remap still moved data")
	}
}

// TestCostDecisionAcceptsWorthwhileRemap: with many solver iterations
// between adaptions the gain dominates and the remap must be accepted.
func TestCostDecisionAcceptsWorthwhileRemap(t *testing.T) {
	e := NewExperiments(false)
	e.Cfg.ForceAccept = false
	e.Cfg.NAdapt = 10000
	st := e.RunStep(4, 0.33, true, MapHeuristic)
	if st.Balanced {
		t.Skip("mesh happened to be balanced; decision not exercised")
	}
	if !st.Accepted {
		t.Error("high-gain remap was rejected")
	}
}

// TestDeterministicAcrossRuns: the whole pipeline must be reproducible.
func TestDeterministicAcrossRuns(t *testing.T) {
	e1 := NewExperiments(false)
	e2 := NewExperiments(false)
	a := e1.RunStep(4, 0.33, true, MapHeuristic)
	b := e2.RunStep(4, 0.33, true, MapHeuristic)
	if a.Counts != b.Counts || a.WNewMax != b.WNewMax || a.Mig.ElemsSent != b.Mig.ElemsSent {
		t.Errorf("pipeline not deterministic:\n%+v\n%+v", a, b)
	}
	if a.MarkTime != b.MarkTime || a.RemapTime != b.RemapTime {
		t.Errorf("simulated times not deterministic")
	}
}
