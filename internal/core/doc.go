// Package core implements the PLUM framework driver: the
// solve -> adapt -> balance cycle of the paper's Fig. 1, wiring the mesh
// adaptor (pmesh/adapt), repartitioner (partition), processor
// reassignment and cost model (remap), the machine layer (machine), and
// the workloads (solver/linalg) together, with per-phase simulated-time
// accounting used to regenerate the paper's figures.
//
// Entry points.  AdaptionStep executes one full Fig. 1 cycle: marking,
// the quick load-balance evaluation, parallel repartitioning (with
// heterogeneous target shares and the realized-assignment re-price),
// processor reassignment, the gain/cost decision, data migration, and
// subdivision.  Unsteady drives the outer loop — a moving feature
// re-adapted every NAdapt solver iterations — and, under
// Config.Measured on a traced run, records each epoch's cost profile
// (internal/profile) and feeds it to the next epoch's decision: the
// measured-cost feedback loop.  Experiments bundles the fixed inputs of
// the paper's evaluation; cmd/plumbench renders its Table1/Table2/
// Fig2..Fig8 reproductions and the implicit / machine / feedback
// extensions.
//
// Invariants.  The gain/cost decision is computed on rank 0 and
// broadcast, so every rank takes the same branch; its pricing tiers are
// strict fallbacks (measured when a profile exists, per-pair on a
// non-uniform topology, the paper's scalar formulas otherwise).  The
// default flat path is bitwise-pinned by the golden tests here:
// selecting machine "flat" — or nothing — must reproduce the recorded
// phase times exactly, and contended (fat tree) and measured-mode runs
// must be bitwise reproducible across GOMAXPROCS and repetition.
package core
