package core

import (
	"math"
	"runtime"
	"testing"
)

// The measured-cost loop adds two new ingredients to the decision path —
// profile windows cut from a live trace and rates calibrated from it —
// and both must inherit the event engine's guarantee: bitwise
// reproducible, whatever the host's parallelism.  CI's determinism job
// runs these under -race (the 'Deterministic' name pattern).

// measuredFeedback runs a short measured-mode feedback run on the smp
// cluster (cheap intra-node links next to expensive inter-node ones:
// both calibration classes observed).
func measuredFeedback(t *testing.T) FeedbackRun {
	t.Helper()
	e := NewExperiments(false)
	return e.RunFeedback(8, 3, "smp", true)
}

func requireIdenticalRuns(t *testing.T, label string, a, b FeedbackRun) {
	t.Helper()
	if a.SimTime != b.SimTime {
		t.Errorf("%s: SimTime %x vs %x (must be bitwise identical)", label, a.SimTime, b.SimTime)
	}
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: epoch counts %d vs %d", label, len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		x, y := a.Epochs[i], b.Epochs[i]
		if x != y {
			t.Errorf("%s: epoch %d diverged:\n  %+v\n  %+v", label, i, x, y)
		}
		if math.Float64bits(x.Gain) != math.Float64bits(y.Gain) ||
			math.Float64bits(x.Cost) != math.Float64bits(y.Cost) {
			t.Errorf("%s: epoch %d prices not bitwise: gain %x/%x cost %x/%x",
				label, i, x.Gain, y.Gain, x.Cost, y.Cost)
		}
	}
}

// TestMeasuredDecisionDeterministicAcrossGOMAXPROCS: the measured
// decision — profile boundaries, calibrated rates, gain/cost, accept
// bit — is a pure function of the program, not of the host.
func TestMeasuredDecisionDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := measuredFeedback(t)
	runtime.GOMAXPROCS(8)
	parallel := measuredFeedback(t)
	requireIdenticalRuns(t, "gomaxprocs 1 vs 8", serial, parallel)
}

// TestMeasuredDecisionDeterministicRepeat: back-to-back measured runs
// agree bitwise (fresh trace, fresh contention state, same decisions).
func TestMeasuredDecisionDeterministicRepeat(t *testing.T) {
	requireIdenticalRuns(t, "repeat", measuredFeedback(t), measuredFeedback(t))
}

// TestMeasuredFeedbackWarmsUp: epoch 0 must price analytically (no
// profile exists yet) and later epochs must price from measurement —
// the loop's defining handshake.
func TestMeasuredFeedbackWarmsUp(t *testing.T) {
	run := measuredFeedback(t)
	if len(run.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	if run.Epochs[0].Measured {
		t.Error("epoch 0 claims a measured decision before any profile exists")
	}
	sawMeasured := false
	for _, ep := range run.Epochs[1:] {
		if ep.Balanced {
			continue
		}
		if !ep.Measured {
			t.Errorf("epoch %d repartitioned but priced analytically in measured mode", ep.Cycle)
		}
		sawMeasured = true
	}
	if !sawMeasured {
		t.Error("no epoch exercised the measured pricing (run too balanced?)")
	}
}

// TestAnalyticModeUnchangedByTracing: tracing observes, never
// perturbs.  The measured run executes traced but has no profile at
// epoch 0, so its first epoch must match the untraced analytic run's
// bitwise — the bridge between pre-feedback behaviour and this tree.
func TestAnalyticModeUnchangedByTracing(t *testing.T) {
	a := NewExperiments(false).RunFeedback(8, 2, "fattree", false)
	m := NewExperiments(false).RunFeedback(8, 2, "fattree", true)
	if len(a.Epochs) == 0 || len(m.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	if a.Epochs[0] != m.Epochs[0] {
		t.Errorf("epoch 0 diverged between untraced and traced runs:\n  %+v\n  %+v",
			a.Epochs[0], m.Epochs[0])
	}
	if a.Epochs[0].Measured || a.Epochs[len(a.Epochs)-1].Measured {
		t.Error("analytic run reports measured decisions")
	}
}
