package core

import (
	"bytes"

	"plum/internal/adapt"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// The measured-cost feedback experiment: the same unsteady implicit run
// driven twice per topology — once with the paper's analytic gain/cost
// pricing, once with the measured-cost loop (each epoch's decision
// priced by the previous epoch's event-trace profile).  Both runs see
// identical meshes, indicators, and machine models; the only degree of
// freedom is which epochs rebalance.  Comparing them answers the
// question the ROADMAP's event-engine follow-up poses: does pricing
// remapping against measured waits change the decision, and is the
// changed decision any good (end-to-end simulated time)?

// FeedbackEpoch is one adaption epoch of a feedback run.
type FeedbackEpoch struct {
	Cycle     int
	Balanced  bool    // evaluation step skipped the repartition
	Accepted  bool    // new mapping adopted
	Measured  bool    // decision priced from a profile (epoch 0 never is)
	Gain      float64 // gain side as the decision priced it
	Cost      float64 // cost side as the decision priced it
	TotalV    int64   // moved weight of the candidate assignment (CTotal)
	MaxV      int64   // bottleneck moved weight (CMax)
	Elems     int     // global mesh size after the epoch
	SolveTime float64 // simulated solve-phase seconds, max over ranks
}

// FeedbackRun is one complete unsteady run under one pricing mode.
type FeedbackRun struct {
	Model    string
	Measured bool
	Epochs   []FeedbackEpoch
	SimTime  float64 // end-to-end simulated makespan of the whole run

	// recs are the run's ledger records (rank 0; only when e.Obs is
	// set).  FeedbackComparison flushes them after the world barrier so
	// ledger order is deterministic.
	recs []obs.EpochRecord
	// spans is the run's serialized span stream (only when e.Spans is
	// set), flushed after the barrier like recs.
	spans *bytes.Buffer
}

// FeedbackPair is the analytic/measured comparison on one topology.
type FeedbackPair struct {
	Analytic, Measured FeedbackRun
}

// DecisionDiffs counts epochs where the two runs decided differently
// (balanced/accepted outcome, not the prices).
func (fp FeedbackPair) DecisionDiffs() int {
	n := len(fp.Analytic.Epochs)
	if len(fp.Measured.Epochs) < n {
		n = len(fp.Measured.Epochs)
	}
	diffs := 0
	for i := 0; i < n; i++ {
		a, m := fp.Analytic.Epochs[i], fp.Measured.Epochs[i]
		if a.Accepted != m.Accepted || a.Balanced != m.Balanced {
			diffs++
		}
	}
	return diffs
}

// feedbackIndicator returns the moving-shock indicator of the feedback
// runs: the cylinder advances across the domain so the refined region —
// and with it the imbalance the balancer must judge — shifts every
// epoch.
func (e *Experiments) feedbackIndicator(cycles int) func(i int) func(mesh.Vec3) float64 {
	den := cycles - 1
	if den < 1 {
		den = 1
	}
	return func(i int) func(mesh.Vec3) float64 {
		x := (0.25 + 0.5*float64(i)/float64(den)) * e.LX
		return adapt.ShockCylinderIndicator(
			mesh.Vec3{x, e.LY / 2, 0}, mesh.Vec3{0, 0, 1},
			0.35*e.LY, 0.17*e.LY)
	}
}

// RunFeedback drives cycles unsteady implicit epochs on p ranks of the
// named machine with the given pricing mode and reports every epoch's
// decision.  The measured run executes traced (the profile source);
// tracing never touches simulated clocks, so the two modes' timings
// diverge only where their decisions do.
func (e *Experiments) RunFeedback(p, cycles int, model string, measured bool) FeedbackRun {
	topo, err := machine.ByName(model, p)
	if err != nil {
		panic(err)
	}
	mod := e.Model.WithTopo(topo)
	popt := e.Cfg.PartOpts
	popt.TargetShares = machine.SpeedShares(topo, p)
	initPart := partition.Partition(e.Dual, p, popt)
	run := FeedbackRun{Model: model, Measured: measured}
	body := func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, solver.NComp)
		cfg := e.implicitConfig()
		cfg.Topo = topo
		cfg.ForceAccept = false
		cfg.Measured = measured
		cfg.Observe = e.Obs != nil || e.Spans != nil
		// One solver step between adaptions puts the analytic gain —
		// Titer, a constant calibrated for the explicit solver — in the
		// same range as the redistribution cost, which is exactly where
		// the decision is sensitive to pricing: the implicit workload's
		// real per-iteration time is several times the constant, and only
		// the measured loop can see that.
		cfg.NAdapt = 1
		// An implicit element migrates with its CSR matrix rows and
		// preconditioner state on top of the Section 4.5 solver+adaptor
		// words, so its payload is roughly three elements' worth.
		cfg.Machine.M *= 3
		u := NewUnsteady(d, e.Dual, cfg)
		u.Frac = 0.12
		u.CoarsenBelow = 0.05
		u.Indicator = e.feedbackIndicator(cycles)
		u.PS.InitParallel(solver.GaussianPulse(
			mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
		for i := 0; i < cycles; i++ {
			cs := u.Cycle()
			if c.Rank() != 0 {
				continue
			}
			run.Epochs = append(run.Epochs, FeedbackEpoch{
				Cycle:     i,
				Balanced:  cs.Step.Balanced,
				Accepted:  cs.Step.Accepted,
				Measured:  cs.Step.MeasuredDecision,
				Gain:      cs.Step.Gain,
				Cost:      cs.Step.Cost,
				TotalV:    cs.Step.Moved.CTotal,
				MaxV:      cs.Step.Moved.CMax,
				Elems:     cs.Step.Counts.Elems,
				SolveTime: cs.SolverTime,
			})
			if e.Obs != nil {
				run.recs = append(run.recs, epochRecord(
					"feedback", model, pricingMode(measured),
					p, i, cs, partition.EdgeCut(e.Dual, d.RootOwner)))
			}
		}
	}
	var times []float64
	switch {
	case e.Spans != nil:
		run.spans = new(bytes.Buffer)
		opts := e.Spans.options(
			spanLabel("feedback", model, pricingMode(measured), p), run.spans)
		times, _, _ = msg.RunTracedSpans(p, mod, opts, body)
	case measured || e.Obs != nil:
		times, _ = msg.RunTraced(p, mod, body)
	default:
		times = msg.RunModel(p, mod, body)
	}
	run.SimTime = msg.MaxTime(times)
	return run
}

// FeedbackComparison runs the analytic and measured modes on every
// named topology.  Each (topology, pricing-mode) epoch sweep is an
// independent world; all 2*len(models) run concurrently.  With e.Obs
// set the ledger receives every run's epochs after the barrier, in
// (model, analytic-then-measured) order.
func (e *Experiments) FeedbackComparison(p, cycles int, models []string) []FeedbackPair {
	pairs := make([]FeedbackPair, len(models))
	runWorlds(2*len(models), func(i int) {
		run := e.RunFeedback(p, cycles, models[i/2], i%2 == 1)
		if i%2 == 1 {
			pairs[i/2].Measured = run
		} else {
			pairs[i/2].Analytic = run
		}
	})
	if e.Obs != nil {
		for _, pair := range pairs {
			e.Obs.Add(pair.Analytic.recs...)
			e.Obs.Add(pair.Measured.recs...)
		}
	}
	if e.Spans != nil {
		for i := range pairs {
			e.Spans.flush(pairs[i].Analytic.spans)
			e.Spans.flush(pairs[i].Measured.spans)
		}
	}
	return pairs
}

// The reduced-scale feedback experiment's shape: enough epochs for the
// moving feature to force several rebalancing decisions after the
// profile warms up (epoch 0 is always analytic).
const (
	DefaultFeedbackCycles = 4
	DefaultFeedbackProcs  = 8
)

// FeedbackModels returns the topologies the feedback experiment
// compares: the two where per-pair pricing and contention make the
// analytic estimate least trustworthy.
func FeedbackModels() []string { return []string{"smp", "fattree"} }
