package core

import (
	"slices"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/remap"
)

// StepStats reports one adaption cycle.  Times are simulated seconds,
// already reduced to the maximum over ranks (identical on every rank).
type StepStats struct {
	MarkTime      float64 // edge targeting + parallel propagation
	PartitionTime float64 // parallel repartitioning
	ReassignTime  float64 // similarity matrix + mapper + broadcast (simulated)
	RemapTime     float64 // data migration
	RefineTime    float64 // subdivision (plus re-marking when remapping first)
	ReassignWall  float64 // wall-clock seconds of the mapper on the host

	Rounds    int  // marking propagation rounds
	Balanced  bool // evaluation step found the mesh balanced (no repartition)
	Accepted  bool // new partitioning adopted
	Imbalance float64

	// Gain and Cost are the two sides of the acceptance test as the
	// decision actually priced them — analytic by default, measured when
	// a profile was supplied.  Rank 0 only (the deciding rank); other
	// ranks report zero.  MeasuredDecision records which pricing ran.
	Gain, Cost       float64
	MeasuredDecision bool
	// Repriced reports that the heterogeneous-shares re-price ran: the
	// mapper's assignment disagreed with the provisional part j -> rank
	// j mod P share keying, so the repartition and reassignment were
	// re-run once with shares keyed by the realized assignment.
	Repriced bool

	WOldMax, WNewMax int64 // heaviest-rank post-refinement loads, old/new owners

	Moved remap.MoveCost
	// Hop holds the hop-weighted movement metrics of the chosen
	// assignment; only populated when cfg.Topo is set.
	Hop    remap.HopCost
	Mig    pmesh.MigrateStats
	Refine adapt.RefineStats

	Counts adapt.Counts // global mesh after the step
}

// AdaptionStep executes one full cycle of the paper's Fig. 1 on the
// calling rank: edge marking, the load-balancer evaluation, parallel
// repartitioning, processor reassignment, the gain/cost decision, data
// remapping, and mesh refinement.  With cfg.RemapBefore the data moves
// between the marking and subdivision phases (Section 4.6); otherwise
// the mesh is refined first and the larger refined mesh is moved.
// Collective: every rank calls with identical arguments; g must be a
// per-rank weight view (dual.Graph.WithWeights) of the replicated dual
// graph.
func AdaptionStep(c *msg.Comm, d *pmesh.DistMesh, g *dual.Graph,
	ind func(mesh.Vec3) float64, frac float64, cfg Config) StepStats {

	if cfg.ImbalanceThreshold == 0 {
		cfg.ImbalanceThreshold = 1.10
	}
	var st StepStats
	timer := newPhaseTimer(c)

	// --- Mark: target edges and propagate to a global fixpoint.
	c.PushPhase(event.PhaseMark)
	d.MarkGeometricFraction(ind, frac)
	st.Rounds = d.PropagateParallel()
	c.PopPhase()
	st.MarkTime = timer.Lap()

	if !cfg.RemapBefore {
		// Remap-after ordering: subdivide on the old partitions first.
		c.PushPhase(event.PhaseRefine)
		st.Refine = d.Refine()
		c.PopPhase()
		st.RefineTime = timer.Lap()
	}

	// --- Weights for the balancer.  Remap-before uses the predicted
	// post-refinement Wcomp with the pre-refinement Wremap; remap-after
	// uses the actual weights of the already-refined mesh.
	var wc, wr []int64
	if cfg.RemapBefore {
		wc, wr = d.GatherPredictedWeights()
	} else {
		wc, wr = d.GatherWeights()
	}
	oldLoads := rankLoads(wc, d.RootOwner, c.Size())
	st.WOldMax = maxLoad(oldLoads)
	st.Imbalance = imbalanceOf(oldLoads)

	// --- Evaluation step ("determines if the new mesh will be so
	// unbalanced as to warrant a repartitioning").
	if st.Imbalance <= cfg.ImbalanceThreshold && !cfg.ForceAccept {
		st.Balanced = true
		st.WNewMax = st.WOldMax
		if cfg.RemapBefore {
			c.PushPhase(event.PhaseRefine)
			st.Refine = d.Refine()
			c.PopPhase()
			st.RefineTime = timer.Lap()
		}
		st.Counts = d.GlobalCounts()
		return st
	}

	// --- Parallel repartitioning on the dual graph.  On a heterogeneous
	// machine the per-part target loads scale with processor speed (the
	// hetero-aware balancing); SpeedShares is nil on homogeneous
	// machines, keeping the paper's equal targets.  The provisional
	// part j -> rank j%P share keying relies on the repartitioner
	// seeding part ids from the current owners; whether the mapper
	// honours that correspondence is checked — and re-priced — after
	// the reassignment below.
	g.SetWeights(wc, wr)
	popt := cfg.PartOpts
	if cfg.Topo != nil && popt.TargetShares == nil {
		popt.TargetShares = machine.SpeedShares(cfg.Topo, c.Size()*cfg.F)
	}
	c.PushPhase(event.PhaseRepartition)
	pr := partition.ParallelRepartition(c, g, c.Size()*cfg.F, d.RootOwner, popt)
	c.PopPhase()
	newPart := pr.Part
	st.PartitionTime = timer.Lap()

	// --- Processor reassignment: similarity matrix rows computed in
	// parallel, gathered at the host, mapped, scattered back.  Runs a
	// second time when the heterogeneous re-price repartitions.
	var s *remap.Similarity
	var assign []int32
	reassign := func() {
		c.PushPhase(event.PhaseReassign)
		defer c.PopPhase()
		s = remap.BuildSimilarityDistributed(c, d.LocalRootIDs(), wr, newPart, cfg.F)
		var a []int32
		if c.Rank() == 0 {
			var wall float64
			a, wall = ApplyMapper(cfg.Mapper, s, cfg.Topo)
			st.ReassignWall += wall
			c.Compute(mapperWork(cfg.Mapper, c.Size(), cfg.F))
			st.Moved = remap.Cost(s, a)
			if cfg.Topo != nil {
				st.Hop = remap.HopWeightedCost(s, a, cfg.Topo)
			}
		}
		assign = remap.BroadcastAssignment(c, a)
	}
	reassign()

	// --- Heterogeneous re-price: the shares above assumed part j runs
	// on rank j%P, but the broadcast assignment is the ground truth.
	// When they disagree on a machine with non-uniform speeds, rebuild
	// the partition with shares keyed by the realized assignment and map
	// once more — one iteration of the partition <-> mapping fixpoint,
	// enough to stop a slow-sized part landing on a fast processor.
	// Every rank evaluates the same broadcast assignment, so all take
	// the same branch.  The extra repartition is charged to the
	// reassignment phase (PartitionTime's lap is already taken).
	// Callers that pass explicit TargetShares have opted out of the
	// automatic keying, so their shares are honoured as given.
	if cfg.Topo != nil && cfg.PartOpts.TargetShares == nil {
		if re := machine.SpeedSharesAssigned(cfg.Topo, assign); re != nil && !slices.Equal(re, popt.TargetShares) {
			st.Repriced = true
			popt.TargetShares = re
			c.PushPhase(event.PhaseRepartition)
			pr = partition.ParallelRepartition(c, g, c.Size()*cfg.F, d.RootOwner, popt)
			c.PopPhase()
			newPart = pr.Part
			reassign()
		}
	}
	newOwner := make([]int32, len(newPart))
	for r, np := range newPart {
		newOwner[r] = assign[np]
	}
	newLoads := rankLoads(wc, newOwner, c.Size())
	st.WNewMax = maxLoad(newLoads)
	st.ReassignTime = timer.Lap()

	// --- Gain vs. redistribution cost (Section 4.5/4.6).  The decision
	// is made on the host (which holds the similarity matrix) and
	// broadcast, so every rank takes the same branch.
	var acceptFlag int64
	if c.Rank() == 0 {
		gain := remap.ComputationalGain(cfg.Machine, cfg.NAdapt, st.WOldMax, st.WNewMax, 0)
		cost := remap.RedistributionCost(cfg.Metric, st.Moved, cfg.Machine)
		if cfg.Topo != nil && !machine.Uniform(cfg.Topo) {
			// Non-uniform network: price the redistribution with per-pair
			// link constants so the decision sees the topology the data
			// will actually cross.  Uniform topologies (flat, a single
			// SMP node) keep the paper's scalar pricing — the two
			// formulas are calibrated differently, and switching on a
			// network with no pair structure would silently change
			// accept/reject decisions, breaking the flat-is-a-no-op
			// guarantee the golden tests pin.
			cost = remap.RedistributionCostTopo(cfg.Metric, s, assign, cfg.Machine, cfg.Topo)
		}
		if cfg.Profile != nil {
			// Measured-cost feedback: the previous epoch's profile prices
			// both sides of the decision.  The gain term uses the solve
			// phase's measured per-iteration time under the current
			// mapping (halo waits and contention included); the cost term
			// uses per-message/per-byte/latency rates calibrated from the
			// sends the epoch actually executed.  A nil profile — every
			// first epoch, and every untraced or unmeasured run — takes
			// the analytic branch above, bitwise unchanged.
			gain = remap.MeasuredGain(cfg.Profile.PerIteration(), cfg.NAdapt, st.WOldMax, st.WNewMax)
			cost = remap.RedistributionCostMeasured(cfg.Metric, s, assign, cfg.Machine, cfg.Topo, cfg.Profile.Rates)
			st.MeasuredDecision = true
		}
		st.Gain, st.Cost = gain, cost
		if cfg.ForceAccept || remap.Accept(gain, cost) {
			acceptFlag = 1
		}
	}
	st.Accepted = c.BcastInts(0, []int64{acceptFlag})[0] == 1

	// --- Remapping: physically move the element families.  In the
	// remap-before ordering the edge marks travel with the families, so
	// the migrated mesh arrives ready for subdivision.
	if st.Accepted {
		c.PushPhase(event.PhaseMigrate)
		mig := d.Migrate(newOwner)
		// Aggregate the per-rank statistics so every rank reports the
		// global movement.
		st.Mig.FamiliesSent = int(c.AllreduceInt64(int64(mig.FamiliesSent), msg.SumInt64))
		st.Mig.ElemsSent = int(c.AllreduceInt64(int64(mig.ElemsSent), msg.SumInt64))
		st.Mig.BytesSent = c.AllreduceInt64(mig.BytesSent, msg.SumInt64)
		st.Mig.MsgsSent = int(c.AllreduceInt64(int64(mig.MsgsSent), msg.SumInt64))
		st.Mig.FamiliesRecv = st.Mig.FamiliesSent
		st.Mig.ElemsRecv = st.Mig.ElemsSent
		c.PopPhase()
	}
	st.RemapTime = timer.Lap()

	// --- Subdivision (remap-before ordering): the marks moved with the
	// data, so the subdivision runs immediately — and load balanced,
	// since the new partitions equalize the predicted post-refinement
	// loads.
	if cfg.RemapBefore {
		c.PushPhase(event.PhaseRefine)
		st.Refine = d.Refine()
		c.PopPhase()
		st.RefineTime = timer.Lap()
	}

	st.Counts = d.GlobalCounts()
	return st
}

// SolverImprovement returns the factor by which load balancing reduces
// the flow-solver time for the refined mesh: the heaviest-rank load
// without rebalancing divided by the heaviest-rank load with it (the
// quantity plotted in the paper's Fig. 8).
func (st StepStats) SolverImprovement() float64 {
	if st.WNewMax == 0 {
		return 1
	}
	return float64(st.WOldMax) / float64(st.WNewMax)
}

// MaxImprovement is the analytic bound of the paper's Fig. 7: for mesh
// growth factor G on P processors, a single refinement step can at most
// improve solver time by min(8, P(G-1)+1)/G (8 is the maximum
// subdivision arity; see Section 5).
func MaxImprovement(p int, g float64) float64 {
	worst := float64(p)*(g-1) + 1
	if worst > 8 {
		worst = 8
	}
	return worst / g
}
