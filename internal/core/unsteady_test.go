package core

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

func TestUnsteadyDriver(t *testing.T) {
	const p = 4
	global := mesh.Box(8, 6, 4, 2.4, 1.8, 1.2)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := DefaultConfig()
	cfg.NAdapt = 4
	cfg.ForceAccept = false

	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		u := NewUnsteady(d, g, cfg)
		u.Frac = 0.12
		u.CoarsenBelow = 0.05
		u.Indicator = func(i int) func(mesh.Vec3) float64 {
			x := 0.6 + 0.4*float64(i)
			return adapt.ShockCylinderIndicator(
				mesh.Vec3{x, 0.9, 0}, mesh.Vec3{0, 0, 1}, 0.3, 0.15)
		}
		u.PS.InitParallel(solver.GaussianPulse(mesh.Vec3{1.2, 0.9, 0.6}, 0.4))

		prevElems := 0
		for i := 0; i < 3; i++ {
			cs := u.Cycle()
			if err := d.M.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d rank %d: %v", i, c.Rank(), err)
			}
			if math.IsNaN(cs.Mass) || cs.Mass <= 0 {
				t.Fatalf("cycle %d: bad mass %v", i, cs.Mass)
			}
			if cs.WorkBalance <= 0 || cs.WorkBalance > 1+1e-9 {
				t.Fatalf("cycle %d: work balance %v out of range", i, cs.WorkBalance)
			}
			if cs.Step.Counts.Elems < global.NumElems() {
				t.Fatalf("cycle %d: mesh below initial size", i)
			}
			// With coarsening behind the moving shock, the mesh must not
			// grow unboundedly: each cycle's size stays within 3x the
			// previous (pure accumulation would give ~x8 growth compound).
			if prevElems > 0 && cs.Step.Counts.Elems > 3*prevElems {
				t.Fatalf("cycle %d: runaway growth %d -> %d", i, prevElems, cs.Step.Counts.Elems)
			}
			prevElems = cs.Step.Counts.Elems
		}
		if u.CycleNumber() != 3 {
			t.Errorf("cycle counter = %d", u.CycleNumber())
		}
	})
}

func TestPartitionQualityMetrics(t *testing.T) {
	g := dual.FromMesh(mesh.Box(4, 4, 4, 1, 1, 1))
	part := partition.Partition(g, 4, partition.Default())
	q := partition.Evaluate(g, part, 4)
	if q.EdgeCut <= 0 || q.CommVolume <= 0 || q.BoundaryVerts <= 0 {
		t.Fatalf("degenerate quality %+v", q)
	}
	// Communication volume counts distinct neighbour parts per vertex;
	// each cut edge contributes to at most its two endpoints, and at
	// least one endpoint sees a foreign part.
	if q.CommVolume > 2*q.EdgeCut {
		t.Errorf("comm volume %d exceeds 2x edge cut %d", q.CommVolume, q.EdgeCut)
	}
	if q.CommVolume > int64(3*q.BoundaryVerts) {
		t.Errorf("comm volume %d exceeds 3x boundary %d", q.CommVolume, q.BoundaryVerts)
	}
	if q.MaxNeighbors <= 0 || q.MaxNeighbors > 3 {
		t.Errorf("max neighbours %d out of range for k=4", q.MaxNeighbors)
	}
	// A single-part "partition" has zero communication.
	one := make([]int32, g.NumVerts())
	q1 := partition.Evaluate(g, one, 1)
	if q1.EdgeCut != 0 || q1.CommVolume != 0 || q1.BoundaryVerts != 0 || q1.MaxNeighbors != 0 {
		t.Errorf("one-part quality %+v not all zero", q1)
	}
}
