package core

import (
	"bytes"

	"plum/internal/linalg"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

// Implicit-workload experiments: the preconditioned-CG solver between
// adaptions turns the partition-quality metrics (edge cut, CommVolume)
// into directly measurable simulated communication time, because every
// PCG iteration performs a halo exchange and three global reductions.

// ImplicitRow is one processor count of the implicit scaling study.
type ImplicitRow struct {
	P            int
	PCGIters     int     // PCG iterations in the final cycle (identical on all ranks)
	Converged    bool    // all solves hit the 1e-8 tolerance
	SolverTime   float64 // simulated seconds in the PCG solve phase
	AdaptTime    float64 // mark + refine
	RemapTime    float64 // data migration
	WorkBalance  float64 // sum(work)/(P*max(work))
	EdgeCut      int64   // final partition edge cut (dual graph)
	CommVolume   int64   // final partition communication volume
	GlobalElems  int     // mesh size after the final cycle
	GlobalIters  int     // total PCG iterations across all cycles
	MassDiagnost float64 // conservation-style diagnostic after the run
}

// implicitConfig returns the driver configuration of the implicit
// workload experiments: few, expensive solver steps per cycle.
func (e *Experiments) implicitConfig() Config {
	cfg := e.Cfg
	cfg.Workload = WorkloadImplicit
	cfg.NAdapt = 2
	return cfg
}

// ImplicitScaling drives the full solve->adapt->balance cycle under the
// implicit workload for every processor count.  The PCG iteration
// counts are bitwise identical across P (the determinism guarantee of
// internal/linalg); what changes with P is the simulated time those
// iterations cost — the communication the load balancer is minimizing.
//
// With e.Obs set every world runs traced and each cycle lands in the
// ledger as one epoch record; the per-world record slices flush after
// the barrier, in P order, so ledgers are deterministic even though the
// worlds race.
func (e *Experiments) ImplicitScaling(cycles int) []ImplicitRow {
	ind := e.Indicator()
	e.prewarmPartitions(e.Ps)
	rows := make([]ImplicitRow, len(e.Ps))
	recs := make([][]obs.EpochRecord, len(e.Ps))
	sbufs := make([]*bytes.Buffer, len(e.Ps))
	runWorlds(len(e.Ps), func(i int) {
		p := e.Ps[i]
		initPart := e.initialPartition(p)
		mod := e.modelFor(p)
		var row ImplicitRow
		body := func(c *msg.Comm) {
			d := pmesh.New(c, e.Global, initPart, solver.NComp)
			cfg := e.implicitConfig()
			cfg.Topo = mod.Topo
			cfg.Observe = e.Obs != nil || e.Spans != nil
			if e.Measured {
				// Measured-cost loop: decisions gate on the previous
				// epoch's profile instead of always remapping.
				cfg.Measured = true
				cfg.ForceAccept = false
			}
			u := NewUnsteady(d, e.Dual, cfg)
			u.Frac = 0.10
			u.Indicator = func(int) func(mesh.Vec3) float64 { return ind }
			u.PS.InitParallel(solver.GaussianPulse(
				mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
			var last CycleStats
			total := 0
			conv := true
			for cyc := 0; cyc < cycles; cyc++ {
				last = u.Cycle()
				total += last.PCGIters
				conv = conv && last.PCGConverged
				if e.Obs != nil && c.Rank() == 0 {
					recs[i] = append(recs[i], epochRecord(
						"implicit", e.ModelName, pricingMode(e.Measured),
						p, cyc, last, partition.EdgeCut(e.Dual, d.RootOwner)))
				}
			}
			if c.Rank() != 0 {
				return
			}
			row = ImplicitRow{
				P:            p,
				PCGIters:     last.PCGIters,
				Converged:    conv,
				SolverTime:   last.SolverTime,
				AdaptTime:    last.Step.MarkTime + last.Step.RefineTime,
				RemapTime:    last.Step.RemapTime,
				WorkBalance:  last.WorkBalance,
				EdgeCut:      partition.EdgeCut(e.Dual, d.RootOwner),
				CommVolume:   partition.CommVolume(e.Dual, d.RootOwner),
				GlobalElems:  last.Step.Counts.Elems,
				GlobalIters:  total,
				MassDiagnost: last.Mass,
			}
		}
		switch {
		case e.Spans != nil:
			sbufs[i] = new(bytes.Buffer)
			opts := e.Spans.options(
				spanLabel("implicit", e.ModelName, pricingMode(e.Measured), p), sbufs[i])
			msg.RunTracedSpans(p, mod, opts, body)
		case e.Measured || e.Obs != nil:
			msg.RunTraced(p, mod, body)
		default:
			msg.RunModel(p, mod, body)
		}
		rows[i] = row
	})
	if e.Obs != nil {
		for _, r := range recs {
			e.Obs.Add(r...)
		}
	}
	if e.Spans != nil {
		for _, b := range sbufs {
			e.Spans.flush(b)
		}
	}
	return rows
}

// PrecondRow compares preconditioners for one processor count.
type PrecondRow struct {
	Precond    string
	Iterations int
	Converged  bool
	RelResid   float64
	SolveTime  float64 // simulated seconds for one implicit step
	Residuals  []float64
}

// PrecondComparison runs one implicit step on an adapted distributed
// mesh with each preconditioner (the Jacobi-vs-SPAI trade the SPAI
// literature studies: more setup, fewer and cheaper iterations).
func (e *Experiments) PrecondComparison(p int) []PrecondRow {
	kinds := []linalg.PrecondKind{linalg.PrecondNone, linalg.PrecondJacobi, linalg.PrecondSPAI}
	rows := make([]PrecondRow, len(kinds))
	initPart := e.initialPartition(p)
	ind := e.Indicator()
	runWorlds(len(kinds), func(i int) {
		kind := kinds[i]
		msg.RunModel(p, e.modelFor(p), func(c *msg.Comm) {
			d := pmesh.New(c, e.Global, initPart, solver.NComp)
			d.MarkGeometricFraction(ind, 0.2)
			d.PropagateParallel()
			d.Refine()
			solver.InitField(d.M, solver.GaussianPulse(
				mesh.Vec3{e.LX / 2, e.LY / 2, 0.6}, 0.5))
			opt := solver.DefaultImplicitOptions()
			opt.Precond = kind
			im := solver.NewImplicit(d, opt)
			before := c.Elapsed()
			r := im.Step()
			elapsed := c.AllreduceFloat64(c.Elapsed()-before, msg.MaxFloat64)
			if c.Rank() != 0 {
				return
			}
			rows[i] = PrecondRow{
				Precond:    kind.String(),
				Iterations: r.Iterations,
				Converged:  r.Converged,
				RelResid:   r.RelResidual(),
				SolveTime:  elapsed,
				Residuals:  r.Residuals,
			}
		})
	})
	return rows
}
