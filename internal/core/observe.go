package core

import (
	"plum/internal/event"
	"plum/internal/obs"
	"plum/internal/profile"
)

// The simulated-plane ledger hookup: experiments that drive full
// adaption epochs (ImplicitScaling, the feedback comparison) convert
// each cycle's statistics into an obs.EpochRecord on rank 0 and flush
// the per-world record slices after the runWorlds barrier, in loop
// order.  Every quantity recorded here is already computed by the run
// (or is a pure host computation over replicated state, like the
// edge cut), so recording never touches a simulated clock.

// pricingMode names how a decision or run was priced.
func pricingMode(measured bool) string {
	if measured {
		return "measured"
	}
	return "analytic"
}

// epochRecord flattens one cycle's statistics into a ledger record.
// edgeCut is partition.EdgeCut over the post-epoch ownership —
// a host-side evaluation of replicated state, computed by the caller on
// rank 0 only.  The profile fields stay zero on untraced runs.
func epochRecord(exp, model, run string, p, cycle int, cs CycleStats, edgeCut int64) obs.EpochRecord {
	r := obs.EpochRecord{
		Exp:     exp,
		Model:   model,
		Run:     run,
		P:       p,
		Cycle:   cycle,
		Pricing: pricingMode(cs.Step.MeasuredDecision),

		Balanced: cs.Step.Balanced,
		Accepted: cs.Step.Accepted,

		Imbalance: cs.Step.Imbalance,
		WOldMax:   cs.Step.WOldMax,
		WNewMax:   cs.Step.WNewMax,
		Gain:      cs.Step.Gain,
		Cost:      cs.Step.Cost,
		TotalV:    cs.Step.Moved.CTotal,
		MaxV:      cs.Step.Moved.CMax,
		EdgeCut:   edgeCut,
		Elems:     cs.Step.Counts.Elems,

		SolveSeconds: cs.SolverTime,
		PCGIters:     cs.PCGIters,
	}
	if pr := cs.Profile; pr != nil {
		r.CPMakespan = pr.Makespan
		r.CPCompute = pr.PathCompute
		r.CPOverhead = pr.PathOverhead
		r.CPWait = pr.PathWait
		r.Ranks = make([]obs.RankShare, len(pr.Ranks))
		for i, rp := range pr.Ranks {
			r.Ranks[i] = obs.RankShare{
				Compute:   rp.Compute,
				Overhead:  rp.Overhead,
				WaitHalo:  rp.Wait[profile.ClassHalo],
				WaitColl:  rp.Wait[profile.ClassCollective],
				WaitMig:   rp.Wait[profile.ClassMigration],
				WaitOther: rp.Wait[profile.ClassOther],
				PathShare: pr.PathShare(i),
			}
		}
	}
	if b := cs.Blame; b != nil {
		br := &obs.BlameRecord{
			Wait:           b.Wait,
			SenderCompute:  b.ByKind[event.BlameSenderCompute],
			SenderOverhead: b.ByKind[event.BlameSenderOverhead],
			Contention:     b.ByKind[event.BlameContention],
			Wire:           b.ByKind[event.BlameWire],
			Idle:           b.ByKind[event.BlameIdle],
			TopRank:        -1,
		}
		if top := b.TopLag(1); len(top) > 0 {
			br.TopRank = top[0].Rank
			br.TopPhase = top[0].Phase
			br.TopLag = top[0].Seconds
		}
		for _, e := range b.TopEdges(3) {
			br.TopEdges = append(br.TopEdges, obs.BlameEdge{
				Src: e.Src, Dst: e.Dst, Seconds: e.Queue + e.Wire,
			})
		}
		r.Blame = br
	}
	return r
}
