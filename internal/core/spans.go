package core

import (
	"bufio"
	"bytes"
	"os"
	"strconv"

	"plum/internal/event"
)

// SpanSink owns the span-stream file of a benchmark run.  Experiment
// worlds race, so each world serializes its stream into a private
// bytes.Buffer (handed out by options); the driving experiment flushes
// the buffers after the runWorlds barrier, in loop order — the same
// discipline that makes the obs ledger deterministic.  The resulting
// file is a concatenation of world streams (hdr ... end per world)
// whose bytes are identical across repeat runs and across GOMAXPROCS.

// DefaultSpanRing is the default per-rank resident-span bound: small
// enough to cap memory on long runs, large enough that a typical epoch
// flushes from memory without early spills.
const DefaultSpanRing = 2048

// SpanSink streams the span logs of every world of a run into one file.
type SpanSink struct {
	// Ring bounds the completed spans held resident per rank
	// (event.SpanOptions.RingCap); 0 means unbounded.
	Ring int
	// Sample keeps 1 in Sample off-path spans at each epoch cut (0 or 1
	// keeps all).  Critical-path spans are never sampled out.
	Sample int

	path   string
	f      *os.File
	w      *bufio.Writer
	worlds int
	err    error
}

// CreateSpanSink creates (truncating) the span file at path.
func CreateSpanSink(path string) (*SpanSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &SpanSink{
		Ring: DefaultSpanRing,
		path: path,
		f:    f,
		w:    bufio.NewWriterSize(f, 1<<16),
	}, nil
}

// Path returns the span file's path.
func (s *SpanSink) Path() string { return s.path }

// Worlds returns how many world streams have been flushed.
func (s *SpanSink) Worlds() int { return s.worlds }

// options builds one world's SpanOptions: the world streams into buf
// (private to the world — worlds race), the experiment flushes buf
// through the sink after the barrier.
func (s *SpanSink) options(label map[string]string, buf *bytes.Buffer) event.SpanOptions {
	return event.SpanOptions{
		Sink:        buf,
		RingCap:     s.Ring,
		SampleEvery: s.Sample,
		Label:       label,
	}
}

// flush appends one world's serialized stream to the file.  Nil buffers
// (worlds that never ran) are skipped.
func (s *SpanSink) flush(buf *bytes.Buffer) {
	if s == nil || buf == nil {
		return
	}
	if _, err := s.w.Write(buf.Bytes()); err != nil && s.err == nil {
		s.err = err
	}
	s.worlds++
}

// Close flushes and closes the file, reporting the first write error
// (a truncated span file must not look like success).
func (s *SpanSink) Close() error {
	if s == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.err != nil {
		return s.err
	}
	return err
}

// spanLabel is the standard stream-header annotation of an experiment
// world: which experiment, machine model, pricing mode, and world size
// produced the stream.
func spanLabel(exp, model, run string, p int) map[string]string {
	return map[string]string{
		"exp":   exp,
		"model": model,
		"run":   run,
		"p":     strconv.Itoa(p),
	}
}
